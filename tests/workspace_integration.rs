//! Workspace integration: every benchmark × every target × every compiler
//! must produce a machine program that agrees with the reference
//! interpreter, and the headline performance relations of the paper must
//! hold on the cycle model.

use fpir::Isa;
use fpir_bench::{geomean, run, validate, Compiler};
use fpir_isa::TargetCost;
use fpir_trs::cost::CostModel;
use fpir_workloads::{all_workloads, extra_workloads};

const ISAS: [Isa; 3] = [Isa::X86Avx2, Isa::ArmNeon, Isa::HexagonHvx];

#[test]
fn every_workload_compiles_and_validates_everywhere() {
    for wl in all_workloads().into_iter().chain(extra_workloads()) {
        for isa in ISAS {
            for compiler in [Compiler::Llvm, Compiler::Pitchfork, Compiler::PitchforkHandWritten] {
                let result = run(&wl, isa, &compiler)
                    .unwrap_or_else(|e| panic!("{compiler} failed on {}/{isa}: {e}", wl.name()));
                validate(&wl, isa, &result, 6)
                    .unwrap_or_else(|e| panic!("{compiler} on {}/{isa}: {e}", wl.name()));
            }
        }
    }
}

#[test]
fn rake_compiles_and_validates_on_its_targets() {
    // Rake has no x86 backend (as in the paper); a light workload subset
    // keeps the search affordable in debug test runs.
    for name in ["sobel3x3", "average_pool", "mean"] {
        let wl = fpir_workloads::workload(name).expect("known workload");
        for isa in [Isa::ArmNeon, Isa::HexagonHvx] {
            let result = run(&wl, isa, &Compiler::Rake)
                .unwrap_or_else(|e| panic!("Rake failed on {name}/{isa}: {e}"));
            validate(&wl, isa, &result, 6).unwrap_or_else(|e| panic!("Rake on {name}/{isa}: {e}"));
        }
    }
}

#[test]
fn pitchfork_never_loses_to_the_baseline() {
    for wl in all_workloads() {
        for isa in ISAS {
            let llvm = run(&wl, isa, &Compiler::Llvm).expect("baseline compiles");
            let pf = run(&wl, isa, &Compiler::Pitchfork).expect("pitchfork compiles");
            assert!(
                pf.artifact.cycles <= llvm.artifact.cycles,
                "{}/{isa}: pitchfork {} cycles vs LLVM {}",
                wl.name(),
                pf.artifact.cycles,
                llvm.artifact.cycles
            );
        }
    }
}

#[test]
fn geomean_speedups_have_the_papers_shape() {
    // Every per-target geomean clearly exceeds 1x, with HVX and ARM well
    // above x86's more modest win — the qualitative shape of Figure 5.
    let mut per_isa = vec![Vec::new(); 3];
    for wl in all_workloads() {
        for (i, isa) in ISAS.iter().enumerate() {
            let llvm = run(&wl, *isa, &Compiler::Llvm).expect("baseline compiles");
            let pf = run(&wl, *isa, &Compiler::Pitchfork).expect("pitchfork compiles");
            per_isa[i].push(llvm.artifact.cycles as f64 / pf.artifact.cycles as f64);
        }
    }
    let x86 = geomean(&per_isa[0]);
    let arm = geomean(&per_isa[1]);
    let hvx = geomean(&per_isa[2]);
    assert!(x86 > 1.2, "x86 geomean {x86}");
    assert!(arm > 1.5, "ARM geomean {arm}");
    assert!(hvx > 1.3, "HVX geomean {hvx}");
}

#[test]
fn full_rules_never_lose_to_hand_written() {
    // The §5.3 ablation is allowed small regressions on individual
    // benchmarks (the paper saw one on gaussian7x7/HVX) but must win in
    // aggregate on both ISAs it studies.
    for isa in [Isa::ArmNeon, Isa::HexagonHvx] {
        let mut gains = Vec::new();
        for wl in all_workloads() {
            let hand = run(&wl, isa, &Compiler::PitchforkHandWritten).expect("compiles");
            let full = run(&wl, isa, &Compiler::PitchforkFull).expect("compiles");
            gains.push(hand.artifact.cycles as f64 / full.artifact.cycles as f64);
        }
        let g = geomean(&gains);
        assert!(g > 1.05, "{isa}: ablation geomean {g}");
    }
}

#[test]
fn rake_never_loses_to_pitchfork_where_it_runs() {
    for name in ["sobel3x3", "gaussian3x3", "matmul"] {
        let wl = fpir_workloads::workload(name).expect("known workload");
        for isa in [Isa::ArmNeon, Isa::HexagonHvx] {
            let pf = run(&wl, isa, &Compiler::PitchforkFull).expect("compiles");
            let rk = run(&wl, isa, &Compiler::Rake).expect("compiles");
            assert!(
                rk.artifact.cycles <= pf.artifact.cycles,
                "{name}/{isa}: rake {} vs pitchfork {}",
                rk.artifact.cycles,
                pf.artifact.cycles
            );
        }
    }
}

#[test]
fn hvx_64_bit_story_matches_section_5_1() {
    // The three benchmarks that need 64-bit intermediates through
    // primitive integer arithmetic compile via the fallback on HVX (and
    // nothing else does).
    let mut fallbacks = Vec::new();
    for wl in all_workloads() {
        let llvm = run(&wl, Isa::HexagonHvx, &Compiler::Llvm).expect("compiles with fallback");
        if llvm.used_rmulshr_fallback {
            fallbacks.push(wl.name().to_string());
        }
        // Pitchfork itself never needs the accommodation.
        assert!(
            run(&wl, Isa::HexagonHvx, &Compiler::Pitchfork).is_ok(),
            "{} must compile with Pitchfork on HVX",
            wl.name()
        );
    }
    for expected in ["depthwise_conv", "matmul", "mul"] {
        assert!(
            fallbacks.iter().any(|n| n == expected),
            "{expected} should have needed the fallback; got {fallbacks:?}"
        );
    }
}

#[test]
fn lowered_target_cost_orders_compilers() {
    // The target cost model agrees with the cycle model's ordering on the
    // lowered expressions themselves.
    let wl = fpir_workloads::workload("sobel3x3").expect("known");
    for isa in ISAS {
        let model = TargetCost::new(isa);
        let llvm =
            fpir_baseline::LlvmBaseline::new(isa).compile(&wl.pipeline.expr).expect("compiles");
        let pf = pitchfork::Pitchfork::new(isa).compile(&wl.pipeline.expr).expect("compiles");
        assert!(model.cost(&pf.lowered) <= model.cost(&llvm.lowered), "{isa}");
    }
}
