//! End-to-end image tests: the full path from pipeline DSL through
//! instruction selection, program emission and VM execution must produce
//! images identical to the reference interpreter, pixel for pixel — on
//! both execution engines (the strip-by-strip reference runner and the
//! linked, tiled parallel runner) at every worker count.

use fpir::Isa;
use fpir_halide::runner::{run_program_reference, run_tiled};
use fpir_halide::{Image, Pipeline};
use fpir_isa::target;
use fpir_sim::{emit, Program};
use fpir_workloads::{workload, Workload};
use pitchfork::Pitchfork;
use std::collections::BTreeMap;

fn compile(pipeline: &Pipeline, isa: Isa) -> Program {
    let compiled = Pitchfork::new(isa)
        .compile(&pipeline.expr)
        .unwrap_or_else(|e| panic!("{}: {e}", pipeline.name));
    emit(&compiled.lowered, target(isa)).expect("emits")
}

/// Run a compiled pipeline over images through the reference VM runner.
fn run_compiled(pipeline: &Pipeline, inputs: &BTreeMap<String, Image>, isa: Isa) -> Image {
    let program = compile(pipeline, isa);
    run_program_reference(pipeline, &program, target(isa), inputs).expect("runs")
}

fn check_workload(wl: &Workload, seed: u64) {
    let inputs = wl.random_inputs(256, 4, seed);
    let reference =
        wl.pipeline.run_reference(&inputs).unwrap_or_else(|e| panic!("{}: {e}", wl.name()));
    for isa in [Isa::X86Avx2, Isa::ArmNeon, Isa::HexagonHvx] {
        let program = compile(&wl.pipeline, isa);
        let tgt = target(isa);
        let compiled = run_program_reference(&wl.pipeline, &program, tgt, &inputs).expect("runs");
        assert_eq!(compiled, reference, "{} diverged from the reference on {isa}", wl.name());
        for jobs in [1, 3] {
            let tiled = run_tiled(&wl.pipeline, &program, tgt, &inputs, jobs).expect("runs");
            assert_eq!(
                tiled,
                reference,
                "{} tiled({jobs}) diverged from the reference on {isa}",
                wl.name()
            );
        }
    }
}

#[test]
fn sobel_matches_pixel_for_pixel() {
    check_workload(&workload("sobel3x3").expect("known"), 1);
}

#[test]
fn camera_pipe_matches_pixel_for_pixel() {
    check_workload(&workload("camera_pipe").expect("known"), 2);
}

#[test]
fn average_pool_matches_pixel_for_pixel() {
    check_workload(&workload("average_pool").expect("known"), 3);
}

#[test]
fn gaussian3x3_matches_pixel_for_pixel() {
    check_workload(&workload("gaussian3x3").expect("known"), 4);
}

#[test]
fn softmax_matches_pixel_for_pixel() {
    check_workload(&workload("softmax").expect("known"), 5);
}

#[test]
fn blur_extra_workload_matches_pixel_for_pixel() {
    check_workload(&workload("blur3x3").expect("known"), 6);
}

#[test]
fn compiled_kernels_are_deterministic() {
    // Compiling twice yields the same program (rule application is
    // deterministic), and running twice yields the same image.
    let wl = workload("sobel3x3").expect("known");
    let inputs = wl.random_inputs(256, 3, 7);
    let a = run_compiled(&wl.pipeline, &inputs, Isa::ArmNeon);
    let b = run_compiled(&wl.pipeline, &inputs, Isa::ArmNeon);
    assert_eq!(a, b);
}
