//! End-to-end image tests: the full path from pipeline DSL through
//! instruction selection, program emission and VM execution must produce
//! images identical to the reference interpreter, pixel for pixel.

use fpir::Isa;
use fpir_halide::{Image, Pipeline};
use fpir_isa::target;
use fpir_sim::{emit, execute};
use fpir_workloads::{workload, Workload};
use pitchfork::Pitchfork;
use std::collections::BTreeMap;

/// Run a compiled pipeline over images, strip by strip.
fn run_compiled(pipeline: &Pipeline, inputs: &BTreeMap<String, Image>, isa: Isa) -> Image {
    let tgt = target(isa);
    let compiled = Pitchfork::new(isa)
        .compile(&pipeline.expr)
        .unwrap_or_else(|e| panic!("{}: {e}", pipeline.name));
    let program = emit(&compiled.lowered, tgt).expect("emits");
    let first = inputs.values().next().expect("has inputs");
    let (w, h) = (first.width(), first.height());
    let mut out = Image::filled(pipeline.out_elem(), w, h, 0);
    let lanes = pipeline.lanes() as usize;
    for y in 0..h {
        let mut x0 = 0usize;
        while x0 < w {
            let env = pipeline.env_at(inputs, x0 as i64, y as i64).expect("binds");
            let v = execute(&program, &env, tgt).expect("runs");
            for i in 0..lanes.min(w - x0) {
                out.set(x0 + i, y, v.lane(i));
            }
            x0 += lanes;
        }
    }
    out
}

fn check_workload(wl: &Workload, seed: u64) {
    let inputs = wl.random_inputs(256, 4, seed);
    let reference =
        wl.pipeline.run_reference(&inputs).unwrap_or_else(|e| panic!("{}: {e}", wl.name()));
    for isa in [Isa::X86Avx2, Isa::ArmNeon, Isa::HexagonHvx] {
        let compiled = run_compiled(&wl.pipeline, &inputs, isa);
        assert_eq!(compiled, reference, "{} diverged from the reference on {isa}", wl.name());
    }
}

#[test]
fn sobel_matches_pixel_for_pixel() {
    check_workload(&workload("sobel3x3").expect("known"), 1);
}

#[test]
fn camera_pipe_matches_pixel_for_pixel() {
    check_workload(&workload("camera_pipe").expect("known"), 2);
}

#[test]
fn average_pool_matches_pixel_for_pixel() {
    check_workload(&workload("average_pool").expect("known"), 3);
}

#[test]
fn gaussian3x3_matches_pixel_for_pixel() {
    check_workload(&workload("gaussian3x3").expect("known"), 4);
}

#[test]
fn softmax_matches_pixel_for_pixel() {
    check_workload(&workload("softmax").expect("known"), 5);
}

#[test]
fn blur_extra_workload_matches_pixel_for_pixel() {
    check_workload(&workload("blur3x3").expect("known"), 6);
}

#[test]
fn compiled_kernels_are_deterministic() {
    // Compiling twice yields the same program (rule application is
    // deterministic), and running twice yields the same image.
    let wl = workload("sobel3x3").expect("known");
    let inputs = wl.random_inputs(256, 3, 7);
    let a = run_compiled(&wl.pipeline, &inputs, Isa::ArmNeon);
    let b = run_compiled(&wl.pipeline, &inputs, Isa::ArmNeon);
    assert_eq!(a, b);
}
