#!/usr/bin/env bash
# Service smoke test: start pitchforkd on a Unix socket, drive a
# compile + run + stats round-trip with pitchfork-cli, verify the
# second compile of the same key is a cache hit, exercise protocol v2
# (a tagged compile, a pipelined three-request exchange, and the
# Prometheus-style stats rendering), then assert a clean shutdown on
# SIGTERM (exit 0, socket unlinked).
#
# Usage: scripts/service_smoke.sh [path-to-target-dir]
# Expects `pitchforkd` and `pitchfork-cli` already built (release).

set -euo pipefail

TARGET="${1:-target/release}"
SOCK="${TMPDIR:-/tmp}/pitchforkd-smoke-$$.sock"
EXPR='u8(min(u16(a_u8) + u16(b_u8), 255))'

fail() {
    echo "service_smoke: FAIL — $1" >&2
    [ -n "${PID:-}" ] && kill "$PID" 2>/dev/null || true
    exit 1
}

"$TARGET/pitchforkd" --socket "$SOCK" --workers 2 --timeout-ms 30000 &
PID=$!
trap '[ -e "/proc/$PID" ] && kill "$PID" 2>/dev/null || true' EXIT

# Wait for the socket to appear.
for _ in $(seq 1 100); do
    [ -S "$SOCK" ] && break
    kill -0 "$PID" 2>/dev/null || fail "daemon died before binding"
    sleep 0.1
done
[ -S "$SOCK" ] || fail "socket $SOCK never appeared"

CLI="$TARGET/pitchfork-cli"

echo "== ping"
"$CLI" --socket "$SOCK" ping | grep -q '"pong":true' || fail "ping"

echo "== compile (cold)"
OUT=$("$CLI" --socket "$SOCK" compile --expr "$EXPR" --lanes 16 --isa arm)
echo "$OUT" | grep -q '"source":"computed"' || fail "first compile was not a miss: $OUT"
echo "$OUT" | grep -q '"lowered":"arm.uqadd(a_u8, b_u8)"' || fail "unexpected lowering: $OUT"

echo "== compile (warm)"
OUT=$("$CLI" --socket "$SOCK" compile --expr "$EXPR" --lanes 16 --isa arm)
echo "$OUT" | grep -q '"source":"hit"' || fail "second compile was not a cache hit: $OUT"

echo "== run"
OUT=$("$CLI" --socket "$SOCK" run --expr "$EXPR" --lanes 4 --isa arm \
    --input a=250,1,128,255 --input b=10,2,128,255)
echo "$OUT" | grep -q '"output":\[255,3,255,255\]' || fail "wrong run output: $OUT"

echo "== tagged compile (protocol v2)"
OUT=$("$CLI" --socket "$SOCK" compile --expr "$EXPR" --lanes 16 --isa arm --tag smoke-1)
echo "$OUT" | grep -q '"tag":"smoke-1"' || fail "tag was not echoed: $OUT"

echo "== pipelined exchange (3 tagged requests before any read)"
OUT=$("$CLI" --socket "$SOCK" pipeline --expr "$EXPR" --lanes 16 --isa arm)
echo "$OUT" | grep -q '"pipelined":3' || fail "pipelined exchange: $OUT"

echo "== stats"
OUT=$("$CLI" --socket "$SOCK" stats)
# Two distinct keys were compiled (the lanes=16 compile and the
# lanes=4 run); every repeated lanes=16 compile must have been a hit.
echo "$OUT" | grep -q '"cache_hits":[1-9]' || fail "stats show no cache hit: $OUT"
echo "$OUT" | grep -q '"compiles":2' || fail "stats show duplicate compiles: $OUT"

echo "== stats --text"
OUT=$("$CLI" --socket "$SOCK" stats --text)
echo "$OUT" | grep -q 'pitchforkd_requests' || fail "no text-format counters: $OUT"
echo "$OUT" | grep -q 'pitchforkd_open_connections' || fail "no event-loop gauges: $OUT"

echo "== SIGTERM"
kill -TERM "$PID"
WAITED=0
while kill -0 "$PID" 2>/dev/null; do
    sleep 0.1
    WAITED=$((WAITED + 1))
    [ "$WAITED" -gt 100 ] && fail "daemon ignored SIGTERM for 10s"
done
wait "$PID" && STATUS=0 || STATUS=$?
[ "$STATUS" -eq 0 ] || fail "daemon exited with status $STATUS on SIGTERM"
[ ! -e "$SOCK" ] || fail "socket file survived shutdown"

echo "service_smoke: PASS"
