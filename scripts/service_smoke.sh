#!/usr/bin/env bash
# Service smoke test: start pitchforkd on a Unix socket, drive a
# compile + run + stats round-trip with pitchfork-cli, verify the
# second compile of the same key is a cache hit, exercise protocol v2
# (a tagged compile, a pipelined three-request exchange, and the
# Prometheus-style stats rendering), then assert a clean shutdown on
# SIGTERM (exit 0, socket unlinked). Then: a restart-warm round trip
# (SIGTERM + relaunch on the same --cache-dir makes the second
# process serve the key as a hit without recompiling) and a 2-daemon
# peer fleet (the same key on both daemons compiles once fleet-wide,
# the non-owner serving it via peer_get).
#
# Usage: scripts/service_smoke.sh [path-to-target-dir]
# Expects `pitchforkd` and `pitchfork-cli` already built (release).

set -euo pipefail

TARGET="${1:-target/release}"
SOCK="${TMPDIR:-/tmp}/pitchforkd-smoke-$$.sock"
EXPR='u8(min(u16(a_u8) + u16(b_u8), 255))'

CACHE_DIR="${TMPDIR:-/tmp}/pitchforkd-smoke-cache-$$"

cleanup() {
    for p in "${PID:-}" "${PID_A:-}" "${PID_B:-}"; do
        [ -n "$p" ] && kill "$p" 2>/dev/null || true
    done
    rm -rf "$CACHE_DIR"
}

fail() {
    echo "service_smoke: FAIL — $1" >&2
    cleanup
    exit 1
}

"$TARGET/pitchforkd" --socket "$SOCK" --workers 2 --timeout-ms 30000 &
PID=$!
trap cleanup EXIT

# Wait for a daemon's socket to appear.
wait_sock() {
    local sock="$1" pid="$2"
    for _ in $(seq 1 100); do
        [ -S "$sock" ] && return 0
        kill -0 "$pid" 2>/dev/null || fail "daemon died before binding $sock"
        sleep 0.1
    done
    fail "socket $sock never appeared"
}

# SIGTERM a daemon and require a clean (status 0) exit within 10s.
term_and_wait() {
    local pid="$1"
    kill -TERM "$pid"
    local waited=0
    while kill -0 "$pid" 2>/dev/null; do
        sleep 0.1
        waited=$((waited + 1))
        [ "$waited" -gt 100 ] && fail "daemon $pid ignored SIGTERM for 10s"
    done
    wait "$pid" || fail "daemon $pid exited with status $? on SIGTERM"
}

wait_sock "$SOCK" "$PID"

CLI="$TARGET/pitchfork-cli"

echo "== ping"
"$CLI" --socket "$SOCK" ping | grep -q '"pong":true' || fail "ping"

echo "== compile (cold)"
OUT=$("$CLI" --socket "$SOCK" compile --expr "$EXPR" --lanes 16 --isa arm)
echo "$OUT" | grep -q '"source":"computed"' || fail "first compile was not a miss: $OUT"
echo "$OUT" | grep -q '"lowered":"arm.uqadd(a_u8, b_u8)"' || fail "unexpected lowering: $OUT"

echo "== compile (warm)"
OUT=$("$CLI" --socket "$SOCK" compile --expr "$EXPR" --lanes 16 --isa arm)
echo "$OUT" | grep -q '"source":"hit"' || fail "second compile was not a cache hit: $OUT"

echo "== run"
OUT=$("$CLI" --socket "$SOCK" run --expr "$EXPR" --lanes 4 --isa arm \
    --input a=250,1,128,255 --input b=10,2,128,255)
echo "$OUT" | grep -q '"output":\[255,3,255,255\]' || fail "wrong run output: $OUT"

echo "== tagged compile (protocol v2)"
OUT=$("$CLI" --socket "$SOCK" compile --expr "$EXPR" --lanes 16 --isa arm --tag smoke-1)
echo "$OUT" | grep -q '"tag":"smoke-1"' || fail "tag was not echoed: $OUT"

echo "== pipelined exchange (3 tagged requests before any read)"
OUT=$("$CLI" --socket "$SOCK" pipeline --expr "$EXPR" --lanes 16 --isa arm)
echo "$OUT" | grep -q '"pipelined":3' || fail "pipelined exchange: $OUT"

echo "== stats"
OUT=$("$CLI" --socket "$SOCK" stats)
# Two distinct keys were compiled (the lanes=16 compile and the
# lanes=4 run); every repeated lanes=16 compile must have been a hit.
echo "$OUT" | grep -q '"cache_hits":[1-9]' || fail "stats show no cache hit: $OUT"
echo "$OUT" | grep -q '"compiles":2' || fail "stats show duplicate compiles: $OUT"

echo "== stats --text"
OUT=$("$CLI" --socket "$SOCK" stats --text)
echo "$OUT" | grep -q 'pitchforkd_requests' || fail "no text-format counters: $OUT"
echo "$OUT" | grep -q 'pitchforkd_open_connections' || fail "no event-loop gauges: $OUT"

echo "== SIGTERM"
term_and_wait "$PID"
PID=""
[ ! -e "$SOCK" ] || fail "socket file survived shutdown"

echo "== restart-warm round trip"
mkdir -p "$CACHE_DIR"
"$TARGET/pitchforkd" --socket "$SOCK" --workers 2 --cache-dir "$CACHE_DIR" &
PID=$!
wait_sock "$SOCK" "$PID"
OUT=$("$CLI" --socket "$SOCK" compile --expr "$EXPR" --lanes 16 --isa arm)
echo "$OUT" | grep -q '"source":"computed"' || fail "cold compile before restart: $OUT"
term_and_wait "$PID"
ls "$CACHE_DIR"/*.pfa >/dev/null 2>&1 || fail "no spill files in $CACHE_DIR"
"$TARGET/pitchforkd" --socket "$SOCK" --workers 2 --cache-dir "$CACHE_DIR" &
PID=$!
wait_sock "$SOCK" "$PID"
OUT=$("$CLI" --socket "$SOCK" compile --expr "$EXPR" --lanes 16 --isa arm)
echo "$OUT" | grep -q '"source":"hit"' || fail "compile after restart was not warm: $OUT"
OUT=$("$CLI" --socket "$SOCK" stats)
echo "$OUT" | grep -q '"disk_loaded":[1-9]' || fail "restart loaded nothing from disk: $OUT"
echo "$OUT" | grep -q '"compiles":0' || fail "warm restart recompiled: $OUT"
term_and_wait "$PID"
PID=""

echo "== 2-daemon peer fleet"
SOCK_A="${TMPDIR:-/tmp}/pitchforkd-smoke-a-$$.sock"
SOCK_B="${TMPDIR:-/tmp}/pitchforkd-smoke-b-$$.sock"
"$TARGET/pitchforkd" --socket "$SOCK_A" --workers 2 --peer "unix:$SOCK_B" &
PID_A=$!
"$TARGET/pitchforkd" --socket "$SOCK_B" --workers 2 --peer "unix:$SOCK_A" &
PID_B=$!
wait_sock "$SOCK_A" "$PID_A"
wait_sock "$SOCK_B" "$PID_B"
OUT=$("$CLI" --socket "$SOCK_A" compile --expr "$EXPR" --lanes 16 --isa arm)
echo "$OUT" | grep -q '"ok":true' || fail "fleet compile on A: $OUT"
OUT=$("$CLI" --socket "$SOCK_B" compile --expr "$EXPR" --lanes 16 --isa arm)
echo "$OUT" | grep -q '"ok":true' || fail "fleet compile on B: $OUT"
COMPILES=0
PEER_HITS=0
for s in "$SOCK_A" "$SOCK_B"; do
    OUT=$("$CLI" --socket "$s" stats)
    C=$(echo "$OUT" | grep -o '"compiles":[0-9]*' | grep -o '[0-9]*')
    H=$(echo "$OUT" | grep -o '"peer_hits":[0-9]*' | grep -o '[0-9]*')
    COMPILES=$((COMPILES + C))
    PEER_HITS=$((PEER_HITS + H))
done
[ "$COMPILES" -eq 1 ] || fail "fleet compiled the key $COMPILES times, want 1"
[ "$PEER_HITS" -ge 1 ] || fail "no peer_get hit recorded across the fleet"
term_and_wait "$PID_A"
term_and_wait "$PID_B"
PID_A=""
PID_B=""

echo "service_smoke: PASS"
