//! `service-bench` — serving-layer latency and throughput benchmark.
//!
//! Measures two layers:
//!
//! * **in-process** — drives a [`Service`] directly (the same object
//!   `pitchforkd` wraps in sockets), reporting cold compile latency
//!   (guaranteed miss, full lift → lower → legalize → emit → link),
//!   warm latency (cache hit, min over `--warm-reps` probes), and the
//!   warm/cold speedup geomean;
//! * **over the socket** — starts the readiness-driven event-loop
//!   server on a Unix socket and sweeps sustained throughput at
//!   1/2/4/8/16 serial client threads, plus a **pipelined** mode where
//!   each connection keeps a window of tagged frames in flight
//!   (protocol v2), so one poll iteration carries many requests.
//!
//! The suite is every figure workload on every registered backend,
//! minus the combinations a backend's inherent lane-width limit rules
//! out (probed with a direct compile; a target with full-width lanes
//! must serve everything, and limited targets record their skips under
//! `capability` instead of silently dropping them).
//!
//! Gates, all fatal (exit 1, full runs only — `--smoke` reports but
//! does not gate):
//!
//! * every served response must be **bit-identical** (lowered
//!   expression, rendered program, cycle price) to a direct
//!   [`pitchfork::compile_to_executable`] call — the served path may
//!   never change what the compiler produces (gated in smoke runs too);
//! * warm latency must beat cold by ≥10x on the suite geomean;
//! * the socket throughput curve must be monotone non-decreasing from
//!   1→2→4→8 client threads (batched readiness dispatch has to beat
//!   thread-per-connection, which peaked at 2 threads), and 4-thread
//!   throughput must exceed the old 43.3k req/s peak.
//!
//! Writes `BENCH_service.json`.
//!
//! Usage: `cargo run --release -p pitchfork-service --bin service-bench
//!         -- [--smoke] [--out PATH]`

use fpir::Isa;
use fpir_halide::{run_program_reference, run_tiled_exe};
use fpir_isa::target;
use fpir_workloads::{all_workloads, LANES};
use pitchfork::{compile_to_executable, Config, EngineConfig, Pitchfork};
use pitchfork_service::protocol::CompileSpec;
use pitchfork_service::{
    serve_with, write_frame, Client, Endpoint, Json, Request, ServeOptions, Service, ServiceConfig,
    Stats,
};
use std::fmt::Write as _;
use std::io::{Read, Write};
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

/// The thread-per-connection server's best sweep point (2 threads,
/// previous `BENCH_service.json`); the event loop must beat it at 4.
const OLD_PEAK_RPS: f64 = 43_300.0;

/// The pipelined sweep's window depths (tagged frames in flight per
/// connection). 128 is the server's default `max_pipeline` cap.
const PIPELINE_DEPTHS: &[usize] = &[1, 2, 8, 32, 64, 128];

/// How much faster a restart-warm cold start must be (p99, seen keys)
/// than a genuinely cold daemon on an empty cache dir.
const RESTART_WARM_SPEEDUP: f64 = 5.0;

/// Fleet gate: total compiles across the fleet may exceed the unique
/// key count only by this factor (rendezvous forwarding should make it
/// exactly 1.0; the slack absorbs a lost race, not a design failure).
const FLEET_COMPILE_SLACK: f64 = 1.25;

/// One workload × target measurement.
struct Row {
    workload: String,
    isa: Isa,
    cold_ns: u128,
    warm_ns: u128,
}

fn spec(expr: &str, isa: Isa) -> CompileSpec {
    CompileSpec {
        expr: expr.to_string(),
        lanes: LANES,
        isa,
        engine: EngineConfig::FAST,
        synthesized_rules: true,
        leave_out: None,
        timeout_ms: None,
    }
}

fn get<'a>(v: &'a Json, k: &str) -> Option<&'a Json> {
    v.get(k)
}

/// The wire bytes of one `compile` request (defaults match [`spec`]).
fn encode_compile(expr: &str, isa: Isa, tag: Option<&str>) -> Vec<u8> {
    let mut members = vec![
        ("op".to_string(), Json::str("compile")),
        ("expr".to_string(), Json::str(expr)),
        ("lanes".to_string(), Json::Int(i128::from(LANES))),
        ("isa".to_string(), Json::str(isa.slug())),
    ];
    if let Some(t) = tag {
        members.push(("tag".to_string(), Json::str(t)));
    }
    let mut bytes = Vec::new();
    write_frame(&mut bytes, &Json::Object(members)).expect("in-memory write");
    bytes
}

/// Read one response frame through a client-side buffer (typically one
/// `read` syscall per frame), asserting only the `{"ok":true` prefix —
/// byte-level equality with the direct compiler is gated separately,
/// and parsing every response would bench the client's JSON parser,
/// not the server.
fn read_ok(stream: &mut UnixStream, acc: &mut Vec<u8>) {
    loop {
        if acc.len() >= 4 {
            let n = u32::from_be_bytes([acc[0], acc[1], acc[2], acc[3]]) as usize;
            if acc.len() >= 4 + n {
                assert!(
                    acc[4..4 + n].starts_with(b"{\"ok\":true"),
                    "request failed: {}",
                    String::from_utf8_lossy(&acc[4..4 + n])
                );
                acc.drain(..4 + n);
                return;
            }
        }
        let mut chunk = [0u8; 16384];
        let got = stream.read(&mut chunk).expect("response read");
        assert!(got > 0, "server closed mid-response");
        acc.extend_from_slice(&chunk[..got]);
    }
}

#[repr(C)]
struct SchedParam {
    priority: i32,
}
extern "C" {
    fn sched_setscheduler(pid: i32, policy: i32, param: *const SchedParam) -> i32;
}

/// Put the calling client thread under `SCHED_BATCH` (no privilege
/// needed to lower one's own policy). On this bench's single-core
/// containers the clients otherwise wakeup-preempt the server loop on
/// every response write, and that preemption cost scales with the
/// thread count — batch policy lets the loop finish whole iterations
/// and makes the sweep measure the server, not CFS wakeup heuristics.
fn set_batch_sched() {
    const SCHED_BATCH: i32 = 3;
    let p = SchedParam { priority: 0 };
    unsafe {
        sched_setscheduler(0, SCHED_BATCH, &p);
    }
}

/// Sustained serial throughput: `threads` connections, each sending one
/// untagged request and waiting for its response (the v1 pattern).
fn sweep_point(path: &std::path::Path, frames: &[Vec<u8>], threads: usize, total: usize) -> f64 {
    let per_thread = total / threads;
    let gate = Arc::new(Barrier::new(threads + 1));
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let gate = Arc::clone(&gate);
            let frames = frames.to_vec();
            let mut stream = UnixStream::connect(path).expect("connect");
            std::thread::spawn(move || {
                set_batch_sched();
                let mut body = Vec::new();
                gate.wait();
                for i in 0..per_thread {
                    let frame = &frames[(i + t) % frames.len()];
                    stream.write_all(frame).expect("request write");
                    read_ok(&mut stream, &mut body);
                }
            })
        })
        .collect();
    gate.wait();
    let t0 = Instant::now();
    for h in handles {
        h.join().expect("client thread");
    }
    (threads * per_thread) as f64 / t0.elapsed().as_secs_f64().max(1e-9)
}

/// Pipelined throughput: `threads` connections, each writing `depth`
/// tagged requests back-to-back (one `write`), then reading the window
/// of responses.
fn pipelined_point(
    path: &std::path::Path,
    batches: &[Vec<u8>],
    threads: usize,
    total: usize,
    depth: usize,
) -> f64 {
    let windows_per_thread = (total / threads / depth).max(1);
    let gate = Arc::new(Barrier::new(threads + 1));
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let gate = Arc::clone(&gate);
            let batches = batches.to_vec();
            let mut stream = UnixStream::connect(path).expect("connect");
            std::thread::spawn(move || {
                set_batch_sched();
                let mut body = Vec::new();
                gate.wait();
                for i in 0..windows_per_thread {
                    stream.write_all(&batches[(i + t) % batches.len()]).expect("batch write");
                    for _ in 0..depth {
                        read_ok(&mut stream, &mut body);
                    }
                }
            })
        })
        .collect();
    gate.wait();
    let t0 = Instant::now();
    for h in handles {
        h.join().expect("client thread");
    }
    (threads * windows_per_thread * depth) as f64 / t0.elapsed().as_secs_f64().max(1e-9)
}

/// p99 over raw nanosecond samples (the max for fewer than 100).
fn p99_ns(samples: &[u128]) -> u128 {
    let mut xs = samples.to_vec();
    xs.sort_unstable();
    let idx = (xs.len().saturating_mul(99)).div_ceil(100).saturating_sub(1);
    xs.get(idx.min(xs.len() - 1)).copied().unwrap_or(0)
}

/// One untagged compile request as a [`Json`] value (for the blocking
/// [`Client`] used by the scenario drivers).
fn compile_json(expr: &str, isa: Isa, synthesized_rules: bool) -> Json {
    let mut members = vec![
        ("op".to_string(), Json::str("compile")),
        ("expr".to_string(), Json::str(expr)),
        ("lanes".to_string(), Json::Int(i128::from(LANES))),
        ("isa".to_string(), Json::str(isa.slug())),
    ];
    if !synthesized_rules {
        members.push(("synthesized_rules".to_string(), Json::Bool(false)));
    }
    Json::Object(members)
}

/// `true` when the response's lowered expression, rendered program, and
/// cycle price all match the direct compiler's.
fn matches_truth(v: &Json, truth: &(String, String, u64)) -> bool {
    v.get("lowered").and_then(Json::as_str) == Some(truth.0.as_str())
        && v.get("program").and_then(Json::as_str) == Some(truth.1.as_str())
        && v.get("cycles").and_then(Json::as_int) == Some(i128::from(truth.2))
}

/// What the restart-warm scenario measured.
struct RestartWarm {
    cold_p99_ns: u128,
    warm_p99_ns: u128,
    disk_loaded: u64,
    disk_spills: u64,
}

/// Restart-warm: a daemon with an empty `--cache-dir` compiles the
/// whole suite (true cold starts, spilling each artifact), is dropped,
/// and a second daemon on the same directory re-admits the spill store
/// at startup — every request it then sees must be a cache hit,
/// bit-identical to the direct compiler, and its cold-start p99 must
/// beat the empty-dir p99 by [`RESTART_WARM_SPEEDUP`].
fn restart_warm_scenario(
    combos: &[(String, String, Isa)],
    truth: &[(String, String, u64)],
    gate_failed: &mut bool,
) -> RestartWarm {
    let dir = std::env::temp_dir().join(format!("service-bench-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let config = ServiceConfig {
        cache_bytes: 256 << 20,
        workers: 2,
        queue_capacity: 64,
        default_timeout_ms: None,
        cache_dir: Some(dir.clone()),
        cache_max_bytes: None,
        cache_max_age: None,
    };

    // Generation A: an empty cache dir, so every first compile pays the
    // full pipeline. These timings are the "cold daemon" baseline.
    let a = Service::new(config.clone());
    let mut cold_ns: Vec<u128> = Vec::with_capacity(combos.len());
    for ((name, expr, isa), t) in combos.iter().zip(truth) {
        let req = Request::Compile(spec(expr, *isa));
        let t0 = Instant::now();
        let v = a.handle(&req);
        cold_ns.push(t0.elapsed().as_nanos());
        if get(&v, "source").and_then(Json::as_str) != Some("computed") || !matches_truth(&v, t) {
            eprintln!("DIVERGENCE {name}/{isa}: cold spill-store response is wrong: {v:?}");
            *gate_failed = true;
        }
    }
    let disk_spills = Stats::read(&a.stats().disk_spills);
    drop(a);

    // Generation B: the same directory. Startup re-admits every spilled
    // artifact, so the first request for every seen key is already a
    // hit — the restart-warm promise.
    let b = Service::new(config);
    let disk_loaded = Stats::read(&b.stats().disk_loaded);
    let mut warm_ns: Vec<u128> = Vec::with_capacity(combos.len());
    for ((name, expr, isa), t) in combos.iter().zip(truth) {
        let req = Request::Compile(spec(expr, *isa));
        let t0 = Instant::now();
        let v = b.handle(&req);
        warm_ns.push(t0.elapsed().as_nanos());
        if get(&v, "source").and_then(Json::as_str) != Some("hit") {
            eprintln!(
                "service-bench: {name}/{isa} was not restart-warm (source {:?})",
                get(&v, "source")
            );
            *gate_failed = true;
        }
        if !matches_truth(&v, t) {
            eprintln!("DIVERGENCE {name}/{isa}: restart-warm response differs from the compiler");
            *gate_failed = true;
        }
    }
    if disk_loaded != combos.len() as u64 {
        eprintln!(
            "service-bench: restart loaded {disk_loaded} of {} spilled artifacts",
            combos.len()
        );
        *gate_failed = true;
    }
    let _ = std::fs::remove_dir_all(&dir);
    RestartWarm {
        cold_p99_ns: p99_ns(&cold_ns),
        warm_p99_ns: p99_ns(&warm_ns),
        disk_loaded,
        disk_spills,
    }
}

/// What the fleet scenario measured.
struct FleetReport {
    daemons: usize,
    unique_keys: usize,
    total_compiles: u64,
    peer_hits: u64,
    peer_misses: u64,
    peer_timeouts: u64,
    peer_errors: u64,
    fallback_keys: usize,
}

/// Fleet: three daemons on Unix sockets, each configured with the other
/// two as peers. Phase 1 sends every suite key to every daemon — each
/// key must compile exactly once fleet-wide (at its rendezvous owner),
/// the other daemons serving it via `peer_get`, all responses
/// bit-identical to the direct compiler. Phase 2 shuts one daemon down
/// and sweeps fresh keys (hand-written rules only) through the
/// survivors: keys owned by the dead daemon must degrade to local
/// compiles, never errors.
fn fleet_scenario(
    combos: &[(String, String, Isa)],
    truth: &[(String, String, u64)],
    gate_failed: &mut bool,
) -> FleetReport {
    const N: usize = 3;
    let pid = std::process::id();
    let socks: Vec<PathBuf> = (0..N)
        .map(|i| std::env::temp_dir().join(format!("service-bench-fleet-{pid}-{i}.sock")))
        .collect();
    for s in &socks {
        let _ = std::fs::remove_file(s);
    }
    let eps: Vec<Endpoint> = socks.iter().map(|s| Endpoint::Unix(s.clone())).collect();
    let svcs: Vec<Arc<Service>> = (0..N)
        .map(|_| {
            Arc::new(Service::new(ServiceConfig {
                cache_bytes: 256 << 20,
                workers: 2,
                queue_capacity: 64,
                default_timeout_ms: None,
                cache_dir: None,
                cache_max_bytes: None,
                cache_max_age: None,
            }))
        })
        .collect();
    let mut servers: Vec<_> = (0..N)
        .map(|i| {
            let svc = Arc::clone(&svcs[i]);
            let ep = eps[i].clone();
            let opts = ServeOptions {
                peers: eps
                    .iter()
                    .enumerate()
                    .filter(|&(j, _)| j != i)
                    .map(|(_, e)| e.clone())
                    .collect(),
                peer_timeout_ms: 3000,
                ..ServeOptions::default()
            };
            std::thread::spawn(move || serve_with(svc, &ep, &opts))
        })
        .collect();
    for s in &socks {
        for _ in 0..100 {
            if s.exists() {
                break;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
    }

    // Phase 1: every daemon sees every key; the fleet compiles each
    // once.
    let mut clients: Vec<Client> =
        eps.iter().map(|e| Client::connect(e).expect("fleet connect")).collect();
    for ((name, expr, isa), t) in combos.iter().zip(truth) {
        let req = compile_json(expr, *isa, true);
        for (d, client) in clients.iter_mut().enumerate() {
            let v = client.request(&req).expect("fleet request");
            if get(&v, "ok").and_then(Json::as_bool) != Some(true) || !matches_truth(&v, t) {
                eprintln!("DIVERGENCE {name}/{isa} via daemon {d}: fleet response is wrong: {v:?}");
                *gate_failed = true;
            }
        }
    }
    let total_compiles: u64 = svcs.iter().map(|s| Stats::read(&s.stats().compiles)).sum();
    let peer_hits: u64 = svcs.iter().map(|s| Stats::read(&s.stats().peer_hits)).sum();
    let peer_misses: u64 = svcs.iter().map(|s| Stats::read(&s.stats().peer_misses)).sum();

    // Phase 2: kill daemon 0, then sweep fresh keys (hand-written rules
    // only — a configuration nothing has cached) through the survivors.
    // Keys owned by the dead daemon must fall back to local compiles.
    let bye = clients[0]
        .request(&Json::Object(vec![("op".into(), Json::str("shutdown"))]))
        .expect("fleet shutdown");
    assert_eq!(get(&bye, "stopping").and_then(Json::as_bool), Some(true), "daemon 0 shutdown");
    drop(clients);
    servers.remove(0).join().expect("daemon 0 thread").expect("daemon 0 result");

    let mut fallback_keys = 0usize;
    for (name, expr, isa) in combos {
        // Hand-only truth; a workload that needs synthesized rules to
        // lower is skipped (the service would refuse it identically).
        let cfg = Config::new(*isa).with_engine(EngineConfig::FAST).hand_written_only();
        let pf = Pitchfork::with_config(cfg);
        let e = fpir::parser::parse_expr(expr, LANES).expect("suite expr parses");
        let Ok(art) = compile_to_executable(&pf, &e) else {
            continue;
        };
        let hand_truth = (art.lowered.to_string(), art.program.render(), art.cycles);
        fallback_keys += 1;
        let req = compile_json(expr, *isa, false);
        for (d, ep) in eps.iter().enumerate().skip(1) {
            let mut client = Client::connect(ep).expect("survivor connect");
            let v = client.request(&req).expect("survivor request");
            if get(&v, "ok").and_then(Json::as_bool) != Some(true)
                || !matches_truth(&v, &hand_truth)
            {
                eprintln!(
                    "DIVERGENCE {name}/{isa} via surviving daemon {d}: \
                     degraded response is wrong: {v:?}"
                );
                *gate_failed = true;
            }
        }
    }
    let peer_timeouts: u64 = svcs.iter().map(|s| Stats::read(&s.stats().peer_timeouts)).sum();
    let peer_errors: u64 = svcs.iter().map(|s| Stats::read(&s.stats().peer_errors)).sum();

    for ep in eps.iter().skip(1) {
        let mut client = Client::connect(ep).expect("shutdown connect");
        let _ = client.request(&Json::Object(vec![("op".into(), Json::str("shutdown"))]));
    }
    for h in servers {
        h.join().expect("fleet server thread").expect("fleet server result");
    }
    FleetReport {
        daemons: N,
        unique_keys: combos.len(),
        total_compiles,
        peer_hits,
        peer_misses,
        peer_timeouts,
        peer_errors,
        fallback_keys,
    }
}

fn main() -> ExitCode {
    let mut smoke = false;
    let mut out_path = String::from("BENCH_service.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--out" => match args.next() {
                Some(p) => out_path = p,
                None => {
                    eprintln!("service-bench: `--out` expects a path");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!("usage: service-bench [--smoke] [--out PATH]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("service-bench: unknown argument `{other}` (try --help)");
                return ExitCode::from(2);
            }
        }
    }

    let warm_reps = if smoke { 5 } else { 25 };
    let sweep_total = if smoke { 600 } else { 96_000 };
    let sweep_trials = if smoke { 1 } else { 4 };
    let mut workloads = all_workloads();
    if smoke {
        workloads.truncate(3);
    }

    // The suite: every figure workload on every registered backend,
    // minus what a backend's inherent limits rule out. Several
    // pipelines widen through 64-bit lanes internally, which e.g. HVX
    // does not have, so each workload is probed with a direct compile;
    // failures on limited targets are recorded, not silently dropped,
    // and a full-width target failing to compile anything is a bug.
    let mut gate_failed = false;
    let mut combos: Vec<(String, String, Isa)> = Vec::new();
    let mut truth: Vec<(String, String, u64)> = Vec::new();
    let mut capability: Vec<Capability> = fpir::machine::ALL_ISAS
        .into_iter()
        .map(|isa| Capability { isa, served: Vec::new(), skipped: Vec::new() })
        .collect();
    for wl in &workloads {
        let expr_src = wl.pipeline.expr.to_string();
        let e = fpir::parser::parse_expr(&expr_src, LANES)
            .unwrap_or_else(|e| panic!("{}: workload expr must parse: {e}", wl.name()));
        let exec_inputs = wl.random_inputs(64, 8, 0x5E2C);
        for (slot, isa) in fpir::machine::ALL_ISAS.into_iter().enumerate() {
            let pf = Pitchfork::new(isa);
            match compile_to_executable(&pf, &e) {
                Ok(art) => {
                    capability[slot].served.push(wl.name().to_string());
                    // The execution gate on the artifact the service
                    // serves: the fused executable must be bit-identical
                    // to the reference interpreter on a real image. The
                    // service's `run_pipeline` executes exactly this
                    // `exe`, so a fusion bug can never hide behind the
                    // compile-equality gates below.
                    let want = run_program_reference(
                        &wl.pipeline,
                        &art.program,
                        target(isa),
                        &exec_inputs,
                    )
                    .unwrap_or_else(|e| {
                        panic!("{}/{isa}: reference run must succeed: {e}", wl.name())
                    });
                    let got = run_tiled_exe(&wl.pipeline, &art.exe, &exec_inputs, 2)
                        .unwrap_or_else(|e| {
                            panic!("{}/{isa}: fused run must succeed: {e}", wl.name())
                        });
                    if got != want {
                        eprintln!(
                            "DIVERGENCE {name}/{isa}: fused executable diverges from the                              reference interpreter",
                            name = wl.name()
                        );
                        gate_failed = true;
                    }
                    combos.push((wl.name().to_string(), expr_src.clone(), isa));
                    truth.push((art.lowered.to_string(), art.program.render(), art.cycles));
                }
                // Only a backend with an inherent lane-width limit may
                // shrink its menu; full-width targets serve everything.
                Err(e) if target(isa).max_lane_bits() < 64 => {
                    capability[slot].skipped.push(wl.name().to_string());
                    let _ = e;
                }
                Err(e) => panic!("{}/{isa}: direct compile must succeed: {e}", wl.name()),
            }
        }
    }

    let svc = Arc::new(Service::new(ServiceConfig {
        cache_bytes: 256 << 20,
        workers: std::thread::available_parallelism().map_or(4, |n| n.get().min(8)),
        queue_capacity: 256,
        default_timeout_ms: None,
        cache_dir: None,
        cache_max_bytes: None,
        cache_max_age: None,
    }));

    let mut rows: Vec<Row> = Vec::new();

    for ((name, expr, isa), (lowered, program, cycles)) in combos.iter().zip(&truth) {
        let req = Request::Compile(spec(expr, *isa));

        // Cold: the first request for this key is a guaranteed miss.
        let t0 = Instant::now();
        let v = svc.handle(&req);
        let cold_ns = t0.elapsed().as_nanos();
        if get(&v, "ok").and_then(Json::as_bool) != Some(true) {
            eprintln!("service-bench: {name}/{isa} cold request failed: {v:?}");
            return ExitCode::FAILURE;
        }
        if get(&v, "source").and_then(Json::as_str) != Some("computed") {
            eprintln!("service-bench: {name}/{isa} first request was not a miss: {v:?}");
            return ExitCode::FAILURE;
        }

        // The equality gate on the cold (freshly computed) response.
        let same = get(&v, "lowered").and_then(Json::as_str) == Some(lowered.as_str())
            && get(&v, "program").and_then(Json::as_str) == Some(program.as_str())
            && get(&v, "cycles").and_then(Json::as_int) == Some(i128::from(*cycles));
        if !same {
            eprintln!("DIVERGENCE {name}/{isa}: served response differs from the direct compiler");
            gate_failed = true;
        }

        // Warm: the same request again, min over `warm_reps` probes; each
        // must be a cache hit and identical to the cold response.
        let mut warm_ns = u128::MAX;
        for _ in 0..warm_reps {
            let t0 = Instant::now();
            let w = svc.handle(&req);
            warm_ns = warm_ns.min(t0.elapsed().as_nanos());
            if get(&w, "source").and_then(Json::as_str) != Some("hit") {
                eprintln!("service-bench: {name}/{isa} warm request was not a hit: {w:?}");
                return ExitCode::FAILURE;
            }
            if get(&w, "lowered").and_then(Json::as_str) != Some(lowered.as_str())
                || get(&w, "program").and_then(Json::as_str) != Some(program.as_str())
            {
                eprintln!(
                    "DIVERGENCE {name}/{isa}: warm response differs from the direct compiler"
                );
                gate_failed = true;
            }
        }

        rows.push(Row { workload: name.clone(), isa: *isa, cold_ns, warm_ns });
    }

    // ── socket throughput against the warmed cache ──────────────────
    // One event-loop server in-process; clients are real Unix-socket
    // connections, so the sweep measures the transport the daemon
    // actually runs, not just `Service::handle`.
    let sock = std::env::temp_dir().join(format!("service-bench-{}.sock", std::process::id()));
    let _ = std::fs::remove_file(&sock);
    let ep = Endpoint::Unix(sock.clone());
    let server = {
        let svc = Arc::clone(&svc);
        let ep = ep.clone();
        std::thread::spawn(move || serve_with(svc, &ep, &ServeOptions::default()))
    };
    for _ in 0..100 {
        if sock.exists() {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(20));
    }

    let frames: Vec<Vec<u8>> =
        combos.iter().map(|(_, expr, isa)| encode_compile(expr, *isa, None)).collect();

    let thread_counts: &[usize] = if smoke { &[1, 2] } else { &[1, 2, 4, 8, 16] };
    // Trials run as interleaved ladders (1..16, then again) and each
    // point keeps its best, so background-load drift during the sweep
    // lands on every thread count instead of biasing one.
    let mut rps: Vec<(usize, f64)> = thread_counts.iter().map(|&t| (t, 0.0f64)).collect();
    for _ in 0..sweep_trials {
        for (i, &threads) in thread_counts.iter().enumerate() {
            let r = sweep_point(&sock, &frames, threads, sweep_total);
            if r > rps[i].1 {
                rps[i].1 = r;
            }
        }
    }

    // Pipelined depth sweep: windows of `depth` tagged requests
    // concatenated so each window costs the client one `write`.
    let pipelined_threads = if smoke { 2 } else { 4 };
    let depths: &[usize] = if smoke { &[1, 8] } else { PIPELINE_DEPTHS };
    let mut pipelined: Vec<(usize, f64)> = Vec::with_capacity(depths.len());
    for &depth in depths {
        let batches: Vec<Vec<u8>> = combos
            .iter()
            .enumerate()
            .map(|(i, _)| {
                let mut batch = Vec::new();
                for d in 0..depth {
                    let (_, expr, isa) = &combos[(i + d) % combos.len()];
                    batch.extend_from_slice(&encode_compile(expr, *isa, Some(&format!("w{d}"))));
                }
                batch
            })
            .collect();
        let mut best = 0.0f64;
        for _ in 0..sweep_trials {
            best =
                best.max(pipelined_point(&sock, &batches, pipelined_threads, sweep_total, depth));
        }
        pipelined.push((depth, best));
    }

    // Stop the server the way a client would.
    {
        let mut stream = UnixStream::connect(&sock).expect("connect for shutdown");
        let mut frame = Vec::new();
        write_frame(&mut frame, &Json::Object(vec![("op".into(), Json::str("shutdown"))]))
            .expect("in-memory write");
        stream.write_all(&frame).expect("shutdown write");
        let mut body = Vec::new();
        read_ok(&mut stream, &mut body);
    }
    server.join().expect("server thread").expect("server result");

    // ── persistence & fleet scenarios ───────────────────────────────
    let restart = restart_warm_scenario(&combos, &truth, &mut gate_failed);
    let fleet = fleet_scenario(&combos, &truth, &mut gate_failed);

    let speedups: Vec<f64> =
        rows.iter().map(|r| r.cold_ns as f64 / r.warm_ns.max(1) as f64).collect();
    let geo = geomean(&speedups);

    println!("{:<18} {:>4} {:>12} {:>12} {:>9}", "workload", "isa", "cold", "warm", "speedup");
    for r in &rows {
        println!(
            "{:<18} {:>4} {:>10}us {:>10}us {:>8.1}x",
            r.workload,
            r.isa.slug(),
            r.cold_ns / 1_000,
            r.warm_ns / 1_000,
            r.cold_ns as f64 / r.warm_ns.max(1) as f64,
        );
    }
    println!("\ngeomean warm speedup (cold / warm): {geo:.1}x");
    for cap in &capability {
        if !cap.skipped.is_empty() {
            println!(
                "{}: served {} workloads, skipped {:?}",
                cap.isa.slug(),
                cap.served.len(),
                cap.skipped
            );
        }
    }
    for (threads, r) in &rps {
        println!("sustained (socket), {threads} client thread(s): {r:.0} req/s");
    }
    for (depth, r) in &pipelined {
        println!("pipelined (socket), {pipelined_threads} conns x depth {depth}: {r:.0} req/s");
    }
    let lat = svc.stats().latency_summary();
    println!(
        "service latency over {} requests: p50 {}us, p99 {}us",
        lat.count, lat.p50_us, lat.p99_us
    );
    let restart_speedup = restart.cold_p99_ns as f64 / restart.warm_p99_ns.max(1) as f64;
    println!(
        "restart-warm: cold p99 {}us -> warm p99 {}us ({restart_speedup:.1}x, \
         {} spilled / {} loaded)",
        restart.cold_p99_ns / 1_000,
        restart.warm_p99_ns / 1_000,
        restart.disk_spills,
        restart.disk_loaded
    );
    println!(
        "fleet of {}: {} unique keys, {} compiles, {} peer hits, {} misses, \
         {} timeouts, {} errors, {} fallback keys after daemon death",
        fleet.daemons,
        fleet.unique_keys,
        fleet.total_compiles,
        fleet.peer_hits,
        fleet.peer_misses,
        fleet.peer_timeouts,
        fleet.peer_errors,
        fleet.fallback_keys
    );

    let json = render_json(&RenderInputs {
        svc: &svc,
        rows: &rows,
        rps: &rps,
        pipelined: &pipelined,
        pipelined_threads,
        restart: &restart,
        fleet: &fleet,
        capability: &capability,
        geo,
        smoke,
        warm_reps,
        sweep_total,
    });
    if let Err(e) = std::fs::write(&out_path, json) {
        eprintln!("service-bench: cannot write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {out_path}");

    if gate_failed {
        eprintln!("service-bench: FAILED — served responses diverged from the direct compiler");
        return ExitCode::FAILURE;
    }
    // The remaining bars are judged on the full suite; smoke runs are
    // too short and noise-sensitive to gate on (equality stays fatal
    // above).
    if !smoke {
        if geo < 10.0 {
            eprintln!(
                "service-bench: FAILED — warm speedup {geo:.1}x is below the 10x acceptance bar"
            );
            return ExitCode::FAILURE;
        }
        for pair in rps.windows(2).filter(|w| w[1].0 <= 8) {
            if pair[1].1 < pair[0].1 {
                eprintln!(
                    "service-bench: FAILED — throughput regressed {} → {} threads \
                     ({:.0} → {:.0} req/s); the curve must be monotone through 8",
                    pair[0].0, pair[1].0, pair[0].1, pair[1].1
                );
                return ExitCode::FAILURE;
            }
        }
        let at4 = rps.iter().find(|(t, _)| *t == 4).map_or(0.0, |(_, r)| *r);
        if at4 <= OLD_PEAK_RPS {
            eprintln!(
                "service-bench: FAILED — 4-thread throughput {at4:.0} req/s does not beat \
                 the thread-per-connection peak ({OLD_PEAK_RPS:.0})"
            );
            return ExitCode::FAILURE;
        }
        if restart_speedup < RESTART_WARM_SPEEDUP {
            eprintln!(
                "service-bench: FAILED — restart-warm cold-start p99 improved only \
                 {restart_speedup:.1}x (needs {RESTART_WARM_SPEEDUP}x)"
            );
            return ExitCode::FAILURE;
        }
        let compile_budget = (fleet.unique_keys as f64 * FLEET_COMPILE_SLACK).ceil() as u64;
        if fleet.total_compiles > compile_budget {
            eprintln!(
                "service-bench: FAILED — fleet compiled {} times for {} unique keys \
                 (budget {compile_budget})",
                fleet.total_compiles, fleet.unique_keys
            );
            return ExitCode::FAILURE;
        }
        if fleet.peer_hits < fleet.unique_keys as u64 {
            eprintln!(
                "service-bench: FAILED — only {} peer hits for {} unique keys; \
                 forwarding is not carrying the fleet",
                fleet.peer_hits, fleet.unique_keys
            );
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

/// One backend's probed serving menu.
struct Capability {
    isa: Isa,
    served: Vec<String>,
    skipped: Vec<String>,
}

/// Geometric mean (the bench crate's helper, duplicated locally so the
/// service crate does not grow a dependency on the figure harness).
fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

struct RenderInputs<'a> {
    svc: &'a Service,
    rows: &'a [Row],
    rps: &'a [(usize, f64)],
    pipelined: &'a [(usize, f64)],
    pipelined_threads: usize,
    restart: &'a RestartWarm,
    fleet: &'a FleetReport,
    capability: &'a [Capability],
    geo: f64,
    smoke: bool,
    warm_reps: usize,
    sweep_total: usize,
}

/// Hand-built JSON (the environment has no serde; the shape is flat).
fn render_json(r: &RenderInputs<'_>) -> String {
    let stats = r.svc.stats();
    let lat = stats.latency_summary();
    let cache = r.svc.cache_stats();
    let names =
        |xs: &[String]| xs.iter().map(|n| format!("\"{n}\"")).collect::<Vec<_>>().join(", ");
    let mut s = String::from("{\n");
    let _ = writeln!(s, "  \"schema\": \"pitchfork-service-bench/v4\",");
    let _ = writeln!(s, "  \"smoke\": {},", r.smoke);
    let _ = writeln!(s, "  \"transport\": \"unix-socket-eventloop\",");
    let _ = writeln!(s, "  \"warm_reps\": {},", r.warm_reps);
    let _ = writeln!(s, "  \"sweep_requests_per_point\": {},", r.sweep_total);
    let _ = writeln!(s, "  \"geomean_warm_speedup\": {:.4},", r.geo);
    let _ = writeln!(s, "  \"throughput\": {{");
    for (i, (threads, rate)) in r.rps.iter().enumerate() {
        let _ = writeln!(
            s,
            "    \"{threads}\": {rate:.1}{}",
            if i + 1 < r.rps.len() { "," } else { "" }
        );
    }
    let _ = writeln!(s, "  }},");
    let _ = writeln!(s, "  \"throughput_pipelined\": {{");
    let _ = writeln!(s, "    \"threads\": {},", r.pipelined_threads);
    let _ = writeln!(s, "    \"by_depth\": {{");
    for (i, (depth, rate)) in r.pipelined.iter().enumerate() {
        let _ = writeln!(
            s,
            "      \"{depth}\": {rate:.1}{}",
            if i + 1 < r.pipelined.len() { "," } else { "" }
        );
    }
    let _ = writeln!(s, "    }}");
    let _ = writeln!(s, "  }},");
    let _ = writeln!(s, "  \"restart_warm\": {{");
    let _ = writeln!(s, "    \"cold_p99_ns\": {},", r.restart.cold_p99_ns);
    let _ = writeln!(s, "    \"warm_p99_ns\": {},", r.restart.warm_p99_ns);
    let _ = writeln!(
        s,
        "    \"speedup\": {:.4},",
        r.restart.cold_p99_ns as f64 / r.restart.warm_p99_ns.max(1) as f64
    );
    let _ = writeln!(s, "    \"disk_spills\": {},", r.restart.disk_spills);
    let _ = writeln!(s, "    \"disk_loaded\": {}", r.restart.disk_loaded);
    let _ = writeln!(s, "  }},");
    let _ = writeln!(s, "  \"fleet\": {{");
    let _ = writeln!(s, "    \"daemons\": {},", r.fleet.daemons);
    let _ = writeln!(s, "    \"unique_keys\": {},", r.fleet.unique_keys);
    let _ = writeln!(s, "    \"total_compiles\": {},", r.fleet.total_compiles);
    let _ = writeln!(s, "    \"peer_hits\": {},", r.fleet.peer_hits);
    let _ = writeln!(s, "    \"peer_misses\": {},", r.fleet.peer_misses);
    let _ = writeln!(s, "    \"peer_timeouts\": {},", r.fleet.peer_timeouts);
    let _ = writeln!(s, "    \"peer_errors\": {},", r.fleet.peer_errors);
    let _ = writeln!(s, "    \"fallback_keys\": {}", r.fleet.fallback_keys);
    let _ = writeln!(s, "  }},");
    let _ = writeln!(s, "  \"capability\": {{");
    for (i, cap) in r.capability.iter().enumerate() {
        let _ = writeln!(s, "    \"{}\": {{", cap.isa.slug());
        let _ = writeln!(s, "      \"served\": [{}],", names(&cap.served));
        let _ = writeln!(s, "      \"skipped\": [{}]", names(&cap.skipped));
        let _ = writeln!(s, "    }}{}", if i + 1 < r.capability.len() { "," } else { "" });
    }
    let _ = writeln!(s, "  }},");
    let _ = writeln!(s, "  \"stats\": {{");
    let _ = writeln!(s, "    \"requests\": {},", Stats::read(&stats.requests));
    let _ = writeln!(s, "    \"cache_hits\": {},", Stats::read(&stats.cache_hits));
    let _ = writeln!(s, "    \"cache_misses\": {},", Stats::read(&stats.cache_misses));
    let _ = writeln!(s, "    \"compiles\": {},", Stats::read(&stats.compiles));
    let _ = writeln!(s, "    \"flight_joins\": {},", Stats::read(&stats.flight_joins));
    let _ = writeln!(s, "    \"dispatch_batch_max\": {},", Stats::read(&stats.dispatch_batch_max));
    let _ = writeln!(s, "    \"evictions\": {},", cache.evictions);
    let _ = writeln!(s, "    \"resident_bytes\": {},", cache.resident_bytes);
    let _ = writeln!(s, "    \"p50_us\": {},", lat.p50_us);
    let _ = writeln!(s, "    \"p99_us\": {}", lat.p99_us);
    let _ = writeln!(s, "  }},");
    let _ = writeln!(s, "  \"results\": [");
    for (i, row) in r.rows.iter().enumerate() {
        let _ = writeln!(s, "    {{");
        let _ = writeln!(s, "      \"workload\": \"{}\",", row.workload);
        let _ = writeln!(s, "      \"isa\": \"{}\",", row.isa.slug());
        let _ = writeln!(s, "      \"cold_ns\": {},", row.cold_ns);
        let _ = writeln!(s, "      \"warm_ns\": {},", row.warm_ns);
        let _ =
            writeln!(s, "      \"speedup\": {:.4}", row.cold_ns as f64 / row.warm_ns.max(1) as f64);
        let _ = writeln!(s, "    }}{}", if i + 1 < r.rows.len() { "," } else { "" });
    }
    s.push_str("  ]\n}\n");
    s
}
