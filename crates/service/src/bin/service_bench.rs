//! `service-bench` — serving-layer latency and throughput benchmark.
//!
//! Drives an in-process [`Service`] (the same object `pitchforkd` wraps
//! in sockets — measuring here keeps transport noise out of the cache
//! numbers) over the 16-workload figure suite and reports:
//!
//! * **cold** compile latency — the first request for each
//!   workload × target, a guaranteed cache miss that runs the full
//!   lift → lower → legalize → emit → link pipeline on a worker;
//! * **warm** compile latency — the same request repeated, a cache hit
//!   served straight from the content-addressed artifact cache
//!   (min over `--warm-reps` probes);
//! * **sustained throughput** — requests/sec at 1, 2 and 4 client
//!   threads hammering the warmed service round-robin.
//!
//! Two gates, both fatal (exit 1):
//!
//! * every served response must be **bit-identical** (lowered
//!   expression, rendered program, cycle price) to a direct
//!   [`pitchfork::compile_to_executable`] call — the served path may
//!   never change what the compiler produces;
//! * warm latency must beat cold by ≥10x on the suite geomean — the
//!   cache has to actually pay for itself (full runs only; the truncated
//!   `--smoke` geomean is reported but not gated).
//!
//! Writes `BENCH_service.json`.
//!
//! Usage: `cargo run --release -p pitchfork-service --bin service-bench
//!         -- [--smoke] [--out PATH]`

use fpir::Isa;
use fpir_workloads::{all_workloads, LANES};
use pitchfork::{compile_to_executable, EngineConfig, Pitchfork};
use pitchfork_service::protocol::CompileSpec;
use pitchfork_service::{Json, Request, Service, ServiceConfig, Stats};
use std::fmt::Write as _;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

/// One workload × target measurement.
struct Row {
    workload: String,
    isa: Isa,
    cold_ns: u128,
    warm_ns: u128,
}

fn spec(expr: &str, isa: Isa) -> CompileSpec {
    CompileSpec {
        expr: expr.to_string(),
        lanes: LANES,
        isa,
        engine: EngineConfig::FAST,
        synthesized_rules: true,
        leave_out: None,
        timeout_ms: None,
    }
}

fn get<'a>(v: &'a Json, k: &str) -> Option<&'a Json> {
    v.get(k)
}

fn main() -> ExitCode {
    let mut smoke = false;
    let mut out_path = String::from("BENCH_service.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--out" => match args.next() {
                Some(p) => out_path = p,
                None => {
                    eprintln!("service-bench: `--out` expects a path");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!("usage: service-bench [--smoke] [--out PATH]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("service-bench: unknown argument `{other}` (try --help)");
                return ExitCode::from(2);
            }
        }
    }

    let warm_reps = if smoke { 5 } else { 25 };
    let rps_requests_per_thread = if smoke { 50 } else { 400 };
    let mut workloads = all_workloads();
    if smoke {
        workloads.truncate(3);
    }

    // The suite: every figure workload on x86 and ARM. (HVX is excluded
    // for the same reason as the stress tests: several pipelines widen
    // through 64-bit lanes internally, which HVX does not have.)
    let combos: Vec<(String, String, Isa)> = workloads
        .iter()
        .flat_map(|wl| {
            [Isa::X86Avx2, Isa::ArmNeon]
                .into_iter()
                .map(|isa| (wl.name().to_string(), wl.pipeline.expr.to_string(), isa))
        })
        .collect();

    let svc = Arc::new(Service::new(ServiceConfig {
        cache_bytes: 256 << 20,
        workers: std::thread::available_parallelism().map_or(4, |n| n.get().min(8)),
        queue_capacity: 256,
        default_timeout_ms: None,
    }));

    // Ground truth for the equality gate, computed before any serving.
    let truth: Vec<(String, String, u64)> = combos
        .iter()
        .map(|(name, expr, isa)| {
            let pf = Pitchfork::new(*isa);
            let e = fpir::parser::parse_expr(expr, LANES)
                .unwrap_or_else(|e| panic!("{name}: workload expr must parse: {e}"));
            let art = compile_to_executable(&pf, &e)
                .unwrap_or_else(|e| panic!("{name}/{isa}: direct compile must succeed: {e}"));
            (art.lowered.to_string(), art.program.render(), art.cycles)
        })
        .collect();

    let mut rows: Vec<Row> = Vec::new();
    let mut gate_failed = false;

    for ((name, expr, isa), (lowered, program, cycles)) in combos.iter().zip(&truth) {
        let req = Request::Compile(spec(expr, *isa));

        // Cold: the first request for this key is a guaranteed miss.
        let t0 = Instant::now();
        let v = svc.handle(&req);
        let cold_ns = t0.elapsed().as_nanos();
        if get(&v, "ok").and_then(Json::as_bool) != Some(true) {
            eprintln!("service-bench: {name}/{isa} cold request failed: {v:?}");
            return ExitCode::FAILURE;
        }
        if get(&v, "source").and_then(Json::as_str) != Some("computed") {
            eprintln!("service-bench: {name}/{isa} first request was not a miss: {v:?}");
            return ExitCode::FAILURE;
        }

        // The equality gate on the cold (freshly computed) response.
        let same = get(&v, "lowered").and_then(Json::as_str) == Some(lowered.as_str())
            && get(&v, "program").and_then(Json::as_str) == Some(program.as_str())
            && get(&v, "cycles").and_then(Json::as_int) == Some(i128::from(*cycles));
        if !same {
            eprintln!("DIVERGENCE {name}/{isa}: served response differs from the direct compiler");
            gate_failed = true;
        }

        // Warm: the same request again, min over `warm_reps` probes; each
        // must be a cache hit and identical to the cold response.
        let mut warm_ns = u128::MAX;
        for _ in 0..warm_reps {
            let t0 = Instant::now();
            let w = svc.handle(&req);
            warm_ns = warm_ns.min(t0.elapsed().as_nanos());
            if get(&w, "source").and_then(Json::as_str) != Some("hit") {
                eprintln!("service-bench: {name}/{isa} warm request was not a hit: {w:?}");
                return ExitCode::FAILURE;
            }
            if get(&w, "lowered").and_then(Json::as_str) != Some(lowered.as_str())
                || get(&w, "program").and_then(Json::as_str) != Some(program.as_str())
            {
                eprintln!(
                    "DIVERGENCE {name}/{isa}: warm response differs from the direct compiler"
                );
                gate_failed = true;
            }
        }

        rows.push(Row { workload: name.clone(), isa: *isa, cold_ns, warm_ns });
    }

    // Sustained throughput against the warmed cache, T client threads
    // issuing requests round-robin over the whole suite.
    let thread_counts = [1usize, 2, 4];
    let mut rps: Vec<(usize, f64)> = Vec::new();
    for &threads in &thread_counts {
        let t0 = Instant::now();
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let svc = svc.clone();
                let combos = combos.clone();
                std::thread::spawn(move || {
                    for i in 0..rps_requests_per_thread {
                        let (_, expr, isa) = &combos[(i + t) % combos.len()];
                        let v = svc.handle(&Request::Compile(spec(expr, *isa)));
                        assert_eq!(
                            v.get("ok").and_then(Json::as_bool),
                            Some(true),
                            "sustained request failed: {v:?}"
                        );
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("client thread");
        }
        let secs = t0.elapsed().as_secs_f64();
        rps.push((threads, (threads * rps_requests_per_thread) as f64 / secs.max(1e-9)));
    }

    let speedups: Vec<f64> =
        rows.iter().map(|r| r.cold_ns as f64 / r.warm_ns.max(1) as f64).collect();
    let geo = geomean(&speedups);

    println!("{:<18} {:>4} {:>12} {:>12} {:>9}", "workload", "isa", "cold", "warm", "speedup");
    for r in &rows {
        println!(
            "{:<18} {:>4} {:>10}us {:>10}us {:>8.1}x",
            r.workload,
            isa_tag(r.isa),
            r.cold_ns / 1_000,
            r.warm_ns / 1_000,
            r.cold_ns as f64 / r.warm_ns.max(1) as f64,
        );
    }
    println!("\ngeomean warm speedup (cold / warm): {geo:.1}x");
    for (threads, r) in &rps {
        println!("sustained, {threads} client thread(s): {r:.0} req/s");
    }
    let lat = svc.stats().latency_summary();
    println!(
        "service latency over {} requests: p50 {}us, p99 {}us",
        lat.count, lat.p50_us, lat.p99_us
    );

    let json = render_json(&svc, &rows, &rps, geo, smoke, warm_reps, rps_requests_per_thread);
    if let Err(e) = std::fs::write(&out_path, json) {
        eprintln!("service-bench: cannot write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {out_path}");

    if gate_failed {
        eprintln!("service-bench: FAILED — served responses diverged from the direct compiler");
        return ExitCode::FAILURE;
    }
    // The latency bar is judged on the full suite; the 3-workload smoke
    // geomean is too noise-sensitive to gate on (equality stays fatal above).
    if !smoke && geo < 10.0 {
        eprintln!("service-bench: FAILED — warm speedup {geo:.1}x is below the 10x acceptance bar");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn isa_tag(isa: Isa) -> &'static str {
    match isa {
        Isa::X86Avx2 => "x86",
        Isa::ArmNeon => "arm",
        Isa::HexagonHvx => "hvx",
    }
}

/// Geometric mean (the bench crate's helper, duplicated locally so the
/// service crate does not grow a dependency on the figure harness).
fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// Hand-built JSON (the environment has no serde; the shape is flat).
fn render_json(
    svc: &Service,
    rows: &[Row],
    rps: &[(usize, f64)],
    geo: f64,
    smoke: bool,
    warm_reps: usize,
    rps_requests_per_thread: usize,
) -> String {
    let stats = svc.stats();
    let lat = stats.latency_summary();
    let cache = svc.cache_stats();
    let mut s = String::from("{\n");
    let _ = writeln!(s, "  \"schema\": \"pitchfork-service-bench/v1\",");
    let _ = writeln!(s, "  \"smoke\": {smoke},");
    let _ = writeln!(s, "  \"warm_reps\": {warm_reps},");
    let _ = writeln!(s, "  \"rps_requests_per_thread\": {rps_requests_per_thread},");
    let _ = writeln!(s, "  \"geomean_warm_speedup\": {geo:.4},");
    let _ = writeln!(s, "  \"throughput\": {{");
    for (i, (threads, r)) in rps.iter().enumerate() {
        let _ =
            writeln!(s, "    \"{threads}\": {r:.1}{}", if i + 1 < rps.len() { "," } else { "" });
    }
    let _ = writeln!(s, "  }},");
    let _ = writeln!(s, "  \"stats\": {{");
    let _ = writeln!(s, "    \"requests\": {},", Stats::read(&stats.requests));
    let _ = writeln!(s, "    \"cache_hits\": {},", Stats::read(&stats.cache_hits));
    let _ = writeln!(s, "    \"cache_misses\": {},", Stats::read(&stats.cache_misses));
    let _ = writeln!(s, "    \"compiles\": {},", Stats::read(&stats.compiles));
    let _ = writeln!(s, "    \"flight_joins\": {},", Stats::read(&stats.flight_joins));
    let _ = writeln!(s, "    \"evictions\": {},", cache.evictions);
    let _ = writeln!(s, "    \"resident_bytes\": {},", cache.resident_bytes);
    let _ = writeln!(s, "    \"p50_us\": {},", lat.p50_us);
    let _ = writeln!(s, "    \"p99_us\": {}", lat.p99_us);
    let _ = writeln!(s, "  }},");
    let _ = writeln!(s, "  \"results\": [");
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(s, "    {{");
        let _ = writeln!(s, "      \"workload\": \"{}\",", r.workload);
        let _ = writeln!(s, "      \"isa\": \"{}\",", isa_tag(r.isa));
        let _ = writeln!(s, "      \"cold_ns\": {},", r.cold_ns);
        let _ = writeln!(s, "      \"warm_ns\": {},", r.warm_ns);
        let _ = writeln!(s, "      \"speedup\": {:.4}", r.cold_ns as f64 / r.warm_ns.max(1) as f64);
        let _ = writeln!(s, "    }}{}", if i + 1 < rows.len() { "," } else { "" });
    }
    s.push_str("  ]\n}\n");
    s
}
