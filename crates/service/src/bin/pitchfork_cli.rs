//! `pitchfork-cli` — a command-line client for `pitchforkd`.
//!
//! ```text
//! pitchfork-cli --socket /tmp/pitchforkd.sock ping
//! pitchfork-cli --socket S compile --expr 'u8(min(u16(a_u8) + u16(b_u8), 255))' --lanes 16 --isa arm
//! pitchfork-cli --tcp 127.0.0.1:7737 run --expr 'a_u8 + b_u8' --lanes 4 --isa x86 \
//!     --input a=1,2,3,4 --input b=5,6,7,8
//! pitchfork-cli --socket S stats [--text]
//! pitchfork-cli --socket S pipeline --expr 'a_u8 + b_u8' --lanes 4 --isa arm
//! pitchfork-cli --socket S shutdown
//! ```
//!
//! Prints the raw JSON response; exits non-zero when the server answers
//! `"ok": false` (or can't be reached). `pipeline` exercises protocol
//! v2: it writes three tagged copies of the request back-to-back before
//! reading anything, then collects the three responses (in whatever
//! order the server answers) and matches them back up by tag.

use pitchfork_service::{Client, Endpoint, Json};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
pitchfork-cli — talk to a running pitchforkd

USAGE:
    pitchfork-cli (--socket PATH | --tcp ADDR) COMMAND [OPTIONS]

COMMANDS:
    ping                       liveness check
    stats                      server counters and latency percentiles
    shutdown                   ask the server to stop
    compile                    compile an expression
    run                        compile and execute over input vectors
    pipeline                   send 3 tagged compile requests back-to-back
                               before reading any response (protocol v2)

STATS OPTIONS:
    --text                     Prometheus-style `name value` lines

COMPILE/RUN OPTIONS:
    --tag TAG                  opaque tag echoed in the response
    --expr EXPR                the expression (printed syntax)
    --lanes N                  vector width
    --isa x86|arm|hvx          target
    --engine fast|reference    rewrite engine           [default: fast]
    --no-synthesized           drop synthesized rules
    --leave-out NAME           leave-one-out benchmark
    --timeout-ms N             per-request deadline
    --input NAME=V1,V2,...     (run) one input vector, repeatable
";

fn fail(msg: &str) -> ExitCode {
    eprintln!("pitchfork-cli: {msg}");
    eprintln!("{USAGE}");
    ExitCode::FAILURE
}

struct Args {
    rest: std::vec::IntoIter<String>,
}

impl Args {
    fn take(&mut self, what: &str) -> Result<String, String> {
        self.rest.next().ok_or_else(|| format!("{what} needs a value"))
    }
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.iter().any(|a| a == "-h" || a == "--help") {
        println!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    let mut args = Args { rest: argv.into_iter() };

    let mut endpoint: Option<Endpoint> = None;
    let mut command: Option<String> = None;
    let mut members: Vec<(String, Json)> = Vec::new();
    let mut inputs: Vec<(String, Json)> = Vec::new();

    while let Some(arg) = args.rest.next() {
        let r: Result<(), String> = (|| {
            match arg.as_str() {
                "--socket" => {
                    endpoint = Some(Endpoint::Unix(PathBuf::from(args.take("--socket")?)));
                }
                "--tcp" => endpoint = Some(Endpoint::Tcp(args.take("--tcp")?)),
                "--expr" => members.push(("expr".into(), Json::str(args.take("--expr")?))),
                "--lanes" => {
                    let n: i128 = args
                        .take("--lanes")?
                        .parse()
                        .map_err(|_| "--lanes must be an integer".to_string())?;
                    members.push(("lanes".into(), Json::Int(n)));
                }
                "--isa" => members.push(("isa".into(), Json::str(args.take("--isa")?))),
                "--tag" => members.push(("tag".into(), Json::str(args.take("--tag")?))),
                "--text" => members.push(("format".into(), Json::str("text"))),
                "--engine" => members.push(("engine".into(), Json::str(args.take("--engine")?))),
                "--no-synthesized" => {
                    members.push(("synthesized_rules".into(), Json::Bool(false)));
                }
                "--leave-out" => {
                    members.push(("leave_out".into(), Json::str(args.take("--leave-out")?)));
                }
                "--timeout-ms" => {
                    let n: i128 = args
                        .take("--timeout-ms")?
                        .parse()
                        .map_err(|_| "--timeout-ms must be an integer".to_string())?;
                    members.push(("timeout_ms".into(), Json::Int(n)));
                }
                "--input" => {
                    let spec = args.take("--input")?;
                    let (name, lanes) = spec
                        .split_once('=')
                        .ok_or_else(|| "--input expects NAME=V1,V2,...".to_string())?;
                    let vals: Result<Vec<Json>, String> = lanes
                        .split(',')
                        .map(|v| {
                            v.trim()
                                .parse::<i128>()
                                .map(Json::Int)
                                .map_err(|_| format!("bad lane value `{v}`"))
                        })
                        .collect();
                    inputs.push((name.to_string(), Json::Array(vals?)));
                }
                cmd if !cmd.starts_with('-') && command.is_none() => {
                    command = Some(cmd.to_string());
                }
                other => return Err(format!("unknown argument `{other}`")),
            }
            Ok(())
        })();
        if let Err(m) = r {
            return fail(&m);
        }
    }

    let Some(endpoint) = endpoint else {
        return fail("one of --socket or --tcp is required");
    };
    let Some(command) = command else {
        return fail("a command is required");
    };
    match command.as_str() {
        "ping" | "stats" | "shutdown" | "compile" | "run" | "pipeline" => {}
        other => return fail(&format!("unknown command `{other}`")),
    }

    let op = if command == "pipeline" { "compile".to_string() } else { command.clone() };
    let mut frame = vec![("op".to_string(), Json::str(op))];
    frame.extend(members);
    if command == "run" || !inputs.is_empty() {
        frame.push(("inputs".into(), Json::Object(inputs)));
    }

    let mut client = match Client::connect(&endpoint) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("pitchfork-cli: cannot connect to {endpoint}: {e}");
            return ExitCode::FAILURE;
        }
    };
    if command == "pipeline" {
        return pipeline(&mut client, frame);
    }
    match client.request(&Json::Object(frame)) {
        Ok(response) => {
            println!("{}", response.render());
            if response.get("ok").and_then(Json::as_bool) == Some(true) {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("pitchfork-cli: request failed: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Protocol v2 demo: three tagged copies of one compile request on the
/// wire before any read; responses may come back in any order and are
/// matched up by their echoed tags.
fn pipeline(client: &mut pitchfork_service::Client, frame: Vec<(String, Json)>) -> ExitCode {
    let tags = ["p1", "p2", "p3"];
    for tag in tags {
        let mut tagged = frame.clone();
        tagged.retain(|(k, _)| k != "tag");
        tagged.push(("tag".into(), Json::str(tag)));
        if let Err(e) = client.send(&Json::Object(tagged)) {
            eprintln!("pitchfork-cli: pipelined send failed: {e}");
            return ExitCode::FAILURE;
        }
    }
    let mut unseen: Vec<&str> = tags.to_vec();
    for _ in tags {
        let response = match client.recv() {
            Ok(v) => v,
            Err(e) => {
                eprintln!("pitchfork-cli: pipelined receive failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        if response.get("ok").and_then(Json::as_bool) != Some(true) {
            eprintln!("pitchfork-cli: pipelined request failed: {}", response.render());
            return ExitCode::FAILURE;
        }
        let Some(tag) = response.get("tag").and_then(Json::as_str) else {
            eprintln!("pitchfork-cli: response carries no tag: {}", response.render());
            return ExitCode::FAILURE;
        };
        let Some(at) = unseen.iter().position(|t| *t == tag) else {
            eprintln!("pitchfork-cli: unexpected or duplicate tag `{tag}`");
            return ExitCode::FAILURE;
        };
        unseen.remove(at);
    }
    println!(
        "{}",
        Json::Object(vec![("ok".into(), Json::Bool(true)), ("pipelined".into(), Json::Int(3)),])
            .render()
    );
    ExitCode::SUCCESS
}
