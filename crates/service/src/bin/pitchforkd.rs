//! `pitchforkd` — the compile-and-run daemon.
//!
//! ```text
//! pitchforkd --socket /tmp/pitchforkd.sock
//! pitchforkd --tcp 127.0.0.1:7737 --workers 4 --cache-mb 128 --timeout-ms 5000
//! ```
//!
//! Listens until `SIGTERM`/`SIGINT` or a `{"op":"shutdown"}` frame,
//! then drains connections and (for Unix sockets) unlinks the path.

use pitchfork_service::{
    install_signal_handlers, serve_with, Endpoint, ServeOptions, Service, ServiceConfig,
};
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;

const USAGE: &str = "\
pitchforkd — serve Pitchfork compilations over a socket

USAGE:
    pitchforkd (--socket PATH | --tcp ADDR) [OPTIONS]

OPTIONS:
    --socket PATH       listen on a Unix socket at PATH
    --tcp ADDR          listen on a TCP address, e.g. 127.0.0.1:7737
    --workers N         compile worker threads   [default: #cores, max 8]
    --queue N           compile queue capacity   [default: workers * 8]
    --cache-mb N        artifact cache budget    [default: 64]
    --timeout-ms N      default per-request deadline [default: none]
    --max-conns N       concurrent connection cap [default: 128]
    --outq-mb N         per-connection response queue budget [default: 8]
    --max-pipeline N    parsed frames in flight per connection [default: 128]
    --cache-dir PATH    spill served artifacts to PATH and re-admit them
                        on startup (restart-warm) [default: off]
    --cache-max-mb N    spill-store byte budget; an LRU sweep (by mtime,
                        refreshed on hits) evicts the oldest entries at
                        startup and after each spill [default: unbounded]
    --cache-max-age-s N evict spill entries idle longer than N seconds
                        in the same sweep [default: never]
    --peer ADDR         a sibling daemon (unix:PATH, tcp:ADDR, or bare;
                        repeatable); on a miss the key's owner is asked
                        before compiling locally
    --peer-timeout-ms N how long a peer fetch may stall before the
                        request compiles locally [default: 1500]
    -h, --help          print this help
";

fn fail(msg: &str) -> ExitCode {
    eprintln!("pitchforkd: {msg}");
    eprintln!("{USAGE}");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let mut endpoint: Option<Endpoint> = None;
    let mut config = ServiceConfig::default();
    let mut opts = ServeOptions::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut take = |what: &str| -> Result<String, String> {
            args.next().ok_or_else(|| format!("{what} needs a value"))
        };
        let parsed: Result<(), String> = (|| {
            match arg.as_str() {
                "--socket" => endpoint = Some(Endpoint::Unix(PathBuf::from(take("--socket")?))),
                "--tcp" => endpoint = Some(Endpoint::Tcp(take("--tcp")?)),
                "--workers" => {
                    config.workers = take("--workers")?
                        .parse()
                        .map_err(|_| "--workers must be an integer".to_string())?;
                    config.queue_capacity = config.workers.max(1) * 8;
                }
                "--queue" => {
                    config.queue_capacity = take("--queue")?
                        .parse()
                        .map_err(|_| "--queue must be an integer".to_string())?;
                }
                "--cache-mb" => {
                    let mb: usize = take("--cache-mb")?
                        .parse()
                        .map_err(|_| "--cache-mb must be an integer".to_string())?;
                    config.cache_bytes = mb << 20;
                }
                "--timeout-ms" => {
                    config.default_timeout_ms = Some(
                        take("--timeout-ms")?
                            .parse()
                            .map_err(|_| "--timeout-ms must be an integer".to_string())?,
                    );
                }
                "--max-conns" => {
                    opts.max_connections = take("--max-conns")?
                        .parse()
                        .map_err(|_| "--max-conns must be an integer".to_string())?;
                }
                "--outq-mb" => {
                    let mb: usize = take("--outq-mb")?
                        .parse()
                        .map_err(|_| "--outq-mb must be an integer".to_string())?;
                    opts.outq_bytes = mb << 20;
                }
                "--max-pipeline" => {
                    opts.max_pipeline = take("--max-pipeline")?
                        .parse()
                        .map_err(|_| "--max-pipeline must be an integer".to_string())?;
                }
                "--cache-dir" => {
                    config.cache_dir = Some(PathBuf::from(take("--cache-dir")?));
                }
                "--cache-max-mb" => {
                    let mb: u64 = take("--cache-max-mb")?
                        .parse()
                        .map_err(|_| "--cache-max-mb must be an integer".to_string())?;
                    config.cache_max_bytes = Some(mb << 20);
                }
                "--cache-max-age-s" => {
                    let s: u64 = take("--cache-max-age-s")?
                        .parse()
                        .map_err(|_| "--cache-max-age-s must be an integer".to_string())?;
                    config.cache_max_age = Some(std::time::Duration::from_secs(s));
                }
                "--peer" => opts.peers.push(Endpoint::parse(&take("--peer")?)),
                "--peer-timeout-ms" => {
                    opts.peer_timeout_ms = take("--peer-timeout-ms")?
                        .parse()
                        .map_err(|_| "--peer-timeout-ms must be an integer".to_string())?;
                }
                "-h" | "--help" => {
                    println!("{USAGE}");
                    std::process::exit(0);
                }
                other => return Err(format!("unknown argument `{other}`")),
            }
            Ok(())
        })();
        if let Err(m) = parsed {
            return fail(&m);
        }
    }
    let Some(endpoint) = endpoint else {
        return fail("one of --socket or --tcp is required");
    };

    install_signal_handlers();
    eprintln!(
        "pitchforkd: listening on {endpoint} ({} workers, queue {}, cache {} MiB, {} conns)",
        config.workers,
        config.queue_capacity,
        config.cache_bytes >> 20,
        opts.max_connections
    );
    if let Some(dir) = &config.cache_dir {
        let budget =
            config.cache_max_bytes.map_or("unbounded".to_string(), |b| format!("{} MiB", b >> 20));
        let age = config.cache_max_age.map_or("never expires".to_string(), |a| {
            format!("expires after {}s idle", a.as_secs())
        });
        eprintln!("pitchforkd: spilling artifacts to {} ({budget}, {age})", dir.display());
    }
    if !opts.peers.is_empty() {
        let fleet: Vec<String> = opts.peers.iter().map(|p| p.to_string()).collect();
        eprintln!("pitchforkd: fleet peers: {}", fleet.join(", "));
    }
    let service = Arc::new(Service::new(config));
    match serve_with(service, &endpoint, &opts) {
        Ok(()) => {
            eprintln!("pitchforkd: shut down cleanly");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("pitchforkd: {e}");
            ExitCode::FAILURE
        }
    }
}
