//! The readiness-driven server core: one thread, many connections,
//! zero blocking syscalls on the request path.
//!
//! ```text
//!                  ┌──────────────────────────────────────────────┐
//!                  │                 event loop                   │
//!   listener ──▶ accept                                           │
//!                  │   readable conns ──▶ FrameReader ──▶ pending │
//!                  │   pending ──▶ pump ──┬─▶ fast reply (inline) │
//!                  │                      └─▶ dispatch batch      │
//!                  │   FrameWriter ◀── replies ◀── completions    │
//!                  └───────▲──────────────────────────┬───────────┘
//!                          │ wakeup pipe              │ submit_batch
//!                  ┌───────┴──────────────────────────▼───────────┐
//!                  │        dispatch workers (TaskQueue)          │
//!                  │   Service::handle_local — compile inline     │
//!                  └──────────────────────────────────────────────┘
//! ```
//!
//! Every iteration `poll(2)`s the listener, the wakeup pipe, and every
//! connection; readable connections feed a buffering [`FrameReader`],
//! complete frames queue per-connection as *pending* work, and a pump
//! either answers them inline ([`Service::handle_cached`] — control
//! ops and cache hits) or collects them into one **dispatch batch**
//! submitted to the worker queue under a single lock. Workers push
//! completions and write one coalesced byte into the wakeup pipe, so a
//! slow compile never blocks the loop and a cache hit on any
//! connection is answered in the iteration it arrives.
//!
//! **Ordering.** Tagged requests (protocol v2) may be answered out of
//! order — the tag is the correlation. An untagged request is a full
//! barrier on its connection: it is dispatched only when nothing else
//! is in flight and blocks later frames until answered, which
//! preserves the exact serial request→response ordering v1 clients
//! assume.
//!
//! **Backpressure.** Reads pause while a connection's pending frames
//! or output backlog are over budget; a connection whose output queue
//! overflows (a client that pipelines but never reads) is sealed with
//! a final `overloaded` frame and closed once that frame drains.

use crate::error::ServiceError;
use crate::json::Json;
use crate::key::CacheKey;
use crate::peer;
use crate::poll::{poll_fds, wake_pipe, PollFd, Waker, POLLIN, POLLOUT};
use crate::protocol::{
    attach_tag, attach_tag_rendered, decode_frame, error_response, parse_request, peer_get_frame,
    request_tag, write_frame, FrameReader, FrameWriter, Request, FILL_CHUNK, MAX_FRAME,
};
use crate::server::{Endpoint, StopFlag};
use crate::service::{CacheDecision, FastReply, Service};
use crate::stats::Stats;
use fpir_pool::{Task, TaskQueue};
use std::collections::{HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::{AsRawFd, RawFd};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// How long the loop sleeps in `poll` when nothing is ready. Purely a
/// stop-flag re-check cadence: readiness and wakeups cut it short.
const POLL_TIMEOUT: Duration = Duration::from_millis(50);

/// How long a stopping server waits for in-flight work and unflushed
/// responses before giving up on stragglers.
const DRAIN_GRACE: Duration = Duration::from_secs(5);

/// Tunables for one serve loop — [`Default`] matches the daemon.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Most concurrent connections; extras get an `overloaded` frame.
    pub max_connections: usize,
    /// Per-connection output-queue byte budget; a client that exceeds
    /// it (pipelining without reading) is closed with a final
    /// `overloaded` frame.
    pub outq_bytes: usize,
    /// Most parsed-but-unanswered frames per connection; reads pause at
    /// the cap (backpressure, not an error).
    pub max_pipeline: usize,
    /// Dispatch worker threads (0 = derive from the service config).
    pub dispatch_workers: usize,
    /// Dispatch queue bound; ready requests past it are shed with
    /// `overloaded` responses (0 = default).
    pub dispatch_queue: usize,
    /// Sibling daemons sharing the key space. On a local+disk miss the
    /// key's rendezvous owner is asked for its artifact (`peer_get`)
    /// before compiling locally; every daemon must list the same fleet
    /// (its own serving address excluded), spelled identically.
    pub peers: Vec<Endpoint>,
    /// How long a forwarded fetch may wait for the owning peer before
    /// the request degrades to a local compile.
    pub peer_timeout_ms: u64,
}

impl Default for ServeOptions {
    fn default() -> ServeOptions {
        ServeOptions {
            max_connections: crate::server::MAX_CONNECTIONS,
            outq_bytes: 8 << 20,
            max_pipeline: 128,
            dispatch_workers: 0,
            dispatch_queue: 0,
            peers: Vec::new(),
            peer_timeout_ms: 1500,
        }
    }
}

/// A bound, non-blocking listening socket.
pub(crate) enum Listener {
    /// Unix-domain listener plus the path to unlink on shutdown.
    Unix(UnixListener, PathBuf),
    /// TCP listener.
    Tcp(TcpListener),
}

impl Listener {
    fn fd(&self) -> RawFd {
        match self {
            Listener::Unix(l, _) => l.as_raw_fd(),
            Listener::Tcp(l) => l.as_raw_fd(),
        }
    }

    fn accept(&self) -> io::Result<Stream> {
        match self {
            Listener::Unix(l, _) => l.accept().map(|(s, _)| Stream::Unix(s)),
            Listener::Tcp(l) => l.accept().map(|(s, _)| Stream::Tcp(s)),
        }
    }
}

/// One accepted connection's socket.
enum Stream {
    Unix(UnixStream),
    Tcp(TcpStream),
}

impl Stream {
    /// Dial a peer daemon. The connect itself may block briefly —
    /// peers are co-located and either accept immediately or refuse —
    /// after which the socket joins the poll set non-blocking like any
    /// accepted connection.
    fn connect(ep: &Endpoint) -> io::Result<Stream> {
        let s = match ep {
            Endpoint::Unix(path) => Stream::Unix(UnixStream::connect(path)?),
            Endpoint::Tcp(addr) => Stream::Tcp(TcpStream::connect(addr.as_str())?),
        };
        s.set_nonblocking()?;
        Ok(s)
    }

    fn fd(&self) -> RawFd {
        match self {
            Stream::Unix(s) => s.as_raw_fd(),
            Stream::Tcp(s) => s.as_raw_fd(),
        }
    }

    fn set_nonblocking(&self) -> io::Result<()> {
        match self {
            Stream::Unix(s) => s.set_nonblocking(true),
            Stream::Tcp(s) => s.set_nonblocking(true),
        }
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Stream::Unix(s) => s.read(buf),
            Stream::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Stream::Unix(s) => s.write(buf),
            Stream::Tcp(s) => s.write(buf),
        }
    }
    fn flush(&mut self) -> io::Result<()> {
        match self {
            Stream::Unix(s) => s.flush(),
            Stream::Tcp(s) => s.flush(),
        }
    }
}

/// Largest request or response the hot memo will hold (per entry).
const HOT_MAX_BYTES: usize = 64 * 1024;
/// Entry cap for the hot memo; crossing it clears the map wholesale
/// (cheap, rare, and self-correcting — the working set refills in one
/// round of traffic).
const HOT_MAX_ENTRIES: usize = 2048;

/// A memo of raw compile-request bytes → the exact rendered response,
/// shared by every connection on one loop.
///
/// Compilation is deterministic, so byte-identical compile requests
/// (tag included — the tag is part of the key and of the stored body)
/// get byte-identical responses *for one rule-set generation*. A memo
/// hit skips the JSON parse, the expression parse, and the cache-key
/// construction — the entire per-request CPU cost of a warm compile —
/// leaving a hash lookup and a buffer clone. Entries are seeded only
/// from artifact-cache hits, so the stored body is exactly what
/// [`Service::handle_cached`] would have produced.
///
/// Every entry is stamped with the service's rule-set generation
/// ([`Service::rules_generation`]); the loop refreshes `gen` each
/// iteration and a stale-generation entry reads as a miss, so the memo
/// can never serve a response rendered under a superseded rule set —
/// the raw request bytes alone don't encode which rules were loaded.
struct HotCache {
    map: HashMap<Vec<u8>, HotEntry>,
    /// The current rule-set generation; entries from any other
    /// generation are dead.
    gen: u64,
}

struct HotEntry {
    body: String,
    untagged: bool,
    /// The rule-set generation the body was rendered under.
    rules_gen: u64,
}

impl HotCache {
    fn new(gen: u64) -> HotCache {
        HotCache { map: HashMap::new(), gen }
    }

    fn get(&self, raw: &[u8]) -> Option<&HotEntry> {
        self.map.get(raw).filter(|e| e.rules_gen == self.gen)
    }

    fn insert(&mut self, raw: Vec<u8>, body: String, untagged: bool) {
        if body.len() > HOT_MAX_BYTES {
            return;
        }
        if self.map.len() >= HOT_MAX_ENTRIES {
            self.map.clear();
        }
        self.map.insert(raw, HotEntry { body, untagged, rules_gen: self.gen });
    }
}

/// What one pending frame still needs.
enum Work {
    /// A hot-memo hit: the finished response body (tag already
    /// embedded) and the arrival instant for the latency ring.
    Hot(String, Instant),
    /// A decoded request, or the transport-level error to answer with.
    Parsed(Result<Request, ServiceError>),
}

/// One frame waiting its turn on a connection.
struct PendingFrame {
    /// No `tag` member: v1 serial ordering applies (full barrier).
    untagged: bool,
    tag: Option<Json>,
    work: Work,
    /// Close (drain) the connection after answering — set for framing
    /// errors, where the byte stream can no longer be trusted.
    close_after: bool,
    /// The frame's raw bytes, kept for compile requests so a
    /// cache-hit response can seed the hot memo.
    raw: Option<Vec<u8>>,
}

/// Per-connection state machine.
struct Conn {
    stream: Stream,
    reader: FrameReader,
    writer: FrameWriter,
    /// Parsed frames not yet answered or dispatched, in arrival order.
    pending: VecDeque<PendingFrame>,
    /// Frames dispatched to workers and not yet completed.
    inflight: usize,
    /// An untagged (v1) request is in flight: nothing later may
    /// dispatch until it completes (strict serial ordering).
    serial_block: bool,
    /// Stop reading; close once every response has drained.
    draining: bool,
    /// Output overflow: late completions are discarded, only the
    /// sealed `overloaded` frame goes out.
    poisoned: bool,
    /// The socket died; tear down without flushing.
    dead: bool,
}

impl Conn {
    fn new(stream: Stream, opts: &ServeOptions) -> Conn {
        Conn {
            stream,
            reader: FrameReader::new(),
            writer: FrameWriter::new(opts.outq_bytes),
            pending: VecDeque::new(),
            inflight: 0,
            serial_block: false,
            draining: false,
            poisoned: false,
            dead: false,
        }
    }

    fn wants_read(&self, opts: &ServeOptions) -> bool {
        !self.draining
            && !self.dead
            && self.pending.len() < opts.max_pipeline
            && self.writer.queued_bytes() < opts.outq_bytes / 2
    }

    /// Nothing queued, in flight, or unflushed.
    fn idle(&self) -> bool {
        self.writer.is_empty() && self.inflight == 0 && self.pending.is_empty()
    }

    fn should_close(&self) -> bool {
        self.dead || (self.draining && self.idle())
    }

    /// Queue one transport-level error reply, optionally fatal to the
    /// connection's framing.
    fn ingest_error(&mut self, e: ServiceError, fatal: bool) {
        self.pending.push_back(PendingFrame {
            untagged: true,
            tag: None,
            work: Work::Parsed(Err(e)),
            close_after: fatal,
            raw: None,
        });
        if fatal {
            self.draining = true;
        }
    }

    /// Turn one arrived frame's raw bytes into pending work: a hot-memo
    /// hit carries its finished response, anything else gets decoded
    /// (tag errors become an inline error reply; the framing itself is
    /// still intact, while undecodable bytes are fatal).
    fn ingest(&mut self, raw: Vec<u8>, hot: &HotCache) {
        if let Some(entry) = hot.get(&raw) {
            self.pending.push_back(PendingFrame {
                untagged: entry.untagged,
                tag: None,
                work: Work::Hot(entry.body.clone(), Instant::now()),
                close_after: false,
                raw: None,
            });
            return;
        }
        let frame = match decode_frame(raw.clone()) {
            Ok(frame) => frame,
            Err(e) => return self.ingest_error(ServiceError::BadRequest(e.to_string()), true),
        };
        match request_tag(&frame) {
            Ok(tag) => {
                let work = parse_request(&frame);
                let memoizable =
                    matches!(&work, Ok(Request::Compile(_))) && raw.len() <= HOT_MAX_BYTES;
                self.pending.push_back(PendingFrame {
                    untagged: tag.is_none(),
                    tag,
                    work: Work::Parsed(work),
                    close_after: false,
                    raw: memoizable.then_some(raw),
                });
            }
            Err(e) => self.ingest_error(e, false),
        }
    }

    /// Move complete frames from the reader's buffer into `pending`, up
    /// to the pipeline cap. A malformed frame queues a final error
    /// reply and puts the connection into draining (the stream can no
    /// longer be framed).
    fn drain_buffered(&mut self, opts: &ServeOptions, hot: &HotCache) -> bool {
        let mut any = false;
        while self.pending.len() < opts.max_pipeline && !self.draining {
            match self.reader.buffered_frame_raw() {
                Ok(Some(raw)) => {
                    self.ingest(raw, hot);
                    any = true;
                }
                Ok(None) => break,
                Err(e) => {
                    self.ingest_error(ServiceError::BadRequest(e.to_string()), true);
                    any = true;
                }
            }
        }
        any
    }

    /// Pull whatever the readable socket has, decoding as we go.
    fn fill(&mut self, opts: &ServeOptions, hot: &HotCache) {
        loop {
            self.drain_buffered(opts, hot);
            if self.pending.len() >= opts.max_pipeline || self.draining {
                return;
            }
            match self.reader.fill_from(&mut self.stream) {
                Ok(0) => {
                    // Peer closed its write half: answer what already
                    // arrived, then close.
                    self.draining = true;
                    return;
                }
                Ok(n) => {
                    // A short read drained the socket buffer: decode
                    // what arrived and skip the read that would return
                    // WouldBlock — level-triggered poll re-arms if more
                    // bytes land in the meantime.
                    if n < crate::protocol::FILL_CHUNK {
                        self.drain_buffered(opts, hot);
                        return;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(_) => {
                    self.dead = true;
                    return;
                }
            }
        }
    }

    /// Queue one response, echoing the tag. Overflow seals the
    /// connection with a final untagged `overloaded` frame.
    fn queue_reply(&mut self, reply: FastReply, tag: Option<&Json>) {
        if self.poisoned || self.dead {
            return;
        }
        let queued = match reply {
            FastReply::Raw(mut body) => {
                if let Some(t) = tag {
                    attach_tag_rendered(&mut body, t);
                }
                self.writer.queue_rendered(body)
            }
            FastReply::Json(mut v) => {
                if let Some(t) = tag {
                    attach_tag(&mut v, t);
                }
                let body = v.render();
                if body.len() > MAX_FRAME {
                    // An oversized response (a huge pipeline output)
                    // must not become a malformed frame; substitute a
                    // structured error.
                    let e =
                        ServiceError::Internal("response exceeds the 16 MiB frame limit".into());
                    let mut err = error_response(&e);
                    if let Some(t) = tag {
                        attach_tag(&mut err, t);
                    }
                    self.writer.queue_rendered(err.render())
                } else {
                    self.writer.queue_rendered(body)
                }
            }
        };
        if queued.is_err() {
            self.poisoned = true;
            self.draining = true;
            self.pending.clear();
            self.writer.seal(&error_response(&ServiceError::Overloaded));
        }
    }

    /// Push queued response bytes to the socket (non-blocking).
    fn flush(&mut self) {
        if self.dead || self.writer.is_empty() {
            return;
        }
        if self.writer.write_some(&mut self.stream).is_err() {
            self.dead = true;
        }
    }
}

/// One ready request bound for a dispatch worker.
struct DispatchItem {
    conn: u64,
    tag: Option<Json>,
    untagged: bool,
    req: Request,
}

/// A finished dispatched request on its way back to the loop.
struct Completion {
    conn: u64,
    tag: Option<Json>,
    untagged: bool,
    reply: Json,
}

/// What the loop and the dispatch workers share.
struct DispatchShared {
    completions: Mutex<Vec<Completion>>,
    waker: Waker,
}

/// Reconnect backoff after a failed peer dial or a dead peer socket —
/// a down daemon costs at most one connect attempt per second, and
/// misses routed to it in between degrade to local compiles instantly.
const PEER_RETRY: Duration = Duration::from_secs(1);

/// One live multiplexed connection to a sibling daemon. Requests and
/// responses are correlated by tag, exactly like a v2 client.
struct PeerConn {
    stream: Stream,
    reader: FrameReader,
    writer: FrameWriter,
}

/// One configured sibling daemon, connected or not.
struct PeerState {
    /// The rendezvous node id — the peer's [`Endpoint`] display form.
    id: String,
    endpoint: Endpoint,
    conn: Option<PeerConn>,
    /// Don't redial before this instant.
    retry_at: Instant,
}

/// One in-flight `peer_get`: every local request for `key` that
/// arrived while the fetch was out joins `items` (loop-level
/// single-flight), and all of them dispatch together when the response
/// lands, times out, or the peer dies.
struct PeerWait {
    key: CacheKey,
    /// Index into [`PeerSet::peers`] of the owner asked.
    peer: usize,
    deadline: Instant,
    items: Vec<DispatchItem>,
}

/// The loop's view of the fleet: the address book, live connections,
/// and outstanding fetches.
struct PeerSet {
    self_id: String,
    peers: Vec<PeerState>,
    /// `peers[i].id`, pre-collected for [`peer::owner_index`].
    ids: Vec<String>,
    waits: HashMap<i128, PeerWait>,
    /// Key → outstanding wait tag, for single-flight joins.
    by_key: HashMap<CacheKey, i128>,
    next_tag: i128,
    timeout: Duration,
    outq_bytes: usize,
}

impl PeerSet {
    fn new(self_id: &str, opts: &ServeOptions) -> PeerSet {
        let now = Instant::now();
        let peers: Vec<PeerState> = opts
            .peers
            .iter()
            .map(|ep| PeerState {
                id: ep.to_string(),
                endpoint: ep.clone(),
                conn: None,
                retry_at: now,
            })
            .collect();
        let ids = peers.iter().map(|p| p.id.clone()).collect();
        PeerSet {
            self_id: self_id.to_string(),
            peers,
            ids,
            waits: HashMap::new(),
            by_key: HashMap::new(),
            next_tag: 1,
            timeout: Duration::from_millis(opts.peer_timeout_ms.max(1)),
            outq_bytes: opts.outq_bytes,
        }
    }

    fn enabled(&self) -> bool {
        !self.peers.is_empty()
    }

    /// A live connection to `peers[i]`, dialing if the backoff allows.
    fn ensure_conn(&mut self, i: usize, now: Instant) -> bool {
        let p = &mut self.peers[i];
        if p.conn.is_some() {
            return true;
        }
        if now < p.retry_at {
            return false;
        }
        match Stream::connect(&p.endpoint) {
            Ok(stream) => {
                p.conn = Some(PeerConn {
                    stream,
                    reader: FrameReader::new(),
                    writer: FrameWriter::new(self.outq_bytes),
                });
                true
            }
            Err(e) => {
                p.retry_at = now + PEER_RETRY;
                eprintln!("pitchforkd: peer {} unreachable: {e}", p.id);
                false
            }
        }
    }

    /// Route one local+disk miss: the key's rendezvous owner is asked
    /// for its artifact, anything else (we own it, the owner is down,
    /// its queue is full) compiles locally via `batch`.
    fn route(
        &mut self,
        key: CacheKey,
        item: DispatchItem,
        batch: &mut Vec<DispatchItem>,
        stats: &Stats,
        now: Instant,
    ) {
        let Some(owner) = peer::owner_index(&self.self_id, &self.ids, key.fingerprint()) else {
            // Our key: compile here. Peers asking for it take the
            // `peer_get` path and find it in the warm cache.
            batch.push(item);
            return;
        };
        if let Some(&tag) = self.by_key.get(&key) {
            // A fetch for this key is already out: join it.
            self.waits.get_mut(&tag).expect("by_key wait exists").items.push(item);
            return;
        }
        if !self.ensure_conn(owner, now) {
            Stats::bump(&stats.peer_errors);
            batch.push(item);
            return;
        }
        let tag = self.next_tag;
        self.next_tag += 1;
        let frame = peer_get_frame(&key, tag);
        let pc = self.peers[owner].conn.as_mut().expect("ensured above");
        if pc.writer.queue(&frame).is_err() {
            Stats::bump(&stats.peer_errors);
            batch.push(item);
            return;
        }
        self.by_key.insert(key.clone(), tag);
        self.waits.insert(
            tag,
            PeerWait { key, peer: owner, deadline: now + self.timeout, items: vec![item] },
        );
    }

    /// A peer connection died: drop it, back off, and fail every wait
    /// parked on it so the requests compile locally this iteration.
    fn fail_peer(&mut self, i: usize, ready: &mut Vec<DispatchItem>, stats: &Stats, now: Instant) {
        self.peers[i].conn = None;
        self.peers[i].retry_at = now + PEER_RETRY;
        let tags: Vec<i128> =
            self.waits.iter().filter(|(_, w)| w.peer == i).map(|(t, _)| *t).collect();
        for t in tags {
            let w = self.waits.remove(&t).expect("collected above");
            self.by_key.remove(&w.key);
            Stats::bump(&stats.peer_errors);
            ready.extend(w.items);
        }
    }

    /// Expire overdue fetches (all of them when `force` — a stopping
    /// server must answer everything inside the drain grace).
    fn sweep(&mut self, now: Instant, force: bool, ready: &mut Vec<DispatchItem>, stats: &Stats) {
        if self.waits.is_empty() {
            return;
        }
        let tags: Vec<i128> = self
            .waits
            .iter()
            .filter(|(_, w)| force || now >= w.deadline)
            .map(|(t, _)| *t)
            .collect();
        for t in tags {
            let w = self.waits.remove(&t).expect("collected above");
            self.by_key.remove(&w.key);
            Stats::bump(&stats.peer_timeouts);
            ready.extend(w.items);
        }
    }

    /// One response frame from a peer. A matching wait resolves — on a
    /// verified artifact the cache is now warm and the waiting requests
    /// will hit it — and an unknown tag (a fetch that already timed
    /// out) is ignored. Either way the waiting items go to `ready` for
    /// normal dispatch.
    fn handle_response(
        &mut self,
        frame: &Json,
        service: &Service,
        ready: &mut Vec<DispatchItem>,
        stats: &Stats,
    ) {
        let Some(tag) = frame.get("tag").and_then(|t| t.as_int()) else {
            return;
        };
        let Some(w) = self.waits.remove(&tag) else {
            return;
        };
        self.by_key.remove(&w.key);
        let ok = frame.get("ok").and_then(|v| v.as_bool()) == Some(true);
        let found = frame.get("found").and_then(|v| v.as_bool()) == Some(true);
        match frame.get("artifact") {
            Some(art) if ok && found => match service.admit_peer_artifact(&w.key, art) {
                Ok(()) => Stats::bump(&stats.peer_hits),
                Err(e) => {
                    eprintln!(
                        "pitchforkd: peer {} sent an unusable artifact: {e}",
                        self.peers[w.peer].id
                    );
                    Stats::bump(&stats.peer_errors);
                }
            },
            _ => Stats::bump(&stats.peer_misses),
        }
        ready.extend(w.items);
    }
}

/// Answer and dispatch everything answerable on one connection. Ready
/// requests that need a worker go into `batch`, local+disk misses
/// eligible for peer forwarding go into `remote` (when enabled), and
/// inline-answerable ones are queued on the writer immediately.
#[allow(clippy::too_many_arguments)]
fn pump(
    id: u64,
    conn: &mut Conn,
    service: &Arc<Service>,
    stop: &StopFlag,
    opts: &ServeOptions,
    hot: &mut HotCache,
    batch: &mut Vec<DispatchItem>,
    remote: &mut Vec<(CacheKey, DispatchItem)>,
    forward: bool,
) {
    loop {
        let Some(front) = conn.pending.front() else {
            // Pending drained; frames may still sit undecoded in the
            // reader's buffer from a capped earlier read.
            if conn.drain_buffered(opts, hot) {
                continue;
            }
            return;
        };
        if conn.serial_block {
            return;
        }
        let untagged = front.untagged;
        if untagged && conn.inflight > 0 {
            return;
        }
        let f = conn.pending.pop_front().expect("front exists");
        match f.work {
            Work::Hot(body, arrived) => {
                // Same accounting as the handle_cached hit this entry
                // was seeded from, plus the memo's own counter.
                let stats = service.stats();
                Stats::bump(&stats.requests);
                Stats::bump(&stats.cache_hits);
                Stats::bump(&stats.hot_hits);
                conn.queue_reply(FastReply::Raw(body), None);
                stats.record_latency_us(u64::try_from(arrived.elapsed().as_micros()).unwrap_or(0));
            }
            Work::Parsed(Err(e)) => {
                // Transport-level rejects (unparseable request or tag):
                // answered inline, not counted as service traffic —
                // same as the v1 per-connection loop.
                conn.queue_reply(FastReply::Json(error_response(&e)), f.tag.as_ref());
                if f.close_after {
                    conn.draining = true;
                    conn.pending.clear();
                    return;
                }
            }
            Work::Parsed(Ok(req)) => {
                if matches!(req, Request::Shutdown) {
                    let reply = service.handle(&req);
                    conn.queue_reply(FastReply::Json(reply), f.tag.as_ref());
                    stop.request();
                    continue;
                }
                match service.classify(&req) {
                    CacheDecision::Reply(FastReply::Raw(mut body)) => {
                        // A compile served from the artifact cache:
                        // splice the tag, then memoize the finished
                        // bytes under the frame's raw bytes.
                        if let Some(t) = &f.tag {
                            attach_tag_rendered(&mut body, t);
                        }
                        if let Some(raw) = f.raw {
                            hot.insert(raw, body.clone(), untagged);
                        }
                        conn.queue_reply(FastReply::Raw(body), None);
                    }
                    CacheDecision::Reply(fast) => conn.queue_reply(fast, f.tag.as_ref()),
                    decision => {
                        conn.inflight += 1;
                        if untagged {
                            conn.serial_block = true;
                        }
                        let item = DispatchItem { conn: id, tag: f.tag, untagged, req };
                        match decision {
                            CacheDecision::MissRemote(key) if forward => {
                                remote.push((key, item));
                            }
                            _ => batch.push(item),
                        }
                    }
                }
            }
        }
    }
}

/// Run the readiness loop until the stop flag trips, then drain.
/// `self_id` is this daemon's own serving address in [`Endpoint`]
/// display form — its rendezvous node id within the fleet.
pub(crate) fn run(
    service: &Arc<Service>,
    listener: &Listener,
    stop: &StopFlag,
    opts: &ServeOptions,
    self_id: &str,
) -> io::Result<()> {
    let (mut wake_rx, waker) = wake_pipe()?;
    let shared = Arc::new(DispatchShared { completions: Mutex::new(Vec::new()), waker });
    let workers = match opts.dispatch_workers {
        0 => service.config().workers.max(2),
        n => n,
    };
    let queue_bound = match opts.dispatch_queue {
        0 => (opts.max_connections * 2).max(256),
        n => n,
    };
    let dispatch = TaskQueue::new(workers, queue_bound);

    let mut conns: HashMap<u64, Conn> = HashMap::new();
    let mut hot = HotCache::new(service.rules_generation());
    let mut peers = PeerSet::new(self_id, opts);
    let mut next_id: u64 = 0;
    let mut drain_deadline: Option<Instant> = None;

    loop {
        // ── stop / drain ────────────────────────────────────────────
        let stopping = stop.stopping();
        if stopping {
            if drain_deadline.is_none() {
                drain_deadline = Some(Instant::now() + DRAIN_GRACE);
                for c in conns.values_mut() {
                    c.draining = true;
                }
            }
            let expired = drain_deadline.is_some_and(|d| Instant::now() >= d);
            if conns.is_empty() || expired {
                break;
            }
        }

        // ── build the poll set ──────────────────────────────────────
        let mut fds = Vec::with_capacity(2 + conns.len() + peers.peers.len());
        fds.push(PollFd::new(wake_rx.fd(), POLLIN));
        let listener_idx = if stopping {
            None
        } else {
            fds.push(PollFd::new(listener.fd(), POLLIN));
            Some(fds.len() - 1)
        };
        let base = fds.len();
        let order: Vec<u64> = conns.keys().copied().collect();
        for id in &order {
            let c = &conns[id];
            let mut interest = 0i16;
            if c.wants_read(opts) {
                interest |= POLLIN;
            }
            if !c.writer.is_empty() {
                interest |= POLLOUT;
            }
            fds.push(PollFd::new(c.stream.fd(), interest));
        }
        // Live peer connections poll alongside the clients: always
        // readable (responses arrive whenever the owner answers),
        // writable only while a `peer_get` is still queued.
        let peer_base = fds.len();
        let peer_order: Vec<usize> =
            (0..peers.peers.len()).filter(|&i| peers.peers[i].conn.is_some()).collect();
        for &pi in &peer_order {
            let pc = peers.peers[pi].conn.as_ref().expect("filtered on is_some");
            let mut interest = POLLIN;
            if !pc.writer.is_empty() {
                interest |= POLLOUT;
            }
            fds.push(PollFd::new(pc.stream.fd(), interest));
        }

        poll_fds(&mut fds, POLL_TIMEOUT)?;
        // The memo must not outlive the rule-set generation its bodies
        // were rendered under.
        hot.gen = service.rules_generation();

        // ── drain completions (every iteration: the waker's pending
        // flag makes a missed byte harmless) ────────────────────────
        shared.waker.reset();
        wake_rx.drain();
        let done: Vec<Completion> = std::mem::take(&mut *shared.completions.lock().expect("lock"));
        for c in done {
            if let Some(conn) = conns.get_mut(&c.conn) {
                conn.inflight -= 1;
                if c.untagged {
                    conn.serial_block = false;
                }
                conn.queue_reply(FastReply::Json(c.reply), c.tag.as_ref());
            }
        }

        // ── peer I/O: flush queued fetches, correlate responses ─────
        // Items freed here (response landed, fetch timed out, peer
        // died) join this iteration's dispatch batch; a resolved fetch
        // admitted its artifact, so those items hit the now-warm cache.
        let mut ready: Vec<DispatchItem> = Vec::new();
        let now = Instant::now();
        let stats = service.stats();
        for (j, &pi) in peer_order.iter().enumerate() {
            let pf = &fds[peer_base + j];
            let (failed, readable, writable) = (pf.failed(), pf.readable(), pf.writable());
            let mut dead = failed;
            let mut frames: Vec<Json> = Vec::new();
            if !dead {
                let pc = peers.peers[pi].conn.as_mut().expect("registered");
                if writable && pc.writer.write_some(&mut pc.stream).is_err() {
                    dead = true;
                }
                while !dead && readable {
                    match pc.reader.fill_from(&mut pc.stream) {
                        Ok(0) => dead = true,
                        Ok(n) => {
                            loop {
                                match pc.reader.buffered_frame() {
                                    Ok(Some(frame)) => frames.push(frame),
                                    Ok(None) => break,
                                    Err(_) => {
                                        // Unframeable bytes: the stream
                                        // can't be trusted any more.
                                        dead = true;
                                        break;
                                    }
                                }
                            }
                            if n < FILL_CHUNK {
                                break;
                            }
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                        Err(_) => dead = true,
                    }
                }
            }
            for frame in &frames {
                peers.handle_response(frame, service, &mut ready, stats);
            }
            if dead {
                peers.fail_peer(pi, &mut ready, stats, now);
            }
        }
        peers.sweep(now, stopping, &mut ready, stats);

        // ── accept ──────────────────────────────────────────────────
        if let Some(i) = listener_idx {
            if fds[i].readable() {
                loop {
                    match listener.accept() {
                        Ok(mut stream) => {
                            if conns.len() >= opts.max_connections
                                || stream.set_nonblocking().is_err()
                            {
                                // Refuse politely; the frame fits in a
                                // fresh socket buffer without blocking.
                                let _ = write_frame(
                                    &mut stream,
                                    &error_response(&ServiceError::Overloaded),
                                );
                                continue;
                            }
                            conns.insert(next_id, Conn::new(stream, opts));
                            next_id += 1;
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                        Err(e) => {
                            eprintln!("pitchforkd: accept failed: {e}");
                            break;
                        }
                    }
                }
            }
        }

        // ── read ────────────────────────────────────────────────────
        for (i, id) in order.iter().enumerate() {
            let pf = &fds[base + i];
            let conn = conns.get_mut(id).expect("registered");
            if pf.failed() {
                conn.dead = true;
                continue;
            }
            if pf.readable() && conn.wants_read(opts) {
                conn.fill(opts, &hot);
            }
        }

        // ── pump: inline replies + collect the dispatch batch ───────
        let mut batch: Vec<DispatchItem> = std::mem::take(&mut ready);
        let mut remote: Vec<(CacheKey, DispatchItem)> = Vec::new();
        let forward = peers.enabled() && !stopping;
        for (&id, conn) in conns.iter_mut() {
            if !conn.dead {
                pump(id, conn, service, stop, opts, &mut hot, &mut batch, &mut remote, forward);
            }
        }

        // ── route misses to their owners, flush the fetch frames ────
        for (key, item) in remote {
            peers.route(key, item, &mut batch, stats, now);
        }
        for p in peers.peers.iter_mut() {
            if let Some(pc) = p.conn.as_mut() {
                if !pc.writer.is_empty() {
                    // A write failure is deliberately left alone: the
                    // fd polls as failed next iteration and fail_peer
                    // reroutes the parked waits to local compiles.
                    let _ = pc.writer.write_some(&mut pc.stream);
                }
            }
        }

        // ── dispatch the batch under one queue lock ─────────────────
        if !batch.is_empty() {
            Stats::record_max(&service.stats().dispatch_batch_max, batch.len() as u64);
            let meta: Vec<(u64, Option<Json>, bool)> =
                batch.iter().map(|it| (it.conn, it.tag.clone(), it.untagged)).collect();
            let tasks: Vec<Task> = batch
                .into_iter()
                .map(|it| {
                    let service = Arc::clone(service);
                    let shared = Arc::clone(&shared);
                    Box::new(move || {
                        let reply = service.handle_local(&it.req);
                        shared.completions.lock().expect("completion lock").push(Completion {
                            conn: it.conn,
                            tag: it.tag,
                            untagged: it.untagged,
                            reply,
                        });
                        shared.waker.wake();
                    }) as Task
                })
                .collect();
            let admitted = dispatch.submit_batch(tasks);
            // Whatever the bounded queue refused is shed right here,
            // with the same accounting `Service::handle` would use.
            for (conn_id, tag, untagged) in meta.into_iter().skip(admitted) {
                if let Some(conn) = conns.get_mut(&conn_id) {
                    conn.inflight -= 1;
                    if untagged {
                        conn.serial_block = false;
                    }
                    Stats::bump(&service.stats().requests);
                    Stats::bump(&service.stats().sheds);
                    conn.queue_reply(
                        FastReply::Json(error_response(&ServiceError::Overloaded)),
                        tag.as_ref(),
                    );
                }
            }
        }

        // ── write: opportunistic flush of everything queued ─────────
        for conn in conns.values_mut() {
            conn.flush();
        }

        // ── close finished connections, refresh gauges ──────────────
        conns.retain(|_, c| !c.should_close());
        let stats = service.stats();
        Stats::set(&stats.open_connections, conns.len() as u64);
        Stats::set(&stats.inflight_frames, conns.values().map(|c| c.inflight as u64).sum());
        Stats::set(&stats.dispatch_queue_depth, dispatch.depth() as u64);
    }

    // Late completions after the drain window are dropped with the
    // queue (its Drop runs admitted tasks to completion first).
    drop(dispatch);
    Stats::set(&service.stats().open_connections, 0);
    Stats::set(&service.stats().inflight_frames, 0);
    Stats::set(&service.stats().dispatch_queue_depth, 0);
    Ok(())
}
