//! The readiness-driven server core: one thread, many connections,
//! zero blocking syscalls on the request path.
//!
//! ```text
//!                  ┌──────────────────────────────────────────────┐
//!                  │                 event loop                   │
//!   listener ──▶ accept                                           │
//!                  │   readable conns ──▶ FrameReader ──▶ pending │
//!                  │   pending ──▶ pump ──┬─▶ fast reply (inline) │
//!                  │                      └─▶ dispatch batch      │
//!                  │   FrameWriter ◀── replies ◀── completions    │
//!                  └───────▲──────────────────────────┬───────────┘
//!                          │ wakeup pipe              │ submit_batch
//!                  ┌───────┴──────────────────────────▼───────────┐
//!                  │        dispatch workers (TaskQueue)          │
//!                  │   Service::handle_local — compile inline     │
//!                  └──────────────────────────────────────────────┘
//! ```
//!
//! Every iteration `poll(2)`s the listener, the wakeup pipe, and every
//! connection; readable connections feed a buffering [`FrameReader`],
//! complete frames queue per-connection as *pending* work, and a pump
//! either answers them inline ([`Service::handle_cached`] — control
//! ops and cache hits) or collects them into one **dispatch batch**
//! submitted to the worker queue under a single lock. Workers push
//! completions and write one coalesced byte into the wakeup pipe, so a
//! slow compile never blocks the loop and a cache hit on any
//! connection is answered in the iteration it arrives.
//!
//! **Ordering.** Tagged requests (protocol v2) may be answered out of
//! order — the tag is the correlation. An untagged request is a full
//! barrier on its connection: it is dispatched only when nothing else
//! is in flight and blocks later frames until answered, which
//! preserves the exact serial request→response ordering v1 clients
//! assume.
//!
//! **Backpressure.** Reads pause while a connection's pending frames
//! or output backlog are over budget; a connection whose output queue
//! overflows (a client that pipelines but never reads) is sealed with
//! a final `overloaded` frame and closed once that frame drains.

use crate::error::ServiceError;
use crate::json::Json;
use crate::poll::{poll_fds, wake_pipe, PollFd, Waker, POLLIN, POLLOUT};
use crate::protocol::{
    attach_tag, attach_tag_rendered, decode_frame, error_response, parse_request, request_tag,
    write_frame, FrameReader, FrameWriter, Request, MAX_FRAME,
};
use crate::server::StopFlag;
use crate::service::{FastReply, Service};
use crate::stats::Stats;
use fpir_pool::{Task, TaskQueue};
use std::collections::{HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::{AsRawFd, RawFd};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// How long the loop sleeps in `poll` when nothing is ready. Purely a
/// stop-flag re-check cadence: readiness and wakeups cut it short.
const POLL_TIMEOUT: Duration = Duration::from_millis(50);

/// How long a stopping server waits for in-flight work and unflushed
/// responses before giving up on stragglers.
const DRAIN_GRACE: Duration = Duration::from_secs(5);

/// Tunables for one serve loop — [`Default`] matches the daemon.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Most concurrent connections; extras get an `overloaded` frame.
    pub max_connections: usize,
    /// Per-connection output-queue byte budget; a client that exceeds
    /// it (pipelining without reading) is closed with a final
    /// `overloaded` frame.
    pub outq_bytes: usize,
    /// Most parsed-but-unanswered frames per connection; reads pause at
    /// the cap (backpressure, not an error).
    pub max_pipeline: usize,
    /// Dispatch worker threads (0 = derive from the service config).
    pub dispatch_workers: usize,
    /// Dispatch queue bound; ready requests past it are shed with
    /// `overloaded` responses (0 = default).
    pub dispatch_queue: usize,
}

impl Default for ServeOptions {
    fn default() -> ServeOptions {
        ServeOptions {
            max_connections: crate::server::MAX_CONNECTIONS,
            outq_bytes: 8 << 20,
            max_pipeline: 128,
            dispatch_workers: 0,
            dispatch_queue: 0,
        }
    }
}

/// A bound, non-blocking listening socket.
pub(crate) enum Listener {
    /// Unix-domain listener plus the path to unlink on shutdown.
    Unix(UnixListener, PathBuf),
    /// TCP listener.
    Tcp(TcpListener),
}

impl Listener {
    fn fd(&self) -> RawFd {
        match self {
            Listener::Unix(l, _) => l.as_raw_fd(),
            Listener::Tcp(l) => l.as_raw_fd(),
        }
    }

    fn accept(&self) -> io::Result<Stream> {
        match self {
            Listener::Unix(l, _) => l.accept().map(|(s, _)| Stream::Unix(s)),
            Listener::Tcp(l) => l.accept().map(|(s, _)| Stream::Tcp(s)),
        }
    }
}

/// One accepted connection's socket.
enum Stream {
    Unix(UnixStream),
    Tcp(TcpStream),
}

impl Stream {
    fn fd(&self) -> RawFd {
        match self {
            Stream::Unix(s) => s.as_raw_fd(),
            Stream::Tcp(s) => s.as_raw_fd(),
        }
    }

    fn set_nonblocking(&self) -> io::Result<()> {
        match self {
            Stream::Unix(s) => s.set_nonblocking(true),
            Stream::Tcp(s) => s.set_nonblocking(true),
        }
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Stream::Unix(s) => s.read(buf),
            Stream::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Stream::Unix(s) => s.write(buf),
            Stream::Tcp(s) => s.write(buf),
        }
    }
    fn flush(&mut self) -> io::Result<()> {
        match self {
            Stream::Unix(s) => s.flush(),
            Stream::Tcp(s) => s.flush(),
        }
    }
}

/// Largest request or response the hot memo will hold (per entry).
const HOT_MAX_BYTES: usize = 64 * 1024;
/// Entry cap for the hot memo; crossing it clears the map wholesale
/// (cheap, rare, and self-correcting — the working set refills in one
/// round of traffic).
const HOT_MAX_ENTRIES: usize = 2048;

/// A memo of raw compile-request bytes → the exact rendered response,
/// shared by every connection on one loop.
///
/// Compilation is deterministic and the rule sets are fixed for the
/// life of the service, so byte-identical compile requests (tag
/// included — the tag is part of the key and of the stored body) get
/// byte-identical responses. A memo hit skips the JSON parse, the
/// expression parse, and the cache-key construction — the entire
/// per-request CPU cost of a warm compile — leaving a hash lookup and
/// a buffer clone. Entries are seeded only from artifact-cache hits,
/// so the stored body is exactly what [`Service::handle_cached`] would
/// have produced.
struct HotCache {
    map: HashMap<Vec<u8>, HotEntry>,
}

struct HotEntry {
    body: String,
    untagged: bool,
}

impl HotCache {
    fn new() -> HotCache {
        HotCache { map: HashMap::new() }
    }

    fn get(&self, raw: &[u8]) -> Option<&HotEntry> {
        self.map.get(raw)
    }

    fn insert(&mut self, raw: Vec<u8>, body: String, untagged: bool) {
        if body.len() > HOT_MAX_BYTES {
            return;
        }
        if self.map.len() >= HOT_MAX_ENTRIES {
            self.map.clear();
        }
        self.map.insert(raw, HotEntry { body, untagged });
    }
}

/// What one pending frame still needs.
enum Work {
    /// A hot-memo hit: the finished response body (tag already
    /// embedded) and the arrival instant for the latency ring.
    Hot(String, Instant),
    /// A decoded request, or the transport-level error to answer with.
    Parsed(Result<Request, ServiceError>),
}

/// One frame waiting its turn on a connection.
struct PendingFrame {
    /// No `tag` member: v1 serial ordering applies (full barrier).
    untagged: bool,
    tag: Option<Json>,
    work: Work,
    /// Close (drain) the connection after answering — set for framing
    /// errors, where the byte stream can no longer be trusted.
    close_after: bool,
    /// The frame's raw bytes, kept for compile requests so a
    /// cache-hit response can seed the hot memo.
    raw: Option<Vec<u8>>,
}

/// Per-connection state machine.
struct Conn {
    stream: Stream,
    reader: FrameReader,
    writer: FrameWriter,
    /// Parsed frames not yet answered or dispatched, in arrival order.
    pending: VecDeque<PendingFrame>,
    /// Frames dispatched to workers and not yet completed.
    inflight: usize,
    /// An untagged (v1) request is in flight: nothing later may
    /// dispatch until it completes (strict serial ordering).
    serial_block: bool,
    /// Stop reading; close once every response has drained.
    draining: bool,
    /// Output overflow: late completions are discarded, only the
    /// sealed `overloaded` frame goes out.
    poisoned: bool,
    /// The socket died; tear down without flushing.
    dead: bool,
}

impl Conn {
    fn new(stream: Stream, opts: &ServeOptions) -> Conn {
        Conn {
            stream,
            reader: FrameReader::new(),
            writer: FrameWriter::new(opts.outq_bytes),
            pending: VecDeque::new(),
            inflight: 0,
            serial_block: false,
            draining: false,
            poisoned: false,
            dead: false,
        }
    }

    fn wants_read(&self, opts: &ServeOptions) -> bool {
        !self.draining
            && !self.dead
            && self.pending.len() < opts.max_pipeline
            && self.writer.queued_bytes() < opts.outq_bytes / 2
    }

    /// Nothing queued, in flight, or unflushed.
    fn idle(&self) -> bool {
        self.writer.is_empty() && self.inflight == 0 && self.pending.is_empty()
    }

    fn should_close(&self) -> bool {
        self.dead || (self.draining && self.idle())
    }

    /// Queue one transport-level error reply, optionally fatal to the
    /// connection's framing.
    fn ingest_error(&mut self, e: ServiceError, fatal: bool) {
        self.pending.push_back(PendingFrame {
            untagged: true,
            tag: None,
            work: Work::Parsed(Err(e)),
            close_after: fatal,
            raw: None,
        });
        if fatal {
            self.draining = true;
        }
    }

    /// Turn one arrived frame's raw bytes into pending work: a hot-memo
    /// hit carries its finished response, anything else gets decoded
    /// (tag errors become an inline error reply; the framing itself is
    /// still intact, while undecodable bytes are fatal).
    fn ingest(&mut self, raw: Vec<u8>, hot: &HotCache) {
        if let Some(entry) = hot.get(&raw) {
            self.pending.push_back(PendingFrame {
                untagged: entry.untagged,
                tag: None,
                work: Work::Hot(entry.body.clone(), Instant::now()),
                close_after: false,
                raw: None,
            });
            return;
        }
        let frame = match decode_frame(raw.clone()) {
            Ok(frame) => frame,
            Err(e) => return self.ingest_error(ServiceError::BadRequest(e.to_string()), true),
        };
        match request_tag(&frame) {
            Ok(tag) => {
                let work = parse_request(&frame);
                let memoizable =
                    matches!(&work, Ok(Request::Compile(_))) && raw.len() <= HOT_MAX_BYTES;
                self.pending.push_back(PendingFrame {
                    untagged: tag.is_none(),
                    tag,
                    work: Work::Parsed(work),
                    close_after: false,
                    raw: memoizable.then_some(raw),
                });
            }
            Err(e) => self.ingest_error(e, false),
        }
    }

    /// Move complete frames from the reader's buffer into `pending`, up
    /// to the pipeline cap. A malformed frame queues a final error
    /// reply and puts the connection into draining (the stream can no
    /// longer be framed).
    fn drain_buffered(&mut self, opts: &ServeOptions, hot: &HotCache) -> bool {
        let mut any = false;
        while self.pending.len() < opts.max_pipeline && !self.draining {
            match self.reader.buffered_frame_raw() {
                Ok(Some(raw)) => {
                    self.ingest(raw, hot);
                    any = true;
                }
                Ok(None) => break,
                Err(e) => {
                    self.ingest_error(ServiceError::BadRequest(e.to_string()), true);
                    any = true;
                }
            }
        }
        any
    }

    /// Pull whatever the readable socket has, decoding as we go.
    fn fill(&mut self, opts: &ServeOptions, hot: &HotCache) {
        loop {
            self.drain_buffered(opts, hot);
            if self.pending.len() >= opts.max_pipeline || self.draining {
                return;
            }
            match self.reader.fill_from(&mut self.stream) {
                Ok(0) => {
                    // Peer closed its write half: answer what already
                    // arrived, then close.
                    self.draining = true;
                    return;
                }
                Ok(n) => {
                    // A short read drained the socket buffer: decode
                    // what arrived and skip the read that would return
                    // WouldBlock — level-triggered poll re-arms if more
                    // bytes land in the meantime.
                    if n < crate::protocol::FILL_CHUNK {
                        self.drain_buffered(opts, hot);
                        return;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(_) => {
                    self.dead = true;
                    return;
                }
            }
        }
    }

    /// Queue one response, echoing the tag. Overflow seals the
    /// connection with a final untagged `overloaded` frame.
    fn queue_reply(&mut self, reply: FastReply, tag: Option<&Json>) {
        if self.poisoned || self.dead {
            return;
        }
        let queued = match reply {
            FastReply::Raw(mut body) => {
                if let Some(t) = tag {
                    attach_tag_rendered(&mut body, t);
                }
                self.writer.queue_rendered(body)
            }
            FastReply::Json(mut v) => {
                if let Some(t) = tag {
                    attach_tag(&mut v, t);
                }
                let body = v.render();
                if body.len() > MAX_FRAME {
                    // An oversized response (a huge pipeline output)
                    // must not become a malformed frame; substitute a
                    // structured error.
                    let e =
                        ServiceError::Internal("response exceeds the 16 MiB frame limit".into());
                    let mut err = error_response(&e);
                    if let Some(t) = tag {
                        attach_tag(&mut err, t);
                    }
                    self.writer.queue_rendered(err.render())
                } else {
                    self.writer.queue_rendered(body)
                }
            }
        };
        if queued.is_err() {
            self.poisoned = true;
            self.draining = true;
            self.pending.clear();
            self.writer.seal(&error_response(&ServiceError::Overloaded));
        }
    }

    /// Push queued response bytes to the socket (non-blocking).
    fn flush(&mut self) {
        if self.dead || self.writer.is_empty() {
            return;
        }
        if self.writer.write_some(&mut self.stream).is_err() {
            self.dead = true;
        }
    }
}

/// One ready request bound for a dispatch worker.
struct DispatchItem {
    conn: u64,
    tag: Option<Json>,
    untagged: bool,
    req: Request,
}

/// A finished dispatched request on its way back to the loop.
struct Completion {
    conn: u64,
    tag: Option<Json>,
    untagged: bool,
    reply: Json,
}

/// What the loop and the dispatch workers share.
struct DispatchShared {
    completions: Mutex<Vec<Completion>>,
    waker: Waker,
}

/// Answer and dispatch everything answerable on one connection. Ready
/// requests that need a worker go into `batch`; inline-answerable ones
/// are queued on the writer immediately.
fn pump(
    id: u64,
    conn: &mut Conn,
    service: &Arc<Service>,
    stop: &StopFlag,
    opts: &ServeOptions,
    hot: &mut HotCache,
    batch: &mut Vec<DispatchItem>,
) {
    loop {
        let Some(front) = conn.pending.front() else {
            // Pending drained; frames may still sit undecoded in the
            // reader's buffer from a capped earlier read.
            if conn.drain_buffered(opts, hot) {
                continue;
            }
            return;
        };
        if conn.serial_block {
            return;
        }
        let untagged = front.untagged;
        if untagged && conn.inflight > 0 {
            return;
        }
        let f = conn.pending.pop_front().expect("front exists");
        match f.work {
            Work::Hot(body, arrived) => {
                // Same accounting as the handle_cached hit this entry
                // was seeded from.
                let stats = service.stats();
                Stats::bump(&stats.requests);
                Stats::bump(&stats.cache_hits);
                conn.queue_reply(FastReply::Raw(body), None);
                stats.record_latency_us(u64::try_from(arrived.elapsed().as_micros()).unwrap_or(0));
            }
            Work::Parsed(Err(e)) => {
                // Transport-level rejects (unparseable request or tag):
                // answered inline, not counted as service traffic —
                // same as the v1 per-connection loop.
                conn.queue_reply(FastReply::Json(error_response(&e)), f.tag.as_ref());
                if f.close_after {
                    conn.draining = true;
                    conn.pending.clear();
                    return;
                }
            }
            Work::Parsed(Ok(req)) => {
                if matches!(req, Request::Shutdown) {
                    let reply = service.handle(&req);
                    conn.queue_reply(FastReply::Json(reply), f.tag.as_ref());
                    stop.request();
                    continue;
                }
                match service.handle_cached(&req) {
                    Some(FastReply::Raw(mut body)) => {
                        // A compile served from the artifact cache:
                        // splice the tag, then memoize the finished
                        // bytes under the frame's raw bytes.
                        if let Some(t) = &f.tag {
                            attach_tag_rendered(&mut body, t);
                        }
                        if let Some(raw) = f.raw {
                            hot.insert(raw, body.clone(), untagged);
                        }
                        conn.queue_reply(FastReply::Raw(body), None);
                    }
                    Some(fast) => conn.queue_reply(fast, f.tag.as_ref()),
                    None => {
                        conn.inflight += 1;
                        if untagged {
                            conn.serial_block = true;
                        }
                        batch.push(DispatchItem { conn: id, tag: f.tag, untagged, req });
                    }
                }
            }
        }
    }
}

/// Run the readiness loop until the stop flag trips, then drain.
pub(crate) fn run(
    service: &Arc<Service>,
    listener: &Listener,
    stop: &StopFlag,
    opts: &ServeOptions,
) -> io::Result<()> {
    let (mut wake_rx, waker) = wake_pipe()?;
    let shared = Arc::new(DispatchShared { completions: Mutex::new(Vec::new()), waker });
    let workers = match opts.dispatch_workers {
        0 => service.config().workers.max(2),
        n => n,
    };
    let queue_bound = match opts.dispatch_queue {
        0 => (opts.max_connections * 2).max(256),
        n => n,
    };
    let dispatch = TaskQueue::new(workers, queue_bound);

    let mut conns: HashMap<u64, Conn> = HashMap::new();
    let mut hot = HotCache::new();
    let mut next_id: u64 = 0;
    let mut drain_deadline: Option<Instant> = None;

    loop {
        // ── stop / drain ────────────────────────────────────────────
        let stopping = stop.stopping();
        if stopping {
            if drain_deadline.is_none() {
                drain_deadline = Some(Instant::now() + DRAIN_GRACE);
                for c in conns.values_mut() {
                    c.draining = true;
                }
            }
            let expired = drain_deadline.is_some_and(|d| Instant::now() >= d);
            if conns.is_empty() || expired {
                break;
            }
        }

        // ── build the poll set ──────────────────────────────────────
        let mut fds = Vec::with_capacity(2 + conns.len());
        fds.push(PollFd::new(wake_rx.fd(), POLLIN));
        let listener_idx = if stopping {
            None
        } else {
            fds.push(PollFd::new(listener.fd(), POLLIN));
            Some(fds.len() - 1)
        };
        let base = fds.len();
        let order: Vec<u64> = conns.keys().copied().collect();
        for id in &order {
            let c = &conns[id];
            let mut interest = 0i16;
            if c.wants_read(opts) {
                interest |= POLLIN;
            }
            if !c.writer.is_empty() {
                interest |= POLLOUT;
            }
            fds.push(PollFd::new(c.stream.fd(), interest));
        }

        poll_fds(&mut fds, POLL_TIMEOUT)?;

        // ── drain completions (every iteration: the waker's pending
        // flag makes a missed byte harmless) ────────────────────────
        shared.waker.reset();
        wake_rx.drain();
        let done: Vec<Completion> = std::mem::take(&mut *shared.completions.lock().expect("lock"));
        for c in done {
            if let Some(conn) = conns.get_mut(&c.conn) {
                conn.inflight -= 1;
                if c.untagged {
                    conn.serial_block = false;
                }
                conn.queue_reply(FastReply::Json(c.reply), c.tag.as_ref());
            }
        }

        // ── accept ──────────────────────────────────────────────────
        if let Some(i) = listener_idx {
            if fds[i].readable() {
                loop {
                    match listener.accept() {
                        Ok(mut stream) => {
                            if conns.len() >= opts.max_connections
                                || stream.set_nonblocking().is_err()
                            {
                                // Refuse politely; the frame fits in a
                                // fresh socket buffer without blocking.
                                let _ = write_frame(
                                    &mut stream,
                                    &error_response(&ServiceError::Overloaded),
                                );
                                continue;
                            }
                            conns.insert(next_id, Conn::new(stream, opts));
                            next_id += 1;
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                        Err(e) => {
                            eprintln!("pitchforkd: accept failed: {e}");
                            break;
                        }
                    }
                }
            }
        }

        // ── read ────────────────────────────────────────────────────
        for (i, id) in order.iter().enumerate() {
            let pf = &fds[base + i];
            let conn = conns.get_mut(id).expect("registered");
            if pf.failed() {
                conn.dead = true;
                continue;
            }
            if pf.readable() && conn.wants_read(opts) {
                conn.fill(opts, &hot);
            }
        }

        // ── pump: inline replies + collect the dispatch batch ───────
        let mut batch: Vec<DispatchItem> = Vec::new();
        for (&id, conn) in conns.iter_mut() {
            if !conn.dead {
                pump(id, conn, service, stop, opts, &mut hot, &mut batch);
            }
        }

        // ── dispatch the batch under one queue lock ─────────────────
        if !batch.is_empty() {
            Stats::record_max(&service.stats().dispatch_batch_max, batch.len() as u64);
            let meta: Vec<(u64, Option<Json>, bool)> =
                batch.iter().map(|it| (it.conn, it.tag.clone(), it.untagged)).collect();
            let tasks: Vec<Task> = batch
                .into_iter()
                .map(|it| {
                    let service = Arc::clone(service);
                    let shared = Arc::clone(&shared);
                    Box::new(move || {
                        let reply = service.handle_local(&it.req);
                        shared.completions.lock().expect("completion lock").push(Completion {
                            conn: it.conn,
                            tag: it.tag,
                            untagged: it.untagged,
                            reply,
                        });
                        shared.waker.wake();
                    }) as Task
                })
                .collect();
            let admitted = dispatch.submit_batch(tasks);
            // Whatever the bounded queue refused is shed right here,
            // with the same accounting `Service::handle` would use.
            for (conn_id, tag, untagged) in meta.into_iter().skip(admitted) {
                if let Some(conn) = conns.get_mut(&conn_id) {
                    conn.inflight -= 1;
                    if untagged {
                        conn.serial_block = false;
                    }
                    Stats::bump(&service.stats().requests);
                    Stats::bump(&service.stats().sheds);
                    conn.queue_reply(
                        FastReply::Json(error_response(&ServiceError::Overloaded)),
                        tag.as_ref(),
                    );
                }
            }
        }

        // ── write: opportunistic flush of everything queued ─────────
        for conn in conns.values_mut() {
            conn.flush();
        }

        // ── close finished connections, refresh gauges ──────────────
        conns.retain(|_, c| !c.should_close());
        let stats = service.stats();
        Stats::set(&stats.open_connections, conns.len() as u64);
        Stats::set(&stats.inflight_frames, conns.values().map(|c| c.inflight as u64).sum());
        Stats::set(&stats.dispatch_queue_depth, dispatch.depth() as u64);
    }

    // Late completions after the drain window are dropped with the
    // queue (its Drop runs admitted tasks to completion first).
    drop(dispatch);
    Stats::set(&service.stats().open_connections, 0);
    Stats::set(&service.stats().inflight_frames, 0);
    Stats::set(&service.stats().dispatch_queue_depth, 0);
    Ok(())
}
