//! The transport layer of `pitchforkd`: binding, graceful shutdown,
//! and the blocking [`Client`].
//!
//! The server listens on a Unix socket or a TCP address and runs every
//! connection on the readiness-driven loop in
//! [`eventloop`](crate::eventloop) — one thread multiplexing all
//! sockets with `poll(2)`, dispatching ready requests to a worker pool
//! in batches. Shutdown is cooperative and comes from two places — a
//! `{"op":"shutdown"}` frame, which stops only the server that received
//! it via a per-`serve()` stop flag, or `SIGTERM`/`SIGINT`, which set a
//! process-wide flag every server also polls. On the way out the server
//! stops accepting, drains in-flight work and unflushed responses, and
//! unlinks the Unix socket path.

use crate::eventloop::{self, Listener, ServeOptions};
use crate::json::Json;
use crate::protocol::{read_frame, write_frame};
use crate::service::Service;
use std::io::{self};
use std::net::TcpListener;
use std::os::unix::net::UnixListener;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Where the server listens.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Endpoint {
    /// A Unix-domain socket at this path (created on bind, unlinked on
    /// shutdown).
    Unix(PathBuf),
    /// A TCP address such as `127.0.0.1:7737`.
    Tcp(String),
}

impl std::fmt::Display for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Endpoint::Unix(p) => write!(f, "unix:{}", p.display()),
            Endpoint::Tcp(a) => write!(f, "tcp:{a}"),
        }
    }
}

impl Endpoint {
    /// Parse a CLI address: an explicit `unix:` or `tcp:` prefix wins;
    /// a bare string containing `/` is a Unix-socket path, anything
    /// else a TCP address. Round-trips with [`Display`]: the display
    /// form doubles as the fleet's rendezvous node id, so every daemon
    /// resolves `--peer` spellings to the same canonical string.
    pub fn parse(s: &str) -> Endpoint {
        if let Some(path) = s.strip_prefix("unix:") {
            Endpoint::Unix(PathBuf::from(path))
        } else if let Some(addr) = s.strip_prefix("tcp:") {
            Endpoint::Tcp(addr.to_string())
        } else if s.contains('/') {
            Endpoint::Unix(PathBuf::from(s))
        } else {
            Endpoint::Tcp(s.to_string())
        }
    }
}

/// Default cap on concurrently open connections. Admission control on
/// the compile queue bounds work, not sockets; this bounds sockets, so
/// a connection flood (especially on TCP) cannot exhaust fds or
/// memory. Connections past the cap get an `overloaded` error frame
/// and are closed. Override via [`ServeOptions::max_connections`].
pub const MAX_CONNECTIONS: usize = 128;

/// Process-wide stop flag; set only by signals (and [`request_stop`],
/// which models one). Each `serve()` call additionally has its own stop
/// flag for `shutdown` frames, so stopping one server never stops
/// another in the same process.
static SIGNAL_STOP: AtomicBool = AtomicBool::new(false);

/// Install handlers so `SIGTERM` and `SIGINT` request a graceful stop.
///
/// Uses the raw libc `signal` entry point (no `libc` crate in this
/// build environment); the handler only stores to an atomic, which is
/// async-signal-safe.
pub fn install_signal_handlers() {
    extern "C" fn on_signal(_sig: i32) {
        SIGNAL_STOP.store(true, Ordering::SeqCst);
    }
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    let handler = on_signal as extern "C" fn(i32) as *const () as usize;
    unsafe {
        signal(SIGTERM, handler);
        signal(SIGINT, handler);
    }
}

/// Ask every running server in this process to stop — the same path
/// the signal handlers take.
pub fn request_stop() {
    SIGNAL_STOP.store(true, Ordering::SeqCst);
}

/// Clear the process-wide signal stop flag so a new `serve()` can run
/// after a signal-driven (or [`request_stop`]-driven) stop. Never
/// called implicitly: a `serve()` entry must not cancel a stop
/// requested while it was starting.
pub fn reset_signal_stop() {
    SIGNAL_STOP.store(false, Ordering::SeqCst);
}

/// One `serve()` call's stop state: its own flag plus the signal flag.
#[derive(Clone)]
pub(crate) struct StopFlag(Arc<AtomicBool>);

impl StopFlag {
    fn new() -> StopFlag {
        StopFlag(Arc::new(AtomicBool::new(false)))
    }

    /// Stop this server only (what a `shutdown` frame requests).
    pub(crate) fn request(&self) {
        self.0.store(true, Ordering::SeqCst);
    }

    pub(crate) fn stopping(&self) -> bool {
        self.0.load(Ordering::SeqCst) || SIGNAL_STOP.load(Ordering::SeqCst)
    }
}

/// Run the serve loop on `endpoint` with default [`ServeOptions`] until
/// a shutdown request or signal. See [`serve_with`].
///
/// # Errors
///
/// Binding errors and fatal `poll` errors; accept errors are
/// per-connection and logged to stderr instead of aborting the server.
pub fn serve(service: Arc<Service>, endpoint: &Endpoint) -> io::Result<()> {
    serve_with(service, endpoint, &ServeOptions::default())
}

/// Run the serve loop on `endpoint` until a shutdown request or signal.
///
/// A `shutdown` frame stops only this server; a signal (or
/// [`request_stop`]) stops every server in the process. Starting with
/// the signal flag already set drains immediately — call
/// [`reset_signal_stop`] first to reuse the process after a stop.
///
/// Concurrent daemons on one Unix-socket path are unsupported: the
/// stale-socket cleanup (remove a path nothing answers on, then bind)
/// is check-then-act, and two servers racing through it can unlink each
/// other. Give each daemon its own path.
///
/// # Errors
///
/// Binding errors and fatal `poll` errors; accept errors are
/// per-connection and logged to stderr instead of aborting the server.
pub fn serve_with(
    service: Arc<Service>,
    endpoint: &Endpoint,
    opts: &ServeOptions,
) -> io::Result<()> {
    let stop = StopFlag::new();
    let listener = match endpoint {
        Endpoint::Unix(path) => {
            // A stale socket file from a crashed predecessor would make
            // bind fail; remove it if nothing is listening. Racy by
            // construction (see above) — fine for the supported
            // one-daemon-per-path deployment.
            if path.exists() && std::os::unix::net::UnixStream::connect(path).is_err() {
                let _ = std::fs::remove_file(path);
            }
            let l = UnixListener::bind(path)?;
            l.set_nonblocking(true)?;
            Listener::Unix(l, path.clone())
        }
        Endpoint::Tcp(addr) => {
            let l = TcpListener::bind(addr.as_str())?;
            l.set_nonblocking(true)?;
            Listener::Tcp(l)
        }
    };

    let result = eventloop::run(&service, &listener, &stop, opts, &endpoint.to_string());
    if let Listener::Unix(l, path) = listener {
        drop(l);
        let _ = std::fs::remove_file(path);
    }
    result
}

/// A blocking client for the frame protocol.
///
/// [`request`](Client::request) is the classic serial call;
/// [`send`](Client::send) / [`recv`](Client::recv) split the two halves
/// so a pipelining client can put many tagged frames on the wire before
/// reading any response.
#[derive(Debug)]
pub struct Client {
    conn: ClientConn,
}

#[derive(Debug)]
enum ClientConn {
    Unix(std::os::unix::net::UnixStream),
    Tcp(std::net::TcpStream),
}

impl Client {
    /// Connect to a serving endpoint.
    ///
    /// # Errors
    ///
    /// Connection errors.
    pub fn connect(endpoint: &Endpoint) -> io::Result<Client> {
        let conn = match endpoint {
            Endpoint::Unix(path) => {
                ClientConn::Unix(std::os::unix::net::UnixStream::connect(path)?)
            }
            Endpoint::Tcp(addr) => ClientConn::Tcp(std::net::TcpStream::connect(addr.as_str())?),
        };
        Ok(Client { conn })
    }

    /// Send one request frame without waiting for the response.
    ///
    /// # Errors
    ///
    /// I/O errors.
    pub fn send(&mut self, v: &Json) -> io::Result<()> {
        match &mut self.conn {
            ClientConn::Unix(s) => write_frame(s, v),
            ClientConn::Tcp(s) => write_frame(s, v),
        }
    }

    /// Read one response frame.
    ///
    /// # Errors
    ///
    /// I/O errors; `UnexpectedEof` if the server closed without
    /// answering.
    pub fn recv(&mut self) -> io::Result<Json> {
        match &mut self.conn {
            ClientConn::Unix(s) => read_frame(s),
            ClientConn::Tcp(s) => read_frame(s),
        }?
        .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "server closed"))
    }

    /// Send one request frame and read one response frame.
    ///
    /// # Errors
    ///
    /// I/O errors; `UnexpectedEof` if the server closed without
    /// answering.
    pub fn request(&mut self, v: &Json) -> io::Result<Json> {
        self.send(v)?;
        self.recv()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;
    use crate::service::ServiceConfig;
    use std::io::Write;
    use std::time::Duration;

    /// The loop's idle poll timeout — partial-write tests pause past it.
    const POLL: Duration = Duration::from_millis(50);

    /// The signal stop flag is process-global, so tests that exercise
    /// it must not overlap tests that run a server.
    static SERIAL: std::sync::Mutex<()> = std::sync::Mutex::new(());

    fn start(endpoint: Endpoint) -> std::thread::JoinHandle<io::Result<()>> {
        let svc = Arc::new(Service::new(ServiceConfig {
            cache_bytes: 8 << 20,
            workers: 2,
            queue_capacity: 8,
            default_timeout_ms: None,
            cache_dir: None,
            cache_max_bytes: None,
            cache_max_age: None,
        }));
        let ep = endpoint.clone();
        std::thread::spawn(move || serve(svc, &ep))
    }

    fn connect_with_retry(ep: &Endpoint) -> Client {
        for _ in 0..100 {
            if let Ok(c) = Client::connect(ep) {
                return c;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        panic!("server at {ep} never came up");
    }

    #[test]
    fn unix_round_trip_and_shutdown() {
        let _serial = SERIAL.lock().unwrap();
        let dir = std::env::temp_dir();
        let path = dir.join(format!("pitchforkd-test-{}.sock", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let ep = Endpoint::Unix(path.clone());
        let server = start(ep.clone());
        let mut client = connect_with_retry(&ep);

        let pong = client.request(&parse(r#"{"op":"ping"}"#).unwrap()).unwrap();
        assert_eq!(pong.get("ok").unwrap().as_bool(), Some(true));

        let compiled = client
            .request(
                &parse(
                    r#"{"op":"compile","expr":"u8(min(u16(a_u8) + u16(b_u8), 255))",
                        "lanes":16,"isa":"arm"}"#,
                )
                .unwrap(),
            )
            .unwrap();
        assert_eq!(compiled.get("ok").unwrap().as_bool(), Some(true), "{compiled:?}");
        assert_eq!(compiled.get("lowered").unwrap().as_str(), Some("arm.uqadd(a_u8, b_u8)"));

        let bye = client.request(&parse(r#"{"op":"shutdown"}"#).unwrap()).unwrap();
        assert_eq!(bye.get("stopping").unwrap().as_bool(), Some(true));
        server.join().unwrap().unwrap();
        assert!(!path.exists(), "socket file should be unlinked on shutdown");
    }

    #[test]
    fn tcp_round_trip_and_signal_stop() {
        let _serial = SERIAL.lock().unwrap();
        // Port 0 would need the bound address back; pick an uncommon
        // fixed port and tolerate a busy environment by trying a few.
        let mut server = None;
        let mut ep = None;
        for port in [47731u16, 47741, 47751, 47761] {
            let candidate = Endpoint::Tcp(format!("127.0.0.1:{port}"));
            let h = start(candidate.clone());
            std::thread::sleep(Duration::from_millis(50));
            if !h.is_finished() {
                server = Some(h);
                ep = Some(candidate);
                break;
            }
        }
        let (server, ep) = (server.expect("no free port"), ep.unwrap());
        let mut client = connect_with_retry(&ep);
        let pong = client.request(&parse(r#"{"op":"ping"}"#).unwrap()).unwrap();
        assert_eq!(pong.get("ok").unwrap().as_bool(), Some(true));
        // Stop via the same path the signal handler uses.
        request_stop();
        server.join().unwrap().unwrap();
        reset_signal_stop();
    }

    #[test]
    fn shutdown_frame_stops_only_its_own_server() {
        let _serial = SERIAL.lock().unwrap();
        let dir = std::env::temp_dir();
        let pid = std::process::id();
        let path_a = dir.join(format!("pitchforkd-test-{pid}-a.sock"));
        let path_b = dir.join(format!("pitchforkd-test-{pid}-b.sock"));
        let _ = std::fs::remove_file(&path_a);
        let _ = std::fs::remove_file(&path_b);
        let ep_a = Endpoint::Unix(path_a);
        let ep_b = Endpoint::Unix(path_b);
        let server_a = start(ep_a.clone());
        let server_b = start(ep_b.clone());
        let mut client_a = connect_with_retry(&ep_a);
        let mut client_b = connect_with_retry(&ep_b);

        let bye = client_a.request(&parse(r#"{"op":"shutdown"}"#).unwrap()).unwrap();
        assert_eq!(bye.get("stopping").unwrap().as_bool(), Some(true));
        server_a.join().unwrap().unwrap();

        // Server B is unaffected and still answers.
        let pong = client_b.request(&parse(r#"{"op":"ping"}"#).unwrap()).unwrap();
        assert_eq!(pong.get("ok").unwrap().as_bool(), Some(true));
        let bye = client_b.request(&parse(r#"{"op":"shutdown"}"#).unwrap()).unwrap();
        assert_eq!(bye.get("stopping").unwrap().as_bool(), Some(true));
        server_b.join().unwrap().unwrap();
    }

    /// A request whose frame arrives one byte at a time — every chunk
    /// separated by more than the server's poll timeout window would be
    /// too slow for CI, so this just splits the frame into many small
    /// writes with pauses long enough that the loop's timed polls
    /// interleave with the arrival.
    #[test]
    fn slow_partial_writes_do_not_desync_framing() {
        let _serial = SERIAL.lock().unwrap();
        let dir = std::env::temp_dir();
        let path = dir.join(format!("pitchforkd-test-{}-slow.sock", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let ep = Endpoint::Unix(path);
        let server = start(ep.clone());
        connect_with_retry(&ep); // wait until the server is up

        let mut raw = std::os::unix::net::UnixStream::connect(match &ep {
            Endpoint::Unix(p) => p,
            Endpoint::Tcp(_) => unreachable!(),
        })
        .unwrap();
        let mut frame = Vec::new();
        write_frame(&mut frame, &parse(r#"{"op":"ping"}"#).unwrap()).unwrap();
        // Dribble the frame: split inside the 4-byte header and inside
        // the body, pausing past the poll timeout each time so the loop
        // sees the connection readable mid-frame many times.
        for chunk in frame.chunks(3) {
            raw.write_all(chunk).unwrap();
            raw.flush().unwrap();
            std::thread::sleep(POLL + Duration::from_millis(20));
        }
        let pong = read_frame(&mut raw).unwrap().expect("server closed without answering");
        assert_eq!(pong.get("ok").unwrap().as_bool(), Some(true), "{pong:?}");

        // And the connection is still in sync for a normal request.
        write_frame(&mut raw, &parse(r#"{"op":"stats"}"#).unwrap()).unwrap();
        let stats = read_frame(&mut raw).unwrap().expect("server closed without answering");
        assert_eq!(stats.get("ok").unwrap().as_bool(), Some(true));
        drop(raw);

        let mut client = connect_with_retry(&ep);
        let bye = client.request(&parse(r#"{"op":"shutdown"}"#).unwrap()).unwrap();
        assert_eq!(bye.get("stopping").unwrap().as_bool(), Some(true));
        server.join().unwrap().unwrap();
    }
}
