//! The transport layer of `pitchforkd`: socket accept loop, connection
//! threads, graceful shutdown.
//!
//! The server listens on a Unix socket or a TCP address, spawns one
//! thread per connection (capped at [`MAX_CONNECTIONS`]), and runs
//! frames through [`Service::handle`](crate::service::Service::handle).
//! Shutdown is cooperative and comes from two places — a
//! `{"op":"shutdown"}` frame, which stops only the server that received
//! it via a per-`serve()` stop flag, or `SIGTERM`/`SIGINT`, which set a
//! process-wide flag every server also polls. On the way out the server
//! stops accepting, joins the connection threads (socket read timeouts
//! plus the buffering [`FrameReader`] keep them responsive without
//! losing partial frames), and unlinks the Unix socket path.

use crate::json::Json;
use crate::protocol::{
    error_response, parse_request, read_frame, write_frame, FrameReader, Request,
};
use crate::service::Service;
use std::io::{self, Read, Write};
use std::net::TcpListener;
use std::os::unix::net::UnixListener;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Where the server listens.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Endpoint {
    /// A Unix-domain socket at this path (created on bind, unlinked on
    /// shutdown).
    Unix(PathBuf),
    /// A TCP address such as `127.0.0.1:7737`.
    Tcp(String),
}

impl std::fmt::Display for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Endpoint::Unix(p) => write!(f, "unix:{}", p.display()),
            Endpoint::Tcp(a) => write!(f, "tcp:{a}"),
        }
    }
}

/// How often idle loops re-check the stop flags.
const POLL: Duration = Duration::from_millis(50);

/// Most connection threads allowed at once per server. Admission
/// control on the compile queue bounds work, not sockets; this bounds
/// sockets, so a connection flood (especially on TCP) cannot exhaust
/// threads or memory. Connections past the cap get an `overloaded`
/// error frame and are closed.
pub const MAX_CONNECTIONS: usize = 128;

/// Process-wide stop flag; set only by signals (and [`request_stop`],
/// which models one). Each `serve()` call additionally has its own stop
/// flag for `shutdown` frames, so stopping one server never stops
/// another in the same process.
static SIGNAL_STOP: AtomicBool = AtomicBool::new(false);

/// Install handlers so `SIGTERM` and `SIGINT` request a graceful stop.
///
/// Uses the raw libc `signal` entry point (no `libc` crate in this
/// build environment); the handler only stores to an atomic, which is
/// async-signal-safe.
pub fn install_signal_handlers() {
    extern "C" fn on_signal(_sig: i32) {
        SIGNAL_STOP.store(true, Ordering::SeqCst);
    }
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    let handler = on_signal as extern "C" fn(i32) as *const () as usize;
    unsafe {
        signal(SIGTERM, handler);
        signal(SIGINT, handler);
    }
}

/// Ask every running server in this process to stop — the same path
/// the signal handlers take.
pub fn request_stop() {
    SIGNAL_STOP.store(true, Ordering::SeqCst);
}

/// Clear the process-wide signal stop flag so a new `serve()` can run
/// after a signal-driven (or [`request_stop`]-driven) stop. Never
/// called implicitly: a `serve()` entry must not cancel a stop
/// requested while it was starting.
pub fn reset_signal_stop() {
    SIGNAL_STOP.store(false, Ordering::SeqCst);
}

/// One `serve()` call's stop state: its own flag plus the signal flag.
#[derive(Clone)]
struct StopFlag(Arc<AtomicBool>);

impl StopFlag {
    fn new() -> StopFlag {
        StopFlag(Arc::new(AtomicBool::new(false)))
    }

    /// Stop this server only (what a `shutdown` frame requests).
    fn request(&self) {
        self.0.store(true, Ordering::SeqCst);
    }

    fn stopping(&self) -> bool {
        self.0.load(Ordering::SeqCst) || SIGNAL_STOP.load(Ordering::SeqCst)
    }
}

enum Listener {
    Unix(UnixListener, PathBuf),
    Tcp(TcpListener),
}

enum Conn {
    Unix(std::os::unix::net::UnixStream),
    Tcp(std::net::TcpStream),
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Conn::Unix(s) => s.read(buf),
            Conn::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Conn::Unix(s) => s.write(buf),
            Conn::Tcp(s) => s.write(buf),
        }
    }
    fn flush(&mut self) -> io::Result<()> {
        match self {
            Conn::Unix(s) => s.flush(),
            Conn::Tcp(s) => s.flush(),
        }
    }
}

impl Conn {
    fn set_read_timeout(&self, d: Option<Duration>) -> io::Result<()> {
        match self {
            Conn::Unix(s) => s.set_read_timeout(d),
            Conn::Tcp(s) => s.set_read_timeout(d),
        }
    }
}

/// Run the serve loop on `endpoint` until a shutdown request or signal.
///
/// A `shutdown` frame stops only this server; a signal (or
/// [`request_stop`]) stops every server in the process. Starting with
/// the signal flag already set returns immediately — call
/// [`reset_signal_stop`] first to reuse the process after a stop.
///
/// Concurrent daemons on one Unix-socket path are unsupported: the
/// stale-socket cleanup (remove a path nothing answers on, then bind)
/// is check-then-act, and two servers racing through it can unlink each
/// other. Give each daemon its own path.
///
/// # Errors
///
/// Binding errors; accept errors are per-connection and logged to
/// stderr instead of aborting the server.
pub fn serve(service: Arc<Service>, endpoint: &Endpoint) -> io::Result<()> {
    let stop = StopFlag::new();
    let listener = match endpoint {
        Endpoint::Unix(path) => {
            // A stale socket file from a crashed predecessor would make
            // bind fail; remove it if nothing is listening. Racy by
            // construction (see above) — fine for the supported
            // one-daemon-per-path deployment.
            if path.exists() && std::os::unix::net::UnixStream::connect(path).is_err() {
                let _ = std::fs::remove_file(path);
            }
            let l = UnixListener::bind(path)?;
            l.set_nonblocking(true)?;
            Listener::Unix(l, path.clone())
        }
        Endpoint::Tcp(addr) => {
            let l = TcpListener::bind(addr.as_str())?;
            l.set_nonblocking(true)?;
            Listener::Tcp(l)
        }
    };

    let mut workers: Vec<std::thread::JoinHandle<()>> = Vec::new();
    while !stop.stopping() {
        let conn = match &listener {
            Listener::Unix(l, _) => l.accept().map(|(s, _)| Conn::Unix(s)),
            Listener::Tcp(l) => l.accept().map(|(s, _)| Conn::Tcp(s)),
        };
        match conn {
            Ok(mut conn) => {
                // Reap finished threads before counting live ones.
                workers.retain(|h| !h.is_finished());
                if workers.len() >= MAX_CONNECTIONS {
                    let err = crate::error::ServiceError::Overloaded;
                    let _ = write_frame(&mut conn, &error_response(&err));
                    continue; // drops (closes) the connection
                }
                let service = service.clone();
                let stop = stop.clone();
                workers.push(std::thread::spawn(move || serve_connection(service, conn, stop)));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(POLL);
                // Reap here too so the vec doesn't grow without bound
                // on long-lived servers.
                workers.retain(|h| !h.is_finished());
            }
            Err(e) => eprintln!("pitchforkd: accept failed: {e}"),
        }
    }

    for h in workers {
        let _ = h.join();
    }
    if let Listener::Unix(l, path) = listener {
        drop(l);
        let _ = std::fs::remove_file(path);
    }
    Ok(())
}

/// One connection: frames in, frames out, until EOF, error, or stop.
fn serve_connection(service: Arc<Service>, mut conn: Conn, stop: StopFlag) {
    // The timeout keeps this thread polling the stop flags while the
    // peer is idle, so shutdown can join it. The FrameReader buffers
    // partial frames across timed-out reads, so a slow peer can never
    // desynchronize the stream.
    let _ = conn.set_read_timeout(Some(POLL));
    let mut frames = FrameReader::new();
    loop {
        let frame = match frames.next_frame(&mut conn) {
            Ok(Some(v)) => v,
            Ok(None) => return, // peer closed
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if stop.stopping() {
                    return;
                }
                continue;
            }
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                // Malformed frame: answer with a structured error, then
                // drop the connection (framing may be out of sync).
                let err = crate::error::ServiceError::BadRequest(e.to_string());
                let _ = write_frame(&mut conn, &error_response(&err));
                return;
            }
            Err(_) => return,
        };
        let response = match parse_request(&frame) {
            Ok(req) => {
                let v = service.handle(&req);
                if req == Request::Shutdown {
                    let _ = write_frame(&mut conn, &v);
                    stop.request();
                    return;
                }
                v
            }
            Err(e) => error_response(&e),
        };
        if write_frame(&mut conn, &response).is_err() {
            return;
        }
    }
}

/// A blocking client for the frame protocol.
#[derive(Debug)]
pub struct Client {
    conn: ClientConn,
}

#[derive(Debug)]
enum ClientConn {
    Unix(std::os::unix::net::UnixStream),
    Tcp(std::net::TcpStream),
}

impl Client {
    /// Connect to a serving endpoint.
    ///
    /// # Errors
    ///
    /// Connection errors.
    pub fn connect(endpoint: &Endpoint) -> io::Result<Client> {
        let conn = match endpoint {
            Endpoint::Unix(path) => {
                ClientConn::Unix(std::os::unix::net::UnixStream::connect(path)?)
            }
            Endpoint::Tcp(addr) => ClientConn::Tcp(std::net::TcpStream::connect(addr.as_str())?),
        };
        Ok(Client { conn })
    }

    /// Send one request frame and read one response frame.
    ///
    /// # Errors
    ///
    /// I/O errors; `UnexpectedEof` if the server closed without
    /// answering.
    pub fn request(&mut self, v: &Json) -> io::Result<Json> {
        match &mut self.conn {
            ClientConn::Unix(s) => {
                write_frame(s, v)?;
                read_frame(s)
            }
            ClientConn::Tcp(s) => {
                write_frame(s, v)?;
                read_frame(s)
            }
        }?
        .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "server closed"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;
    use crate::service::ServiceConfig;

    /// The signal stop flag is process-global, so tests that exercise
    /// it must not overlap tests that run a server.
    static SERIAL: std::sync::Mutex<()> = std::sync::Mutex::new(());

    fn start(endpoint: Endpoint) -> std::thread::JoinHandle<io::Result<()>> {
        let svc = Arc::new(Service::new(ServiceConfig {
            cache_bytes: 8 << 20,
            workers: 2,
            queue_capacity: 8,
            default_timeout_ms: None,
        }));
        let ep = endpoint.clone();
        std::thread::spawn(move || serve(svc, &ep))
    }

    fn connect_with_retry(ep: &Endpoint) -> Client {
        for _ in 0..100 {
            if let Ok(c) = Client::connect(ep) {
                return c;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        panic!("server at {ep} never came up");
    }

    #[test]
    fn unix_round_trip_and_shutdown() {
        let _serial = SERIAL.lock().unwrap();
        let dir = std::env::temp_dir();
        let path = dir.join(format!("pitchforkd-test-{}.sock", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let ep = Endpoint::Unix(path.clone());
        let server = start(ep.clone());
        let mut client = connect_with_retry(&ep);

        let pong = client.request(&parse(r#"{"op":"ping"}"#).unwrap()).unwrap();
        assert_eq!(pong.get("ok").unwrap().as_bool(), Some(true));

        let compiled = client
            .request(
                &parse(
                    r#"{"op":"compile","expr":"u8(min(u16(a_u8) + u16(b_u8), 255))",
                        "lanes":16,"isa":"arm"}"#,
                )
                .unwrap(),
            )
            .unwrap();
        assert_eq!(compiled.get("ok").unwrap().as_bool(), Some(true), "{compiled:?}");
        assert_eq!(compiled.get("lowered").unwrap().as_str(), Some("arm.uqadd(a_u8, b_u8)"));

        let bye = client.request(&parse(r#"{"op":"shutdown"}"#).unwrap()).unwrap();
        assert_eq!(bye.get("stopping").unwrap().as_bool(), Some(true));
        server.join().unwrap().unwrap();
        assert!(!path.exists(), "socket file should be unlinked on shutdown");
    }

    #[test]
    fn tcp_round_trip_and_signal_stop() {
        let _serial = SERIAL.lock().unwrap();
        // Port 0 would need the bound address back; pick an uncommon
        // fixed port and tolerate a busy environment by trying a few.
        let mut server = None;
        let mut ep = None;
        for port in [47731u16, 47741, 47751, 47761] {
            let candidate = Endpoint::Tcp(format!("127.0.0.1:{port}"));
            let h = start(candidate.clone());
            std::thread::sleep(Duration::from_millis(50));
            if !h.is_finished() {
                server = Some(h);
                ep = Some(candidate);
                break;
            }
        }
        let (server, ep) = (server.expect("no free port"), ep.unwrap());
        let mut client = connect_with_retry(&ep);
        let pong = client.request(&parse(r#"{"op":"ping"}"#).unwrap()).unwrap();
        assert_eq!(pong.get("ok").unwrap().as_bool(), Some(true));
        // Stop via the same path the signal handler uses.
        request_stop();
        server.join().unwrap().unwrap();
        reset_signal_stop();
    }

    #[test]
    fn shutdown_frame_stops_only_its_own_server() {
        let _serial = SERIAL.lock().unwrap();
        let dir = std::env::temp_dir();
        let pid = std::process::id();
        let path_a = dir.join(format!("pitchforkd-test-{pid}-a.sock"));
        let path_b = dir.join(format!("pitchforkd-test-{pid}-b.sock"));
        let _ = std::fs::remove_file(&path_a);
        let _ = std::fs::remove_file(&path_b);
        let ep_a = Endpoint::Unix(path_a);
        let ep_b = Endpoint::Unix(path_b);
        let server_a = start(ep_a.clone());
        let server_b = start(ep_b.clone());
        let mut client_a = connect_with_retry(&ep_a);
        let mut client_b = connect_with_retry(&ep_b);

        let bye = client_a.request(&parse(r#"{"op":"shutdown"}"#).unwrap()).unwrap();
        assert_eq!(bye.get("stopping").unwrap().as_bool(), Some(true));
        server_a.join().unwrap().unwrap();

        // Server B is unaffected and still answers.
        let pong = client_b.request(&parse(r#"{"op":"ping"}"#).unwrap()).unwrap();
        assert_eq!(pong.get("ok").unwrap().as_bool(), Some(true));
        let bye = client_b.request(&parse(r#"{"op":"shutdown"}"#).unwrap()).unwrap();
        assert_eq!(bye.get("stopping").unwrap().as_bool(), Some(true));
        server_b.join().unwrap().unwrap();
    }

    /// A request whose frame arrives one byte at a time — every chunk
    /// separated by more than the server's 50ms read timeout window
    /// would be too slow for CI, so this just splits the frame into
    /// many small writes with pauses long enough that the server's
    /// timed reads interleave with the arrival.
    #[test]
    fn slow_partial_writes_do_not_desync_framing() {
        let _serial = SERIAL.lock().unwrap();
        let dir = std::env::temp_dir();
        let path = dir.join(format!("pitchforkd-test-{}-slow.sock", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let ep = Endpoint::Unix(path);
        let server = start(ep.clone());
        connect_with_retry(&ep); // wait until the server is up

        let mut raw = std::os::unix::net::UnixStream::connect(match &ep {
            Endpoint::Unix(p) => p,
            Endpoint::Tcp(_) => unreachable!(),
        })
        .unwrap();
        let mut frame = Vec::new();
        write_frame(&mut frame, &parse(r#"{"op":"ping"}"#).unwrap()).unwrap();
        // Dribble the frame: split inside the 4-byte header and inside
        // the body, pausing past the server's POLL timeout each time so
        // reads time out mid-frame.
        for chunk in frame.chunks(3) {
            raw.write_all(chunk).unwrap();
            raw.flush().unwrap();
            std::thread::sleep(POLL + Duration::from_millis(20));
        }
        let pong = read_frame(&mut raw).unwrap().expect("server closed without answering");
        assert_eq!(pong.get("ok").unwrap().as_bool(), Some(true), "{pong:?}");

        // And the connection is still in sync for a normal request.
        write_frame(&mut raw, &parse(r#"{"op":"stats"}"#).unwrap()).unwrap();
        let stats = read_frame(&mut raw).unwrap().expect("server closed without answering");
        assert_eq!(stats.get("ok").unwrap().as_bool(), Some(true));
        drop(raw);

        let mut client = connect_with_retry(&ep);
        let bye = client.request(&parse(r#"{"op":"shutdown"}"#).unwrap()).unwrap();
        assert_eq!(bye.get("stopping").unwrap().as_bool(), Some(true));
        server.join().unwrap().unwrap();
    }
}
