//! The transport layer of `pitchforkd`: socket accept loop, connection
//! threads, graceful shutdown.
//!
//! The server listens on a Unix socket or a TCP address, spawns one
//! thread per connection, and runs frames through
//! [`Service::handle`](crate::service::Service::handle). Shutdown is
//! cooperative and comes from two places — a `{"op":"shutdown"}` frame,
//! or `SIGTERM`/`SIGINT` — and both funnel into one stop flag that the
//! accept loop and every connection loop poll. On the way out the
//! server stops accepting, joins the connection threads (socket read
//! timeouts keep them responsive), and unlinks the Unix socket path.

use crate::json::Json;
use crate::protocol::{error_response, parse_request, read_frame, write_frame, Request};
use crate::service::Service;
use std::io::{self, Read, Write};
use std::net::TcpListener;
use std::os::unix::net::UnixListener;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Where the server listens.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Endpoint {
    /// A Unix-domain socket at this path (created on bind, unlinked on
    /// shutdown).
    Unix(PathBuf),
    /// A TCP address such as `127.0.0.1:7737`.
    Tcp(String),
}

impl std::fmt::Display for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Endpoint::Unix(p) => write!(f, "unix:{}", p.display()),
            Endpoint::Tcp(a) => write!(f, "tcp:{a}"),
        }
    }
}

/// How often idle loops re-check the stop flag.
const POLL: Duration = Duration::from_millis(50);

/// Process-wide stop flag; set by signals and by `shutdown` requests.
static STOP: AtomicBool = AtomicBool::new(false);

/// Install handlers so `SIGTERM` and `SIGINT` request a graceful stop.
///
/// Uses the raw libc `signal` entry point (no `libc` crate in this
/// build environment); the handler only stores to an atomic, which is
/// async-signal-safe.
pub fn install_signal_handlers() {
    extern "C" fn on_signal(_sig: i32) {
        STOP.store(true, Ordering::SeqCst);
    }
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    let handler = on_signal as extern "C" fn(i32) as *const () as usize;
    unsafe {
        signal(SIGTERM, handler);
        signal(SIGINT, handler);
    }
}

/// Ask any running server in this process to stop (what the signal
/// handlers and `shutdown` frames call).
pub fn request_stop() {
    STOP.store(true, Ordering::SeqCst);
}

/// Reset the stop flag (start of `serve`; also lets tests reuse the
/// process).
fn clear_stop() {
    STOP.store(false, Ordering::SeqCst);
}

fn stopping() -> bool {
    STOP.load(Ordering::SeqCst)
}

enum Listener {
    Unix(UnixListener, PathBuf),
    Tcp(TcpListener),
}

enum Conn {
    Unix(std::os::unix::net::UnixStream),
    Tcp(std::net::TcpStream),
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Conn::Unix(s) => s.read(buf),
            Conn::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Conn::Unix(s) => s.write(buf),
            Conn::Tcp(s) => s.write(buf),
        }
    }
    fn flush(&mut self) -> io::Result<()> {
        match self {
            Conn::Unix(s) => s.flush(),
            Conn::Tcp(s) => s.flush(),
        }
    }
}

impl Conn {
    fn set_read_timeout(&self, d: Option<Duration>) -> io::Result<()> {
        match self {
            Conn::Unix(s) => s.set_read_timeout(d),
            Conn::Tcp(s) => s.set_read_timeout(d),
        }
    }
}

/// Run the serve loop on `endpoint` until a shutdown request or signal.
///
/// # Errors
///
/// Binding errors; accept errors are per-connection and logged to
/// stderr instead of aborting the server.
pub fn serve(service: Arc<Service>, endpoint: &Endpoint) -> io::Result<()> {
    clear_stop();
    let listener = match endpoint {
        Endpoint::Unix(path) => {
            // A stale socket file from a crashed predecessor would make
            // bind fail; remove it if nothing is listening.
            if path.exists() && std::os::unix::net::UnixStream::connect(path).is_err() {
                let _ = std::fs::remove_file(path);
            }
            let l = UnixListener::bind(path)?;
            l.set_nonblocking(true)?;
            Listener::Unix(l, path.clone())
        }
        Endpoint::Tcp(addr) => {
            let l = TcpListener::bind(addr.as_str())?;
            l.set_nonblocking(true)?;
            Listener::Tcp(l)
        }
    };

    let mut workers: Vec<std::thread::JoinHandle<()>> = Vec::new();
    while !stopping() {
        let conn = match &listener {
            Listener::Unix(l, _) => l.accept().map(|(s, _)| Conn::Unix(s)),
            Listener::Tcp(l) => l.accept().map(|(s, _)| Conn::Tcp(s)),
        };
        match conn {
            Ok(conn) => {
                let service = service.clone();
                workers.push(std::thread::spawn(move || serve_connection(service, conn)));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => std::thread::sleep(POLL),
            Err(e) => eprintln!("pitchforkd: accept failed: {e}"),
        }
        // Reap finished connection threads so the vec doesn't grow
        // without bound on long-lived servers.
        workers.retain(|h| !h.is_finished());
    }

    for h in workers {
        let _ = h.join();
    }
    if let Listener::Unix(l, path) = listener {
        drop(l);
        let _ = std::fs::remove_file(path);
    }
    Ok(())
}

/// One connection: frames in, frames out, until EOF, error, or stop.
fn serve_connection(service: Arc<Service>, mut conn: Conn) {
    // The timeout keeps this thread polling the stop flag while the
    // peer is idle, so shutdown can join it.
    let _ = conn.set_read_timeout(Some(POLL));
    loop {
        let frame = match read_frame(&mut conn) {
            Ok(Some(v)) => v,
            Ok(None) => return, // peer closed
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if stopping() {
                    return;
                }
                continue;
            }
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                // Malformed frame: answer with a structured error, then
                // drop the connection (framing may be out of sync).
                let err = crate::error::ServiceError::BadRequest(e.to_string());
                let _ = write_frame(&mut conn, &error_response(&err));
                return;
            }
            Err(_) => return,
        };
        let response = match parse_request(&frame) {
            Ok(req) => {
                let v = service.handle(&req);
                if req == Request::Shutdown {
                    let _ = write_frame(&mut conn, &v);
                    request_stop();
                    return;
                }
                v
            }
            Err(e) => error_response(&e),
        };
        if write_frame(&mut conn, &response).is_err() {
            return;
        }
    }
}

/// A blocking client for the frame protocol.
#[derive(Debug)]
pub struct Client {
    conn: ClientConn,
}

#[derive(Debug)]
enum ClientConn {
    Unix(std::os::unix::net::UnixStream),
    Tcp(std::net::TcpStream),
}

impl Client {
    /// Connect to a serving endpoint.
    ///
    /// # Errors
    ///
    /// Connection errors.
    pub fn connect(endpoint: &Endpoint) -> io::Result<Client> {
        let conn = match endpoint {
            Endpoint::Unix(path) => {
                ClientConn::Unix(std::os::unix::net::UnixStream::connect(path)?)
            }
            Endpoint::Tcp(addr) => ClientConn::Tcp(std::net::TcpStream::connect(addr.as_str())?),
        };
        Ok(Client { conn })
    }

    /// Send one request frame and read one response frame.
    ///
    /// # Errors
    ///
    /// I/O errors; `UnexpectedEof` if the server closed without
    /// answering.
    pub fn request(&mut self, v: &Json) -> io::Result<Json> {
        match &mut self.conn {
            ClientConn::Unix(s) => {
                write_frame(s, v)?;
                read_frame(s)
            }
            ClientConn::Tcp(s) => {
                write_frame(s, v)?;
                read_frame(s)
            }
        }?
        .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "server closed"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;
    use crate::service::ServiceConfig;

    /// `STOP` is process-global, so tests that stop a server must not
    /// overlap tests that run one.
    static SERIAL: std::sync::Mutex<()> = std::sync::Mutex::new(());

    fn start(endpoint: Endpoint) -> std::thread::JoinHandle<io::Result<()>> {
        let svc = Arc::new(Service::new(ServiceConfig {
            cache_bytes: 8 << 20,
            workers: 2,
            queue_capacity: 8,
            default_timeout_ms: None,
        }));
        let ep = endpoint.clone();
        std::thread::spawn(move || serve(svc, &ep))
    }

    fn connect_with_retry(ep: &Endpoint) -> Client {
        for _ in 0..100 {
            if let Ok(c) = Client::connect(ep) {
                return c;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        panic!("server at {ep} never came up");
    }

    #[test]
    fn unix_round_trip_and_shutdown() {
        let _serial = SERIAL.lock().unwrap();
        let dir = std::env::temp_dir();
        let path = dir.join(format!("pitchforkd-test-{}.sock", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let ep = Endpoint::Unix(path.clone());
        let server = start(ep.clone());
        let mut client = connect_with_retry(&ep);

        let pong = client.request(&parse(r#"{"op":"ping"}"#).unwrap()).unwrap();
        assert_eq!(pong.get("ok").unwrap().as_bool(), Some(true));

        let compiled = client
            .request(
                &parse(
                    r#"{"op":"compile","expr":"u8(min(u16(a_u8) + u16(b_u8), 255))",
                        "lanes":16,"isa":"arm"}"#,
                )
                .unwrap(),
            )
            .unwrap();
        assert_eq!(compiled.get("ok").unwrap().as_bool(), Some(true), "{compiled:?}");
        assert_eq!(compiled.get("lowered").unwrap().as_str(), Some("arm.uqadd(a_u8, b_u8)"));

        let bye = client.request(&parse(r#"{"op":"shutdown"}"#).unwrap()).unwrap();
        assert_eq!(bye.get("stopping").unwrap().as_bool(), Some(true));
        server.join().unwrap().unwrap();
        assert!(!path.exists(), "socket file should be unlinked on shutdown");
    }

    #[test]
    fn tcp_round_trip_and_signal_stop() {
        let _serial = SERIAL.lock().unwrap();
        // Port 0 would need the bound address back; pick an uncommon
        // fixed port and tolerate a busy environment by trying a few.
        let mut server = None;
        let mut ep = None;
        for port in [47731u16, 47741, 47751, 47761] {
            let candidate = Endpoint::Tcp(format!("127.0.0.1:{port}"));
            let h = start(candidate.clone());
            std::thread::sleep(Duration::from_millis(50));
            if !h.is_finished() {
                server = Some(h);
                ep = Some(candidate);
                break;
            }
        }
        let (server, ep) = (server.expect("no free port"), ep.unwrap());
        let mut client = connect_with_retry(&ep);
        let pong = client.request(&parse(r#"{"op":"ping"}"#).unwrap()).unwrap();
        assert_eq!(pong.get("ok").unwrap().as_bool(), Some(true));
        // Stop via the same path the signal handler uses.
        request_stop();
        server.join().unwrap().unwrap();
    }
}
