//! The wire protocol: length-prefixed JSON frames and the typed request
//! vocabulary.
//!
//! A frame is a 4-byte big-endian length followed by that many bytes of
//! UTF-8 JSON — one value per frame, no delimiters to escape, trivially
//! parseable from any language. Requests are objects with an `"op"`
//! member; responses are objects with `"ok": true/false` (the failure
//! shape carries the [`ServiceError`] code and message).
//!
//! ```text
//! → {"op":"compile","expr":"saturating_add(a_u8, b_u8)","lanes":16,"isa":"arm"}
//! ← {"ok":true,"cached":false,"lowered":"arm.uqadd(a_u8, b_u8)", ...}
//! ```

use crate::error::ServiceError;
use crate::json::{parse, Json};
use fpir::types::ScalarType;
use fpir::Isa;
use fpir_trs::rewrite::EngineConfig;
use std::collections::VecDeque;
use std::io::{self, Read, Write};

/// Largest accepted frame (16 MiB) — a denial-of-service guard, far
/// above any legitimate request or response.
pub const MAX_FRAME: usize = 16 << 20;

/// Bytes one [`FrameReader::fill_from`] call asks the OS for. A read
/// shorter than this almost always means the socket buffer is empty —
/// non-blocking callers can skip the follow-up read that would return
/// `WouldBlock` and let level-triggered readiness re-arm instead.
pub const FILL_CHUNK: usize = 16384;

/// Write one value as a frame.
///
/// # Errors
///
/// I/O errors from `w`; `InvalidData` if the rendering exceeds
/// [`MAX_FRAME`].
pub fn write_frame(w: &mut impl Write, v: &Json) -> io::Result<()> {
    let body = v.render();
    if body.len() > MAX_FRAME {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "frame too large"));
    }
    w.write_all(&(body.len() as u32).to_be_bytes())?;
    w.write_all(body.as_bytes())?;
    w.flush()
}

/// Read one frame from a reader with no read timeout. `Ok(None)` on
/// clean end-of-stream (the peer closed between frames).
///
/// Uses `read_exact`, which drops already-consumed bytes if a read
/// fails mid-frame — only safe on blocking streams where the sole
/// failure modes are EOF and connection errors. Readers with a read
/// timeout (the server's connection loops) must use [`FrameReader`],
/// which retains partial bytes across timed-out reads.
///
/// # Errors
///
/// I/O errors from `r`; `InvalidData` on an oversized length, a
/// truncated body, non-UTF-8 bytes, or malformed JSON.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Json>> {
    let mut len_buf = [0u8; 4];
    match r.read_exact(&mut len_buf) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_be_bytes(len_buf) as usize;
    if len > MAX_FRAME {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "frame too large"));
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body)?;
    decode_body(body).map(Some)
}

fn decode_body(body: Vec<u8>) -> io::Result<Json> {
    let text = String::from_utf8(body)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "frame is not UTF-8"))?;
    parse(&text).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
}

/// Decode a frame body drained with
/// [`FrameReader::buffered_frame_raw`].
///
/// # Errors
///
/// `InvalidData` on non-UTF-8 bytes or malformed JSON — the same
/// errors (and messages) the decoding readers produce.
pub fn decode_frame(body: Vec<u8>) -> io::Result<Json> {
    decode_body(body)
}

/// An incremental, timeout-safe frame decoder.
///
/// Unlike [`read_frame`], this never loses bytes when a read fails:
/// everything consumed so far stays in an internal buffer, and a
/// `WouldBlock`/`TimedOut` read mid-frame simply surfaces as an error
/// the caller can retry — the next [`next_frame`](Self::next_frame)
/// call resumes exactly where the stream left off. This is what keeps
/// the server's 50ms-read-timeout connection loops from desynchronizing
/// when a header or a multi-MiB body arrives split across reads.
#[derive(Debug, Default)]
pub struct FrameReader {
    buf: Vec<u8>,
}

impl FrameReader {
    /// An empty reader (no buffered bytes).
    pub fn new() -> FrameReader {
        FrameReader::default()
    }

    /// Read until one complete frame is buffered, then decode it.
    /// `Ok(None)` on clean end-of-stream at a frame boundary.
    ///
    /// # Errors
    ///
    /// `WouldBlock`/`TimedOut` from `r` when no complete frame has
    /// arrived yet — retryable, no bytes are lost; `UnexpectedEof` if
    /// the stream ends mid-frame; `InvalidData` on an oversized length,
    /// non-UTF-8 bytes, or malformed JSON.
    pub fn next_frame(&mut self, r: &mut impl Read) -> io::Result<Option<Json>> {
        loop {
            if let Some(frame) = self.buffered_frame()? {
                return Ok(Some(frame));
            }
            match self.fill_from(r)? {
                0 => {
                    return if self.buf.is_empty() {
                        Ok(None)
                    } else {
                        Err(io::Error::new(io::ErrorKind::UnexpectedEof, "stream ended mid-frame"))
                    };
                }
                _ => continue,
            }
        }
    }

    /// Append one `read` call's worth of bytes to the buffer without
    /// decoding anything. Returns the byte count (0 = end of stream).
    /// The event loop uses this to pull whatever a readable socket has,
    /// then decodes with [`buffered_frame`](Self::buffered_frame) until
    /// its per-connection pipeline cap is reached.
    ///
    /// # Errors
    ///
    /// I/O errors from `r` (`Interrupted` is retried internally).
    pub fn fill_from(&mut self, r: &mut impl Read) -> io::Result<usize> {
        let mut chunk = [0u8; FILL_CHUNK];
        loop {
            match r.read(&mut chunk) {
                Ok(n) => {
                    self.buf.extend_from_slice(&chunk[..n]);
                    return Ok(n);
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }

    /// Decode one complete frame already in the buffer, if any — never
    /// reads from a stream.
    ///
    /// # Errors
    ///
    /// `InvalidData` on an oversized length, non-UTF-8 bytes, or
    /// malformed JSON.
    pub fn buffered_frame(&mut self) -> io::Result<Option<Json>> {
        match self.take_buffered_frame()? {
            Some(body) => decode_body(body).map(Some),
            None => Ok(None),
        }
    }

    /// Drain one complete frame's raw body bytes without decoding the
    /// JSON — the event loop uses this to look frames up in its
    /// hot-request memo before paying for a parse. Decode the result
    /// with [`decode_frame`].
    ///
    /// # Errors
    ///
    /// `InvalidData` on an oversized length.
    pub fn buffered_frame_raw(&mut self) -> io::Result<Option<Vec<u8>>> {
        self.take_buffered_frame()
    }

    /// Bytes buffered but not yet decoded (partial input).
    pub fn buffered_bytes(&self) -> usize {
        self.buf.len()
    }

    /// If the buffer holds a complete `4 + len` frame, drain and return
    /// its body.
    fn take_buffered_frame(&mut self) -> io::Result<Option<Vec<u8>>> {
        if self.buf.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_be_bytes([self.buf[0], self.buf[1], self.buf[2], self.buf[3]]) as usize;
        if len > MAX_FRAME {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "frame too large"));
        }
        if self.buf.len() < 4 + len {
            return Ok(None);
        }
        let rest = self.buf.split_off(4 + len);
        let mut frame = std::mem::replace(&mut self.buf, rest);
        frame.drain(..4);
        Ok(Some(frame))
    }
}

/// The per-connection output queue is over its byte budget: the peer
/// pipelines requests but is not reading responses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriteOverflow;

impl std::fmt::Display for WriteOverflow {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("connection output queue over budget")
    }
}

impl std::error::Error for WriteOverflow {}

/// The sending counterpart of [`FrameReader`]: an incremental frame
/// encoder with a bounded backlog and partial-write tracking.
///
/// Responses are queued as encoded frames and pushed to a non-blocking
/// socket with [`write_some`](Self::write_some), which writes as much
/// as the kernel accepts and keeps its position across `WouldBlock` —
/// the event loop never blocks in `write` and framing never
/// desynchronizes on short writes. The backlog is bounded in bytes:
/// one response is always admitted (a single frame may exceed a small
/// budget), but queueing *behind* unread responses past the budget
/// returns [`WriteOverflow`], which the server converts into a final
/// `overloaded` frame via [`seal`](Self::seal). A client that pipelines
/// requests without ever reading therefore cannot grow server memory
/// without bound.
#[derive(Debug)]
pub struct FrameWriter {
    frames: VecDeque<Vec<u8>>,
    front_written: usize,
    queued: usize,
    budget: usize,
    sealed: bool,
}

impl FrameWriter {
    /// An empty writer whose backlog is bounded at `budget` bytes.
    pub fn new(budget: usize) -> FrameWriter {
        FrameWriter {
            frames: VecDeque::new(),
            front_written: 0,
            queued: 0,
            budget: budget.max(1),
            sealed: false,
        }
    }

    /// Unwritten bytes currently queued.
    pub fn queued_bytes(&self) -> usize {
        self.queued
    }

    /// Nothing left to write.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Whole frames queued (the partially-written front counts).
    pub fn queued_frames(&self) -> usize {
        self.frames.len()
    }

    /// A [`seal`](Self::seal) has been applied: no further frames are
    /// accepted and the connection should close once drained.
    pub fn is_sealed(&self) -> bool {
        self.sealed
    }

    /// Queue one value as a frame.
    ///
    /// # Errors
    ///
    /// [`WriteOverflow`] if the backlog is over budget or the writer is
    /// sealed.
    pub fn queue(&mut self, v: &Json) -> Result<(), WriteOverflow> {
        self.queue_rendered(v.render())
    }

    /// Queue one already-rendered JSON body as a frame — the cache-hit
    /// fast path renders a response once at insert time and replays the
    /// bytes here without re-rendering.
    ///
    /// # Errors
    ///
    /// [`WriteOverflow`] as for [`queue`](Self::queue). A body over
    /// [`MAX_FRAME`] is also refused (the caller substitutes an error
    /// response; it must never be split into a malformed frame).
    pub fn queue_rendered(&mut self, body: String) -> Result<(), WriteOverflow> {
        if self.sealed || body.len() > MAX_FRAME {
            return Err(WriteOverflow);
        }
        if !self.frames.is_empty() && self.queued + 4 + body.len() > self.budget {
            return Err(WriteOverflow);
        }
        let mut frame = Vec::with_capacity(4 + body.len());
        frame.extend_from_slice(&(body.len() as u32).to_be_bytes());
        frame.extend_from_slice(body.as_bytes());
        self.queued += frame.len();
        self.frames.push_back(frame);
        Ok(())
    }

    /// Replace every frame not yet on the wire with a final `v` frame
    /// and refuse all further queueing. A partially-written front frame
    /// is kept (truncating it would corrupt the peer's framing); whole
    /// undelivered frames are dropped.
    pub fn seal(&mut self, v: &Json) {
        if self.front_written == 0 {
            self.frames.clear();
        } else {
            self.frames.truncate(1);
        }
        self.queued =
            self.frames.iter().map(Vec::len).sum::<usize>().saturating_sub(self.front_written);
        let body = v.render();
        debug_assert!(body.len() <= MAX_FRAME);
        let mut frame = Vec::with_capacity(4 + body.len());
        frame.extend_from_slice(&(body.len() as u32).to_be_bytes());
        frame.extend_from_slice(body.as_bytes());
        self.queued += frame.len();
        self.frames.push_back(frame);
        self.sealed = true;
    }

    /// Write as much of the backlog as the sink accepts right now.
    /// `WouldBlock` stops the pass (not an error); the position is kept
    /// and the next call resumes mid-frame. Returns bytes written.
    ///
    /// # Errors
    ///
    /// Connection errors from `w` (the caller drops the connection).
    pub fn write_some(&mut self, w: &mut impl Write) -> io::Result<usize> {
        let mut total = 0;
        loop {
            let (len, res) = match self.frames.front() {
                None => break,
                Some(front) => (front.len(), w.write(&front[self.front_written..])),
            };
            match res {
                Ok(0) => {
                    return Err(io::Error::new(io::ErrorKind::WriteZero, "peer accepted 0 bytes"))
                }
                Ok(n) => {
                    self.front_written += n;
                    self.queued -= n;
                    total += n;
                    if self.front_written == len {
                        self.frames.pop_front();
                        self.front_written = 0;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) => return Err(e),
            }
        }
        Ok(total)
    }
}

/// Largest accepted `tag` string. The tag is echoed verbatim into the
/// response, so it is bounded like any other attacker-controlled field.
pub const MAX_TAG_STRING: usize = 128;

/// Extract the optional protocol-v2 `tag` from a request frame.
/// `Ok(None)` for untagged (v1) requests.
///
/// # Errors
///
/// [`ServiceError::BadRequest`] for a tag that is neither an integer
/// nor a string, or a string over [`MAX_TAG_STRING`] bytes.
pub fn request_tag(frame: &Json) -> Result<Option<Json>, ServiceError> {
    match frame.get("tag") {
        None | Some(Json::Null) => Ok(None),
        Some(t @ Json::Int(_)) => Ok(Some(t.clone())),
        Some(Json::Str(s)) if s.len() <= MAX_TAG_STRING => Ok(Some(Json::str(s.clone()))),
        Some(Json::Str(_)) => Err(bad(format!("`tag` string exceeds {MAX_TAG_STRING} bytes"))),
        Some(_) => Err(bad("`tag` must be an integer or a string")),
    }
}

/// Echo `tag` as the final member of a response object.
pub fn attach_tag(resp: &mut Json, tag: &Json) {
    if let Json::Object(members) = resp {
        members.push(("tag".into(), tag.clone()));
    }
}

/// Echo `tag` into an already-rendered response object by splicing
/// `,"tag":<tag>` before the closing brace — the cache-hit fast path
/// tags its pre-rendered bytes without reparsing them.
pub fn attach_tag_rendered(body: &mut String, tag: &Json) {
    debug_assert!(body.starts_with('{') && body.ends_with('}'), "rendered response object");
    body.pop();
    body.push_str(",\"tag\":");
    body.push_str(&tag.render());
    body.push('}');
}

/// Everything that identifies one compilation: the compile half of
/// every `compile` / `run` / `run_pipeline` request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompileSpec {
    /// The expression, in the printed syntax `fpir::parser` accepts.
    pub expr: String,
    /// Vector width.
    pub lanes: u32,
    /// Target ISA.
    pub isa: Isa,
    /// Rewrite-engine configuration.
    pub engine: EngineConfig,
    /// Include synthesized rules.
    pub synthesized_rules: bool,
    /// Leave-one-out benchmark.
    pub leave_out: Option<String>,
    /// Per-request deadline, if any.
    pub timeout_ms: Option<u64>,
}

/// One input image for a pipeline run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ImageSpec {
    /// Lane type of the pixels.
    pub elem: ScalarType,
    /// Row-major pixel rows (equal lengths, validated).
    pub rows: Vec<Vec<i128>>,
}

/// How a `stats` response should be rendered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StatsFormat {
    /// The structured JSON members (the default).
    #[default]
    Json,
    /// Prometheus-style plaintext `name value` lines, carried in the
    /// response's `text` member.
    Text,
}

/// A parsed, validated request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness check.
    Ping,
    /// Server counters and latency percentiles.
    Stats {
        /// Requested rendering (`"format":"text"` for the scrape form).
        format: StatsFormat,
    },
    /// Graceful shutdown.
    Shutdown,
    /// Compile an expression to a selected program.
    Compile(CompileSpec),
    /// Compile (or fetch) and execute over one environment of vectors.
    Run {
        /// What to compile.
        spec: CompileSpec,
        /// Variable name → lane values, one vector per free variable.
        inputs: Vec<(String, Vec<i128>)>,
    },
    /// Compile (or fetch) a stencil pipeline and run it over whole
    /// images with the tiled parallel runner.
    RunPipeline {
        /// What to compile (the expression must be over taps).
        spec: CompileSpec,
        /// Buffer name → image.
        inputs: Vec<(String, ImageSpec)>,
        /// Worker threads for the tiled runner.
        jobs: usize,
    },
    /// A sibling daemon asks the owner of a cache key for its artifact
    /// in portable form (fleet miss forwarding). Carries the full
    /// structured key — the requester's and owner's keys must be equal,
    /// not merely share a fingerprint.
    PeerGet {
        /// The key's compile half (`engine_bits` on the wire carries
        /// all eight engine configurations, not just fast/reference).
        spec: CompileSpec,
        /// The requester's rule-set fingerprint for this configuration;
        /// the owner answers `found: false` on a mismatch.
        rules_fp: u64,
    },
}

fn bad(msg: impl Into<String>) -> ServiceError {
    ServiceError::BadRequest(msg.into())
}

/// Parse `"x86" | "arm" | "hvx" | "rvv"` (the `Isa::short_name`
/// vocabulary, case-insensitive; new registry backends are accepted
/// automatically).
pub fn parse_isa(s: &str) -> Result<Isa, ServiceError> {
    fpir::machine::ALL_ISAS.into_iter().find(|i| i.short_name().eq_ignore_ascii_case(s)).ok_or_else(
        || {
            let known: Vec<String> = fpir::machine::ALL_ISAS
                .into_iter()
                .map(|i| i.short_name().to_lowercase())
                .collect();
            bad(format!("unknown isa `{s}` (expected one of: {})", known.join(", ")))
        },
    )
}

/// Parse `"u8" | "i16" | ...` (the `ScalarType` display vocabulary).
pub fn parse_elem(s: &str) -> Result<ScalarType, ServiceError> {
    ScalarType::from_name(s).ok_or_else(|| bad(format!("unknown element type `{s}`")))
}

fn parse_spec(v: &Json) -> Result<CompileSpec, ServiceError> {
    let expr = v
        .get("expr")
        .and_then(Json::as_str)
        .ok_or_else(|| bad("missing string field `expr`"))?
        .to_string();
    let lanes = v
        .get("lanes")
        .and_then(Json::as_int)
        .ok_or_else(|| bad("missing integer field `lanes`"))?;
    let lanes = u32::try_from(lanes)
        .ok()
        .filter(|l| (1..=4096).contains(l))
        .ok_or_else(|| bad("`lanes` must be an integer in 1..=4096"))?;
    let isa = parse_isa(
        v.get("isa").and_then(Json::as_str).ok_or_else(|| bad("missing string field `isa`"))?,
    )?;
    let engine =
        match v.get("engine").map(|e| e.as_str().ok_or_else(|| bad("`engine` must be a string"))) {
            None => EngineConfig::FAST,
            Some(Ok("fast")) => EngineConfig::FAST,
            Some(Ok("reference")) => EngineConfig::REFERENCE,
            Some(Ok(other)) => {
                return Err(bad(format!("unknown engine `{other}` (expected fast or reference)")))
            }
            Some(Err(e)) => return Err(e),
        };
    let synthesized_rules = match v.get("synthesized_rules") {
        None => true,
        Some(b) => b.as_bool().ok_or_else(|| bad("`synthesized_rules` must be a boolean"))?,
    };
    let leave_out = match v.get("leave_out") {
        None | Some(Json::Null) => None,
        Some(s) => Some(s.as_str().ok_or_else(|| bad("`leave_out` must be a string"))?.to_string()),
    };
    let timeout_ms = match v.get("timeout_ms") {
        None | Some(Json::Null) => None,
        Some(n) => Some(
            n.as_int()
                .and_then(|n| u64::try_from(n).ok())
                .filter(|&n| n > 0)
                .ok_or_else(|| bad("`timeout_ms` must be a positive integer"))?,
        ),
    };
    Ok(CompileSpec { expr, lanes, isa, engine, synthesized_rules, leave_out, timeout_ms })
}

fn parse_lane_list(v: &Json) -> Result<Vec<i128>, ServiceError> {
    v.as_array()
        .ok_or_else(|| bad("input vector must be an array of integers"))?
        .iter()
        .map(|x| x.as_int().ok_or_else(|| bad("input lanes must be integers")))
        .collect()
}

fn parse_run_inputs(v: &Json) -> Result<Vec<(String, Vec<i128>)>, ServiceError> {
    let obj = v
        .get("inputs")
        .and_then(Json::as_object)
        .ok_or_else(|| bad("missing object field `inputs`"))?;
    obj.iter().map(|(name, lanes)| Ok((name.clone(), parse_lane_list(lanes)?))).collect()
}

fn parse_image(name: &str, v: &Json) -> Result<ImageSpec, ServiceError> {
    let elem = parse_elem(
        v.get("elem")
            .and_then(Json::as_str)
            .ok_or_else(|| bad(format!("input `{name}`: missing string field `elem`")))?,
    )?;
    let rows_json = v
        .get("rows")
        .and_then(Json::as_array)
        .ok_or_else(|| bad(format!("input `{name}`: missing array field `rows`")))?;
    if rows_json.is_empty() {
        return Err(bad(format!("input `{name}`: image has no rows")));
    }
    let mut rows = Vec::with_capacity(rows_json.len());
    for row in rows_json {
        rows.push(
            parse_lane_list(row)
                .map_err(|_| bad(format!("input `{name}`: rows must be arrays of integers")))?,
        );
    }
    let width = rows[0].len();
    if width == 0 {
        return Err(bad(format!("input `{name}`: image has zero width")));
    }
    if rows.iter().any(|r| r.len() != width) {
        return Err(bad(format!("input `{name}`: rows have unequal lengths")));
    }
    for &px in rows.iter().flatten() {
        if !elem.contains(px) {
            return Err(bad(format!("input `{name}`: pixel {px} does not fit in {elem}")));
        }
    }
    Ok(ImageSpec { elem, rows })
}

/// Parse and validate one request frame.
///
/// # Errors
///
/// [`ServiceError::BadRequest`] describing the first problem found.
pub fn parse_request(v: &Json) -> Result<Request, ServiceError> {
    let op = v.get("op").and_then(Json::as_str).ok_or_else(|| bad("missing string field `op`"))?;
    match op {
        "ping" => Ok(Request::Ping),
        "stats" => {
            let format = match v.get("format") {
                None | Some(Json::Null) => StatsFormat::Json,
                Some(f) => match f.as_str() {
                    Some("json") => StatsFormat::Json,
                    Some("text") => StatsFormat::Text,
                    _ => return Err(bad("`format` must be \"json\" or \"text\"")),
                },
            };
            Ok(Request::Stats { format })
        }
        "shutdown" => Ok(Request::Shutdown),
        "compile" => Ok(Request::Compile(parse_spec(v)?)),
        "run" => Ok(Request::Run { spec: parse_spec(v)?, inputs: parse_run_inputs(v)? }),
        "run_pipeline" => {
            let spec = parse_spec(v)?;
            let obj = v
                .get("inputs")
                .and_then(Json::as_object)
                .ok_or_else(|| bad("missing object field `inputs`"))?;
            let mut inputs = Vec::with_capacity(obj.len());
            for (name, img) in obj {
                inputs.push((name.clone(), parse_image(name, img)?));
            }
            let jobs = match v.get("jobs") {
                None => 1,
                Some(n) => n
                    .as_int()
                    .and_then(|n| usize::try_from(n).ok())
                    .filter(|&n| (1..=256).contains(&n))
                    .ok_or_else(|| bad("`jobs` must be an integer in 1..=256"))?,
            };
            Ok(Request::RunPipeline { spec, inputs, jobs })
        }
        "peer_get" => {
            let mut spec = parse_spec(v)?;
            if let Some(bits) = v.get("engine_bits") {
                match bits.as_array() {
                    Some([m, i, c]) => match (m.as_bool(), i.as_bool(), c.as_bool()) {
                        (Some(memo), Some(index), Some(cost_cache)) => {
                            spec.engine = EngineConfig { memo, index, cost_cache };
                        }
                        _ => return Err(bad("`engine_bits` entries must be booleans")),
                    },
                    _ => return Err(bad("`engine_bits` must be an array of three booleans")),
                }
            }
            let rules_fp = v
                .get("rules_fp")
                .and_then(Json::as_str)
                .and_then(|s| u64::from_str_radix(s, 16).ok())
                .ok_or_else(|| bad("missing hex string field `rules_fp`"))?;
            Ok(Request::PeerGet { spec, rules_fp })
        }
        other => Err(bad(format!("unknown op `{other}`"))),
    }
}

/// Build the `peer_get` request frame for one cache key. The key's
/// engine bits ride in `engine_bits` (the `engine` string covers only
/// the fast/reference presets); `tag` correlates the response on the
/// requester's multiplexed peer connection.
pub fn peer_get_frame(key: &crate::key::CacheKey, tag: i128) -> Json {
    let (memo, index, cost_cache) = key.engine;
    let mut members = vec![
        ("op".into(), Json::str("peer_get")),
        ("expr".into(), Json::str(key.expr.clone())),
        ("lanes".into(), Json::Int(key.lanes as i128)),
        ("isa".into(), Json::str(key.isa.short_name())),
        (
            "engine_bits".into(),
            Json::Array(vec![Json::Bool(memo), Json::Bool(index), Json::Bool(cost_cache)]),
        ),
        ("synthesized_rules".into(), Json::Bool(key.synthesized_rules)),
        ("rules_fp".into(), Json::str(format!("{:016x}", key.rules_fp))),
        ("tag".into(), Json::Int(tag)),
    ];
    if let Some(l) = &key.leave_out {
        members.insert(6, ("leave_out".into(), Json::str(l.clone())));
    }
    Json::Object(members)
}

/// The `{"ok": false, ...}` response for an error.
pub fn error_response(e: &ServiceError) -> Json {
    Json::Object(vec![
        ("ok".into(), Json::Bool(false)),
        ("code".into(), Json::str(e.code())),
        ("error".into(), Json::str(e.to_string())),
    ])
}

/// Start an `{"ok": true, ...}` response with `rest` appended.
pub fn ok_response(rest: Vec<(String, Json)>) -> Json {
    let mut members = vec![("ok".into(), Json::Bool(true))];
    members.extend(rest);
    Json::Object(members)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(src: &str) -> Result<Request, ServiceError> {
        parse_request(&parse(src).unwrap())
    }

    #[test]
    fn frames_round_trip() {
        let v = parse(r#"{"op":"ping","payload":[1,2,3]}"#).unwrap();
        let mut buf = Vec::new();
        write_frame(&mut buf, &v).unwrap();
        write_frame(&mut buf, &Json::Null).unwrap();
        let mut r = io::Cursor::new(buf);
        assert_eq!(read_frame(&mut r).unwrap(), Some(v));
        assert_eq!(read_frame(&mut r).unwrap(), Some(Json::Null));
        assert_eq!(read_frame(&mut r).unwrap(), None, "clean EOF");
    }

    /// Yields a stream one byte at a time, interleaving a `TimedOut`
    /// error before every byte — the worst case a 50ms read timeout can
    /// produce on a slow peer.
    struct DribbleReader {
        data: Vec<u8>,
        pos: usize,
        ready: bool,
    }

    impl Read for DribbleReader {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            if !self.ready {
                self.ready = true;
                return Err(io::Error::new(io::ErrorKind::TimedOut, "simulated timeout"));
            }
            self.ready = false;
            if self.pos >= self.data.len() {
                return Ok(0);
            }
            buf[0] = self.data[self.pos];
            self.pos += 1;
            Ok(1)
        }
    }

    #[test]
    fn frame_reader_survives_timeouts_mid_frame() {
        let a = parse(r#"{"op":"ping","payload":[1,2,3]}"#).unwrap();
        let b = parse(r#"{"op":"stats"}"#).unwrap();
        let mut data = Vec::new();
        write_frame(&mut data, &a).unwrap();
        write_frame(&mut data, &b).unwrap();
        let mut r = DribbleReader { data, pos: 0, ready: false };
        let mut fr = FrameReader::new();
        let mut frames = Vec::new();
        loop {
            match fr.next_frame(&mut r) {
                Ok(Some(v)) => frames.push(v),
                Ok(None) => break,
                Err(e) if e.kind() == io::ErrorKind::TimedOut => continue,
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        assert_eq!(frames, vec![a, b], "frames must decode intact despite per-byte timeouts");
    }

    #[test]
    fn frame_reader_reports_eof_mid_frame() {
        let mut data = Vec::new();
        write_frame(&mut data, &Json::str("hello")).unwrap();
        data.truncate(data.len() - 2);
        let mut r = io::Cursor::new(data);
        let mut fr = FrameReader::new();
        let err = fr.next_frame(&mut r).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn frame_reader_rejects_oversized_length_without_reading_body() {
        let mut data = Vec::from(u32::MAX.to_be_bytes());
        data.extend_from_slice(b"xxxx");
        let mut r = io::Cursor::new(data);
        let mut fr = FrameReader::new();
        let err = fr.next_frame(&mut r).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_frame_is_an_error() {
        let v = Json::str("hello");
        let mut buf = Vec::new();
        write_frame(&mut buf, &v).unwrap();
        buf.truncate(buf.len() - 2);
        let mut r = io::Cursor::new(buf);
        assert!(read_frame(&mut r).is_err());
    }

    #[test]
    fn oversized_length_is_rejected() {
        let mut buf = Vec::from(u32::MAX.to_be_bytes());
        buf.extend_from_slice(b"xxxx");
        let mut r = io::Cursor::new(buf);
        assert!(read_frame(&mut r).is_err());
    }

    #[test]
    fn simple_ops_parse() {
        assert_eq!(req(r#"{"op":"ping"}"#).unwrap(), Request::Ping);
        assert_eq!(req(r#"{"op":"stats"}"#).unwrap(), Request::Stats { format: StatsFormat::Json });
        assert_eq!(
            req(r#"{"op":"stats","format":"text"}"#).unwrap(),
            Request::Stats { format: StatsFormat::Text }
        );
        assert!(req(r#"{"op":"stats","format":"xml"}"#).is_err());
        assert_eq!(req(r#"{"op":"shutdown"}"#).unwrap(), Request::Shutdown);
    }

    #[test]
    fn tags_extract_and_attach() {
        let f = parse(r#"{"op":"ping","tag":7}"#).unwrap();
        assert_eq!(request_tag(&f).unwrap(), Some(Json::Int(7)));
        let f = parse(r#"{"op":"ping","tag":"req-1"}"#).unwrap();
        assert_eq!(request_tag(&f).unwrap(), Some(Json::str("req-1")));
        let f = parse(r#"{"op":"ping"}"#).unwrap();
        assert_eq!(request_tag(&f).unwrap(), None);
        let f = parse(r#"{"op":"ping","tag":null}"#).unwrap();
        assert_eq!(request_tag(&f).unwrap(), None);
        let f = parse(r#"{"op":"ping","tag":[1]}"#).unwrap();
        assert!(request_tag(&f).is_err());
        let long = format!(r#"{{"op":"ping","tag":"{}"}}"#, "x".repeat(MAX_TAG_STRING + 1));
        assert!(request_tag(&parse(&long).unwrap()).is_err());

        // Attaching to a value and splicing into its rendering agree.
        let mut resp = ok_response(vec![("pong".into(), Json::Bool(true))]);
        let mut rendered = resp.render();
        attach_tag(&mut resp, &Json::Int(7));
        attach_tag_rendered(&mut rendered, &Json::Int(7));
        assert_eq!(resp.render(), rendered);
        assert_eq!(resp.get("tag"), Some(&Json::Int(7)));
    }

    #[test]
    fn frame_writer_round_trips_through_partial_writes() {
        /// Accepts at most `cap` bytes per call, interleaving a
        /// `WouldBlock` before every acceptance.
        struct ChokedSink {
            out: Vec<u8>,
            cap: usize,
            ready: bool,
        }
        impl Write for ChokedSink {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                if !self.ready {
                    self.ready = true;
                    return Err(io::Error::new(io::ErrorKind::WouldBlock, "full"));
                }
                self.ready = false;
                let n = buf.len().min(self.cap);
                self.out.extend_from_slice(&buf[..n]);
                Ok(n)
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }

        let frames: Vec<Json> = vec![
            parse(r#"{"ok":true,"pong":true}"#).unwrap(),
            Json::str("x".repeat(100)),
            parse(r#"{"ok":false,"code":"overloaded"}"#).unwrap(),
        ];
        for cap in [1, 3, 7, 64] {
            let mut w = FrameWriter::new(1 << 20);
            for f in &frames {
                w.queue(f).unwrap();
            }
            let mut sink = ChokedSink { out: Vec::new(), cap, ready: false };
            while !w.is_empty() {
                w.write_some(&mut sink).unwrap();
            }
            assert_eq!(w.queued_bytes(), 0);
            let mut r = io::Cursor::new(sink.out);
            for f in &frames {
                assert_eq!(read_frame(&mut r).unwrap().as_ref(), Some(f), "cap={cap}");
            }
            assert_eq!(read_frame(&mut r).unwrap(), None);
        }
    }

    #[test]
    fn frame_writer_bounds_backlog_but_admits_one_frame() {
        let mut w = FrameWriter::new(16);
        // First frame always admitted, even over budget.
        w.queue(&Json::str("a".repeat(64))).unwrap();
        // Second refused: backlog over 16 bytes.
        assert_eq!(w.queue(&Json::Bool(true)), Err(WriteOverflow));
        // Drain, then small frames fit again.
        let mut out = Vec::new();
        w.write_some(&mut out).unwrap();
        assert!(w.is_empty());
        w.queue(&Json::Bool(true)).unwrap();
    }

    #[test]
    fn seal_drops_undelivered_frames_and_keeps_partial_front() {
        struct OneByte(Vec<u8>, bool);
        impl Write for OneByte {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                if self.1 {
                    return Err(io::Error::new(io::ErrorKind::WouldBlock, "full"));
                }
                self.1 = true;
                self.0.push(buf[0]);
                Ok(1)
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }

        let a = Json::str("first");
        let b = Json::str("second-never-delivered");
        let sealed_with = parse(r#"{"ok":false,"code":"overloaded"}"#).unwrap();

        let mut w = FrameWriter::new(1 << 20);
        w.queue(&a).unwrap();
        w.queue(&b).unwrap();
        // One byte of `a` reaches the wire, then the socket jams.
        let mut sink = OneByte(Vec::new(), false);
        w.write_some(&mut sink).unwrap();
        assert_eq!(sink.0.len(), 1);

        w.seal(&sealed_with);
        assert!(w.is_sealed());
        assert_eq!(w.queue(&Json::Null), Err(WriteOverflow), "sealed writers refuse frames");
        // Finish the stream: the partial front frame completes, `b` is
        // gone, the seal frame is last.
        let mut rest = Vec::new();
        while !w.is_empty() {
            w.write_some(&mut rest).unwrap();
        }
        let mut bytes = sink.0;
        bytes.extend_from_slice(&rest);
        let mut r = io::Cursor::new(bytes);
        assert_eq!(read_frame(&mut r).unwrap(), Some(a));
        assert_eq!(read_frame(&mut r).unwrap(), Some(sealed_with));
        assert_eq!(read_frame(&mut r).unwrap(), None);
    }

    #[test]
    fn seal_with_nothing_written_sends_only_the_seal() {
        let mut w = FrameWriter::new(1 << 20);
        w.queue(&Json::str("undelivered")).unwrap();
        let sealed_with = parse(r#"{"ok":false,"code":"overloaded"}"#).unwrap();
        w.seal(&sealed_with);
        let mut out = Vec::new();
        w.write_some(&mut out).unwrap();
        let mut r = io::Cursor::new(out);
        assert_eq!(read_frame(&mut r).unwrap(), Some(sealed_with));
        assert_eq!(read_frame(&mut r).unwrap(), None);
    }

    #[test]
    fn compile_request_parses_with_defaults() {
        let r = req(r#"{"op":"compile","expr":"a_u8 + b_u8","lanes":16,"isa":"arm"}"#).unwrap();
        match r {
            Request::Compile(spec) => {
                assert_eq!(spec.expr, "a_u8 + b_u8");
                assert_eq!(spec.lanes, 16);
                assert_eq!(spec.isa, Isa::ArmNeon);
                assert_eq!(spec.engine, EngineConfig::FAST);
                assert!(spec.synthesized_rules);
                assert_eq!(spec.leave_out, None);
                assert_eq!(spec.timeout_ms, None);
            }
            other => panic!("wrong request {other:?}"),
        }
    }

    #[test]
    fn compile_request_honors_every_knob() {
        let r = req(r#"{"op":"compile","expr":"x_u8","lanes":8,"isa":"hvx","engine":"reference",
                "synthesized_rules":false,"leave_out":"blur","timeout_ms":250}"#)
        .unwrap();
        match r {
            Request::Compile(spec) => {
                assert_eq!(spec.isa, Isa::HexagonHvx);
                assert_eq!(spec.engine, EngineConfig::REFERENCE);
                assert!(!spec.synthesized_rules);
                assert_eq!(spec.leave_out.as_deref(), Some("blur"));
                assert_eq!(spec.timeout_ms, Some(250));
            }
            other => panic!("wrong request {other:?}"),
        }
    }

    #[test]
    fn run_request_parses_inputs() {
        let r = req(r#"{"op":"run","expr":"a_u8 + b_u8","lanes":4,"isa":"x86",
                "inputs":{"a_u8":[1,2,3,4],"b_u8":[5,6,7,8]}}"#)
        .unwrap();
        match r {
            Request::Run { inputs, .. } => {
                assert_eq!(inputs.len(), 2);
                assert_eq!(inputs[0], ("a_u8".to_string(), vec![1, 2, 3, 4]));
            }
            other => panic!("wrong request {other:?}"),
        }
    }

    #[test]
    fn pipeline_request_validates_images() {
        let good = req(r#"{"op":"run_pipeline","expr":"in__p0_p0_u8","lanes":4,"isa":"arm",
                "inputs":{"in":{"elem":"u8","rows":[[1,2],[3,4]]}},"jobs":2}"#)
        .unwrap();
        match good {
            Request::RunPipeline { inputs, jobs, .. } => {
                assert_eq!(jobs, 2);
                assert_eq!(inputs[0].1.elem, ScalarType::U8);
                assert_eq!(inputs[0].1.rows, vec![vec![1, 2], vec![3, 4]]);
            }
            other => panic!("wrong request {other:?}"),
        }
        // Ragged rows, out-of-range pixels, empty images: all rejected.
        for bad in [
            r#"{"op":"run_pipeline","expr":"x_u8","lanes":4,"isa":"arm",
                "inputs":{"in":{"elem":"u8","rows":[[1,2],[3]]}}}"#,
            r#"{"op":"run_pipeline","expr":"x_u8","lanes":4,"isa":"arm",
                "inputs":{"in":{"elem":"u8","rows":[[1,256]]}}}"#,
            r#"{"op":"run_pipeline","expr":"x_u8","lanes":4,"isa":"arm",
                "inputs":{"in":{"elem":"u8","rows":[]}}}"#,
        ] {
            assert!(req(bad).is_err(), "{bad} should be rejected");
        }
    }

    #[test]
    fn malformed_requests_name_the_problem() {
        for (src, needle) in [
            (r#"{}"#, "op"),
            (r#"{"op":"warp"}"#, "unknown op"),
            (r#"{"op":"compile","lanes":4,"isa":"arm"}"#, "expr"),
            (r#"{"op":"compile","expr":"x_u8","isa":"arm"}"#, "lanes"),
            (r#"{"op":"compile","expr":"x_u8","lanes":0,"isa":"arm"}"#, "lanes"),
            (r#"{"op":"compile","expr":"x_u8","lanes":4}"#, "isa"),
            (r#"{"op":"compile","expr":"x_u8","lanes":4,"isa":"mips"}"#, "unknown isa"),
            (r#"{"op":"compile","expr":"x_u8","lanes":4,"isa":"arm","engine":"warp"}"#, "engine"),
            (r#"{"op":"compile","expr":"x_u8","lanes":4,"isa":"arm","timeout_ms":0}"#, "timeout"),
            (r#"{"op":"run","expr":"x_u8","lanes":4,"isa":"arm"}"#, "inputs"),
        ] {
            let err = req(src).unwrap_err();
            assert!(err.to_string().contains(needle), "{src}: error {err} should mention {needle}");
        }
    }

    #[test]
    fn error_response_shape() {
        let e = ServiceError::Overloaded;
        let v = error_response(&e);
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(false));
        assert_eq!(v.get("code").unwrap().as_str(), Some("overloaded"));
    }
}
