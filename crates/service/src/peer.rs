//! Key ownership for the daemon fleet: rendezvous (highest-random-
//! weight) hashing over the cache-key fingerprint space.
//!
//! Every daemon computes, for each key, a score per node from
//! `FNV64(node_id ‖ 0xff ‖ fingerprint)`; the highest score owns the
//! key. All daemons agree on the owner as long as they agree on the
//! node-id strings (each daemon's own serving address plus its `--peer`
//! addresses — give every daemon the same address book, spelled the
//! same way). Rendezvous hashing has the property the fleet wants:
//! adding or removing one node remaps only the keys that node owned,
//! so a daemon death degrades only its share to local compiles instead
//! of reshuffling the whole space.
//!
//! Ties are broken by the node-id string, never by list position, so
//! the owner is independent of the order peers were configured in.

use crate::key::Fnv;

/// The rendezvous score of one node for one key fingerprint.
pub fn score(node_id: &str, fp: u64) -> u64 {
    let mut h = Fnv::new();
    h.write(node_id.as_bytes());
    // A separator that can't appear in UTF-8 keeps `("ab", fp)` from
    // colliding with a node id ending in the fingerprint's first byte.
    h.write(&[0xff]);
    h.write(&fp.to_le_bytes());
    h.finish()
}

/// Which node owns `fp`: `None` for the local daemon (`self_id`),
/// `Some(i)` for `peers[i]`.
pub fn owner_index(self_id: &str, peers: &[String], fp: u64) -> Option<usize> {
    let mut best: (u64, &str, Option<usize>) = (score(self_id, fp), self_id, None);
    for (i, p) in peers.iter().enumerate() {
        let s = score(p, fp);
        if (s, p.as_str()) > (best.0, best.1) {
            best = (s, p, Some(i));
        }
    }
    best.2
}

#[cfg(test)]
mod tests {
    use super::*;

    fn owner_name<'a>(nodes: &'a [&str], fp: u64) -> &'a str {
        nodes.iter().copied().max_by_key(|n| (score(n, fp), *n)).expect("non-empty node list")
    }

    #[test]
    fn every_daemon_agrees_on_the_owner() {
        let nodes = ["unix:/tmp/a.sock", "unix:/tmp/b.sock", "unix:/tmp/c.sock"];
        for fp in 0..500u64 {
            let fp = fp.wrapping_mul(0x9e37_79b9_7f4a_7c15);
            let expected = owner_name(&nodes, fp);
            // Each daemon sees itself as self and the others as peers,
            // in whatever order; all three must name the same owner.
            for (i, &me) in nodes.iter().enumerate() {
                let mut peers: Vec<String> = nodes
                    .iter()
                    .enumerate()
                    .filter(|&(j, _)| j != i)
                    .map(|(_, n)| n.to_string())
                    .collect();
                let from_forward = match owner_index(me, &peers, fp) {
                    None => me,
                    Some(k) => &peers[k],
                };
                assert_eq!(from_forward, expected, "daemon {me} fp {fp:x}");
                peers.reverse();
                let from_reversed = match owner_index(me, &peers, fp) {
                    None => me,
                    Some(k) => &peers[k],
                };
                assert_eq!(from_reversed, expected, "order must not matter");
            }
        }
    }

    #[test]
    fn removing_a_node_only_remaps_its_own_keys() {
        let all = ["tcp:10.0.0.1:7777", "tcp:10.0.0.2:7777", "tcp:10.0.0.3:7777"];
        let without_last = &all[..2];
        let mut remapped = 0;
        let mut kept = 0;
        for fp in 0..2000u64 {
            let fp = fp.wrapping_mul(0x2545_f491_4f6c_dd1d);
            let before = owner_name(&all, fp);
            let after = owner_name(without_last, fp);
            if before == all[2] {
                remapped += 1; // its keys must land somewhere else
            } else {
                assert_eq!(before, after, "a surviving node's keys must not move");
                kept += 1;
            }
        }
        assert!(remapped > 0 && kept > 0, "both cases exercised");
    }

    #[test]
    fn ownership_is_roughly_balanced() {
        let nodes = ["unix:/run/pf0", "unix:/run/pf1", "unix:/run/pf2", "unix:/run/pf3"];
        let mut counts = [0usize; 4];
        for fp in 0..4000u64 {
            let fp = fp.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(12345);
            let o = owner_name(&nodes, fp);
            counts[nodes.iter().position(|n| *n == o).unwrap()] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!((600..=1400).contains(&c), "node {i} owns {c} of 4000 keys — far from 1/4");
        }
    }
}
