//! # pitchfork-service — a concurrent compile-and-run daemon
//!
//! The paper's instruction selector is fast enough to sit inside a
//! compiler's inner loop; this crate makes it fast enough to sit behind
//! one socket for *many* compilers. `pitchforkd` keeps one warm
//! selector per configuration (rule sets loaded and indexed once) and
//! serves `compile` and `run` requests over a dependency-free,
//! length-prefixed JSON protocol, backed by:
//!
//! * a **content-addressed artifact cache** ([`cache`]) — keyed by the
//!   expression's structural print, the target ISA, the engine
//!   configuration, and a fingerprint of the loaded rule sets; bounded
//!   in bytes with LRU eviction;
//! * **single-flight deduplication** — N concurrent identical requests
//!   cost one compile, and everyone shares the same `Arc<Artifact>`;
//! * **admission control and deadlines** ([`service`]) — compiles run
//!   on a bounded worker queue (full queue ⇒ `overloaded`), and a
//!   request's `timeout_ms` is checked between compiler phases, so an
//!   expired request stops selecting instructions instead of finishing
//!   pointlessly;
//! * a **`stats` endpoint** — hit/miss/shed/timeout counters, queue
//!   depth, and p50/p99 service latencies.
//!
//! Served results are bit-identical to calling
//! [`pitchfork::compile_to_executable`] directly: the daemon is a cache
//! and a transport, never a different compiler.
//!
//! ## Wire format
//!
//! One request or response per frame; a frame is a 4-byte big-endian
//! byte length followed by that many bytes of UTF-8 JSON. Protocol v2
//! adds an optional `tag` echoed in the response, letting one
//! connection keep many frames in flight and receive responses out of
//! order ([`eventloop`] answers cache hits inline while compiles run on
//! workers). Untagged v1 traffic keeps its strict serial ordering. See
//! [`protocol`] for the request vocabulary and `docs/service.md` for
//! the full protocol reference.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cache;
pub mod error;
pub mod eventloop;
pub mod json;
pub mod key;
pub mod peer;
pub mod poll;
pub mod protocol;
pub mod server;
pub mod service;
pub mod stats;
pub mod store;

pub use cache::{Cache, CacheError, CacheStats, Source};
pub use error::ServiceError;
pub use eventloop::ServeOptions;
pub use json::Json;
pub use key::CacheKey;
pub use protocol::{
    attach_tag, attach_tag_rendered, parse_request, read_frame, request_tag, write_frame,
    CompileSpec, FrameReader, FrameWriter, Request, StatsFormat, WriteOverflow,
};
pub use server::{
    install_signal_handlers, request_stop, reset_signal_stop, serve, serve_with, Client, Endpoint,
};
pub use service::{CacheDecision, FastReply, Service, ServiceConfig};
pub use stats::{LatencySummary, Stats};
pub use store::{DiskStore, StoreError};
