//! The disk spill store: a content-addressed, crash-consistent on-disk
//! copy of the artifact cache, plus the portable artifact codec the
//! peer protocol shares.
//!
//! # Portable artifact encoding
//!
//! An [`Artifact`] is fully determined by its lowered expression and
//! target ISA: [`Artifact::from_lowered`] re-runs the deterministic
//! emit / cost / link phases and reproduces the program, cycle count,
//! and executable bit-for-bit. So the portable form is the lowered
//! expression's DAG (plus the full [`CacheKey`] and the expected cycle
//! count as a tripwire), not the compiled program.
//!
//! The DAG is serialized **by allocation identity** — one node per
//! distinct `Arc`, in dependency order, children as indices — and the
//! decoder allocates exactly one `Arc` per node. This matters:
//! `Expr::unique_count` (and therefore `Artifact::approx_bytes`, echoed
//! as `artifact_bytes` in every response) counts allocations, so a
//! structurally-deduplicating codec would change the served bytes.
//! Lowered expressions contain only `Var` / `Const` / `Mach` nodes;
//! anything else refuses to encode rather than guessing.
//!
//! # On-disk format
//!
//! One file per cache key, named `<fingerprint:016x>.pfa`:
//!
//! ```text
//! magic "pfspill1" (8)  — format version baked into the magic
//! rules_fp   u64 BE (8) — rule-set fingerprint header (fast reject)
//! body_len   u32 BE (4)
//! body       JSON (UTF-8) — full key, cycles, DAG nodes
//! checksum   u64 BE (8) — FNV-64 over everything above
//! ```
//!
//! Writes go to a `.tmp-*` sibling and `rename(2)` into place, so a
//! crash mid-write leaves either the old entry or a tmp leftover —
//! never a torn `.pfa`. Every load revalidates end to end: envelope
//! checksum, full-key equality (fingerprints address files but never
//! authenticate them), recomputed cycle count, and the static verifier
//! over the relinked executable — a disk or peer byte is untrusted
//! input until it survives all four.

use crate::json::Json;
use crate::key::{CacheKey, Fnv};
use crate::protocol::parse_isa;
use fpir::expr::{Expr, ExprKind, RcExpr};
use fpir::types::{ScalarType, VectorType};
use pitchfork::Artifact;
use std::collections::{HashMap, HashSet};
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Format magic; bump the trailing digit to invalidate old stores.
pub const MAGIC: &[u8; 8] = b"pfspill1";

/// Spill-file extension (entries are `<fingerprint:016x>.pfa`).
pub const EXTENSION: &str = "pfa";

/// Why an entry could not be encoded, decoded, or revalidated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// Filesystem failure (the entry may be fine; nothing is unlinked
    /// for pure I/O errors at spill time).
    Io(String),
    /// Envelope rejection: bad magic/version, truncation, checksum
    /// mismatch, trailing bytes.
    Envelope(String),
    /// Body rejection: malformed JSON, bad key members, bad DAG, or a
    /// rebuilt artifact that failed revalidation.
    Body(String),
    /// The lowered expression holds a node kind the portable encoding
    /// does not carry (never produced by the driver's lowering).
    Unsupported(String),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(m) => write!(f, "spill store I/O: {m}"),
            StoreError::Envelope(m) => write!(f, "spill envelope: {m}"),
            StoreError::Body(m) => write!(f, "spill body: {m}"),
            StoreError::Unsupported(m) => write!(f, "not portable: {m}"),
        }
    }
}

impl std::error::Error for StoreError {}

fn body_err(msg: impl Into<String>) -> StoreError {
    StoreError::Body(msg.into())
}

// ---------------------------------------------------------------------
// Portable artifact codec (shared by the disk store and `peer_get`).
// ---------------------------------------------------------------------

fn encode_ty(members: &mut Vec<(String, Json)>, ty: VectorType) {
    members.push(("e".into(), Json::str(ty.elem.to_string())));
    members.push(("l".into(), Json::Int(ty.lanes as i128)));
}

fn decode_ty(node: &Json) -> Result<VectorType, StoreError> {
    let elem = node
        .get("e")
        .and_then(Json::as_str)
        .and_then(ScalarType::from_name)
        .ok_or_else(|| body_err("node has no valid element type"))?;
    let lanes = node
        .get("l")
        .and_then(Json::as_int)
        .and_then(|l| u32::try_from(l).ok())
        .filter(|l| (1..=65536).contains(l))
        .ok_or_else(|| body_err("node has no valid lane count"))?;
    Ok(VectorType::new(elem, lanes))
}

/// Serialize a lowered expression as a node list in dependency order,
/// one node per distinct allocation, children as indices.
fn encode_expr(root: &RcExpr) -> Result<(Vec<Json>, usize), StoreError> {
    enum Visit {
        Enter(RcExpr),
        Exit(RcExpr),
    }
    let mut ids: HashMap<usize, usize> = HashMap::new();
    let mut nodes: Vec<Json> = Vec::new();
    let mut stack = vec![Visit::Enter(root.clone())];
    while let Some(v) = stack.pop() {
        match v {
            Visit::Enter(e) => {
                if ids.contains_key(&Expr::ptr_id(&e)) {
                    continue;
                }
                for c in e.children() {
                    stack.push(Visit::Enter(c.clone()));
                }
                stack.push(Visit::Exit(e));
            }
            Visit::Exit(e) => {
                // Wait until every child is assigned; a diamond can
                // queue an Exit before a sibling finishes the shared
                // child, so re-enter instead of assuming.
                let pid = Expr::ptr_id(&e);
                if ids.contains_key(&pid) {
                    continue;
                }
                if e.children().into_iter().any(|c| !ids.contains_key(&Expr::ptr_id(c))) {
                    stack.push(Visit::Exit(e.clone()));
                    for c in e.children() {
                        stack.push(Visit::Enter(c.clone()));
                    }
                    continue;
                }
                let mut m: Vec<(String, Json)> = Vec::with_capacity(5);
                match e.kind() {
                    ExprKind::Var(name) => {
                        m.push(("k".into(), Json::str("var")));
                        m.push(("n".into(), Json::str(name.clone())));
                    }
                    ExprKind::Const(v) => {
                        m.push(("k".into(), Json::str("const")));
                        m.push(("v".into(), Json::Int(*v)));
                    }
                    ExprKind::Mach(op, args) => {
                        m.push(("k".into(), Json::str("mach")));
                        m.push(("c".into(), Json::Int(op.code as i128)));
                        m.push(("o".into(), Json::str(op.name)));
                        m.push((
                            "a".into(),
                            Json::Array(
                                args.iter()
                                    .map(|a| Json::Int(ids[&Expr::ptr_id(a)] as i128))
                                    .collect(),
                            ),
                        ));
                    }
                    other => {
                        return Err(StoreError::Unsupported(format!(
                            "lowered expression contains a non-machine node: {other:?}"
                        )))
                    }
                }
                encode_ty(&mut m, e.ty());
                ids.insert(pid, nodes.len());
                nodes.push(Json::Object(m));
            }
        }
    }
    Ok((nodes, ids[&Expr::ptr_id(root)]))
}

/// Rebuild the expression: one fresh `Arc` per serialized node, so
/// `Expr::unique_count` (and every byte-count derived from it) matches
/// the original exactly.
fn decode_expr(nodes: &[Json], root: usize, isa: fpir::Isa) -> Result<RcExpr, StoreError> {
    let target = fpir_isa::target(isa);
    let mut built: Vec<RcExpr> = Vec::with_capacity(nodes.len());
    for (i, node) in nodes.iter().enumerate() {
        let ty = decode_ty(node)?;
        let kind =
            node.get("k").and_then(Json::as_str).ok_or_else(|| body_err("node has no kind"))?;
        let e = match kind {
            "var" => {
                let name = node
                    .get("n")
                    .and_then(Json::as_str)
                    .ok_or_else(|| body_err("var node has no name"))?;
                Expr::var(name, ty)
            }
            "const" => {
                let v = node
                    .get("v")
                    .and_then(Json::as_int)
                    .ok_or_else(|| body_err("const node has no value"))?;
                Expr::constant(v, ty).map_err(|e| body_err(format!("const node: {e}")))?
            }
            "mach" => {
                let code = node
                    .get("c")
                    .and_then(Json::as_int)
                    .and_then(|c| usize::try_from(c).ok())
                    .ok_or_else(|| body_err("mach node has no opcode"))?;
                let def = target
                    .defs()
                    .get(code)
                    .ok_or_else(|| body_err(format!("opcode {code} out of range for {isa:?}")))?;
                // The stored mnemonic must match the opcode's: an
                // instruction table that changed between spill and load
                // would otherwise silently rebuild a different program.
                let name = node.get("o").and_then(Json::as_str).unwrap_or("");
                if name != def.op.name {
                    return Err(body_err(format!(
                        "opcode {code} is `{}` in this build, entry says `{name}`",
                        def.op.name
                    )));
                }
                let mut args = Vec::new();
                for a in node
                    .get("a")
                    .and_then(Json::as_array)
                    .ok_or_else(|| body_err("mach node has no args"))?
                {
                    let idx = a
                        .as_int()
                        .and_then(|x| usize::try_from(x).ok())
                        .filter(|&x| x < i)
                        .ok_or_else(|| body_err("mach arg is not an earlier node index"))?;
                    args.push(built[idx].clone());
                }
                Expr::mach(def.op, ty, args)
            }
            other => return Err(body_err(format!("unknown node kind `{other}`"))),
        };
        built.push(e);
    }
    built.into_iter().nth(root).ok_or_else(|| body_err("root index out of range"))
}

fn key_members(key: &CacheKey) -> Json {
    let (m, i, c) = key.engine;
    Json::Object(vec![
        ("expr".into(), Json::str(key.expr.clone())),
        ("lanes".into(), Json::Int(key.lanes as i128)),
        ("isa".into(), Json::str(key.isa.short_name())),
        ("engine".into(), Json::Array(vec![Json::Bool(m), Json::Bool(i), Json::Bool(c)])),
        ("synthesized_rules".into(), Json::Bool(key.synthesized_rules)),
        ("leave_out".into(), key.leave_out.clone().map_or(Json::Null, Json::str)),
        ("rules_fp".into(), Json::str(format!("{:016x}", key.rules_fp))),
    ])
}

fn decode_key(v: &Json) -> Result<CacheKey, StoreError> {
    let obj = v.get("key").ok_or_else(|| body_err("no key object"))?;
    let expr = obj
        .get("expr")
        .and_then(Json::as_str)
        .ok_or_else(|| body_err("key has no expr"))?
        .to_string();
    let lanes = obj
        .get("lanes")
        .and_then(Json::as_int)
        .and_then(|l| u32::try_from(l).ok())
        .ok_or_else(|| body_err("key has no lanes"))?;
    let isa =
        parse_isa(obj.get("isa").and_then(Json::as_str).ok_or_else(|| body_err("key has no isa"))?)
            .map_err(|e| body_err(e.to_string()))?;
    let engine = match obj.get("engine").and_then(Json::as_array) {
        Some([a, b, c]) => match (a.as_bool(), b.as_bool(), c.as_bool()) {
            (Some(a), Some(b), Some(c)) => (a, b, c),
            _ => return Err(body_err("key engine bits are not booleans")),
        },
        _ => return Err(body_err("key has no engine bits")),
    };
    let synthesized_rules = obj
        .get("synthesized_rules")
        .and_then(Json::as_bool)
        .ok_or_else(|| body_err("key has no synthesized_rules"))?;
    let leave_out = match obj.get("leave_out") {
        None | Some(Json::Null) => None,
        Some(s) => {
            Some(s.as_str().ok_or_else(|| body_err("key leave_out is not a string"))?.to_string())
        }
    };
    let rules_fp = obj
        .get("rules_fp")
        .and_then(Json::as_str)
        .and_then(|s| u64::from_str_radix(s, 16).ok())
        .ok_or_else(|| body_err("key has no rules_fp"))?;
    Ok(CacheKey { expr, lanes, isa, engine, synthesized_rules, leave_out, rules_fp })
}

/// Encode one cache entry as the portable JSON body (also the payload
/// of a `peer_get` response).
///
/// # Errors
///
/// [`StoreError::Unsupported`] if the lowered expression is not
/// representable (never the case for driver output).
pub fn encode_artifact_json(key: &CacheKey, art: &Artifact) -> Result<Json, StoreError> {
    let (nodes, root) = encode_expr(&art.lowered)?;
    Ok(Json::Object(vec![
        ("key".into(), key_members(key)),
        ("cycles".into(), Json::Int(art.cycles as i128)),
        ("root".into(), Json::Int(root as i128)),
        ("nodes".into(), Json::Array(nodes)),
    ]))
}

/// Decode and **revalidate** a portable artifact body: rebuild the
/// expression, re-run emit/cost/link, check the recomputed cycle count
/// against the stored one, and run the static verifier. The result is
/// bit-identical to a local compile of the same lowered expression.
///
/// # Errors
///
/// [`StoreError::Body`] describing the first check that failed.
pub fn decode_artifact_json(v: &Json) -> Result<(CacheKey, Artifact), StoreError> {
    let key = decode_key(v)?;
    let cycles = v
        .get("cycles")
        .and_then(Json::as_int)
        .and_then(|c| u64::try_from(c).ok())
        .ok_or_else(|| body_err("no cycle count"))?;
    let root = v
        .get("root")
        .and_then(Json::as_int)
        .and_then(|r| usize::try_from(r).ok())
        .ok_or_else(|| body_err("no root index"))?;
    let nodes = v.get("nodes").and_then(Json::as_array).ok_or_else(|| body_err("no node list"))?;
    let lowered = decode_expr(nodes, root, key.isa)?;
    let art = Artifact::from_lowered(lowered, key.isa)
        .map_err(|e| body_err(format!("artifact rebuild failed: {e}")))?;
    if art.cycles != cycles {
        return Err(body_err(format!(
            "cycle count drifted: entry says {cycles}, this build computes {}",
            art.cycles
        )));
    }
    fpir_sim::verify_executable(&art.exe)
        .map_err(|e| body_err(format!("rebuilt executable failed verification: {e}")))?;
    Ok((key, art))
}

// ---------------------------------------------------------------------
// Envelope (file framing + checksum).
// ---------------------------------------------------------------------

fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = Fnv::new();
    h.write(bytes);
    h.finish()
}

/// Wrap a rendered body in the on-disk envelope.
pub fn encode_envelope(rules_fp: u64, body: &str) -> Vec<u8> {
    let mut out = Vec::with_capacity(MAGIC.len() + 20 + body.len());
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&rules_fp.to_be_bytes());
    out.extend_from_slice(&(body.len() as u32).to_be_bytes());
    out.extend_from_slice(body.as_bytes());
    let sum = fnv64(&out);
    out.extend_from_slice(&sum.to_be_bytes());
    out
}

/// Unwrap and authenticate an envelope, returning the header rule-set
/// fingerprint and the body bytes.
///
/// # Errors
///
/// [`StoreError::Envelope`] on any framing or checksum violation —
/// truncation, flipped bytes, stale magic/version, trailing garbage.
pub fn decode_envelope(bytes: &[u8]) -> Result<(u64, &str), StoreError> {
    let env_err = |m: &str| StoreError::Envelope(m.into());
    let header = MAGIC.len() + 12;
    if bytes.len() < header + 8 {
        return Err(env_err("truncated (shorter than the fixed envelope)"));
    }
    if &bytes[..MAGIC.len()] != MAGIC {
        return Err(env_err("bad magic (stale format version or not a spill file)"));
    }
    let rules_fp = u64::from_be_bytes(bytes[8..16].try_into().expect("8 bytes"));
    let body_len = u32::from_be_bytes(bytes[16..20].try_into().expect("4 bytes")) as usize;
    if bytes.len() != header + body_len + 8 {
        return Err(env_err("length mismatch (truncated or trailing bytes)"));
    }
    let sum = u64::from_be_bytes(bytes[header + body_len..].try_into().expect("8 bytes"));
    if fnv64(&bytes[..header + body_len]) != sum {
        return Err(env_err("checksum mismatch"));
    }
    let body = std::str::from_utf8(&bytes[header..header + body_len])
        .map_err(|_| env_err("body is not UTF-8"))?;
    Ok((rules_fp, body))
}

/// Encode one entry to its complete on-disk byte form.
///
/// # Errors
///
/// [`StoreError::Unsupported`] as for [`encode_artifact_json`].
pub fn encode_entry(key: &CacheKey, art: &Artifact) -> Result<Vec<u8>, StoreError> {
    let body = encode_artifact_json(key, art)?.render();
    Ok(encode_envelope(key.rules_fp, &body))
}

/// Decode + revalidate one on-disk entry end to end.
///
/// # Errors
///
/// Envelope or body rejection; see [`decode_envelope`] and
/// [`decode_artifact_json`].
pub fn decode_entry(bytes: &[u8]) -> Result<(CacheKey, Artifact), StoreError> {
    let (header_fp, body) = decode_envelope(bytes)?;
    let v = crate::json::parse(body).map_err(|e| body_err(format!("body JSON: {e}")))?;
    let (key, art) = decode_artifact_json(&v)?;
    if key.rules_fp != header_fp {
        return Err(body_err("header rule-set fingerprint does not match the key's"));
    }
    Ok((key, art))
}

// ---------------------------------------------------------------------
// The store itself.
// ---------------------------------------------------------------------

/// What came back from a keyed disk probe.
#[derive(Debug)]
pub enum Lookup {
    /// No valid on-disk copy for this key.
    Missing,
    /// A revalidated artifact, ready to re-admit.
    Hit(Box<Artifact>),
    /// A copy existed but failed validation and was unlinked.
    Rejected(StoreError),
}

/// What a startup scan found.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScanReport {
    /// Entries that validated and were re-admitted.
    pub loaded: u64,
    /// Entries (or tmp leftovers) that failed validation and were
    /// unlinked.
    pub rejected: u64,
}

/// Distinguishes concurrent tmp files within one process (the pid in
/// the name distinguishes processes sharing a directory).
static TMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// What a [`DiskStore::gc`] sweep did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GcReport {
    /// Entries unlinked (stale or evicted for space).
    pub evicted: u64,
    /// Bytes of entries left on disk after the sweep.
    pub retained_bytes: u64,
}

/// The content-addressed spill directory plus an in-memory index of
/// the keys it is believed to hold, so the miss path pays a filesystem
/// read only for keys that were actually spilled.
#[derive(Debug)]
pub struct DiskStore {
    dir: PathBuf,
    index: Mutex<HashSet<CacheKey>>,
    /// Byte budget for [`gc`](Self::gc); `None` means unbounded.
    max_bytes: Option<u64>,
    /// Age bound for [`gc`](Self::gc); `None` means entries never
    /// expire. Age is measured from the file's mtime, which
    /// [`load`](Self::load) refreshes on every hit, so the sweep is
    /// least-recently-*used*, not least-recently-written.
    max_age: Option<std::time::Duration>,
}

impl DiskStore {
    /// Open (creating if needed) a spill directory. No scan happens
    /// here — call [`scan`](Self::scan) to re-admit existing entries.
    ///
    /// # Errors
    ///
    /// The directory could not be created.
    pub fn open(dir: impl Into<PathBuf>) -> std::io::Result<DiskStore> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(DiskStore { dir, index: Mutex::new(HashSet::new()), max_bytes: None, max_age: None })
    }

    /// Bound the store: [`gc`](Self::gc) keeps total entry bytes within
    /// `max_bytes` and unlinks entries idle longer than `max_age`.
    #[must_use]
    pub fn with_limits(
        mut self,
        max_bytes: Option<u64>,
        max_age: Option<std::time::Duration>,
    ) -> DiskStore {
        self.max_bytes = max_bytes;
        self.max_age = max_age;
        self
    }

    /// The spill directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn entry_path(&self, key: &CacheKey) -> PathBuf {
        self.dir.join(format!("{:016x}.{EXTENSION}", key.fingerprint()))
    }

    /// `key` has a believed-valid on-disk copy (index probe only; the
    /// copy is still revalidated at [`load`](Self::load) time).
    pub fn contains(&self, key: &CacheKey) -> bool {
        self.index.lock().expect("store index lock").contains(key)
    }

    /// Write one entry durably: tmp file + atomic rename, so readers
    /// (including this process after a crash) never see a torn file.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on filesystem failure, or
    /// [`StoreError::Unsupported`] for a non-portable artifact; the
    /// caller logs and moves on — spilling is an optimization.
    pub fn spill(&self, key: &CacheKey, art: &Artifact) -> Result<(), StoreError> {
        let bytes = encode_entry(key, art)?;
        let path = self.entry_path(key);
        let tmp = self.dir.join(format!(
            "{:016x}.{EXTENSION}.tmp-{}-{}",
            key.fingerprint(),
            std::process::id(),
            TMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let io = |e: std::io::Error| StoreError::Io(e.to_string());
        fs::write(&tmp, &bytes).map_err(io)?;
        if let Err(e) = fs::rename(&tmp, &path) {
            let _ = fs::remove_file(&tmp);
            return Err(io(e));
        }
        self.index.lock().expect("store index lock").insert(key.clone());
        Ok(())
    }

    /// Probe the store for `key`, revalidating the bytes end to end.
    /// Anything that fails validation is unlinked so it is never
    /// consulted (or trusted) again.
    pub fn load(&self, key: &CacheKey) -> Lookup {
        if !self.contains(key) {
            return Lookup::Missing;
        }
        let path = self.entry_path(key);
        let bytes = match fs::read(&path) {
            Ok(b) => b,
            Err(_) => {
                // Unlinked behind our back; drop the index entry.
                self.index.lock().expect("store index lock").remove(key);
                return Lookup::Missing;
            }
        };
        match decode_entry(&bytes) {
            Ok((stored_key, art)) if stored_key == *key => {
                // Refresh the mtime so the age/LRU sweep sees this
                // entry as recently used, not as old as its spill.
                let _ = fs::File::options()
                    .append(true)
                    .open(&path)
                    .and_then(|f| f.set_modified(std::time::SystemTime::now()));
                Lookup::Hit(Box::new(art))
            }
            Ok(_) => {
                // A valid entry for a *different* key (fingerprint
                // collision overwrote ours). Leave the file — it is
                // someone else's valid data — but stop probing for us.
                self.index.lock().expect("store index lock").remove(key);
                Lookup::Missing
            }
            Err(e) => {
                let _ = fs::remove_file(&path);
                self.index.lock().expect("store index lock").remove(key);
                Lookup::Rejected(e)
            }
        }
    }

    /// Scan the directory at startup: revalidate every `.pfa` entry and
    /// hand the good ones to `admit`; unlink (and count) every entry
    /// that fails validation and every tmp leftover from a crashed
    /// write. Never panics on file content.
    pub fn scan(&self, mut admit: impl FnMut(CacheKey, Artifact)) -> ScanReport {
        let mut report = ScanReport::default();
        let entries = match fs::read_dir(&self.dir) {
            Ok(e) => e,
            Err(_) => return report,
        };
        for entry in entries.flatten() {
            let path = entry.path();
            let name = match path.file_name().and_then(|n| n.to_str()) {
                Some(n) => n.to_string(),
                None => continue,
            };
            if name.contains(&format!(".{EXTENSION}.tmp-")) {
                // A crash between write and rename; the real entry (if
                // any) is intact under its final name.
                let _ = fs::remove_file(&path);
                report.rejected += 1;
                eprintln!("pitchforkd: removed partial spill file {name}");
                continue;
            }
            if path.extension().and_then(|e| e.to_str()) != Some(EXTENSION) {
                continue;
            }
            let decoded = fs::read(&path)
                .map_err(|e| StoreError::Io(e.to_string()))
                .and_then(|bytes| decode_entry(&bytes));
            match decoded {
                Ok((key, art)) => {
                    self.index.lock().expect("store index lock").insert(key.clone());
                    admit(key, art);
                    report.loaded += 1;
                }
                Err(e) => {
                    let _ = fs::remove_file(&path);
                    report.rejected += 1;
                    eprintln!("pitchforkd: rejected spill entry {name}: {e}");
                }
            }
        }
        report
    }

    /// Sweep the directory against the configured bounds: unlink every
    /// entry idle longer than `max_age`, then — oldest mtime first —
    /// keep unlinking until total entry bytes fit in `max_bytes`.
    /// Because [`load`](Self::load) refreshes mtimes on hits, the space
    /// sweep evicts least-recently-used entries. A no-op when neither
    /// bound is set.
    pub fn gc(&self) -> GcReport {
        let mut report = GcReport::default();
        if self.max_bytes.is_none() && self.max_age.is_none() {
            return report;
        }
        let entries = match fs::read_dir(&self.dir) {
            Ok(e) => e,
            Err(_) => return report,
        };
        let mut files: Vec<(PathBuf, String, std::time::SystemTime, u64)> = Vec::new();
        for entry in entries.flatten() {
            let path = entry.path();
            if path.extension().and_then(|e| e.to_str()) != Some(EXTENSION) {
                continue;
            }
            let Some(name) = path.file_name().and_then(|n| n.to_str()).map(str::to_string) else {
                continue;
            };
            let Ok(meta) = entry.metadata() else { continue };
            let mtime = meta.modified().unwrap_or(std::time::UNIX_EPOCH);
            files.push((path, name, mtime, meta.len()));
        }
        files.sort_by_key(|f| f.2);
        let mut total: u64 = files.iter().map(|f| f.3).sum();
        let now = std::time::SystemTime::now();
        let mut removed: HashSet<String> = HashSet::new();
        for (path, name, mtime, len) in files {
            let stale =
                self.max_age.is_some_and(|age| now.duration_since(mtime).unwrap_or_default() > age);
            let over = self.max_bytes.is_some_and(|budget| total > budget);
            if !stale && !over {
                // Files are oldest-first: the rest are younger still,
                // and the total already fits.
                break;
            }
            if fs::remove_file(&path).is_ok() {
                total -= len;
                removed.insert(name);
                report.evicted += 1;
            }
        }
        report.retained_bytes = total;
        if !removed.is_empty() {
            self.index.lock().expect("store index lock").retain(|key| {
                !removed.contains(&format!("{:016x}.{EXTENSION}", key.fingerprint()))
            });
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::ruleset_fingerprint;
    use fpir::Isa;
    use pitchfork::Pitchfork;

    fn compiled(expr: &str, lanes: u32, isa: Isa) -> (CacheKey, Artifact) {
        let pf = Pitchfork::new(isa);
        let e = fpir::parser::parse_expr(expr, lanes).unwrap();
        let art = pitchfork::compile_to_executable(&pf, &e).unwrap();
        let key = CacheKey {
            expr: e.to_string(),
            lanes,
            isa,
            engine: (true, true, true),
            synthesized_rules: true,
            leave_out: None,
            rules_fp: ruleset_fingerprint(&pf),
        };
        (key, art)
    }

    const SAT_ADD: &str = "u8(min(u16(a_u8) + u16(b_u8), 255))";

    #[test]
    fn entry_round_trip_is_bit_identical() {
        for (expr, isa) in
            [(SAT_ADD, Isa::ArmNeon), (SAT_ADD, Isa::X86Avx2), ("a_u8 + a_u8", Isa::ArmNeon)]
        {
            let (key, art) = compiled(expr, 16, isa);
            let bytes = encode_entry(&key, &art).unwrap();
            let (key2, art2) = decode_entry(&bytes).unwrap();
            assert_eq!(key, key2);
            assert_eq!(art.lowered.to_string(), art2.lowered.to_string());
            assert_eq!(art.program.render(), art2.program.render());
            assert_eq!(art.cycles, art2.cycles);
            // Allocation-identity serialization preserves the byte
            // estimate exactly (responses echo it).
            assert_eq!(art.approx_bytes(), art2.approx_bytes());
            assert_eq!(Expr::unique_count(&art.lowered), Expr::unique_count(&art2.lowered));
        }
    }

    #[test]
    fn envelope_rejects_every_tamper_mode() {
        let (key, art) = compiled(SAT_ADD, 8, Isa::ArmNeon);
        let good = encode_entry(&key, &art).unwrap();
        assert!(decode_entry(&good).is_ok());

        // Truncation, at several depths.
        for cut in [0, 10, good.len() / 2, good.len() - 1] {
            assert!(decode_entry(&good[..cut]).is_err(), "cut at {cut}");
        }
        // A flipped byte anywhere in the body.
        let mut flipped = good.clone();
        let mid = MAGIC.len() + 12 + 5;
        flipped[mid] ^= 0x20;
        assert!(decode_entry(&flipped).is_err());
        // Stale format version in the magic.
        let mut stale = good.clone();
        stale[MAGIC.len() - 1] = b'0';
        assert!(matches!(decode_entry(&stale), Err(StoreError::Envelope(_))));
        // Trailing garbage.
        let mut trailing = good.clone();
        trailing.push(0);
        assert!(decode_entry(&trailing).is_err());
        // A flipped checksum byte.
        let mut sum = good.clone();
        let last = sum.len() - 1;
        sum[last] ^= 1;
        assert!(matches!(decode_entry(&sum), Err(StoreError::Envelope(_))));
    }

    #[test]
    fn header_fingerprint_must_match_the_key() {
        let (key, art) = compiled(SAT_ADD, 8, Isa::ArmNeon);
        let body = encode_artifact_json(&key, &art).unwrap().render();
        // A well-formed envelope whose header claims a different rule
        // set must be rejected even though the checksum is valid.
        let bytes = encode_envelope(key.rules_fp ^ 1, &body);
        assert!(matches!(decode_entry(&bytes), Err(StoreError::Body(_))));
    }

    #[test]
    fn cycle_drift_is_rejected() {
        let (key, art) = compiled(SAT_ADD, 8, Isa::ArmNeon);
        let mut v = encode_artifact_json(&key, &art).unwrap();
        if let Json::Object(members) = &mut v {
            for (name, value) in members.iter_mut() {
                if name == "cycles" {
                    *value = Json::Int(art.cycles as i128 + 1);
                }
            }
        }
        let bytes = encode_envelope(key.rules_fp, &v.render());
        let err = decode_entry(&bytes).unwrap_err();
        assert!(matches!(err, StoreError::Body(ref m) if m.contains("cycle count")));
    }

    #[test]
    fn store_spills_loads_and_rejects_corruption() {
        let dir = std::env::temp_dir().join(format!("pfstore-test-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let store = DiskStore::open(&dir).unwrap();
        let (key, art) = compiled(SAT_ADD, 16, Isa::ArmNeon);
        store.spill(&key, &art).unwrap();
        assert!(store.contains(&key));
        match store.load(&key) {
            Lookup::Hit(got) => assert_eq!(got.program.render(), art.program.render()),
            other => panic!("expected hit, got {other:?}"),
        }

        // A fresh store over the same directory scans it back in.
        let store2 = DiskStore::open(&dir).unwrap();
        let mut admitted = Vec::new();
        let report = store2.scan(|k, a| admitted.push((k, a)));
        assert_eq!((report.loaded, report.rejected), (1, 0));
        assert_eq!(admitted[0].0, key);
        assert!(store2.contains(&key));

        // Corrupt the file: the next load rejects AND unlinks it.
        let path = dir.join(format!("{:016x}.{EXTENSION}", key.fingerprint()));
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        fs::write(&path, &bytes).unwrap();
        assert!(matches!(store2.load(&key), Lookup::Rejected(_)));
        assert!(!path.exists(), "corrupt entry must be unlinked");
        assert!(matches!(store2.load(&key), Lookup::Missing));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn gc_is_a_noop_without_limits() {
        let dir = std::env::temp_dir().join(format!("pfstore-gc0-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let store = DiskStore::open(&dir).unwrap();
        let (key, art) = compiled(SAT_ADD, 16, Isa::ArmNeon);
        store.spill(&key, &art).unwrap();
        let report = store.gc();
        assert_eq!(report, GcReport::default());
        assert!(matches!(store.load(&key), Lookup::Hit(_)));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn gc_evicts_oldest_when_over_budget_and_load_refreshes_age() {
        let dir = std::env::temp_dir().join(format!("pfstore-gc-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let exprs = ["a_u8 + a_u8", "a_u8 + b_u8", "min(a_u8, b_u8)"];
        let entries: Vec<(CacheKey, Artifact)> =
            exprs.iter().map(|e| compiled(e, 16, Isa::ArmNeon)).collect();

        // Budget for exactly two of the three entries (they are within a
        // few bytes of each other).
        let one = encode_entry(&entries[0].0, &entries[0].1).unwrap().len() as u64;
        let store = DiskStore::open(&dir).unwrap().with_limits(Some(one * 2 + one / 2), None);
        let old = std::time::SystemTime::now() - std::time::Duration::from_secs(3600);
        for (i, (key, art)) in entries.iter().enumerate() {
            store.spill(key, art).unwrap();
            // Stamp distinct mtimes, oldest first, so LRU order is
            // deterministic regardless of filesystem timestamp
            // granularity.
            let f = fs::File::options()
                .append(true)
                .open(store.dir().join(format!("{:016x}.{EXTENSION}", key.fingerprint())));
            f.unwrap().set_modified(old + std::time::Duration::from_secs(i as u64)).unwrap();
        }
        // A hit on the oldest entry refreshes its mtime, so the sweep
        // evicts entry 1 (now the least recently used) instead.
        assert!(matches!(store.load(&entries[0].0), Lookup::Hit(_)));
        let report = store.gc();
        assert_eq!(report.evicted, 1);
        assert!(report.retained_bytes <= one * 2 + one / 2);
        assert!(store.contains(&entries[0].0), "recently-used entry survives");
        assert!(!store.contains(&entries[1].0), "LRU entry is evicted");
        assert!(store.contains(&entries[2].0));
        assert!(matches!(store.load(&entries[1].0), Lookup::Missing));

        // The survivors still validate end to end.
        assert!(matches!(store.load(&entries[0].0), Lookup::Hit(_)));
        assert!(matches!(store.load(&entries[2].0), Lookup::Hit(_)));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn gc_expires_idle_entries_by_age() {
        let dir = std::env::temp_dir().join(format!("pfstore-age-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let store = DiskStore::open(&dir)
            .unwrap()
            .with_limits(None, Some(std::time::Duration::from_secs(60)));
        let (k1, a1) = compiled("a_u8 + a_u8", 16, Isa::ArmNeon);
        let (k2, a2) = compiled("a_u8 + b_u8", 16, Isa::ArmNeon);
        store.spill(&k1, &a1).unwrap();
        store.spill(&k2, &a2).unwrap();
        // Backdate one entry past the idle bound.
        let path = store.dir().join(format!("{:016x}.{EXTENSION}", k1.fingerprint()));
        let old = std::time::SystemTime::now() - std::time::Duration::from_secs(3600);
        fs::File::options().append(true).open(&path).unwrap().set_modified(old).unwrap();

        let report = store.gc();
        assert_eq!(report.evicted, 1);
        assert!(!path.exists());
        assert!(!store.contains(&k1));
        assert!(matches!(store.load(&k2), Lookup::Hit(_)));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn service_persistence_respects_gc_bounds() {
        use crate::protocol::{CompileSpec, Request};
        use crate::service::{Service, ServiceConfig};
        use crate::stats::Stats;
        let dir = std::env::temp_dir().join(format!("pfstore-svcgc-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let spec = |expr: &str| CompileSpec {
            expr: expr.into(),
            lanes: 8,
            isa: Isa::ArmNeon,
            engine: pitchfork::EngineConfig::FAST,
            synthesized_rules: true,
            leave_out: None,
            timeout_ms: None,
        };
        let exprs = ["a_u8 + a_u8", "a_u8 + b_u8", "min(a_u8, b_u8)"];
        {
            let svc = Service::new(ServiceConfig {
                cache_dir: Some(dir.clone()),
                ..ServiceConfig::default()
            });
            for e in exprs {
                let r = svc.handle(&Request::Compile(spec(e)));
                assert!(r.get("error").is_none(), "compile of {e} failed: {r:?}");
            }
        }
        assert_eq!(fs::read_dir(&dir).unwrap().count(), 3);

        // Restarting with a two-entry budget sweeps the oldest spill at
        // startup; the survivors are still served restart-warm.
        let one = fs::read_dir(&dir)
            .unwrap()
            .flatten()
            .map(|e| e.metadata().unwrap().len())
            .max()
            .unwrap();
        let svc = Service::new(ServiceConfig {
            cache_dir: Some(dir.clone()),
            cache_max_bytes: Some(one * 2 + one / 2),
            ..ServiceConfig::default()
        });
        assert_eq!(fs::read_dir(&dir).unwrap().count(), 2);
        assert_eq!(Stats::read(&svc.stats().disk_evicted), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn scan_sweeps_tmp_leftovers_and_bad_entries() {
        let dir = std::env::temp_dir().join(format!("pfstore-scan-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let store = DiskStore::open(&dir).unwrap();
        let (key, art) = compiled(SAT_ADD, 16, Isa::X86Avx2);
        store.spill(&key, &art).unwrap();
        // A crashed write leaves a partial tmp file behind.
        fs::write(dir.join(format!("dead.{EXTENSION}.tmp-999-0")), b"partial").unwrap();
        // A truncated entry.
        let good = encode_entry(&key, &art).unwrap();
        fs::write(dir.join(format!("{:016x}.{EXTENSION}", 7u64)), &good[..good.len() / 3]).unwrap();
        // An unrelated file is left alone.
        fs::write(dir.join("README"), b"not a spill file").unwrap();

        let store2 = DiskStore::open(&dir).unwrap();
        let mut admitted = 0;
        let report = store2.scan(|_, _| admitted += 1);
        assert_eq!((report.loaded, report.rejected), (1, 2));
        assert_eq!(admitted, 1);
        let left: Vec<String> = fs::read_dir(&dir)
            .unwrap()
            .flatten()
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .collect();
        assert_eq!(left.len(), 2, "good entry + README survive: {left:?}");
        assert!(left.iter().any(|n| n == "README"));
        let _ = fs::remove_dir_all(&dir);
    }
}
