//! Content-addressed cache keys.
//!
//! An artifact is addressed by *everything that determines its bytes*:
//! the expression (printed structural form — two structurally equal
//! expressions print identically), its lane count, the target ISA, the
//! rewrite-engine configuration, the rule-provenance toggles, and a
//! fingerprint of the loaded rule sets. The key is an exact structured
//! value (`Eq + Hash`), so the cache can never confuse two different
//! compilations — the 64-bit FNV fingerprint is only a *display* handle
//! and a cheap way to invalidate across rule-set changes, never the
//! identity itself.

use fpir::expr::RcExpr;
use fpir::Isa;
use fpir_trs::rewrite::EngineConfig;
use pitchfork::Pitchfork;

/// The exact identity of one compilation.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// The expression, printed (structural — not a pointer identity).
    pub expr: String,
    /// Vector width of the expression.
    pub lanes: u32,
    /// Target ISA.
    pub isa: Isa,
    /// Rewrite-engine acceleration flags `(memo, index, cost_cache)`.
    pub engine: (bool, bool, bool),
    /// Whether synthesized rules were loaded.
    pub synthesized_rules: bool,
    /// Leave-one-out benchmark, if any.
    pub leave_out: Option<String>,
    /// Fingerprint of the lift+lower rule sets actually loaded.
    pub rules_fp: u64,
}

impl CacheKey {
    /// Build the key for compiling `expr` with `pf`.
    pub fn for_compile(pf: &Pitchfork, expr: &RcExpr) -> CacheKey {
        let cfg = pf.config();
        CacheKey {
            expr: expr.to_string(),
            lanes: expr.ty().lanes,
            isa: cfg.isa,
            engine: engine_bits(cfg.engine),
            synthesized_rules: cfg.synthesized_rules,
            leave_out: cfg.leave_out.clone(),
            rules_fp: ruleset_fingerprint(pf),
        }
    }

    /// A short printable handle for logs and `/stats` (not the identity).
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv::new();
        h.write(self.expr.as_bytes());
        h.write(&self.lanes.to_le_bytes());
        h.write(self.isa.short_name().as_bytes());
        h.write(&[
            self.engine.0 as u8,
            self.engine.1 as u8,
            self.engine.2 as u8,
            self.synthesized_rules as u8,
        ]);
        if let Some(l) = &self.leave_out {
            h.write(l.as_bytes());
        }
        h.write(&self.rules_fp.to_le_bytes());
        h.finish()
    }
}

/// `EngineConfig` as a hashable tuple.
pub fn engine_bits(e: EngineConfig) -> (bool, bool, bool) {
    (e.memo, e.index, e.cost_cache)
}

/// Fingerprint of the rule sets a selector actually loaded: every rule's
/// printed form (the `Display` of a rule is its full lhs → rhs syntax),
/// in set order, lift then lower. Changes whenever a rule is added,
/// removed, reordered, or edited.
pub fn ruleset_fingerprint(pf: &Pitchfork) -> u64 {
    let mut h = Fnv::new();
    for (tag, set) in [("lift", pf.lift_rule_set()), ("lower", pf.lower_rule_set())] {
        h.write(tag.as_bytes());
        h.write(&(set.rules().len() as u64).to_le_bytes());
        for r in set.rules() {
            h.write(r.to_string().as_bytes());
            h.write(&[0]);
        }
    }
    h.finish()
}

/// FNV-1a, 64-bit. Not cryptographic — a display/fingerprint hash only;
/// correctness never depends on it (the structured key is the identity).
pub struct Fnv(u64);

impl Fnv {
    /// The offset-basis state.
    pub fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    /// Absorb bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    /// The digest.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv {
    fn default() -> Fnv {
        Fnv::new()
    }
}

impl std::fmt::Debug for Fnv {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Fnv({:016x})", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpir::build;
    use fpir::types::{ScalarType as S, VectorType as V};
    use pitchfork::Config;

    fn sat_add(lanes: u32) -> RcExpr {
        let t = V::new(S::U8, lanes);
        let sum = build::add(build::widen(build::var("a", t)), build::widen(build::var("b", t)));
        build::cast(S::U8, build::min(sum.clone(), build::splat(255, &sum)))
    }

    #[test]
    fn structurally_equal_expressions_share_a_key() {
        let pf = Pitchfork::new(Isa::ArmNeon);
        let a = CacheKey::for_compile(&pf, &sat_add(16));
        let b = CacheKey::for_compile(&pf, &sat_add(16));
        assert_eq!(a, b);
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn every_config_axis_changes_the_key() {
        let base = CacheKey::for_compile(&Pitchfork::new(Isa::ArmNeon), &sat_add(16));
        let variants = [
            CacheKey::for_compile(&Pitchfork::new(Isa::ArmNeon), &sat_add(32)),
            CacheKey::for_compile(&Pitchfork::new(Isa::X86Avx2), &sat_add(16)),
            CacheKey::for_compile(
                &Pitchfork::with_config(
                    Config::new(Isa::ArmNeon).with_engine(EngineConfig::REFERENCE),
                ),
                &sat_add(16),
            ),
            CacheKey::for_compile(
                &Pitchfork::with_config(Config::new(Isa::ArmNeon).hand_written_only()),
                &sat_add(16),
            ),
            CacheKey::for_compile(
                &Pitchfork::with_config(Config::new(Isa::ArmNeon).leaving_out("blur")),
                &sat_add(16),
            ),
        ];
        for (i, v) in variants.iter().enumerate() {
            assert_ne!(base, *v, "variant {i} must not collide with the base key");
        }
    }

    #[test]
    fn rule_provenance_toggles_change_the_ruleset_fingerprint() {
        let full = ruleset_fingerprint(&Pitchfork::new(Isa::ArmNeon));
        let hand = ruleset_fingerprint(&Pitchfork::with_config(
            Config::new(Isa::ArmNeon).hand_written_only(),
        ));
        assert_ne!(full, hand);
        // Deterministic across selector instances.
        assert_eq!(full, ruleset_fingerprint(&Pitchfork::new(Isa::ArmNeon)));
    }

    #[test]
    fn flipping_a_rule_toggle_changes_the_fingerprint() {
        // The disk store names its files by `CacheKey::fingerprint` and
        // stamps the rule-set fingerprint into every envelope header; a
        // daemon whose rule toggles differ must therefore miss the
        // store on both counts, never load an artifact compiled under
        // other rules.
        let e = sat_add(16);
        let full = CacheKey::for_compile(&Pitchfork::new(Isa::ArmNeon), &e);
        let hand = CacheKey::for_compile(
            &Pitchfork::with_config(Config::new(Isa::ArmNeon).hand_written_only()),
            &e,
        );
        let leave = CacheKey::for_compile(
            &Pitchfork::with_config(Config::new(Isa::ArmNeon).leaving_out("blur")),
            &e,
        );
        assert_ne!(full.fingerprint(), hand.fingerprint());
        assert_ne!(full.fingerprint(), leave.fingerprint());
        assert_ne!(full.rules_fp, hand.rules_fp, "the toggle reloads a different rule set");
    }

    #[test]
    fn fnv_matches_known_vectors() {
        // Standard FNV-1a 64 test vectors.
        let mut h = Fnv::new();
        h.write(b"");
        assert_eq!(h.finish(), 0xcbf2_9ce4_8422_2325);
        let mut h = Fnv::new();
        h.write(b"a");
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
        let mut h = Fnv::new();
        h.write(b"foobar");
        assert_eq!(h.finish(), 0x85944171f73967e8);
    }
}
