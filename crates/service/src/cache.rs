//! A content-addressed artifact cache: byte-bounded LRU with
//! single-flight deduplication.
//!
//! * **Exact keys** — the cache is generic over a structured `Eq + Hash`
//!   key; it never compares by hash digest, so two different
//!   compilations can never alias.
//! * **Byte budget** — each resident value carries a charged size;
//!   inserting past the budget evicts least-recently-used values first
//!   (an over-budget value is still *returned*, it just doesn't stay
//!   resident).
//! * **Single flight** — N concurrent requests for the same absent key
//!   produce exactly one compute; the leader publishes the result and
//!   every waiter shares the same `Arc`. Waiters carry their own
//!   deadlines: a waiter can time out and leave while the flight
//!   continues for the others.
//! * **Panic safety** — if the leader's compute panics, a drop guard
//!   marks the flight abandoned and clears the key; waiters wake and
//!   retry (one of them becomes the new leader) instead of hanging.

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// How a value was obtained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Source {
    /// Already resident.
    Hit,
    /// This request led the compute.
    Computed,
    /// Another request led the compute; this one waited and shared it.
    Joined,
}

/// Why [`Cache::get_or_compute`] failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CacheError<E> {
    /// The compute itself failed (the error is shared with all waiters).
    Compute(E),
    /// This request's deadline expired while waiting on the flight.
    TimedOut,
}

/// A point-in-time view of the cache counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Requests served from a resident value.
    pub hits: u64,
    /// Requests that led a compute.
    pub misses: u64,
    /// Requests that joined another request's flight.
    pub joins: u64,
    /// Values evicted to stay within budget.
    pub evictions: u64,
    /// Bytes currently charged.
    pub resident_bytes: usize,
    /// Values currently resident.
    pub resident_count: usize,
}

enum FlightState<V, E> {
    /// The leader is still computing.
    Pending,
    /// The leader finished (either way).
    Done(Result<Arc<V>, E>),
    /// The leader's compute panicked; waiters should retry the key.
    Abandoned,
}

struct Flight<V, E> {
    state: Mutex<FlightState<V, E>>,
    cv: Condvar,
}

enum Entry<V, E> {
    Resident { value: Arc<V>, bytes: usize, last_used: u64 },
    InFlight(Arc<Flight<V, E>>),
}

struct Inner<K, V, E> {
    map: HashMap<K, Entry<V, E>>,
    tick: u64,
    stats: CacheStats,
}

/// The cache. `K` is the exact content address, `V` the artifact, `E`
/// the (cloneable) compute error shared with flight waiters.
pub struct Cache<K, V, E> {
    inner: Mutex<Inner<K, V, E>>,
    budget_bytes: usize,
}

impl<K, V, E> std::fmt::Debug for Cache<K, V, E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cache").field("budget_bytes", &self.budget_bytes).finish_non_exhaustive()
    }
}

enum JoinOutcome<V, E> {
    Value(Arc<V>),
    Failed(E),
    Abandoned,
    TimedOut,
}

impl<K: Eq + Hash + Clone, V, E: Clone> Cache<K, V, E> {
    /// A cache that holds at most `budget_bytes` of charged value bytes.
    pub fn new(budget_bytes: usize) -> Cache<K, V, E> {
        Cache {
            inner: Mutex::new(Inner { map: HashMap::new(), tick: 0, stats: CacheStats::default() }),
            budget_bytes,
        }
    }

    /// The configured byte budget.
    pub fn budget_bytes(&self) -> usize {
        self.budget_bytes
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        self.inner.lock().expect("cache lock").stats
    }

    /// Resident-only lookup (no flight join, no compute). Counts as a
    /// hit when it returns `Some`; counts nothing otherwise.
    pub fn try_get(&self, key: &K) -> Option<Arc<V>> {
        let mut inner = self.inner.lock().expect("cache lock");
        inner.tick += 1;
        let tick = inner.tick;
        let v = match inner.map.get_mut(key) {
            Some(Entry::Resident { value, last_used, .. }) => {
                *last_used = tick;
                value.clone()
            }
            _ => return None,
        };
        inner.stats.hits += 1;
        Some(v)
    }

    /// Admit an already-computed value without running a flight — the
    /// spill store's startup re-admission and peer fills use this.
    ///
    /// An in-flight key is left alone (the leader is about to publish
    /// the same content; replacing the entry under it would strand its
    /// waiters) and a resident value is replaced. The admitted value is
    /// returned either way, and the usual LRU eviction applies — counts
    /// nothing (the caller tracks its own hit/refill stats).
    pub fn insert(&self, key: K, value: V, bytes: usize) -> Arc<V> {
        let value = Arc::new(value);
        let mut inner = self.inner.lock().expect("cache lock");
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(Entry::InFlight(_)) = inner.map.get(&key) {
            return value;
        }
        let entry = Entry::Resident { value: value.clone(), bytes, last_used: tick };
        if let Some(Entry::Resident { bytes: old, .. }) = inner.map.insert(key, entry) {
            inner.stats.resident_bytes -= old;
            inner.stats.resident_count -= 1;
        }
        inner.stats.resident_bytes += bytes;
        inner.stats.resident_count += 1;
        self.evict_to_budget(&mut inner);
        value
    }

    /// Look up `key`; on a miss, run `compute` exactly once across all
    /// concurrent callers and share the result.
    ///
    /// `deadline` bounds only the *waiting*: a joiner whose deadline
    /// passes gets [`CacheError::TimedOut`] while the flight continues.
    /// (The leader's own compute is expected to watch the deadline
    /// itself — e.g. via the phase-cancellation hook — and return an `E`
    /// if it gives up.)
    ///
    /// `compute` returns the value and its charged size in bytes.
    ///
    /// # Errors
    ///
    /// [`CacheError::Compute`] if the compute failed (leader and all
    /// waiters see the same error; the key is cleared so a retry
    /// recomputes), or [`CacheError::TimedOut`] if this caller's
    /// deadline expired while waiting.
    pub fn get_or_compute(
        &self,
        key: &K,
        deadline: Option<Instant>,
        compute: impl FnOnce() -> Result<(V, usize), E>,
    ) -> Result<(Arc<V>, Source), CacheError<E>> {
        enum Action<V, E> {
            Hit(Arc<V>),
            Join(Arc<Flight<V, E>>),
            Lead(Arc<Flight<V, E>>),
        }
        let mut compute = Some(compute);
        loop {
            let flight = {
                let mut inner = self.inner.lock().expect("cache lock");
                inner.tick += 1;
                let tick = inner.tick;
                let action = match inner.map.get_mut(key) {
                    Some(Entry::Resident { value, last_used, .. }) => {
                        *last_used = tick;
                        Action::Hit(value.clone())
                    }
                    Some(Entry::InFlight(f)) => Action::Join(f.clone()),
                    None => {
                        let f = Arc::new(Flight {
                            state: Mutex::new(FlightState::Pending),
                            cv: Condvar::new(),
                        });
                        inner.map.insert(key.clone(), Entry::InFlight(f.clone()));
                        Action::Lead(f)
                    }
                };
                match action {
                    Action::Hit(v) => {
                        inner.stats.hits += 1;
                        return Ok((v, Source::Hit));
                    }
                    Action::Join(f) => {
                        inner.stats.joins += 1;
                        f
                    }
                    Action::Lead(f) => {
                        inner.stats.misses += 1;
                        drop(inner);
                        let compute = compute.take().expect("compute consumed only as leader");
                        return self.lead(key, f, compute);
                    }
                }
            };
            match self.join(flight, deadline) {
                JoinOutcome::Value(v) => return Ok((v, Source::Joined)),
                JoinOutcome::Failed(e) => return Err(CacheError::Compute(e)),
                JoinOutcome::TimedOut => return Err(CacheError::TimedOut),
                // The leader panicked; the key is clear — go around and
                // either find a new flight or lead one ourselves.
                JoinOutcome::Abandoned => continue,
            }
        }
    }

    /// Leader path: run the compute, publish, wake waiters.
    fn lead(
        &self,
        key: &K,
        flight: Arc<Flight<V, E>>,
        compute: impl FnOnce() -> Result<(V, usize), E>,
    ) -> Result<(Arc<V>, Source), CacheError<E>> {
        // If `compute` panics, this guard clears the key and marks the
        // flight abandoned so waiters wake and retry instead of
        // sleeping until their deadlines.
        struct Guard<'a, K: Eq + Hash, V, E> {
            cache: &'a Cache<K, V, E>,
            key: &'a K,
            flight: &'a Flight<V, E>,
            armed: bool,
        }
        impl<K: Eq + Hash, V, E> Drop for Guard<'_, K, V, E> {
            fn drop(&mut self) {
                if !self.armed {
                    return;
                }
                if let Ok(mut inner) = self.cache.inner.lock() {
                    inner.map.remove(self.key);
                }
                if let Ok(mut state) = self.flight.state.lock() {
                    *state = FlightState::Abandoned;
                }
                self.flight.cv.notify_all();
            }
        }
        let mut guard = Guard { cache: self, key, flight: &flight, armed: true };

        let result = compute();
        guard.armed = false;
        drop(guard);

        match result {
            Ok((value, bytes)) => {
                let value = Arc::new(value);
                {
                    let mut inner = self.inner.lock().expect("cache lock");
                    inner.tick += 1;
                    let tick = inner.tick;
                    inner.map.insert(
                        key.clone(),
                        Entry::Resident { value: value.clone(), bytes, last_used: tick },
                    );
                    inner.stats.resident_bytes += bytes;
                    inner.stats.resident_count += 1;
                    self.evict_to_budget(&mut inner);
                }
                let mut state = flight.state.lock().expect("flight lock");
                *state = FlightState::Done(Ok(value.clone()));
                drop(state);
                flight.cv.notify_all();
                Ok((value, Source::Computed))
            }
            Err(e) => {
                {
                    let mut inner = self.inner.lock().expect("cache lock");
                    inner.map.remove(key);
                }
                let mut state = flight.state.lock().expect("flight lock");
                *state = FlightState::Done(Err(e.clone()));
                drop(state);
                flight.cv.notify_all();
                Err(CacheError::Compute(e))
            }
        }
    }

    /// Waiter path: block on the flight until it resolves, is
    /// abandoned, or the deadline passes.
    fn join(&self, flight: Arc<Flight<V, E>>, deadline: Option<Instant>) -> JoinOutcome<V, E> {
        let mut state = flight.state.lock().expect("flight lock");
        loop {
            match &*state {
                FlightState::Done(Ok(v)) => return JoinOutcome::Value(v.clone()),
                FlightState::Done(Err(e)) => return JoinOutcome::Failed(e.clone()),
                FlightState::Abandoned => return JoinOutcome::Abandoned,
                FlightState::Pending => {}
            }
            match deadline {
                None => state = flight.cv.wait(state).expect("flight lock"),
                Some(d) => {
                    let now = Instant::now();
                    if now >= d {
                        return JoinOutcome::TimedOut;
                    }
                    let (g, _timeout) =
                        flight.cv.wait_timeout(state, d - now).expect("flight lock");
                    state = g;
                }
            }
        }
    }

    /// Evict least-recently-used residents until within budget. Runs
    /// with the cache lock held; in-flight entries are never evicted.
    fn evict_to_budget(&self, inner: &mut Inner<K, V, E>) {
        while inner.stats.resident_bytes > self.budget_bytes {
            let victim = inner
                .map
                .iter()
                .filter_map(|(k, e)| match e {
                    Entry::Resident { last_used, .. } => Some((*last_used, k.clone())),
                    Entry::InFlight(_) => None,
                })
                .min_by_key(|(tick, _)| *tick);
            let Some((_, key)) = victim else { break };
            if let Some(Entry::Resident { bytes, .. }) = inner.map.remove(&key) {
                inner.stats.resident_bytes -= bytes;
                inner.stats.resident_count -= 1;
                inner.stats.evictions += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    type C = Cache<String, u64, String>;

    #[test]
    fn hit_after_compute() {
        let c: C = Cache::new(1 << 20);
        let (v, src) = c.get_or_compute(&"k".to_string(), None, || Ok((7, 100))).unwrap();
        assert_eq!((*v, src), (7, Source::Computed));
        let (v, src) =
            c.get_or_compute(&"k".to_string(), None, || panic!("must not recompute")).unwrap();
        assert_eq!((*v, src), (7, Source::Hit));
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.resident_count, s.resident_bytes), (1, 1, 1, 100));
    }

    #[test]
    fn compute_error_clears_the_key() {
        let c: C = Cache::new(1 << 20);
        let err = c.get_or_compute(&"k".to_string(), None, || Err("boom".to_string())).unwrap_err();
        assert_eq!(err, CacheError::Compute("boom".into()));
        // Retry recomputes (the key was cleared).
        let (v, src) = c.get_or_compute(&"k".to_string(), None, || Ok((1, 1))).unwrap();
        assert_eq!((*v, src), (1, Source::Computed));
    }

    #[test]
    fn lru_eviction_respects_recency_and_budget() {
        let c: C = Cache::new(250);
        c.get_or_compute(&"a".to_string(), None, || Ok((1, 100))).unwrap();
        c.get_or_compute(&"b".to_string(), None, || Ok((2, 100))).unwrap();
        // Touch `a` so `b` is the LRU.
        assert!(c.try_get(&"a".to_string()).is_some());
        c.get_or_compute(&"c".to_string(), None, || Ok((3, 100))).unwrap();
        assert!(c.try_get(&"b".to_string()).is_none(), "LRU entry should be evicted");
        assert!(c.try_get(&"a".to_string()).is_some());
        assert!(c.try_get(&"c".to_string()).is_some());
        let s = c.stats();
        assert_eq!((s.evictions, s.resident_count, s.resident_bytes), (1, 2, 200));
    }

    #[test]
    fn over_budget_value_is_served_but_not_retained() {
        let c: C = Cache::new(50);
        let (v, src) = c.get_or_compute(&"big".to_string(), None, || Ok((9, 1000))).unwrap();
        assert_eq!((*v, src), (9, Source::Computed));
        assert!(c.try_get(&"big".to_string()).is_none());
        assert_eq!(c.stats().resident_bytes, 0);
    }

    #[test]
    fn insert_admits_and_replaces() {
        let c: C = Cache::new(250);
        c.insert("a".to_string(), 1, 100);
        let (v, src) = c.get_or_compute(&"a".to_string(), None, || panic!("resident")).unwrap();
        assert_eq!((*v, src), (1, Source::Hit));
        // Replacement adjusts the charged bytes instead of double-counting.
        c.insert("a".to_string(), 2, 120);
        assert_eq!(c.stats().resident_bytes, 120);
        assert_eq!(*c.try_get(&"a".to_string()).unwrap(), 2);
        // Inserting past the budget evicts, same as a computed value.
        c.insert("b".to_string(), 3, 200);
        assert_eq!(c.stats().resident_count, 1);
    }

    #[test]
    fn insert_never_stomps_an_inflight_key() {
        let c: Arc<C> = Arc::new(Cache::new(1 << 20));
        let leader = {
            let c = c.clone();
            std::thread::spawn(move || {
                c.get_or_compute(&"k".to_string(), None, || {
                    std::thread::sleep(Duration::from_millis(80));
                    Ok((7, 10))
                })
                .unwrap()
            })
        };
        std::thread::sleep(Duration::from_millis(20));
        // The flight is pending; the insert must not replace it.
        let v = c.insert("k".to_string(), 99, 10);
        assert_eq!(*v, 99, "caller still gets its value back");
        let (v, src) = leader.join().unwrap();
        assert_eq!((*v, src), (7, Source::Computed));
        assert_eq!(*c.try_get(&"k".to_string()).unwrap(), 7, "leader's publish won");
    }

    #[test]
    fn single_flight_deduplicates_concurrent_computes() {
        let c: Arc<C> = Arc::new(Cache::new(1 << 20));
        let computes = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let c = c.clone();
            let computes = computes.clone();
            handles.push(std::thread::spawn(move || {
                c.get_or_compute(&"k".to_string(), None, || {
                    computes.fetch_add(1, Ordering::SeqCst);
                    // Widen the race window so joiners actually wait.
                    std::thread::sleep(Duration::from_millis(30));
                    Ok((42, 10))
                })
                .unwrap()
            }));
        }
        let results: Vec<(Arc<u64>, Source)> =
            handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert_eq!(computes.load(Ordering::SeqCst), 1, "exactly one compute");
        assert!(results.iter().all(|(v, _)| **v == 42));
        assert_eq!(
            results.iter().filter(|(_, s)| *s == Source::Computed).count(),
            1,
            "exactly one leader"
        );
    }

    #[test]
    fn waiter_deadline_expires_while_flight_continues() {
        let c: Arc<C> = Arc::new(Cache::new(1 << 20));
        let leader = {
            let c = c.clone();
            std::thread::spawn(move || {
                c.get_or_compute(&"slow".to_string(), None, || {
                    std::thread::sleep(Duration::from_millis(200));
                    Ok((5, 10))
                })
                .unwrap()
            })
        };
        // Give the leader time to claim the flight.
        std::thread::sleep(Duration::from_millis(50));
        let deadline = Some(Instant::now() + Duration::from_millis(20));
        let err = c
            .get_or_compute(&"slow".to_string(), deadline, || panic!("joiner must not compute"))
            .unwrap_err();
        assert_eq!(err, CacheError::TimedOut);
        // The flight itself completes and the value lands in the cache.
        let (v, src) = leader.join().unwrap();
        assert_eq!((*v, src), (5, Source::Computed));
        assert!(c.try_get(&"slow".to_string()).is_some());
    }

    #[test]
    fn leader_panic_lets_a_waiter_take_over() {
        let c: Arc<C> = Arc::new(Cache::new(1 << 20));
        let leader = {
            let c = c.clone();
            std::thread::spawn(move || {
                let _ =
                    c.get_or_compute(&"k".to_string(), None, || -> Result<(u64, usize), String> {
                        std::thread::sleep(Duration::from_millis(50));
                        panic!("leader dies")
                    });
            })
        };
        std::thread::sleep(Duration::from_millis(20));
        // The waiter survives the abandoned flight by leading a fresh
        // compute itself.
        let (v, src) = c
            .get_or_compute(&"k".to_string(), Some(Instant::now() + Duration::from_secs(5)), || {
                Ok((3, 1))
            })
            .unwrap();
        assert_eq!((*v, src), (3, Source::Computed));
        assert!(leader.join().is_err(), "leader thread panicked");
        assert!(c.try_get(&"k".to_string()).is_some());
    }
}
