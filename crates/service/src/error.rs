//! The structured failure vocabulary of the service.
//!
//! Every way a request can fail maps onto one of these variants, and
//! every variant has a stable machine-readable `code` that crosses the
//! wire — clients branch on the code, humans read the message.

use std::fmt;

/// Why a request was not served.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceError {
    /// The request itself is malformed (unparseable expression, unknown
    /// ISA, missing field, bad input value…). Retrying is pointless.
    BadRequest(String),
    /// The compiler rejected the (well-formed) expression — e.g. the
    /// target cannot implement it. Retrying is pointless.
    Compile(String),
    /// The request's deadline expired before a result was ready. The
    /// compile may still finish and populate the cache for a retry.
    Timeout {
        /// The budget that expired, in milliseconds.
        budget_ms: u64,
    },
    /// The server shed the request because its compile queue was full.
    /// Retrying after a backoff is reasonable.
    Overloaded,
    /// A server-side invariant failed (a bug, not a bad request).
    Internal(String),
}

impl ServiceError {
    /// The stable machine-readable error code.
    pub fn code(&self) -> &'static str {
        match self {
            ServiceError::BadRequest(_) => "bad_request",
            ServiceError::Compile(_) => "compile_error",
            ServiceError::Timeout { .. } => "timeout",
            ServiceError::Overloaded => "overloaded",
            ServiceError::Internal(_) => "internal",
        }
    }
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::BadRequest(m) => write!(f, "bad request: {m}"),
            ServiceError::Compile(m) => write!(f, "compile error: {m}"),
            ServiceError::Timeout { budget_ms } => {
                write!(f, "deadline exceeded ({budget_ms} ms)")
            }
            ServiceError::Overloaded => f.write_str("server overloaded, request shed"),
            ServiceError::Internal(m) => write!(f, "internal error: {m}"),
        }
    }
}

impl std::error::Error for ServiceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable_and_distinct() {
        let all = [
            ServiceError::BadRequest(String::new()),
            ServiceError::Compile(String::new()),
            ServiceError::Timeout { budget_ms: 1 },
            ServiceError::Overloaded,
            ServiceError::Internal(String::new()),
        ];
        let codes: Vec<&str> = all.iter().map(|e| e.code()).collect();
        assert_eq!(codes, ["bad_request", "compile_error", "timeout", "overloaded", "internal"]);
        let mut dedup = codes.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), codes.len());
    }
}
