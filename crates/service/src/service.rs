//! The service core: everything `pitchforkd` does, minus the sockets.
//!
//! [`Service::handle`] maps one parsed [`Request`] to one JSON
//! response, and is safe to call from any number of threads at once.
//! The pieces:
//!
//! * a **selector registry** — one warm [`Pitchfork`] (rule sets loaded
//!   and indexed) per distinct compiler configuration, built on first
//!   use and kept for the life of the server;
//! * the **artifact cache** — content-addressed, byte-bounded LRU with
//!   single-flight deduplication ([`crate::cache`]);
//! * **admission control** — cache-missing compilations run on a
//!   bounded [`TaskQueue`]; when the queue is full the request is shed
//!   with [`ServiceError::Overloaded`] instead of piling on;
//! * **deadlines** — a request's `timeout_ms` covers queueing and
//!   compiling; the compile checks it between pipeline phases via the
//!   driver's cancellation hook, and flight waiters time out
//!   independently while the flight continues for the others.
//!
//! Served results are **bit-identical** to a direct
//! [`pitchfork::compile_to_executable`] call with the same
//! configuration — the cache stores exactly what the driver produced,
//! and execution uses the same linked executable.

use crate::cache::{Cache, CacheError, CacheStats, Source};
use crate::error::ServiceError;
use crate::json::Json;
use crate::key::{engine_bits, ruleset_fingerprint, CacheKey};
use crate::protocol::{error_response, ok_response, CompileSpec, ImageSpec, Request, StatsFormat};
use crate::stats::Stats;
use crate::store::{self, DiskStore, Lookup};
use fpir::expr::RcExpr;
use fpir::interp::{Env, Value};
use fpir_halide::{run_tiled_exe, Image, Pipeline};
use fpir_pool::TaskQueue;
use pitchfork::{compile_to_executable_with, Artifact, Config, DriverError, Pitchfork};
use std::collections::{BTreeMap, HashMap};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Tunables for one [`Service`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Artifact-cache byte budget.
    pub cache_bytes: usize,
    /// Compile worker threads.
    pub workers: usize,
    /// Bounded compile-queue capacity (admission control).
    pub queue_capacity: usize,
    /// Deadline applied when a request doesn't carry its own.
    pub default_timeout_ms: Option<u64>,
    /// Spill directory for the on-disk artifact store. `None` disables
    /// persistence; with a directory, compiled artifacts are written
    /// through and re-admitted on the next startup (restart-warm).
    pub cache_dir: Option<PathBuf>,
    /// Disk-store byte budget: after startup and after every spill, an
    /// LRU sweep (by mtime, refreshed on disk hits) unlinks the oldest
    /// entries until the directory fits. `None` leaves it unbounded.
    pub cache_max_bytes: Option<u64>,
    /// Disk-store idle bound: entries not spilled or hit for this long
    /// are unlinked by the same sweep. `None` disables expiry.
    pub cache_max_age: Option<Duration>,
}

impl Default for ServiceConfig {
    fn default() -> ServiceConfig {
        let workers = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(2).min(8);
        ServiceConfig {
            cache_bytes: 64 << 20,
            workers,
            queue_capacity: workers * 8,
            default_timeout_ms: None,
            cache_dir: None,
            cache_max_bytes: None,
            cache_max_age: None,
        }
    }
}

/// One warm selector: the `Pitchfork` instance plus its precomputed
/// rule-set fingerprint (hashing every rule per request would defeat
/// the point of keeping the selector warm).
#[derive(Debug)]
struct Selector {
    pf: Pitchfork,
    rules_fp: u64,
}

/// The part of a [`CompileSpec`] that picks a selector (everything but
/// the expression and the deadline).
type SelectorKey = (fpir::Isa, (bool, bool, bool), bool, Option<String>);

/// Where a cache-missing compilation runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Compiler {
    /// On the service's internal bounded queue (direct callers).
    Queued,
    /// On the calling thread (the event loop's dispatch workers).
    Inline,
}

/// What the cache stores for one key: the driver's artifact plus the
/// response strings rendered once at insert time, so a cache hit clones
/// bytes instead of re-rendering the program on every request.
#[derive(Debug)]
struct Served {
    art: Artifact,
    lowered: String,
    program: String,
    /// The complete `compile`-hit response, rendered once at insert
    /// time. The event loop answers a warm `compile` by splicing a tag
    /// into a clone of these bytes — no JSON tree is built or rendered
    /// on the hot path.
    hit_body: String,
}

impl Served {
    fn new(art: Artifact, key_fp: u64) -> Served {
        let lowered = art.lowered.to_string();
        let program = art.program.render();
        let mut served = Served { art, lowered, program, hit_body: String::new() };
        served.hit_body =
            ok_response(Service::compile_members(key_fp, &served, Source::Hit)).render();
        served
    }

    /// Bytes charged against the cache budget: the artifact's estimate
    /// plus the rendered strings kept alongside it. The pre-rendered
    /// hit body is excluded so the echoed `artifact_bytes` member is
    /// identical for hits and misses; it is the same order of magnitude
    /// as `program`, which is charged.
    fn approx_bytes(&self) -> usize {
        self.art.approx_bytes() + self.lowered.len() + self.program.len()
    }
}

/// How the event loop answers a request that did not need a worker:
/// either a JSON value to render, or response bytes pre-rendered at
/// cache-insert time (a warm `compile`).
#[derive(Debug)]
pub enum FastReply {
    /// Render-and-send.
    Json(Json),
    /// Already-rendered response object; send the bytes verbatim.
    Raw(String),
}

/// How the event loop should treat one ready frame: answer it from
/// warm state, hand it to a worker, or — for a key this daemon has
/// neither in memory nor on disk — optionally ask the key's owning
/// peer before the worker compiles it locally.
#[derive(Debug)]
pub enum CacheDecision {
    /// Answerable right now; no worker needed.
    Reply(FastReply),
    /// Needs a worker (compile, run, warm pipeline execution, or a
    /// refill the local disk store can satisfy).
    Dispatch,
    /// Needs a worker *and* the key is absent locally: a peering event
    /// loop may first ask the key's owner for the artifact. Purely an
    /// optimization — dispatching directly is always correct.
    MissRemote(CacheKey),
}

/// The concurrent compile-and-run service.
#[derive(Debug)]
pub struct Service {
    config: ServiceConfig,
    selectors: Mutex<HashMap<SelectorKey, Arc<Selector>>>,
    cache: Cache<CacheKey, Served, ServiceError>,
    store: Option<DiskStore>,
    queue: TaskQueue,
    stats: Stats,
    /// Monotonic rule-set generation. Anything memoizing *rendered
    /// responses* outside the cache (the event loop's hot-request memo)
    /// records the generation it was seeded under and must discard
    /// entries from older generations. Today rule sets are fixed at
    /// startup, so this only moves when tests (or a future rule-reload
    /// path) bump it — but the memo checks it on every hit, so reloads
    /// can never serve another configuration's bytes.
    rules_gen: AtomicU64,
}

impl Service {
    /// Build a service and warm the default selector for every ISA, so
    /// the first request doesn't pay rule-set construction. With a
    /// `cache_dir`, the spill directory is scanned and every valid
    /// entry re-admitted into the cache before the service is handed
    /// out (restart-warm).
    pub fn new(config: ServiceConfig) -> Service {
        let store = config.cache_dir.as_ref().and_then(|dir| match DiskStore::open(dir) {
            Ok(s) => Some(s.with_limits(config.cache_max_bytes, config.cache_max_age)),
            Err(e) => {
                eprintln!(
                    "pitchforkd: cannot open cache dir {}: {e}; persistence disabled",
                    dir.display()
                );
                None
            }
        });
        let svc = Service {
            cache: Cache::new(config.cache_bytes),
            queue: TaskQueue::new(config.workers, config.queue_capacity),
            stats: Stats::new(),
            selectors: Mutex::new(HashMap::new()),
            store,
            rules_gen: AtomicU64::new(1),
            config,
        };
        for isa in fpir::machine::ALL_ISAS {
            let spec = CompileSpec {
                expr: String::new(),
                lanes: 1,
                isa,
                engine: pitchfork::EngineConfig::FAST,
                synthesized_rules: true,
                leave_out: None,
                timeout_ms: None,
            };
            let _ = svc.selector(&spec);
        }
        if let Some(store) = &svc.store {
            let report = store.scan(|key, art| {
                let served = Served::new(art, key.fingerprint());
                let bytes = served.approx_bytes();
                svc.cache.insert(key, served, bytes);
            });
            svc.stats.disk_loaded.fetch_add(report.loaded, Ordering::Relaxed);
            svc.stats.disk_rejected.fetch_add(report.rejected, Ordering::Relaxed);
            // Enforce the size/age bounds on whatever the scan left;
            // re-admitted cache entries stay warm even if their disk
            // copy is swept.
            let gc = store.gc();
            if gc.evicted > 0 {
                svc.stats.disk_evicted.fetch_add(gc.evicted, Ordering::Relaxed);
                eprintln!(
                    "pitchforkd: spill GC evicted {} entries at startup ({} bytes retained)",
                    gc.evicted, gc.retained_bytes
                );
            }
        }
        svc
    }

    /// The configuration the service was built with.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// The request counters (shared with the server's `/stats`).
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// Cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Compile tasks currently queued (admission-control depth).
    pub fn queue_depth(&self) -> usize {
        self.queue.depth()
    }

    /// The current rule-set generation (see the field doc on
    /// `rules_gen`). Response memos outside the cache key on this.
    pub fn rules_generation(&self) -> u64 {
        self.rules_gen.load(Ordering::Relaxed)
    }

    /// Invalidate every externally-memoized rendered response by
    /// advancing the rule-set generation. Call whenever the loaded rule
    /// sets could have changed.
    pub fn bump_rules_generation(&self) {
        self.rules_gen.fetch_add(1, Ordering::Relaxed);
    }

    /// The warm selector for a spec's compiler configuration.
    fn selector(&self, spec: &CompileSpec) -> Arc<Selector> {
        let key: SelectorKey =
            (spec.isa, engine_bits(spec.engine), spec.synthesized_rules, spec.leave_out.clone());
        let mut map = self.selectors.lock().expect("selector lock");
        if let Some(s) = map.get(&key) {
            return s.clone();
        }
        let mut cfg = Config::new(spec.isa).with_engine(spec.engine);
        if !spec.synthesized_rules {
            cfg = cfg.hand_written_only();
        }
        if let Some(l) = &spec.leave_out {
            cfg = cfg.leaving_out(l.clone());
        }
        let pf = Pitchfork::with_config(cfg);
        let s = Arc::new(Selector { rules_fp: ruleset_fingerprint(&pf), pf });
        map.insert(key, s.clone());
        s
    }

    /// Handle one request, returning the response frame. Never panics
    /// on request content; all failures become `{"ok": false}` frames.
    /// Cache-missing compilations run on the service's internal bounded
    /// worker queue (admission control for direct in-process callers).
    pub fn handle(&self, req: &Request) -> Json {
        self.handle_on(req, Compiler::Queued)
    }

    /// Like [`handle`](Self::handle), but cache-missing compilations run
    /// inline on the calling thread. The event loop's dispatch workers
    /// use this: the request already sits on a bounded worker, and
    /// hopping through the internal compile queue again would only add
    /// latency (and a second admission gate). Single-flight
    /// deduplication still applies — concurrent identical requests share
    /// one inline compile.
    pub fn handle_local(&self, req: &Request) -> Json {
        self.handle_on(req, Compiler::Inline)
    }

    fn handle_on(&self, req: &Request, compiler: Compiler) -> Json {
        Stats::bump(&self.stats.requests);
        let started = Instant::now();
        let out = match req {
            Request::Ping => Ok(ok_response(vec![("pong".into(), Json::Bool(true))])),
            Request::Stats { format } => Ok(match format {
                StatsFormat::Json => self.stats_response(),
                StatsFormat::Text => ok_response(vec![
                    ("format".into(), Json::str("text")),
                    ("text".into(), Json::str(self.stats_text())),
                ]),
            }),
            Request::Shutdown => {
                // The transport layer watches for this op; the core just
                // acknowledges it.
                Ok(ok_response(vec![("stopping".into(), Json::Bool(true))]))
            }
            Request::Compile(spec) => self.handle_compile(spec, compiler),
            Request::Run { spec, inputs } => self.handle_run(spec, inputs, compiler),
            Request::RunPipeline { spec, inputs, jobs } => {
                self.handle_run_pipeline(spec, inputs, *jobs, compiler)
            }
            Request::PeerGet { spec, rules_fp } => self.handle_peer_get(spec, *rules_fp, compiler),
        };
        self.finish(started, out)
    }

    /// Answer a request from warm state only, without ever blocking on
    /// a compile: `None` means "dispatch this to a worker". The event
    /// loop calls [`classify`](Self::classify) for the same decision
    /// plus the miss's cache key (for peer forwarding); this wrapper
    /// keeps the simpler reply-or-dispatch view.
    pub fn handle_cached(&self, req: &Request) -> Option<FastReply> {
        match self.classify(req) {
            CacheDecision::Reply(r) => Some(r),
            CacheDecision::Dispatch | CacheDecision::MissRemote(_) => None,
        }
    }

    /// Classify one ready frame: answer it inline from warm state,
    /// dispatch it to a worker, or report a true local miss along with
    /// its cache key so a peering event loop can consult the key's
    /// owner first. Never blocks on a compile.
    pub fn classify(&self, req: &Request) -> CacheDecision {
        let spec = match req {
            // Control ops never compile; answer inline.
            Request::Ping | Request::Stats { .. } | Request::Shutdown => {
                return CacheDecision::Reply(FastReply::Json(self.handle(req)));
            }
            Request::Compile(spec)
            | Request::Run { spec, .. }
            | Request::RunPipeline { spec, .. } => spec,
            // A sibling's lookup is answered by a worker and is never
            // forwarded again — ownership is a function of the key, so
            // a second hop could only be a routing loop.
            Request::PeerGet { .. } => return CacheDecision::Dispatch,
        };
        let started = Instant::now();
        let Ok(expr) = fpir::parser::parse_expr(&spec.expr, spec.lanes) else {
            // Malformed expressions are cheap to reject inline.
            return CacheDecision::Reply(FastReply::Json(self.handle(req)));
        };
        let selector = self.selector(spec);
        let key = CacheKey {
            expr: expr.to_string(),
            lanes: spec.lanes,
            isa: spec.isa,
            engine: engine_bits(spec.engine),
            synthesized_rules: spec.synthesized_rules,
            leave_out: spec.leave_out.clone(),
            rules_fp: selector.rules_fp,
        };
        let Some(served) = self.cache.try_get(&key) else {
            // A disk-resident key refills locally (cheaper than any
            // network hop); only a true local miss is worth a peer ask.
            if self.store.as_ref().is_some_and(|s| s.contains(&key)) {
                return CacheDecision::Dispatch;
            }
            return CacheDecision::MissRemote(key);
        };
        match req {
            Request::Compile(_) => {
                Stats::bump(&self.stats.requests);
                Stats::bump(&self.stats.cache_hits);
                let body = served.hit_body.clone();
                self.stats.record_latency_us(started.elapsed().as_micros() as u64);
                CacheDecision::Reply(FastReply::Raw(body))
            }
            Request::Run { inputs, .. } => {
                Stats::bump(&self.stats.requests);
                Stats::bump(&self.stats.cache_hits);
                let out = self.run_response(&expr, key.fingerprint(), &served, Source::Hit, inputs);
                CacheDecision::Reply(FastReply::Json(self.finish(started, out)))
            }
            // Whole-image runs are real work even when the artifact is
            // warm; always dispatch (the worker's own accounting
            // applies — counting here too would double-book).
            Request::RunPipeline { .. } => CacheDecision::Dispatch,
            _ => unreachable!("filtered above"),
        }
    }

    /// Success records a latency sample; failure maps onto the shed /
    /// timeout / error counters and the structured error frame.
    fn finish(&self, started: Instant, out: Result<Json, ServiceError>) -> Json {
        match out {
            Ok(v) => {
                self.stats.record_latency_us(started.elapsed().as_micros() as u64);
                v
            }
            Err(e) => {
                match e {
                    ServiceError::Overloaded => Stats::bump(&self.stats.sheds),
                    ServiceError::Timeout { .. } => Stats::bump(&self.stats.timeouts),
                    _ => Stats::bump(&self.stats.errors),
                }
                error_response(&e)
            }
        }
    }

    /// Parse the expression and fetch-or-compile its artifact. Also
    /// returns the cache key's fingerprint (computed once here; the
    /// response members echo it).
    fn artifact(
        &self,
        spec: &CompileSpec,
        compiler: Compiler,
    ) -> Result<(RcExpr, u64, Arc<Served>, Source), ServiceError> {
        let expr = fpir::parser::parse_expr(&spec.expr, spec.lanes)
            .map_err(|e| ServiceError::BadRequest(format!("expression: {e}")))?;
        let selector = self.selector(spec);
        let key = CacheKey {
            expr: expr.to_string(),
            lanes: spec.lanes,
            isa: spec.isa,
            engine: engine_bits(spec.engine),
            synthesized_rules: spec.synthesized_rules,
            leave_out: spec.leave_out.clone(),
            rules_fp: selector.rules_fp,
        };
        let key_fp = key.fingerprint();
        let timeout_ms = spec.timeout_ms.or(self.config.default_timeout_ms);
        let deadline = timeout_ms.map(|ms| Instant::now() + Duration::from_millis(ms));

        let computed = self.cache.get_or_compute(&key, deadline, || {
            // The single-flight leader tries the disk store first: a
            // previously-evicted (or previous-process) artifact refills
            // without compiling, and concurrent requests join the
            // refill exactly like a compile.
            if let Some(art) = self.fetch_from_disk(&key) {
                let served = Served::new(art, key_fp);
                let bytes = served.approx_bytes();
                return Ok((served, bytes));
            }
            let r = match compiler {
                Compiler::Queued => {
                    self.compile_on_queue(&selector, &expr, key_fp, deadline, timeout_ms)
                }
                Compiler::Inline => {
                    self.compile_now(&selector, &expr, key_fp, deadline, timeout_ms)
                }
            };
            if let Ok((served, _)) = &r {
                self.spill(&key, &served.art);
            }
            r
        });
        match computed {
            Ok((art, source)) => {
                match source {
                    Source::Hit => Stats::bump(&self.stats.cache_hits),
                    Source::Computed => Stats::bump(&self.stats.cache_misses),
                    Source::Joined => Stats::bump(&self.stats.flight_joins),
                }
                Ok((expr, key_fp, art, source))
            }
            Err(CacheError::Compute(e)) => Err(e),
            Err(CacheError::TimedOut) => {
                Err(ServiceError::Timeout { budget_ms: timeout_ms.unwrap_or(0) })
            }
        }
    }

    /// The single-flight leader's compute: run the driver on a bounded
    /// worker, enforcing admission control and the deadline.
    fn compile_on_queue(
        &self,
        selector: &Arc<Selector>,
        expr: &RcExpr,
        key_fp: u64,
        deadline: Option<Instant>,
        timeout_ms: Option<u64>,
    ) -> Result<(Served, usize), ServiceError> {
        let (tx, rx) = mpsc::channel();
        let selector = selector.clone();
        let expr = expr.clone();
        self.queue
            .try_submit(Box::new(move || {
                // The deadline covers time spent queued: if the task
                // starts too late, the first phase check cancels it.
                let mut keep_going = |_p| deadline.is_none_or(|d| Instant::now() < d);
                let r = compile_to_executable_with(&selector.pf, &expr, &mut keep_going);
                let _ = tx.send(r.map(|(art, _)| art));
            }))
            .map_err(|_| ServiceError::Overloaded)?;
        // The worker always sends (cancellation happens inside the
        // compile), so this blocks at most until the task's next
        // deadline check.
        match rx.recv() {
            Ok(r) => self.admit_artifact(r, key_fp, timeout_ms),
            Err(_) => Err(ServiceError::Internal("compile worker disappeared".into())),
        }
    }

    /// The single-flight leader's compute on the calling thread (the
    /// event loop's dispatch workers — already bounded, no second hop).
    fn compile_now(
        &self,
        selector: &Arc<Selector>,
        expr: &RcExpr,
        key_fp: u64,
        deadline: Option<Instant>,
        timeout_ms: Option<u64>,
    ) -> Result<(Served, usize), ServiceError> {
        let mut keep_going = |_p| deadline.is_none_or(|d| Instant::now() < d);
        let r = compile_to_executable_with(&selector.pf, expr, &mut keep_going);
        self.admit_artifact(r.map(|(art, _)| art), key_fp, timeout_ms)
    }

    /// Map a driver result onto cache-insertable state, auditing the
    /// artifact in debug builds.
    fn admit_artifact(
        &self,
        r: Result<Artifact, DriverError>,
        key_fp: u64,
        timeout_ms: Option<u64>,
    ) -> Result<(Served, usize), ServiceError> {
        match r {
            Ok(art) => {
                Stats::bump(&self.stats.compiles);
                // Debug builds audit every artifact entering the cache
                // with the static verifier; a cached artifact is served
                // to every later hit, so a malformed one must never get
                // in. Mirrors the gate inside `Executable::link` and
                // catches corruption between compile and insert.
                #[cfg(debug_assertions)]
                if let Err(v) = fpir_sim::verify_executable(&art.exe) {
                    panic!("refusing to cache an unverifiable artifact: {v}");
                }
                let served = Served::new(art, key_fp);
                let bytes = served.approx_bytes();
                Ok((served, bytes))
            }
            Err(DriverError::Cancelled(_)) => {
                Err(ServiceError::Timeout { budget_ms: timeout_ms.unwrap_or(0) })
            }
            Err(e) => Err(ServiceError::Compile(e.to_string())),
        }
    }

    /// Leader-side disk probe: a validated spill entry becomes the
    /// flight's value without compiling.
    fn fetch_from_disk(&self, key: &CacheKey) -> Option<Artifact> {
        match self.store.as_ref()?.load(key) {
            Lookup::Missing => None,
            Lookup::Hit(art) => {
                Stats::bump(&self.stats.disk_hits);
                Some(*art)
            }
            Lookup::Rejected(e) => {
                Stats::bump(&self.stats.disk_rejected);
                eprintln!("pitchforkd: rejected spill entry {:016x}: {e}", key.fingerprint());
                None
            }
        }
    }

    /// Write-through to the disk store. Failure is logged and swallowed
    /// — persistence is an optimization, never on the serving path.
    fn spill(&self, key: &CacheKey, art: &Artifact) {
        let Some(store) = &self.store else { return };
        match store.spill(key, art) {
            Ok(()) => {
                Stats::bump(&self.stats.disk_spills);
                // Keep the directory within its bounds as it grows; a
                // no-op unless limits are configured.
                let gc = store.gc();
                if gc.evicted > 0 {
                    self.stats.disk_evicted.fetch_add(gc.evicted, Ordering::Relaxed);
                }
            }
            Err(e) => eprintln!("pitchforkd: spill of {:016x} failed: {e}", key.fingerprint()),
        }
    }

    /// Admit an artifact a peer returned for `expected`. The payload is
    /// untrusted input: it is decoded, rebuilt, and verified end to end
    /// (see [`store::decode_artifact_json`]), and the embedded key must
    /// equal the one this daemon asked for. On success the artifact is
    /// spilled and inserted, so dispatching the originating request
    /// lands on a warm cache.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Internal`] describing why the payload was
    /// refused; the caller degrades to a local compile.
    pub fn admit_peer_artifact(
        &self,
        expected: &CacheKey,
        artifact: &Json,
    ) -> Result<(), ServiceError> {
        let (key, art) = store::decode_artifact_json(artifact)
            .map_err(|e| ServiceError::Internal(format!("peer artifact rejected: {e}")))?;
        if key != *expected {
            return Err(ServiceError::Internal("peer answered for a different key".into()));
        }
        self.spill(&key, &art);
        let served = Served::new(art, key.fingerprint());
        let bytes = served.approx_bytes();
        self.cache.insert(key, served, bytes);
        Ok(())
    }

    /// Serve a sibling daemon's `peer_get`: fetch-or-compile the key
    /// (this is what concentrates each key's one fleet-wide compile at
    /// its owner) and return the portable artifact encoding. A rule-set
    /// fingerprint mismatch answers `found: false` — this daemon's
    /// bytes belong to a different configuration than the requester's.
    fn handle_peer_get(
        &self,
        spec: &CompileSpec,
        rules_fp: u64,
        compiler: Compiler,
    ) -> Result<Json, ServiceError> {
        Stats::bump(&self.stats.peer_serves);
        let not_found = |reason: &str| {
            Ok(ok_response(vec![
                ("found".into(), Json::Bool(false)),
                ("reason".into(), Json::str(reason)),
            ]))
        };
        let selector = self.selector(spec);
        if selector.rules_fp != rules_fp {
            return not_found("rules_mismatch");
        }
        let expr = fpir::parser::parse_expr(&spec.expr, spec.lanes)
            .map_err(|e| ServiceError::BadRequest(format!("expression: {e}")))?;
        let key = CacheKey {
            expr: expr.to_string(),
            lanes: spec.lanes,
            isa: spec.isa,
            engine: engine_bits(spec.engine),
            synthesized_rules: spec.synthesized_rules,
            leave_out: spec.leave_out.clone(),
            rules_fp: selector.rules_fp,
        };
        let (_, _, served, _) = self.artifact(spec, compiler)?;
        match store::encode_artifact_json(&key, &served.art) {
            Ok(body) => {
                Ok(ok_response(vec![("found".into(), Json::Bool(true)), ("artifact".into(), body)]))
            }
            Err(e) => not_found(&e.to_string()),
        }
    }

    fn compile_members(key_fp: u64, served: &Served, source: Source) -> Vec<(String, Json)> {
        vec![
            ("cached".into(), Json::Bool(source == Source::Hit)),
            (
                "source".into(),
                Json::str(match source {
                    Source::Hit => "hit",
                    Source::Computed => "computed",
                    Source::Joined => "joined",
                }),
            ),
            ("key".into(), Json::str(format!("{key_fp:016x}"))),
            ("isa".into(), Json::str(served.art.isa.short_name())),
            ("lowered".into(), Json::str(served.lowered.clone())),
            ("program".into(), Json::str(served.program.clone())),
            ("cycles".into(), Json::Int(served.art.cycles.into())),
            ("ops".into(), Json::Int(served.art.exe.op_count() as i128)),
            ("artifact_bytes".into(), Json::Int(served.approx_bytes() as i128)),
        ]
    }

    fn handle_compile(&self, spec: &CompileSpec, compiler: Compiler) -> Result<Json, ServiceError> {
        let (_, key_fp, served, source) = self.artifact(spec, compiler)?;
        Ok(ok_response(Self::compile_members(key_fp, &served, source)))
    }

    fn handle_run(
        &self,
        spec: &CompileSpec,
        inputs: &[(String, Vec<i128>)],
        compiler: Compiler,
    ) -> Result<Json, ServiceError> {
        let (expr, key_fp, served, source) = self.artifact(spec, compiler)?;
        self.run_response(&expr, key_fp, &served, source, inputs)
    }

    /// Execute a warm artifact over one environment of vectors.
    fn run_response(
        &self,
        expr: &RcExpr,
        key_fp: u64,
        served: &Served,
        source: Source,
        inputs: &[(String, Vec<i128>)],
    ) -> Result<Json, ServiceError> {
        // Bind every free variable, validating counts and ranges before
        // constructing `Value`s (whose constructors panic on bad data).
        // Inputs may be keyed either by the bare variable name (`a`) or
        // by its printed, type-suffixed form (`a_u8`).
        let mut env = Env::new();
        for (name, ty) in expr.free_vars() {
            let printed = format!("{name}_{}", ty.elem);
            let lanes = inputs
                .iter()
                .find(|(n, _)| *n == name || *n == printed)
                .map(|(_, v)| v)
                .ok_or_else(|| ServiceError::BadRequest(format!("missing input `{name}`")))?;
            if lanes.len() != ty.lanes as usize {
                return Err(ServiceError::BadRequest(format!(
                    "input `{name}` has {} lanes, expected {}",
                    lanes.len(),
                    ty.lanes
                )));
            }
            if let Some(&v) = lanes.iter().find(|&&v| !ty.elem.contains(v)) {
                return Err(ServiceError::BadRequest(format!(
                    "input `{name}`: {v} does not fit in {}",
                    ty.elem
                )));
            }
            env.insert(name, Value::new(ty, lanes.clone()));
        }
        let mut ctx = served.art.exe.new_ctx();
        let out = served
            .art
            .exe
            .run(&mut ctx, &env)
            .map_err(|e| ServiceError::Internal(format!("execution failed: {e}")))?;
        let mut members = Self::compile_members(key_fp, served, source);
        members.push(("elem".into(), Json::str(out.ty().elem.to_string())));
        members.push((
            "output".into(),
            Json::Array(out.lanes().iter().map(|&v| Json::Int(v)).collect()),
        ));
        Ok(ok_response(members))
    }

    fn handle_run_pipeline(
        &self,
        spec: &CompileSpec,
        inputs: &[(String, ImageSpec)],
        jobs: usize,
        compiler: Compiler,
    ) -> Result<Json, ServiceError> {
        let (expr, key_fp, served, source) = self.artifact(spec, compiler)?;
        let pipe = Pipeline::try_new("served", expr.clone())
            .map_err(|e| ServiceError::BadRequest(e.what))?;
        let mut images = BTreeMap::new();
        for (name, img) in inputs {
            // `ImageSpec` is validated at parse time (rectangular,
            // in-range for its element type), which is exactly what
            // `Image::from_rows` requires.
            images.insert(name.clone(), Image::from_rows(img.elem, &img.rows));
        }
        let out = run_tiled_exe(&pipe, &served.art.exe, &images, jobs)
            .map_err(|e| ServiceError::BadRequest(e.what))?;
        let mut members = Self::compile_members(key_fp, &served, source);
        members.push(("elem".into(), Json::str(out.elem().to_string())));
        members.push(("width".into(), Json::Int(out.width() as i128)));
        members.push(("height".into(), Json::Int(out.height() as i128)));
        let rows: Vec<Json> = (0..out.height())
            .map(|y| {
                Json::Array(
                    (0..out.width())
                        .map(|x| Json::Int(out.get_clamped(x as i64, y as i64)))
                        .collect(),
                )
            })
            .collect();
        members.push(("rows".into(), Json::Array(rows)));
        Ok(ok_response(members))
    }

    /// Every stat as `(name, integer)` — the shared source for both the
    /// JSON `stats` payload and the plaintext scrape format.
    fn stat_members(&self) -> Vec<(String, Json)> {
        let c = self.cache.stats();
        let l = self.stats.latency_summary();
        vec![
            ("requests".into(), Json::Int(Stats::read(&self.stats.requests).into())),
            ("cache_hits".into(), Json::Int(Stats::read(&self.stats.cache_hits).into())),
            ("cache_misses".into(), Json::Int(Stats::read(&self.stats.cache_misses).into())),
            ("flight_joins".into(), Json::Int(Stats::read(&self.stats.flight_joins).into())),
            ("compiles".into(), Json::Int(Stats::read(&self.stats.compiles).into())),
            ("sheds".into(), Json::Int(Stats::read(&self.stats.sheds).into())),
            ("timeouts".into(), Json::Int(Stats::read(&self.stats.timeouts).into())),
            ("errors".into(), Json::Int(Stats::read(&self.stats.errors).into())),
            ("disk_hits".into(), Json::Int(Stats::read(&self.stats.disk_hits).into())),
            ("disk_spills".into(), Json::Int(Stats::read(&self.stats.disk_spills).into())),
            ("disk_loaded".into(), Json::Int(Stats::read(&self.stats.disk_loaded).into())),
            ("disk_rejected".into(), Json::Int(Stats::read(&self.stats.disk_rejected).into())),
            ("disk_evicted".into(), Json::Int(Stats::read(&self.stats.disk_evicted).into())),
            ("peer_hits".into(), Json::Int(Stats::read(&self.stats.peer_hits).into())),
            ("peer_misses".into(), Json::Int(Stats::read(&self.stats.peer_misses).into())),
            ("peer_timeouts".into(), Json::Int(Stats::read(&self.stats.peer_timeouts).into())),
            ("peer_errors".into(), Json::Int(Stats::read(&self.stats.peer_errors).into())),
            ("peer_serves".into(), Json::Int(Stats::read(&self.stats.peer_serves).into())),
            ("hot_hits".into(), Json::Int(Stats::read(&self.stats.hot_hits).into())),
            ("cache_resident_bytes".into(), Json::Int(c.resident_bytes as i128)),
            ("cache_resident_count".into(), Json::Int(c.resident_count as i128)),
            ("cache_evictions".into(), Json::Int(c.evictions as i128)),
            ("cache_budget_bytes".into(), Json::Int(self.cache.budget_bytes() as i128)),
            ("queue_depth".into(), Json::Int(self.queue.depth() as i128)),
            ("queue_capacity".into(), Json::Int(self.queue.capacity() as i128)),
            ("workers".into(), Json::Int(self.queue.workers() as i128)),
            (
                "open_connections".into(),
                Json::Int(Stats::read(&self.stats.open_connections).into()),
            ),
            ("inflight_frames".into(), Json::Int(Stats::read(&self.stats.inflight_frames).into())),
            (
                "dispatch_queue_depth".into(),
                Json::Int(Stats::read(&self.stats.dispatch_queue_depth).into()),
            ),
            (
                "dispatch_batch_max".into(),
                Json::Int(Stats::read(&self.stats.dispatch_batch_max).into()),
            ),
            ("latency_count".into(), Json::Int(l.count as i128)),
            ("latency_p50_us".into(), Json::Int(l.p50_us.into())),
            ("latency_p99_us".into(), Json::Int(l.p99_us.into())),
            ("latency_max_us".into(), Json::Int(l.max_us.into())),
        ]
    }

    /// The `/stats` payload.
    fn stats_response(&self) -> Json {
        ok_response(self.stat_members())
    }

    /// The Prometheus-style plaintext scrape: one `pitchforkd_<name>
    /// <value>` line per stat, same names and order as the JSON form.
    pub fn stats_text(&self) -> String {
        let mut out = String::new();
        for (name, value) in self.stat_members() {
            if let Json::Int(n) = value {
                out.push_str("pitchforkd_");
                out.push_str(&name);
                out.push(' ');
                out.push_str(&n.to_string());
                out.push('\n');
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::parse_request;

    fn service() -> Service {
        Service::new(ServiceConfig {
            cache_bytes: 16 << 20,
            workers: 2,
            queue_capacity: 8,
            default_timeout_ms: None,
            cache_dir: None,
            cache_max_bytes: None,
            cache_max_age: None,
        })
    }

    fn handle_src(svc: &Service, src: &str) -> Json {
        let frame = crate::json::parse(src).unwrap();
        match parse_request(&frame) {
            Ok(req) => svc.handle(&req),
            Err(e) => error_response(&e),
        }
    }

    const SAT_ADD: &str = "u8(min(u16(a_u8) + u16(b_u8), 255))";

    #[test]
    fn ping_pongs() {
        let svc = service();
        let v = handle_src(&svc, r#"{"op":"ping"}"#);
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("pong").unwrap().as_bool(), Some(true));
    }

    #[test]
    fn compile_then_hit() {
        let svc = service();
        let req = format!(r#"{{"op":"compile","expr":"{SAT_ADD}","lanes":16,"isa":"arm"}}"#);
        let first = handle_src(&svc, &req);
        assert_eq!(first.get("ok").unwrap().as_bool(), Some(true), "{first:?}");
        assert_eq!(first.get("cached").unwrap().as_bool(), Some(false));
        assert_eq!(first.get("lowered").unwrap().as_str(), Some("arm.uqadd(a_u8, b_u8)"));

        let second = handle_src(&svc, &req);
        assert_eq!(second.get("cached").unwrap().as_bool(), Some(true));
        assert_eq!(second.get("source").unwrap().as_str(), Some("hit"));
        // Identical payload either way.
        assert_eq!(first.get("program"), second.get("program"));
        assert_eq!(first.get("key"), second.get("key"));
        assert_eq!(Stats::read(&svc.stats().compiles), 1);
    }

    #[test]
    fn served_compile_matches_direct_driver_call() {
        let svc = service();
        let req = format!(r#"{{"op":"compile","expr":"{SAT_ADD}","lanes":16,"isa":"x86"}}"#);
        let v = handle_src(&svc, &req);
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(true), "{v:?}");
        let pf = Pitchfork::new(fpir::Isa::X86Avx2);
        let e = fpir::parser::parse_expr(SAT_ADD, 16).unwrap();
        let direct = pitchfork::compile_to_executable(&pf, &e).unwrap();
        assert_eq!(v.get("lowered").unwrap().as_str(), Some(direct.lowered.to_string().as_str()));
        assert_eq!(v.get("program").unwrap().as_str(), Some(direct.program.render().as_str()));
        assert_eq!(v.get("cycles").unwrap().as_int(), Some(direct.cycles.into()));
    }

    #[test]
    fn run_executes_and_matches_the_interpreter() {
        let svc = service();
        let v = handle_src(
            &svc,
            &format!(
                r#"{{"op":"run","expr":"{SAT_ADD}","lanes":4,"isa":"arm",
                    "inputs":{{"a_u8":[250,1,128,255],"b_u8":[10,2,128,255]}}}}"#
            ),
        );
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(true), "{v:?}");
        let out: Vec<i128> = v
            .get("output")
            .unwrap()
            .as_array()
            .unwrap()
            .iter()
            .map(|x| x.as_int().unwrap())
            .collect();
        assert_eq!(out, vec![255, 3, 255, 255]);
        assert_eq!(v.get("elem").unwrap().as_str(), Some("u8"));
    }

    #[test]
    fn run_pipeline_matches_reference() {
        let svc = service();
        // Rounding average of in(x,y) and in(x+1,y).
        let expr = "rounding_halving_add(in__p0_p0_u8, in__p1_p0_u8)";
        let v = handle_src(
            &svc,
            &format!(
                r#"{{"op":"run_pipeline","expr":"{expr}","lanes":4,"isa":"hvx",
                    "inputs":{{"in":{{"elem":"u8","rows":[[10,20,30,40]]}}}},"jobs":2}}"#
            ),
        );
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(true), "{v:?}");
        let rows = v.get("rows").unwrap().as_array().unwrap();
        let row0: Vec<i128> =
            rows[0].as_array().unwrap().iter().map(|x| x.as_int().unwrap()).collect();
        assert_eq!(row0, vec![15, 25, 35, 40]);
    }

    #[test]
    fn bad_requests_are_structured_errors() {
        let svc = service();
        // Unparseable expression.
        let v = handle_src(&svc, r#"{"op":"compile","expr":"][","lanes":4,"isa":"arm"}"#);
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(false));
        assert_eq!(v.get("code").unwrap().as_str(), Some("bad_request"));
        // Missing run input.
        let v = handle_src(
            &svc,
            &format!(r#"{{"op":"run","expr":"{SAT_ADD}","lanes":4,"isa":"arm","inputs":{{}}}}"#),
        );
        assert_eq!(v.get("code").unwrap().as_str(), Some("bad_request"));
        // Out-of-range lane.
        let v = handle_src(
            &svc,
            &format!(
                r#"{{"op":"run","expr":"{SAT_ADD}","lanes":4,"isa":"arm",
                    "inputs":{{"a_u8":[300,0,0,0],"b_u8":[0,0,0,0]}}}}"#
            ),
        );
        assert_eq!(v.get("code").unwrap().as_str(), Some("bad_request"));
        // Non-tap variables can't be served as a pipeline.
        let v = handle_src(
            &svc,
            &format!(
                r#"{{"op":"run_pipeline","expr":"{SAT_ADD}","lanes":4,"isa":"arm",
                    "inputs":{{"a":{{"elem":"u8","rows":[[1]]}}}}}}"#
            ),
        );
        assert_eq!(v.get("code").unwrap().as_str(), Some("bad_request"));
        // The error path leaves the service healthy.
        assert_eq!(handle_src(&svc, r#"{"op":"ping"}"#).get("ok").unwrap().as_bool(), Some(true));
    }

    #[test]
    fn uncompilable_expression_is_a_compile_error() {
        let svc = service();
        // 64-bit lanes don't exist on HVX.
        let v =
            handle_src(&svc, r#"{"op":"compile","expr":"a_i64 + b_i64","lanes":4,"isa":"hvx"}"#);
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(false));
        assert_eq!(v.get("code").unwrap().as_str(), Some("compile_error"));
    }

    #[test]
    fn stats_reflect_traffic() {
        let svc = service();
        let req = format!(r#"{{"op":"compile","expr":"{SAT_ADD}","lanes":16,"isa":"arm"}}"#);
        handle_src(&svc, &req);
        handle_src(&svc, &req);
        let v = handle_src(&svc, r#"{"op":"stats"}"#);
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("cache_hits").unwrap().as_int(), Some(1));
        assert_eq!(v.get("cache_misses").unwrap().as_int(), Some(1));
        assert_eq!(v.get("compiles").unwrap().as_int(), Some(1));
        assert_eq!(v.get("requests").unwrap().as_int(), Some(3));
        assert!(v.get("latency_p50_us").unwrap().as_int().is_some());
        assert!(v.get("cache_resident_bytes").unwrap().as_int().unwrap() > 0);
    }

    #[test]
    fn distinct_configs_do_not_share_artifacts() {
        let svc = service();
        let a = handle_src(
            &svc,
            &format!(r#"{{"op":"compile","expr":"{SAT_ADD}","lanes":16,"isa":"arm"}}"#),
        );
        let b = handle_src(
            &svc,
            &format!(
                r#"{{"op":"compile","expr":"{SAT_ADD}","lanes":16,"isa":"arm","synthesized_rules":false}}"#
            ),
        );
        assert_ne!(a.get("key"), b.get("key"));
        assert_eq!(Stats::read(&svc.stats().compiles), 2, "no false sharing");
    }

    #[test]
    fn tiny_deadline_times_out_and_cache_stays_consistent() {
        let svc = service();
        // A 1 ms budget that is already spent by the time the compile
        // task reaches its first phase check. (The queue wait plus
        // selector lookup comfortably exceeds it.)
        let req = format!(
            r#"{{"op":"compile","expr":"{SAT_ADD}","lanes":16,"isa":"x86","timeout_ms":1}}"#
        );
        // Burn the budget deterministically: the deadline is computed at
        // admission, so sleeping 2 ms inside the phase hook isn't
        // possible from here — instead rely on the first check seeing an
        // expired deadline only if the machine is slow. Accept either
        // outcome, but in both cases the cache must stay consistent.
        let v = handle_src(&svc, &req);
        let ok = v.get("ok").unwrap().as_bool() == Some(true);
        if !ok {
            assert_eq!(v.get("code").unwrap().as_str(), Some("timeout"));
        }
        // Either way, a follow-up request with a sane budget succeeds
        // and matches the direct compiler.
        let v2 = handle_src(
            &svc,
            &format!(r#"{{"op":"compile","expr":"{SAT_ADD}","lanes":16,"isa":"x86"}}"#),
        );
        assert_eq!(v2.get("ok").unwrap().as_bool(), Some(true), "{v2:?}");
        let pf = Pitchfork::new(fpir::Isa::X86Avx2);
        let e = fpir::parser::parse_expr(SAT_ADD, 16).unwrap();
        let direct = pitchfork::compile_to_executable(&pf, &e).unwrap();
        assert_eq!(v2.get("program").unwrap().as_str(), Some(direct.program.render().as_str()));
    }
}
