//! A small, dependency-free JSON value: parser, writer, accessors.
//!
//! The build environment has no crates registry, so the wire format is
//! hand-rolled. Two deliberate departures from a general-purpose JSON
//! library:
//!
//! * **integers are exact** — lane values are `i128`s up to 64 bits
//!   wide, which a float-only JSON number would silently round; numeric
//!   tokens without a fraction or exponent parse as [`Json::Int`] and
//!   are written back in full precision;
//! * **objects preserve insertion order** (a `Vec` of pairs, not a
//!   map), so every response serializes deterministically — byte-equal
//!   responses for byte-equal requests, which the service's equality
//!   gates rely on.
//!
//! The parser is a plain recursive-descent with a depth bound; it
//! rejects trailing input, so a frame is exactly one value.

use std::fmt::Write as _;

/// Maximum nesting depth the parser accepts (stack-overflow guard for
/// untrusted frames).
const MAX_DEPTH: usize = 64;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number written without fraction or exponent, kept exact.
    Int(i128),
    /// Any other number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object, in insertion order.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Shorthand for a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Member lookup on an object (first match wins).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer payload, if this is an exact integer.
    pub fn as_int(&self) -> Option<i128> {
        match self {
            Json::Int(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The member list, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Object(members) => Some(members),
            _ => None,
        }
    }

    /// Serialize to a compact string.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write_to(&mut out);
        out
    }

    fn write_to(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Int(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Float(x) => {
                if x.is_finite() {
                    let _ = write!(out, "{x}");
                    // `{}` on a whole f64 prints no fraction; keep the
                    // token a float so it round-trips as one.
                    if !out.ends_with(['.', 'e'])
                        && !out
                            .rsplit(['[', ',', ':', '{'])
                            .next()
                            .unwrap_or("")
                            .contains(['.', 'e'])
                    {
                        out.push_str(".0");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Array(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write_to(out);
                }
                out.push(']');
            }
            Json::Object(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write_to(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure, with a byte position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub what: String,
    /// Byte offset in the input.
    pub at: usize,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error at byte {}: {}", self.at, self.what)
    }
}

impl std::error::Error for JsonError {}

/// Parse exactly one JSON value (trailing non-whitespace is an error).
///
/// # Errors
///
/// [`JsonError`] on malformed input, over-deep nesting, or trailing
/// input.
pub fn parse(src: &str) -> Result<Json, JsonError> {
    let mut p = Parser { bytes: src.as_bytes(), src, pos: 0 };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing input"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    src: &'a str,
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, what: impl Into<String>) -> JsonError {
        JsonError { what: what.into(), at: self.pos }
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, c: u8) -> bool {
        if self.bytes.get(self.pos) == Some(&c) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), JsonError> {
        if self.eat(c) {
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", c as char)))
        }
    }

    fn keyword(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.src[self.pos..].starts_with(word) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected `{word}`")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.bytes.get(self.pos) {
            Some(b'n') => self.keyword("null", Json::Null),
            Some(b't') => self.keyword("true", Json::Bool(true)),
            Some(b'f') => self.keyword("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.eat(b']') {
                    return Ok(Json::Array(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.value(depth + 1)?);
                    self.skip_ws();
                    if self.eat(b']') {
                        return Ok(Json::Array(items));
                    }
                    self.expect(b',')?;
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut members = Vec::new();
                self.skip_ws();
                if self.eat(b'}') {
                    return Ok(Json::Object(members));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    self.skip_ws();
                    let v = self.value(depth + 1)?;
                    members.push((key, v));
                    self.skip_ws();
                    if self.eat(b'}') {
                        return Ok(Json::Object(members));
                    }
                    self.expect(b',')?;
                }
            }
            Some(c) if c.is_ascii_digit() || *c == b'-' => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .src
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let n = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogate pairs are not needed for this
                            // protocol; reject rather than mis-decode.
                            let c = char::from_u32(n)
                                .ok_or_else(|| self.err("\\u escape is not a scalar value"))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is &str, so
                    // boundaries are valid).
                    let rest = &self.src[self.pos..];
                    let c = rest.chars().next().expect("non-empty");
                    if (c as u32) < 0x20 {
                        return Err(self.err("unescaped control character"));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        self.eat(b'-');
        while matches!(self.bytes.get(self.pos), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut float = false;
        if self.eat(b'.') {
            float = true;
            while matches!(self.bytes.get(self.pos), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.bytes.get(self.pos), Some(b'e' | b'E')) {
            float = true;
            self.pos += 1;
            if !self.eat(b'+') {
                let _ = self.eat(b'-');
            }
            while matches!(self.bytes.get(self.pos), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let tok = &self.src[start..self.pos];
        if float {
            tok.parse::<f64>().map(Json::Float).map_err(|_| self.err("bad number"))
        } else {
            tok.parse::<i128>().map(Json::Int).map_err(|_| self.err("bad number"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(v: &Json) {
        assert_eq!(parse(&v.render()).unwrap(), *v);
    }

    #[test]
    fn scalars_round_trip() {
        round_trip(&Json::Null);
        round_trip(&Json::Bool(true));
        round_trip(&Json::Bool(false));
        round_trip(&Json::Int(0));
        round_trip(&Json::Int(-42));
        round_trip(&Json::Int(i128::from(u64::MAX)));
        round_trip(&Json::Int(i128::from(i64::MIN)));
        round_trip(&Json::Float(1.5));
        round_trip(&Json::Float(-0.25));
        round_trip(&Json::Str("hello".into()));
        round_trip(&Json::Str("with \"quotes\" and \\ and \n and héllo".into()));
    }

    #[test]
    fn integers_are_exact_beyond_f64() {
        // 2^63 - 1 is not representable in f64; the Int path keeps it.
        let v = parse("9223372036854775807").unwrap();
        assert_eq!(v, Json::Int(9223372036854775807));
        assert_eq!(v.render(), "9223372036854775807");
    }

    #[test]
    fn containers_round_trip() {
        round_trip(&Json::Array(vec![Json::Int(1), Json::Str("a".into()), Json::Null]));
        round_trip(&Json::Object(vec![
            ("op".into(), Json::str("compile")),
            ("lanes".into(), Json::Int(128)),
            ("nested".into(), Json::Array(vec![Json::Object(vec![])])),
        ]));
    }

    #[test]
    fn object_order_is_preserved() {
        let v = parse(r#"{"b":1,"a":2}"#).unwrap();
        assert_eq!(v.render(), r#"{"b":1,"a":2}"#);
    }

    #[test]
    fn whitespace_and_floats_parse() {
        let v = parse(" { \"x\" : [ 1 , 2.5 , -3e2 ] } ").unwrap();
        assert_eq!(
            v.get("x").unwrap().as_array().unwrap(),
            &[Json::Int(1), Json::Float(2.5), Json::Float(-300.0)]
        );
    }

    #[test]
    fn malformed_inputs_error() {
        for bad in ["", "{", "[1,", "{\"a\"}", "tru", "1 2", "\"unterminated", "{\"a\":}", "nul"] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn deep_nesting_is_bounded() {
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(parse(&deep).is_err());
    }

    #[test]
    fn accessors() {
        let v = parse(r#"{"s":"x","n":3,"b":true,"a":[1]}"#).unwrap();
        assert_eq!(v.get("s").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("n").unwrap().as_int(), Some(3));
        assert_eq!(v.get("b").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 1);
        assert!(v.get("missing").is_none());
        assert!(v.get("s").unwrap().as_int().is_none());
    }
}
