//! A dependency-free wrapper over `poll(2)` plus a self-pipe waker.
//!
//! The event loop needs exactly three things from the OS that `std`
//! does not expose: wait on many fds at once (`poll`), an fd a worker
//! thread can write to interrupt that wait (`pipe`), and a way to make
//! the pipe non-blocking (`fcntl`). This build environment has no
//! crates registry (no `libc`, no `mio`), so — in the same spirit as
//! the hand-rolled [`Json`](crate::json) codec and the raw `signal`
//! binding in [`server`](crate::server) — the three entry points are
//! declared directly. The `struct pollfd` layout and the flag values
//! are fixed by the Linux ABI this workspace targets.
//!
//! The [`Waker`] half coalesces wakeups: workers completing many tasks
//! between two loop iterations write at most one byte, so the pipe can
//! never fill up and a wake is never lost (the pending flag is cleared
//! by the loop *before* it drains the completion list).

use std::fs::File;
use std::io::{self, Read, Write};
use std::os::fd::{FromRawFd, RawFd};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// There is data to read (`POLLIN`).
pub const POLLIN: i16 = 0x001;
/// Writing will not block (`POLLOUT`).
pub const POLLOUT: i16 = 0x004;
/// Error condition (`POLLERR`; returned in `revents` only).
pub const POLLERR: i16 = 0x008;
/// Peer hung up (`POLLHUP`; returned in `revents` only).
pub const POLLHUP: i16 = 0x010;
/// The fd is not open (`POLLNVAL`; returned in `revents` only).
pub const POLLNVAL: i16 = 0x020;

/// One entry of a poll set — layout-compatible with `struct pollfd`.
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct PollFd {
    fd: RawFd,
    events: i16,
    revents: i16,
}

impl PollFd {
    /// Watch `fd` for the interest set `events` (`POLLIN` / `POLLOUT`).
    pub fn new(fd: RawFd, events: i16) -> PollFd {
        PollFd { fd, events, revents: 0 }
    }

    /// A read will make progress: data, EOF, or a pending error to
    /// collect (`POLLHUP`/`POLLERR` surface through `read` too).
    pub fn readable(&self) -> bool {
        self.revents & (POLLIN | POLLHUP | POLLERR) != 0
    }

    /// A write will make progress (or fail fast with the pending error).
    pub fn writable(&self) -> bool {
        self.revents & (POLLOUT | POLLERR | POLLHUP) != 0
    }

    /// The fd is in an error state and should be torn down.
    pub fn failed(&self) -> bool {
        self.revents & (POLLERR | POLLNVAL) != 0
    }
}

extern "C" {
    fn poll(fds: *mut PollFd, nfds: u64, timeout: i32) -> i32;
    fn pipe(fds: *mut i32) -> i32;
    fn fcntl(fd: i32, cmd: i32, arg: i32) -> i32;
}

/// Wait until at least one fd in `fds` is ready or `timeout` elapses.
/// Returns the number of ready fds (0 on timeout). A signal arriving
/// mid-wait (`EINTR`) also returns 0 so the caller re-checks its stop
/// flags — exactly what the server's loop wants from a `SIGTERM`.
///
/// # Errors
///
/// The OS error from `poll(2)` for anything other than `EINTR`.
pub fn poll_fds(fds: &mut [PollFd], timeout: Duration) -> io::Result<usize> {
    let ms = i32::try_from(timeout.as_millis()).unwrap_or(i32::MAX);
    let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as u64, ms) };
    if rc < 0 {
        let e = io::Error::last_os_error();
        return if e.kind() == io::ErrorKind::Interrupted { Ok(0) } else { Err(e) };
    }
    Ok(rc as usize)
}

/// Put `fd` into non-blocking mode.
fn set_nonblocking(fd: RawFd) -> io::Result<()> {
    const F_GETFL: i32 = 3;
    const F_SETFL: i32 = 4;
    const O_NONBLOCK: i32 = 0o4000;
    let flags = unsafe { fcntl(fd, F_GETFL, 0) };
    if flags < 0 {
        return Err(io::Error::last_os_error());
    }
    if unsafe { fcntl(fd, F_SETFL, flags | O_NONBLOCK) } < 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(())
}

/// The read half of a wakeup pipe: polled by the event loop.
#[derive(Debug)]
pub struct WakePipe {
    reader: File,
}

impl WakePipe {
    /// The fd to include in the poll set (interest: [`POLLIN`]).
    pub fn fd(&self) -> RawFd {
        use std::os::fd::AsRawFd;
        self.reader.as_raw_fd()
    }

    /// Discard every buffered wake byte (non-blocking).
    pub fn drain(&mut self) {
        let mut buf = [0u8; 64];
        loop {
            match self.reader.read(&mut buf) {
                Ok(0) => return, // write end closed
                Ok(_) => {}
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => return, // WouldBlock: drained
            }
        }
    }
}

/// The write half of a wakeup pipe: shared with worker threads.
///
/// [`wake`](Waker::wake) is idempotent between two
/// [`reset`](Waker::reset) calls — only the first writes a byte — so
/// any number of completions costs at most one pipe write and the pipe
/// cannot fill.
#[derive(Debug)]
pub struct Waker {
    writer: File,
    pending: AtomicBool,
}

impl Waker {
    /// Make the next poll on the read half return immediately.
    pub fn wake(&self) {
        if !self.pending.swap(true, Ordering::SeqCst) {
            // `&File` is `Write`; a full pipe (WouldBlock) already
            // guarantees a wake is pending, so the result is ignorable.
            let _ = (&self.writer).write(&[1u8]);
        }
    }

    /// Re-arm: called by the loop before it drains the completion list,
    /// so a completion pushed after the drain re-triggers a wake.
    pub fn reset(&self) {
        self.pending.store(false, Ordering::SeqCst);
    }
}

/// A connected non-blocking wakeup pipe.
///
/// # Errors
///
/// OS errors from `pipe(2)` / `fcntl(2)`.
pub fn wake_pipe() -> io::Result<(WakePipe, Waker)> {
    let mut fds = [0i32; 2];
    if unsafe { pipe(fds.as_mut_ptr()) } < 0 {
        return Err(io::Error::last_os_error());
    }
    // Wrap immediately so an fcntl failure cannot leak the fds.
    let reader = unsafe { File::from_raw_fd(fds[0]) };
    let writer = unsafe { File::from_raw_fd(fds[1]) };
    use std::os::fd::AsRawFd;
    set_nonblocking(reader.as_raw_fd())?;
    set_nonblocking(writer.as_raw_fd())?;
    Ok((WakePipe { reader }, Waker { writer, pending: AtomicBool::new(false) }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn poll_times_out_on_idle_pipe() {
        let (rx, _tx) = wake_pipe().unwrap();
        let mut fds = [PollFd::new(rx.fd(), POLLIN)];
        let n = poll_fds(&mut fds, Duration::from_millis(10)).unwrap();
        assert_eq!(n, 0);
        assert!(!fds[0].readable());
    }

    #[test]
    fn wake_makes_pipe_readable_and_drain_clears_it() {
        let (mut rx, tx) = wake_pipe().unwrap();
        tx.wake();
        let mut fds = [PollFd::new(rx.fd(), POLLIN)];
        let n = poll_fds(&mut fds, Duration::from_secs(5)).unwrap();
        assert_eq!(n, 1);
        assert!(fds[0].readable());
        tx.reset();
        rx.drain();
        let mut fds = [PollFd::new(rx.fd(), POLLIN)];
        assert_eq!(poll_fds(&mut fds, Duration::from_millis(10)).unwrap(), 0);
    }

    #[test]
    fn wakes_coalesce_until_reset() {
        let (mut rx, tx) = wake_pipe().unwrap();
        // A pipe holds ~64 KiB; a million un-coalesced wakes would jam
        // it. With coalescing this writes exactly one byte per reset
        // window, so the loop below must stay instant.
        for _ in 0..1_000_000 {
            tx.wake();
        }
        let mut buf = [0u8; 16];
        let n = rx.reader.read(&mut buf).unwrap();
        assert_eq!(n, 1, "only the first wake writes");
        tx.reset();
        tx.wake();
        assert_eq!(rx.reader.read(&mut buf).unwrap(), 1);
    }

    #[test]
    fn waker_is_shareable_across_threads() {
        let (mut rx, tx) = wake_pipe().unwrap();
        let tx = Arc::new(tx);
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let tx = Arc::clone(&tx);
                std::thread::spawn(move || tx.wake())
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let mut fds = [PollFd::new(rx.fd(), POLLIN)];
        assert_eq!(poll_fds(&mut fds, Duration::from_secs(5)).unwrap(), 1);
        rx.drain();
    }
}
