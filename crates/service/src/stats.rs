//! Server-wide counters and latency percentiles for `/stats`.
//!
//! Counters are plain atomics (lock-free on the request path). Latencies
//! go into a fixed-capacity ring of microsecond samples; percentiles are
//! computed on demand by sorting a snapshot — `/stats` is rare, requests
//! are not, so the cost lands on the right side.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Capacity of the latency ring (most recent samples win).
const RING_CAP: usize = 4096;

/// Monotonic counters + a latency ring. One per server.
#[derive(Debug, Default)]
pub struct Stats {
    /// Requests received (any kind).
    pub requests: AtomicU64,
    /// Requests answered from the artifact cache.
    pub cache_hits: AtomicU64,
    /// Requests that compiled (led a flight).
    pub cache_misses: AtomicU64,
    /// Requests that joined another request's in-flight compile.
    pub flight_joins: AtomicU64,
    /// Compilations actually executed.
    pub compiles: AtomicU64,
    /// Requests shed by admission control.
    pub sheds: AtomicU64,
    /// Requests that exceeded their deadline.
    pub timeouts: AtomicU64,
    /// Malformed / uncompilable requests.
    pub errors: AtomicU64,
    /// Cache misses refilled from the on-disk spill store instead of
    /// compiling.
    pub disk_hits: AtomicU64,
    /// Artifacts spilled to the on-disk store after a compile.
    pub disk_spills: AtomicU64,
    /// Spill-store entries re-admitted into the cache at startup
    /// (restart-warm).
    pub disk_loaded: AtomicU64,
    /// Spill-store entries that failed validation (checksum, version,
    /// decode) and were unlinked — nonzero values warrant a look.
    pub disk_rejected: AtomicU64,
    /// Spill-store entries unlinked by the size/age GC sweep.
    pub disk_evicted: AtomicU64,
    /// Remote fills: misses answered by a peer's pre-rendered artifact.
    pub peer_hits: AtomicU64,
    /// Peer lookups the owner answered with "not found" (or a rule-set
    /// mismatch); the request compiled locally.
    pub peer_misses: AtomicU64,
    /// Peer lookups abandoned at the peer deadline (→ local compile).
    pub peer_timeouts: AtomicU64,
    /// Peer connect/transport/decode failures (→ local compile).
    pub peer_errors: AtomicU64,
    /// `peer_get` requests this daemon answered for its siblings.
    pub peer_serves: AtomicU64,
    /// Warm frames answered from the event loop's hot-request memo
    /// without parsing.
    pub hot_hits: AtomicU64,
    /// Connections currently open on the event-loop server (gauge).
    pub open_connections: AtomicU64,
    /// Frames dispatched to workers but not yet answered (gauge).
    pub inflight_frames: AtomicU64,
    /// Depth of the event loop's dispatch queue (gauge, sampled once
    /// per loop iteration).
    pub dispatch_queue_depth: AtomicU64,
    /// Largest batch of ready requests dispatched in one loop
    /// iteration (high-water mark).
    pub dispatch_batch_max: AtomicU64,
    latencies: Mutex<Ring>,
}

#[derive(Debug, Default)]
struct Ring {
    samples_us: Vec<u64>,
    next: usize,
}

/// A point-in-time latency summary in microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LatencySummary {
    /// Samples currently in the ring.
    pub count: usize,
    /// Median.
    pub p50_us: u64,
    /// 99th percentile.
    pub p99_us: u64,
    /// Maximum.
    pub max_us: u64,
}

impl Stats {
    /// Fresh, all-zero stats.
    pub fn new() -> Stats {
        Stats::default()
    }

    /// Record one served-request latency.
    pub fn record_latency_us(&self, us: u64) {
        let mut ring = self.latencies.lock().expect("stats lock");
        if ring.samples_us.len() < RING_CAP {
            ring.samples_us.push(us);
        } else {
            let at = ring.next;
            ring.samples_us[at] = us;
        }
        ring.next = (ring.next + 1) % RING_CAP;
    }

    /// Percentiles over the current ring contents.
    pub fn latency_summary(&self) -> LatencySummary {
        let mut snapshot = self.latencies.lock().expect("stats lock").samples_us.clone();
        if snapshot.is_empty() {
            return LatencySummary::default();
        }
        snapshot.sort_unstable();
        let at = |q: f64| {
            let idx = ((snapshot.len() as f64 - 1.0) * q).round() as usize;
            snapshot[idx.min(snapshot.len() - 1)]
        };
        LatencySummary {
            count: snapshot.len(),
            p50_us: at(0.50),
            p99_us: at(0.99),
            max_us: *snapshot.last().expect("non-empty"),
        }
    }

    /// Bump a counter by one (relaxed; these are statistics, not
    /// synchronization).
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Read a counter.
    pub fn read(counter: &AtomicU64) -> u64 {
        counter.load(Ordering::Relaxed)
    }

    /// Overwrite a gauge (relaxed, same rationale as [`bump`](Self::bump)).
    pub fn set(gauge: &AtomicU64, value: u64) {
        gauge.store(value, Ordering::Relaxed);
    }

    /// Raise a high-water-mark gauge to at least `value`.
    pub fn record_max(gauge: &AtomicU64, value: u64) {
        gauge.fetch_max(value, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary_is_zero() {
        let s = Stats::new();
        assert_eq!(s.latency_summary(), LatencySummary::default());
    }

    #[test]
    fn percentiles_over_known_samples() {
        let s = Stats::new();
        for us in 1..=100 {
            s.record_latency_us(us);
        }
        let sum = s.latency_summary();
        assert_eq!(sum.count, 100);
        assert_eq!(sum.p50_us, 51); // round((99) * 0.5) = 50 → sorted[50] = 51
        assert_eq!(sum.p99_us, 99);
        assert_eq!(sum.max_us, 100);
    }

    #[test]
    fn ring_keeps_most_recent_when_full() {
        let s = Stats::new();
        for us in 0..(RING_CAP as u64 + 10) {
            s.record_latency_us(us);
        }
        let sum = s.latency_summary();
        assert_eq!(sum.count, RING_CAP);
        // 0..=9 were overwritten by the wrap-around.
        assert_eq!(sum.max_us, RING_CAP as u64 + 9);
    }

    #[test]
    fn counters_bump() {
        let s = Stats::new();
        Stats::bump(&s.requests);
        Stats::bump(&s.requests);
        Stats::bump(&s.sheds);
        assert_eq!(Stats::read(&s.requests), 2);
        assert_eq!(Stats::read(&s.sheds), 1);
        assert_eq!(Stats::read(&s.timeouts), 0);
    }

    #[test]
    fn gauges_set_and_high_water() {
        let s = Stats::new();
        Stats::set(&s.open_connections, 5);
        Stats::set(&s.open_connections, 3);
        assert_eq!(Stats::read(&s.open_connections), 3);
        Stats::record_max(&s.dispatch_batch_max, 4);
        Stats::record_max(&s.dispatch_batch_max, 2);
        assert_eq!(Stats::read(&s.dispatch_batch_max), 4);
    }
}
