//! Property tests over the v2 framing layer.
//!
//! Strategy: proptest drives a seed; the seed drives a `StdRng` that
//! generates random frame payloads *and* an adversarial delivery
//! schedule — per-call write caps, per-call read caps, and interleaved
//! `WouldBlock` on both sides. Whatever the chunking, a
//! [`FrameWriter`] → bytes → [`FrameReader`] round trip must
//! reconstruct every frame bit-for-bit, and the raw-bytes drain used by
//! the event loop's hot-request memo must agree with the decoding
//! reader.

use pitchfork_service::protocol::{decode_frame, MAX_FRAME};
use pitchfork_service::{
    attach_tag, attach_tag_rendered, FrameReader, FrameWriter, Json, WriteOverflow,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::io::{self, Read, Write};

/// A random JSON value: nested containers, escapes, non-ASCII text,
/// extreme integers — everything the renderer and parser must agree on.
fn gen_value(rng: &mut StdRng, depth: usize) -> Json {
    let pick = if depth == 0 { rng.gen_range(0..5) } else { rng.gen_range(0..7) };
    match pick {
        0 => Json::Null,
        1 => Json::Bool(rng.gen_bool(0.5)),
        2 => Json::Int(match rng.gen_range(0..3) {
            0 => rng.gen_range(-100..100),
            1 => i128::from(i64::MAX),
            _ => i128::from(i64::MIN),
        }),
        3 | 4 => Json::Str(gen_string(rng)),
        5 => {
            let n = rng.gen_range(0..4);
            Json::Array((0..n).map(|_| gen_value(rng, depth - 1)).collect())
        }
        _ => {
            let n = rng.gen_range(0..4);
            Json::Object((0..n).map(|i| (format!("k{i}"), gen_value(rng, depth - 1))).collect())
        }
    }
}

fn gen_string(rng: &mut StdRng) -> String {
    const ALPHABET: [&str; 8] = ["a", "\"", "\\", "\n", "\t", "é", "λ", "\u{1}"];
    let n = rng.gen_range(0..24);
    (0..n).map(|_| ALPHABET[rng.gen_range(0..ALPHABET.len())]).collect()
}

/// Accepts a random number of bytes per `write`, with `WouldBlock`
/// sprinkled in — the kernel-side worst case for a non-blocking socket.
struct ChokedSink<'a> {
    out: Vec<u8>,
    rng: &'a mut StdRng,
}

impl Write for ChokedSink<'_> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if self.rng.gen_bool(0.3) {
            return Err(io::Error::new(io::ErrorKind::WouldBlock, "send buffer full"));
        }
        let n = buf.len().min(self.rng.gen_range(1..=13));
        self.out.extend_from_slice(&buf[..n]);
        Ok(n)
    }
    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// Yields a random number of bytes per `read`, with `WouldBlock`
/// sprinkled in — a slow peer dribbling frames across many readiness
/// cycles.
struct ChokedSource<'a> {
    data: Vec<u8>,
    pos: usize,
    rng: &'a mut StdRng,
}

impl Read for ChokedSource<'_> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if self.rng.gen_bool(0.3) {
            return Err(io::Error::new(io::ErrorKind::WouldBlock, "nothing yet"));
        }
        if self.pos >= self.data.len() {
            return Ok(0);
        }
        let n = (self.data.len() - self.pos).min(buf.len()).min(self.rng.gen_range(1..=13));
        buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

/// Push every queued frame through an adversarially-chunked sink,
/// returning the wire bytes.
fn drain_writer(w: &mut FrameWriter, rng: &mut StdRng) -> Vec<u8> {
    let mut sink = ChokedSink { out: Vec::new(), rng };
    while !w.is_empty() {
        w.write_some(&mut sink).unwrap();
    }
    assert_eq!(w.queued_bytes(), 0);
    sink.out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// FrameWriter → adversarial socket → FrameReader reconstructs
    /// every frame exactly, whatever the chunk boundaries.
    #[test]
    fn frames_round_trip_through_adversarial_chunking(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let frames: Vec<Json> =
            (0..rng.gen_range(1..8)).map(|_| gen_value(&mut rng, 3)).collect();

        let mut w = FrameWriter::new(MAX_FRAME);
        for f in &frames {
            w.queue(f).unwrap();
        }
        let bytes = drain_writer(&mut w, &mut rng);

        let mut src = ChokedSource { data: bytes, pos: 0, rng: &mut rng };
        let mut r = FrameReader::new();
        let mut decoded = Vec::new();
        loop {
            match r.next_frame(&mut src) {
                Ok(Some(v)) => decoded.push(v),
                Ok(None) => break,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => continue,
                Err(e) => panic!("unexpected framing error: {e}"),
            }
        }
        prop_assert_eq!(&decoded, &frames);
        prop_assert_eq!(r.buffered_bytes(), 0, "no stray bytes after the last frame");
    }

    /// The event loop's raw drain (`fill_from` + `buffered_frame_raw` +
    /// `decode_frame`) sees exactly the frames the decoding reader
    /// would, over the same adversarial chunking.
    #[test]
    fn raw_frame_drain_agrees_with_decoding_reader(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(2654435761).wrapping_add(1));
        let frames: Vec<Json> =
            (0..rng.gen_range(1..8)).map(|_| gen_value(&mut rng, 3)).collect();

        let mut w = FrameWriter::new(MAX_FRAME);
        for f in &frames {
            w.queue(f).unwrap();
        }
        let bytes = drain_writer(&mut w, &mut rng);

        let mut src = ChokedSource { data: bytes, pos: 0, rng: &mut rng };
        let mut r = FrameReader::new();
        let mut decoded = Vec::new();
        loop {
            // Drain whole buffered frames first, exactly as the event
            // loop does after each readable cycle.
            while let Some(raw) = r.buffered_frame_raw().unwrap() {
                decoded.push(decode_frame(raw).unwrap());
            }
            match r.fill_from(&mut src) {
                Ok(0) => break,
                Ok(_) => {}
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {}
                Err(e) => panic!("unexpected read error: {e}"),
            }
        }
        while let Some(raw) = r.buffered_frame_raw().unwrap() {
            decoded.push(decode_frame(raw).unwrap());
        }
        prop_assert_eq!(&decoded, &frames);
        prop_assert_eq!(r.buffered_bytes(), 0);
    }

    /// Splicing a tag into rendered bytes is indistinguishable from
    /// attaching it to the value and re-rendering, for any response
    /// object and any legal tag.
    #[test]
    fn tag_splice_agrees_with_value_attach(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9e3779b97f4a7c15));
        let n = rng.gen_range(0..5);
        let mut members = vec![("ok".to_string(), Json::Bool(true))];
        members.extend((0..n).map(|i| (format!("m{i}"), gen_value(&mut rng, 2))));
        let mut resp = Json::Object(members);
        let tag = if rng.gen_bool(0.5) {
            Json::Int(rng.gen_range(-1000..1000))
        } else {
            Json::Str(gen_string(&mut rng))
        };

        let mut rendered = resp.render();
        attach_tag(&mut resp, &tag);
        attach_tag_rendered(&mut rendered, &tag);
        prop_assert_eq!(resp.render(), rendered);
    }

    /// The byte budget never refuses the first frame, never admits a
    /// backlog past the budget, and sealing always leaves exactly one
    /// trailing frame queued behind whatever is mid-write.
    #[test]
    fn writer_budget_and_seal_invariants(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xdead_beef);
        let budget = rng.gen_range(8..200usize);
        let mut w = FrameWriter::new(budget);
        let mut admitted = 0usize;
        for i in 0..rng.gen_range(1..20) {
            let body = Json::Str("x".repeat(rng.gen_range(0..64)));
            match w.queue(&body) {
                Ok(()) => admitted += 1,
                Err(WriteOverflow) => {
                    prop_assert!(admitted >= 1, "frame {i}: first frame must be admitted");
                    prop_assert!(w.queued_bytes() + 4 + body.render().len() > budget);
                }
            }
        }
        let seal = Json::Str("sealed".to_string());
        w.seal(&seal);
        prop_assert!(w.is_sealed());
        prop_assert_eq!(w.queue(&Json::Null), Err(WriteOverflow));
        // Nothing was written, so the seal replaced the whole backlog.
        prop_assert_eq!(w.queued_frames(), 1);
        let bytes = drain_writer(&mut w, &mut rng);
        let mut r = FrameReader::new();
        let mut src = io::Cursor::new(bytes);
        prop_assert_eq!(r.next_frame(&mut src).unwrap(), Some(seal));
        prop_assert_eq!(r.next_frame(&mut src).unwrap(), None);
    }
}
