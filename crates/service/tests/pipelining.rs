//! End-to-end tests of protocol v2 pipelining against a live event-loop
//! server: out-of-order completion on one connection, fairness across
//! connections, and the bounded-output-queue overload close.
//!
//! Determinism notes. `run_pipeline` requests are *always* dispatched
//! to the worker pool (whole-image runs are real work even when the
//! artifact is warm), while `ping` and cache hits are answered inline
//! by the loop thread — so a pipelined `[run_pipeline, ping, ping]`
//! burst must come back `[ping, ping, run_pipeline]` without any
//! sleep-based timing: the inline replies are queued in the same loop
//! iteration that dispatches the image run, and the completion can only
//! be drained in a later iteration.

use pitchfork_service::{
    serve_with, write_frame, Client, Endpoint, Json, ServeOptions, Service, ServiceConfig,
};
use std::io::{self, Read, Write};
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn parse(src: &str) -> Json {
    pitchfork_service::json::parse(src).unwrap()
}

fn start(path: &Path, opts: ServeOptions) -> std::thread::JoinHandle<io::Result<()>> {
    let _ = std::fs::remove_file(path);
    let svc = Arc::new(Service::new(ServiceConfig {
        cache_bytes: 8 << 20,
        workers: 2,
        queue_capacity: 64,
        default_timeout_ms: None,
        cache_dir: None,
        cache_max_bytes: None,
        cache_max_age: None,
    }));
    let ep = Endpoint::Unix(path.to_path_buf());
    std::thread::spawn(move || serve_with(svc, &ep, &opts))
}

fn connect_with_retry(path: &Path) -> UnixStream {
    for _ in 0..100 {
        if let Ok(s) = UnixStream::connect(path) {
            return s;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    panic!("server at {} never came up", path.display());
}

fn client_with_retry(path: &Path) -> Client {
    for _ in 0..100 {
        if let Ok(c) = Client::connect(&Endpoint::Unix(path.to_path_buf())) {
            return c;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    panic!("server at {} never came up", path.display());
}

fn shutdown(path: &Path) {
    let mut c = client_with_retry(path);
    let bye = c.request(&parse(r#"{"op":"shutdown"}"#)).unwrap();
    assert_eq!(bye.get("stopping").and_then(Json::as_bool), Some(true));
}

/// A `run_pipeline` request over a `rows`×`cols` image — enough pixels
/// that the tiled runner spends real time on a worker thread.
fn image_run(tag: &str, rows: usize, cols: usize) -> Json {
    let row: Vec<String> = (0..cols).map(|c| ((c * 7) % 256).to_string()).collect();
    let row = format!("[{}]", row.join(","));
    let rows_json = vec![row; rows].join(",");
    parse(&format!(
        r#"{{"op":"run_pipeline","expr":"rounding_halving_add(in__p0_p0_u8, in__p1_p0_u8)",
            "lanes":4,"isa":"arm","inputs":{{"in":{{"elem":"u8","rows":[{rows_json}]}}}},
            "jobs":1,"tag":"{tag}"}}"#
    ))
}

fn read_one(stream: &mut UnixStream) -> Option<Json> {
    pitchfork_service::read_frame(stream).unwrap()
}

#[test]
fn tagged_requests_complete_out_of_order() {
    let path = sock("ooo");
    let server = start(&path, ServeOptions::default());
    let mut stream = connect_with_retry(&path);

    // One write syscall carries all three frames: a whole-image run
    // (dispatched to a worker) followed by two pings (answered inline).
    let mut burst = Vec::new();
    write_frame(&mut burst, &image_run("slow", 32, 512)).unwrap();
    write_frame(&mut burst, &parse(r#"{"op":"ping","tag":"a"}"#)).unwrap();
    write_frame(&mut burst, &parse(r#"{"op":"ping","tag":"b"}"#)).unwrap();
    stream.write_all(&burst).unwrap();

    let tags: Vec<String> = (0..3)
        .map(|_| {
            let v = read_one(&mut stream).expect("three responses expected");
            assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true), "{v:?}");
            v.get("tag").and_then(Json::as_str).expect("tagged response").to_string()
        })
        .collect();
    assert_eq!(tags, ["a", "b", "slow"], "inline replies must overtake the dispatched image run");

    drop(stream);
    shutdown(&path);
    server.join().unwrap().unwrap();
}

#[test]
fn slow_request_on_one_connection_does_not_stall_another() {
    let path = sock("fair");
    let server = start(&path, ServeOptions::default());
    let mut a = client_with_retry(&path);
    let mut b = client_with_retry(&path);

    let t0 = Instant::now();
    a.send(&image_run("big", 64, 512)).unwrap();
    let reader = std::thread::spawn(move || {
        let v = a.recv().unwrap();
        (t0.elapsed(), v)
    });

    // While the image run occupies a worker, connection B's pings must
    // keep flowing through the loop thread.
    let ping = parse(r#"{"op":"ping"}"#);
    for _ in 0..5 {
        let v = b.request(&ping).unwrap();
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true));
    }
    let b_done = t0.elapsed();

    let (a_done, a_resp) = reader.join().unwrap();
    assert_eq!(a_resp.get("ok").and_then(Json::as_bool), Some(true), "{a_resp:?}");
    assert_eq!(a_resp.get("tag").and_then(Json::as_str), Some("big"));
    assert!(
        b_done < a_done,
        "B's 5 pings ({b_done:?}) should finish before A's image run ({a_done:?})"
    );

    drop(b);
    shutdown(&path);
    server.join().unwrap().unwrap();
}

#[test]
fn pipelining_past_the_output_budget_closes_with_overloaded() {
    let path = sock("ovl");
    // A deliberately tiny response budget: a burst of stats responses
    // overflows it within one dispatch batch.
    let server = start(&path, ServeOptions { outq_bytes: 4096, ..ServeOptions::default() });
    let mut stream = connect_with_retry(&path);

    const SENT: usize = 256;
    let mut burst = Vec::new();
    for i in 0..SENT {
        write_frame(&mut burst, &parse(&format!(r#"{{"op":"stats","tag":{i}}}"#))).unwrap();
    }
    stream.write_all(&burst).unwrap();

    let mut answered = 0usize;
    let mut last = None;
    while let Some(v) = read_one(&mut stream) {
        answered += 1;
        last = Some(v);
    }
    let last = last.expect("at least the final overloaded frame must arrive");
    assert!(answered < SENT, "the bounded queue must shed some of {SENT} responses");
    assert_eq!(last.get("ok").and_then(Json::as_bool), Some(false), "{last:?}");
    assert_eq!(last.get("code").and_then(Json::as_str), Some("overloaded"), "{last:?}");
    // The connection is closed after the seal frame; further reads see
    // end-of-stream, not a hang.
    let mut probe = [0u8; 1];
    assert_eq!(stream.read(&mut probe).unwrap(), 0, "clean close after the seal");

    drop(stream);
    shutdown(&path);
    server.join().unwrap().unwrap();
}

/// A unique-per-test socket path under the temp dir.
fn sock(which: &str) -> PathBuf {
    std::env::temp_dir().join(format!("pitchfork-pipe-{which}-{}.sock", std::process::id()))
}
