//! End-to-end tests of the warm fleet: two event-loop daemons peering
//! over Unix sockets (miss forwarding, single fleet-wide compile,
//! graceful degradation when a peer dies) and the hot-request memo's
//! rule-set generation keying.

use pitchfork_service::{
    serve_with, Client, Endpoint, Json, ServeOptions, Service, ServiceConfig, Stats,
};
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

const SAT_ADD: &str = "u8(min(u16(a_u8) + u16(b_u8), 255))";

fn parse(src: &str) -> Json {
    pitchfork_service::json::parse(src).unwrap()
}

fn sock_path(tag: &str, i: usize) -> PathBuf {
    std::env::temp_dir().join(format!("pf-fleet-{tag}-{}-{i}.sock", std::process::id()))
}

fn service() -> Arc<Service> {
    Arc::new(Service::new(ServiceConfig {
        cache_bytes: 8 << 20,
        workers: 2,
        queue_capacity: 16,
        default_timeout_ms: None,
        cache_dir: None,
        cache_max_bytes: None,
        cache_max_age: None,
    }))
}

fn start(
    svc: &Arc<Service>,
    path: &Path,
    peers: Vec<Endpoint>,
) -> std::thread::JoinHandle<io::Result<()>> {
    let _ = std::fs::remove_file(path);
    let svc = Arc::clone(svc);
    let ep = Endpoint::Unix(path.to_path_buf());
    let opts = ServeOptions { peers, peer_timeout_ms: 3000, ..ServeOptions::default() };
    std::thread::spawn(move || serve_with(svc, &ep, &opts))
}

fn client_with_retry(path: &Path) -> Client {
    for _ in 0..100 {
        if let Ok(c) = Client::connect(&Endpoint::Unix(path.to_path_buf())) {
            return c;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    panic!("server at {} never came up", path.display());
}

fn shutdown(path: &Path) {
    let mut c = client_with_retry(path);
    let bye = c.request(&parse(r#"{"op":"shutdown"}"#)).unwrap();
    assert_eq!(bye.get("stopping").and_then(Json::as_bool), Some(true));
}

fn compile_req(expr: &str) -> Json {
    parse(&format!(r#"{{"op":"compile","expr":"{expr}","lanes":16,"isa":"arm"}}"#))
}

#[test]
fn a_two_daemon_fleet_compiles_each_key_once() {
    let paths = [sock_path("pair", 0), sock_path("pair", 1)];
    let eps: Vec<Endpoint> = paths.iter().map(|p| Endpoint::Unix(p.clone())).collect();
    let svcs = [service(), service()];
    let servers = [
        start(&svcs[0], &paths[0], vec![eps[1].clone()]),
        start(&svcs[1], &paths[1], vec![eps[0].clone()]),
    ];
    let mut clients = [client_with_retry(&paths[0]), client_with_retry(&paths[1])];

    // Several distinct keys so ownership lands on both daemons; each
    // key goes to both, and the fleet compiles it exactly once.
    let exprs =
        [SAT_ADD, "a_u8 + b_u8", "min(a_u8, b_u8)", "max(a_u8, b_u8)", "a_u8 - min(a_u8, b_u8)"];
    for expr in exprs {
        let req = compile_req(expr);
        let first = clients[0].request(&req).unwrap();
        let second = clients[1].request(&req).unwrap();
        assert_eq!(first.get("ok").and_then(Json::as_bool), Some(true), "{expr}: {first:?}");
        for field in ["lowered", "program", "cycles"] {
            assert_eq!(
                first.get(field).map(Json::render),
                second.get(field).map(Json::render),
                "{expr}: both daemons must serve identical artifacts"
            );
        }
    }

    let compiles: u64 = svcs.iter().map(|s| Stats::read(&s.stats().compiles)).sum();
    let peer_hits: u64 = svcs.iter().map(|s| Stats::read(&s.stats().peer_hits)).sum();
    let peer_serves: u64 = svcs.iter().map(|s| Stats::read(&s.stats().peer_serves)).sum();
    assert_eq!(compiles, exprs.len() as u64, "every key compiles exactly once across the fleet");
    assert_eq!(peer_hits, exprs.len() as u64, "the non-owner side of every key forwarded");
    assert!(peer_serves >= peer_hits, "every hit was served by someone");

    for p in &paths {
        shutdown(p);
    }
    for s in servers {
        s.join().unwrap().unwrap();
    }
}

#[test]
fn a_dead_peer_degrades_to_local_compiles() {
    let paths = [sock_path("dead", 0), sock_path("dead", 1)];
    let eps: Vec<Endpoint> = paths.iter().map(|p| Endpoint::Unix(p.clone())).collect();
    let svcs = [service(), service()];
    let servers = [
        start(&svcs[0], &paths[0], vec![eps[1].clone()]),
        start(&svcs[1], &paths[1], vec![eps[0].clone()]),
    ];
    // Both up, then daemon 0 dies before serving anything of interest.
    client_with_retry(&paths[1]);
    shutdown(&paths[0]);
    let mut servers = servers.into_iter();
    servers.next().unwrap().join().unwrap().unwrap();

    // Fresh keys on the survivor: whatever daemon 0 owned must fall
    // back to a local compile — every request still succeeds.
    let mut client = client_with_retry(&paths[1]);
    let exprs =
        [SAT_ADD, "a_u8 + b_u8", "min(a_u8, b_u8)", "max(a_u8, b_u8)", "a_u8 - min(a_u8, b_u8)"];
    for expr in exprs {
        let v = client.request(&compile_req(expr)).unwrap();
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true), "{expr}: {v:?}");
        assert_eq!(v.get("source").and_then(Json::as_str), Some("computed"), "{expr}: {v:?}");
    }
    assert_eq!(
        Stats::read(&svcs[1].stats().compiles),
        exprs.len() as u64,
        "the survivor compiled everything itself"
    );
    assert_eq!(Stats::read(&svcs[1].stats().peer_hits), 0);

    shutdown(&paths[1]);
    servers.next().unwrap().join().unwrap().unwrap();
}

/// The hot-request memo is keyed on the rule-set generation: bumping it
/// makes byte-identical requests miss the memo (and re-seed it) instead
/// of serving a response rendered under superseded rules.
#[test]
fn hot_memo_misses_after_a_rules_generation_bump() {
    let path = sock_path("memo", 0);
    let svc = service();
    let server = start(&svc, &path, Vec::new());
    let mut client = client_with_retry(&path);
    let req = compile_req(SAT_ADD);
    let hot = || Stats::read(&svc.stats().hot_hits);

    // 1st: compile (miss). 2nd: cache hit, seeds the memo. 3rd: memo.
    for _ in 0..3 {
        let v = client.request(&req).unwrap();
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true), "{v:?}");
    }
    let after_seed = hot();
    assert_eq!(after_seed, 1, "the third identical frame hits the memo");

    svc.bump_rules_generation();
    let v = client.request(&req).unwrap();
    assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true), "{v:?}");
    assert_eq!(hot(), after_seed, "a stale-generation entry must read as a miss");

    // That miss re-seeded under the new generation; the next one hits.
    let v = client.request(&req).unwrap();
    assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true), "{v:?}");
    assert_eq!(hot(), after_seed + 1, "the memo recovers in one round of traffic");

    shutdown(&path);
    server.join().unwrap().unwrap();
}
