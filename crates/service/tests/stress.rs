//! Concurrency stress tests for the service core: many threads, many
//! duplicate requests, tiny cache budgets, and expiring deadlines.
//!
//! The contract under test, end to end:
//!
//! 1. every served response is **bit-identical** to a direct
//!    single-shot `pitchfork::compile_to_executable` call;
//! 2. duplicate concurrent requests are **deduplicated** — the number
//!    of compilations equals the number of distinct cache keys;
//! 3. a pathologically small byte budget forces constant eviction but
//!    **never** a wrong artifact;
//! 4. a request whose deadline expires gets a structured `timeout`
//!    error and leaves the cache consistent for the next request.

use fpir_workloads::{all_workloads, LANES};
use pitchfork::{compile_to_executable, Pitchfork};
use pitchfork_service::protocol::CompileSpec;
use pitchfork_service::{Json, Request, Service, ServiceConfig, Stats};
use std::sync::{Arc, Barrier};

/// The distinct (expression, isa) combos the stress tests request.
/// x86 and ARM support every workload (HVX lacks 64-bit lanes, which
/// some of these pipelines need internally).
fn combos() -> Vec<(String, fpir::Isa)> {
    all_workloads()
        .into_iter()
        .take(6)
        .enumerate()
        .map(|(i, wl)| {
            let isa = if i % 2 == 0 { fpir::Isa::X86Avx2 } else { fpir::Isa::ArmNeon };
            (wl.pipeline.expr.to_string(), isa)
        })
        .collect()
}

fn spec(expr: &str, isa: fpir::Isa, timeout_ms: Option<u64>) -> CompileSpec {
    CompileSpec {
        expr: expr.to_string(),
        lanes: LANES,
        isa,
        engine: pitchfork::EngineConfig::FAST,
        synthesized_rules: true,
        leave_out: None,
        timeout_ms,
    }
}

/// The direct driver's ground truth for one combo.
fn direct(expr: &str, isa: fpir::Isa) -> (String, String, u64) {
    let pf = Pitchfork::new(isa);
    let e = fpir::parser::parse_expr(expr, LANES).expect("workload exprs parse");
    let art = compile_to_executable(&pf, &e).expect("workload exprs compile");
    (art.lowered.to_string(), art.program.render(), art.cycles)
}

fn get<'a>(v: &'a Json, k: &str) -> &'a Json {
    v.get(k).unwrap_or_else(|| panic!("response missing `{k}`: {v:?}"))
}

#[test]
fn duplicate_storm_is_deduplicated_and_bit_identical() {
    let combos = combos();
    let truth: Vec<(String, String, u64)> = combos.iter().map(|(e, isa)| direct(e, *isa)).collect();

    let svc = Arc::new(Service::new(ServiceConfig {
        cache_bytes: 256 << 20, // roomy: nothing should evict
        workers: 4,
        queue_capacity: 64,
        default_timeout_ms: None,
        cache_dir: None,
        cache_max_bytes: None,
        cache_max_age: None,
    }));

    const THREADS: usize = 8;
    let barrier = Arc::new(Barrier::new(THREADS));
    let mut handles = Vec::new();
    for t in 0..THREADS {
        let svc = svc.clone();
        let combos = combos.clone();
        let barrier = barrier.clone();
        handles.push(std::thread::spawn(move || {
            barrier.wait();
            // Each thread walks the combos at a different rotation so
            // duplicates collide both in-flight and post-cache.
            (0..combos.len())
                .map(|i| {
                    let (expr, isa) = &combos[(i + t) % combos.len()];
                    let v = svc.handle(&Request::Compile(spec(expr, *isa, None)));
                    ((i + t) % combos.len(), v)
                })
                .collect::<Vec<(usize, Json)>>()
        }));
    }

    let mut computed = 0usize;
    for h in handles {
        for (combo, v) in h.join().expect("stress thread") {
            assert_eq!(get(&v, "ok").as_bool(), Some(true), "{v:?}");
            let (lowered, program, cycles) = &truth[combo];
            assert_eq!(get(&v, "lowered").as_str(), Some(lowered.as_str()), "combo {combo}");
            assert_eq!(get(&v, "program").as_str(), Some(program.as_str()), "combo {combo}");
            assert_eq!(get(&v, "cycles").as_int(), Some(i128::from(*cycles)), "combo {combo}");
            if get(&v, "source").as_str() == Some("computed") {
                computed += 1;
            }
        }
    }

    // Deduplication: one compile per distinct key, no matter how many
    // concurrent duplicates arrived.
    assert_eq!(
        Stats::read(&svc.stats().compiles),
        combos.len() as u64,
        "compile count must equal distinct-key count"
    );
    assert_eq!(computed, combos.len(), "exactly one leader per distinct key");
    assert_eq!(svc.cache_stats().evictions, 0, "roomy cache must not evict");
    assert_eq!(Stats::read(&svc.stats().errors), 0);
    assert_eq!(Stats::read(&svc.stats().sheds), 0);
}

#[test]
fn tiny_budget_thrashes_but_never_serves_a_wrong_artifact() {
    let combos = combos();
    let truth: Vec<(String, String, u64)> = combos.iter().map(|(e, isa)| direct(e, *isa)).collect();

    // A budget far below one artifact: every insert evicts, every
    // request recompiles. Correctness must be unaffected.
    let svc = Arc::new(Service::new(ServiceConfig {
        cache_bytes: 512,
        workers: 4,
        queue_capacity: 64,
        default_timeout_ms: None,
        cache_dir: None,
        cache_max_bytes: None,
        cache_max_age: None,
    }));

    const THREADS: usize = 4;
    const ROUNDS: usize = 3;
    let barrier = Arc::new(Barrier::new(THREADS));
    let mut handles = Vec::new();
    for t in 0..THREADS {
        let svc = svc.clone();
        let combos = combos.clone();
        let barrier = barrier.clone();
        handles.push(std::thread::spawn(move || {
            barrier.wait();
            let mut out = Vec::new();
            for r in 0..ROUNDS {
                for i in 0..combos.len() {
                    let at = (i + t + r) % combos.len();
                    let (expr, isa) = &combos[at];
                    out.push((at, svc.handle(&Request::Compile(spec(expr, *isa, None)))));
                }
            }
            out
        }));
    }
    for h in handles {
        for (combo, v) in h.join().expect("stress thread") {
            assert_eq!(get(&v, "ok").as_bool(), Some(true), "{v:?}");
            let (lowered, program, _) = &truth[combo];
            assert_eq!(get(&v, "lowered").as_str(), Some(lowered.as_str()), "combo {combo}");
            assert_eq!(get(&v, "program").as_str(), Some(program.as_str()), "combo {combo}");
        }
    }
    let cs = svc.cache_stats();
    assert!(cs.evictions > 0, "a 512-byte budget must evict constantly");
    assert!(cs.resident_bytes <= 512 || cs.resident_count <= 1, "budget overshoot: {cs:?}");
}

#[test]
fn run_responses_match_direct_execution() {
    let svc = Service::new(ServiceConfig {
        cache_bytes: 64 << 20,
        workers: 2,
        queue_capacity: 16,
        default_timeout_ms: None,
        cache_dir: None,
        cache_max_bytes: None,
        cache_max_age: None,
    });
    let expr = "u8(min(u16(a_u8) + u16(b_u8), 255))";
    let lanes = 32u32;
    let a: Vec<i128> = (0..lanes as i128).map(|i| (i * 9) % 256).collect();
    let b: Vec<i128> = (0..lanes as i128).map(|i| (i * 31) % 256).collect();

    let mut sp = spec(expr, fpir::Isa::ArmNeon, None);
    sp.lanes = lanes;
    let v = svc.handle(&Request::Run {
        spec: sp,
        inputs: vec![("a".to_string(), a.clone()), ("b".to_string(), b.clone())],
    });
    assert_eq!(get(&v, "ok").as_bool(), Some(true), "{v:?}");
    let served: Vec<i128> =
        get(&v, "output").as_array().unwrap().iter().map(|x| x.as_int().unwrap()).collect();

    // Ground truth: the direct driver + linked executable.
    let pf = Pitchfork::new(fpir::Isa::ArmNeon);
    let e = fpir::parser::parse_expr(expr, lanes).unwrap();
    let art = compile_to_executable(&pf, &e).unwrap();
    let mut env = fpir::interp::Env::new();
    for (name, ty) in e.free_vars() {
        let data = if name == "a" { a.clone() } else { b.clone() };
        env.insert(name, fpir::interp::Value::new(ty, data));
    }
    let mut ctx = art.exe.new_ctx();
    let direct = art.exe.run(&mut ctx, &env).unwrap();
    assert_eq!(served, direct.lanes(), "served run must be bit-identical to direct execution");
}

#[test]
fn expired_deadline_is_a_structured_timeout_and_cache_stays_consistent() {
    // One worker: a slow compile in front guarantees the deadlined
    // request is still queued when its budget expires.
    let svc = Arc::new(Service::new(ServiceConfig {
        cache_bytes: 64 << 20,
        workers: 1,
        queue_capacity: 16,
        default_timeout_ms: None,
        cache_dir: None,
        cache_max_bytes: None,
        cache_max_age: None,
    }));
    let combos = combos();
    let (slow_expr, slow_isa) = combos.last().unwrap().clone();
    let (fast_expr, fast_isa) = combos.first().unwrap().clone();

    let slow = {
        let svc = svc.clone();
        let e = slow_expr.clone();
        std::thread::spawn(move || svc.handle(&Request::Compile(spec(&e, slow_isa, None))))
    };
    // Let the slow compile occupy the only worker, then race a 1 ms
    // deadline against a queue that can't drain it in time.
    std::thread::sleep(std::time::Duration::from_millis(5));
    let v = svc.handle(&Request::Compile(spec(&fast_expr, fast_isa, Some(1))));
    let timed_out = get(&v, "ok").as_bool() == Some(false);
    if timed_out {
        assert_eq!(get(&v, "code").as_str(), Some("timeout"), "{v:?}");
        assert!(Stats::read(&svc.stats().timeouts) >= 1);
    }
    // Whether or not the race produced the timeout (a fast machine may
    // finish the slow compile first), the cache must stay consistent:
    // the same request with a sane budget succeeds and matches the
    // direct compiler.
    let ok = svc.handle(&Request::Compile(spec(&fast_expr, fast_isa, Some(60_000))));
    assert_eq!(get(&ok, "ok").as_bool(), Some(true), "{ok:?}");
    let (lowered, program, _) = direct(&fast_expr, fast_isa);
    assert_eq!(get(&ok, "lowered").as_str(), Some(lowered.as_str()));
    assert_eq!(get(&ok, "program").as_str(), Some(program.as_str()));
    let slow_v = slow.join().unwrap();
    assert_eq!(get(&slow_v, "ok").as_bool(), Some(true), "{slow_v:?}");
}
