//! Service-level tests of the disk spill store: restart-warm refill,
//! the crash-consistency matrix (every torn or tampered file is
//! skipped and unlinked at startup, never served), rule-toggle
//! isolation, and the disk-refill path when the in-memory LRU is too
//! small to retain what it compiled.

use pitchfork_service::protocol::CompileSpec;
use pitchfork_service::{Json, Request, Service, ServiceConfig, Stats};
use std::path::{Path, PathBuf};

const SAT_ADD: &str = "u8(min(u16(a_u8) + u16(b_u8), 255))";
const PLAIN_ADD: &str = "a_u8 + b_u8";
const MIN_EXPR: &str = "min(a_u8, b_u8)";

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pf-persist-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn config(dir: &Path, cache_bytes: usize) -> ServiceConfig {
    ServiceConfig {
        cache_bytes,
        workers: 2,
        queue_capacity: 16,
        default_timeout_ms: None,
        cache_dir: Some(dir.to_path_buf()),
        cache_max_bytes: None,
        cache_max_age: None,
    }
}

fn compile(expr: &str, synthesized_rules: bool) -> Request {
    Request::Compile(CompileSpec {
        expr: expr.to_string(),
        lanes: 16,
        isa: fpir::Isa::ArmNeon,
        engine: pitchfork::EngineConfig::FAST,
        synthesized_rules,
        leave_out: None,
        timeout_ms: None,
    })
}

fn assert_ok(v: &Json, what: &str) {
    assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true), "{what}: {v:?}");
}

fn source(v: &Json) -> Option<&str> {
    v.get("source").and_then(Json::as_str)
}

/// The `.pfa` files in a spill directory, sorted.
fn spill_files(dir: &Path) -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)
        .map(|rd| {
            rd.filter_map(|e| e.ok())
                .map(|e| e.path())
                .filter(|p| p.extension().is_some_and(|x| x == "pfa"))
                .collect()
        })
        .unwrap_or_default();
    files.sort();
    files
}

#[test]
fn restart_refills_the_cache_from_disk() {
    let dir = temp_dir("warm");
    let exprs = [SAT_ADD, PLAIN_ADD, MIN_EXPR];

    let a = Service::new(config(&dir, 64 << 20));
    let mut truth = Vec::new();
    for e in exprs {
        let v = a.handle(&compile(e, true));
        assert_ok(&v, e);
        assert_eq!(source(&v), Some("computed"));
        truth.push(v.render());
    }
    // `cached`/`source` legitimately differ between a fresh compile and
    // a warm hit; everything else must round-trip exactly.
    fn strip_provenance(rendered: &str) -> String {
        match pitchfork_service::json::parse(rendered).unwrap() {
            Json::Object(members) => Json::Object(
                members
                    .into_iter()
                    .filter(|(k, _)| k != "cached" && k != "source")
                    .collect::<Vec<_>>(),
            )
            .render(),
            other => other.render(),
        }
    }
    assert_eq!(Stats::read(&a.stats().disk_spills), exprs.len() as u64);
    drop(a);

    let b = Service::new(config(&dir, 64 << 20));
    assert_eq!(Stats::read(&b.stats().disk_loaded), exprs.len() as u64);
    assert_eq!(Stats::read(&b.stats().disk_rejected), 0);
    for (e, t) in exprs.iter().zip(&truth) {
        let v = b.handle(&compile(e, true));
        assert_eq!(source(&v), Some("hit"), "{e} must be restart-warm: {v:?}");
        assert_eq!(
            strip_provenance(&v.render()),
            strip_provenance(t),
            "{e}: restart-warm artifact must be bit-identical"
        );
    }
    assert_eq!(Stats::read(&b.stats().compiles), 0, "nothing recompiles after a warm restart");
    let _ = std::fs::remove_dir_all(&dir);
}

/// The crash-consistency matrix: a truncated entry, a flipped body
/// byte, a stale version header, and a leftover tmp file each get
/// skipped and unlinked at startup — and the intact entries still load.
#[test]
fn startup_sweeps_torn_and_tampered_entries() {
    let dir = temp_dir("crash");
    let a = Service::new(config(&dir, 64 << 20));
    for e in [SAT_ADD, PLAIN_ADD, MIN_EXPR] {
        assert_ok(&a.handle(&compile(e, true)), e);
    }
    drop(a);
    let files = spill_files(&dir);
    assert_eq!(files.len(), 3, "three artifacts spilled");

    // files[0]: truncate mid-body. files[1]: flip one body byte.
    // files[2]: stamp a stale format version into the magic. Plus a
    // leftover tmp file from a simulated mid-spill crash.
    let bytes = std::fs::read(&files[0]).unwrap();
    std::fs::write(&files[0], &bytes[..bytes.len() / 2]).unwrap();
    let mut bytes = std::fs::read(&files[1]).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&files[1], &bytes).unwrap();
    let mut bytes = std::fs::read(&files[2]).unwrap();
    bytes[7] = b'9'; // pfspill1 -> pfspill9
    std::fs::write(&files[2], &bytes).unwrap();
    let tmp = dir.join("deadbeefdeadbeef.pfa.tmp-1-1");
    std::fs::write(&tmp, b"torn half-write").unwrap();

    let b = Service::new(config(&dir, 64 << 20));
    assert_eq!(Stats::read(&b.stats().disk_loaded), 0, "every tampered entry is refused");
    // Three tampered entries plus the swept tmp leftover.
    assert_eq!(Stats::read(&b.stats().disk_rejected), 4);
    assert!(!tmp.exists(), "leftover tmp files are swept");
    assert!(spill_files(&dir).is_empty(), "rejected entries are unlinked");

    // The daemon still serves: the keys just compile (and re-spill).
    let v = b.handle(&compile(SAT_ADD, true));
    assert_ok(&v, "recompile after sweep");
    assert_eq!(source(&v), Some("computed"));
    assert_eq!(spill_files(&dir).len(), 1, "the fresh artifact spilled again");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Flipping a rule toggle changes the cache key (and its fingerprint),
/// so a store populated under one rule set never answers for another.
#[test]
fn rule_toggle_misses_the_store() {
    let dir = temp_dir("rules");
    let a = Service::new(config(&dir, 64 << 20));
    assert_ok(&a.handle(&compile(SAT_ADD, true)), "synthesized compile");
    drop(a);

    let b = Service::new(config(&dir, 64 << 20));
    let v = b.handle(&compile(SAT_ADD, false));
    assert_ok(&v, "hand-only compile");
    assert_eq!(
        source(&v),
        Some("computed"),
        "a hand-rules-only request must not hit the synthesized-rules spill: {v:?}"
    );
    assert_eq!(Stats::read(&b.stats().disk_hits), 0);
    assert_eq!(spill_files(&dir).len(), 2, "each rule configuration has its own entry");
    let _ = std::fs::remove_dir_all(&dir);
}

/// With an in-memory budget too small to retain anything, a repeated
/// request refills from disk instead of recompiling: eviction loses the
/// bytes, not the work.
#[test]
fn evicted_entries_refill_from_disk_without_recompiling() {
    let dir = temp_dir("refill");
    // A 1-byte LRU budget: every artifact is evicted the moment it is
    // inserted, so only the disk copy survives.
    let svc = Service::new(config(&dir, 1));
    let first = svc.handle(&compile(SAT_ADD, true));
    assert_ok(&first, "first compile");
    assert_eq!(source(&first), Some("computed"));
    assert_eq!(Stats::read(&svc.stats().compiles), 1);
    assert_eq!(Stats::read(&svc.stats().disk_spills), 1);

    let again = svc.handle(&compile(SAT_ADD, true));
    assert_ok(&again, "refill request");
    assert_eq!(Stats::read(&svc.stats().disk_hits), 1, "the miss refilled from disk");
    assert_eq!(Stats::read(&svc.stats().compiles), 1, "nothing recompiled");
    assert_eq!(
        strip_source(&first),
        strip_source(&again),
        "disk-refilled response must match the compiled one"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// A response with its `source` member normalized away (a disk refill
/// legitimately reports a different source than the original compile).
fn strip_source(v: &Json) -> String {
    match v {
        Json::Object(members) => Json::Object(
            members.iter().filter(|(k, _)| k.as_str() != "source").cloned().collect::<Vec<_>>(),
        )
        .render(),
        other => other.render(),
    }
}
