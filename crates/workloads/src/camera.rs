//! The camera-pipe benchmark: a slice of a raw-to-RGB camera pipeline.
//!
//! White balance (Q8 gain multiplies), a demosaic-style neighbourhood
//! average (rounding and halving averages — the idioms §5.1.2 highlights),
//! a saturating combine, and a tone-mapping shift with round-to-nearest
//! down to 8 bits.

use crate::LANES;
use fpir::build::*;
use fpir::expr::RcExpr;
use fpir::types::{ScalarType as S, VectorType as V};
use fpir_halide::{tap, Pipeline};

/// Build the camera-pipe pipeline over a `u16` raw input.
pub fn camera_pipe() -> Pipeline {
    let t16 = V::new(S::U16, LANES);
    let raw = |dx: i32, dy: i32| tap("raw", dx, dy, S::U16, LANES);
    // White balance: multiply by a Q8 gain (~1.4x for the red site,
    // ~0.8x for the blue site).
    let wb_r = |e: RcExpr| mul_shr(e, constant(358, t16), constant(8, t16));
    let wb_b = |e: RcExpr| mul_shr(e, constant(205, t16), constant(8, t16));
    // Demosaic-style interpolation: rounding average of the horizontal
    // red sites, halving average of the vertical blue sites.
    let red = rounding_halving_add(wb_r(raw(0, 0)), wb_r(raw(2, 0)));
    let blue = halving_add(wb_b(raw(1, -1)), wb_b(raw(1, 1)));
    // Luma-ish combine with saturation, then tone-map to 8 bits with a
    // rounding shift (the fused shift-round-saturate of §5.3.2).
    let luma = saturating_add(red, blue);
    let toned = rounding_shr(luma, constant(5, t16));
    Pipeline::new("camera_pipe", saturating_cast(S::U8, toned))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpir_halide::Image;
    use std::collections::BTreeMap;

    #[test]
    fn camera_pipe_builds_and_runs() {
        let p = camera_pipe();
        let mut inputs = BTreeMap::new();
        inputs.insert("raw".to_string(), Image::filled(S::U16, 256, 4, 1000));
        let out = p.run_reference(&inputs).unwrap();
        // wb_r(1000) = 1398, wb_b(1000) = 800; avg pairs equal themselves;
        // luma = 2198; round(2198 / 32) = 69.
        assert!(out.data().iter().all(|&v| v == 69), "{:?}", &out.data()[..4]);
    }

    #[test]
    fn saturation_engages_on_bright_input() {
        let p = camera_pipe();
        let mut inputs = BTreeMap::new();
        inputs.insert("raw".to_string(), Image::filled(S::U16, 256, 4, 65535));
        let out = p.run_reference(&inputs).unwrap();
        assert!(out.data().iter().all(|&v| v == 255));
    }
}
