//! Quantized machine-learning kernel benchmarks.
//!
//! These mirror the ML half of the Rake suite: elementwise quantized ops,
//! matrix-multiply inner loops with dot products, depthwise convolution
//! with Q-format requantization, and poolings. Several deliberately use
//! `rounding_mul_shr` on 32-bit lanes — the operation that needs 64-bit
//! intermediates when expressed with primitive integers, which Hexagon
//! HVX cannot compile through the baseline flow (§5.1).

use crate::LANES;
use fpir::build::*;
use fpir::expr::RcExpr;
use fpir::types::{ScalarType as S, VectorType as V};
use fpir_halide::{tap, Pipeline};

fn u8_tap(b: &str, dx: i32) -> RcExpr {
    tap(b, dx, 0, S::U8, LANES)
}

/// Quantized elementwise add: a weighted blend renormalized with a
/// round-to-nearest shift, `u8((u16(a) + u16(b)*2 + 2) >> 2)`.
pub fn add_bench() -> Pipeline {
    let t16 = V::new(S::U16, LANES);
    let sum = add(widen(u8_tap("a", 0)), mul(widen(u8_tap("b", 0)), constant(2, t16)));
    let rounded = shr(add(sum.clone(), splat(2, &sum)), splat(2, &sum));
    Pipeline::new("add", cast(S::U8, rounded))
}

/// Quantized elementwise multiply in Q31: `rounding_mul_shr(a, b, 31)` on
/// i32 lanes — one of the three benchmarks whose primitive-integer form
/// needs 64-bit intermediates (§5.1) — followed by a rounding rescale and
/// saturating narrow to i16.
pub fn mul_bench() -> Pipeline {
    let t = V::new(S::I32, LANES);
    let a = tap("a", 0, 0, S::I32, LANES);
    let b = tap("b", 0, 0, S::I32, LANES);
    let product = rounding_mul_shr(a, b, constant(31, t));
    let rescaled = shr(product, constant(16, t));
    Pipeline::new("mul", saturating_cast(S::I16, rescaled))
}

/// A matrix-multiply inner step: a 4-way u8 dot product accumulated into
/// u32 (the `udot`/`vrmpy` shape), then Q31 requantization and a
/// saturating narrow chain down to u8.
pub fn matmul() -> Pipeline {
    let ti32 = V::new(S::I32, LANES);
    let acc = tap("acc", 0, 0, S::U32, LANES);
    let mut dot = acc;
    for i in 0..4 {
        let m = widening_mul(u8_tap("a", i), u8_tap("b", i));
        dot = add(cast(S::U32, m), dot);
    }
    // Requantize: treat as signed, scale by a Q31 constant, narrow.
    let signed = reinterpret(S::I32, dot);
    let scaled = rounding_mul_shr(signed, constant(1_518_500_250, ti32), constant(31, ti32));
    let narrowed = saturating_cast(S::I16, scaled);
    Pipeline::new("matmul", saturating_cast(S::U8, narrowed))
}

/// 3×3 convolution with i16 data and coefficients — the paired
/// multiply-add shape (`vdmpy` / `vpmaddwd`), saturating back to i16.
pub fn conv3x3a16() -> Pipeline {
    let t16 = V::new(S::I16, LANES);
    let t32 = V::new(S::I32, LANES);
    let t = |dx: i32, dy: i32| tap("in", dx, dy, S::I16, LANES);
    let k = |v: i128| constant(v, t16);
    let pair = |a: RcExpr, ka: i128, b: RcExpr, kb: i128| {
        add(widening_mul(a, k(ka)), widening_mul(b, k(kb)))
    };
    let p0 = pair(t(-1, -1), 1, t(0, -1), 2);
    let p1 = pair(t(1, -1), 1, t(-1, 0), 2);
    let p2 = pair(t(0, 0), 4, t(1, 0), 2);
    let p3 = pair(t(-1, 1), 1, t(0, 1), 2);
    let center = widening_mul(t(1, 1), k(1));
    let acc = add(add(add(p0, p1), add(p2, p3)), center);
    let scaled = shr(acc, constant(4, t32));
    Pipeline::new("conv3x3a16", saturating_cast(S::I16, scaled))
}

/// Depthwise convolution: three taps times u8 weights accumulated in i32,
/// bias, Q31 requantization (64-bit through primitive integers — §5.1),
/// saturating narrow to u8.
pub fn depthwise_conv() -> Pipeline {
    let t32 = V::new(S::I32, LANES);
    let w = |dx: i32, wv: i128| {
        let m = widening_mul(u8_tap("in", dx), constant(wv, V::new(S::U8, LANES)));
        cast(S::I32, cast(S::U32, m))
    };
    let acc = add(add(w(-1, 29), w(0, 110)), add(w(1, 29), constant(1024, t32)));
    let scaled = rounding_mul_shr(acc, constant(1_340_780_600, t32), constant(31, t32));
    let narrowed = saturating_cast(S::I16, scaled);
    Pipeline::new("depthwise_conv", saturating_cast(S::U8, narrowed))
}

/// 2×2 average pooling written with the branch-free magic-average idioms
/// — `(x & y) + ((x ^ y) >> 1)` and `(x | y) - ((x ^ y) >> 1)` — the
/// patterns only the synthesized rules lift (the §5.3 ablation's largest
/// delta, 4.99× on HVX).
pub fn average_pool() -> Pipeline {
    let floor_avg = |x: RcExpr, y: RcExpr| {
        add(bit_and(x.clone(), y.clone()), shr(bit_xor(x.clone(), y), splat(1, &x)))
    };
    let ceil_avg = |x: RcExpr, y: RcExpr| {
        sub(bit_or(x.clone(), y.clone()), shr(bit_xor(x.clone(), y), splat(1, &x)))
    };
    let r0 = floor_avg(u8_tap("in", 0), u8_tap("in", 1));
    let r1 = floor_avg(tap("in", 0, 1, S::U8, LANES), tap("in", 1, 1, S::U8, LANES));
    Pipeline::new("average_pool", ceil_avg(r0, r1))
}

/// 2×2 max pooling with a saturation clamp.
pub fn max_pool() -> Pipeline {
    let m = max(
        max(u8_tap("in", 0), u8_tap("in", 1)),
        max(tap("in", 0, 1, S::U8, LANES), tap("in", 1, 1, S::U8, LANES)),
    );
    Pipeline::new("max_pool", min(m.clone(), splat(250, &m)))
}

/// Windowed mean of four samples with round-to-nearest:
/// `u8((u16(a) + u16(b) + u16(c) + u16(d) + 2) >> 2)`.
pub fn mean() -> Pipeline {
    let sum = add(
        add(widen(u8_tap("in", 0)), widen(u8_tap("in", 1))),
        add(widen(u8_tap("in", 2)), widen(u8_tap("in", 3))),
    );
    let rounded = shr(add(sum.clone(), splat(2, &sum)), splat(2, &sum));
    Pipeline::new("mean", cast(S::U8, rounded))
}

/// L2 norm inner step: a 4-way sum of squares accumulated into u32 (the
/// dot-product shape with `a == b`), then a Q31 scale and saturating
/// narrow chain.
pub fn l2norm() -> Pipeline {
    let ti32 = V::new(S::I32, LANES);
    let acc = tap("acc", 0, 0, S::U32, LANES);
    let mut dot = acc;
    for i in 0..4 {
        let x = u8_tap("x", i);
        let m = widening_mul(x.clone(), x);
        dot = add(cast(S::U32, m), dot);
    }
    let signed = reinterpret(S::I32, dot);
    let scaled = rounding_mul_shr(signed, constant(1_151_906_403, ti32), constant(31, ti32));
    let narrowed = saturating_cast(S::I16, scaled);
    Pipeline::new("l2norm", saturating_cast(S::U8, narrowed))
}

/// Quantized fully-connected inner step: 4-way u8·u8 dot product plus
/// bias, Q15 requantization, saturating narrow to u8 (the TFLite
/// fully-connected recipe).
pub fn fully_connected() -> Pipeline {
    let t16 = V::new(S::I16, LANES);
    let acc = tap("bias", 0, 0, S::U32, LANES);
    let mut dot = acc;
    for i in 0..4 {
        let m = widening_mul(u8_tap("x", i), u8_tap("w", i));
        dot = add(cast(S::U32, m), dot);
    }
    // Narrow the accumulator into i16 with saturation, then Q15 scale.
    let narrowed = saturating_cast(S::I16, shr(dot.clone(), splat(4, &dot)));
    let scaled = rounding_mul_shr(narrowed, constant(27000, t16), constant(15, t16));
    Pipeline::new("fully_connected", saturating_cast(S::U8, scaled))
}

/// A fixed-point softmax stage: subtract the running maximum, apply a
/// shifted quadratic exp approximation in Q12, combine the neighbouring
/// terms with saturating adds, and normalize with a Q15 reciprocal
/// multiply. Deliberately the *largest* expression in the suite — the
/// paper's biggest compile-time win (§5.2) comes from softmax's size.
pub fn softmax() -> Pipeline {
    let t16 = V::new(S::I16, LANES);
    let x = |i: i32| u8_tap("x", i);
    // Running maximum of the window.
    let m = max(max(x(0), x(1)), max(x(2), x(3)));
    // exp2 approximation per element: e = 4096 - d*16 + mul_shr(d*4, d*4, 8)
    // over d = m - x (all in i16; d in [0, 255]).
    let expi = |i: i32| {
        let d = widening_sub(m.clone(), x(i));
        let d = reinterpret(S::I16, cast(S::U16, d));
        let lin = shl(d.clone(), constant(4, t16));
        let dq = shl(d, constant(2, t16));
        let quad = mul_shr(dq.clone(), dq, constant(8, t16));
        saturating_sub(saturating_add(constant(4096, t16), quad), lin)
    };
    let e0 = expi(0);
    let sum = saturating_add(saturating_add(e0.clone(), expi(1)), saturating_add(expi(2), expi(3)));
    // Normalize: out = sat_u8(rounding_mul_shr(e0 * recip(sum)...)) with a
    // fixed Q15 reciprocal estimate refined by one multiply.
    let recip = sub(constant(32767, t16), shr(sum, constant(2, t16)));
    let ratio = rounding_mul_shr(e0, recip, constant(12, t16));
    Pipeline::new("softmax", saturating_cast(S::U8, ratio))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpir_halide::Image;
    use std::collections::BTreeMap;

    #[test]
    fn pipelines_build() {
        for p in [
            add_bench(),
            mul_bench(),
            matmul(),
            conv3x3a16(),
            depthwise_conv(),
            average_pool(),
            max_pool(),
            softmax(),
        ] {
            assert!(!p.taps().is_empty(), "{}", p.name);
            assert!(p.expr.size() > 1, "{}", p.name);
        }
    }

    #[test]
    fn average_pool_matches_plain_average() {
        // The magic idiom must equal the rounding average of floor
        // averages on a checkerboard.
        let p = average_pool();
        let mut inputs = BTreeMap::new();
        inputs.insert(
            "in".to_string(),
            Image::from_rows(S::U8, &[vec![10, 20, 10, 20], vec![30, 40, 30, 40]]),
        );
        let out = p.run_reference(&inputs).unwrap();
        // floor((10+20)/2)=15, floor((30+40)/2)=35, ceil((15+35)/2)=25.
        assert_eq!(out.data()[0], 25);
    }

    #[test]
    fn mul_bench_is_q31_multiply() {
        let p = mul_bench();
        let mut inputs = BTreeMap::new();
        let half = 1i128 << 30; // 0.5 in Q31
        inputs.insert("a".to_string(), Image::filled(S::I32, 256, 1, half));
        inputs.insert("b".to_string(), Image::filled(S::I32, 256, 1, half));
        let out = p.run_reference(&inputs).unwrap();
        // 0.5 * 0.5 = 0.25 in Q31 = 2^29; rescaled by >> 16 = 8192, which
        // fits i16 without saturating.
        assert!(out.data().iter().all(|&v| v == 1i128 << 13), "{:?}", &out.data()[..2]);
    }

    #[test]
    fn softmax_is_largest_expression() {
        let sizes: Vec<(String, usize)> = crate::all_workloads()
            .into_iter()
            .map(|w| (w.pipeline.name.clone(), w.pipeline.expr.size()))
            .collect();
        let softmax_size = sizes.iter().find(|(n, _)| n == "softmax").unwrap().1;
        assert!(sizes.iter().all(|(n, s)| n == "softmax" || *s <= softmax_size), "{sizes:?}");
    }
}
