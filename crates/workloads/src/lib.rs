//! # fpir-workloads — the 16 fixed-point benchmarks
//!
//! The evaluation suite mirrors the fixed-point subset of the Rake
//! benchmarks the paper uses (§5): quantized machine-learning kernels,
//! computational photography, image processing, and computer vision — all
//! written as portable pipelines over image taps, with FPIR instructions
//! only where a fixed-point expert would write one.
//!
//! Each [`Workload`] carries its family tag and the input images a
//! benchmark run needs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod camera;
pub mod imaging;
pub mod ml;
pub mod unrolled;

use fpir_halide::{Image, Pipeline};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeMap;

/// Vector width shared by every benchmark (one full HVX register of
/// bytes; wider types span multiple native registers on every target).
pub const LANES: u32 = 128;

/// Which corner of the evaluation suite a benchmark comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Family {
    /// Quantized machine learning.
    QuantizedMl,
    /// Image processing.
    ImageProcessing,
    /// Computational photography.
    Photography,
    /// Computer vision.
    Vision,
}

impl std::fmt::Display for Family {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Family::QuantizedMl => "quantized ML",
            Family::ImageProcessing => "image processing",
            Family::Photography => "computational photography",
            Family::Vision => "computer vision",
        };
        f.write_str(s)
    }
}

/// One benchmark: a pipeline plus metadata.
#[derive(Debug, Clone)]
pub struct Workload {
    /// The pipeline (its name is the benchmark name).
    pub pipeline: Pipeline,
    /// Suite family.
    pub family: Family,
    /// One-line description.
    pub description: &'static str,
}

impl Workload {
    /// Benchmark name.
    pub fn name(&self) -> &str {
        &self.pipeline.name
    }

    /// Deterministic random input images sized `width × height` for every
    /// buffer the pipeline reads.
    pub fn random_inputs(&self, width: usize, height: usize, seed: u64) -> BTreeMap<String, Image> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut out = BTreeMap::new();
        for t in self.pipeline.taps() {
            out.entry(t.buffer.clone())
                .or_insert_with(|| Image::random(&mut rng, t.elem, width, height));
        }
        out
    }
}

fn w(pipeline: Pipeline, family: Family, description: &'static str) -> Workload {
    Workload { pipeline, family, description }
}

/// All 16 benchmarks of the evaluation suite, in the figure's
/// presentation order (the fixed-point subset of the Rake benchmarks).
pub fn all_workloads() -> Vec<Workload> {
    use Family::*;
    vec![
        w(ml::add_bench(), QuantizedMl, "quantized elementwise add with rounding renormalization"),
        w(ml::average_pool(), QuantizedMl, "2x2 average pooling via branch-free magic averages"),
        w(camera::camera_pipe(), Photography, "white balance, demosaic averages, tone shift"),
        w(ml::conv3x3a16(), QuantizedMl, "3x3 convolution, i16 data, paired multiply-adds"),
        w(
            ml::depthwise_conv(),
            QuantizedMl,
            "depthwise conv with Q31 requantization (64-bit through integers)",
        ),
        w(
            ml::fully_connected(),
            QuantizedMl,
            "quantized fully-connected: dot product + Q15 requant",
        ),
        w(
            imaging::gaussian3x3(),
            ImageProcessing,
            "separable [1 2 1]^2 Gaussian with rounding shift",
        ),
        w(imaging::gaussian5x5(), ImageProcessing, "5-tap Gaussian"),
        w(imaging::gaussian7x7(), ImageProcessing, "7-tap Gaussian with non-pow2 weights"),
        w(ml::l2norm(), QuantizedMl, "sum of squares + Q31 normalization"),
        w(ml::matmul(), QuantizedMl, "matmul inner step: 4-way u8 dot product + Q31 requant"),
        w(ml::mean(), QuantizedMl, "windowed mean with round-to-nearest"),
        w(ml::max_pool(), QuantizedMl, "2x2 max pooling with clamp"),
        w(ml::mul_bench(), QuantizedMl, "Q31 elementwise multiply (64-bit through integers)"),
        w(ml::softmax(), QuantizedMl, "fixed-point softmax stage (largest expression)"),
        w(imaging::sobel3x3(), Vision, "the Figure 2 Sobel gradient filter"),
    ]
}

/// Additional image-processing workloads exercised by the examples and
/// integration tests (not part of the 16-benchmark figure suite).
pub fn extra_workloads() -> Vec<Workload> {
    use Family::*;
    vec![
        w(imaging::blur3x3(), ImageProcessing, "box blur with truncating narrow"),
        w(imaging::dilate3x3(), Vision, "3x3 morphological dilation"),
        w(imaging::median3x3(), Vision, "approximate 3x3 median (min/max network)"),
    ]
}

/// The unrolled stencil variants (see [`unrolled`]): the DAG-shaped
/// expressions a vectorize-and-unroll Halide schedule hands the selector.
/// Benchmarked by `selection-bench` alongside the figure suite; kept out
/// of [`all_workloads`] so the figure reproductions stay the paper's 16.
pub fn unrolled_workloads() -> Vec<Workload> {
    use Family::*;
    vec![
        w(
            unrolled::gaussian5x5_u4(),
            ImageProcessing,
            "5x5 Gaussian pyramid step, unrolled x4 with shared column sums",
        ),
        w(
            unrolled::sobel3x3_u4(),
            Vision,
            "Sobel magnitude unrolled x4, shared smoothing kernels, max-pooled",
        ),
        w(
            unrolled::box4x4_u8(),
            ImageProcessing,
            "4x4 box filter unrolled x8 with shared column sums, decimated 8:1",
        ),
        w(
            unrolled::cascade121_u4(),
            ImageProcessing,
            "six cascaded [1 2 1] smoothing passes (13-tap binomial), unrolled x4",
        ),
        w(
            unrolled::dilate13_u4(),
            Vision,
            "13-wide dilation as six cascaded 3-wide maxima, unrolled x4",
        ),
        w(unrolled::fir16(), ImageProcessing, "16-tap symmetric FIR low-pass with rounding"),
    ]
}

/// Look up one benchmark by name (searching every group).
pub fn workload(name: &str) -> Option<Workload> {
    all_workloads()
        .into_iter()
        .chain(extra_workloads())
        .chain(unrolled_workloads())
        .find(|w| w.name() == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn there_are_sixteen() {
        assert_eq!(all_workloads().len(), 16);
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<String> = all_workloads().iter().map(|w| w.name().to_string()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 16);
    }

    #[test]
    fn every_workload_runs_on_random_inputs() {
        for wl in all_workloads().into_iter().chain(extra_workloads()).chain(unrolled_workloads()) {
            let inputs = wl.random_inputs(256, 3, 42);
            let out =
                wl.pipeline.run_reference(&inputs).unwrap_or_else(|e| panic!("{}: {e}", wl.name()));
            assert_eq!(out.width(), 256, "{}", wl.name());
        }
    }

    #[test]
    fn lanes_are_uniform() {
        for wl in all_workloads().into_iter().chain(unrolled_workloads()) {
            assert_eq!(wl.pipeline.lanes(), LANES, "{}", wl.name());
        }
    }

    #[test]
    fn names_are_unique_across_groups() {
        let mut names: Vec<String> = all_workloads()
            .iter()
            .chain(extra_workloads().iter())
            .chain(unrolled_workloads().iter())
            .map(|w| w.name().to_string())
            .collect();
        let total = names.len();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), total);
    }

    #[test]
    fn the_64_bit_trio_uses_wide_rounding_multiplies() {
        // §5.1: depthwise_conv, matmul and mul need 64-bit intermediates
        // when written with primitive integer arithmetic.
        use fpir::expr::{ExprKind, FpirOp};
        use fpir::types::ScalarType;
        for name in ["depthwise_conv", "matmul", "mul"] {
            let wl = workload(name).unwrap();
            let mut found = false;
            wl.pipeline.expr.visit(&mut |e| {
                if let ExprKind::Fpir(FpirOp::RoundingMulShr, _) = e.kind() {
                    found |= e.children()[0].elem() == ScalarType::I32;
                }
            });
            assert!(found, "{name} lacks the i32 rounding_mul_shr");
        }
    }
}
