//! Image-processing and computer-vision benchmarks.
//!
//! All pipelines are written *portably*: primitive integer arithmetic with
//! the occasional FPIR instruction where a fixed-point expert would reach
//! for one (`absd` in Sobel, exactly as Figure 2 of the paper shows).

use crate::LANES;
use fpir::build::*;
use fpir::expr::RcExpr;
use fpir::types::{ScalarType as S, VectorType as V};
use fpir_halide::{tap, Pipeline};

fn u8_tap(buffer: &str, dx: i32, dy: i32) -> RcExpr {
    tap(buffer, dx, dy, S::U8, LANES)
}

fn wide(e: RcExpr) -> RcExpr {
    widen(e)
}

fn u16c(v: i128) -> RcExpr {
    constant(v, V::new(S::U16, LANES))
}

/// The 3×3 Sobel gradient filter of Figure 2: two `[1 2 1]` smoothing
/// kernels, absolute differences, and a saturating 8-bit output.
pub fn sobel3x3() -> Pipeline {
    let k = |dx: i32, dy: i32| {
        add(
            add(wide(u8_tap("in", dx - 1, dy)), mul(wide(u8_tap("in", dx, dy)), u16c(2))),
            wide(u8_tap("in", dx + 1, dy)),
        )
    };
    let kv = |dx: i32, dy: i32| {
        add(
            add(wide(u8_tap("in", dx, dy - 1)), mul(wide(u8_tap("in", dx, dy)), u16c(2))),
            wide(u8_tap("in", dx, dy + 1)),
        )
    };
    let sobel_x = absd(k(0, -1), k(0, 1));
    let sobel_y = absd(kv(-1, 0), kv(1, 0));
    let sum = add(sobel_x, sobel_y);
    let clamped = min(sum.clone(), splat(255, &sum));
    Pipeline::new("sobel3x3", cast(S::U8, clamped))
}

/// A 2×2 box blur with truncating narrow: `u8((a + b + c + d) >> 2)`.
pub fn blur3x3() -> Pipeline {
    let sum = add(
        add(wide(u8_tap("in", 0, 0)), wide(u8_tap("in", 1, 0))),
        add(wide(u8_tap("in", 0, 1)), wide(u8_tap("in", 1, 1))),
    );
    let shifted = shr(sum.clone(), splat(2, &sum));
    Pipeline::new("blur3x3", cast(S::U8, shifted))
}

/// Separable `[1 2 1]²` Gaussian with round-to-nearest renormalization:
/// `u8((K + 8) >> 4)` — the bounds-predicated rounding-shift benchmark.
pub fn gaussian3x3() -> Pipeline {
    let w = [[1, 2, 1], [2, 4, 2], [1, 2, 1]];
    let mut sum: Option<RcExpr> = None;
    for (j, row) in w.iter().enumerate() {
        for (i, &c) in row.iter().enumerate() {
            let t = wide(u8_tap("in", i as i32 - 1, j as i32 - 1));
            let term = if c == 1 { t } else { mul(t, u16c(c)) };
            sum = Some(match sum {
                Some(s) => add(s, term),
                None => term,
            });
        }
    }
    let sum = sum.expect("kernel is non-empty");
    let rounded = shr(add(sum.clone(), splat(8, &sum)), splat(4, &sum));
    Pipeline::new("gaussian3x3", cast(S::U8, rounded))
}

/// Horizontal 5-tap `[1 4 6 4 1]` Gaussian, `u8((K + 8) >> 4)`.
pub fn gaussian5x5() -> Pipeline {
    let w = [1, 4, 6, 4, 1];
    let mut sum: Option<RcExpr> = None;
    for (i, &c) in w.iter().enumerate() {
        let t = wide(u8_tap("in", i as i32 - 2, 0));
        let term = if c == 1 { t } else { mul(t, u16c(c)) };
        sum = Some(match sum {
            Some(s) => add(s, term),
            None => term,
        });
    }
    let sum = sum.expect("kernel is non-empty");
    let rounded = shr(add(sum.clone(), splat(8, &sum)), splat(4, &sum));
    Pipeline::new("gaussian5x5", cast(S::U8, rounded))
}

/// Horizontal 7-tap `[1 6 15 20 15 6 1]` Gaussian with non-power-of-two
/// weights (widening multiplies by constants), `u8((K + 32) >> 6)`.
pub fn gaussian7x7() -> Pipeline {
    let w = [1, 6, 15, 20, 15, 6, 1];
    let mut sum: Option<RcExpr> = None;
    for (i, &c) in w.iter().enumerate() {
        let t = wide(u8_tap("in", i as i32 - 3, 0));
        let term = if c == 1 { t } else { mul(t, u16c(c)) };
        sum = Some(match sum {
            Some(s) => add(s, term),
            None => term,
        });
    }
    let sum = sum.expect("kernel is non-empty");
    let rounded = shr(add(sum.clone(), splat(32, &sum)), splat(6, &sum));
    Pipeline::new("gaussian7x7", cast(S::U8, rounded))
}

/// Morphological dilation: the maximum over the 3×3 neighbourhood.
pub fn dilate3x3() -> Pipeline {
    let mut m: Option<RcExpr> = None;
    for dy in -1..=1 {
        for dx in -1..=1 {
            let t = u8_tap("in", dx, dy);
            m = Some(match m {
                Some(acc) => max(acc, t),
                None => t,
            });
        }
    }
    Pipeline::new("dilate3x3", m.expect("neighbourhood is non-empty"))
}

/// Approximate 3×3 median: the median of per-row medians (the classic
/// min/max network approximation).
pub fn median3x3() -> Pipeline {
    let med3 = |a: RcExpr, b: RcExpr, c: RcExpr| {
        // med(a,b,c) = max(min(a,b), min(max(a,b), c))
        max(min(a.clone(), b.clone()), min(max(a, b), c))
    };
    let row = |dy: i32| med3(u8_tap("in", -1, dy), u8_tap("in", 0, dy), u8_tap("in", 1, dy));
    Pipeline::new("median3x3", med3(row(-1), row(0), row(1)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipelines_build_and_type_check() {
        for p in [
            sobel3x3(),
            blur3x3(),
            gaussian3x3(),
            gaussian5x5(),
            gaussian7x7(),
            dilate3x3(),
            median3x3(),
        ] {
            assert_eq!(p.out_elem(), S::U8, "{}", p.name);
            assert!(!p.taps().is_empty(), "{}", p.name);
        }
    }

    #[test]
    fn gaussian3x3_normalizes() {
        // A constant image must pass through unchanged (kernel sums to 16).
        use fpir_halide::Image;
        use std::collections::BTreeMap;
        let p = gaussian3x3();
        let mut inputs = BTreeMap::new();
        inputs.insert("in".to_string(), Image::filled(S::U8, 256, 4, 200));
        let out = p.run_reference(&inputs).unwrap();
        assert!(out.data().iter().all(|&v| v == 200));
    }

    #[test]
    fn dilate_is_neighbourhood_max() {
        use fpir_halide::Image;
        use std::collections::BTreeMap;
        let p = dilate3x3();
        let mut img = Image::filled(S::U8, 256, 3, 10);
        img.set(128, 1, 99);
        let mut inputs = BTreeMap::new();
        inputs.insert("in".to_string(), img);
        let out = p.run_reference(&inputs).unwrap();
        assert_eq!(out.data()[256 + 128], 99);
        assert_eq!(out.data()[256 + 127], 99);
        assert_eq!(out.data()[256 + 125], 10);
    }
}
