//! Unrolled stencil variants: the expression shapes Halide's
//! vectorize-and-unroll scheduling actually hands the instruction
//! selector.
//!
//! The figure-suite pipelines compute one output vector per expression.
//! Production Halide schedules additionally *unroll* the pure loop over
//! `x` and compute several adjacent output vectors together; because
//! adjacent stencil windows overlap, the unrolled right-hand side is a
//! DAG in which taps, smoothing kernels and column sums are shared
//! between neighbouring outputs instead of recomputed (§2 of the paper —
//! the selector is handed whole unrolled expressions, which is why its
//! cost must be linear in *unique* nodes rather than tree nodes).
//!
//! Each variant here fuses its unrolled outputs with the natural
//! decimating reduction — a Gaussian pyramid downsample, a max-pooled
//! gradient magnitude, a box-filter decimation — so the pipeline still
//! produces a single output vector and stays runnable on the reference
//! interpreter.

use crate::LANES;
use fpir::build::*;
use fpir::expr::RcExpr;
use fpir::types::{ScalarType as S, VectorType as V};
use fpir_halide::{tap, Pipeline};
use std::collections::HashMap;

/// An interned grid of widened `u8` taps: every `(dx, dy)` is one shared
/// node, exactly as a common-subexpression-eliminated unrolled loop body
/// references one load per distinct tap.
struct Taps(HashMap<(i32, i32), RcExpr>);

impl Taps {
    fn new() -> Taps {
        Taps(HashMap::new())
    }

    fn at(&mut self, dx: i32, dy: i32) -> RcExpr {
        self.0.entry((dx, dy)).or_insert_with(|| widen(tap("in", dx, dy, S::U8, LANES))).clone()
    }
}

fn c16(v: i128) -> RcExpr {
    constant(v, V::new(S::U16, LANES))
}

/// Weighted sum `Σ w_i · terms_i` (weight 1 skips the multiply).
fn weighted(terms: impl IntoIterator<Item = (i128, RcExpr)>) -> RcExpr {
    let mut sum: Option<RcExpr> = None;
    for (w, t) in terms {
        let term = if w == 1 { t } else { mul(t, c16(w)) };
        sum = Some(match sum {
            Some(s) => add(s, term),
            None => term,
        });
    }
    sum.expect("non-empty weighted sum")
}

/// Round-to-nearest renormalization `(e + 2^(k-1)) >> k`.
fn renorm(e: RcExpr, k: i128) -> RcExpr {
    shr(add(e.clone(), splat(1 << (k - 1), &e)), splat(k, &e))
}

/// One Gaussian-pyramid downsample step, unrolled by four: the separable
/// `[1 4 6 4 1]²` blur at four adjacent positions (vertical column sums
/// shared between overlapping horizontal windows), decimated 4:1 with a
/// rounding average.
pub fn gaussian5x5_u4() -> Pipeline {
    let w = [1i128, 4, 6, 4, 1];
    let mut taps = Taps::new();
    let cols: HashMap<i32, RcExpr> = (-2..=5)
        .map(|u| (u, weighted(w.iter().enumerate().map(|(j, &c)| (c, taps.at(u, j as i32 - 2))))))
        .collect();
    let outs: Vec<RcExpr> = (0..4)
        .map(|x| {
            let win = weighted(
                w.iter().enumerate().map(|(i, &c)| (c, cols[&(x + i as i32 - 2)].clone())),
            );
            renorm(win, 8)
        })
        .collect();
    let total = outs.into_iter().reduce(add).expect("four outputs");
    Pipeline::new("gaussian5x5_u4", cast(S::U8, renorm(total, 2)))
}

/// The Figure 2 Sobel filter, unrolled by four: gradient magnitude at
/// four adjacent positions (the vertical `[1 2 1]` smoothing kernels
/// shared between overlapping windows), max-pooled into one edge-presence
/// vector.
pub fn sobel3x3_u4() -> Pipeline {
    let mut taps = Taps::new();
    let mut smooth_v: HashMap<i32, RcExpr> = HashMap::new();
    for u in -1..=5 {
        let s = weighted([(1, taps.at(u, -1)), (2, taps.at(u, 0)), (1, taps.at(u, 1))]);
        smooth_v.insert(u, s);
    }
    let smooth_h = |taps: &mut Taps, o: i32, dy: i32| {
        weighted([(1, taps.at(o - 1, dy)), (2, taps.at(o, dy)), (1, taps.at(o + 1, dy))])
    };
    let outs: Vec<RcExpr> = (0..4)
        .map(|o| {
            let sx = absd(smooth_h(&mut taps, o, -1), smooth_h(&mut taps, o, 1));
            let sy = absd(smooth_v[&(o - 1)].clone(), smooth_v[&(o + 1)].clone());
            let sum = add(sx, sy);
            min(sum.clone(), splat(255, &sum))
        })
        .collect();
    let pooled = outs.into_iter().reduce(max).expect("four outputs");
    Pipeline::new("sobel3x3_u4", cast(S::U8, pooled))
}

/// A 4×4 box filter unrolled by eight: column sums shared between the
/// eight overlapping windows, decimated 8:1 with a rounding average —
/// the highest tree-to-DAG ratio in the suite.
pub fn box4x4_u8() -> Pipeline {
    let mut taps = Taps::new();
    let cols: HashMap<i32, RcExpr> =
        (0..=10).map(|u| (u, weighted((0..4).map(|j| (1, taps.at(u, j)))))).collect();
    let outs: Vec<RcExpr> = (0..8)
        .map(|x| {
            let win = weighted((0..4).map(|i| (1, cols[&(x + i)].clone())));
            renorm(win, 4)
        })
        .collect();
    let total = outs.into_iter().reduce(add).expect("eight outputs");
    Pipeline::new("box4x4_u8", cast(S::U8, renorm(total, 3)))
}

/// Six cascaded `[1 2 1]` smoothing passes (a 13-tap binomial low-pass —
/// the classic repeated-box Gaussian approximation), unrolled by four and
/// decimated 4:1. Every smoothing level is built over the *shared* level
/// below it, so tree size grows geometrically while unique nodes grow
/// linearly — the extreme of the DAG shapes unrolled schedules produce.
/// The accumulator renormalizes every two levels (kernel mass 16) to stay
/// within `u16`.
pub fn cascade121_u4() -> Pipeline {
    let mut taps = Taps::new();
    let mut level: HashMap<i32, RcExpr> = (-6..=9).map(|u| (u, taps.at(u, 0))).collect();
    let (mut lo, mut hi) = (-6i32, 9i32);
    for _ in 0..3 {
        for _ in 0..2 {
            lo += 1;
            hi -= 1;
            level = (lo..=hi)
                .map(|u| {
                    let s = weighted([
                        (1, level[&(u - 1)].clone()),
                        (2, level[&u].clone()),
                        (1, level[&(u + 1)].clone()),
                    ]);
                    (u, s)
                })
                .collect();
        }
        level = level.into_iter().map(|(u, e)| (u, renorm(e, 4))).collect();
    }
    let total = (0..4).map(|x| level[&x].clone()).reduce(add).expect("four outputs");
    Pipeline::new("cascade121_u4", cast(S::U8, renorm(total, 2)))
}

/// Morphological dilation by a 13-wide structuring element, as six
/// cascaded 3-wide maxima (the standard van Herk-style decomposition
/// before its running-max refinement), unrolled by four and max-pooled.
/// Like [`cascade121_u4`] the levels share geometrically.
pub fn dilate13_u4() -> Pipeline {
    let mut level: HashMap<i32, RcExpr> =
        (-6..=9).map(|u| (u, tap("in", u, 0, S::U8, LANES))).collect();
    let (mut lo, mut hi) = (-6i32, 9i32);
    for _ in 0..6 {
        lo += 1;
        hi -= 1;
        level = (lo..=hi)
            .map(|u| {
                let m =
                    max(max(level[&(u - 1)].clone(), level[&u].clone()), level[&(u + 1)].clone());
                (u, m)
            })
            .collect();
    }
    let pooled = (0..4).map(|x| level[&x].clone()).reduce(max).expect("four outputs");
    Pipeline::new("dilate13_u4", pooled)
}

/// A 16-tap symmetric FIR low-pass (weights summing to 128) with
/// round-to-nearest renormalization: the classic 1-D DSP kernel, one
/// long multiply-accumulate chain.
pub fn fir16() -> Pipeline {
    let w = [1i128, 2, 4, 6, 9, 12, 14, 16, 16, 14, 12, 9, 6, 4, 2, 1];
    debug_assert_eq!(w.iter().sum::<i128>(), 128);
    let mut taps = Taps::new();
    let sum = weighted(w.iter().enumerate().map(|(i, &c)| (c, taps.at(i as i32 - 8, 0))));
    Pipeline::new("fir16", cast(S::U8, renorm(sum, 7)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpir_halide::Image;
    use std::collections::BTreeMap;

    fn run_flat(p: &Pipeline, fill: i128) -> Vec<i128> {
        let mut inputs = BTreeMap::new();
        inputs.insert("in".to_string(), Image::filled(S::U8, 256, 8, fill));
        p.run_reference(&inputs).unwrap().data().to_vec()
    }

    #[test]
    fn unrolled_pipelines_normalize_on_constant_images() {
        // Every kernel's weights sum to its renormalization divisor, so a
        // constant image passes through unchanged.
        for p in [gaussian5x5_u4(), box4x4_u8(), fir16(), cascade121_u4(), dilate13_u4()] {
            let out = run_flat(&p, 200);
            assert!(out.iter().all(|&v| v == 200), "{}", p.name);
        }
        // A constant image has zero gradient everywhere.
        let out = run_flat(&sobel3x3_u4(), 200);
        assert!(out.iter().all(|&v| v == 0));
    }

    #[test]
    fn unrolled_bodies_are_dags_not_trees() {
        use fpir::expr::Expr;
        use std::collections::HashSet;
        fn uniques(e: &RcExpr, seen: &mut HashSet<usize>) {
            if seen.insert(Expr::ptr_id(e)) {
                for c in e.children() {
                    uniques(c, seen);
                }
            }
        }
        // Sobel's horizontal smoothing kernels belong to a single window
        // each, so it shares less than the separable filters do.
        for (p, min_ratio_pct) in [
            (gaussian5x5_u4(), 200),
            (sobel3x3_u4(), 150),
            (box4x4_u8(), 200),
            (cascade121_u4(), 1000),
            (dilate13_u4(), 1000),
        ] {
            let mut seen = HashSet::new();
            uniques(&p.expr, &mut seen);
            let tree = p.expr.size();
            assert!(
                tree * 100 >= min_ratio_pct * seen.len(),
                "{}: tree {} vs unique {} — unrolled windows must share",
                p.name,
                tree,
                seen.len()
            );
        }
    }
}
