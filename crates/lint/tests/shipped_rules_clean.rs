//! The acceptance gate: the shipped hand-written lift rules and all three
//! lowering rule sets must come through `rulecheck` with no errors and no
//! warnings (notes — inherent target limits like HVX's missing 64-bit
//! lanes — are expected and allowed).

use pitchfork_lint::{check_rule_sets, tally, Severity};

#[test]
fn shipped_rule_sets_pass_rulecheck_at_deny_warnings() {
    let diags = check_rule_sets(&pitchfork::all_rule_sets());
    let loud: Vec<String> =
        diags.iter().filter(|d| d.severity >= Severity::Warning).map(ToString::to_string).collect();
    assert!(loud.is_empty(), "rulecheck is not clean:\n{}", loud.join("\n"));
}

#[test]
fn hvx_width_limits_show_up_as_notes() {
    // The paper's §5.1 compile failures: 32-bit widening ops on HVX. The
    // analysis must still *see* them — as notes, pinned on the target.
    let diags = check_rule_sets(&pitchfork::all_rule_sets());
    let (_, _, notes) = tally(&diags);
    assert!(notes > 0, "expected inherent HVX/x86 width-limit notes");
    assert!(diags.iter().any(|d| d.severity == Severity::Note && d.ruleset == "lower-hvx"));
}
