//! The acceptance gate: the shipped hand-written lift rules and every
//! lowering rule set must come through `rulecheck` with no errors and no
//! warnings (notes — inherent target limits like HVX's missing 64-bit
//! lanes — are expected and allowed).

use pitchfork_lint::{check_rule_sets, summarize_coverage, tally, Severity};

#[test]
fn shipped_rule_sets_pass_rulecheck_at_deny_warnings() {
    let diags = check_rule_sets(&pitchfork::all_rule_sets());
    let loud: Vec<String> =
        diags.iter().filter(|d| d.severity >= Severity::Warning).map(ToString::to_string).collect();
    assert!(loud.is_empty(), "rulecheck is not clean:\n{}", loud.join("\n"));
}

#[test]
fn hvx_width_limits_show_up_as_notes() {
    // The paper's §5.1 compile failures: 32-bit widening ops on HVX. The
    // analysis must still *see* them — as notes, pinned on the target.
    let diags = check_rule_sets(&pitchfork::all_rule_sets());
    let (_, _, notes) = tally(&diags);
    assert!(notes > 0, "expected inherent HVX/x86 width-limit notes");
    assert!(diags.iter().any(|d| d.severity == Severity::Note && d.ruleset == "lower-hvx"));
}

#[test]
fn coverage_summary_has_one_hole_free_row_per_backend() {
    let sets = pitchfork::all_rule_sets();
    let diags = check_rule_sets(&sets);
    let summary = summarize_coverage(&sets, &diags);
    // One census row per registered lowering TRS, in ALL_ISAS order.
    let names: Vec<&str> = summary.iter().map(|r| r.ruleset.as_str()).collect();
    assert_eq!(names, ["lower-x86", "lower-arm", "lower-hvx", "lower-rvv"]);
    for row in &summary {
        assert_eq!(row.holes, 0, "{row}");
        assert!(row.rules > 0, "{row}");
    }
    // HVX's missing 64-bit lanes surface here; RVV has no inherent limits.
    assert!(summary.iter().any(|r| r.ruleset == "lower-hvx" && r.notes > 0));
    assert!(summary.iter().any(|r| r.ruleset == "lower-rvv" && r.notes == 0));
}
