//! Satellite-requirement tests: a fixture set of known-bad rules, each of
//! which `rulecheck`'s analyses must flag — with the right analysis name.

use fpir::expr::{BinOp, CmpOp, FpirOp, RcExpr};
use fpir::Isa;
use fpir_synth::VerifyOptions;
use fpir_trs::dsl::*;
use fpir_trs::pattern::TypePat;
use fpir_trs::{Predicate, Rule, RuleClass, RuleSet, Template};
use pitchfork::{RegisteredRuleSet, RuleSetKind};
use pitchfork_lint::{coverage, predicates, shadowing, soundness, termination};
use pitchfork_lint::{Analysis, Severity};

/// A general rule followed by the specific rule it shadows.
#[test]
fn shadowed_rule_is_flagged_by_shadowing() {
    let mut set = RuleSet::new("fixture");
    // General: x + y -> widening-style rewrite (never mind the output).
    set.push(Rule::new(
        "general-add",
        RuleClass::Lift,
        pat_add(wild(0), wild(1)),
        tfpir2(FpirOp::SaturatingAdd, tw(0), tw(1)),
    ));
    // Specific: x + c — strictly fewer matches, same (trivial) predicate.
    set.push(Rule::new(
        "specific-add-const",
        RuleClass::Lift,
        pat_add(wild(0), cwild(1)),
        tfpir2(FpirOp::SaturatingAdd, tw(0), tw(1)),
    ));
    let diags = shadowing::check(&set);
    let hit = diags
        .iter()
        .find(|d| d.rule.as_deref() == Some("specific-add-const"))
        .expect("the shadowed rule must be reported");
    assert_eq!(hit.analysis, Analysis::Shadowing);
    assert_eq!(hit.severity, Severity::Warning);
    assert!(hit.detail.contains("general-add"));
}

/// A lift rule whose right-hand side costs more than its left-hand side.
#[test]
fn cost_increasing_lift_rule_is_flagged_by_termination() {
    let mut set = RuleSet::new("fixture");
    // x + y -> (x + y) + 0: strictly more expensive, can never fire.
    set.push(Rule::new(
        "inflate",
        RuleClass::Lift,
        pat_add(wild(0), wild(1)),
        tbin(
            fpir::expr::BinOp::Add,
            tbin(fpir::expr::BinOp::Add, tw(0), tw(1)),
            Template::Lit { value: 0, ty: fpir_trs::TyRef::OfWild(0) },
        ),
    ));
    let reg = RegisteredRuleSet { kind: RuleSetKind::Lift, set };
    let diags = termination::check(&reg);
    let hit = diags
        .iter()
        .find(|d| d.rule.as_deref() == Some("inflate") && d.severity == Severity::Error)
        .expect("the cost-increasing rule must be an error");
    assert_eq!(hit.analysis, Analysis::Termination);
    assert!(hit.detail.contains("cost"));
    assert!(hit.witness.is_some(), "descent failures carry a witness rewrite");
}

/// Two cost-neutral rules that rewrite into each other's left-hand sides.
#[test]
fn undischarged_rewrite_cycle_is_flagged_by_termination() {
    let mut set = RuleSet::new("fixture");
    // min(x, y) <-> min(y, x): each output matches the other (and itself)
    // and never descends, so the cycle is not broken by the cost measure.
    set.push(Rule::new(
        "swap-min",
        RuleClass::Lift,
        pat_min(wild(0), wild(1)),
        tbin(fpir::expr::BinOp::Min, tw(1), tw(0)),
    ));
    let reg = RegisteredRuleSet { kind: RuleSetKind::Lift, set };
    let diags = termination::check(&reg);
    assert!(
        diags.iter().any(|d| d.analysis == Analysis::Termination && d.detail.contains("cycle")),
        "cycle must be reported: {diags:?}"
    );
}

/// A coverage hole: one op/type pair the backend refuses.
#[test]
fn coverage_hole_is_flagged_with_witness() {
    let oracle = |e: &RcExpr| -> Result<(), String> {
        if e.to_string().contains("halving_add") {
            Err("planted hole".into())
        } else {
            Ok(())
        }
    };
    let diags = coverage::check_with_oracle("fixture-backend", &oracle, &|_| false);
    assert!(!diags.is_empty());
    for d in &diags {
        assert_eq!(d.analysis, Analysis::Coverage);
        assert_eq!(d.severity, Severity::Error);
        assert!(d.witness.as_deref().unwrap().contains("halving_add"));
    }
}

/// An empty lowering rule set produces no *errors* on a real target: every
/// remaining hole is the target's own limitation, not the (absent) rules'.
#[test]
fn empty_lower_set_blames_only_the_target() {
    let empty = RuleSet::new("empty");
    let diags = coverage::check(Isa::X86Avx2, &empty);
    assert!(diags.iter().all(|d| d.severity == Severity::Note), "{diags:?}");
}

/// A wrap-vs-saturate mismatch: `saturating_add(x, y)` rewritten to the
/// plain wrapping add. The abstract domains refuse to prove the two
/// equal, and the concrete check produces a counterexample (any pair
/// whose true sum overflows), so the rule is a `SOUND001` error.
#[test]
fn wrap_vs_saturate_rule_is_flagged_by_soundness() {
    let mut set = RuleSet::new("fixture");
    set.push(Rule::new(
        "planted-wrap-vs-saturate",
        RuleClass::Lift,
        pat_fpir2(FpirOp::SaturatingAdd, wild_v(0), wild_t(1, TypePat::Var(0))),
        tbin(BinOp::Add, tw(0), tw(1)),
    ));
    let diags = soundness::check(&set);
    let hit = diags
        .iter()
        .find(|d| d.rule.as_deref() == Some("planted-wrap-vs-saturate"))
        .expect("the unsound rule must be reported");
    assert_eq!(hit.analysis, Analysis::Soundness);
    assert_eq!(hit.code, "SOUND001");
    assert_eq!(hit.severity, Severity::Error);
    assert!(hit.witness.as_deref().unwrap_or("").contains("counterexample"), "{hit:?}");
}

/// A rule that is wrong at exactly one interior input pair — `x * y`
/// rewritten to something that sneaks in `x + y` when `(x, y) ==
/// (77, 123)`. Boundary-biased sampling never lands on that needle, so
/// with exhaustion disabled the rule passes as `sampled`; the 2^16-point
/// exhaustive sweep over the 8-bit instantiations finds it.
#[test]
fn needle_rule_is_caught_only_by_exhaustion() {
    let needle = Template::Select(
        Box::new(Template::Bin(
            BinOp::And,
            Box::new(Template::Cmp(CmpOp::Eq, Box::new(tw(0)), Box::new(tlit(77, 0)))),
            Box::new(Template::Cmp(CmpOp::Eq, Box::new(tw(1)), Box::new(tlit(123, 0)))),
        )),
        Box::new(tbin(BinOp::Add, tw(0), tw(1))),
        Box::new(tbin(BinOp::Mul, tw(0), tw(1))),
    );
    let mut set = RuleSet::new("fixture");
    set.push(Rule::new(
        "planted-needle",
        RuleClass::Lift,
        pat_mul(wild_v(0), wild_t(1, TypePat::Var(0))),
        needle,
    ));

    // Sampling alone (exhaustion off) misses the single bad point and
    // records an honest `sampled` verdict...
    let sampled_only =
        VerifyOptions { samples: 8, lanes: 64, exhaustive_8bit: false, exhaustive_points: 0 };
    let diags = soundness::check_with(&set, &sampled_only);
    assert_eq!(diags.len(), 1);
    assert_eq!(diags[0].code, "SOUND003", "sampling must miss the needle: {:?}", diags[0]);
    assert!(diags[0].detail.contains("sampled"), "{:?}", diags[0]);

    // ...while the exhaustive 8-bit sweep pins it as unsound.
    let exhaustive =
        VerifyOptions { samples: 8, lanes: 64, exhaustive_8bit: true, exhaustive_points: 1 << 16 };
    let diags = soundness::check_with(&set, &exhaustive);
    assert_eq!(diags.len(), 1);
    let hit = &diags[0];
    assert_eq!(hit.rule.as_deref(), Some("planted-needle"));
    assert_eq!(hit.code, "SOUND001");
    assert_eq!(hit.severity, Severity::Error);
    assert!(hit.witness.as_deref().unwrap_or("").contains("counterexample"), "{hit:?}");
}

/// A malformed predicate: empty range, unbound reference, contradiction.
#[test]
fn malformed_predicates_are_flagged_by_predicates_analysis() {
    let mut set = RuleSet::new("fixture");
    set.push(
        Rule::new("empty-range", RuleClass::Lift, pat_add(wild(0), cwild(1)), tw(0))
            .with_pred(Predicate::ConstInRange { id: 1, lo: 9, hi: 3 }),
    );
    set.push(
        Rule::new("unbound-ref", RuleClass::Lift, pat_add(wild(0), wild(1)), tw(0))
            .with_pred(Predicate::IsPow2(9)),
    );
    set.push(
        Rule::new("contradiction", RuleClass::Lift, pat_add(wild(0), cwild(1)), tw(0)).with_pred(
            Predicate::All(vec![
                Predicate::ConstEq { id: 1, value: 4 },
                Predicate::ConstEq { id: 1, value: 5 },
            ]),
        ),
    );
    let diags = predicates::check(&set);
    for rule in ["empty-range", "unbound-ref", "contradiction"] {
        let hit = diags
            .iter()
            .find(|d| d.rule.as_deref() == Some(rule) && d.severity == Severity::Error)
            .unwrap_or_else(|| panic!("rule `{rule}` must produce an error: {diags:?}"));
        assert_eq!(hit.analysis, Analysis::Predicates);
    }
}
