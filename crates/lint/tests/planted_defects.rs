//! Satellite-requirement tests: a fixture set of known-bad rules, each of
//! which `rulecheck`'s analyses must flag — with the right analysis name.

use fpir::expr::{FpirOp, RcExpr};
use fpir::Isa;
use fpir_trs::dsl::*;
use fpir_trs::{Predicate, Rule, RuleClass, RuleSet, Template};
use pitchfork::{RegisteredRuleSet, RuleSetKind};
use pitchfork_lint::{coverage, predicates, shadowing, termination};
use pitchfork_lint::{Analysis, Severity};

/// A general rule followed by the specific rule it shadows.
#[test]
fn shadowed_rule_is_flagged_by_shadowing() {
    let mut set = RuleSet::new("fixture");
    // General: x + y -> widening-style rewrite (never mind the output).
    set.push(Rule::new(
        "general-add",
        RuleClass::Lift,
        pat_add(wild(0), wild(1)),
        tfpir2(FpirOp::SaturatingAdd, tw(0), tw(1)),
    ));
    // Specific: x + c — strictly fewer matches, same (trivial) predicate.
    set.push(Rule::new(
        "specific-add-const",
        RuleClass::Lift,
        pat_add(wild(0), cwild(1)),
        tfpir2(FpirOp::SaturatingAdd, tw(0), tw(1)),
    ));
    let diags = shadowing::check(&set);
    let hit = diags
        .iter()
        .find(|d| d.rule.as_deref() == Some("specific-add-const"))
        .expect("the shadowed rule must be reported");
    assert_eq!(hit.analysis, Analysis::Shadowing);
    assert_eq!(hit.severity, Severity::Warning);
    assert!(hit.detail.contains("general-add"));
}

/// A lift rule whose right-hand side costs more than its left-hand side.
#[test]
fn cost_increasing_lift_rule_is_flagged_by_termination() {
    let mut set = RuleSet::new("fixture");
    // x + y -> (x + y) + 0: strictly more expensive, can never fire.
    set.push(Rule::new(
        "inflate",
        RuleClass::Lift,
        pat_add(wild(0), wild(1)),
        tbin(
            fpir::expr::BinOp::Add,
            tbin(fpir::expr::BinOp::Add, tw(0), tw(1)),
            Template::Lit { value: 0, ty: fpir_trs::TyRef::OfWild(0) },
        ),
    ));
    let reg = RegisteredRuleSet { kind: RuleSetKind::Lift, set };
    let diags = termination::check(&reg);
    let hit = diags
        .iter()
        .find(|d| d.rule.as_deref() == Some("inflate") && d.severity == Severity::Error)
        .expect("the cost-increasing rule must be an error");
    assert_eq!(hit.analysis, Analysis::Termination);
    assert!(hit.detail.contains("cost"));
    assert!(hit.witness.is_some(), "descent failures carry a witness rewrite");
}

/// Two cost-neutral rules that rewrite into each other's left-hand sides.
#[test]
fn undischarged_rewrite_cycle_is_flagged_by_termination() {
    let mut set = RuleSet::new("fixture");
    // min(x, y) <-> min(y, x): each output matches the other (and itself)
    // and never descends, so the cycle is not broken by the cost measure.
    set.push(Rule::new(
        "swap-min",
        RuleClass::Lift,
        pat_min(wild(0), wild(1)),
        tbin(fpir::expr::BinOp::Min, tw(1), tw(0)),
    ));
    let reg = RegisteredRuleSet { kind: RuleSetKind::Lift, set };
    let diags = termination::check(&reg);
    assert!(
        diags.iter().any(|d| d.analysis == Analysis::Termination && d.detail.contains("cycle")),
        "cycle must be reported: {diags:?}"
    );
}

/// A coverage hole: one op/type pair the backend refuses.
#[test]
fn coverage_hole_is_flagged_with_witness() {
    let oracle = |e: &RcExpr| -> Result<(), String> {
        if e.to_string().contains("halving_add") {
            Err("planted hole".into())
        } else {
            Ok(())
        }
    };
    let diags = coverage::check_with_oracle("fixture-backend", &oracle, &|_| false);
    assert!(!diags.is_empty());
    for d in &diags {
        assert_eq!(d.analysis, Analysis::Coverage);
        assert_eq!(d.severity, Severity::Error);
        assert!(d.witness.as_deref().unwrap().contains("halving_add"));
    }
}

/// An empty lowering rule set produces no *errors* on a real target: every
/// remaining hole is the target's own limitation, not the (absent) rules'.
#[test]
fn empty_lower_set_blames_only_the_target() {
    let empty = RuleSet::new("empty");
    let diags = coverage::check(Isa::X86Avx2, &empty);
    assert!(diags.iter().all(|d| d.severity == Severity::Note), "{diags:?}");
}

/// A malformed predicate: empty range, unbound reference, contradiction.
#[test]
fn malformed_predicates_are_flagged_by_predicates_analysis() {
    let mut set = RuleSet::new("fixture");
    set.push(
        Rule::new("empty-range", RuleClass::Lift, pat_add(wild(0), cwild(1)), tw(0))
            .with_pred(Predicate::ConstInRange { id: 1, lo: 9, hi: 3 }),
    );
    set.push(
        Rule::new("unbound-ref", RuleClass::Lift, pat_add(wild(0), wild(1)), tw(0))
            .with_pred(Predicate::IsPow2(9)),
    );
    set.push(
        Rule::new("contradiction", RuleClass::Lift, pat_add(wild(0), cwild(1)), tw(0)).with_pred(
            Predicate::All(vec![
                Predicate::ConstEq { id: 1, value: 4 },
                Predicate::ConstEq { id: 1, value: 5 },
            ]),
        ),
    );
    let diags = predicates::check(&set);
    for rule in ["empty-range", "unbound-ref", "contradiction"] {
        let hit = diags
            .iter()
            .find(|d| d.rule.as_deref() == Some(rule) && d.severity == Severity::Error)
            .unwrap_or_else(|| panic!("rule `{rule}` must produce an error: {diags:?}"));
        assert_eq!(hit.analysis, Analysis::Predicates);
    }
}
