//! Operator skeletons — the abstraction behind rewrite-cycle detection.
//!
//! A [`Skel`] keeps only the operator structure of a pattern or template:
//! wildcards become [`Skel::Any`], constants (constant wildcards, literal
//! and computed constants) become [`Skel::Const`], and every operator node
//! keeps its [`Label`] and children. Types and predicates are erased, so
//! `may_match` over skeletons over-approximates concrete matching: if a
//! rule's LHS can ever match inside another rule's RHS, the skeletons say
//! so (the converse may not hold — that is what makes the cycle analysis
//! sound as a *detector*: no rewrite cycle escapes it).

use fpir::expr::{BinOp, CmpOp, FpirOp};
use fpir::Isa;
use fpir_trs::{Pat, Template};

/// The operator at a skeleton node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Label {
    /// A primitive binary operation.
    Bin(BinOp),
    /// A comparison.
    Cmp(CmpOp),
    /// A select.
    Select,
    /// A wrapping cast (target type erased).
    Cast,
    /// A reinterpret.
    Reinterpret,
    /// Any saturating cast (the type parameter is erased so that
    /// `SaturatingCast(U8)` and `SatCast`-to-a-type-variable unify).
    SatCast,
    /// Any other FPIR instruction.
    Fpir(FpirOp),
    /// A machine instruction.
    Mach(Isa, u16),
}

impl Label {
    /// Whether operand order is irrelevant for matching.
    fn is_commutative(self) -> bool {
        match self {
            Label::Bin(op) => op.is_commutative(),
            Label::Fpir(op) => op.is_commutative(),
            _ => false,
        }
    }
}

fn fpir_label(op: FpirOp) -> Label {
    match op {
        FpirOp::SaturatingCast(_) => Label::SatCast,
        op => Label::Fpir(op),
    }
}

/// An operator skeleton.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Skel {
    /// An expression wildcard — stands for *any* expression.
    Any,
    /// A broadcast constant (value erased).
    Const,
    /// An operator with children.
    Node(Label, Vec<Skel>),
}

/// The skeleton of a pattern.
pub fn of_pat(p: &Pat) -> Skel {
    match p {
        Pat::Wild { .. } => Skel::Any,
        Pat::ConstWild { .. } | Pat::Lit(..) => Skel::Const,
        Pat::Bin(op, a, b) => Skel::Node(Label::Bin(*op), vec![of_pat(a), of_pat(b)]),
        Pat::Cmp(op, a, b) => Skel::Node(Label::Cmp(*op), vec![of_pat(a), of_pat(b)]),
        Pat::Select(c, t, f) => Skel::Node(Label::Select, vec![of_pat(c), of_pat(t), of_pat(f)]),
        Pat::Cast(_, a) => Skel::Node(Label::Cast, vec![of_pat(a)]),
        Pat::Reinterpret(_, a) => Skel::Node(Label::Reinterpret, vec![of_pat(a)]),
        Pat::SatCast(_, a) => Skel::Node(Label::SatCast, vec![of_pat(a)]),
        Pat::Fpir(op, args) => Skel::Node(fpir_label(*op), args.iter().map(of_pat).collect()),
        Pat::Mach(op, args) => {
            Skel::Node(Label::Mach(op.isa, op.code), args.iter().map(of_pat).collect())
        }
    }
}

/// The skeleton of a template. Wildcard substitutions become [`Skel::Any`]
/// because the substituted expression is arbitrary.
pub fn of_template(t: &Template) -> Skel {
    match t {
        Template::Wild(_) => Skel::Any,
        Template::Const { .. } | Template::Lit { .. } => Skel::Const,
        Template::Bin(op, a, b) => {
            Skel::Node(Label::Bin(*op), vec![of_template(a), of_template(b)])
        }
        Template::Cmp(op, a, b) => {
            Skel::Node(Label::Cmp(*op), vec![of_template(a), of_template(b)])
        }
        Template::Select(c, t, f) => {
            Skel::Node(Label::Select, vec![of_template(c), of_template(t), of_template(f)])
        }
        Template::Cast(_, a) => Skel::Node(Label::Cast, vec![of_template(a)]),
        Template::Reinterpret(_, a) => Skel::Node(Label::Reinterpret, vec![of_template(a)]),
        Template::Fpir(op, args) => {
            Skel::Node(fpir_label(*op), args.iter().map(of_template).collect())
        }
        Template::SatCast(_, a) => Skel::Node(Label::SatCast, vec![of_template(a)]),
        Template::Mach { op, args, .. } => {
            Skel::Node(Label::Mach(op.isa, op.code), args.iter().map(of_template).collect())
        }
    }
}

/// Can the pattern skeleton `pat` match some concrete expression the
/// term skeleton `term` can denote?
///
/// Over-approximate on both sides: `Any` in the pattern matches anything;
/// `Any` in the term denotes anything (so any pattern might match it);
/// `Const` in the term is only matched by `Any`/`Const` patterns, since an
/// operator node never matches a broadcast constant.
pub fn may_match(pat: &Skel, term: &Skel) -> bool {
    match (pat, term) {
        (Skel::Any, _) => true,
        (_, Skel::Any) => true,
        (Skel::Const, Skel::Const) => true,
        (Skel::Const, Skel::Node(..)) | (Skel::Node(..), Skel::Const) => false,
        (Skel::Node(lp, ps), Skel::Node(lt, ts)) => {
            if lp != lt || ps.len() != ts.len() {
                return false;
            }
            let straight = ps.iter().zip(ts).all(|(p, t)| may_match(p, t));
            if straight {
                return true;
            }
            lp.is_commutative()
                && ps.len() == 2
                && may_match(&ps[0], &ts[1])
                && may_match(&ps[1], &ts[0])
        }
    }
}

/// Every subterm of `s` (including `s` itself) that an operator pattern or
/// a constant pattern could anchor at — i.e. everything except bare
/// wildcards, which are already accounted for by the rewriter recursing
/// into substituted subexpressions that existed before the rewrite.
pub fn anchored_subterms(s: &Skel) -> Vec<&Skel> {
    let mut out = Vec::new();
    fn walk<'a>(s: &'a Skel, out: &mut Vec<&'a Skel>) {
        match s {
            Skel::Any => {}
            Skel::Const => out.push(s),
            Skel::Node(_, children) => {
                out.push(s);
                for c in children {
                    walk(c, out);
                }
            }
        }
    }
    walk(s, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpir_trs::dsl::*;

    #[test]
    fn commutative_matching_tries_both_orders() {
        // pattern: x + c   term: const + any
        let p = of_pat(&pat_add(wild(0), cwild(1)));
        let t = Skel::Node(Label::Bin(BinOp::Add), vec![Skel::Const, Skel::Any]);
        assert!(may_match(&p, &t));
        let t_rev = Skel::Node(Label::Bin(BinOp::Add), vec![Skel::Any, Skel::Const]);
        assert!(may_match(&p, &t_rev));
    }

    #[test]
    fn operator_mismatch_rejects() {
        let p = of_pat(&pat_add(wild(0), wild(1)));
        let t = Skel::Node(Label::Bin(BinOp::Mul), vec![Skel::Any, Skel::Any]);
        assert!(!may_match(&p, &t));
    }

    #[test]
    fn const_term_only_matched_by_leaf_patterns() {
        let p = of_pat(&pat_add(wild(0), wild(1)));
        assert!(!may_match(&p, &Skel::Const));
        assert!(may_match(&Skel::Const, &Skel::Const));
        assert!(may_match(&Skel::Any, &Skel::Const));
    }

    #[test]
    fn sat_cast_labels_unify_across_type_parameters() {
        use fpir::types::ScalarType;
        let a = fpir_label(FpirOp::SaturatingCast(ScalarType::U8));
        let b = fpir_label(FpirOp::SaturatingCast(ScalarType::I16));
        assert_eq!(a, b);
    }
}
