//! `rulecheck` — run the static rule-set analyses over every shipped TRS.
//!
//! ```text
//! rulecheck [--json] [--deny warnings] [--jobs N] [--analysis NAME]...
//! ```
//!
//! Exits non-zero when any *error* is found, or when `--deny warnings` is
//! given and any warning is found. Notes never affect the exit code.
//! `--jobs` (default: `PITCHFORK_JOBS` or the machine's parallelism) fans
//! the independent analysis × rule-set units out over a worker pool; the
//! diagnostic list is identical for any worker count. `--analysis`
//! restricts the run to the named analyses (repeatable).
//!
//! Every diagnostic carries a stable code (`TERM003`, `SOUND001`, …) in
//! both text and JSON output; tooling should match on codes, not on
//! message text.

use pitchfork_lint::{
    check_selected_jobs, render_report_json, summarize_coverage, tally, Analysis, Severity,
};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut json = false;
    let mut deny_warnings = false;
    let mut jobs = fpir_pool::default_jobs();
    let mut selected: Vec<Analysis> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--deny" => match args.next().as_deref() {
                Some("warnings") => deny_warnings = true,
                Some(other) => {
                    eprintln!("rulecheck: `--deny` expects `warnings`, got {other:?}");
                    return ExitCode::from(2);
                }
                None => {
                    eprintln!("rulecheck: `--deny` expects a value (`--deny warnings`)");
                    return ExitCode::from(2);
                }
            },
            "--jobs" => match args.next().and_then(|s| s.parse::<usize>().ok()) {
                Some(n) if n >= 1 => jobs = n,
                _ => {
                    eprintln!("rulecheck: `--jobs` expects a positive integer");
                    return ExitCode::from(2);
                }
            },
            "--analysis" => {
                match args.next().as_deref().map(|n| (Analysis::from_name(n), n.to_string())) {
                    Some((Some(a), _)) => selected.push(a),
                    Some((None, name)) => {
                        eprintln!(
                            "rulecheck: unknown analysis `{name}`; expected one of: {}",
                            Analysis::ALL.map(Analysis::name).join(", ")
                        );
                        return ExitCode::from(2);
                    }
                    None => {
                        eprintln!("rulecheck: `--analysis` expects a name (try --help)");
                        return ExitCode::from(2);
                    }
                }
            }
            "--help" | "-h" => {
                println!(
                    "usage: rulecheck [--json] [--deny warnings] [--jobs N] [--analysis NAME]..."
                );
                println!();
                println!("Statically analyzes the shipped lift/lower rule sets:");
                println!("  termination  strict cost descent + rewrite-cycle detection");
                println!("  shadowing    rules dead behind earlier, more general rules");
                println!("  coverage     FPIR ops a backend cannot select");
                println!("  predicates   malformed or contradictory side conditions");
                println!("  index        rules the root-operator rule index would mis-dispatch");
                println!("  soundness    per-rule semantic verdicts (proved/exhausted/sampled)");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("rulecheck: unknown argument `{other}` (try --help)");
                return ExitCode::from(2);
            }
        }
    }
    if selected.is_empty() {
        selected.extend(Analysis::ALL);
    }

    let sets = pitchfork::all_rule_sets();
    let mut diags = check_selected_jobs(&sets, &selected, &fpir_pool::Pool::new(jobs));
    // Most severe first, stable within a severity class.
    diags.sort_by_key(|d| std::cmp::Reverse(d.severity));

    // The per-backend census is only meaningful when coverage actually
    // ran; a filtered run would misreport every backend as hole-free.
    let summary = if selected.contains(&Analysis::Coverage) {
        summarize_coverage(&sets, &diags)
    } else {
        Vec::new()
    };

    if json {
        println!("{}", render_report_json(&summary, &diags));
    } else {
        for d in &diags {
            println!("{d}");
        }
        for row in &summary {
            println!("{row}");
        }
        let (errors, warnings, notes) = tally(&diags);
        println!(
            "rulecheck: {errors} error{}, {warnings} warning{}, {notes} note{}",
            plural(errors),
            plural(warnings),
            plural(notes)
        );
    }

    let fatal = diags.iter().any(|d| {
        d.severity == Severity::Error || (deny_warnings && d.severity == Severity::Warning)
    });
    if fatal {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn plural(n: usize) -> &'static str {
    if n == 1 {
        ""
    } else {
        "s"
    }
}
