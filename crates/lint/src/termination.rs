//! Termination analysis: strict cost descent plus rewrite-cycle detection.
//!
//! The rewriter (`fpir_trs::Rewriter`) only fires a rule when the output
//! is strictly cheaper than the input under the active cost model, so the
//! *engine* always terminates. What the paper's convergence argument
//! (§3.2) additionally requires is that every lift rule actually descends
//! in the target-agnostic cost on **every** type instantiation — a rule
//! that fails to descend is silently dead at those types, and a family of
//! rules that rewrite into each other's left-hand sides can mask each
//! other. This analysis reports:
//!
//! * **non-descending rules** — for the lifting TRS, a rule whose output
//!   does not strictly reduce [`AgnosticCost`] on some instantiation is an
//!   *error* (it violates the convergence requirement and can never fire
//!   there); for lowering TRSs the same check runs against that target's
//!   [`TargetCost`] and reports a *note* (target cost models are
//!   per-instruction and a tie merely means the rule is unreachable);
//! * **rewrite cycles** — strongly connected components of the abstract
//!   rewrite-reachability graph (rule A → rule B iff B's LHS skeleton may
//!   match inside A's RHS skeleton). A cycle whose members all provably
//!   descend is harmless — the cost measure breaks it — so only cycles
//!   containing an unproven rule are reported.

use crate::diagnostic::{Analysis, Diagnostic, Severity};
use crate::skeleton::{self, Skel};
use fpir_trs::rule::{instantiate_lhs_all, RuleSet};
use fpir_trs::{AgnosticCost, CostModel};
use pitchfork::{RegisteredRuleSet, RuleSetKind};

/// Whether strict cost descent was established for a rule.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Descent {
    /// Descends strictly on every instantiation that applies.
    Proven,
    /// At least one instantiation where the rule applies without strictly
    /// reducing cost (the string is a `lhs -> rhs` witness).
    Fails(String),
    /// No instantiation could be built or applied; nothing is known.
    Unknown,
}

/// Run the termination analysis over one registered rule set.
pub fn check(reg: &RegisteredRuleSet) -> Vec<Diagnostic> {
    let ruleset = reg.kind.to_string();
    let mut out = Vec::new();

    let statuses: Vec<Descent> = match reg.kind {
        RuleSetKind::Lift => {
            reg.set.rules().iter().map(|r| descent_status(r, &AgnosticCost)).collect()
        }
        RuleSetKind::Lower(isa) => reg
            .set
            .rules()
            .iter()
            .map(|r| descent_status(r, &fpir_isa::TargetCost::new(isa)))
            .collect(),
    };

    for (rule, status) in reg.set.rules().iter().zip(&statuses) {
        match status {
            Descent::Proven => {}
            Descent::Fails(witness) => {
                let (severity, detail) = match reg.kind {
                    RuleSetKind::Lift => (
                        Severity::Error,
                        "does not strictly reduce target-agnostic cost on every type \
                         instantiation (the rule is dead there and violates the \
                         convergence requirement)"
                            .to_string(),
                    ),
                    RuleSetKind::Lower(isa) => (
                        Severity::Note,
                        format!(
                            "does not strictly reduce {} target cost on some instantiation \
                             (the rule cannot fire there)",
                            isa.short_name()
                        ),
                    ),
                };
                out.push(Diagnostic {
                    severity,
                    analysis: Analysis::Termination,
                    code: "TERM001",
                    ruleset: ruleset.clone(),
                    rule: Some(rule.name.clone()),
                    detail,
                    witness: Some(witness.clone()),
                });
            }
            Descent::Unknown => out.push(Diagnostic {
                severity: Severity::Warning,
                analysis: Analysis::Termination,
                code: "TERM002",
                ruleset: ruleset.clone(),
                rule: Some(rule.name.clone()),
                detail: "left-hand side could not be instantiated; cost descent is unverified"
                    .to_string(),
                witness: None,
            }),
        }
    }

    out.extend(cycle_diagnostics(&reg.set, &ruleset, &statuses));
    out
}

fn descent_status<C: CostModel>(rule: &fpir_trs::Rule, model: &C) -> Descent {
    let instances = instantiate_lhs_all(rule, 4);
    if instances.is_empty() {
        return Descent::Unknown;
    }
    let mut applied_any = false;
    for inst in instances {
        let mut bounds = fpir::bounds::BoundsCtx::new();
        for (name, _) in inst.free_vars() {
            bounds.set_var_bound(name, fpir::bounds::Interval::new(0, 1));
        }
        let Some(rewritten) = rule.apply(&inst, &mut bounds) else {
            continue;
        };
        applied_any = true;
        if model.cost(&rewritten) >= model.cost(&inst) {
            return Descent::Fails(format!("{inst} -> {rewritten}"));
        }
    }
    if applied_any {
        Descent::Proven
    } else {
        Descent::Unknown
    }
}

/// Strongly connected components of the abstract rewrite graph, flagging
/// those not discharged by the cost measure.
fn cycle_diagnostics(set: &RuleSet, ruleset: &str, statuses: &[Descent]) -> Vec<Diagnostic> {
    let rules = set.rules();
    let lhs: Vec<Skel> = rules.iter().map(|r| skeleton::of_pat(&r.lhs)).collect();
    let rhs: Vec<Skel> = rules.iter().map(|r| skeleton::of_template(&r.rhs)).collect();

    // Edge i -> j iff rule j's LHS may match at an operator or constant
    // node produced by rule i's RHS.
    let n = rules.len();
    let mut succ: Vec<Vec<usize>> = vec![Vec::new(); n];
    for i in 0..n {
        let produced = skeleton::anchored_subterms(&rhs[i]);
        for (j, lhs_j) in lhs.iter().enumerate() {
            if produced.iter().any(|t| skeleton::may_match(lhs_j, t)) {
                succ[i].push(j);
            }
        }
    }

    let mut out = Vec::new();
    for scc in tarjan_sccs(&succ) {
        let cyclic = scc.len() > 1 || succ[scc[0]].contains(&scc[0]);
        if !cyclic {
            continue;
        }
        let unproven: Vec<usize> =
            scc.iter().copied().filter(|&i| statuses[i] != Descent::Proven).collect();
        if unproven.is_empty() {
            // Every member strictly descends: the cost measure breaks the
            // cycle, as in extending-add <-> extending-add-reassociate.
            continue;
        }
        let mut names: Vec<&str> = scc.iter().map(|&i| rules[i].name.as_str()).collect();
        names.sort_unstable();
        let chain = names.join(" -> ");
        out.push(Diagnostic {
            severity: Severity::Error,
            analysis: Analysis::Termination,
            code: "TERM003",
            ruleset: ruleset.to_string(),
            rule: Some(rules[unproven[0]].name.clone()),
            detail: format!(
                "possible rewrite cycle not broken by the cost measure: {chain} -> ... \
                 (member `{}` is not proven to strictly descend)",
                rules[unproven[0]].name
            ),
            witness: None,
        });
    }
    out
}

/// Iterative Tarjan SCC. Returns components in some order; each component
/// lists vertex indices in discovery order.
fn tarjan_sccs(succ: &[Vec<usize>]) -> Vec<Vec<usize>> {
    let n = succ.len();
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut sccs: Vec<Vec<usize>> = Vec::new();

    // Explicit call stack: (vertex, next-successor position).
    for start in 0..n {
        if index[start] != usize::MAX {
            continue;
        }
        let mut call: Vec<(usize, usize)> = vec![(start, 0)];
        while let Some(&mut (v, ref mut pos)) = call.last_mut() {
            if *pos == 0 {
                index[v] = next_index;
                low[v] = next_index;
                next_index += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            if let Some(&w) = succ[v].get(*pos) {
                *pos += 1;
                if index[w] == usize::MAX {
                    call.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                if low[v] == index[v] {
                    let mut comp = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w] = false;
                        comp.push(w);
                        if w == v {
                            break;
                        }
                    }
                    comp.reverse();
                    sccs.push(comp);
                }
                call.pop();
                if let Some(&mut (parent, _)) = call.last_mut() {
                    low[parent] = low[parent].min(low[v]);
                }
            }
        }
    }
    sccs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tarjan_finds_two_cycle() {
        // 0 -> 1 -> 0, 2 isolated.
        let succ = vec![vec![1], vec![0], vec![]];
        let sccs = tarjan_sccs(&succ);
        let mut sizes: Vec<usize> = sccs.iter().map(Vec::len).collect();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![1, 2]);
    }

    #[test]
    fn tarjan_handles_self_loop_and_chain() {
        // 0 -> 0, 0 -> 1 -> 2.
        let succ = vec![vec![0, 1], vec![2], vec![]];
        let sccs = tarjan_sccs(&succ);
        assert_eq!(sccs.len(), 3);
    }
}
