//! Predicate-soundness analysis: malformed side conditions and rule
//! structure that can never work.
//!
//! Everything here is per-rule and purely structural:
//!
//! * wildcard indices (pattern, predicate, and template) must stay below
//!   `MAX_WILDS` — out-of-range ids panic at match time;
//! * predicate references must resolve: a constant predicate on a
//!   wildcard the LHS never binds is always false (the rule is dead), and
//!   one on an *expression* wildcard only holds if that expression happens
//!   to be a broadcast constant (almost always an authoring slip);
//! * template references must be bound by the LHS, or substitution fails
//!   on every match;
//! * `ConstInRange` must be non-empty, and conjunctions must be free of
//!   duplicates and of contradictions (`c == 3 && is_pow2(c)` can never
//!   fire).

use crate::diagnostic::{Analysis, Diagnostic, Severity};
use fpir_trs::pattern::MAX_WILDS;
use fpir_trs::rule::{collect_const_wilds, collect_type_vars, Rule, RuleSet};
use fpir_trs::{Pat, Predicate, Template, TyRef, TypePat};

/// Run the predicate analysis over one rule set.
pub fn check(set: &RuleSet) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for rule in set.rules() {
        check_rule(rule, &set.name, &mut out);
    }
    out
}

fn check_rule(rule: &Rule, ruleset: &str, out: &mut Vec<Diagnostic>) {
    let mut diag = |code: &'static str, severity: Severity, detail: String| {
        out.push(Diagnostic {
            severity,
            analysis: Analysis::Predicates,
            code,
            ruleset: ruleset.to_string(),
            rule: Some(rule.name.clone()),
            detail,
            witness: None,
        });
    };

    let expr_wilds = collect_expr_wilds(&rule.lhs);
    let const_wilds = collect_const_wilds(&rule.lhs);
    let type_vars = collect_type_vars(&rule.lhs);

    // --- index ranges ---------------------------------------------------
    for &id in expr_wilds.iter().chain(&const_wilds) {
        if id as usize >= MAX_WILDS {
            diag(
                "PRED001",
                Severity::Error,
                format!("pattern wildcard index {id} is out of range (max {})", MAX_WILDS - 1),
            );
        }
    }
    for &id in &type_vars {
        if id as usize >= MAX_WILDS {
            diag(
                "PRED001",
                Severity::Error,
                format!("type variable index {id} is out of range (max {})", MAX_WILDS - 1),
            );
        }
    }
    for id in rule.pred.const_refs().into_iter().chain(rule.pred.expr_refs()) {
        if id as usize >= MAX_WILDS {
            diag(
                "PRED001",
                Severity::Error,
                format!("predicate wildcard index {id} is out of range (max {})", MAX_WILDS - 1),
            );
        }
    }

    // --- predicate references resolve ------------------------------------
    for id in rule.pred.const_refs() {
        if const_wilds.contains(&id) {
            continue;
        }
        if expr_wilds.contains(&id) {
            diag(
                "PRED002",
                Severity::Warning,
                format!(
                    "constant predicate reads wildcard x{id}, which the pattern binds as an \
                     arbitrary expression — the rule only fires when it happens to be a \
                     broadcast constant"
                ),
            );
        } else {
            diag(
                "PRED003",
                Severity::Error,
                format!(
                    "constant predicate reads wildcard c{id}, which the pattern never binds \
                     — the predicate is always false and the rule is dead"
                ),
            );
        }
    }
    for id in rule.pred.expr_refs() {
        if !expr_wilds.contains(&id) && !const_wilds.contains(&id) {
            diag(
                "PRED004",
                Severity::Error,
                format!(
                    "predicate reads wildcard x{id}, which the pattern never binds — the \
                     predicate is always false and the rule is dead"
                ),
            );
        }
    }

    // --- template references resolve --------------------------------------
    let mut t_exprs = Vec::new();
    let mut t_tyvars = Vec::new();
    collect_template_refs(&rule.rhs, &mut t_exprs, &mut t_tyvars);
    for id in t_exprs {
        if id as usize >= MAX_WILDS {
            diag(
                "PRED001",
                Severity::Error,
                format!("template wildcard index {id} is out of range (max {})", MAX_WILDS - 1),
            );
        } else if !expr_wilds.contains(&id) && !const_wilds.contains(&id) {
            diag(
                "PRED005",
                Severity::Error,
                format!(
                    "template references wildcard x{id}, which the pattern never binds — \
                     substitution fails on every match"
                ),
            );
        }
    }
    for id in t_tyvars {
        if !type_vars.contains(&id) {
            diag(
                "PRED006",
                Severity::Error,
                format!("template references type variable t{id}, which the pattern never binds"),
            );
        }
    }

    // --- conjunction structure --------------------------------------------
    if has_empty_all(&rule.pred) {
        diag(
            "PRED007",
            Severity::Warning,
            "predicate contains an empty conjunction `All([])`, which is trivially true — \
             probably an unfinished side condition"
                .to_string(),
        );
    }
    let leaves = rule.pred.conjuncts();
    for (i, a) in leaves.iter().enumerate() {
        if leaves[..i].contains(a) && !matches!(a, Predicate::True) {
            diag("PRED008", Severity::Warning, format!("duplicate conjunct {a:?}"));
        }
    }

    // --- per-leaf sanity ---------------------------------------------------
    for leaf in &leaves {
        if let Predicate::ConstInRange { id, lo, hi } = leaf {
            if lo > hi {
                diag(
                    "PRED009",
                    Severity::Error,
                    format!("`ConstInRange` on c{id} is empty ({lo}..={hi}) — the rule is dead"),
                );
            } else if lo == hi {
                diag(
                    "PRED010",
                    Severity::Note,
                    format!(
                        "`ConstInRange` on c{id} admits the single value {lo}; `ConstEq` says \
                         the same thing more directly"
                    ),
                );
            }
        }
    }

    // --- contradictions ----------------------------------------------------
    for (i, a) in leaves.iter().enumerate() {
        for b in &leaves[i + 1..] {
            if let Some(why) = contradicts(a, b) {
                diag(
                    "PRED011",
                    Severity::Error,
                    format!("contradictory conjuncts — {why}; the rule is dead"),
                );
            }
        }
    }
}

/// Why two conjuncts can never hold together, if they cannot.
fn contradicts(a: &Predicate, b: &Predicate) -> Option<String> {
    use Predicate::*;
    // Normalize so the match below only needs one order.
    let pair = [(a, b), (b, a)];
    for (p, q) in pair {
        match (p, q) {
            (ConstEq { id: i1, value: v1 }, ConstEq { id: i2, value: v2 })
                if i1 == i2 && v1 != v2 =>
            {
                return Some(format!("c{i1} cannot equal both {v1} and {v2}"));
            }
            (ConstEq { id: i1, value }, ConstInRange { id: i2, lo, hi })
                if i1 == i2 && (value < lo || value > hi) =>
            {
                return Some(format!("c{i1} == {value} is outside {lo}..={hi}"));
            }
            (
                ConstInRange { id: i1, lo: lo1, hi: hi1 },
                ConstInRange { id: i2, lo: lo2, hi: hi2 },
            ) if i1 == i2 && (lo1 > hi2 || lo2 > hi1) => {
                return Some(format!(
                    "ranges {lo1}..={hi1} and {lo2}..={hi2} for c{i1} are disjoint"
                ));
            }
            (IsPow2(i1), ConstEq { id: i2, value })
                if i1 == i2 && !fpir::simplify::is_pow2(*value) =>
            {
                return Some(format!("c{i1} must be a power of two but also equal {value}"));
            }
            (IsPow2(i1), ConstInRange { id: i2, hi, .. }) if i1 == i2 && *hi < 1 => {
                return Some(format!("c{i1} must be a power of two but is bounded above by {hi}"));
            }
            (IsUnsigned(i1), IsSigned(i2)) if i1 == i2 => {
                return Some(format!("x{i1} cannot be both unsigned and signed"));
            }
            _ => {}
        }
    }
    None
}

/// The expression-wildcard ids bound by a pattern.
fn collect_expr_wilds(pat: &Pat) -> Vec<u8> {
    let mut out = Vec::new();
    fn walk(p: &Pat, out: &mut Vec<u8>) {
        match p {
            Pat::Wild { id, .. } => {
                if !out.contains(id) {
                    out.push(*id);
                }
            }
            Pat::ConstWild { .. } | Pat::Lit(..) => {}
            Pat::Bin(_, a, b) | Pat::Cmp(_, a, b) => {
                walk(a, out);
                walk(b, out);
            }
            Pat::Select(a, b, c) => {
                walk(a, out);
                walk(b, out);
                walk(c, out);
            }
            Pat::Cast(_, a) | Pat::Reinterpret(_, a) | Pat::SatCast(_, a) => walk(a, out),
            Pat::Fpir(_, args) | Pat::Mach(_, args) => args.iter().for_each(|a| walk(a, out)),
        }
    }
    walk(pat, &mut out);
    out
}

/// Is `All([])` present anywhere in the predicate tree?
fn has_empty_all(p: &Predicate) -> bool {
    match p {
        Predicate::All(ps) => ps.is_empty() || ps.iter().any(has_empty_all),
        _ => false,
    }
}

fn tyref_var(t: &TyRef, exprs: &mut Vec<u8>, tyvars: &mut Vec<u8>) {
    match t {
        TyRef::OfWild(i)
        | TyRef::WidenOfWild(i)
        | TyRef::NarrowOfWild(i)
        | TyRef::UnsignedOfWild(i)
        | TyRef::SignedOfWild(i)
        | TyRef::WidenSignedOfWild(i)
        | TyRef::NarrowUnsignedOfWild(i) => exprs.push(*i),
        TyRef::Pat(tp) => {
            if let Some(i) = typat_var(tp) {
                tyvars.push(i);
            }
        }
        TyRef::Exact(_) => {}
    }
}

fn typat_var(tp: &TypePat) -> Option<u8> {
    match tp {
        TypePat::Any | TypePat::Exact(_) => None,
        TypePat::Var(i)
        | TypePat::WidenOf(i)
        | TypePat::Widen2Of(i)
        | TypePat::NarrowOf(i)
        | TypePat::SignedOf(i)
        | TypePat::UnsignedOf(i)
        | TypePat::SameWidthAs(i)
        | TypePat::WidenSignedOf(i)
        | TypePat::NarrowUnsignedOf(i)
        | TypePat::AnyUnsigned(i)
        | TypePat::AnySigned(i) => Some(*i),
    }
}

/// Every wildcard / type-variable a template reads.
fn collect_template_refs(t: &Template, exprs: &mut Vec<u8>, tyvars: &mut Vec<u8>) {
    match t {
        Template::Wild(i) => exprs.push(*i),
        Template::Const { of, ty, .. } => {
            exprs.push(*of);
            tyref_var(ty, exprs, tyvars);
        }
        Template::Lit { ty, .. } => tyref_var(ty, exprs, tyvars),
        Template::Bin(_, a, b) | Template::Cmp(_, a, b) => {
            collect_template_refs(a, exprs, tyvars);
            collect_template_refs(b, exprs, tyvars);
        }
        Template::Select(a, b, c) => {
            collect_template_refs(a, exprs, tyvars);
            collect_template_refs(b, exprs, tyvars);
            collect_template_refs(c, exprs, tyvars);
        }
        Template::Cast(ty, a) | Template::Reinterpret(ty, a) | Template::SatCast(ty, a) => {
            tyref_var(ty, exprs, tyvars);
            collect_template_refs(a, exprs, tyvars);
        }
        Template::Fpir(_, args) => {
            args.iter().for_each(|a| collect_template_refs(a, exprs, tyvars));
        }
        Template::Mach { ty, args, .. } => {
            tyref_var(ty, exprs, tyvars);
            args.iter().for_each(|a| collect_template_refs(a, exprs, tyvars));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpir_trs::dsl::*;
    use fpir_trs::RuleClass;

    fn one_rule_set(rule: Rule) -> RuleSet {
        let mut set = RuleSet::new("test");
        set.push(rule);
        set
    }

    #[test]
    fn empty_range_is_an_error() {
        let rule = Rule::new("bad-range", RuleClass::Direct, pat_add(wild(0), cwild(1)), tw(0))
            .with_pred(Predicate::ConstInRange { id: 1, lo: 5, hi: 1 });
        let diags = check(&one_rule_set(rule));
        assert!(diags.iter().any(|d| d.severity == Severity::Error && d.detail.contains("empty")));
    }

    #[test]
    fn unbound_predicate_wildcard_is_an_error() {
        let rule = Rule::new("unbound", RuleClass::Direct, pat_add(wild(0), wild(1)), tw(0))
            .with_pred(Predicate::IsPow2(7));
        let diags = check(&one_rule_set(rule));
        assert!(diags
            .iter()
            .any(|d| d.severity == Severity::Error && d.detail.contains("never binds")));
    }

    #[test]
    fn contradiction_is_an_error() {
        let rule =
            Rule::new("contra", RuleClass::Direct, pat_add(wild(0), cwild(1)), tw(0)).with_pred(
                Predicate::All(vec![Predicate::IsPow2(1), Predicate::ConstEq { id: 1, value: 3 }]),
            );
        let diags = check(&one_rule_set(rule));
        assert!(diags
            .iter()
            .any(|d| d.severity == Severity::Error && d.detail.contains("contradictory")));
    }

    #[test]
    fn empty_all_is_a_warning() {
        let rule = Rule::new("empty-all", RuleClass::Direct, pat_add(wild(0), wild(1)), tw(0))
            .with_pred(Predicate::All(vec![]));
        let diags = check(&one_rule_set(rule));
        assert!(diags
            .iter()
            .any(|d| d.severity == Severity::Warning && d.detail.contains("trivially true")));
    }

    #[test]
    fn unbound_template_wildcard_is_an_error() {
        let rule = Rule::new("bad-rhs", RuleClass::Direct, pat_add(wild(0), wild(1)), tw(5));
        let diags = check(&one_rule_set(rule));
        assert!(diags
            .iter()
            .any(|d| d.severity == Severity::Error && d.detail.contains("substitution fails")));
    }
}
