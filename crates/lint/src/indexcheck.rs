//! Index-soundness analysis: the root-operator discrimination index must
//! never hide a rule from an expression it matches.
//!
//! The fast rewriter dispatches rules through `fpir_trs::index::RuleIndex`
//! instead of a linear scan (see `crates/trs/src/index.rs`): a rule whose
//! pattern is rooted at `+` is only tried at `Add` nodes, and only
//! wildcard-rooted rules are tried everywhere. That is sound exactly when
//! every expression a rule can match carries the same [`OpKey`] the rule
//! was bucketed under. This analysis checks that property *statically* by
//! replaying each rule's own exhaustive small-type instantiations (the
//! same corpus the termination analysis walks) through the index:
//!
//! * **error** — some instantiation of a rule keys to a bucket the rule is
//!   not in, so indexed dispatch would silently skip a matching rule and
//!   fast/reference engines would diverge;
//! * **note** — a rule landed in the wildcard bucket (its pattern is
//!   rooted at a wildcard, constant wildcard, or literal). Such rules are
//!   tried at *every* node, which is correct but defeats the index; a
//!   large wildcard bucket is an authoring smell worth seeing.
//!
//! The runtime counterpart is the differential fuzz test in `pitchfork`,
//! which checks that indexed and linear dispatch fire identical rule
//! sequences on random programs.

use crate::diagnostic::{Analysis, Diagnostic, Severity};
use fpir_trs::index::{OpKey, RuleIndex};
use fpir_trs::rule::{instantiate_lhs_all, RuleSet};

/// Run the index-soundness analysis over one rule set.
pub fn check(set: &RuleSet) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let idx = RuleIndex::build(set);

    for (i, rule) in set.rules().iter().enumerate() {
        let i = i as u32;
        let bucket = idx.key_of_rule(i);
        if bucket.is_none() {
            out.push(Diagnostic {
                severity: Severity::Note,
                analysis: Analysis::Index,
                code: "IDX001",
                ruleset: set.name.clone(),
                rule: Some(rule.name.clone()),
                detail: "pattern is rooted at a wildcard, so the rule lands in the \
                         fallback bucket and is tried at every node"
                    .into(),
                witness: None,
            });
            continue;
        }
        for inst in instantiate_lhs_all(rule, 4) {
            let key = OpKey::of_expr(&inst);
            if !idx.candidates(key).any(|c| c == i) {
                out.push(Diagnostic {
                    severity: Severity::Error,
                    analysis: Analysis::Index,
                    code: "IDX002",
                    ruleset: set.name.clone(),
                    rule: Some(rule.name.clone()),
                    detail: format!(
                        "rule matches an expression keyed {key:?}, but it was bucketed \
                         under {bucket:?}; indexed dispatch would skip it"
                    ),
                    witness: Some(inst.to_string()),
                });
                break; // one witness per rule is enough
            }
            // The depth-1 operand prefilter must likewise never refuse an
            // expression the rule's own pattern produced: `admits == false`
            // promises a full match would fail.
            if !idx.admits(i, &inst) {
                out.push(Diagnostic {
                    severity: Severity::Error,
                    analysis: Analysis::Index,
                    code: "IDX003",
                    ruleset: set.name.clone(),
                    rule: Some(rule.name.clone()),
                    detail: "the depth-1 operand prefilter refuses an instantiation of \
                             the rule's own pattern; indexed dispatch would skip a \
                             matching rule"
                        .into(),
                    witness: Some(inst.to_string()),
                });
                break;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpir_trs::dsl::*;
    use fpir_trs::rule::{Rule, RuleClass};
    use fpir_trs::template::Template;

    #[test]
    fn shipped_rule_sets_are_index_sound() {
        for reg in pitchfork::all_rule_sets() {
            let errors: Vec<_> =
                check(&reg.set).into_iter().filter(|d| d.severity == Severity::Error).collect();
            assert!(errors.is_empty(), "{}: {:?}", reg.set.name, errors);
        }
    }

    #[test]
    fn wildcard_rooted_rule_is_noted() {
        let mut rs = RuleSet::new("wild-demo");
        rs.push(Rule::new("w", RuleClass::Lift, wild(0), Template::Wild(0)));
        let diags = check(&rs);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].severity, Severity::Note);
        assert!(diags[0].detail.contains("fallback bucket"));
    }

    #[test]
    fn operator_rooted_rule_is_silent() {
        let mut rs = RuleSet::new("add-demo");
        rs.push(Rule::new("a", RuleClass::Lift, pat_add(wild(0), wild(1)), Template::Wild(0)));
        assert!(check(&rs).is_empty());
    }
}
