//! Rule-soundness analysis: a semantic verdict for every rule.
//!
//! Unlike the other analyses this one *does* evaluate semantics — it
//! delegates to `fpir-synth`'s verdict-producing checker
//! ([`fpir_synth::check_rule_set`]), which tries, in order: an abstract
//! equivalence proof over the rule's full predicated domain (interval +
//! known-bits domains over the expanded primitive programs), exhaustive
//! enumeration when the instantiated input space is small enough, and
//! boundary-biased sampling as the fallback. Three diagnostic codes:
//!
//! * `SOUND001` (**error**) — a concrete counterexample: the rule
//!   rewrites to something semantically different;
//! * `SOUND002` (**warning**) — the rule could not be instantiated, so
//!   nothing about it was checked;
//! * `SOUND003` (**note**) — the per-rule verdict record
//!   (`proved` / `exhausted` / `sampled`), emitted for every sound rule
//!   so `rulecheck --json` is a complete verdict report.

use crate::diagnostic::{Analysis, Diagnostic, Severity};
use fpir_synth::{check_rule, RuleVerdict, VerifyOptions};
use fpir_trs::rule::RuleSet;

/// Run the soundness checker over one rule set with the shipped effort
/// (sampling plus small-space enumeration in debug builds, the full
/// exhaustive sweep in release).
pub fn check(set: &RuleSet) -> Vec<Diagnostic> {
    check_with(set, &VerifyOptions::shipped())
}

/// [`check`] at an explicit effort level.
pub fn check_with(set: &RuleSet, opts: &VerifyOptions) -> Vec<Diagnostic> {
    set.rules().iter().map(|r| diagnose(&set.name, check_rule(r, opts))).collect()
}

fn diagnose(ruleset: &str, v: RuleVerdict) -> Diagnostic {
    let base = |code, severity, detail, witness| Diagnostic {
        severity,
        analysis: Analysis::Soundness,
        code,
        ruleset: ruleset.to_string(),
        rule: Some(v.rule.clone()),
        detail,
        witness,
    };
    match &v.error {
        Some(e) if e.detail.contains("could not instantiate") => base(
            "SOUND002",
            Severity::Warning,
            "left-hand side could not be instantiated; soundness is unverified".into(),
            None,
        ),
        Some(e) => base(
            "SOUND001",
            Severity::Error,
            "semantically unsound: LHS and RHS differ on a concrete input".into(),
            Some(e.detail.clone()),
        ),
        None => base(
            "SOUND003",
            Severity::Note,
            format!(
                "verdict: {} ({} instantiation{})",
                v.verdict,
                v.instantiations,
                if v.instantiations == 1 { "" } else { "s" }
            ),
            None,
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpir::FpirOp;
    use fpir_trs::dsl::*;
    use fpir_trs::pattern::TypePat;
    use fpir_trs::rule::{Rule, RuleClass, RuleSet};

    fn one_rule_set(rule: Rule) -> RuleSet {
        let mut set = RuleSet::new("fixture");
        set.push(rule);
        set
    }

    #[test]
    fn sound_rule_gets_a_verdict_note() {
        let rule = Rule::new(
            "widening-add",
            RuleClass::Lift,
            pat_add(
                widen_cast(0),
                fpir_trs::pattern::Pat::Cast(
                    TypePat::WidenOf(0),
                    Box::new(wild_t(1, TypePat::Var(0))),
                ),
            ),
            tfpir2(FpirOp::WideningAdd, tw(0), tw(1)),
        );
        let diags = check(&one_rule_set(rule));
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, "SOUND003");
        assert_eq!(diags[0].severity, Severity::Note);
        assert!(diags[0].detail.contains("proved"), "{}", diags[0].detail);
    }

    #[test]
    fn unsound_rule_is_an_error_with_a_witness() {
        // Floor average claimed to be the round-up average.
        let rule = Rule::new(
            "planted-wrong-rounding",
            RuleClass::Lift,
            pat_fpir2(FpirOp::RoundingHalvingAdd, wild_v(0), wild_t(1, TypePat::Var(0))),
            tfpir2(FpirOp::HalvingAdd, tw(0), tw(1)),
        );
        let diags = check(&one_rule_set(rule));
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, "SOUND001");
        assert_eq!(diags[0].severity, Severity::Error);
        assert_eq!(diags[0].rule.as_deref(), Some("planted-wrong-rounding"));
        assert!(diags[0].witness.as_deref().unwrap_or("").contains("counterexample"));
    }
}
