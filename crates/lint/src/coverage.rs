//! Lowering-coverage analysis: can every FPIR instruction the lifting TRS
//! can produce actually be selected on every backend?
//!
//! The lift rules (plus the public builder API) can put any of the 22
//! Table-1 FPIR instructions into a program at any of the six 8/16/32-bit
//! element types. For each `(op, type)` pair this analysis builds a
//! minimal type-correct witness expression, runs the backend's lowering
//! TRS over it, and then asks the legalizer to finish the job. A failure
//! is a *cannot-select* hole.
//!
//! Whose fault is a hole? The lowering TRS only ever runs *in front of*
//! the legalizer, so the analysis compares against a baseline of the
//! legalizer alone: a witness the legalizer cannot compile either is an
//! *inherent target limitation* (HVX has no 64-bit lanes, x86 AVX2 has no
//! 64-bit unsigned compare — the paper's §5.1 compile failures) and is
//! reported as a *note*; a witness the legalizer alone could handle but
//! the TRS-rewritten form cannot be selected is a rule-set bug and is an
//! *error*.

use crate::diagnostic::{Analysis, Diagnostic, Severity};
use fpir::expr::{Expr, FpirOp, RcExpr, ALL_FPIR_OPS};
use fpir::types::{ScalarType, VectorType};
use fpir::Isa;
use fpir_trs::rule::RuleSet;
use fpir_trs::Rewriter;

/// The element types a witness sweep covers (the lift TRS instantiates
/// its rules over the same six).
pub const WITNESS_ELEMS: [ScalarType; 6] = [
    ScalarType::U8,
    ScalarType::I8,
    ScalarType::U16,
    ScalarType::I16,
    ScalarType::U32,
    ScalarType::I32,
];

const WITNESS_LANES: u32 = 8;

/// Run the coverage analysis for one backend: its lowering TRS followed by
/// the legalizer must select every witness.
pub fn check(isa: Isa, lower: &RuleSet) -> Vec<Diagnostic> {
    let target = fpir_isa::target(isa);
    let oracle = |e: &RcExpr| -> Result<(), String> {
        let mut rw = Rewriter::new(lower, fpir_isa::TargetCost::new(isa));
        let lowered = rw.run(e);
        fpir_isa::legalize(&lowered, target).map(|_| ()).map_err(|err| err.to_string())
    };
    let inherent = |e: &RcExpr| fpir_isa::legalize(e, target).is_err();
    let backend = format!("lower-{}", isa.short_name().to_lowercase());
    check_with_oracle(&backend, &oracle, &inherent)
}

/// Coverage against an arbitrary selection oracle (exposed so tests can
/// plant holes without inventing a whole backend). `inherent` decides
/// blame for a hole: `true` means the target could never compile the
/// witness no matter what the rule set does (note), `false` pins the hole
/// on the rule set (error).
pub fn check_with_oracle(
    backend: &str,
    oracle: &dyn Fn(&RcExpr) -> Result<(), String>,
    inherent: &dyn Fn(&RcExpr) -> bool,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for elem in WITNESS_ELEMS {
        for op in ops_for(elem) {
            let Some(witness) = witness_expr(op, elem) else {
                continue; // no type-correct witness exists (e.g. narrowing u8)
            };
            if let Err(why) = oracle(&witness) {
                let target_limit = inherent(&witness);
                out.push(Diagnostic {
                    severity: if target_limit { Severity::Note } else { Severity::Error },
                    analysis: Analysis::Coverage,
                    code: if target_limit { "COV001" } else { "COV002" },
                    ruleset: backend.to_string(),
                    rule: None,
                    detail: if target_limit {
                        format!(
                            "{}({}) is not selectable on this target at all (inherent \
                             limitation, independent of the rule set): {why}",
                            op.name(),
                            elem.name(),
                        )
                    } else {
                        format!("cannot select {}({}): {why}", op.name(), elem.name())
                    },
                    witness: Some(witness.to_string()),
                });
            }
        }
    }
    out
}

/// The instruction family swept for one element type: every Table-1 op,
/// with the representative `saturating_cast` replaced by a cast the type
/// system accepts for `elem`.
fn ops_for(elem: ScalarType) -> Vec<FpirOp> {
    ALL_FPIR_OPS
        .into_iter()
        .map(|op| match op {
            FpirOp::SaturatingCast(_) => FpirOp::SaturatingCast(sat_cast_target(elem)),
            op => op,
        })
        .collect()
}

/// A saturating-cast target that genuinely saturates from `elem`:
/// the narrowed type when one exists, otherwise the other-signedness type
/// of the same width.
fn sat_cast_target(elem: ScalarType) -> ScalarType {
    elem.narrow().unwrap_or_else(|| {
        if elem.is_signed() {
            elem.with_unsigned()
        } else {
            elem.with_signed()
        }
    })
}

/// A minimal type-correct witness for `op` at element type `elem`, or
/// `None` when the combination cannot be typed at all (so there is
/// nothing to cover).
pub fn witness_expr(op: FpirOp, elem: ScalarType) -> Option<RcExpr> {
    let vt = VectorType::new(elem, WITNESS_LANES);
    let v = |name: &str| Expr::var(name, vt);
    let shift = |count: i128| Expr::constant(count, vt).ok();
    let args = match op {
        // Same-type binary operations.
        FpirOp::WideningAdd
        | FpirOp::WideningSub
        | FpirOp::WideningMul
        | FpirOp::Absd
        | FpirOp::SaturatingAdd
        | FpirOp::SaturatingSub
        | FpirOp::HalvingAdd
        | FpirOp::HalvingSub
        | FpirOp::RoundingHalvingAdd => vec![v("a"), v("b")],
        // Wide accumulator + narrow operand.
        FpirOp::ExtendingAdd | FpirOp::ExtendingSub | FpirOp::ExtendingMul => {
            let wide = VectorType::new(elem.widen()?, WITNESS_LANES);
            vec![Expr::var("acc", wide), v("b")]
        }
        // Value + same-width shift count.
        FpirOp::WideningShl
        | FpirOp::WideningShr
        | FpirOp::RoundingShl
        | FpirOp::RoundingShr
        | FpirOp::SaturatingShl => vec![v("a"), shift(2)?],
        FpirOp::Abs | FpirOp::SaturatingCast(_) | FpirOp::SaturatingNarrow => vec![v("a")],
        // Multiply + same-width scale-back shift.
        FpirOp::MulShr | FpirOp::RoundingMulShr => {
            vec![v("a"), v("b"), shift((elem.bits() / 2) as i128)?]
        }
    };
    Expr::fpir(op, args).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn witnesses_exist_for_every_op_at_u8() {
        let mut built = 0;
        for op in ops_for(ScalarType::U8) {
            if witness_expr(op, ScalarType::U8).is_some() {
                built += 1;
            }
        }
        // saturating_narrow has no u8 witness (nothing to narrow to);
        // everything else must type-check.
        assert_eq!(built, ops_for(ScalarType::U8).len() - 1);
    }

    #[test]
    fn witnesses_exist_for_every_op_at_i16() {
        for op in ops_for(ScalarType::I16) {
            assert!(
                witness_expr(op, ScalarType::I16).is_some(),
                "no witness for {} at i16",
                op.name()
            );
        }
    }

    #[test]
    fn planted_oracle_hole_is_reported_as_error() {
        let oracle = |e: &RcExpr| -> Result<(), String> {
            if e.to_string().contains("absd") {
                Err("no absd on this fake target".into())
            } else {
                Ok(())
            }
        };
        let diags = check_with_oracle("fake", &oracle, &|_| false);
        assert_eq!(diags.len(), WITNESS_ELEMS.len()); // one absd hole per type
        assert!(diags.iter().all(|d| d.severity == Severity::Error));
        assert!(diags.iter().all(|d| d.analysis == Analysis::Coverage));
    }

    #[test]
    fn inherent_target_holes_downgrade_to_notes() {
        // A target that rejects everything 32-bit regardless of rules.
        let reject = |e: &RcExpr| e.to_string().contains("32");
        let oracle = |e: &RcExpr| -> Result<(), String> {
            if reject(e) {
                Err("lane too wide".into())
            } else {
                Ok(())
            }
        };
        let diags = check_with_oracle("narrow-fake", &oracle, &reject);
        assert!(!diags.is_empty());
        assert!(diags.iter().all(|d| d.severity == Severity::Note));
    }
}
