//! # pitchfork-lint — static analysis over the lift/lower rule sets
//!
//! The compiler's correctness story leans on properties of its term-
//! rewriting systems that nothing previously checked ahead of time:
//!
//! * **[`termination`]** — every lift rule strictly descends in the
//!   target-agnostic cost on every type instantiation (the paper's §3.2
//!   convergence requirement), and no family of rules forms a rewrite
//!   cycle the cost measure fails to break;
//! * **[`shadowing`]** — no rule is dead because an earlier, more general
//!   rule always matches first with an implied predicate;
//! * **[`coverage`]** — every FPIR instruction the lifting TRS can
//!   produce is selectable on every backend (lowering TRS + legalizer),
//!   with inherent lane-width limits (HVX's missing 64-bit lanes)
//!   reported as notes rather than errors;
//! * **[`predicates`]** — side conditions are well-formed: indices in
//!   range, references bound, ranges non-empty, conjunctions free of
//!   contradictions;
//! * **[`indexcheck`]** — the fast rewriter's root-operator rule index
//!   never hides a rule from an expression it matches (every LHS
//!   instantiation keys back to the rule's own bucket).
//!
//! All five analyses are *static*: they inspect rule structure (plus
//! exhaustive small-type instantiation) without running the compiler on
//! user programs, so they complement `synth::verify`'s differential
//! testing — see `docs/rulecheck.md` for the soundness trade-offs.
//!
//! The `rulecheck` binary runs everything over the shipped rule sets and
//! gates CI via `--deny warnings`.
//!
//! ```
//! use pitchfork_lint::{check_rule_sets, Severity};
//!
//! let diags = check_rule_sets(&pitchfork::all_rule_sets());
//! assert!(diags.iter().all(|d| d.severity < Severity::Error));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod coverage;
pub mod diagnostic;
pub mod indexcheck;
pub mod predicates;
pub mod shadowing;
pub mod skeleton;
pub mod termination;

pub use diagnostic::{render_json, Analysis, Diagnostic, Severity};

use pitchfork::{RegisteredRuleSet, RuleSetKind};

/// Run every analysis over a collection of registered rule sets.
///
/// Shadowing and predicate checks are per-set; termination picks its cost
/// model from the set's [`RuleSetKind`]; coverage runs once per lowering
/// backend. Diagnostics come back grouped by analysis in a stable order.
pub fn check_rule_sets(sets: &[RegisteredRuleSet]) -> Vec<Diagnostic> {
    check_rule_sets_jobs(sets, &fpir_pool::Pool::sequential())
}

/// [`check_rule_sets`] with the independent (analysis × rule-set) units
/// fanned out over `pool`. The work list is built in the sequential
/// order and the pool's map preserves it, so the diagnostic list is
/// identical for any worker count.
pub fn check_rule_sets_jobs(sets: &[RegisteredRuleSet], pool: &fpir_pool::Pool) -> Vec<Diagnostic> {
    const N_ANALYSES: usize = 5;
    let mut work: Vec<(usize, usize)> = Vec::new();
    for analysis in 0..N_ANALYSES {
        for (i, reg) in sets.iter().enumerate() {
            if analysis + 1 < N_ANALYSES || matches!(reg.kind, RuleSetKind::Lower(_)) {
                work.push((analysis, i));
            }
        }
    }
    pool.map(&work, |&(analysis, i)| {
        let reg = &sets[i];
        match analysis {
            0 => termination::check(reg),
            1 => shadowing::check(&reg.set),
            2 => predicates::check(&reg.set),
            3 => indexcheck::check(&reg.set),
            _ => match reg.kind {
                RuleSetKind::Lower(isa) => coverage::check(isa, &reg.set),
                _ => unreachable!("coverage work items are lowering sets only"),
            },
        }
    })
    .into_iter()
    .flatten()
    .collect()
}

/// Count diagnostics at each severity: `(errors, warnings, notes)`.
pub fn tally(diags: &[Diagnostic]) -> (usize, usize, usize) {
    let mut counts = (0, 0, 0);
    for d in diags {
        match d.severity {
            Severity::Error => counts.0 += 1,
            Severity::Warning => counts.1 += 1,
            Severity::Note => counts.2 += 1,
        }
    }
    counts
}
