//! # pitchfork-lint — static analysis over the lift/lower rule sets
//!
//! The compiler's correctness story leans on properties of its term-
//! rewriting systems that nothing previously checked ahead of time:
//!
//! * **[`termination`]** — every lift rule strictly descends in the
//!   target-agnostic cost on every type instantiation (the paper's §3.2
//!   convergence requirement), and no family of rules forms a rewrite
//!   cycle the cost measure fails to break;
//! * **[`shadowing`]** — no rule is dead because an earlier, more general
//!   rule always matches first with an implied predicate;
//! * **[`coverage`]** — every FPIR instruction the lifting TRS can
//!   produce is selectable on every backend (lowering TRS + legalizer),
//!   with inherent lane-width limits (HVX's missing 64-bit lanes)
//!   reported as notes rather than errors;
//! * **[`predicates`]** — side conditions are well-formed: indices in
//!   range, references bound, ranges non-empty, conjunctions free of
//!   contradictions;
//! * **[`indexcheck`]** — the fast rewriter's root-operator rule index
//!   never hides a rule from an expression it matches (every LHS
//!   instantiation keys back to the rule's own bucket);
//! * **[`soundness`]** — every rule carries a semantic verdict
//!   (`proved` / `exhausted` / `sampled`) from `fpir-synth`'s
//!   abstract-interpretation checker, and a rule with a concrete
//!   counterexample is an error.
//!
//! The first five analyses are *static*: they inspect rule structure
//! (plus exhaustive small-type instantiation) without running the
//! compiler on user programs. Soundness additionally evaluates rule
//! semantics through `fpir-synth` — see `docs/verify.md` and
//! `docs/rulecheck.md` for the trade-offs.
//!
//! The `rulecheck` binary runs everything over the shipped rule sets and
//! gates CI via `--deny warnings`.
//!
//! ```
//! use pitchfork_lint::{check_rule_sets, Severity};
//!
//! let diags = check_rule_sets(&pitchfork::all_rule_sets());
//! assert!(diags.iter().all(|d| d.severity < Severity::Error));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod coverage;
pub mod diagnostic;
pub mod indexcheck;
pub mod predicates;
pub mod shadowing;
pub mod skeleton;
pub mod soundness;
pub mod termination;

pub use diagnostic::{
    render_json, render_report_json, Analysis, CoverageSummary, Diagnostic, Severity,
};

use pitchfork::{RegisteredRuleSet, RuleSetKind};

/// Run every analysis over a collection of registered rule sets.
///
/// Shadowing, predicate, and soundness checks are per-set; termination
/// picks its cost model from the set's [`RuleSetKind`]; coverage runs
/// once per lowering backend. Diagnostics come back grouped by analysis
/// in a stable order.
pub fn check_rule_sets(sets: &[RegisteredRuleSet]) -> Vec<Diagnostic> {
    check_rule_sets_jobs(sets, &fpir_pool::Pool::sequential())
}

/// [`check_rule_sets`] with the independent (analysis × rule-set) units
/// fanned out over `pool`. The work list is built in the sequential
/// order and the pool's map preserves it, so the diagnostic list is
/// identical for any worker count.
pub fn check_rule_sets_jobs(sets: &[RegisteredRuleSet], pool: &fpir_pool::Pool) -> Vec<Diagnostic> {
    check_selected_jobs(sets, &Analysis::ALL, pool)
}

/// Run only the `selected` analyses (the `rulecheck --analysis` filter),
/// fanned out over `pool` with the same ordering guarantee as
/// [`check_rule_sets_jobs`].
pub fn check_selected_jobs(
    sets: &[RegisteredRuleSet],
    selected: &[Analysis],
    pool: &fpir_pool::Pool,
) -> Vec<Diagnostic> {
    let mut work: Vec<(Analysis, usize)> = Vec::new();
    for &analysis in Analysis::ALL.iter().filter(|a| selected.contains(a)) {
        for (i, reg) in sets.iter().enumerate() {
            // Coverage is a per-backend analysis: it exercises the
            // lowering TRS + legalizer, so only lowering sets apply.
            if analysis != Analysis::Coverage || matches!(reg.kind, RuleSetKind::Lower(_)) {
                work.push((analysis, i));
            }
        }
    }
    pool.map(&work, |&(analysis, i)| {
        let reg = &sets[i];
        match analysis {
            Analysis::Termination => termination::check(reg),
            Analysis::Shadowing => shadowing::check(&reg.set),
            Analysis::Predicates => predicates::check(&reg.set),
            Analysis::Index => indexcheck::check(&reg.set),
            Analysis::Soundness => soundness::check(&reg.set),
            Analysis::Coverage => match reg.kind {
                RuleSetKind::Lower(isa) => coverage::check(isa, &reg.set),
                _ => unreachable!("coverage work items are lowering sets only"),
            },
        }
    })
    .into_iter()
    .flatten()
    .collect()
}

/// Build the per-backend coverage census from a finished run: one
/// [`CoverageSummary`] row per registered lowering TRS, counting that
/// backend's pack size plus the coverage holes (warning or worse) and
/// inherent-limitation notes attributed to it in `diags`. Callers must
/// pass diagnostics from a run that *included* the coverage analysis —
/// summarizing a filtered run would report every backend as hole-free.
pub fn summarize_coverage(
    sets: &[RegisteredRuleSet],
    diags: &[Diagnostic],
) -> Vec<CoverageSummary> {
    sets.iter()
        .filter(|reg| matches!(reg.kind, RuleSetKind::Lower(_)))
        .map(|reg| {
            let name = reg.kind.to_string();
            let cov =
                diags.iter().filter(|d| d.analysis == Analysis::Coverage && d.ruleset == name);
            let (mut holes, mut notes) = (0, 0);
            for d in cov {
                if d.severity >= Severity::Warning {
                    holes += 1;
                } else {
                    notes += 1;
                }
            }
            CoverageSummary { ruleset: name, rules: reg.set.len(), holes, notes }
        })
        .collect()
}

/// Count diagnostics at each severity: `(errors, warnings, notes)`.
pub fn tally(diags: &[Diagnostic]) -> (usize, usize, usize) {
    let mut counts = (0, 0, 0);
    for d in diags {
        match d.severity {
            Severity::Error => counts.0 += 1,
            Severity::Warning => counts.1 += 1,
            Severity::Note => counts.2 += 1,
        }
    }
    counts
}
