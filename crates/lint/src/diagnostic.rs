//! The shared diagnostic type every analysis reports through.

use std::fmt;

/// How serious a finding is.
///
/// `Note`s are informational (expected target limitations such as HVX's
/// missing 64-bit lanes); `Warning`s are probable authoring mistakes that
/// do not break compilation; `Error`s violate a well-formedness
/// requirement the compiler relies on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational.
    Note,
    /// Probable mistake; `rulecheck --deny warnings` turns these fatal.
    Warning,
    /// Well-formedness violation.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Note => "note",
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// Which analysis produced a finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Analysis {
    /// Strict cost descent + rewrite-cycle detection.
    Termination,
    /// Dead rules hidden behind earlier, more general rules.
    Shadowing,
    /// FPIR ops/types a backend cannot select.
    Coverage,
    /// Malformed or contradictory side conditions.
    Predicates,
    /// Rules the root-operator discrimination index would mis-dispatch.
    Index,
    /// Per-rule semantic soundness verdicts (proved/exhausted/sampled).
    Soundness,
}

impl Analysis {
    /// Every analysis, in the order `rulecheck` runs them.
    pub const ALL: [Analysis; 6] = [
        Analysis::Termination,
        Analysis::Shadowing,
        Analysis::Predicates,
        Analysis::Index,
        Analysis::Soundness,
        Analysis::Coverage,
    ];

    /// The CLI name (`rulecheck --analysis <name>`).
    pub fn name(self) -> &'static str {
        match self {
            Analysis::Termination => "termination",
            Analysis::Shadowing => "shadowing",
            Analysis::Coverage => "coverage",
            Analysis::Predicates => "predicates",
            Analysis::Index => "index",
            Analysis::Soundness => "soundness",
        }
    }

    /// Parse a CLI name.
    pub fn from_name(name: &str) -> Option<Analysis> {
        Analysis::ALL.into_iter().find(|a| a.name() == name)
    }
}

impl fmt::Display for Analysis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One finding.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// How serious it is.
    pub severity: Severity,
    /// Which analysis found it.
    pub analysis: Analysis,
    /// Stable machine-readable code (e.g. `SOUND001`): CI greps and
    /// downstream tooling key on this, never on `detail` text.
    pub code: &'static str,
    /// The rule set (e.g. `lift`, `lower-arm`) it concerns.
    pub ruleset: String,
    /// The offending rule, when the finding is rule-specific.
    pub rule: Option<String>,
    /// Human-readable description.
    pub detail: String,
    /// A concrete witness expression or rewrite chain, when one exists.
    pub witness: Option<String>,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}:{}] {}", self.severity, self.analysis, self.code, self.ruleset)?;
        if let Some(rule) = &self.rule {
            write!(f, " · rule `{rule}`")?;
        }
        write!(f, ": {}", self.detail)?;
        if let Some(w) = &self.witness {
            write!(f, "\n    witness: {w}")?;
        }
        Ok(())
    }
}

impl Diagnostic {
    /// Serialize as a JSON object (the environment has no serde; the
    /// diagnostic shape is flat enough to emit by hand).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{");
        s.push_str(&format!("\"severity\":\"{}\"", self.severity));
        s.push_str(&format!(",\"analysis\":\"{}\"", self.analysis));
        s.push_str(&format!(",\"code\":\"{}\"", self.code));
        s.push_str(&format!(",\"ruleset\":\"{}\"", json_escape(&self.ruleset)));
        match &self.rule {
            Some(r) => s.push_str(&format!(",\"rule\":\"{}\"", json_escape(r))),
            None => s.push_str(",\"rule\":null"),
        }
        s.push_str(&format!(",\"detail\":\"{}\"", json_escape(&self.detail)));
        match &self.witness {
            Some(w) => s.push_str(&format!(",\"witness\":\"{}\"", json_escape(w))),
            None => s.push_str(",\"witness\":null"),
        }
        s.push('}');
        s
    }
}

/// Per-backend lowering-coverage census row: how many rules the
/// target's pattern-context pack ships, and how many coverage holes
/// (rule-set bugs) and notes (inherent target limitations) the coverage
/// analysis found for it. One row per registered lowering TRS; this is
/// the machine-checkable form of the `k + n + 1` census in `docs/isa.md`.
#[derive(Debug, Clone)]
pub struct CoverageSummary {
    /// The lowering rule set (`lower-arm`, `lower-rvv`, …).
    pub ruleset: String,
    /// Rules in the target's pattern-context pack.
    pub rules: usize,
    /// Coverage findings at warning severity or above (`COV002`):
    /// FPIR the legalizer alone could select but the pack broke.
    pub holes: usize,
    /// Coverage notes (`COV001`): inherent target limitations.
    pub notes: usize,
}

impl fmt::Display for CoverageSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "coverage[{}]: {} rules, {} holes, {} notes",
            self.ruleset, self.rules, self.holes, self.notes
        )
    }
}

impl CoverageSummary {
    /// Serialize as a JSON object (hand-built, like [`Diagnostic::to_json`]).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"ruleset\":\"{}\",\"rules\":{},\"holes\":{},\"notes\":{}}}",
            json_escape(&self.ruleset),
            self.rules,
            self.holes,
            self.notes
        )
    }
}

/// Serialize a batch of diagnostics as a JSON array.
pub fn render_json(diags: &[Diagnostic]) -> String {
    let mut s = String::from("[");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push('\n');
        s.push_str("  ");
        s.push_str(&d.to_json());
    }
    if !diags.is_empty() {
        s.push('\n');
    }
    s.push(']');
    s
}

/// Serialize the full `rulecheck --json` report: the per-backend
/// coverage summary (empty when the coverage analysis was filtered out
/// with `--analysis`, so absent counts are never mistaken for clean
/// runs) followed by every diagnostic. The old top-level array shape
/// lives on as the `diagnostics` field.
pub fn render_report_json(summary: &[CoverageSummary], diags: &[Diagnostic]) -> String {
    let mut s = String::from("{\n  \"schema\": \"pitchfork-rulecheck/v2\",\n  \"summary\": [");
    for (i, row) in summary.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str("\n    ");
        s.push_str(&row.to_json());
    }
    if !summary.is_empty() {
        s.push_str("\n  ");
    }
    s.push_str("],\n  \"diagnostics\": ");
    // Indent the diagnostics array to sit inside the report object.
    s.push_str(&render_json(diags).replace('\n', "\n  "));
    s.push_str("\n}");
    s
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_orders() {
        assert!(Severity::Note < Severity::Warning);
        assert!(Severity::Warning < Severity::Error);
    }

    #[test]
    fn json_escapes_specials() {
        let d = Diagnostic {
            severity: Severity::Error,
            analysis: Analysis::Predicates,
            code: "PRED000",
            ruleset: "lift".into(),
            rule: Some("has \"quotes\"".into()),
            detail: "line\nbreak".into(),
            witness: None,
        };
        let j = d.to_json();
        assert!(j.contains("\\\"quotes\\\""));
        assert!(j.contains("line\\nbreak"));
        assert!(j.contains("\"witness\":null"));
    }
}
