//! Shadowing analysis: rules that can never fire because an earlier rule
//! always takes precedence.
//!
//! The rewriter tries every rule at a node and keeps the cheapest output,
//! breaking ties by rule order. A later rule is therefore *dead* when some
//! earlier rule (a) matches every expression the later rule matches —
//! pattern subsumption — and (b) has a side condition implied by the later
//! rule's, and (c) produces the same output on everything they both match.
//! Requirement (c) cannot be decided structurally in general, so this
//! analysis reports subsumption + implication as a *warning* ("dead unless
//! its output is strictly cheaper"), which in practice catches the common
//! authoring mistake: adding a specialised rule *after* the general rule
//! it specialises, where the general rule has already rewritten the node.
//!
//! Subsumption is decided conservatively (it may miss shadowing, it does
//! not invent it): a general wildcard subsumes any specific subtree, a
//! general constant wildcard subsumes constant wildcards and literals,
//! operator nodes must agree (commutative operators try both operand
//! orders), and type constraints must be equal up to a consistent
//! renaming of type variables. Non-linear wildcards in the general rule
//! require syntactically identical specific subtrees.

use crate::diagnostic::{Analysis, Diagnostic, Severity};
use fpir_trs::rule::RuleSet;
use fpir_trs::{Pat, Predicate, TypePat};
use std::collections::BTreeMap;

/// Run the shadowing analysis over one rule set.
pub fn check(set: &RuleSet) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let rules = set.rules();

    // Duplicate rule names confuse firing statistics and diagnostics.
    let mut seen_names: BTreeMap<&str, usize> = BTreeMap::new();
    for (i, rule) in rules.iter().enumerate() {
        if let Some(&first) = seen_names.get(rule.name.as_str()) {
            out.push(Diagnostic {
                severity: Severity::Warning,
                analysis: Analysis::Shadowing,
                code: "SHAD001",
                ruleset: set.name.clone(),
                rule: Some(rule.name.clone()),
                detail: format!(
                    "duplicate rule name (also used by rule #{first}); firing statistics \
                     and diagnostics cannot distinguish them"
                ),
                witness: None,
            });
        } else {
            seen_names.insert(rule.name.as_str(), i);
        }
    }

    for j in 1..rules.len() {
        for i in 0..j {
            let mut m = SubMap::default();
            if !subsumes(&rules[i].lhs, &rules[j].lhs, &mut m) {
                continue;
            }
            if !pred_implies(&rules[j].pred, &rules[i].pred, &m) {
                continue;
            }
            out.push(Diagnostic {
                severity: Severity::Warning,
                analysis: Analysis::Shadowing,
                code: "SHAD002",
                ruleset: set.name.clone(),
                rule: Some(rules[j].name.clone()),
                detail: format!(
                    "shadowed by earlier rule `{}`: every expression this rule matches is \
                     already matched by it (and its predicate is implied), so this rule \
                     only fires if its output is strictly cheaper",
                    rules[i].name
                ),
                witness: None,
            });
            break; // one shadow finding per rule is enough
        }
    }
    out
}

/// What a general-rule wildcard maps to in the specific rule.
#[derive(Debug, Clone, PartialEq)]
enum ConstBind {
    /// The specific rule's constant wildcard with this id.
    Wild(u8),
    /// A literal value in the specific rule.
    Lit(i128),
}

/// Mappings accumulated while proving `general` subsumes `specific`.
#[derive(Debug, Clone, Default)]
struct SubMap {
    /// General expression-wildcard id → specific wildcard id when the
    /// wildcard landed exactly on a specific expression wildcard
    /// (`None` = landed on a composite subtree or a constant).
    exprs: BTreeMap<u8, Option<u8>>,
    /// General constant-wildcard id → specific constant binding.
    consts: BTreeMap<u8, ConstBind>,
    /// General type-variable id → (constructor discriminant, specific id).
    tyvars: BTreeMap<u8, (u8, u8)>,
    /// Non-linear occurrences: general wildcard id → specific subtree.
    seen: BTreeMap<u8, Pat>,
}

impl SubMap {
    /// Record a non-linear binding; false if the same general wildcard
    /// already landed on a *different* specific subtree.
    fn bind_seen(&mut self, id: u8, sub: &Pat) -> bool {
        match self.seen.get(&id) {
            Some(prev) => prev == sub,
            None => {
                self.seen.insert(id, sub.clone());
                true
            }
        }
    }
}

/// Discriminant + variable id of a `TypePat`, when it references one.
fn ty_ctor(tp: &TypePat) -> Option<(u8, u8)> {
    Some(match tp {
        TypePat::Any | TypePat::Exact(_) => return None,
        TypePat::Var(i) => (0, *i),
        TypePat::WidenOf(i) => (1, *i),
        TypePat::Widen2Of(i) => (2, *i),
        TypePat::NarrowOf(i) => (3, *i),
        TypePat::SignedOf(i) => (4, *i),
        TypePat::UnsignedOf(i) => (5, *i),
        TypePat::SameWidthAs(i) => (6, *i),
        TypePat::WidenSignedOf(i) => (7, *i),
        TypePat::NarrowUnsignedOf(i) => (8, *i),
        TypePat::AnyUnsigned(i) => (9, *i),
        TypePat::AnySigned(i) => (10, *i),
    })
}

/// Does the general type constraint `g` accept every type the specific
/// constraint `s` accepts (under a consistent variable renaming)?
fn ty_subsumes(g: &TypePat, s: &TypePat, m: &mut SubMap) -> bool {
    if *g == TypePat::Any {
        return true;
    }
    if let (TypePat::Exact(a), TypePat::Exact(b)) = (g, s) {
        return a == b;
    }
    let (Some((gc, gi)), Some((sc, si))) = (ty_ctor(g), ty_ctor(s)) else {
        return false;
    };
    // A bare `Var` places no constraint of its own (first occurrence), so
    // it also subsumes the sign-restricted binders; every other
    // constructor must match exactly.
    let ctor_ok =
        gc == sc || (gc == 0 && matches!(s, TypePat::AnyUnsigned(_) | TypePat::AnySigned(_)));
    if !ctor_ok {
        return false;
    }
    // Consistency: each general variable must track one specific variable,
    // otherwise the general rule links occurrences the specific rule
    // leaves independent.
    match m.tyvars.get(&gi) {
        Some(&(_, prev_si)) => prev_si == si,
        None => {
            m.tyvars.insert(gi, (sc, si));
            true
        }
    }
}

/// Does `general` match every concrete expression `specific` matches?
fn subsumes(general: &Pat, specific: &Pat, m: &mut SubMap) -> bool {
    match general {
        Pat::Wild { id, ty } => {
            if !m.bind_seen(*id, specific) {
                return false;
            }
            let leaf = match specific {
                Pat::Wild { id: sid, ty: sty } => {
                    if !ty_subsumes(ty, sty, m) {
                        return false;
                    }
                    Some(*sid)
                }
                Pat::ConstWild { ty: sty, .. } | Pat::Lit(_, sty) => {
                    if !ty_subsumes(ty, sty, m) {
                        return false;
                    }
                    None
                }
                // A typed general wildcard over a composite specific
                // subtree: only the unconstrained case is decidable
                // without computing the subtree's result type.
                _ => {
                    if *ty != TypePat::Any {
                        return false;
                    }
                    None
                }
            };
            m.exprs.insert(*id, leaf);
            true
        }
        Pat::ConstWild { id, ty } => {
            if !m.bind_seen(*id, specific) {
                return false;
            }
            match specific {
                Pat::ConstWild { id: sid, ty: sty } => {
                    if !ty_subsumes(ty, sty, m) {
                        return false;
                    }
                    m.consts.insert(*id, ConstBind::Wild(*sid));
                    true
                }
                Pat::Lit(v, sty) => {
                    if !ty_subsumes(ty, sty, m) {
                        return false;
                    }
                    m.consts.insert(*id, ConstBind::Lit(*v));
                    true
                }
                _ => false,
            }
        }
        Pat::Lit(v, ty) => {
            matches!(specific, Pat::Lit(sv, sty) if sv == v && ty_subsumes(ty, sty, m))
        }
        Pat::Bin(op, ga, gb) => match specific {
            Pat::Bin(sop, sa, sb) if sop == op => {
                let snapshot = m.clone();
                if subsumes(ga, sa, m) && subsumes(gb, sb, m) {
                    return true;
                }
                *m = snapshot;
                if op.is_commutative() && subsumes(ga, sb, m) && subsumes(gb, sa, m) {
                    return true;
                }
                false
            }
            _ => false,
        },
        Pat::Cmp(op, ga, gb) => match specific {
            Pat::Cmp(sop, sa, sb) if sop == op => subsumes(ga, sa, m) && subsumes(gb, sb, m),
            _ => false,
        },
        Pat::Select(gc, gt, gf) => match specific {
            Pat::Select(sc, st, sf) => {
                subsumes(gc, sc, m) && subsumes(gt, st, m) && subsumes(gf, sf, m)
            }
            _ => false,
        },
        Pat::Cast(gty, ga) => match specific {
            Pat::Cast(sty, sa) => ty_subsumes(gty, sty, m) && subsumes(ga, sa, m),
            _ => false,
        },
        Pat::Reinterpret(gty, ga) => match specific {
            Pat::Reinterpret(sty, sa) => ty_subsumes(gty, sty, m) && subsumes(ga, sa, m),
            _ => false,
        },
        Pat::SatCast(gty, ga) => match specific {
            Pat::SatCast(sty, sa) => ty_subsumes(gty, sty, m) && subsumes(ga, sa, m),
            _ => false,
        },
        Pat::Fpir(op, gargs) => match specific {
            Pat::Fpir(sop, sargs) if sop == op && sargs.len() == gargs.len() => {
                let snapshot = m.clone();
                if gargs.iter().zip(sargs).all(|(g, s)| subsumes(g, s, m)) {
                    return true;
                }
                *m = snapshot;
                op.is_commutative()
                    && gargs.len() == 2
                    && subsumes(&gargs[0], &sargs[1], m)
                    && subsumes(&gargs[1], &sargs[0], m)
            }
            _ => false,
        },
        Pat::Mach(op, gargs) => match specific {
            Pat::Mach(sop, sargs) if sop == op && sargs.len() == gargs.len() => {
                gargs.iter().zip(sargs).all(|(g, s)| subsumes(g, s, m))
            }
            _ => false,
        },
    }
}

/// Does the specific rule's predicate imply the general rule's predicate,
/// under the wildcard correspondence recorded in `m`?
///
/// Conservative: returns `true` only when every conjunct of the general
/// predicate is provably entailed.
fn pred_implies(specific: &Predicate, general: &Predicate, m: &SubMap) -> bool {
    let spec_leaves = specific.conjuncts();
    general.conjuncts().into_iter().all(|g| leaf_implied(g, &spec_leaves, m))
}

fn leaf_implied(g: &Predicate, spec: &[&Predicate], m: &SubMap) -> bool {
    if matches!(g, Predicate::True) {
        return true;
    }
    // Translate the general leaf into the specific rule's wildcard space;
    // if any referenced wildcard has no direct counterpart, give up.
    match g {
        Predicate::IsPow2(id) => match m.consts.get(id) {
            Some(ConstBind::Lit(v)) => fpir::simplify::is_pow2(*v),
            Some(ConstBind::Wild(b)) => spec.iter().any(|s| match s {
                Predicate::IsPow2(sb) => sb == b,
                Predicate::ConstEq { id: sb, value } => sb == b && fpir::simplify::is_pow2(*value),
                Predicate::Pow2Link { id: sb, .. } => sb == b,
                _ => false,
            }),
            None => false,
        },
        Predicate::ConstInRange { id, lo, hi } => match m.consts.get(id) {
            Some(ConstBind::Lit(v)) => lo <= v && v <= hi,
            Some(ConstBind::Wild(b)) => spec.iter().any(|s| match s {
                Predicate::ConstInRange { id: sb, lo: slo, hi: shi } => {
                    sb == b && lo <= slo && shi <= hi
                }
                Predicate::ConstEq { id: sb, value } => sb == b && lo <= value && value <= hi,
                _ => false,
            }),
            None => false,
        },
        Predicate::ConstEq { id, value } => match m.consts.get(id) {
            Some(ConstBind::Lit(v)) => v == value,
            Some(ConstBind::Wild(b)) => spec.iter().any(
                |s| matches!(s, Predicate::ConstEq { id: sb, value: sv } if sb == b && sv == value),
            ),
            None => false,
        },
        // Every remaining leaf depends on the bound expression or the
        // constant's own type; require a syntactically identical leaf on
        // the corresponding specific wildcard.
        _ => {
            let Some(translated) = translate_leaf(g, m) else {
                return false;
            };
            spec.iter().any(|s| **s == translated)
        }
    }
}

/// Rewrite the wildcard ids of a general predicate leaf into the specific
/// rule's id space; `None` when some referenced wildcard has no leaf
/// counterpart there.
fn translate_leaf(g: &Predicate, m: &SubMap) -> Option<Predicate> {
    let const_id = |id: &u8| -> Option<u8> {
        match m.consts.get(id) {
            Some(ConstBind::Wild(b)) => Some(*b),
            _ => None,
        }
    };
    let expr_id = |id: &u8| -> Option<u8> { m.exprs.get(id).copied().flatten() };
    Some(match g {
        Predicate::True => Predicate::True,
        Predicate::All(_) => return None, // conjuncts() never yields All
        Predicate::IsPow2(id) => Predicate::IsPow2(const_id(id)?),
        Predicate::ConstInRange { id, lo, hi } => {
            Predicate::ConstInRange { id: const_id(id)?, lo: *lo, hi: *hi }
        }
        Predicate::ConstEq { id, value } => Predicate::ConstEq { id: const_id(id)?, value: *value },
        Predicate::ConstEqOwnBits(id) => Predicate::ConstEqOwnBits(const_id(id)?),
        Predicate::ConstEqOwnBitsMinus1(id) => Predicate::ConstEqOwnBitsMinus1(const_id(id)?),
        Predicate::ConstGeHalfOwnBits(id) => Predicate::ConstGeHalfOwnBits(const_id(id)?),
        Predicate::ConstLeHalfOwnBits(id) => Predicate::ConstLeHalfOwnBits(const_id(id)?),
        Predicate::ConstEqHalfOwnBits(id) => Predicate::ConstEqHalfOwnBits(const_id(id)?),
        Predicate::ConstLeOwnBits(id) => Predicate::ConstLeOwnBits(const_id(id)?),
        Predicate::ConstEqOwnNarrowMax(id) => Predicate::ConstEqOwnNarrowMax(const_id(id)?),
        Predicate::ConstEqOwnNarrowMin(id) => Predicate::ConstEqOwnNarrowMin(const_id(id)?),
        Predicate::ConstEqOwnNarrowUnsignedMax(id) => {
            Predicate::ConstEqOwnNarrowUnsignedMax(const_id(id)?)
        }
        Predicate::Pow2Link { id, of } => {
            Predicate::Pow2Link { id: const_id(id)?, of: const_id(of)? }
        }
        Predicate::FitsSignedSameWidth(id) => Predicate::FitsSignedSameWidth(expr_id(id)?),
        Predicate::FitsNarrow(id) => Predicate::FitsNarrow(expr_id(id)?),
        Predicate::IsUnsigned(id) => Predicate::IsUnsigned(expr_id(id)?),
        Predicate::IsSigned(id) => Predicate::IsSigned(expr_id(id)?),
        Predicate::UpperBounded { id, bound } => {
            Predicate::UpperBounded { id: expr_id(id)?, bound: *bound }
        }
        Predicate::LowerBounded { id, bound } => {
            Predicate::LowerBounded { id: expr_id(id)?, bound: *bound }
        }
        Predicate::AddConstFits { x, c } => {
            Predicate::AddConstFits { x: expr_id(x)?, c: const_id(c)? }
        }
        Predicate::RoundTermAddFits { x, c } => {
            Predicate::RoundTermAddFits { x: expr_id(x)?, c: const_id(c)? }
        }
        Predicate::FitsNarrowAfterRoundShr { x, c } => {
            Predicate::FitsNarrowAfterRoundShr { x: expr_id(x)?, c: const_id(c)? }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpir_trs::dsl::*;

    #[test]
    fn wildcard_subsumes_const_wildcard() {
        // general: x + y   specific: x + c
        let g = pat_add(wild(0), wild(1));
        let s = pat_add(wild(0), cwild(1));
        assert!(subsumes(&g, &s, &mut SubMap::default()));
        // and not the other way round
        assert!(!subsumes(&s, &g, &mut SubMap::default()));
    }

    #[test]
    fn nonlinear_general_requires_equal_specific_subtrees() {
        // general: x0 + x0   specific: x1 + x2 (independent)
        let g = pat_add(wild(0), wild(0));
        let s = pat_add(wild(1), wild(2));
        assert!(!subsumes(&g, &s, &mut SubMap::default()));
        // specific: x1 + x1 is fine
        let s2 = pat_add(wild(1), wild(1));
        assert!(subsumes(&g, &s2, &mut SubMap::default()));
    }

    #[test]
    fn commutative_subsumption_tries_both_orders() {
        // general: c + x   specific: x + c (swapped)
        let g = pat_add(cwild(0), wild(1));
        let s = pat_add(wild(1), cwild(0));
        assert!(subsumes(&g, &s, &mut SubMap::default()));
    }

    #[test]
    fn range_predicate_implication() {
        let g = pat_add(wild(0), cwild(1));
        let s = pat_add(wild(0), cwild(1));
        let mut m = SubMap::default();
        assert!(subsumes(&g, &s, &mut m));
        // specific 1..=4 implies general 0..=8
        let gp = Predicate::ConstInRange { id: 1, lo: 0, hi: 8 };
        let sp = Predicate::ConstInRange { id: 1, lo: 1, hi: 4 };
        assert!(pred_implies(&sp, &gp, &m));
        // the reverse does not hold
        assert!(!pred_implies(&gp, &sp, &m));
        // anything implies True
        assert!(pred_implies(&sp, &Predicate::True, &m));
    }
}
