//! Target-specific cost model for the lowering TRSs (§3.3).
//!
//! Lowering rules are "designed using target-specific cost models provided
//! by processor documentation to maximize throughput". Here the model
//! prices machine nodes by their table cost times the number of native
//! registers they touch; any node that is *not yet* a machine instruction
//! carries a large unlowered penalty, so every lowering rewrite strictly
//! decreases the cost and the rewriter's convergence argument carries
//! over unchanged.

use crate::def::{target, Target};
use fpir::expr::{Expr, ExprKind};
use fpir::Isa;
use fpir_trs::cost::{Cost, CostModel};

/// Penalty per unlowered (non-machine) interior node.
pub const UNLOWERED_PENALTY: u64 = 1_000;

/// Expression-level cost for one target.
#[derive(Debug, Clone, Copy)]
pub struct TargetCost {
    t: &'static Target,
}

impl TargetCost {
    /// The cost model for `isa`.
    pub fn new(isa: Isa) -> TargetCost {
        TargetCost { t: target(isa) }
    }

    /// Cost units of a single machine node (instruction cost × native
    /// registers processed). Unknown opcodes price like the penalty so
    /// mis-authored rules never look attractive.
    pub fn mach_node_cost(&self, e: &Expr) -> u64 {
        let ExprKind::Mach(op, _) = e.kind() else {
            return UNLOWERED_PENALTY;
        };
        let Some(def) = self.t.def(*op) else {
            return UNLOWERED_PENALTY;
        };
        let rf = e
            .children()
            .iter()
            .map(|c| self.t.reg_factor(c.ty()))
            .chain(std::iter::once(self.t.reg_factor(e.ty())))
            .max()
            .unwrap_or(1);
        def.cost as u64 * rf
    }
}

impl CostModel for TargetCost {
    fn node_cost(&self, e: &Expr) -> Cost {
        let total = match e.kind() {
            ExprKind::Var(_) | ExprKind::Const(_) => 0,
            ExprKind::Mach(..) => self.mach_node_cost(e),
            _ => UNLOWERED_PENALTY * self.t.reg_factor(e.ty()),
        };
        Cost { width_sum: total, op_rank: 0 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::legalize::legalize;
    use fpir::build;
    use fpir::types::{ScalarType as S, VectorType as V};

    #[test]
    fn lowering_reduces_cost() {
        let t = V::new(S::U8, 16);
        let e = build::widening_add(build::var("a", t), build::var("b", t));
        let model = TargetCost::new(Isa::ArmNeon);
        let lowered = legalize(&e, target(Isa::ArmNeon)).unwrap();
        assert!(model.cost(&lowered) < model.cost(&e));
    }

    #[test]
    fn wider_vectors_cost_more() {
        let model = TargetCost::new(Isa::ArmNeon);
        let t8 = V::new(S::U8, 16);
        let t16 = V::new(S::U16, 16);
        let narrow =
            legalize(&build::add(build::var("a", t8), build::var("b", t8)), target(Isa::ArmNeon))
                .unwrap();
        let wide =
            legalize(&build::add(build::var("a", t16), build::var("b", t16)), target(Isa::ArmNeon))
                .unwrap();
        assert!(model.cost(&wide) > model.cost(&narrow));
    }

    #[test]
    fn emulated_paths_cost_more_than_native() {
        // halving_add: single vavg on HVX, widen/add/shift/narrow on x86.
        let t = V::new(S::U8, 32);
        let e = build::halving_add(build::var("a", t), build::var("b", t));
        let hvx = legalize(&e, target(Isa::HexagonHvx)).unwrap();
        let x86 = legalize(&e, target(Isa::X86Avx2)).unwrap();
        let hvx_cost = TargetCost::new(Isa::HexagonHvx).cost(&hvx).width_sum;
        let x86_cost = TargetCost::new(Isa::X86Avx2).cost(&x86).width_sum;
        // Compare per-register-normalized costs (HVX registers are 4x).
        assert!(x86_cost > hvx_cost, "x86 {x86_cost} vs hvx {hvx_cost}");
    }
}
