//! The x86 AVX2-like virtual target.
//!
//! Modelled on AVX2's 256-bit integer ISA: few fused fixed-point
//! operations (the rounding average `vpavgb/w`, saturating add/sub, the
//! signed packs, and the `vpmaddwd`/`vpmulh*` multiply family), no 8-bit
//! shifts or multiplies, signed-only compares, and no halving-add — the
//! gaps that make Pitchfork's x86 backend lean on *compound* lowerings
//! (§5.1.4).

use crate::def::{row, BackendDesc, InstDef, RegModel};
use crate::sem::MachSem;
use fpir::expr::{BinOp, CmpOp};
use fpir::{FpirOp, Isa, MachOp};

/// Registry descriptor for the x86 AVX2-like backend.
pub static BACKEND: BackendDesc = BackendDesc {
    isa: Isa::X86Avx2,
    reg: RegModel::Fixed { bits: 256 },
    max_lane_bits: 64,
    build: defs,
    description: "x86 AVX2-like: 256-bit vectors, few fused fixed-point ops",
};

const fn m(code: u16, name: &'static str) -> MachOp {
    MachOp { isa: Isa::X86Avx2, code, name }
}

/// Packed add.
pub const VPADD: MachOp = m(0, "vpadd");
/// Packed subtract.
pub const VPSUB: MachOp = m(1, "vpsub");
/// Packed multiply (low half), 16/32-bit only.
pub const VPMULL: MachOp = m(2, "vpmull");
/// Signed multiply high (`vpmulhw`).
pub const VPMULHW: MachOp = m(3, "vpmulhw");
/// Unsigned multiply high (`vpmulhuw`).
pub const VPMULHUW: MachOp = m(4, "vpmulhuw");
/// Paired widening multiply-add of i16 into i32 (`vpmaddwd`).
pub const VPMADDWD: MachOp = m(5, "vpmaddwd");
/// Packed minimum.
pub const VPMIN: MachOp = m(6, "vpmin");
/// Packed maximum.
pub const VPMAX: MachOp = m(7, "vpmax");
/// Bitwise and.
pub const VPAND: MachOp = m(8, "vpand");
/// Bitwise or.
pub const VPOR: MachOp = m(9, "vpor");
/// Bitwise xor.
pub const VPXOR: MachOp = m(10, "vpxor");
/// Shift left by immediate.
pub const VPSLL: MachOp = m(11, "vpsll");
/// Shift right by immediate (logical or arithmetic per signedness).
pub const VPSR: MachOp = m(12, "vpsr");
/// Variable shift left (32/64-bit lanes only).
pub const VPSLLV: MachOp = m(13, "vpsllv");
/// Variable shift right (32/64-bit lanes only).
pub const VPSRLV: MachOp = m(14, "vpsrlv");
/// Signed compare greater-than.
pub const VPCMPGT: MachOp = m(15, "vpcmpgt");
/// Emulated unsigned compare greater-than (xor-bias + `vpcmpgt`).
pub const VPCMPGTU: MachOp = m(16, "vpcmpgtu");
/// Compare equal.
pub const VPCMPEQ: MachOp = m(17, "vpcmpeq");
/// Byte blend (select).
pub const VPBLENDVB: MachOp = m(18, "vpblendvb");
/// Zero extension (`vpmovzx`).
pub const VPMOVZX: MachOp = m(19, "vpmovzx");
/// Sign extension (`vpmovsx`).
pub const VPMOVSX: MachOp = m(20, "vpmovsx");
/// Truncating narrow (shuffle/pack based — costs two uops' worth).
pub const VPACKTRUNC: MachOp = m(21, "vpacktrunc");
/// Register reinterpretation (free).
pub const VREINTERP: MachOp = m(22, "vreinterp");
/// Unsigned rounding average (`vpavgb`/`vpavgw`).
pub const VPAVG: MachOp = m(23, "vpavg");
/// Saturating add (`vpadds*`/`vpaddus*`).
pub const VPADDS: MachOp = m(24, "vpadds");
/// Saturating subtract (`vpsubs*`/`vpsubus*`).
pub const VPSUBS: MachOp = m(25, "vpsubs");
/// Pack with unsigned saturation, input read as signed (`vpackuswb`).
pub const VPACKUS: MachOp = m(26, "vpackus");
/// Pack with signed saturation (`vpacksswb`).
pub const VPACKSS: MachOp = m(27, "vpackss");
/// Absolute value (`vpabs`).
pub const VPABS: MachOp = m(28, "vpabs");
/// Saturating unsigned subtract used by compound absd (`vpsubus`).
pub const VPSUBUS: MachOp = m(29, "vpsubus");
/// Broadcast a constant (`vpbroadcast`).
pub const VSPLAT: MachOp = m(30, "vpbroadcast");
/// Rounding multiply-high of i16 (`vpmulhrsw`, the SSSE3 q15 multiply).
pub const VPMULHRSW: MachOp = m(31, "vpmulhrsw");
/// Pitchfork's fixed 32-bit rounding multiply-high sequence (vpmuldq /
/// vpmuludq + shuffles), modelled as one row with the sequence's
/// aggregate cost.
pub const VRMULH32: MachOp = m(32, "rmulh32.seq");
/// 64-bit multiply emulation (vpmuludq pieces + shifts + adds) — AVX2 has
/// no full 64-bit multiply; LLVM emits this sequence.
pub const VPMUL64: MachOp = m(33, "mul64.seq");

const ALL: &[u32] = &[8, 16, 32, 64];
const NO8: &[u32] = &[16, 32, 64];
const SMALL: &[u32] = &[8, 16, 32];

pub(crate) fn defs() -> Vec<InstDef> {
    vec![
        row(VPADD, MachSem::Bin(BinOp::Add), 1, ALL, "packed add"),
        row(VPSUB, MachSem::Bin(BinOp::Sub), 1, ALL, "packed subtract"),
        row(VPMULL, MachSem::Bin(BinOp::Mul), 2, &[16, 32], "packed multiply low"),
        row(VPMULHW, MachSem::MulHigh, 2, &[16], "signed multiply high").signed_only(),
        row(VPMULHUW, MachSem::MulHigh, 2, &[16], "unsigned multiply high").unsigned_only(),
        row(VPMADDWD, MachSem::MulPairsAdd, 2, &[16], "paired i16 multiply-add to i32")
            .signed_only(),
        row(VPMIN, MachSem::Bin(BinOp::Min), 1, SMALL, "packed minimum"),
        row(VPMAX, MachSem::Bin(BinOp::Max), 1, SMALL, "packed maximum"),
        row(VPAND, MachSem::Bin(BinOp::And), 1, ALL, "bitwise and"),
        row(VPOR, MachSem::Bin(BinOp::Or), 1, ALL, "bitwise or"),
        row(VPXOR, MachSem::Bin(BinOp::Xor), 1, ALL, "bitwise xor"),
        row(VPSLL, MachSem::Bin(BinOp::Shl), 1, NO8, "shift left by immediate")
            .const_operands(&[1]),
        row(VPSR, MachSem::Bin(BinOp::Shr), 1, NO8, "shift right by immediate")
            .const_operands(&[1]),
        row(VPSLLV, MachSem::Bin(BinOp::Shl), 2, &[32, 64], "variable shift left"),
        row(VPSRLV, MachSem::Bin(BinOp::Shr), 2, &[32, 64], "variable shift right"),
        row(VPCMPGT, MachSem::Cmp(CmpOp::Gt), 1, ALL, "signed compare greater").signed_only(),
        row(VPCMPGTU, MachSem::Cmp(CmpOp::Gt), 3, SMALL, "emulated unsigned compare greater")
            .unsigned_only(),
        row(VPCMPEQ, MachSem::Cmp(CmpOp::Eq), 1, ALL, "compare equal"),
        row(VPBLENDVB, MachSem::Select, 2, ALL, "byte blend"),
        row(VPMOVZX, MachSem::ExtendTo, 1, SMALL, "zero extend").unsigned_only(),
        row(VPMOVSX, MachSem::ExtendTo, 1, SMALL, "sign extend").signed_only(),
        row(VPACKTRUNC, MachSem::TruncTo, 2, NO8, "shuffle-based truncation"),
        row(VREINTERP, MachSem::Reinterpret, 0, ALL, "register alias"),
        row(VPAVG, MachSem::Fpir(FpirOp::RoundingHalvingAdd), 1, &[8, 16], "rounding average")
            .unsigned_only(),
        row(VPADDS, MachSem::Fpir(FpirOp::SaturatingAdd), 1, &[8, 16], "saturating add"),
        row(VPSUBS, MachSem::Fpir(FpirOp::SaturatingSub), 1, &[8, 16], "saturating subtract"),
        row(VPACKUS, MachSem::PackSatSignedTo, 1, &[16, 32], "pack, unsigned saturation"),
        row(VPACKSS, MachSem::PackSatSignedTo, 1, &[16, 32], "pack, signed saturation"),
        row(VPABS, MachSem::Fpir(FpirOp::Abs), 1, SMALL, "absolute value"),
        row(
            VPSUBUS,
            MachSem::Fpir(FpirOp::SaturatingSub),
            1,
            &[8, 16],
            "saturating unsigned subtract",
        )
        .unsigned_only(),
        row(VSPLAT, MachSem::Splat, 1, ALL, "broadcast constant"),
        row(VPMULHRSW, MachSem::QRDMulH, 2, &[16], "rounding multiply high").signed_only(),
        row(VRMULH32, MachSem::QRDMulH, 8, &[32], "32-bit rounding multiply-high sequence")
            .signed_only(),
        row(VPMUL64, MachSem::Bin(BinOp::Mul), 6, &[64], "emulated 64-bit multiply"),
    ]
}
