//! Instruction definitions and the pluggable backend registry.
//!
//! Each virtual ISA is a table of [`InstDef`]s: opcode, executable
//! semantics, a throughput-style cost (per native register operated on),
//! legal lane widths, and operand constraints. Every backend contributes
//! one [`BackendDesc`] — its register model, lane-width limit, and table
//! builder — to [`BACKENDS`]; [`target`] materializes the descriptors
//! once and returns the registry entry for an [`Isa`]. Nothing in this
//! module (or downstream of it) pattern-matches a fixed set of `Isa`
//! variants: adding a backend is one descriptor plus one enum variant.

use crate::sem::{eval_sem, MachSem};
use fpir::interp::Value;
use fpir::types::VectorType;
use fpir::{Isa, MachOp};
use std::sync::OnceLock;

/// How a backend's vector register file relates to logical vector types.
#[derive(Debug, Clone, Copy)]
pub enum RegModel {
    /// Fixed-width registers: a logical vector occupies
    /// `ceil(total_bits / bits)` registers.
    Fixed {
        /// Native register width in bits.
        bits: u32,
    },
    /// Vector-length-agnostic (scalable) registers, RVV-style. Code is
    /// strip-mined over whatever hardware length an implementation has,
    /// so no logical vector width is *illegal*; `vlen` is the
    /// representative implementation width the cycle model prices
    /// against, and `max_lmul` is the largest register-group factor a
    /// single instruction can cover before strip-mining must loop.
    Scalable {
        /// Priced implementation width in bits (VLEN).
        vlen: u32,
        /// Maximum register grouping factor (LMUL).
        max_lmul: u32,
    },
}

/// A backend's registry entry: everything the rest of the stack needs to
/// know about a target, short of the rule pack (which `fpir-core` keys by
/// [`Isa`]). One of these per target module; the table itself is built
/// lazily via `build` on first [`target`] call.
#[derive(Debug)]
pub struct BackendDesc {
    /// The ISA this descriptor registers.
    pub isa: Isa,
    /// Register model (fixed-width or scalable).
    pub reg: RegModel,
    /// Largest lane width in bits the target supports natively. Hexagon
    /// HVX has no 64-bit lanes, which is why three of the paper's
    /// benchmarks cannot be compiled by the LLVM baseline on HVX (§5.1).
    pub max_lane_bits: u32,
    /// Builds the instruction table.
    pub build: fn() -> Vec<InstDef>,
    /// One-line description for docs and reports.
    pub description: &'static str,
}

/// Every registered backend descriptor, in [`fpir::machine::ALL_ISAS`]
/// order. Adding a target means adding its module's `BACKEND` here — the
/// registry init asserts the two lists stay in sync.
pub static BACKENDS: [&BackendDesc; 4] =
    [&crate::x86::BACKEND, &crate::arm::BACKEND, &crate::hvx::BACKEND, &crate::rvv::BACKEND];

/// Signedness requirement on an instruction's first operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SignReq {
    /// Either signedness.
    Any,
    /// Signed lanes only.
    Signed,
    /// Unsigned lanes only.
    Unsigned,
}

/// One machine instruction.
#[derive(Debug, Clone)]
pub struct InstDef {
    /// Opcode handle (embeds the mnemonic).
    pub op: MachOp,
    /// What it computes.
    pub sem: MachSem,
    /// Cost units per native vector register processed (≈ 10 ×
    /// reciprocal throughput on the modelled hardware class).
    pub cost: u32,
    /// Legal element widths (bits) for the *first* operand.
    pub widths: &'static [u32],
    /// Signedness requirement on the first operand.
    pub sign: SignReq,
    /// Operand indices that must be broadcast constants (immediates).
    pub needs_const: &'static [usize],
    /// One-line description.
    pub desc: &'static str,
}

/// A virtual target: a backend descriptor plus its materialized
/// instruction table.
#[derive(Debug)]
pub struct Target {
    /// Which ISA this is.
    pub isa: Isa,
    desc: &'static BackendDesc,
    defs: Vec<InstDef>,
    /// Semantics index: for each distinct [`MachSem`] in the table, the
    /// row indices implementing it, sorted by (cost, table order). Built
    /// once at registration so per-node instruction lookup during
    /// legalization scans a handful of rows instead of the whole table.
    by_sem: Vec<(MachSem, Vec<u16>)>,
}

impl Target {
    pub(crate) fn new(desc: &'static BackendDesc) -> Target {
        let isa = desc.isa;
        let defs = (desc.build)();
        for (i, d) in defs.iter().enumerate() {
            assert_eq!(d.op.isa, isa, "instruction {} belongs to {}", d.op, d.op.isa);
            assert_eq!(
                d.op.code as usize, i,
                "instruction {} has code {} but sits at table index {i}",
                d.op, d.op.code
            );
        }
        let mut by_sem: Vec<(MachSem, Vec<u16>)> = Vec::new();
        for (i, d) in defs.iter().enumerate() {
            match by_sem.iter_mut().find(|(s, _)| *s == d.sem) {
                Some((_, rows)) => rows.push(i as u16),
                None => by_sem.push((d.sem, vec![i as u16])),
            }
        }
        for (_, rows) in &mut by_sem {
            // Stable by construction (rows start in table order), so equal
            // costs keep table order — the same row a full-table
            // `min_by_key` on cost would pick.
            rows.sort_by_key(|&i| defs[i as usize].cost);
        }
        Target { isa, desc, defs, by_sem }
    }

    /// The registry descriptor this target was built from.
    pub fn desc(&self) -> &'static BackendDesc {
        self.desc
    }

    /// Native (or, for scalable targets, priced implementation) vector
    /// register width in bits.
    pub fn vector_bits(&self) -> u32 {
        match self.desc.reg {
            RegModel::Fixed { bits } => bits,
            RegModel::Scalable { vlen, .. } => vlen,
        }
    }

    /// Largest lane width in bits the target supports natively.
    pub fn max_lane_bits(&self) -> u32 {
        self.desc.max_lane_bits
    }

    /// Whether the register file is vector-length-agnostic.
    pub fn scalable(&self) -> bool {
        matches!(self.desc.reg, RegModel::Scalable { .. })
    }

    /// All instructions.
    pub fn defs(&self) -> &[InstDef] {
        &self.defs
    }

    /// Look up an opcode.
    pub fn def(&self, op: MachOp) -> Option<&InstDef> {
        if op.isa != self.isa {
            return None;
        }
        self.defs.get(op.code as usize)
    }

    /// Find the cheapest instruction with the given semantics that is
    /// legal at `width` bits and `signed`ness.
    pub fn find(&self, sem: MachSem, width: u32, signed: bool) -> Option<&InstDef> {
        self.defs_with_sem(sem).find(|d| {
            d.widths.contains(&width)
                && match d.sign {
                    SignReq::Any => true,
                    SignReq::Signed => signed,
                    SignReq::Unsigned => !signed,
                }
        })
    }

    /// The rows implementing `sem`, cheapest first (ties in table order).
    /// The first row passing a legality filter is therefore the row a
    /// cost-minimizing scan of the full table would select.
    pub fn defs_with_sem(&self, sem: MachSem) -> impl Iterator<Item = &InstDef> {
        self.by_sem
            .iter()
            .find(|(s, _)| *s == sem)
            .map(|(_, rows)| rows.as_slice())
            .unwrap_or(&[])
            .iter()
            .map(|&i| &self.defs[i as usize])
    }

    /// Number of native registers a logical vector occupies (≥ 1). For
    /// scalable targets this is the strip-mine factor at the priced
    /// implementation width — throughput still scales with total bits
    /// even though no logical width is illegal.
    pub fn reg_factor(&self, ty: VectorType) -> u64 {
        let native = self.vector_bits() as u64;
        ty.total_bits().div_ceil(native).max(1)
    }
}

/// Every registered virtual target, in [`fpir::machine::ALL_ISAS`] order —
/// the per-ISA enumeration used by coverage analyses that must prove a
/// property for *all* backends rather than query one.
pub fn all_targets() -> impl Iterator<Item = &'static Target> {
    fpir::machine::ALL_ISAS.into_iter().map(target)
}

/// The registry entry for `isa`.
///
/// Materializes every [`BACKENDS`] descriptor on first call, asserting
/// the registry covers [`fpir::machine::ALL_ISAS`] exactly (one
/// descriptor per variant, in order) — the compile-time exhaustiveness a
/// `match` used to provide, recovered as a startup invariant.
pub fn target(isa: Isa) -> &'static Target {
    static REG: OnceLock<Vec<Target>> = OnceLock::new();
    let all = REG.get_or_init(|| {
        assert_eq!(
            BACKENDS.len(),
            fpir::machine::ALL_ISAS.len(),
            "backend registry out of sync with Isa enum"
        );
        BACKENDS
            .iter()
            .zip(fpir::machine::ALL_ISAS)
            .map(|(desc, isa)| {
                assert_eq!(desc.isa, isa, "backend registry order differs from ALL_ISAS");
                Target::new(desc)
            })
            .collect()
    });
    all.iter().find(|t| t.isa == isa).unwrap_or_else(|| panic!("no backend registered for {isa}"))
}

/// [`fpir::machine::MachEval`] implementation executing machine nodes
/// through the instruction tables — this is what lets the reference
/// interpreter run lowered expressions.
#[derive(Debug, Clone, Copy, Default)]
pub struct MachEvaluator;

impl fpir::machine::MachEval for MachEvaluator {
    fn eval_mach(
        &self,
        op: MachOp,
        args: &[Value],
        result_ty: VectorType,
    ) -> Result<Value, String> {
        let t = target(op.isa);
        let def = t.def(op).ok_or_else(|| format!("unknown {} opcode {}", op.isa, op.code))?;
        eval_sem(def.sem, args, result_ty)
    }
}

/// Shorthand for building table rows.
pub(crate) fn row(
    op: MachOp,
    sem: MachSem,
    cost: u32,
    widths: &'static [u32],
    desc: &'static str,
) -> InstDef {
    InstDef { op, sem, cost, widths, sign: SignReq::Any, needs_const: &[], desc }
}

impl InstDef {
    pub(crate) fn signed_only(mut self) -> InstDef {
        self.sign = SignReq::Signed;
        self
    }

    pub(crate) fn unsigned_only(mut self) -> InstDef {
        self.sign = SignReq::Unsigned;
        self
    }

    pub(crate) fn const_operands(mut self, idxs: &'static [usize]) -> InstDef {
        self.needs_const = idxs;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_tables_are_consistent() {
        for t in all_targets() {
            assert!(!t.defs().is_empty());
            for d in t.defs() {
                assert!(!d.widths.is_empty(), "{} has no legal widths", d.op);
                assert!(d.cost > 0 || matches!(d.sem, MachSem::Reinterpret), "{}", d.op);
                assert!(
                    d.widths.iter().all(|w| *w <= t.max_lane_bits()),
                    "{} claims an illegal width for {}",
                    d.op,
                    t.isa
                );
            }
        }
    }

    #[test]
    fn registry_covers_every_isa() {
        for isa in fpir::machine::ALL_ISAS {
            let t = target(isa);
            assert_eq!(t.isa, isa);
            assert_eq!(t.desc().isa, isa);
            assert!(t.vector_bits() > 0);
            assert!(t.max_lane_bits() >= 32);
        }
        // Only the RVV backend is scalable today.
        assert!(target(Isa::Rvv).scalable());
        assert!(!target(Isa::ArmNeon).scalable());
    }

    #[test]
    fn reg_factor_scales_with_width() {
        use fpir::types::{ScalarType as S, VectorType as V};
        let arm = target(Isa::ArmNeon);
        assert_eq!(arm.reg_factor(V::new(S::U8, 16)), 1);
        assert_eq!(arm.reg_factor(V::new(S::U16, 16)), 2);
        assert_eq!(arm.reg_factor(V::new(S::U8, 4)), 1);
        let hvx = target(Isa::HexagonHvx);
        assert_eq!(hvx.reg_factor(V::new(S::U8, 128)), 1);
        assert_eq!(hvx.reg_factor(V::new(S::U16, 128)), 2);
        // Scalable targets strip-mine: reg_factor is the pass count at
        // the priced VLEN and must scale with total bits — including at
        // the odd lane counts a VLA target naturally encounters.
        let rvv = target(Isa::Rvv);
        assert_eq!(rvv.reg_factor(V::new(S::U8, 32)), 1);
        assert_eq!(rvv.reg_factor(V::new(S::U64, 32)), 8);
        assert_eq!(rvv.reg_factor(V::new(S::U16, 7)), 1);
        assert_eq!(rvv.reg_factor(V::new(S::U32, 31)), 4);
    }

    #[test]
    fn find_prefers_cheapest_legal() {
        // Signed compare-greater exists at cost 1 on x86; unsigned is the
        // emulated, more expensive row.
        let x86 = target(Isa::X86Avx2);
        let s = x86.find(MachSem::Cmp(fpir::CmpOp::Gt), 16, true).unwrap();
        let u = x86.find(MachSem::Cmp(fpir::CmpOp::Gt), 16, false).unwrap();
        assert!(s.cost < u.cost);
    }
}
