//! Instruction definitions and the target registry.
//!
//! Each virtual ISA is a table of [`InstDef`]s: opcode, executable
//! semantics, a throughput-style cost (per native register operated on),
//! legal lane widths, and operand constraints. The three tables live in
//! [`crate::x86`], [`crate::arm`] and [`crate::hvx`]; [`target`] returns
//! the registry entry for an [`Isa`].

use crate::sem::{eval_sem, MachSem};
use fpir::interp::Value;
use fpir::types::VectorType;
use fpir::{Isa, MachOp};
use std::sync::OnceLock;

/// Signedness requirement on an instruction's first operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SignReq {
    /// Either signedness.
    Any,
    /// Signed lanes only.
    Signed,
    /// Unsigned lanes only.
    Unsigned,
}

/// One machine instruction.
#[derive(Debug, Clone)]
pub struct InstDef {
    /// Opcode handle (embeds the mnemonic).
    pub op: MachOp,
    /// What it computes.
    pub sem: MachSem,
    /// Cost units per native vector register processed (≈ 10 ×
    /// reciprocal throughput on the modelled hardware class).
    pub cost: u32,
    /// Legal element widths (bits) for the *first* operand.
    pub widths: &'static [u32],
    /// Signedness requirement on the first operand.
    pub sign: SignReq,
    /// Operand indices that must be broadcast constants (immediates).
    pub needs_const: &'static [usize],
    /// One-line description.
    pub desc: &'static str,
}

/// A virtual target: an ISA plus its instruction table.
#[derive(Debug)]
pub struct Target {
    /// Which ISA this is.
    pub isa: Isa,
    defs: Vec<InstDef>,
    /// Semantics index: for each distinct [`MachSem`] in the table, the
    /// row indices implementing it, sorted by (cost, table order). Built
    /// once at registration so per-node instruction lookup during
    /// legalization scans a handful of rows instead of the whole table.
    by_sem: Vec<(MachSem, Vec<u16>)>,
}

impl Target {
    pub(crate) fn new(isa: Isa, defs: Vec<InstDef>) -> Target {
        for (i, d) in defs.iter().enumerate() {
            assert_eq!(d.op.isa, isa, "instruction {} belongs to {}", d.op, d.op.isa);
            assert_eq!(
                d.op.code as usize, i,
                "instruction {} has code {} but sits at table index {i}",
                d.op, d.op.code
            );
        }
        let mut by_sem: Vec<(MachSem, Vec<u16>)> = Vec::new();
        for (i, d) in defs.iter().enumerate() {
            match by_sem.iter_mut().find(|(s, _)| *s == d.sem) {
                Some((_, rows)) => rows.push(i as u16),
                None => by_sem.push((d.sem, vec![i as u16])),
            }
        }
        for (_, rows) in &mut by_sem {
            // Stable by construction (rows start in table order), so equal
            // costs keep table order — the same row a full-table
            // `min_by_key` on cost would pick.
            rows.sort_by_key(|&i| defs[i as usize].cost);
        }
        Target { isa, defs, by_sem }
    }

    /// All instructions.
    pub fn defs(&self) -> &[InstDef] {
        &self.defs
    }

    /// Look up an opcode.
    pub fn def(&self, op: MachOp) -> Option<&InstDef> {
        if op.isa != self.isa {
            return None;
        }
        self.defs.get(op.code as usize)
    }

    /// Find the cheapest instruction with the given semantics that is
    /// legal at `width` bits and `signed`ness.
    pub fn find(&self, sem: MachSem, width: u32, signed: bool) -> Option<&InstDef> {
        self.defs_with_sem(sem).find(|d| {
            d.widths.contains(&width)
                && match d.sign {
                    SignReq::Any => true,
                    SignReq::Signed => signed,
                    SignReq::Unsigned => !signed,
                }
        })
    }

    /// The rows implementing `sem`, cheapest first (ties in table order).
    /// The first row passing a legality filter is therefore the row a
    /// cost-minimizing scan of the full table would select.
    pub fn defs_with_sem(&self, sem: MachSem) -> impl Iterator<Item = &InstDef> {
        self.by_sem
            .iter()
            .find(|(s, _)| *s == sem)
            .map(|(_, rows)| rows.as_slice())
            .unwrap_or(&[])
            .iter()
            .map(|&i| &self.defs[i as usize])
    }

    /// Number of native registers a logical vector occupies (≥ 1).
    pub fn reg_factor(&self, ty: VectorType) -> u64 {
        let native = self.isa.vector_bits() as u64;
        ty.total_bits().div_ceil(native).max(1)
    }
}

/// Every registered virtual target, in [`fpir::machine::ALL_ISAS`] order —
/// the per-ISA enumeration used by coverage analyses that must prove a
/// property for *all* backends rather than query one.
pub fn all_targets() -> impl Iterator<Item = &'static Target> {
    fpir::machine::ALL_ISAS.into_iter().map(target)
}

/// The registry entry for `isa`.
pub fn target(isa: Isa) -> &'static Target {
    static REG: OnceLock<[Target; 3]> = OnceLock::new();
    let all = REG.get_or_init(|| {
        [
            Target::new(Isa::X86Avx2, crate::x86::defs()),
            Target::new(Isa::ArmNeon, crate::arm::defs()),
            Target::new(Isa::HexagonHvx, crate::hvx::defs()),
        ]
    });
    match isa {
        Isa::X86Avx2 => &all[0],
        Isa::ArmNeon => &all[1],
        Isa::HexagonHvx => &all[2],
    }
}

/// [`fpir::machine::MachEval`] implementation executing machine nodes
/// through the instruction tables — this is what lets the reference
/// interpreter run lowered expressions.
#[derive(Debug, Clone, Copy, Default)]
pub struct MachEvaluator;

impl fpir::machine::MachEval for MachEvaluator {
    fn eval_mach(
        &self,
        op: MachOp,
        args: &[Value],
        result_ty: VectorType,
    ) -> Result<Value, String> {
        let t = target(op.isa);
        let def = t.def(op).ok_or_else(|| format!("unknown {} opcode {}", op.isa, op.code))?;
        eval_sem(def.sem, args, result_ty)
    }
}

/// Shorthand for building table rows.
pub(crate) fn row(
    op: MachOp,
    sem: MachSem,
    cost: u32,
    widths: &'static [u32],
    desc: &'static str,
) -> InstDef {
    InstDef { op, sem, cost, widths, sign: SignReq::Any, needs_const: &[], desc }
}

impl InstDef {
    pub(crate) fn signed_only(mut self) -> InstDef {
        self.sign = SignReq::Signed;
        self
    }

    pub(crate) fn unsigned_only(mut self) -> InstDef {
        self.sign = SignReq::Unsigned;
        self
    }

    pub(crate) fn const_operands(mut self, idxs: &'static [usize]) -> InstDef {
        self.needs_const = idxs;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_tables_are_consistent() {
        for isa in fpir::machine::ALL_ISAS {
            let t = target(isa);
            assert!(!t.defs().is_empty());
            for d in t.defs() {
                assert!(!d.widths.is_empty(), "{} has no legal widths", d.op);
                assert!(d.cost > 0 || matches!(d.sem, MachSem::Reinterpret), "{}", d.op);
                assert!(
                    d.widths.iter().all(|w| *w <= isa.max_lane_bits()),
                    "{} claims an illegal width for {isa}",
                    d.op
                );
            }
        }
    }

    #[test]
    fn reg_factor_scales_with_width() {
        use fpir::types::{ScalarType as S, VectorType as V};
        let arm = target(Isa::ArmNeon);
        assert_eq!(arm.reg_factor(V::new(S::U8, 16)), 1);
        assert_eq!(arm.reg_factor(V::new(S::U16, 16)), 2);
        assert_eq!(arm.reg_factor(V::new(S::U8, 4)), 1);
        let hvx = target(Isa::HexagonHvx);
        assert_eq!(hvx.reg_factor(V::new(S::U8, 128)), 1);
        assert_eq!(hvx.reg_factor(V::new(S::U16, 128)), 2);
    }

    #[test]
    fn find_prefers_cheapest_legal() {
        // Signed compare-greater exists at cost 1 on x86; unsigned is the
        // emulated, more expensive row.
        let x86 = target(Isa::X86Avx2);
        let s = x86.find(MachSem::Cmp(fpir::CmpOp::Gt), 16, true).unwrap();
        let u = x86.find(MachSem::Cmp(fpir::CmpOp::Gt), 16, false).unwrap();
        assert!(s.cost < u.cost);
    }
}
