//! Generic legalization: turn any remaining non-machine nodes into target
//! instructions.
//!
//! This pass encodes the *direct mappings* of §3.3 once per target (the
//! `n` in the paper's `k + n + 1` rule count) plus the generic fallback
//! path every compiler needs: unsupported widths are widened, executed at
//! the wider width, and truncated back — exactly the "high-bit-width
//! intermediates halve SIMD throughput" effect the paper describes — and
//! FPIR instructions without a native row are expanded into their
//! primitive-integer definitions and re-legalized.
//!
//! Legalization fails honestly: Hexagon HVX has no 64-bit lanes, so
//! expressions that require them (§5.1) return
//! [`LowerError::Unsupported`], mirroring LLVM's failure to compile
//! `depthwise_conv`, `matmul` and `mul` for HVX.

use crate::def::{InstDef, SignReq, Target};
use crate::sem::MachSem;
use fpir::expr::{BinOp, CmpOp, Expr, ExprKind, FpirOp, RcExpr};
use fpir::identity::IdMap;
use fpir::types::{ScalarType, VectorType};
use fpir::Isa;
use std::fmt;
use std::sync::Arc;

/// Legalization memo: input node identity → (input kept alive, output).
///
/// Legalization is a pure function of the node for a fixed target, and its
/// output is a fixed point (machine/leaf nodes legalize to themselves), so
/// results are cached by `Arc` identity — the same discipline as the
/// rewriter's DAG memo. This matters twice over: workload pipelines share
/// subexpressions, and the FPIR fallback path *re-legalizes* expansions
/// whose operands were already legalized, which without the memo re-walks
/// those subtrees once per enclosing expansion.
///
/// A disabled memo ([`legalize_uncached`]) reproduces the original
/// tree-walking legalizer for differential testing and benchmarking.
#[derive(Debug, Default)]
struct Memo {
    map: Option<IdMap<(RcExpr, RcExpr)>>,
    /// Constant-folding memo shared across every FPIR expansion of the
    /// run (folding is pure, see [`fpir::simplify::const_fold_shared`]).
    folds: IdMap<(RcExpr, RcExpr)>,
}

/// What an FPIR expansion's legalization can depend on, besides the
/// target: the operator, and per operand its vector type plus the literal
/// value when the operand *is* a constant.
type ExpansionKey = (Isa, FpirOp, Vec<(VectorType, Option<i128>)>);

/// FPIR expansion skeletons: `(isa, op, operand shapes)` → the fully
/// legalized expansion over placeholder variables.
///
/// Like a rule set's `RuleIndex`, this is a
/// fixed per-target table computed lazily: the set of reachable keys is
/// bounded by operator × type combinations, and the skeleton for a key
/// never changes. Caching it process-wide amortizes the table across
/// every compilation against the target, not just within one legalize
/// run. See [`expand_legalized`] for the soundness argument.
static SKELETONS: std::sync::OnceLock<
    std::sync::Mutex<std::collections::HashMap<ExpansionKey, RcExpr>>,
> = std::sync::OnceLock::new();

impl Memo {
    fn enabled() -> Memo {
        Memo { map: Some(IdMap::default()), ..Memo::default() }
    }

    fn disabled() -> Memo {
        Memo::default()
    }

    fn is_enabled(&self) -> bool {
        self.map.is_some()
    }

    fn get(&self, e: &RcExpr) -> Option<RcExpr> {
        self.map.as_ref()?.get(&Expr::ptr_id(e)).map(|(_, out)| out.clone())
    }

    fn insert(&mut self, key: &RcExpr, out: &RcExpr) {
        if let Some(map) = &mut self.map {
            map.insert(Expr::ptr_id(key), (key.clone(), out.clone()));
        }
    }

    /// Fold constants in an expansion: DAG-shared when the memo is on,
    /// the original whole-tree walk when it is off.
    fn const_fold(&mut self, e: &RcExpr) -> RcExpr {
        if self.is_enabled() {
            fpir::simplify::const_fold_shared(e, &mut self.folds)
        } else {
            fpir::simplify::const_fold(e)
        }
    }
}

/// Why an expression could not be lowered for a target.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LowerError {
    /// The target.
    pub isa: Isa,
    /// Human-readable reason.
    pub what: String,
}

impl LowerError {
    fn new(isa: Isa, what: impl Into<String>) -> LowerError {
        LowerError { isa, what: what.into() }
    }
}

impl fmt::Display for LowerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cannot lower for {}: {}", self.isa, self.what)
    }
}

impl std::error::Error for LowerError {}

/// Lower every non-machine node of `expr` into machine instructions for
/// target `t`.
///
/// # Errors
///
/// Fails when the expression needs lanes wider than the target supports,
/// or contains an operation with no legal implementation (e.g. general
/// vector division).
pub fn legalize(expr: &RcExpr, t: &Target) -> Result<RcExpr, LowerError> {
    legalize_memo(expr, t, &mut Memo::enabled())
}

/// [`legalize`] without the identity memo — the original tree-walking
/// legalizer, preserved as the pre-optimization baseline for differential
/// tests and the `selection-bench` reference engine.
///
/// # Errors
///
/// Fails exactly when [`legalize`] fails.
pub fn legalize_uncached(expr: &RcExpr, t: &Target) -> Result<RcExpr, LowerError> {
    legalize_memo(expr, t, &mut Memo::disabled())
}

fn legalize_memo(expr: &RcExpr, t: &Target, memo: &mut Memo) -> Result<RcExpr, LowerError> {
    // Leaves are their own fixed point: answer directly instead of paying a
    // memo lookup and insert per visit. (Identical observable behaviour —
    // the general path below would clone the node after the same width
    // check.)
    if matches!(expr.kind(), ExprKind::Var(_) | ExprKind::Const(_)) {
        check_width(expr.ty(), t)?;
        return Ok(expr.clone());
    }
    if let Some(out) = memo.get(expr) {
        return Ok(out);
    }
    let children: Vec<RcExpr> =
        expr.children().into_iter().map(|c| legalize_memo(c, t, memo)).collect::<Result<_, _>>()?;
    let isa = t.isa;
    check_width(expr.ty(), t)?;

    let out = match expr.kind() {
        ExprKind::Var(_) | ExprKind::Const(_) => expr.clone(),
        ExprKind::Mach(op, _) => {
            let unchanged = memo.is_enabled()
                && expr.children().iter().zip(&children).all(|(a, b)| Arc::ptr_eq(a, b));
            let node = if unchanged { expr.clone() } else { expr.with_children(children) };
            let def =
                t.def(*op).ok_or_else(|| LowerError::new(isa, format!("unknown opcode {op}")))?;
            validate_mach(&node, def, t)?;
            node
        }
        ExprKind::Bin(op, ..) => legalize_bin(*op, expr.ty(), children, t, memo)?,
        ExprKind::Cmp(op, ..) => legalize_cmp(*op, expr.ty(), children, t, memo)?,
        ExprKind::Select(..) => {
            let width = children[1].elem().bits();
            let def = find_usable(t, MachSem::Select, width, false, &children, memo)
                .ok_or_else(|| LowerError::new(isa, format!("no select at {width} bits")))?;
            Expr::mach(def.op, expr.ty(), children)
        }
        ExprKind::Cast(_) => legalize_cast(expr.ty().elem, children.remove_first(), t, memo)?,
        ExprKind::Reinterpret(_) => reinterpret_node(expr.ty(), children.remove_first(), t, memo),
        ExprKind::Fpir(op, _) => legalize_fpir(*op, expr.ty(), children, t, memo)?,
    };
    memo.insert(expr, &out);
    // The output is already legal, so it is its own fixed point: keying it
    // lets the FPIR fallback's re-legalization of expansions stop at
    // operand subtrees that were legalized moments ago. (When the node was
    // already legal the first insert is that entry.)
    if !Arc::ptr_eq(expr, &out) {
        memo.insert(&out, &out);
    }
    Ok(out)
}

trait RemoveFirst<T> {
    fn remove_first(self) -> T;
}

impl<T> RemoveFirst<T> for Vec<T> {
    fn remove_first(mut self) -> T {
        self.remove(0)
    }
}

fn check_width(ty: VectorType, t: &Target) -> Result<(), LowerError> {
    if ty.elem.bits() > t.max_lane_bits() {
        Err(LowerError::new(
            t.isa,
            format!("{} has no {}-bit lanes (needed for {ty})", t.isa, ty.elem.bits()),
        ))
    } else {
        Ok(())
    }
}

/// Find the cheapest row with this semantics that is legal at the width,
/// signedness, *and* whose const-operand requirements are satisfied by
/// the actual operands.
///
/// The memoized legalizer resolves rows through the target's
/// per-semantics index ([`Target::defs_with_sem`], cheapest first);
/// [`legalize_uncached`] keeps the original full-table scan so the
/// benchmark baseline stays faithful to the pre-optimization pass. Both
/// select the same row.
fn find_usable<'t>(
    t: &'t Target,
    sem: MachSem,
    width: u32,
    signed: bool,
    args: &[RcExpr],
    memo: &Memo,
) -> Option<&'t InstDef> {
    let legal = |d: &InstDef| {
        d.widths.contains(&width)
            && match d.sign {
                SignReq::Any => true,
                SignReq::Signed => signed,
                SignReq::Unsigned => !signed,
            }
            && d.needs_const.iter().all(|&i| args.get(i).is_some_and(|a| a.as_const().is_some()))
    };
    if memo.is_enabled() {
        // Rows arrive cheapest-first: the first legal one wins.
        t.defs_with_sem(sem).find(|d| legal(d))
    } else {
        t.defs().iter().filter(|d| d.sem == sem && legal(d)).min_by_key(|d| d.cost)
    }
}

fn validate_mach(node: &RcExpr, def: &InstDef, t: &Target) -> Result<(), LowerError> {
    let args = node.children();
    if args.len() != def.sem.arity() {
        return Err(LowerError::new(
            t.isa,
            format!("{} takes {} operands, got {}", def.op, def.sem.arity(), args.len()),
        ));
    }
    let first = args.first().map(|a| a.elem()).unwrap_or(node.elem());
    if !def.widths.contains(&first.bits()) {
        return Err(LowerError::new(
            t.isa,
            format!("{} is illegal at {} bits", def.op, first.bits()),
        ));
    }
    match def.sign {
        SignReq::Signed if !first.is_signed() => {
            return Err(LowerError::new(t.isa, format!("{} requires signed lanes", def.op)))
        }
        SignReq::Unsigned if first.is_signed() => {
            return Err(LowerError::new(t.isa, format!("{} requires unsigned lanes", def.op)))
        }
        _ => {}
    }
    for &i in def.needs_const {
        if args.get(i).and_then(|a| a.as_const()).is_none() {
            return Err(LowerError::new(
                t.isa,
                format!("{} operand {i} must be an immediate", def.op),
            ));
        }
    }
    Ok(())
}

fn reinterpret_node(ty: VectorType, arg: RcExpr, t: &Target, memo: &Memo) -> RcExpr {
    if arg.ty() == ty {
        return arg;
    }
    let def = if memo.is_enabled() {
        t.defs_with_sem(MachSem::Reinterpret).next()
    } else {
        t.defs().iter().find(|d| d.sem == MachSem::Reinterpret)
    }
    .expect("every target has a reinterpret alias");
    Expr::mach(def.op, ty, vec![arg])
}

fn legalize_bin(
    op: BinOp,
    ty: VectorType,
    mut args: Vec<RcExpr>,
    t: &Target,
    memo: &mut Memo,
) -> Result<RcExpr, LowerError> {
    let isa = t.isa;
    let width = ty.elem.bits();
    let signed = ty.elem.is_signed();

    // Division/remainder: only powers of two are supported (floor division
    // by 2^k is an arithmetic shift; unsigned remainder is a mask).
    match op {
        BinOp::Div => {
            if let Some(c) = args[1].as_const() {
                if fpir::simplify::is_pow2(c) {
                    let count = Expr::constant(fpir::simplify::log2(c) as i128, args[1].ty())
                        .expect("log2 fits");
                    return legalize_bin(BinOp::Shr, ty, vec![args.remove(0), count], t, memo);
                }
            }
            return Err(LowerError::new(isa, "no vector division instruction".to_string()));
        }
        BinOp::Mod => {
            if let (Some(c), false) = (args[1].as_const(), signed) {
                if fpir::simplify::is_pow2(c) {
                    let mask = Expr::constant(c - 1, args[1].ty()).expect("mask fits");
                    return legalize_bin(BinOp::And, ty, vec![args.remove(0), mask], t, memo);
                }
            }
            return Err(LowerError::new(isa, "no vector remainder instruction".to_string()));
        }
        BinOp::Shl | BinOp::Shr => {
            // Normalize negative immediate counts to the other direction.
            if let Some(c) = args[1].as_const() {
                if c < 0 {
                    let flipped = if op == BinOp::Shl { BinOp::Shr } else { BinOp::Shl };
                    let count = Expr::constant(-c, args[1].ty()).expect("negated count fits");
                    return legalize_bin(flipped, ty, vec![args.remove(0), count], t, memo);
                }
            }
        }
        _ => {}
    }

    if let Some(def) = find_usable(t, MachSem::Bin(op), width, signed, &args, memo) {
        return Ok(Expr::mach(def.op, ty, args));
    }

    // Min/max without a native row decompose into compare + select (how
    // LLVM legalizes 64-bit min/max on AVX2).
    if matches!(op, BinOp::Min | BinOp::Max) {
        let (a, b) = (args[0].clone(), args[1].clone());
        let cmp_op = if op == BinOp::Min { CmpOp::Lt } else { CmpOp::Gt };
        let cond = legalize_cmp(cmp_op, ty, vec![a.clone(), b.clone()], t, memo)?;
        let node = Expr::select(cond, a, b).expect("select of like-typed operands");
        return legalize_memo(&node, t, memo);
    }

    // Width promotion: run at double width and truncate back (the costly
    // path that halves SIMD throughput).
    if let Some(wider) = ty.elem.widen() {
        if check_width(ty.with_elem(wider), t).is_ok() {
            let wide_args = args
                .into_iter()
                .map(|a| legalize_cast(wider, a, t, memo))
                .collect::<Result<Vec<_>, _>>()?;
            let wide = legalize_bin(op, ty.with_elem(wider), wide_args, t, memo)?;
            return legalize_cast(ty.elem, wide, t, memo);
        }
    }
    Err(LowerError::new(isa, format!("no `{}` instruction at {width} bits", op.symbol())))
}

fn legalize_cmp(
    op: CmpOp,
    ty: VectorType,
    mut args: Vec<RcExpr>,
    t: &Target,
    memo: &mut Memo,
) -> Result<RcExpr, LowerError> {
    let isa = t.isa;
    let width = args[0].elem().bits();
    let signed = args[0].elem().is_signed();
    let not = |e: RcExpr, t: &Target, memo: &mut Memo| -> Result<RcExpr, LowerError> {
        // Comparisons produce 0/1 lanes; `not` is xor with 1.
        let one = Expr::constant(1, e.ty()).expect("1 fits");
        legalize_bin(BinOp::Xor, e.ty(), vec![e, one], t, memo)
    };
    match op {
        CmpOp::Lt => {
            args.swap(0, 1);
            legalize_cmp(CmpOp::Gt, ty, args, t, memo)
        }
        CmpOp::Le => {
            // a <= b  ==  !(a > b)
            let gt = legalize_cmp(CmpOp::Gt, ty, args, t, memo)?;
            not(gt, t, memo)
        }
        CmpOp::Ge => {
            args.swap(0, 1);
            legalize_cmp(CmpOp::Le, ty, args, t, memo)
        }
        CmpOp::Ne => {
            let eq = legalize_cmp(CmpOp::Eq, ty, args, t, memo)?;
            not(eq, t, memo)
        }
        CmpOp::Gt | CmpOp::Eq => {
            if let Some(def) = find_usable(t, MachSem::Cmp(op), width, signed, &args, memo) {
                Ok(Expr::mach(def.op, ty, args))
            } else {
                Err(LowerError::new(
                    isa,
                    format!("no `{}` comparison at {width} bits", op.symbol()),
                ))
            }
        }
    }
}

/// Legalize a wrapping cast by chaining single-step extends / truncations.
fn legalize_cast(
    to: ScalarType,
    arg: RcExpr,
    t: &Target,
    memo: &mut Memo,
) -> Result<RcExpr, LowerError> {
    let isa = t.isa;
    let from = arg.elem();
    check_width(arg.ty().with_elem(to), t)?;
    if from.bits() == to.bits() {
        return Ok(reinterpret_node(arg.ty().with_elem(to), arg, t, memo));
    }
    if from.bits() < to.bits() {
        // One extension step, preserving source signedness (that is what a
        // wrapping cast does), then recurse.
        let step = from.widen().expect("from < to implies widenable");
        let def = find_usable(
            t,
            MachSem::ExtendTo,
            from.bits(),
            from.is_signed(),
            std::slice::from_ref(&arg),
            memo,
        )
        .ok_or_else(|| LowerError::new(isa, format!("no extension from {} bits", from.bits())))?;
        let widened = Expr::mach(def.op, arg.ty().with_elem(step), vec![arg]);
        legalize_cast(to, widened, t, memo)
    } else {
        let step = from.narrow().expect("from > to implies narrowable");
        let def = find_usable(
            t,
            MachSem::TruncTo,
            from.bits(),
            from.is_signed(),
            std::slice::from_ref(&arg),
            memo,
        )
        .ok_or_else(|| LowerError::new(isa, format!("no truncation from {} bits", from.bits())))?;
        let narrowed = Expr::mach(def.op, arg.ty().with_elem(step), vec![arg]);
        legalize_cast(to, narrowed, t, memo)
    }
}

/// Expand an FPIR instruction with no native row into its primitive
/// definition, fold its constant subterms, and legalize the result —
/// caching the whole pipeline per *operand shape* when the memo is on.
///
/// The expensive part of the fallback path is not any one operand: it is
/// re-deriving the expansion's scaffolding (hundreds of nodes for e.g.
/// `rounding_mul_shr`) every time the same instruction appears at the same
/// types. But `expand_fpir` builds that scaffolding purely from the
/// operator and the operand *types* (it never inspects operand structure),
/// and every later decision is equally shape-blind:
///
/// * `const_fold` folds a node only when all children are literal `Const`s,
///   and leaves `Var`/`Mach` roots alone — so an already-legalized operand
///   (all machine/leaf nodes) is a folding fixed point, and whether a
///   skeleton node folds depends only on which operand slots hold literals;
/// * the legalizer's instruction choices depend on node kinds, types, and
///   `as_const()` of immediate children — identical for a placeholder
///   variable and any non-constant legalized operand of the same type.
///
/// So the legalized expansion is a *template*: compute it once over
/// placeholder variables (keeping literal operands literal, since those
/// do steer folding and immediate-operand selection), cache it under
/// `(op, [(type, literal?)])`, and instantiate by substituting the real
/// operands for the placeholders. The instantiation is structurally
/// identical to what the uncached path produces.
fn expand_legalized(
    op: FpirOp,
    args: &[RcExpr],
    t: &Target,
    memo: &mut Memo,
) -> Result<RcExpr, LowerError> {
    let isa = t.isa;
    if !memo.is_enabled() {
        let expanded = fpir::semantics::expand_fpir(op, args)
            .map_err(|e| LowerError::new(isa, e.to_string()))?;
        let folded = memo.const_fold(&expanded);
        return legalize_memo(&folded, t, memo);
    }
    let key: ExpansionKey = (isa, op, args.iter().map(|a| (a.ty(), a.as_const())).collect());
    let cache = SKELETONS.get_or_init(Default::default);
    let cached = cache.lock().expect("skeleton cache lock").get(&key).cloned();
    let skeleton = match cached {
        Some(s) => s,
        None => {
            let placeholders: Vec<RcExpr> = args
                .iter()
                .enumerate()
                .map(|(i, a)| match a.as_const() {
                    Some(v) => Expr::constant(v, a.ty()).expect("literal re-types"),
                    None => Expr::var(placeholder_name(i), a.ty()),
                })
                .collect();
            let expanded = fpir::semantics::expand_fpir(op, &placeholders)
                .map_err(|e| LowerError::new(isa, e.to_string()))?;
            let folded = memo.const_fold(&expanded);
            let skeleton = legalize_memo(&folded, t, memo)?;
            cache.lock().expect("skeleton cache lock").insert(key, skeleton.clone());
            skeleton
        }
    };
    Ok(instantiate_skeleton(&skeleton, args))
}

/// Reserved variable name for operand slot `i` of an expansion skeleton
/// (the `\u{1}` prefix cannot appear in user programs).
fn placeholder_name(i: usize) -> String {
    format!("\u{1}arg{i}")
}

/// Substitute the real operands for a skeleton's placeholder variables,
/// sharing every subtree that contains no placeholder (identity-memoized,
/// so DAG-shared skeleton nodes substitute once).
fn instantiate_skeleton(skeleton: &RcExpr, args: &[RcExpr]) -> RcExpr {
    fn go(e: &RcExpr, args: &[RcExpr], memo: &mut IdMap<RcExpr>) -> RcExpr {
        if let Some(out) = memo.get(&Expr::ptr_id(e)) {
            return out.clone();
        }
        let out = if let ExprKind::Var(name) = e.kind() {
            match name.strip_prefix('\u{1}').and_then(|s| s.strip_prefix("arg")) {
                Some(i) => args[i.parse::<usize>().expect("placeholder index")].clone(),
                None => e.clone(),
            }
        } else {
            let children: Vec<RcExpr> =
                (0..e.arity()).map(|i| go(e.child(i), args, memo)).collect();
            let unchanged = (0..e.arity()).all(|i| Arc::ptr_eq(e.child(i), &children[i]));
            if unchanged {
                e.clone()
            } else {
                e.with_children(children)
            }
        };
        memo.insert(Expr::ptr_id(e), out.clone());
        out
    }
    go(skeleton, args, &mut IdMap::default())
}

fn legalize_fpir(
    op: FpirOp,
    ty: VectorType,
    args: Vec<RcExpr>,
    t: &Target,
    memo: &mut Memo,
) -> Result<RcExpr, LowerError> {
    let width = args[0].elem().bits();
    let signed = args[0].elem().is_signed();

    // Saturating casts: a same-signedness one-step narrow has a native row
    // on ARM/HVX-class targets; anything else expands to clamp-then-cast.
    if let FpirOp::SaturatingCast(target_elem) = op {
        let src = args[0].elem();
        if src.narrow() == Some(target_elem) {
            if let Some(def) =
                find_usable(t, MachSem::Fpir(FpirOp::SaturatingNarrow), width, signed, &args, memo)
            {
                return Ok(Expr::mach(def.op, ty, args));
            }
            // Signed-to-unsigned narrow (sqxtun).
            if src.is_signed() && !target_elem.is_signed() {
                if let Some(def) = find_usable(t, MachSem::SatCastTo, width, signed, &args, memo) {
                    return Ok(Expr::mach(def.op, ty, args));
                }
            }
        }
        return expand_legalized(op, &args, t, memo);
    }

    // `saturating_narrow` reaches here only as its own node.
    let lookup_op = if op == FpirOp::SaturatingNarrow { FpirOp::SaturatingNarrow } else { op };
    if let Some(def) = find_usable(t, MachSem::Fpir(lookup_op), width, signed, &args, memo) {
        return Ok(Expr::mach(def.op, ty, args));
    }

    // No native row: fall back to the instruction's primitive definition
    // (folding the expansion's constant subterms — shift counts and
    // rounding terms must be immediates again before selection).
    expand_legalized(op, &args, t, memo)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::def::target;
    use fpir::build;
    use fpir::types::{ScalarType as S, VectorType as V};

    fn all_mach(e: &RcExpr) -> bool {
        !e.any(&mut |n| {
            !matches!(n.kind(), ExprKind::Mach(..) | ExprKind::Var(_) | ExprKind::Const(_))
        })
    }

    #[test]
    fn add_lowers_directly_everywhere() {
        let t = V::new(S::U8, 16);
        let e = build::add(build::var("a", t), build::var("b", t));
        for isa in fpir::machine::ALL_ISAS {
            let out = legalize(&e, target(isa)).unwrap();
            assert!(all_mach(&out), "{isa}: {out}");
            assert_eq!(out.ty(), e.ty());
        }
    }

    #[test]
    fn u8_multiply_on_x86_widens() {
        // AVX2 has no byte multiply: expect extend / vpmull / pack.
        let t = V::new(S::U8, 32);
        let e = build::mul(build::var("a", t), build::var("b", t));
        let out = legalize(&e, target(Isa::X86Avx2)).unwrap();
        let printed = out.to_string();
        assert!(printed.contains("vpmull"), "{printed}");
        assert!(printed.contains("vpmovzx"), "{printed}");
        assert!(printed.contains("vpacktrunc"), "{printed}");
    }

    #[test]
    fn widening_add_maps_to_uaddl_on_arm() {
        let t = V::new(S::U8, 16);
        let e = build::widening_add(build::var("a", t), build::var("b", t));
        let out = legalize(&e, target(Isa::ArmNeon)).unwrap();
        assert_eq!(out.to_string(), "arm.uaddl(a_u8, b_u8)");
    }

    #[test]
    fn halving_add_on_x86_expands() {
        // x86 has no uhadd: the generic path widens, adds, shifts, narrows.
        let t = V::new(S::U8, 32);
        let e = build::halving_add(build::var("a", t), build::var("b", t));
        let out = legalize(&e, target(Isa::X86Avx2)).unwrap();
        assert!(all_mach(&out));
        // The same instruction is a single vavg on HVX.
        let out = legalize(&e, target(Isa::HexagonHvx)).unwrap();
        assert_eq!(out.to_string(), "hvx.vavg(a_u8, b_u8)");
    }

    #[test]
    fn sixty_four_bit_fails_on_hvx_only() {
        let t = V::new(S::I64, 4);
        let e = build::add(build::var("a", t), build::var("b", t));
        assert!(legalize(&e, target(Isa::ArmNeon)).is_ok());
        assert!(legalize(&e, target(Isa::X86Avx2)).is_ok());
        let err = legalize(&e, target(Isa::HexagonHvx)).unwrap_err();
        assert!(err.what.contains("64-bit"), "{err}");
    }

    #[test]
    fn division_by_pow2_becomes_shift() {
        let t = V::new(S::I16, 8);
        let e = build::div(build::var("a", t), build::constant(4, t));
        let out = legalize(&e, target(Isa::ArmNeon)).unwrap();
        assert!(out.to_string().contains("ushr"), "{out}");
        // General division fails.
        let e = build::div(build::var("a", t), build::var("b", t));
        assert!(legalize(&e, target(Isa::ArmNeon)).is_err());
    }

    #[test]
    fn comparisons_normalize() {
        let t = V::new(S::I16, 8);
        let e = build::le(build::var("a", t), build::var("b", t));
        let out = legalize(&e, target(Isa::ArmNeon)).unwrap();
        assert!(all_mach(&out));
        // le = not(gt): expect a cmgt and an eor.
        let p = out.to_string();
        assert!(p.contains("cmgt") && p.contains("eor"), "{p}");
    }

    #[test]
    fn legalized_exprs_evaluate_like_sources() {
        use fpir::interp::{eval, eval_with};
        use fpir::rand_expr::{gen_expr, random_env, GenConfig};
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(33);
        let cfg = GenConfig {
            lanes: 8,
            types: vec![S::U8, S::U16, S::I16, S::I32, S::U32, S::I8],
            ..GenConfig::default()
        };
        let evaluator = crate::def::MachEvaluator;
        let mut checked = 0;
        for i in 0..150 {
            let elem = cfg.types[i % cfg.types.len()];
            let e = gen_expr(&mut rng, &cfg, elem);
            for isa in fpir::machine::ALL_ISAS {
                let Ok(lowered) = legalize(&e, target(isa)) else {
                    continue; // e.g. width limits on HVX
                };
                let env = random_env(&mut rng, &e);
                let want = eval(&e, &env).unwrap();
                let got = eval_with(&lowered, &env, Some(&evaluator))
                    .unwrap_or_else(|err| panic!("{isa}: {err}\n  src {e}\n  low {lowered}"));
                assert_eq!(want, got, "{isa} diverged on {e}\n lowered: {lowered}");
                checked += 1;
            }
        }
        assert!(checked > 200, "only {checked} legalizations checked");
    }
}
