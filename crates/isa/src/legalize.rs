//! Generic legalization: turn any remaining non-machine nodes into target
//! instructions.
//!
//! This pass encodes the *direct mappings* of §3.3 once per target (the
//! `n` in the paper's `k + n + 1` rule count) plus the generic fallback
//! path every compiler needs: unsupported widths are widened, executed at
//! the wider width, and truncated back — exactly the "high-bit-width
//! intermediates halve SIMD throughput" effect the paper describes — and
//! FPIR instructions without a native row are expanded into their
//! primitive-integer definitions and re-legalized.
//!
//! Legalization fails honestly: Hexagon HVX has no 64-bit lanes, so
//! expressions that require them (§5.1) return
//! [`LowerError::Unsupported`], mirroring LLVM's failure to compile
//! `depthwise_conv`, `matmul` and `mul` for HVX.

use crate::def::{InstDef, SignReq, Target};
use crate::sem::MachSem;
use fpir::expr::{BinOp, CmpOp, Expr, ExprKind, FpirOp, RcExpr};
use fpir::types::{ScalarType, VectorType};
use fpir::Isa;
use std::fmt;

/// Why an expression could not be lowered for a target.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LowerError {
    /// The target.
    pub isa: Isa,
    /// Human-readable reason.
    pub what: String,
}

impl LowerError {
    fn new(isa: Isa, what: impl Into<String>) -> LowerError {
        LowerError { isa, what: what.into() }
    }
}

impl fmt::Display for LowerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cannot lower for {}: {}", self.isa, self.what)
    }
}

impl std::error::Error for LowerError {}

/// Lower every non-machine node of `expr` into machine instructions for
/// target `t`.
///
/// # Errors
///
/// Fails when the expression needs lanes wider than the target supports,
/// or contains an operation with no legal implementation (e.g. general
/// vector division).
pub fn legalize(expr: &RcExpr, t: &Target) -> Result<RcExpr, LowerError> {
    let children: Vec<RcExpr> =
        expr.children().into_iter().map(|c| legalize(c, t)).collect::<Result<_, _>>()?;
    let isa = t.isa;
    check_width(expr.ty(), isa)?;

    match expr.kind() {
        ExprKind::Var(_) | ExprKind::Const(_) => Ok(expr.clone()),
        ExprKind::Mach(op, _) => {
            let node = expr.with_children(children);
            let def =
                t.def(*op).ok_or_else(|| LowerError::new(isa, format!("unknown opcode {op}")))?;
            validate_mach(&node, def, t)?;
            Ok(node)
        }
        ExprKind::Bin(op, ..) => legalize_bin(*op, expr.ty(), children, t),
        ExprKind::Cmp(op, ..) => legalize_cmp(*op, expr.ty(), children, t),
        ExprKind::Select(..) => {
            let width = children[1].elem().bits();
            let def = find_usable(t, MachSem::Select, width, false, &children)
                .ok_or_else(|| LowerError::new(isa, format!("no select at {width} bits")))?;
            Ok(Expr::mach(def.op, expr.ty(), children))
        }
        ExprKind::Cast(_) => legalize_cast(expr.ty().elem, children.remove_first(), t),
        ExprKind::Reinterpret(_) => Ok(reinterpret_node(expr.ty(), children.remove_first(), t)),
        ExprKind::Fpir(op, _) => legalize_fpir(*op, expr.ty(), children, t),
    }
}

trait RemoveFirst<T> {
    fn remove_first(self) -> T;
}

impl<T> RemoveFirst<T> for Vec<T> {
    fn remove_first(mut self) -> T {
        self.remove(0)
    }
}

fn check_width(ty: VectorType, isa: Isa) -> Result<(), LowerError> {
    if ty.elem.bits() > isa.max_lane_bits() {
        Err(LowerError::new(
            isa,
            format!("{isa} has no {}-bit lanes (needed for {ty})", ty.elem.bits()),
        ))
    } else {
        Ok(())
    }
}

/// Find the cheapest row with this semantics that is legal at the width,
/// signedness, *and* whose const-operand requirements are satisfied by
/// the actual operands.
fn find_usable<'t>(
    t: &'t Target,
    sem: MachSem,
    width: u32,
    signed: bool,
    args: &[RcExpr],
) -> Option<&'t InstDef> {
    t.defs()
        .iter()
        .filter(|d| {
            d.sem == sem
                && d.widths.contains(&width)
                && match d.sign {
                    SignReq::Any => true,
                    SignReq::Signed => signed,
                    SignReq::Unsigned => !signed,
                }
                && d.needs_const
                    .iter()
                    .all(|&i| args.get(i).is_some_and(|a| a.as_const().is_some()))
        })
        .min_by_key(|d| d.cost)
}

fn validate_mach(node: &RcExpr, def: &InstDef, t: &Target) -> Result<(), LowerError> {
    let args = node.children();
    if args.len() != def.sem.arity() {
        return Err(LowerError::new(
            t.isa,
            format!("{} takes {} operands, got {}", def.op, def.sem.arity(), args.len()),
        ));
    }
    let first = args.first().map(|a| a.elem()).unwrap_or(node.elem());
    if !def.widths.contains(&first.bits()) {
        return Err(LowerError::new(
            t.isa,
            format!("{} is illegal at {} bits", def.op, first.bits()),
        ));
    }
    match def.sign {
        SignReq::Signed if !first.is_signed() => {
            return Err(LowerError::new(t.isa, format!("{} requires signed lanes", def.op)))
        }
        SignReq::Unsigned if first.is_signed() => {
            return Err(LowerError::new(t.isa, format!("{} requires unsigned lanes", def.op)))
        }
        _ => {}
    }
    for &i in def.needs_const {
        if args.get(i).and_then(|a| a.as_const()).is_none() {
            return Err(LowerError::new(
                t.isa,
                format!("{} operand {i} must be an immediate", def.op),
            ));
        }
    }
    Ok(())
}

fn reinterpret_node(ty: VectorType, arg: RcExpr, t: &Target) -> RcExpr {
    if arg.ty() == ty {
        return arg;
    }
    let def = t
        .defs()
        .iter()
        .find(|d| d.sem == MachSem::Reinterpret)
        .expect("every target has a reinterpret alias");
    Expr::mach(def.op, ty, vec![arg])
}

fn legalize_bin(
    op: BinOp,
    ty: VectorType,
    mut args: Vec<RcExpr>,
    t: &Target,
) -> Result<RcExpr, LowerError> {
    let isa = t.isa;
    let width = ty.elem.bits();
    let signed = ty.elem.is_signed();

    // Division/remainder: only powers of two are supported (floor division
    // by 2^k is an arithmetic shift; unsigned remainder is a mask).
    match op {
        BinOp::Div => {
            if let Some(c) = args[1].as_const() {
                if fpir::simplify::is_pow2(c) {
                    let count = Expr::constant(fpir::simplify::log2(c) as i128, args[1].ty())
                        .expect("log2 fits");
                    return legalize_bin(BinOp::Shr, ty, vec![args.remove(0), count], t);
                }
            }
            return Err(LowerError::new(isa, "no vector division instruction".to_string()));
        }
        BinOp::Mod => {
            if let (Some(c), false) = (args[1].as_const(), signed) {
                if fpir::simplify::is_pow2(c) {
                    let mask = Expr::constant(c - 1, args[1].ty()).expect("mask fits");
                    return legalize_bin(BinOp::And, ty, vec![args.remove(0), mask], t);
                }
            }
            return Err(LowerError::new(isa, "no vector remainder instruction".to_string()));
        }
        BinOp::Shl | BinOp::Shr => {
            // Normalize negative immediate counts to the other direction.
            if let Some(c) = args[1].as_const() {
                if c < 0 {
                    let flipped = if op == BinOp::Shl { BinOp::Shr } else { BinOp::Shl };
                    let count = Expr::constant(-c, args[1].ty()).expect("negated count fits");
                    return legalize_bin(flipped, ty, vec![args.remove(0), count], t);
                }
            }
        }
        _ => {}
    }

    if let Some(def) = find_usable(t, MachSem::Bin(op), width, signed, &args) {
        return Ok(Expr::mach(def.op, ty, args));
    }

    // Min/max without a native row decompose into compare + select (how
    // LLVM legalizes 64-bit min/max on AVX2).
    if matches!(op, BinOp::Min | BinOp::Max) {
        let (a, b) = (args[0].clone(), args[1].clone());
        let cmp_op = if op == BinOp::Min { CmpOp::Lt } else { CmpOp::Gt };
        let cond = legalize_cmp(cmp_op, ty, vec![a.clone(), b.clone()], t)?;
        let node = Expr::select(cond, a, b).expect("select of like-typed operands");
        return legalize(&node, t);
    }

    // Width promotion: run at double width and truncate back (the costly
    // path that halves SIMD throughput).
    if let Some(wider) = ty.elem.widen() {
        if check_width(ty.with_elem(wider), isa).is_ok() {
            let wide_args = args
                .into_iter()
                .map(|a| legalize_cast(wider, a, t))
                .collect::<Result<Vec<_>, _>>()?;
            let wide = legalize_bin(op, ty.with_elem(wider), wide_args, t)?;
            return legalize_cast(ty.elem, wide, t);
        }
    }
    Err(LowerError::new(isa, format!("no `{}` instruction at {width} bits", op.symbol())))
}

fn legalize_cmp(
    op: CmpOp,
    ty: VectorType,
    mut args: Vec<RcExpr>,
    t: &Target,
) -> Result<RcExpr, LowerError> {
    let isa = t.isa;
    let width = args[0].elem().bits();
    let signed = args[0].elem().is_signed();
    let not = |e: RcExpr, t: &Target| -> Result<RcExpr, LowerError> {
        // Comparisons produce 0/1 lanes; `not` is xor with 1.
        let one = Expr::constant(1, e.ty()).expect("1 fits");
        legalize_bin(BinOp::Xor, e.ty(), vec![e, one], t)
    };
    match op {
        CmpOp::Lt => {
            args.swap(0, 1);
            legalize_cmp(CmpOp::Gt, ty, args, t)
        }
        CmpOp::Le => {
            // a <= b  ==  !(a > b)
            let gt = legalize_cmp(CmpOp::Gt, ty, args, t)?;
            not(gt, t)
        }
        CmpOp::Ge => {
            args.swap(0, 1);
            legalize_cmp(CmpOp::Le, ty, args, t)
        }
        CmpOp::Ne => {
            let eq = legalize_cmp(CmpOp::Eq, ty, args, t)?;
            not(eq, t)
        }
        CmpOp::Gt | CmpOp::Eq => {
            if let Some(def) = find_usable(t, MachSem::Cmp(op), width, signed, &args) {
                Ok(Expr::mach(def.op, ty, args))
            } else {
                Err(LowerError::new(
                    isa,
                    format!("no `{}` comparison at {width} bits", op.symbol()),
                ))
            }
        }
    }
}

/// Legalize a wrapping cast by chaining single-step extends / truncations.
fn legalize_cast(to: ScalarType, arg: RcExpr, t: &Target) -> Result<RcExpr, LowerError> {
    let isa = t.isa;
    let from = arg.elem();
    check_width(arg.ty().with_elem(to), isa)?;
    if from.bits() == to.bits() {
        return Ok(reinterpret_node(arg.ty().with_elem(to), arg, t));
    }
    if from.bits() < to.bits() {
        // One extension step, preserving source signedness (that is what a
        // wrapping cast does), then recurse.
        let step = from.widen().expect("from < to implies widenable");
        let def = find_usable(
            t,
            MachSem::ExtendTo,
            from.bits(),
            from.is_signed(),
            std::slice::from_ref(&arg),
        )
        .ok_or_else(|| LowerError::new(isa, format!("no extension from {} bits", from.bits())))?;
        let widened = Expr::mach(def.op, arg.ty().with_elem(step), vec![arg]);
        legalize_cast(to, widened, t)
    } else {
        let step = from.narrow().expect("from > to implies narrowable");
        let def = find_usable(
            t,
            MachSem::TruncTo,
            from.bits(),
            from.is_signed(),
            std::slice::from_ref(&arg),
        )
        .ok_or_else(|| LowerError::new(isa, format!("no truncation from {} bits", from.bits())))?;
        let narrowed = Expr::mach(def.op, arg.ty().with_elem(step), vec![arg]);
        legalize_cast(to, narrowed, t)
    }
}

fn legalize_fpir(
    op: FpirOp,
    ty: VectorType,
    args: Vec<RcExpr>,
    t: &Target,
) -> Result<RcExpr, LowerError> {
    let isa = t.isa;
    let width = args[0].elem().bits();
    let signed = args[0].elem().is_signed();

    // Saturating casts: a same-signedness one-step narrow has a native row
    // on ARM/HVX-class targets; anything else expands to clamp-then-cast.
    if let FpirOp::SaturatingCast(target_elem) = op {
        let src = args[0].elem();
        if src.narrow() == Some(target_elem) {
            if let Some(def) =
                find_usable(t, MachSem::Fpir(FpirOp::SaturatingNarrow), width, signed, &args)
            {
                return Ok(Expr::mach(def.op, ty, args));
            }
            // Signed-to-unsigned narrow (sqxtun).
            if src.is_signed() && !target_elem.is_signed() {
                if let Some(def) = find_usable(t, MachSem::SatCastTo, width, signed, &args) {
                    return Ok(Expr::mach(def.op, ty, args));
                }
            }
        }
        let expanded = fpir::semantics::expand_fpir(op, &args)
            .map_err(|e| LowerError::new(isa, e.to_string()))?;
        return legalize(&fpir::simplify::const_fold(&expanded), t);
    }

    // `saturating_narrow` reaches here only as its own node.
    let lookup_op = if op == FpirOp::SaturatingNarrow { FpirOp::SaturatingNarrow } else { op };
    if let Some(def) = find_usable(t, MachSem::Fpir(lookup_op), width, signed, &args) {
        return Ok(Expr::mach(def.op, ty, args));
    }

    // No native row: fall back to the instruction's primitive definition
    // (folding the expansion's constant subterms — shift counts and
    // rounding terms must be immediates again before selection).
    let expanded =
        fpir::semantics::expand_fpir(op, &args).map_err(|e| LowerError::new(isa, e.to_string()))?;
    legalize(&fpir::simplify::const_fold(&expanded), t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::def::target;
    use fpir::build;
    use fpir::types::{ScalarType as S, VectorType as V};

    fn all_mach(e: &RcExpr) -> bool {
        !e.any(&mut |n| {
            !matches!(n.kind(), ExprKind::Mach(..) | ExprKind::Var(_) | ExprKind::Const(_))
        })
    }

    #[test]
    fn add_lowers_directly_everywhere() {
        let t = V::new(S::U8, 16);
        let e = build::add(build::var("a", t), build::var("b", t));
        for isa in fpir::machine::ALL_ISAS {
            let out = legalize(&e, target(isa)).unwrap();
            assert!(all_mach(&out), "{isa}: {out}");
            assert_eq!(out.ty(), e.ty());
        }
    }

    #[test]
    fn u8_multiply_on_x86_widens() {
        // AVX2 has no byte multiply: expect extend / vpmull / pack.
        let t = V::new(S::U8, 32);
        let e = build::mul(build::var("a", t), build::var("b", t));
        let out = legalize(&e, target(Isa::X86Avx2)).unwrap();
        let printed = out.to_string();
        assert!(printed.contains("vpmull"), "{printed}");
        assert!(printed.contains("vpmovzx"), "{printed}");
        assert!(printed.contains("vpacktrunc"), "{printed}");
    }

    #[test]
    fn widening_add_maps_to_uaddl_on_arm() {
        let t = V::new(S::U8, 16);
        let e = build::widening_add(build::var("a", t), build::var("b", t));
        let out = legalize(&e, target(Isa::ArmNeon)).unwrap();
        assert_eq!(out.to_string(), "arm.uaddl(a_u8, b_u8)");
    }

    #[test]
    fn halving_add_on_x86_expands() {
        // x86 has no uhadd: the generic path widens, adds, shifts, narrows.
        let t = V::new(S::U8, 32);
        let e = build::halving_add(build::var("a", t), build::var("b", t));
        let out = legalize(&e, target(Isa::X86Avx2)).unwrap();
        assert!(all_mach(&out));
        // The same instruction is a single vavg on HVX.
        let out = legalize(&e, target(Isa::HexagonHvx)).unwrap();
        assert_eq!(out.to_string(), "hvx.vavg(a_u8, b_u8)");
    }

    #[test]
    fn sixty_four_bit_fails_on_hvx_only() {
        let t = V::new(S::I64, 4);
        let e = build::add(build::var("a", t), build::var("b", t));
        assert!(legalize(&e, target(Isa::ArmNeon)).is_ok());
        assert!(legalize(&e, target(Isa::X86Avx2)).is_ok());
        let err = legalize(&e, target(Isa::HexagonHvx)).unwrap_err();
        assert!(err.what.contains("64-bit"), "{err}");
    }

    #[test]
    fn division_by_pow2_becomes_shift() {
        let t = V::new(S::I16, 8);
        let e = build::div(build::var("a", t), build::constant(4, t));
        let out = legalize(&e, target(Isa::ArmNeon)).unwrap();
        assert!(out.to_string().contains("ushr"), "{out}");
        // General division fails.
        let e = build::div(build::var("a", t), build::var("b", t));
        assert!(legalize(&e, target(Isa::ArmNeon)).is_err());
    }

    #[test]
    fn comparisons_normalize() {
        let t = V::new(S::I16, 8);
        let e = build::le(build::var("a", t), build::var("b", t));
        let out = legalize(&e, target(Isa::ArmNeon)).unwrap();
        assert!(all_mach(&out));
        // le = not(gt): expect a cmgt and an eor.
        let p = out.to_string();
        assert!(p.contains("cmgt") && p.contains("eor"), "{p}");
    }

    #[test]
    fn legalized_exprs_evaluate_like_sources() {
        use fpir::interp::{eval, eval_with};
        use fpir::rand_expr::{gen_expr, random_env, GenConfig};
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(33);
        let cfg = GenConfig {
            lanes: 8,
            types: vec![S::U8, S::U16, S::I16, S::I32, S::U32, S::I8],
            ..GenConfig::default()
        };
        let evaluator = crate::def::MachEvaluator;
        let mut checked = 0;
        for i in 0..150 {
            let elem = cfg.types[i % cfg.types.len()];
            let e = gen_expr(&mut rng, &cfg, elem);
            for isa in fpir::machine::ALL_ISAS {
                let Ok(lowered) = legalize(&e, target(isa)) else {
                    continue; // e.g. width limits on HVX
                };
                let env = random_env(&mut rng, &e);
                let want = eval(&e, &env).unwrap();
                let got = eval_with(&lowered, &env, Some(&evaluator))
                    .unwrap_or_else(|err| panic!("{isa}: {err}\n  src {e}\n  low {lowered}"));
                assert_eq!(want, got, "{isa} diverged on {e}\n lowered: {lowered}");
                checked += 1;
            }
        }
        assert!(checked > 200, "only {checked} legalizations checked");
    }
}
