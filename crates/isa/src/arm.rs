//! The 64-bit ARM Neon-like virtual target.
//!
//! Modelled on AArch64 Advanced SIMD: 128-bit registers and a rich
//! fixed-point repertoire — widening arithmetic (`uaddl`, `umull`,
//! `ushll`), widening multiply-accumulate (`umlal`), extending adds
//! (`uaddw`), halving/rounding averages, saturating narrows, the
//! `sqrdmulh` Q-format multiply, and the `udot` dot product. Mnemonics use
//! the unsigned (`u`-prefixed) name; each row accepts both signednesses
//! unless marked.

use crate::def::{row, BackendDesc, InstDef, RegModel};
use crate::sem::MachSem;
use fpir::expr::{BinOp, CmpOp};
use fpir::{FpirOp, Isa, MachOp};

/// Registry descriptor for the 64-bit ARM Neon-like backend.
pub static BACKEND: BackendDesc = BackendDesc {
    isa: Isa::ArmNeon,
    reg: RegModel::Fixed { bits: 128 },
    max_lane_bits: 64,
    build: defs,
    description: "64-bit ARM Neon-like: 128-bit vectors, rich fixed-point ops",
};

const fn m(code: u16, name: &'static str) -> MachOp {
    MachOp { isa: Isa::ArmNeon, code, name }
}

/// Vector add.
pub const ADD: MachOp = m(0, "add");
/// Vector subtract.
pub const SUB: MachOp = m(1, "sub");
/// Vector multiply.
pub const MUL: MachOp = m(2, "mul");
/// Multiply-accumulate (`mla`).
pub const MLA: MachOp = m(3, "mla");
/// Minimum (`umin`/`smin`).
pub const MIN: MachOp = m(4, "umin");
/// Maximum (`umax`/`smax`).
pub const MAX: MachOp = m(5, "umax");
/// Bitwise and.
pub const AND: MachOp = m(6, "and");
/// Bitwise or.
pub const ORR: MachOp = m(7, "orr");
/// Bitwise xor.
pub const EOR: MachOp = m(8, "eor");
/// Shift left (`shl`/`ushl`).
pub const SHL: MachOp = m(9, "shl");
/// Shift right (`ushr`/`sshr`).
pub const SHR: MachOp = m(10, "ushr");
/// Compare greater (`cmgt`/`cmhi`).
pub const CMGT: MachOp = m(11, "cmgt");
/// Compare equal (`cmeq`).
pub const CMEQ: MachOp = m(12, "cmeq");
/// Bitwise select (`bsl`/`bit`).
pub const BSL: MachOp = m(13, "bit");
/// Unsigned extend long (`uxtl`).
pub const UXTL: MachOp = m(14, "uxtl");
/// Signed extend long (`sxtl`).
pub const SXTL: MachOp = m(15, "sxtl");
/// Extract narrow — truncation (`xtn`/`uzp1`).
pub const XTN: MachOp = m(16, "xtn");
/// Register reinterpretation (free).
pub const REINTERP: MachOp = m(17, "mov");
/// Widening add (`uaddl`/`saddl`).
pub const UADDL: MachOp = m(18, "uaddl");
/// Widening subtract (`usubl`/`ssubl`).
pub const USUBL: MachOp = m(19, "usubl");
/// Widening multiply (`umull`/`smull`).
pub const UMULL: MachOp = m(20, "umull");
/// Widening shift left by immediate (`ushll`/`sshll`).
pub const USHLL: MachOp = m(21, "ushll");
/// Extending add — wide plus narrow (`uaddw`/`saddw`).
pub const UADDW: MachOp = m(22, "uaddw");
/// Widening multiply-accumulate (`umlal`/`smlal`).
pub const UMLAL: MachOp = m(23, "umlal");
/// Absolute difference (`uabd`/`sabd`).
pub const UABD: MachOp = m(24, "uabd");
/// Saturating add (`uqadd`/`sqadd`).
pub const UQADD: MachOp = m(25, "uqadd");
/// Saturating subtract (`uqsub`/`sqsub`).
pub const UQSUB: MachOp = m(26, "uqsub");
/// Halving add (`uhadd`/`shadd`).
pub const UHADD: MachOp = m(27, "uhadd");
/// Halving subtract (`uhsub`/`shsub`).
pub const UHSUB: MachOp = m(28, "uhsub");
/// Rounding halving add (`urhadd`/`srhadd`).
pub const URHADD: MachOp = m(29, "urhadd");
/// Rounding shift right by immediate (`urshr`/`srshr`).
pub const URSHR: MachOp = m(30, "urshr");
/// Saturating rounding shift left by register (`uqrshl`/`sqrshl`).
pub const UQRSHL: MachOp = m(31, "uqrshl");
/// Saturating shift left (`uqshl`/`sqshl`).
pub const UQSHL: MachOp = m(32, "uqshl");
/// Saturating narrow, same signedness (`uqxtn`/`sqxtn`).
pub const SQXTN: MachOp = m(33, "sqxtn");
/// Saturating narrow, signed to unsigned (`sqxtun`).
pub const SQXTUN: MachOp = m(34, "sqxtun");
/// Saturating rounding doubling multiply high (`sqrdmulh`).
pub const SQRDMULH: MachOp = m(35, "sqrdmulh");
/// Dot product with accumulation (`udot`/`sdot`).
pub const UDOT: MachOp = m(36, "udot");
/// Absolute value (`abs`).
pub const ABS: MachOp = m(37, "abs");
/// Shift right narrow (`shrn`).
pub const SHRN: MachOp = m(38, "shrn");
/// Saturating rounding shift right narrow (`sqrshrn`/`uqrshrn`).
pub const SQRSHRN: MachOp = m(39, "sqrshrn");
/// Broadcast a constant (`dup`).
pub const SPLAT: MachOp = m(40, "dup");
/// 64-bit multiply emulation (Neon has no 64-bit `mul`; LLVM builds it
/// from 32-bit pieces).
pub const MUL64: MachOp = m(41, "mul64.seq");

const ALL: &[u32] = &[8, 16, 32, 64];
const SMALL: &[u32] = &[8, 16, 32];
const WIDE: &[u32] = &[16, 32, 64];

pub(crate) fn defs() -> Vec<InstDef> {
    vec![
        row(ADD, MachSem::Bin(BinOp::Add), 1, ALL, "vector add"),
        row(SUB, MachSem::Bin(BinOp::Sub), 1, ALL, "vector subtract"),
        row(MUL, MachSem::Bin(BinOp::Mul), 2, SMALL, "vector multiply"),
        row(MLA, MachSem::MulAcc, 1, SMALL, "multiply-accumulate"),
        row(MIN, MachSem::Bin(BinOp::Min), 1, SMALL, "minimum"),
        row(MAX, MachSem::Bin(BinOp::Max), 1, SMALL, "maximum"),
        row(AND, MachSem::Bin(BinOp::And), 1, ALL, "bitwise and"),
        row(ORR, MachSem::Bin(BinOp::Or), 1, ALL, "bitwise or"),
        row(EOR, MachSem::Bin(BinOp::Xor), 1, ALL, "bitwise xor"),
        row(SHL, MachSem::Bin(BinOp::Shl), 1, ALL, "shift left"),
        row(SHR, MachSem::Bin(BinOp::Shr), 1, ALL, "shift right"),
        row(CMGT, MachSem::Cmp(CmpOp::Gt), 1, ALL, "compare greater"),
        row(CMEQ, MachSem::Cmp(CmpOp::Eq), 1, ALL, "compare equal"),
        row(BSL, MachSem::Select, 1, ALL, "bitwise select"),
        row(UXTL, MachSem::ExtendTo, 1, SMALL, "unsigned extend long").unsigned_only(),
        row(SXTL, MachSem::ExtendTo, 1, SMALL, "signed extend long").signed_only(),
        row(XTN, MachSem::TruncTo, 1, WIDE, "extract narrow"),
        row(REINTERP, MachSem::Reinterpret, 0, ALL, "register alias"),
        row(UADDL, MachSem::Fpir(FpirOp::WideningAdd), 1, SMALL, "widening add"),
        row(USUBL, MachSem::Fpir(FpirOp::WideningSub), 1, SMALL, "widening subtract"),
        row(UMULL, MachSem::Fpir(FpirOp::WideningMul), 2, SMALL, "widening multiply"),
        row(USHLL, MachSem::Fpir(FpirOp::WideningShl), 1, SMALL, "widening shift left")
            .const_operands(&[1]),
        row(UADDW, MachSem::Fpir(FpirOp::ExtendingAdd), 1, WIDE, "extending add"),
        row(UMLAL, MachSem::WideningMulAcc, 1, WIDE, "widening multiply-accumulate"),
        row(UABD, MachSem::Fpir(FpirOp::Absd), 1, SMALL, "absolute difference"),
        row(UQADD, MachSem::Fpir(FpirOp::SaturatingAdd), 1, ALL, "saturating add"),
        row(UQSUB, MachSem::Fpir(FpirOp::SaturatingSub), 1, ALL, "saturating subtract"),
        row(UHADD, MachSem::Fpir(FpirOp::HalvingAdd), 1, SMALL, "halving add"),
        row(UHSUB, MachSem::Fpir(FpirOp::HalvingSub), 1, SMALL, "halving subtract"),
        row(URHADD, MachSem::Fpir(FpirOp::RoundingHalvingAdd), 1, SMALL, "rounding halving add"),
        row(URSHR, MachSem::Fpir(FpirOp::RoundingShr), 1, ALL, "rounding shift right")
            .const_operands(&[1]),
        row(UQRSHL, MachSem::Fpir(FpirOp::RoundingShl), 1, ALL, "saturating rounding shift"),
        row(UQSHL, MachSem::Fpir(FpirOp::SaturatingShl), 1, ALL, "saturating shift left"),
        row(SQXTN, MachSem::Fpir(FpirOp::SaturatingNarrow), 1, WIDE, "saturating narrow"),
        row(SQXTUN, MachSem::SatCastTo, 1, WIDE, "saturating narrow signed-to-unsigned")
            .signed_only(),
        row(SQRDMULH, MachSem::QRDMulH, 2, &[16, 32], "rounding doubling multiply high")
            .signed_only(),
        row(UDOT, MachSem::DotAcc4, 2, &[32], "4-way dot product accumulate"),
        row(ABS, MachSem::Fpir(FpirOp::Abs), 1, SMALL, "absolute value"),
        row(SHRN, MachSem::ShrNarrow, 1, WIDE, "shift right narrow").const_operands(&[1]),
        row(SQRSHRN, MachSem::ShrRndSatNarrow, 1, WIDE, "rounding saturating shift-right narrow")
            .const_operands(&[1]),
        row(SPLAT, MachSem::Splat, 1, ALL, "broadcast constant"),
        row(MUL64, MachSem::Bin(BinOp::Mul), 6, &[64], "emulated 64-bit multiply"),
    ]
}
