//! The Hexagon HVX-like virtual target.
//!
//! Modelled on Qualcomm's Hexagon Vector Extensions: huge 1024-bit
//! vectors, a rich fixed-point repertoire (averages, absolute difference,
//! `vsat`, fused shift-round-saturate `vasr`), the multiply-add family
//! (`vmpa`, `vdmpy`, `vrmpy`), and — critically for §5.1 of the paper —
//! **no 64-bit lanes at all**: expressions needing 64-bit intermediates
//! cannot be legalized here.

use crate::def::{row, BackendDesc, InstDef, RegModel};
use crate::sem::MachSem;
use fpir::expr::{BinOp, CmpOp};
use fpir::{FpirOp, Isa, MachOp};

/// Registry descriptor for the Hexagon HVX-like backend.
pub static BACKEND: BackendDesc = BackendDesc {
    isa: Isa::HexagonHvx,
    reg: RegModel::Fixed { bits: 1024 },
    max_lane_bits: 32,
    build: defs,
    description: "Hexagon HVX-like: 1024-bit vectors, rich fixed-point ops, no 64-bit lanes",
};

const fn m(code: u16, name: &'static str) -> MachOp {
    MachOp { isa: Isa::HexagonHvx, code, name }
}

/// Vector add.
pub const VADD: MachOp = m(0, "vadd");
/// Vector subtract.
pub const VSUB: MachOp = m(1, "vsub");
/// Vector multiply (16/32-bit).
pub const VMPYI: MachOp = m(2, "vmpyi");
/// Minimum.
pub const VMIN: MachOp = m(3, "vmin");
/// Maximum.
pub const VMAX: MachOp = m(4, "vmax");
/// Bitwise and.
pub const VAND: MachOp = m(5, "vand");
/// Bitwise or.
pub const VOR: MachOp = m(6, "vor");
/// Bitwise xor.
pub const VXOR: MachOp = m(7, "vxor");
/// Shift left.
pub const VASL: MachOp = m(8, "vasl");
/// Shift right.
pub const VASR: MachOp = m(9, "vasr");
/// Compare greater.
pub const VCMPGT: MachOp = m(10, "vcmp.gt");
/// Compare equal.
pub const VCMPEQ: MachOp = m(11, "vcmp.eq");
/// Mux (select).
pub const VMUX: MachOp = m(12, "vmux");
/// Zero extension.
pub const VZXT: MachOp = m(13, "vzxt");
/// Sign extension.
pub const VSXT: MachOp = m(14, "vsxt");
/// Truncating pack (even bytes).
pub const VPACKE: MachOp = m(15, "vpacke");
/// Register reinterpretation (free).
pub const VREINTERP: MachOp = m(16, "vreinterp");
/// Widening add (`vaddubh` family).
pub const VADDW: MachOp = m(17, "vaddubh");
/// Widening subtract (`vsububh` family).
pub const VSUBW: MachOp = m(18, "vsububh");
/// Widening multiply (`vmpy`).
pub const VMPY: MachOp = m(19, "vmpy");
/// Widening multiply with accumulation (`vmpy.acc`).
pub const VMPYACC: MachOp = m(20, "vmpy.acc");
/// Multiply-by-immediates-and-add (`vmpa`).
pub const VMPA: MachOp = m(21, "vmpa");
/// Accumulating `vmpa` (`vmpa.acc`).
pub const VMPAACC: MachOp = m(22, "vmpa.acc");
/// Paired multiply-add (`vdmpy`).
pub const VDMPY: MachOp = m(23, "vdmpy");
/// 4-way dot product accumulate (`vrmpy`).
pub const VRMPY: MachOp = m(24, "vrmpy");
/// Saturating add (`vadd:sat`).
pub const VADDSAT: MachOp = m(25, "vadd:sat");
/// Saturating subtract (`vsub:sat`).
pub const VSUBSAT: MachOp = m(26, "vsub:sat");
/// Halving add (`vavg`).
pub const VAVG: MachOp = m(27, "vavg");
/// Rounding halving add (`vavg:rnd`).
pub const VAVGRND: MachOp = m(28, "vavg:rnd");
/// Halving subtract (`vnavg`).
pub const VNAVG: MachOp = m(29, "vnavg");
/// Absolute difference (`vabsdiff`).
pub const VABSDIFF: MachOp = m(30, "vabsdiff");
/// Saturate-narrow, input read as signed (`vsat`).
pub const VSAT: MachOp = m(31, "vsat");
/// Fused shift-right, round, saturating narrow (`vasr:rnd:sat`).
pub const VASRRNDSAT: MachOp = m(32, "vasr:rnd:sat");
/// Absolute value (`vabs`).
pub const VABS: MachOp = m(33, "vabs");
/// Broadcast a constant (`vsplat`).
pub const VSPLAT: MachOp = m(34, "vsplat");
/// Rounding multiply-high (`vmpyo/vmpye` with `:rnd:sat`, used for the
/// signed Q-format multiplies of §5.1).
pub const VMPYERND: MachOp = m(35, "vmpyo:rnd:sat");

const ALL: &[u32] = &[8, 16, 32];
const WIDE: &[u32] = &[16, 32];
const NARROW: &[u32] = &[8, 16];

pub(crate) fn defs() -> Vec<InstDef> {
    vec![
        row(VADD, MachSem::Bin(BinOp::Add), 1, ALL, "vector add"),
        row(VSUB, MachSem::Bin(BinOp::Sub), 1, ALL, "vector subtract"),
        row(VMPYI, MachSem::Bin(BinOp::Mul), 2, WIDE, "vector multiply"),
        row(VMIN, MachSem::Bin(BinOp::Min), 1, ALL, "minimum"),
        row(VMAX, MachSem::Bin(BinOp::Max), 1, ALL, "maximum"),
        row(VAND, MachSem::Bin(BinOp::And), 1, ALL, "bitwise and"),
        row(VOR, MachSem::Bin(BinOp::Or), 1, ALL, "bitwise or"),
        row(VXOR, MachSem::Bin(BinOp::Xor), 1, ALL, "bitwise xor"),
        row(VASL, MachSem::Bin(BinOp::Shl), 1, WIDE, "shift left"),
        row(VASR, MachSem::Bin(BinOp::Shr), 1, WIDE, "shift right"),
        row(VCMPGT, MachSem::Cmp(CmpOp::Gt), 1, ALL, "compare greater"),
        row(VCMPEQ, MachSem::Cmp(CmpOp::Eq), 1, ALL, "compare equal"),
        row(VMUX, MachSem::Select, 1, ALL, "mux"),
        row(VZXT, MachSem::ExtendTo, 2, NARROW, "zero extend (shuffle unit)").unsigned_only(),
        row(VSXT, MachSem::ExtendTo, 2, NARROW, "sign extend (shuffle unit)").signed_only(),
        row(VPACKE, MachSem::TruncTo, 2, WIDE, "truncating pack (shuffle unit)"),
        row(VREINTERP, MachSem::Reinterpret, 0, ALL, "register alias"),
        row(VADDW, MachSem::Fpir(FpirOp::WideningAdd), 1, NARROW, "widening add"),
        row(VSUBW, MachSem::Fpir(FpirOp::WideningSub), 1, NARROW, "widening subtract"),
        row(VMPY, MachSem::Fpir(FpirOp::WideningMul), 2, NARROW, "widening multiply"),
        row(VMPYACC, MachSem::WideningMulAcc, 2, WIDE, "widening multiply-accumulate"),
        row(VMPA, MachSem::Mpa, 2, NARROW, "multiply-add with immediates").const_operands(&[2, 3]),
        row(VMPAACC, MachSem::MpaAcc, 2, WIDE, "accumulating multiply-add with immediates")
            .const_operands(&[3, 4]),
        row(VDMPY, MachSem::MulPairsAdd, 2, &[16], "paired multiply-add").signed_only(),
        row(VRMPY, MachSem::DotAcc4, 2, &[32], "4-way dot product accumulate"),
        row(VADDSAT, MachSem::Fpir(FpirOp::SaturatingAdd), 1, ALL, "saturating add"),
        row(VSUBSAT, MachSem::Fpir(FpirOp::SaturatingSub), 1, ALL, "saturating subtract"),
        row(VAVG, MachSem::Fpir(FpirOp::HalvingAdd), 1, ALL, "halving add"),
        row(VAVGRND, MachSem::Fpir(FpirOp::RoundingHalvingAdd), 1, ALL, "rounding halving add"),
        row(VNAVG, MachSem::Fpir(FpirOp::HalvingSub), 1, ALL, "halving subtract"),
        row(VABSDIFF, MachSem::Fpir(FpirOp::Absd), 1, ALL, "absolute difference"),
        row(VSAT, MachSem::PackSatSignedTo, 1, WIDE, "saturating pack"),
        row(VASRRNDSAT, MachSem::ShrRndSatNarrow, 1, WIDE, "shift-round-saturate narrow")
            .const_operands(&[1]),
        row(VABS, MachSem::Fpir(FpirOp::Abs), 1, ALL, "absolute value"),
        row(VSPLAT, MachSem::Splat, 1, ALL, "broadcast constant"),
        row(VMPYERND, MachSem::QRDMulH, 3, WIDE, "rounding multiply high").signed_only(),
    ]
}
