//! # fpir-isa — virtual fixed-point SIMD targets
//!
//! Four *virtual ISAs* behind a pluggable backend registry
//! ([`def::BACKENDS`]): three modelled on the paper's evaluation
//! targets — x86 AVX2 ([`x86`]), 64-bit ARM Neon ([`arm`]) and Hexagon
//! HVX ([`hvx`]) — plus an RVV-style scalable-vector target ([`rvv`])
//! added to demonstrate the `k + n + 1` rule-count scaling. Each is
//! one [`def::BackendDesc`] (register model, lane-width limit, table
//! builder) and an instruction table with:
//!
//! * **executable semantics** ([`sem`]) built from the reference
//!   interpreter's lane arithmetic, so lowered code can be run and
//!   differentially tested against the source expression;
//! * **costs** (per native register processed) that drive both the
//!   lowering TRSs ([`cost::TargetCost`]) and the cycle model in
//!   `fpir-sim`;
//! * **legality**: lane widths, signedness requirements, and
//!   immediate-operand constraints. Hexagon HVX has no 64-bit lanes,
//!   reproducing the §5.1 compile failures.
//!
//! The [`legalize`] pass provides each target's *direct mappings* (the
//! `n` per-backend rules of the paper's `k + n + 1` argument) plus the
//! generic widen-execute-truncate fallback that makes every integer
//! operation compilable — expensively — even without Pitchfork.
//!
//! ```
//! use fpir::build::*;
//! use fpir::types::{ScalarType, VectorType};
//! use fpir::Isa;
//! use fpir_isa::{legalize::legalize, target};
//!
//! let t = VectorType::new(ScalarType::U8, 16);
//! let e = widening_add(var("a", t), var("b", t));
//! let lowered = legalize(&e, target(Isa::ArmNeon))?;
//! assert_eq!(lowered.to_string(), "arm.uaddl(a_u8, b_u8)");
//! # Ok::<(), fpir_isa::legalize::LowerError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod arm;
pub mod cost;
pub mod def;
pub mod hvx;
pub mod legalize;
pub mod rvv;
pub mod sem;
pub mod x86;

pub use cost::TargetCost;
pub use def::{
    all_targets, target, BackendDesc, InstDef, MachEvaluator, RegModel, SignReq, Target, BACKENDS,
};
pub use legalize::{legalize, legalize_uncached, LowerError};
pub use sem::{
    eval_sem, eval_sem_into, sem_lane, sem_slice_fn, sem_slice_fn_pair, sem_slice_fn_splat,
    MachSem, SemSliceFn,
};
