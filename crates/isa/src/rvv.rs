//! The RISC-V Vector (RVV)-like virtual target.
//!
//! Modelled on the RVV 1.0 integer ISA: **vector-length-agnostic**
//! (scalable) registers — code is strip-mined over whatever VLEN an
//! implementation provides, so no logical vector width is illegal and
//! the cost model prices a representative 256-bit implementation —
//! with register grouping (LMUL), element widths from 8 to 64 bits
//! (unlike HVX, the §5.1 64-bit workloads compile here, and unlike
//! Neon, the 64-bit multiply is native rather than emulated), the
//! widening/narrowing arithmetic family (`vwadd`, `vwmul`, `vwmacc`,
//! `vnsrl`), and the fixed-point ops steered by `vxrm`: averaging adds
//! (`vaadd`/`vasub`), saturating adds (`vsadd`/`vssub`), the Q-format
//! rounding-doubling multiply `vsmul`, and the fused
//! shift-round-saturate narrow `vnclip`.
//!
//! Two character gaps matter for lowering: base RVV has no absolute
//! difference and no dot product, so those shapes fall to compound
//! rules or the generic lift pipeline. Conversely the narrowing shifts
//! (`vnsrl`, `vnclip`) take a *vector* shift operand, so — unlike ARM's
//! `shrn`/`sqrshrn` or HVX's `vasr` — the table rows carry no
//! immediate-operand constraint.
//!
//! Mnemonics use the base (signed) name; each row accepts both
//! signednesses unless marked, with the `u`-suffixed form implied for
//! unsigned lanes (`vmulhu`, `vsaddu`, `vnclipu`, ...).

use crate::def::{row, BackendDesc, InstDef, RegModel};
use crate::sem::MachSem;
use fpir::expr::{BinOp, CmpOp};
use fpir::{FpirOp, Isa, MachOp};

/// Registry descriptor for the RVV-like backend.
pub static BACKEND: BackendDesc = BackendDesc {
    isa: Isa::Rvv,
    reg: RegModel::Scalable { vlen: 256, max_lmul: 8 },
    max_lane_bits: 64,
    build: defs,
    description: "RISC-V Vector-like: scalable registers, widening/narrowing \
                  arithmetic, fixed-point vsmul/vnclip",
};

const fn m(code: u16, name: &'static str) -> MachOp {
    MachOp { isa: Isa::Rvv, code, name }
}

/// Vector add.
pub const VADD: MachOp = m(0, "vadd");
/// Vector subtract.
pub const VSUB: MachOp = m(1, "vsub");
/// Vector multiply — native at every SEW including 64-bit.
pub const VMUL: MachOp = m(2, "vmul");
/// Multiply-accumulate (`vmacc`).
pub const VMACC: MachOp = m(3, "vmacc");
/// Minimum (`vmin`/`vminu`).
pub const VMIN: MachOp = m(4, "vmin");
/// Maximum (`vmax`/`vmaxu`).
pub const VMAX: MachOp = m(5, "vmax");
/// Bitwise and.
pub const VAND: MachOp = m(6, "vand");
/// Bitwise or.
pub const VOR: MachOp = m(7, "vor");
/// Bitwise xor.
pub const VXOR: MachOp = m(8, "vxor");
/// Shift left (`vsll`).
pub const VSLL: MachOp = m(9, "vsll");
/// Shift right (`vsra`/`vsrl` per signedness).
pub const VSRL: MachOp = m(10, "vsrl");
/// Compare greater (`vmsgt`/`vmsgtu`).
pub const VMSGT: MachOp = m(11, "vmsgt");
/// Compare equal (`vmseq`).
pub const VMSEQ: MachOp = m(12, "vmseq");
/// Mask-driven merge (select).
pub const VMERGE: MachOp = m(13, "vmerge");
/// Zero extension (`vzext.vf2`).
pub const VZEXT: MachOp = m(14, "vzext");
/// Sign extension (`vsext.vf2`).
pub const VSEXT: MachOp = m(15, "vsext");
/// Truncating narrow (`vncvt.x.x.w`).
pub const VNCVT: MachOp = m(16, "vncvt");
/// Register reinterpretation (free — same bits, new SEW view).
pub const VMV: MachOp = m(17, "vmv");
/// Widening add (`vwadd.vv`/`vwaddu.vv`).
pub const VWADD: MachOp = m(18, "vwadd");
/// Widening subtract (`vwsub.vv`/`vwsubu.vv`).
pub const VWSUB: MachOp = m(19, "vwsub");
/// Widening multiply (`vwmul`/`vwmulu`).
pub const VWMUL: MachOp = m(20, "vwmul");
/// Extending add — wide plus narrow (`vwadd.wv`).
pub const VWADDW: MachOp = m(21, "vwadd.w");
/// Widening multiply-accumulate (`vwmacc`/`vwmaccu`).
pub const VWMACC: MachOp = m(22, "vwmacc");
/// Saturating add (`vsadd`/`vsaddu`).
pub const VSADD: MachOp = m(23, "vsadd");
/// Saturating subtract (`vssub`/`vssubu`).
pub const VSSUB: MachOp = m(24, "vssub");
/// Averaging add, round-to-nearest-up (`vaadd`, `vxrm=rnu`).
pub const VAADD: MachOp = m(25, "vaadd");
/// Averaging add, round-down (`vaadd`, `vxrm=rdn`) — the halving add.
pub const VAADDF: MachOp = m(26, "vaadd.rdn");
/// Averaging subtract, round-down (`vasub`, `vxrm=rdn`).
pub const VASUB: MachOp = m(27, "vasub");
/// Rounding shift right (`vssra`/`vssrl`, `vxrm=rnu`) — vector shift
/// operand, no immediate required.
pub const VSSRA: MachOp = m(28, "vssra");
/// Fixed-point rounding-doubling multiply high (`vsmul`, Q-format).
pub const VSMUL: MachOp = m(29, "vsmul");
/// Narrowing shift right (`vnsrl.wv`) — vector shift operand.
pub const VNSRL: MachOp = m(30, "vnsrl");
/// Narrowing fixed-point clip: shift, round, saturate (`vnclip`/`vnclipu`).
pub const VNCLIP: MachOp = m(31, "vnclip");
/// Multiply returning high half (`vmulh`/`vmulhu`).
pub const VMULH: MachOp = m(32, "vmulh");
/// Broadcast a scalar (`vmv.v.x`).
pub const VSPLAT: MachOp = m(33, "vmv.v.x");

const ALL: &[u32] = &[8, 16, 32, 64];
const SMALL: &[u32] = &[8, 16, 32];
const WIDE: &[u32] = &[16, 32, 64];

pub(crate) fn defs() -> Vec<InstDef> {
    vec![
        row(VADD, MachSem::Bin(BinOp::Add), 1, ALL, "vector add"),
        row(VSUB, MachSem::Bin(BinOp::Sub), 1, ALL, "vector subtract"),
        row(VMUL, MachSem::Bin(BinOp::Mul), 2, ALL, "vector multiply (native 64-bit)"),
        row(VMACC, MachSem::MulAcc, 1, ALL, "multiply-accumulate"),
        row(VMIN, MachSem::Bin(BinOp::Min), 1, ALL, "minimum"),
        row(VMAX, MachSem::Bin(BinOp::Max), 1, ALL, "maximum"),
        row(VAND, MachSem::Bin(BinOp::And), 1, ALL, "bitwise and"),
        row(VOR, MachSem::Bin(BinOp::Or), 1, ALL, "bitwise or"),
        row(VXOR, MachSem::Bin(BinOp::Xor), 1, ALL, "bitwise xor"),
        row(VSLL, MachSem::Bin(BinOp::Shl), 1, ALL, "shift left"),
        row(VSRL, MachSem::Bin(BinOp::Shr), 1, ALL, "shift right"),
        row(VMSGT, MachSem::Cmp(CmpOp::Gt), 1, ALL, "compare greater"),
        row(VMSEQ, MachSem::Cmp(CmpOp::Eq), 1, ALL, "compare equal"),
        row(VMERGE, MachSem::Select, 1, ALL, "mask merge (select)"),
        row(VZEXT, MachSem::ExtendTo, 1, SMALL, "zero extend").unsigned_only(),
        row(VSEXT, MachSem::ExtendTo, 1, SMALL, "sign extend").signed_only(),
        row(VNCVT, MachSem::TruncTo, 1, WIDE, "truncating narrow"),
        row(VMV, MachSem::Reinterpret, 0, ALL, "register alias"),
        row(VWADD, MachSem::Fpir(FpirOp::WideningAdd), 1, SMALL, "widening add"),
        row(VWSUB, MachSem::Fpir(FpirOp::WideningSub), 1, SMALL, "widening subtract"),
        row(VWMUL, MachSem::Fpir(FpirOp::WideningMul), 2, SMALL, "widening multiply"),
        row(VWADDW, MachSem::Fpir(FpirOp::ExtendingAdd), 1, WIDE, "extending add"),
        row(VWMACC, MachSem::WideningMulAcc, 1, WIDE, "widening multiply-accumulate"),
        row(VSADD, MachSem::Fpir(FpirOp::SaturatingAdd), 1, ALL, "saturating add"),
        row(VSSUB, MachSem::Fpir(FpirOp::SaturatingSub), 1, ALL, "saturating subtract"),
        row(VAADD, MachSem::Fpir(FpirOp::RoundingHalvingAdd), 1, ALL, "rounding averaging add"),
        row(VAADDF, MachSem::Fpir(FpirOp::HalvingAdd), 1, ALL, "averaging add, round down"),
        row(VASUB, MachSem::Fpir(FpirOp::HalvingSub), 1, ALL, "averaging subtract, round down"),
        row(VSSRA, MachSem::Fpir(FpirOp::RoundingShr), 1, ALL, "rounding shift right"),
        row(VSMUL, MachSem::QRDMulH, 2, SMALL, "fixed-point rounding multiply high").signed_only(),
        row(VNSRL, MachSem::ShrNarrow, 1, WIDE, "narrowing shift right"),
        row(VNCLIP, MachSem::ShrRndSatNarrow, 1, WIDE, "narrowing fixed-point clip"),
        row(VMULH, MachSem::MulHigh, 2, SMALL, "multiply high"),
        row(VSPLAT, MachSem::Splat, 1, ALL, "broadcast scalar"),
    ]
}
