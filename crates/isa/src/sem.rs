//! Executable semantics of machine instructions.
//!
//! Every instruction in a target table carries a [`MachSem`] describing
//! what it computes. Semantics are defined *in terms of the reference
//! interpreter's lane arithmetic* (`fpir::interp`), so a lowered machine
//! program can be executed and differentially tested against the source
//! expression — that replaces the paper's "run it on the real device /
//! Hexagon simulator" correctness story.
//!
//! A few instructions deliberately have semantics that differ from the
//! FPIR op they are used to implement — e.g. x86's `vpackuswb` and HVX's
//! `vsat` reinterpret their input bits as *signed* before saturating
//! ([`MachSem::PackSatSignedTo`]). Pitchfork may only select them under a
//! bounds predicate; if a rule gets the predicate wrong, differential
//! testing catches the disagreement.

use fpir::expr::{BinOp, CmpOp, FpirOp};
use fpir::interp::{bin_op_lane, cmp_op_lane, fpir_op_lane, Value};
use fpir::types::{ScalarType, VectorType};

/// What a machine instruction computes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MachSem {
    /// A lane-wise primitive binary op at the operand type.
    Bin(BinOp),
    /// A comparison producing 0/1 lanes of the operand type.
    Cmp(CmpOp),
    /// `select(mask, a, b)` — non-zero mask lanes take `a`.
    Select,
    /// Wrapping conversion to a *wider* result element type (zero/sign
    /// extension chosen by the source signedness — `vpmovzx`, `uxtl`,
    /// `vzxt`).
    ExtendTo,
    /// Wrapping conversion to a *narrower* result element type (`xtn`,
    /// `vpacke`, x86's shuffle-based pack).
    TruncTo,
    /// Bit reinterpretation (free register alias).
    Reinterpret,
    /// Exactly the FPIR instruction's semantics at the operand types.
    Fpir(FpirOp),
    /// Saturating cast to the result element type.
    SatCastTo,
    /// Reinterpret the input as the *signed* type of its width, then
    /// saturating-cast to the result element type (x86 `vpackuswb`,
    /// HVX `vsat`).
    PackSatSignedTo,
    /// High half of the widened product: `(widen(x) * widen(y)) >> bits`.
    MulHigh,
    /// Non-widening multiply-accumulate: `acc + a * b` (wrapping).
    MulAcc,
    /// Widening multiply-accumulate: `acc + widen(a) * widen(b)` where
    /// `acc` has double the operand width (ARM `umlal`, HVX `vmpy.acc`).
    WideningMulAcc,
    /// Paired widening multiply-add:
    /// `widen(a) * widen(b) + widen(c) * widen(d)` (x86 `vpmaddwd`,
    /// HVX `vdmpy`).
    MulPairsAdd,
    /// Multiply-by-constants-and-add: `widen(a) * c0 + widen(b) * c1`
    /// (HVX `vmpa`); `c0`/`c1` are broadcast-constant operands.
    Mpa,
    /// Accumulating [`MachSem::Mpa`]: `acc + widen(a) * c0 + widen(b) * c1`.
    MpaAcc,
    /// Four-way widening dot product with accumulation:
    /// `acc + Σ_{i<4} widen(a_i) * widen(b_i)` where `acc` has 4× the
    /// operand width (ARM `udot`, HVX `vrmpy`).
    DotAcc4,
    /// Fused "shift right, round, saturating narrow":
    /// `saturating_cast<result>(rounding_shr(x, c))` (HVX `vasr` with the
    /// `:rnd:sat` modifiers; ARM `sqrshrn`-family).
    ShrRndSatNarrow,
    /// Fused "shift right then truncating narrow": `narrow(x >> c)` (ARM
    /// `shrn`).
    ShrNarrow,
    /// Saturating rounding doubling multiply-high:
    /// `rounding_mul_shr(x, y, bits - 1)` (ARM `sqrdmulh`).
    QRDMulH,
    /// Broadcast a scalar constant held in the operand.
    Splat,
}

impl MachSem {
    /// Operand count.
    pub fn arity(self) -> usize {
        match self {
            MachSem::ExtendTo
            | MachSem::TruncTo
            | MachSem::Reinterpret
            | MachSem::SatCastTo
            | MachSem::PackSatSignedTo
            | MachSem::Splat => 1,
            MachSem::Bin(_)
            | MachSem::Cmp(_)
            | MachSem::MulHigh
            | MachSem::ShrRndSatNarrow
            | MachSem::ShrNarrow
            | MachSem::QRDMulH => 2,
            MachSem::Select | MachSem::MulAcc | MachSem::WideningMulAcc => 3,
            MachSem::Fpir(op) => op.arity(),
            MachSem::MulPairsAdd | MachSem::Mpa => 4,
            MachSem::MpaAcc => 5,
            MachSem::DotAcc4 => 9,
        }
    }
}

/// Execute one instruction.
///
/// `result_ty` is the type the surrounding expression/program assigned to
/// the destination; semantics that imply their own result type validate it.
///
/// # Errors
///
/// Returns a message on arity mismatch, lane-count mismatch, or a result
/// type inconsistent with the semantics.
pub fn eval_sem(sem: MachSem, args: &[Value], result_ty: VectorType) -> Result<Value, String> {
    let refs: Vec<&Value> = args.iter().collect();
    let mut out = Vec::with_capacity(result_ty.lanes as usize);
    eval_sem_into(sem, &refs, result_ty, &mut out)?;
    Ok(Value::new(result_ty, out))
}

/// Execute one instruction, writing the result lanes into `out`.
///
/// This is the allocation-free core of [`eval_sem`]: operands are read
/// through references and the result is produced into a caller-supplied
/// buffer (cleared first), so a hot loop — the linked execution engine in
/// `fpir-sim` — can recycle lane buffers across instructions instead of
/// allocating a fresh `Value` per step. [`eval_sem`] is a thin wrapper,
/// so the two entry points can never disagree on semantics.
///
/// # Errors
///
/// As [`eval_sem`].
pub fn eval_sem_into(
    sem: MachSem,
    args: &[&Value],
    result_ty: VectorType,
    out: &mut Vec<i128>,
) -> Result<(), String> {
    if args.len() != sem.arity() {
        return Err(format!("{sem:?} takes {} operands, got {}", sem.arity(), args.len()));
    }
    let lanes = result_ty.lanes as usize;
    for a in args {
        if a.ty().lanes as usize != lanes {
            return Err(format!("operand lanes {} != result lanes {lanes}", a.ty().lanes));
        }
    }
    let elem0 = args.first().map(|a| a.ty().elem);
    out.clear();
    out.reserve(lanes);
    // Hot path: every arm iterates the operand lane *slices* directly
    // (zips are bounds-check-free; `extend` over an exact-size iterator
    // writes without per-element capacity checks), because this core runs
    // once per instruction per image strip in the linked engine.
    match sem {
        MachSem::Bin(op) => {
            let t = elem0.expect("arity >= 1");
            let (a, b) = (args[0].lanes(), args[1].lanes());
            // Dispatch on the op once per instruction, not once per lane:
            // each arm hands the *literal* op to the single-source lane
            // helper, whose internal match then folds away under inlining.
            macro_rules! bin_lanes {
                ($($v:ident),*) => {
                    match op {
                        $(BinOp::$v => out
                            .extend(a.iter().zip(b).map(|(&x, &y)| bin_op_lane(BinOp::$v, x, y, t))),)*
                    }
                };
            }
            bin_lanes!(Add, Sub, Mul, Div, Mod, Min, Max, Shl, Shr, And, Or, Xor);
            Ok(())
        }
        MachSem::Cmp(op) => {
            let t = elem0.expect("arity >= 1");
            let (a, b) = (args[0].lanes(), args[1].lanes());
            macro_rules! cmp_lanes {
                ($($v:ident),*) => {
                    match op {
                        $(CmpOp::$v => out
                            .extend(a.iter().zip(b).map(|(&x, &y)| cmp_op_lane(CmpOp::$v, x, y, t))),)*
                    }
                };
            }
            cmp_lanes!(Eq, Ne, Lt, Le, Gt, Ge);
            Ok(())
        }
        MachSem::Select => {
            let (m, a, b) = (args[0].lanes(), args[1].lanes(), args[2].lanes());
            out.extend(m.iter().zip(a).zip(b).map(|((&m, &x), &y)| if m != 0 { x } else { y }));
            Ok(())
        }
        MachSem::ExtendTo | MachSem::TruncTo | MachSem::Reinterpret | MachSem::Splat => {
            out.extend(args[0].lanes().iter().map(|&x| result_ty.elem.wrap(x)));
            Ok(())
        }
        MachSem::SatCastTo => {
            out.extend(args[0].lanes().iter().map(|&x| result_ty.elem.saturate(x)));
            Ok(())
        }
        MachSem::PackSatSignedTo => {
            let signed = elem0.expect("arity 1").with_signed();
            out.extend(args[0].lanes().iter().map(|&x| result_ty.elem.saturate(signed.wrap(x))));
            Ok(())
        }
        MachSem::Fpir(op) => {
            // Specialized by arity: fixed-size lane tuples on the stack
            // for the overwhelmingly common 1/2/3-operand instructions.
            match args {
                [a] => {
                    let tys = [a.ty().elem];
                    out.extend(
                        a.lanes().iter().map(|&x| fpir_op_lane(op, &[x], &tys, result_ty.elem)),
                    );
                }
                [a, b] => {
                    let tys = [a.ty().elem, b.ty().elem];
                    // As for `Bin` above: pick the op once, outside the
                    // lane loop, passing a literal to the lane helper so
                    // its match folds. The wildcard arm covers the ops
                    // that never reach here with two operands.
                    macro_rules! lanes2 {
                        ($v:expr) => {
                            out.extend(
                                a.lanes().iter().zip(b.lanes()).map(|(&x, &y)| {
                                    fpir_op_lane($v, &[x, y], &tys, result_ty.elem)
                                }),
                            )
                        };
                    }
                    match op {
                        FpirOp::WideningAdd => lanes2!(FpirOp::WideningAdd),
                        FpirOp::WideningSub => lanes2!(FpirOp::WideningSub),
                        FpirOp::WideningMul => lanes2!(FpirOp::WideningMul),
                        FpirOp::ExtendingAdd => lanes2!(FpirOp::ExtendingAdd),
                        FpirOp::ExtendingSub => lanes2!(FpirOp::ExtendingSub),
                        FpirOp::ExtendingMul => lanes2!(FpirOp::ExtendingMul),
                        FpirOp::SaturatingAdd => lanes2!(FpirOp::SaturatingAdd),
                        FpirOp::SaturatingSub => lanes2!(FpirOp::SaturatingSub),
                        FpirOp::HalvingAdd => lanes2!(FpirOp::HalvingAdd),
                        FpirOp::HalvingSub => lanes2!(FpirOp::HalvingSub),
                        FpirOp::RoundingHalvingAdd => lanes2!(FpirOp::RoundingHalvingAdd),
                        FpirOp::Absd => lanes2!(FpirOp::Absd),
                        _ => lanes2!(op),
                    }
                }
                [a, b, c] => {
                    let tys = [a.ty().elem, b.ty().elem, c.ty().elem];
                    macro_rules! lanes3 {
                        ($v:expr) => {
                            out.extend(a.lanes().iter().zip(b.lanes()).zip(c.lanes()).map(
                                |((&x, &y), &z)| fpir_op_lane($v, &[x, y, z], &tys, result_ty.elem),
                            ))
                        };
                    }
                    match op {
                        FpirOp::MulShr => lanes3!(FpirOp::MulShr),
                        FpirOp::RoundingMulShr => lanes3!(FpirOp::RoundingMulShr),
                        _ => lanes3!(op),
                    }
                }
                _ => {
                    let tys: Vec<ScalarType> = args.iter().map(|a| a.ty().elem).collect();
                    let mut xs: Vec<i128> = vec![0; args.len()];
                    out.extend((0..lanes).map(|i| {
                        for (x, a) in xs.iter_mut().zip(args) {
                            *x = a.lane(i);
                        }
                        fpir_op_lane(op, &xs, &tys, result_ty.elem)
                    }));
                }
            }
            Ok(())
        }
        MachSem::MulHigh => {
            let t = elem0.expect("arity 2");
            let bits = t.bits();
            let (a, b) = (args[0].lanes(), args[1].lanes());
            out.extend(a.iter().zip(b).map(|(&x, &y)| result_ty.elem.wrap((x * y) >> bits)));
            Ok(())
        }
        MachSem::MulAcc => {
            let (acc, a, b) = (args[0].lanes(), args[1].lanes(), args[2].lanes());
            out.extend(acc.iter().zip(a).zip(b).map(|((&c, &x), &y)| {
                // Wrapping at i128 for the same reason as `BinOp::Mul` in
                // `bin_op_lane`: 64-bit lane extremes overflow the raw
                // product, and `wrap` only reads its low bits.
                result_ty.elem.wrap(c.wrapping_add(x.wrapping_mul(y)))
            }));
            Ok(())
        }
        MachSem::WideningMulAcc => {
            let (aw, ow) = (args[0].ty().elem.bits(), args[1].ty().elem.bits());
            if aw != ow * 2 {
                return Err(format!(
                    "widening mul-acc accumulator must be 2x the operand width ({aw} vs {ow})"
                ));
            }
            let (acc, a, b) = (args[0].lanes(), args[1].lanes(), args[2].lanes());
            out.extend(
                acc.iter()
                    .zip(a)
                    .zip(b)
                    .map(|((&c, &x), &y)| result_ty.elem.wrap(c.wrapping_add(x.wrapping_mul(y)))),
            );
            Ok(())
        }
        MachSem::MulPairsAdd => {
            let (a, b, c, d) = (args[0].lanes(), args[1].lanes(), args[2].lanes(), args[3].lanes());
            out.extend((0..lanes).map(|i| result_ty.elem.wrap(a[i] * b[i] + c[i] * d[i])));
            Ok(())
        }
        MachSem::Mpa => {
            let (a, b, c0, c1) =
                (args[0].lanes(), args[1].lanes(), args[2].lanes(), args[3].lanes());
            out.extend((0..lanes).map(|i| result_ty.elem.wrap(a[i] * c0[i] + b[i] * c1[i])));
            Ok(())
        }
        MachSem::MpaAcc => {
            let (acc, a, b, c0, c1) = (
                args[0].lanes(),
                args[1].lanes(),
                args[2].lanes(),
                args[3].lanes(),
                args[4].lanes(),
            );
            out.extend(
                (0..lanes).map(|i| result_ty.elem.wrap(acc[i] + a[i] * c0[i] + b[i] * c1[i])),
            );
            Ok(())
        }
        MachSem::DotAcc4 => {
            let aw = args[0].ty().elem.bits();
            let ow = args[1].ty().elem.bits();
            if aw != ow * 4 {
                return Err(format!(
                    "dot-product accumulator must be 4x the operand width ({aw} vs {ow})"
                ));
            }
            out.extend((0..lanes).map(|i| {
                let mut acc = args[0].lane(i);
                for k in 0..4 {
                    acc += args[1 + k].lane(i) * args[5 + k].lane(i);
                }
                result_ty.elem.wrap(acc)
            }));
            Ok(())
        }
        MachSem::ShrRndSatNarrow => {
            let t = elem0.expect("arity 2");
            let tys = [t, args[1].ty().elem];
            let (a, b) = (args[0].lanes(), args[1].lanes());
            out.extend(a.iter().zip(b).map(|(&x, &y)| {
                let shifted = fpir_op_lane(FpirOp::RoundingShr, &[x, y], &tys, t);
                result_ty.elem.saturate(shifted)
            }));
            Ok(())
        }
        MachSem::ShrNarrow => {
            let t = elem0.expect("arity 2");
            let (a, b) = (args[0].lanes(), args[1].lanes());
            out.extend(
                a.iter()
                    .zip(b)
                    .map(|(&x, &y)| result_ty.elem.wrap(bin_op_lane(BinOp::Shr, x, y, t))),
            );
            Ok(())
        }
        MachSem::QRDMulH => {
            let t = elem0.expect("arity 2");
            let tys = [t, t, t];
            let (a, b) = (args[0].lanes(), args[1].lanes());
            out.extend(a.iter().zip(b).map(|(&x, &y)| {
                fpir_op_lane(
                    FpirOp::RoundingMulShr,
                    &[x, y, t.bits() as i128 - 1],
                    &tys,
                    result_ty.elem,
                )
            }));
            Ok(())
        }
    }
}

/// Execute one instruction on a *single lane*.
///
/// `xs` holds one lane value per operand and `tys` the corresponding
/// operand element types; `result` is the destination element type. This
/// is the scalar core backing fused superinstruction kernels in
/// `fpir-sim`: a fused kernel walks the lanes once and evaluates each
/// absorbed step through this function, keeping intermediates in scalars.
///
/// Every arm calls the *same* lane helpers (`bin_op_lane`,
/// `cmp_op_lane`, `fpir_op_lane`, `wrap`, `saturate`) as the
/// corresponding [`eval_sem_into`] arm, so for shape-valid inputs the two
/// entry points are bit-identical by shared code — pinned by the
/// `sem_lane_matches_eval_sem_into` test below.
///
/// # Preconditions
///
/// Shape checks (arity, lane counts, widening widths) are *not* repeated
/// here: callers must only invoke this on operands that `eval_sem_into`
/// would accept (`xs.len() == tys.len() == sem.arity()`). The linked
/// engine guarantees this via the static artifact verifier plus its
/// per-invocation input type checks.
pub fn sem_lane(sem: MachSem, xs: &[i128], tys: &[ScalarType], result: ScalarType) -> i128 {
    match sem {
        MachSem::Bin(op) => bin_op_lane(op, xs[0], xs[1], tys[0]),
        MachSem::Cmp(op) => cmp_op_lane(op, xs[0], xs[1], tys[0]),
        MachSem::Select => {
            if xs[0] != 0 {
                xs[1]
            } else {
                xs[2]
            }
        }
        MachSem::ExtendTo | MachSem::TruncTo | MachSem::Reinterpret | MachSem::Splat => {
            result.wrap(xs[0])
        }
        MachSem::SatCastTo => result.saturate(xs[0]),
        MachSem::PackSatSignedTo => result.saturate(tys[0].with_signed().wrap(xs[0])),
        MachSem::Fpir(op) => fpir_op_lane(op, xs, tys, result),
        MachSem::MulHigh => result.wrap((xs[0] * xs[1]) >> tys[0].bits()),
        // The widening width constraint is a shape check; the lane
        // arithmetic is identical to the non-widening form.
        MachSem::MulAcc | MachSem::WideningMulAcc => {
            result.wrap(xs[0].wrapping_add(xs[1].wrapping_mul(xs[2])))
        }
        MachSem::MulPairsAdd => result.wrap(xs[0] * xs[1] + xs[2] * xs[3]),
        MachSem::Mpa => result.wrap(xs[0] * xs[2] + xs[1] * xs[3]),
        MachSem::MpaAcc => result.wrap(xs[0] + xs[1] * xs[3] + xs[2] * xs[4]),
        MachSem::DotAcc4 => {
            let mut acc = xs[0];
            for k in 0..4 {
                acc += xs[1 + k] * xs[5 + k];
            }
            result.wrap(acc)
        }
        MachSem::ShrRndSatNarrow => {
            let tys2 = [tys[0], tys[1]];
            result.saturate(fpir_op_lane(FpirOp::RoundingShr, &[xs[0], xs[1]], &tys2, tys[0]))
        }
        MachSem::ShrNarrow => result.wrap(bin_op_lane(BinOp::Shr, xs[0], xs[1], tys[0])),
        MachSem::QRDMulH => {
            let t = tys[0];
            fpir_op_lane(
                FpirOp::RoundingMulShr,
                &[xs[0], xs[1], t.bits() as i128 - 1],
                &[t, t, t],
                result,
            )
        }
    }
}

/// A compiled whole-strip evaluator: one fused-kernel step's semantics
/// with every dispatch resolved ahead of time. Called as
/// `f(operand_lane_slices, output_lane_slice)`; all slices share one
/// length.
///
/// `Arc` so compiled kernels stay cheaply cloneable and shareable across
/// worker threads.
pub type SemSliceFn = std::sync::Arc<dyn Fn(&[&[i128]], &mut [i128]) + Send + Sync>;

/// Compile one instruction's semantics into a monomorphic vector-loop
/// closure over raw lane slices.
///
/// [`eval_sem_into`] re-matches on the semantics (and the inner `BinOp` /
/// `CmpOp` / `FpirOp`), re-checks shapes, and re-reads operand types on
/// *every* call. Fused superinstruction kernels in `fpir-sim` run their
/// absorbed steps back-to-back per image strip, so they pay that dispatch
/// once here, at fuse time: every arm hands a *literal* op to the same
/// `#[inline]` lane helpers [`sem_lane`] and `eval_sem_into` use, with
/// the operand/result element types captured, so the helper's internal
/// match folds away and the closure's tight lane loop is bit-identical
/// to `eval_sem_into` by construction — pinned by the
/// `sem_lane_matches_eval_sem_into` test below.
///
/// # Preconditions
///
/// As [`sem_lane`]: shape checks are not repeated. `tys.len() ==
/// sem.arity()`, and the returned closure must only see `xs` of that
/// arity with every operand slice exactly `out.len()` lanes long.
pub fn sem_slice_fn(sem: MachSem, tys: &[ScalarType], result: ScalarType) -> SemSliceFn {
    use std::sync::Arc;
    match sem {
        MachSem::Bin(op) => {
            let t = tys[0];
            macro_rules! bin_fn {
                ($($v:ident),*) => {
                    match op {
                        $(BinOp::$v => Arc::new(move |xs: &[&[i128]], out: &mut [i128]| {
                            for (o, (&x, &y)) in out.iter_mut().zip(xs[0].iter().zip(xs[1])) {
                                *o = bin_op_lane(BinOp::$v, x, y, t);
                            }
                        }) as SemSliceFn,)*
                    }
                };
            }
            bin_fn!(Add, Sub, Mul, Div, Mod, Min, Max, Shl, Shr, And, Or, Xor)
        }
        MachSem::Cmp(op) => {
            let t = tys[0];
            macro_rules! cmp_fn {
                ($($v:ident),*) => {
                    match op {
                        $(CmpOp::$v => Arc::new(move |xs: &[&[i128]], out: &mut [i128]| {
                            for (o, (&x, &y)) in out.iter_mut().zip(xs[0].iter().zip(xs[1])) {
                                *o = cmp_op_lane(CmpOp::$v, x, y, t);
                            }
                        }) as SemSliceFn,)*
                    }
                };
            }
            cmp_fn!(Eq, Ne, Lt, Le, Gt, Ge)
        }
        MachSem::Select => Arc::new(|xs: &[&[i128]], out: &mut [i128]| {
            for (o, ((&m, &x), &y)) in out.iter_mut().zip(xs[0].iter().zip(xs[1]).zip(xs[2])) {
                *o = if m != 0 { x } else { y };
            }
        }),
        MachSem::ExtendTo | MachSem::TruncTo | MachSem::Reinterpret | MachSem::Splat => {
            Arc::new(move |xs: &[&[i128]], out: &mut [i128]| {
                for (o, &x) in out.iter_mut().zip(xs[0]) {
                    *o = result.wrap(x);
                }
            })
        }
        MachSem::SatCastTo => Arc::new(move |xs: &[&[i128]], out: &mut [i128]| {
            for (o, &x) in out.iter_mut().zip(xs[0]) {
                *o = result.saturate(x);
            }
        }),
        MachSem::PackSatSignedTo => {
            let signed = tys[0].with_signed();
            Arc::new(move |xs: &[&[i128]], out: &mut [i128]| {
                for (o, &x) in out.iter_mut().zip(xs[0]) {
                    *o = result.saturate(signed.wrap(x));
                }
            })
        }
        MachSem::Fpir(op) => {
            // Capture the operand types in a fixed array (max FPIR arity
            // is 3) so the closure stays allocation-free; specialize the
            // loop shape per arity so the zips elide bounds checks.
            let mut ta = [result; 4];
            ta[..tys.len()].copy_from_slice(tys);
            let n = tys.len();
            macro_rules! fpir_arm {
                ($op:expr) => {{
                    let op = $op;
                    match n {
                        1 => Arc::new(move |xs: &[&[i128]], out: &mut [i128]| {
                            for (o, &x) in out.iter_mut().zip(xs[0]) {
                                *o = fpir_op_lane(op, &[x], &ta[..1], result);
                            }
                        }) as SemSliceFn,
                        2 => Arc::new(move |xs: &[&[i128]], out: &mut [i128]| {
                            for (o, (&x, &y)) in out.iter_mut().zip(xs[0].iter().zip(xs[1])) {
                                *o = fpir_op_lane(op, &[x, y], &ta[..2], result);
                            }
                        }) as SemSliceFn,
                        _ => Arc::new(move |xs: &[&[i128]], out: &mut [i128]| {
                            for (o, ((&x, &y), &z)) in
                                out.iter_mut().zip(xs[0].iter().zip(xs[1]).zip(xs[2]))
                            {
                                *o = fpir_op_lane(op, &[x, y, z], &ta[..3], result);
                            }
                        }) as SemSliceFn,
                    }
                }};
            }
            macro_rules! fpir_fn {
                ($($v:ident),*) => {
                    match op {
                        $(FpirOp::$v => fpir_arm!(FpirOp::$v),)*
                        FpirOp::SaturatingCast(to) => fpir_arm!(FpirOp::SaturatingCast(to)),
                    }
                };
            }
            fpir_fn!(
                WideningAdd,
                WideningSub,
                WideningMul,
                WideningShl,
                WideningShr,
                ExtendingAdd,
                ExtendingSub,
                ExtendingMul,
                Abs,
                Absd,
                SaturatingNarrow,
                SaturatingAdd,
                SaturatingSub,
                HalvingAdd,
                HalvingSub,
                RoundingHalvingAdd,
                RoundingShl,
                RoundingShr,
                MulShr,
                RoundingMulShr,
                SaturatingShl
            )
        }
        MachSem::MulHigh => {
            let bits = tys[0].bits();
            Arc::new(move |xs: &[&[i128]], out: &mut [i128]| {
                for (o, (&x, &y)) in out.iter_mut().zip(xs[0].iter().zip(xs[1])) {
                    *o = result.wrap((x * y) >> bits);
                }
            })
        }
        MachSem::MulAcc | MachSem::WideningMulAcc => {
            Arc::new(move |xs: &[&[i128]], out: &mut [i128]| {
                for (o, ((&c, &x), &y)) in out.iter_mut().zip(xs[0].iter().zip(xs[1]).zip(xs[2])) {
                    *o = result.wrap(c.wrapping_add(x.wrapping_mul(y)));
                }
            })
        }
        MachSem::MulPairsAdd => Arc::new(move |xs: &[&[i128]], out: &mut [i128]| {
            for i in 0..out.len() {
                out[i] = result.wrap(xs[0][i] * xs[1][i] + xs[2][i] * xs[3][i]);
            }
        }),
        MachSem::Mpa => Arc::new(move |xs: &[&[i128]], out: &mut [i128]| {
            for i in 0..out.len() {
                out[i] = result.wrap(xs[0][i] * xs[2][i] + xs[1][i] * xs[3][i]);
            }
        }),
        MachSem::MpaAcc => Arc::new(move |xs: &[&[i128]], out: &mut [i128]| {
            for i in 0..out.len() {
                out[i] = result.wrap(xs[0][i] + xs[1][i] * xs[3][i] + xs[2][i] * xs[4][i]);
            }
        }),
        MachSem::DotAcc4 => Arc::new(move |xs: &[&[i128]], out: &mut [i128]| {
            for i in 0..out.len() {
                let mut acc = xs[0][i];
                for k in 0..4 {
                    acc += xs[1 + k][i] * xs[5 + k][i];
                }
                out[i] = result.wrap(acc);
            }
        }),
        MachSem::ShrRndSatNarrow => {
            let tys2 = [tys[0], tys[1]];
            let t = tys[0];
            Arc::new(move |xs: &[&[i128]], out: &mut [i128]| {
                for (o, (&x, &y)) in out.iter_mut().zip(xs[0].iter().zip(xs[1])) {
                    *o = result.saturate(fpir_op_lane(FpirOp::RoundingShr, &[x, y], &tys2, t));
                }
            })
        }
        MachSem::ShrNarrow => {
            let t = tys[0];
            Arc::new(move |xs: &[&[i128]], out: &mut [i128]| {
                for (o, (&x, &y)) in out.iter_mut().zip(xs[0].iter().zip(xs[1])) {
                    *o = result.wrap(bin_op_lane(BinOp::Shr, x, y, t));
                }
            })
        }
        MachSem::QRDMulH => {
            let t = tys[0];
            Arc::new(move |xs: &[&[i128]], out: &mut [i128]| {
                for (o, (&x, &y)) in out.iter_mut().zip(xs[0].iter().zip(xs[1])) {
                    *o = fpir_op_lane(
                        FpirOp::RoundingMulShr,
                        &[x, y, t.bits() as i128 - 1],
                        &[t, t, t],
                        result,
                    );
                }
            })
        }
    }
}

/// Compile one step with a *splat-constant* operand captured as a
/// scalar register: the returned closure sees the same `xs` layout as
/// [`sem_slice_fn`] — the constant's pool slice is still staged at
/// position `k`, exactly as the audited pass sources say — but the
/// lane loop never reads it, so the strip runs with one fewer input
/// stream. Every lane goes through the same literal-op helpers as
/// [`sem_slice_fn`], and the skipped slice holds `c` in every lane, so
/// the result is bit-identical by construction — pinned by
/// `splat_capture_matches_streamed_constant` below.
///
/// Returns `None` for semantics without a captured-scalar loop; the
/// caller keeps the streamed [`sem_slice_fn`] kernel.
///
/// # Preconditions
///
/// As [`sem_slice_fn`], plus `k < sem.arity()` and `c` equal to every
/// lane of the operand the closure skips.
pub fn sem_slice_fn_splat(
    sem: MachSem,
    tys: &[ScalarType],
    result: ScalarType,
    k: usize,
    c: i128,
) -> Option<SemSliceFn> {
    use std::sync::Arc;
    Some(match sem {
        MachSem::Bin(op) => {
            let t = tys[0];
            macro_rules! bin_splat {
                ($($v:ident),*) => {
                    match op {
                        $(BinOp::$v => if k == 0 {
                            Arc::new(move |xs: &[&[i128]], out: &mut [i128]| {
                                for (o, &y) in out.iter_mut().zip(xs[1]) {
                                    *o = bin_op_lane(BinOp::$v, c, y, t);
                                }
                            }) as SemSliceFn
                        } else {
                            Arc::new(move |xs: &[&[i128]], out: &mut [i128]| {
                                for (o, &x) in out.iter_mut().zip(xs[0]) {
                                    *o = bin_op_lane(BinOp::$v, x, c, t);
                                }
                            }) as SemSliceFn
                        },)*
                    }
                };
            }
            bin_splat!(Add, Sub, Mul, Div, Mod, Min, Max, Shl, Shr, And, Or, Xor)
        }
        MachSem::Cmp(op) => {
            let t = tys[0];
            macro_rules! cmp_splat {
                ($($v:ident),*) => {
                    match op {
                        $(CmpOp::$v => if k == 0 {
                            Arc::new(move |xs: &[&[i128]], out: &mut [i128]| {
                                for (o, &y) in out.iter_mut().zip(xs[1]) {
                                    *o = cmp_op_lane(CmpOp::$v, c, y, t);
                                }
                            }) as SemSliceFn
                        } else {
                            Arc::new(move |xs: &[&[i128]], out: &mut [i128]| {
                                for (o, &x) in out.iter_mut().zip(xs[0]) {
                                    *o = cmp_op_lane(CmpOp::$v, x, c, t);
                                }
                            }) as SemSliceFn
                        },)*
                    }
                };
            }
            cmp_splat!(Eq, Ne, Lt, Le, Gt, Ge)
        }
        MachSem::Fpir(op) if tys.len() == 2 => {
            let ta = [tys[0], tys[1]];
            macro_rules! fpir_splat2 {
                ($op:expr) => {{
                    let op = $op;
                    if k == 0 {
                        Arc::new(move |xs: &[&[i128]], out: &mut [i128]| {
                            for (o, &y) in out.iter_mut().zip(xs[1]) {
                                *o = fpir_op_lane(op, &[c, y], &ta, result);
                            }
                        }) as SemSliceFn
                    } else {
                        Arc::new(move |xs: &[&[i128]], out: &mut [i128]| {
                            for (o, &x) in out.iter_mut().zip(xs[0]) {
                                *o = fpir_op_lane(op, &[x, c], &ta, result);
                            }
                        }) as SemSliceFn
                    }
                }};
            }
            macro_rules! fpir_splat2_fn {
                ($($v:ident),*) => {
                    match op {
                        $(FpirOp::$v => fpir_splat2!(FpirOp::$v),)*
                        FpirOp::SaturatingCast(to) => fpir_splat2!(FpirOp::SaturatingCast(to)),
                    }
                };
            }
            fpir_splat2_fn!(
                WideningAdd,
                WideningSub,
                WideningMul,
                WideningShl,
                WideningShr,
                ExtendingAdd,
                ExtendingSub,
                ExtendingMul,
                Abs,
                Absd,
                SaturatingNarrow,
                SaturatingAdd,
                SaturatingSub,
                HalvingAdd,
                HalvingSub,
                RoundingHalvingAdd,
                RoundingShl,
                RoundingShr,
                MulShr,
                RoundingMulShr,
                SaturatingShl
            )
        }
        MachSem::MulHigh => {
            let bits = tys[0].bits();
            if k == 0 {
                Arc::new(move |xs: &[&[i128]], out: &mut [i128]| {
                    for (o, &y) in out.iter_mut().zip(xs[1]) {
                        *o = result.wrap((c * y) >> bits);
                    }
                })
            } else {
                Arc::new(move |xs: &[&[i128]], out: &mut [i128]| {
                    for (o, &x) in out.iter_mut().zip(xs[0]) {
                        *o = result.wrap((x * c) >> bits);
                    }
                })
            }
        }
        MachSem::MulAcc | MachSem::WideningMulAcc => match k {
            0 => Arc::new(move |xs: &[&[i128]], out: &mut [i128]| {
                for (o, (&x, &y)) in out.iter_mut().zip(xs[1].iter().zip(xs[2])) {
                    *o = result.wrap(c.wrapping_add(x.wrapping_mul(y)));
                }
            }),
            1 => Arc::new(move |xs: &[&[i128]], out: &mut [i128]| {
                for (o, (&a, &y)) in out.iter_mut().zip(xs[0].iter().zip(xs[2])) {
                    *o = result.wrap(a.wrapping_add(c.wrapping_mul(y)));
                }
            }),
            _ => Arc::new(move |xs: &[&[i128]], out: &mut [i128]| {
                for (o, (&a, &x)) in out.iter_mut().zip(xs[0].iter().zip(xs[1])) {
                    *o = result.wrap(a.wrapping_add(x.wrapping_mul(c)));
                }
            }),
        },
        MachSem::ShrRndSatNarrow => {
            let tys2 = [tys[0], tys[1]];
            let t = tys[0];
            if k == 0 {
                Arc::new(move |xs: &[&[i128]], out: &mut [i128]| {
                    for (o, &y) in out.iter_mut().zip(xs[1]) {
                        *o = result.saturate(fpir_op_lane(FpirOp::RoundingShr, &[c, y], &tys2, t));
                    }
                })
            } else {
                Arc::new(move |xs: &[&[i128]], out: &mut [i128]| {
                    for (o, &x) in out.iter_mut().zip(xs[0]) {
                        *o = result.saturate(fpir_op_lane(FpirOp::RoundingShr, &[x, c], &tys2, t));
                    }
                })
            }
        }
        MachSem::ShrNarrow => {
            let t = tys[0];
            if k == 0 {
                Arc::new(move |xs: &[&[i128]], out: &mut [i128]| {
                    for (o, &y) in out.iter_mut().zip(xs[1]) {
                        *o = result.wrap(bin_op_lane(BinOp::Shr, c, y, t));
                    }
                })
            } else {
                Arc::new(move |xs: &[&[i128]], out: &mut [i128]| {
                    for (o, &x) in out.iter_mut().zip(xs[0]) {
                        *o = result.wrap(bin_op_lane(BinOp::Shr, x, c, t));
                    }
                })
            }
        }
        _ => return None,
    })
}

/// Lane-wise producer classes a fused pair loop can inline. `Bin` and
/// `Cmp` compose with their op *monomorphized* through the macros in
/// [`sem_slice_fn_pair`] — handing a runtime op to `bin_op_lane` inside
/// a hot lane loop costs far more than the scratch round trip it saves
/// (measured: it regressed the fused engine below the linked baseline),
/// so only literal-op loops are emitted. FPIR ops compose with the op
/// captured and dispatched per lane — exactly how [`sem_slice_fn`]'s own
/// FPIR loops already run.
#[derive(Clone, Copy)]
enum PairProducer {
    /// `Bin(op)` at the captured operand type.
    Bin(BinOp, ScalarType),
    /// `Cmp(op)` at the captured operand type (composes into `Select`).
    Cmp(CmpOp, ScalarType),
    /// Wrapping conversion to the captured result type
    /// (`ExtendTo`/`TruncTo`/`Reinterpret`/`Splat`).
    Wrap(ScalarType),
    /// Arity ≤ 3 FPIR op: op, operand types, arity, result type.
    Fpir(FpirOp, [ScalarType; 3], u8, ScalarType),
}

/// Consumer classes a fused pair loop can inline (see [`PairProducer`]).
#[derive(Clone, Copy)]
enum PairConsumer {
    /// `Bin(op)` at the captured operand type.
    Bin(BinOp),
    /// Wrapping conversion to the captured result type.
    Wrap(ScalarType),
    /// `select(mask, a, b)` — the producer must feed the mask.
    Select,
}

impl PairProducer {
    fn of(sem: MachSem, tys: &[ScalarType], result: ScalarType) -> Option<PairProducer> {
        Some(match sem {
            MachSem::Bin(op) => PairProducer::Bin(op, tys[0]),
            MachSem::Cmp(op) => PairProducer::Cmp(op, tys[0]),
            MachSem::ExtendTo | MachSem::TruncTo | MachSem::Reinterpret | MachSem::Splat => {
                PairProducer::Wrap(result)
            }
            MachSem::Fpir(op) if tys.len() <= 3 => {
                let mut ta = [result; 3];
                ta[..tys.len()].copy_from_slice(tys);
                PairProducer::Fpir(op, ta, tys.len() as u8, result)
            }
            _ => return None,
        })
    }
}

impl PairConsumer {
    fn of(sem: MachSem, result: ScalarType) -> Option<PairConsumer> {
        Some(match sem {
            MachSem::Bin(op) => PairConsumer::Bin(op),
            MachSem::ExtendTo | MachSem::TruncTo | MachSem::Reinterpret | MachSem::Splat => {
                PairConsumer::Wrap(result)
            }
            MachSem::Select => PairConsumer::Select,
            _ => return None,
        })
    }
}

/// Compile a *fused pair*: a single-use producer absorbed into operand
/// `k` of its consumer, evaluated in one strip loop with the
/// intermediate held in a register instead of a scratch row.
///
/// Returns `None` when the combination is not one of the supported
/// lane-wise families ([`PairProducer`] × [`PairConsumer`]) — the caller
/// then keeps the two separate passes. Per pair, the loop body is the
/// two corresponding [`sem_slice_fn`] loop bodies nested with *literal*
/// ops (via the macros below), so the composition is bit-identical to
/// running the producer into a temporary strip and the consumer after
/// it — pinned by `fused_pairs_match_sequential_passes`.
///
/// # Preconditions
///
/// As [`sem_slice_fn`]: shape checks are not repeated. `k <
/// consumer.arity()`; the returned closure reads the producer's operands
/// first, then the consumer's remaining operands (in order, with operand
/// `k` removed), every slice exactly `out.len()` lanes long.
pub fn sem_slice_fn_pair(
    p_sem: MachSem,
    p_tys: &[ScalarType],
    p_result: ScalarType,
    c_sem: MachSem,
    c_tys: &[ScalarType],
    c_result: ScalarType,
    k: usize,
) -> Option<SemSliceFn> {
    use std::sync::Arc;
    let p = PairProducer::of(p_sem, p_tys, p_result)?;
    let c = PairConsumer::of(c_sem, c_result)?;
    // In every consumer, the operand type at position `k` is the
    // producer's result type, and a `Bin`/`Select` consumer's lane type
    // is uniform — so the consumer's captured type is its result type
    // for `Wrap`, and the operand type equals `p_result` for `Bin`
    // lane arithmetic. `Bin` consumers operate at their operand type,
    // which for the chains the fuser builds equals `c_tys[0]`; that in
    // turn is `p_result` when `k == 0`. Capture the operand type
    // explicitly to be exact:
    let ct = match c_sem {
        MachSem::Bin(_) => c_tys[0],
        _ => c_result,
    };

    /// Expand `$mk!([$pre,] Op)` for the literal `BinOp` matching `$op`.
    macro_rules! for_each_bin_op {
        ($op:expr, $mk:ident $(, $pre:ident)?) => {
            match $op {
                BinOp::Add => $mk!($($pre,)? Add),
                BinOp::Sub => $mk!($($pre,)? Sub),
                BinOp::Mul => $mk!($($pre,)? Mul),
                BinOp::Div => $mk!($($pre,)? Div),
                BinOp::Mod => $mk!($($pre,)? Mod),
                BinOp::Min => $mk!($($pre,)? Min),
                BinOp::Max => $mk!($($pre,)? Max),
                BinOp::Shl => $mk!($($pre,)? Shl),
                BinOp::Shr => $mk!($($pre,)? Shr),
                BinOp::And => $mk!($($pre,)? And),
                BinOp::Or => $mk!($($pre,)? Or),
                BinOp::Xor => $mk!($($pre,)? Xor),
            }
        };
    }

    Some(match (p, c) {
        // ---- cast -> cast: one wrap feeding another ------------------
        (PairProducer::Wrap(pr), PairConsumer::Wrap(cr)) => {
            Arc::new(move |xs: &[&[i128]], out: &mut [i128]| {
                for (o, &x) in out.iter_mut().zip(xs[0]) {
                    *o = cr.wrap(pr.wrap(x));
                }
            }) as SemSliceFn
        }
        // ---- cast -> binary ------------------------------------------
        (PairProducer::Wrap(pr), PairConsumer::Bin(cop)) => {
            macro_rules! wrap_bin {
                ($C:ident) => {
                    Arc::new(move |xs: &[&[i128]], out: &mut [i128]| {
                        if k == 0 {
                            for (o, (&x, &u)) in out.iter_mut().zip(xs[0].iter().zip(xs[1])) {
                                *o = bin_op_lane(BinOp::$C, pr.wrap(x), u, ct);
                            }
                        } else {
                            for (o, (&x, &u)) in out.iter_mut().zip(xs[0].iter().zip(xs[1])) {
                                *o = bin_op_lane(BinOp::$C, u, pr.wrap(x), ct);
                            }
                        }
                    }) as SemSliceFn
                };
            }
            for_each_bin_op!(cop, wrap_bin)
        }
        // ---- binary -> cast ------------------------------------------
        (PairProducer::Bin(pop, pt), PairConsumer::Wrap(cr)) => {
            macro_rules! bin_wrap {
                ($P:ident) => {
                    Arc::new(move |xs: &[&[i128]], out: &mut [i128]| {
                        for (o, (&x, &y)) in out.iter_mut().zip(xs[0].iter().zip(xs[1])) {
                            *o = cr.wrap(bin_op_lane(BinOp::$P, x, y, pt));
                        }
                    }) as SemSliceFn
                };
            }
            for_each_bin_op!(pop, bin_wrap)
        }
        // ---- binary -> binary: the dominant chain shape --------------
        (PairProducer::Bin(pop, pt), PairConsumer::Bin(cop)) => {
            macro_rules! bin_bin {
                ($P:ident, $C:ident) => {
                    Arc::new(move |xs: &[&[i128]], out: &mut [i128]| {
                        // Re-sliced indexed loops: multi-way `zip` defeats
                        // the unroller for cheap ops, and this family is
                        // the hottest merged shape.
                        let (x, y, u) =
                            (&xs[0][..out.len()], &xs[1][..out.len()], &xs[2][..out.len()]);
                        if k == 0 {
                            for i in 0..out.len() {
                                out[i] = bin_op_lane(
                                    BinOp::$C,
                                    bin_op_lane(BinOp::$P, x[i], y[i], pt),
                                    u[i],
                                    ct,
                                );
                            }
                        } else {
                            for i in 0..out.len() {
                                out[i] = bin_op_lane(
                                    BinOp::$C,
                                    u[i],
                                    bin_op_lane(BinOp::$P, x[i], y[i], pt),
                                    ct,
                                );
                            }
                        }
                    }) as SemSliceFn
                };
            }
            match pop {
                BinOp::Add => for_each_bin_op!(cop, bin_bin, Add),
                BinOp::Sub => for_each_bin_op!(cop, bin_bin, Sub),
                BinOp::Mul => for_each_bin_op!(cop, bin_bin, Mul),
                BinOp::Div => for_each_bin_op!(cop, bin_bin, Div),
                BinOp::Mod => for_each_bin_op!(cop, bin_bin, Mod),
                BinOp::Min => for_each_bin_op!(cop, bin_bin, Min),
                BinOp::Max => for_each_bin_op!(cop, bin_bin, Max),
                BinOp::Shl => for_each_bin_op!(cop, bin_bin, Shl),
                BinOp::Shr => for_each_bin_op!(cop, bin_bin, Shr),
                BinOp::And => for_each_bin_op!(cop, bin_bin, And),
                BinOp::Or => for_each_bin_op!(cop, bin_bin, Or),
                BinOp::Xor => for_each_bin_op!(cop, bin_bin, Xor),
            }
        }
        // ---- FPIR -> binary ------------------------------------------
        // The FPIR op stays captured and dispatches per lane — the same
        // shape as sem_slice_fn's own FPIR loops.
        (PairProducer::Fpir(pop, pta, pn, pr), PairConsumer::Bin(cop)) => {
            macro_rules! fpir_bin {
                ($C:ident) => {{
                    match pn {
                        1 => Arc::new(move |xs: &[&[i128]], out: &mut [i128]| {
                            if k == 0 {
                                for (o, (&x, &u)) in out.iter_mut().zip(xs[0].iter().zip(xs[1])) {
                                    let t = fpir_op_lane(pop, &[x], &pta[..1], pr);
                                    *o = bin_op_lane(BinOp::$C, t, u, ct);
                                }
                            } else {
                                for (o, (&x, &u)) in out.iter_mut().zip(xs[0].iter().zip(xs[1])) {
                                    let t = fpir_op_lane(pop, &[x], &pta[..1], pr);
                                    *o = bin_op_lane(BinOp::$C, u, t, ct);
                                }
                            }
                        }) as SemSliceFn,
                        2 => Arc::new(move |xs: &[&[i128]], out: &mut [i128]| {
                            if k == 0 {
                                for (o, ((&x, &y), &u)) in
                                    out.iter_mut().zip(xs[0].iter().zip(xs[1]).zip(xs[2]))
                                {
                                    let t = fpir_op_lane(pop, &[x, y], &pta[..2], pr);
                                    *o = bin_op_lane(BinOp::$C, t, u, ct);
                                }
                            } else {
                                for (o, ((&x, &y), &u)) in
                                    out.iter_mut().zip(xs[0].iter().zip(xs[1]).zip(xs[2]))
                                {
                                    let t = fpir_op_lane(pop, &[x, y], &pta[..2], pr);
                                    *o = bin_op_lane(BinOp::$C, u, t, ct);
                                }
                            }
                        }) as SemSliceFn,
                        _ => Arc::new(move |xs: &[&[i128]], out: &mut [i128]| {
                            if k == 0 {
                                for (o, (((&x, &y), &z), &u)) in out
                                    .iter_mut()
                                    .zip(xs[0].iter().zip(xs[1]).zip(xs[2]).zip(xs[3]))
                                {
                                    let t = fpir_op_lane(pop, &[x, y, z], &pta[..3], pr);
                                    *o = bin_op_lane(BinOp::$C, t, u, ct);
                                }
                            } else {
                                for (o, (((&x, &y), &z), &u)) in out
                                    .iter_mut()
                                    .zip(xs[0].iter().zip(xs[1]).zip(xs[2]).zip(xs[3]))
                                {
                                    let t = fpir_op_lane(pop, &[x, y, z], &pta[..3], pr);
                                    *o = bin_op_lane(BinOp::$C, u, t, ct);
                                }
                            }
                        }) as SemSliceFn,
                    }
                }};
            }
            for_each_bin_op!(cop, fpir_bin)
        }
        // ---- FPIR -> cast --------------------------------------------
        (PairProducer::Fpir(pop, pta, pn, pr), PairConsumer::Wrap(cr)) => match pn {
            1 => Arc::new(move |xs: &[&[i128]], out: &mut [i128]| {
                for (o, &x) in out.iter_mut().zip(xs[0]) {
                    *o = cr.wrap(fpir_op_lane(pop, &[x], &pta[..1], pr));
                }
            }),
            2 => Arc::new(move |xs: &[&[i128]], out: &mut [i128]| {
                for (o, (&x, &y)) in out.iter_mut().zip(xs[0].iter().zip(xs[1])) {
                    *o = cr.wrap(fpir_op_lane(pop, &[x, y], &pta[..2], pr));
                }
            }),
            _ => Arc::new(move |xs: &[&[i128]], out: &mut [i128]| {
                for (o, ((&x, &y), &z)) in out.iter_mut().zip(xs[0].iter().zip(xs[1]).zip(xs[2])) {
                    *o = cr.wrap(fpir_op_lane(pop, &[x, y, z], &pta[..3], pr));
                }
            }),
        },
        // ---- compare -> select: the mask never touches memory --------
        (PairProducer::Cmp(pop, pt), PairConsumer::Select) if k == 0 => {
            macro_rules! cmp_select {
                ($P:ident) => {
                    Arc::new(move |xs: &[&[i128]], out: &mut [i128]| {
                        for (o, (((&x, &y), &u), &v)) in
                            out.iter_mut().zip(xs[0].iter().zip(xs[1]).zip(xs[2]).zip(xs[3]))
                        {
                            *o = if cmp_op_lane(CmpOp::$P, x, y, pt) != 0 { u } else { v };
                        }
                    }) as SemSliceFn
                };
            }
            match pop {
                CmpOp::Eq => cmp_select!(Eq),
                CmpOp::Ne => cmp_select!(Ne),
                CmpOp::Lt => cmp_select!(Lt),
                CmpOp::Le => cmp_select!(Le),
                CmpOp::Gt => cmp_select!(Gt),
                CmpOp::Ge => cmp_select!(Ge),
            }
        }
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpir::types::{ScalarType as S, VectorType as V};

    fn v(t: V, xs: &[i128]) -> Value {
        Value::new(t, xs.to_vec())
    }

    #[test]
    fn pack_sat_signed_reinterprets() {
        // vpackuswb-style: u16 50000 is i16 -15536, which saturates to 0.
        let t16 = V::new(S::U16, 2);
        let t8 = V::new(S::U8, 2);
        let out = eval_sem(MachSem::PackSatSignedTo, &[v(t16, &[50000, 300])], t8).unwrap();
        assert_eq!(out.lanes(), &[0, 255]);
        // A plain saturating cast would give 255 for both.
        let out = eval_sem(MachSem::SatCastTo, &[v(t16, &[50000, 300])], t8).unwrap();
        assert_eq!(out.lanes(), &[255, 255]);
    }

    #[test]
    fn widening_mul_acc() {
        let t16 = V::new(S::U16, 2);
        let t8 = V::new(S::U8, 2);
        let out = eval_sem(
            MachSem::WideningMulAcc,
            &[v(t16, &[100, 65535]), v(t8, &[10, 2]), v(t8, &[10, 1])],
            t16,
        )
        .unwrap();
        assert_eq!(out.lanes(), &[200, 1]); // 65535 + 2 wraps.
    }

    #[test]
    fn dot_acc4_accumulates() {
        let t32 = V::new(S::U32, 1);
        let t8 = V::new(S::U8, 1);
        let args: Vec<Value> = std::iter::once(v(t32, &[5]))
            .chain((0..4).map(|i| v(t8, &[i + 1])))
            .chain((0..4).map(|_| v(t8, &[10])))
            .collect();
        let out = eval_sem(MachSem::DotAcc4, &args, t32).unwrap();
        assert_eq!(out.lanes(), &[5 + 10 * (1 + 2 + 3 + 4)]);
    }

    #[test]
    fn dot_acc4_validates_widths() {
        let t16 = V::new(S::U16, 1);
        let t8 = V::new(S::U8, 1);
        let args: Vec<Value> =
            std::iter::once(v(t16, &[5])).chain((0..8).map(|_| v(t8, &[1]))).collect();
        assert!(eval_sem(MachSem::DotAcc4, &args, t16).is_err());
    }

    #[test]
    fn mul_high_matches_shifted_product() {
        let t = V::new(S::I16, 1);
        let out = eval_sem(MachSem::MulHigh, &[v(t, &[30000]), v(t, &[30000])], t).unwrap();
        assert_eq!(out.lanes(), &[(30000 * 30000) >> 16]);
    }

    #[test]
    fn arity_is_checked() {
        let t = V::new(S::U8, 1);
        assert!(eval_sem(MachSem::Select, &[v(t, &[1])], t).is_err());
    }

    #[test]
    fn sem_lane_matches_eval_sem_into() {
        // Every MachSem variant, evaluated whole-vector by eval_sem_into
        // and lane-by-lane by sem_lane, must agree bit-for-bit. A small
        // LCG fills the lanes with canonical (wrapped) values per type.
        let mut state: u64 = 0x243f_6a88_85a3_08d3;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 16) as i128
        };
        const LANES: u32 = 8;
        // (sem, operand element types, result element type); lane counts
        // are uniform — exactly the shape the fused engine requires.
        let fp = |op| MachSem::Fpir(op);
        let cases: Vec<(MachSem, Vec<S>, S)> = vec![
            (MachSem::Bin(BinOp::Add), vec![S::I16, S::I16], S::I16),
            (MachSem::Bin(BinOp::Div), vec![S::I16, S::I16], S::I16),
            (MachSem::Bin(BinOp::Shr), vec![S::U32, S::U32], S::U32),
            (MachSem::Cmp(CmpOp::Lt), vec![S::I8, S::I8], S::I8),
            (MachSem::Select, vec![S::U8, S::U8, S::U8], S::U8),
            (MachSem::ExtendTo, vec![S::U8], S::U16),
            (MachSem::TruncTo, vec![S::U16], S::U8),
            (MachSem::Reinterpret, vec![S::I16], S::U16),
            (MachSem::SatCastTo, vec![S::I32], S::U8),
            (MachSem::PackSatSignedTo, vec![S::U16], S::U8),
            (MachSem::MulHigh, vec![S::I16, S::I16], S::I16),
            (MachSem::MulAcc, vec![S::I32, S::I32, S::I32], S::I32),
            (MachSem::WideningMulAcc, vec![S::U16, S::U8, S::U8], S::U16),
            (MachSem::MulPairsAdd, vec![S::I32; 4], S::I32),
            (MachSem::Mpa, vec![S::I32; 4], S::I32),
            (MachSem::MpaAcc, vec![S::I32; 5], S::I32),
            (
                MachSem::DotAcc4,
                vec![S::U32, S::U8, S::U8, S::U8, S::U8, S::U8, S::U8, S::U8, S::U8],
                S::U32,
            ),
            (MachSem::ShrRndSatNarrow, vec![S::I16, S::I16], S::I8),
            (MachSem::ShrNarrow, vec![S::I16, S::I16], S::I8),
            (MachSem::QRDMulH, vec![S::I16, S::I16], S::I16),
            (MachSem::Splat, vec![S::U8], S::U8),
            (fp(FpirOp::WideningAdd), vec![S::U8, S::U8], S::U16),
            (fp(FpirOp::SaturatingAdd), vec![S::I16, S::I16], S::I16),
            (fp(FpirOp::RoundingHalvingAdd), vec![S::U8, S::U8], S::U8),
            (fp(FpirOp::Absd), vec![S::U8, S::U8], S::U8),
            (fp(FpirOp::Abs), vec![S::I16], S::I16),
            (fp(FpirOp::RoundingShr), vec![S::I16, S::I16], S::I16),
            (fp(FpirOp::RoundingMulShr), vec![S::I16, S::I16, S::I16], S::I16),
        ];
        for (sem, arg_tys, result) in cases {
            assert_eq!(arg_tys.len(), sem.arity(), "case shape for {sem:?}");
            let args: Vec<Value> = arg_tys
                .iter()
                .map(|&t| {
                    let vt = V::new(t, LANES);
                    Value::new(vt, (0..LANES).map(|_| t.wrap(next())).collect())
                })
                .collect();
            let rty = V::new(result, LANES);
            let whole = eval_sem(sem, &args, rty).unwrap_or_else(|e| panic!("{sem:?}: {e}"));
            for lane in 0..LANES as usize {
                let xs: Vec<i128> = args.iter().map(|a| a.lane(lane)).collect();
                let got = sem_lane(sem, &xs, &arg_tys, result);
                assert_eq!(got, whole.lane(lane), "{sem:?} lane {lane}");
            }
            // The compiled whole-strip kernel must agree too.
            let compiled = sem_slice_fn(sem, &arg_tys, result);
            let slices: Vec<&[i128]> = args.iter().map(|a| a.lanes()).collect();
            let mut out = vec![0i128; LANES as usize];
            compiled(&slices, &mut out);
            assert_eq!(out.as_slice(), whole.lanes(), "{sem:?} compiled");
        }
    }

    #[test]
    fn fused_pairs_match_sequential_passes() {
        // For every type-compatible ordered pair of semantics and every
        // consumer operand position, the one-loop fused pair must be
        // bit-identical to running the two compiled strip kernels back to
        // back through a temporary. Pairs the composer declines (arity
        // > 3, pairwise family) are simply skipped — the engine keeps
        // separate passes for those.
        let mut state: u64 = 0x9e37_79b9_7f4a_7c15;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 16) as i128
        };
        const LANES: usize = 8;
        let fp = |op| MachSem::Fpir(op);
        let cases: Vec<(MachSem, Vec<S>, S)> = vec![
            (MachSem::Bin(BinOp::Add), vec![S::I16, S::I16], S::I16),
            (MachSem::Bin(BinOp::Mul), vec![S::U8, S::U8], S::U8),
            (MachSem::Bin(BinOp::Max), vec![S::I16, S::I16], S::I16),
            (MachSem::Cmp(CmpOp::Gt), vec![S::I16, S::I16], S::I16),
            (MachSem::Select, vec![S::I16, S::I16, S::I16], S::I16),
            (MachSem::ExtendTo, vec![S::U8], S::I16),
            (MachSem::TruncTo, vec![S::I16], S::U8),
            (MachSem::SatCastTo, vec![S::I16], S::U8),
            (MachSem::PackSatSignedTo, vec![S::I16], S::U8),
            (MachSem::MulHigh, vec![S::I16, S::I16], S::I16),
            (MachSem::WideningMulAcc, vec![S::I16, S::U8, S::U8], S::I16),
            (MachSem::ShrRndSatNarrow, vec![S::I16, S::I16], S::U8),
            (MachSem::QRDMulH, vec![S::I16, S::I16], S::I16),
            (fp(FpirOp::WideningAdd), vec![S::U8, S::U8], S::I16),
            (fp(FpirOp::SaturatingAdd), vec![S::I16, S::I16], S::I16),
            (fp(FpirOp::Absd), vec![S::U8, S::U8], S::U8),
            (fp(FpirOp::RoundingMulShr), vec![S::I16, S::I16, S::I16], S::I16),
            (MachSem::MulPairsAdd, vec![S::I16; 4], S::I16),
        ];
        let mut fused_pairs = 0usize;
        for (p_sem, p_tys, p_res) in &cases {
            for (c_sem, c_tys, c_res) in &cases {
                for k in 0..c_tys.len() {
                    if c_tys[k] != *p_res {
                        continue;
                    }
                    let Some(pair) =
                        sem_slice_fn_pair(*p_sem, p_tys, *p_res, *c_sem, c_tys, *c_res, k)
                    else {
                        continue;
                    };
                    fused_pairs += 1;
                    let mut fill =
                        |t: S| -> Vec<i128> { (0..LANES).map(|_| t.wrap(next())).collect() };
                    let p_args: Vec<Vec<i128>> = p_tys.iter().map(|&t| fill(t)).collect();
                    let c_others: Vec<Vec<i128>> = c_tys
                        .iter()
                        .enumerate()
                        .filter(|&(j, _)| j != k)
                        .map(|(_, &t)| fill(t))
                        .collect();
                    // Sequential: producer into a temp strip, consumer after.
                    let mut tmp = vec![0i128; LANES];
                    let p_slices: Vec<&[i128]> = p_args.iter().map(|a| a.as_slice()).collect();
                    sem_slice_fn(*p_sem, p_tys, *p_res)(&p_slices, &mut tmp);
                    let mut c_slices: Vec<&[i128]> =
                        c_others.iter().map(|a| a.as_slice()).collect();
                    c_slices.insert(k, &tmp);
                    let mut want = vec![0i128; LANES];
                    sem_slice_fn(*c_sem, c_tys, *c_res)(&c_slices, &mut want);
                    // Fused: one loop over producer args + consumer others.
                    let mut fused_slices: Vec<&[i128]> =
                        p_args.iter().map(|a| a.as_slice()).collect();
                    fused_slices.extend(c_others.iter().map(|a| a.as_slice()));
                    let mut got = vec![0i128; LANES];
                    pair(&fused_slices, &mut got);
                    assert_eq!(got, want, "{p_sem:?} -> {c_sem:?} at operand {k}");
                }
            }
        }
        // The composer covers the hot monomorphic families (bin/cast
        // chains, FPIR->bin/cast, cmp->select); everything else stays as
        // two passes. Keep a floor so a refactor can't silently shrink
        // coverage to nothing.
        assert!(fused_pairs >= 40, "expected broad pair coverage, got {fused_pairs}");
    }

    #[test]
    fn splat_capture_matches_streamed_constant() {
        // For every semantic and operand position with a captured-scalar
        // loop, running it with the constant in a register must be
        // bit-identical to the streamed kernel reading a slice that
        // holds the constant in every lane.
        let mut state: u64 = 0x2545_f491_4f6c_dd1d;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 16) as i128
        };
        const LANES: usize = 8;
        let fp = |op| MachSem::Fpir(op);
        let cases: Vec<(MachSem, Vec<S>, S)> = vec![
            (MachSem::Bin(BinOp::Add), vec![S::I16, S::I16], S::I16),
            (MachSem::Bin(BinOp::Mul), vec![S::U8, S::U8], S::U8),
            (MachSem::Bin(BinOp::Div), vec![S::I16, S::I16], S::I16),
            (MachSem::Bin(BinOp::Shr), vec![S::U32, S::U32], S::U32),
            (MachSem::Cmp(CmpOp::Lt), vec![S::I8, S::I8], S::I8),
            (MachSem::MulHigh, vec![S::I16, S::I16], S::I16),
            (MachSem::MulAcc, vec![S::I32, S::I32, S::I32], S::I32),
            (MachSem::WideningMulAcc, vec![S::U16, S::U8, S::U8], S::U16),
            (fp(FpirOp::WideningMul), vec![S::U8, S::U8], S::U16),
            (fp(FpirOp::SaturatingAdd), vec![S::I16, S::I16], S::I16),
            (fp(FpirOp::Absd), vec![S::U8, S::U8], S::U8),
            (fp(FpirOp::RoundingShr), vec![S::I16, S::I16], S::I16),
            (fp(FpirOp::HalvingAdd), vec![S::U8, S::U8], S::U8),
            (MachSem::ShrRndSatNarrow, vec![S::I16, S::I16], S::U8),
            (MachSem::ShrNarrow, vec![S::I16, S::I16], S::I8),
        ];
        let mut captured = 0usize;
        for (sem, tys, result) in &cases {
            for k in 0..tys.len() {
                let c = tys[k].wrap(next());
                let Some(splat) = sem_slice_fn_splat(*sem, tys, *result, k, c) else {
                    continue;
                };
                captured += 1;
                let args: Vec<Vec<i128>> = tys
                    .iter()
                    .enumerate()
                    .map(|(j, &t)| {
                        if j == k {
                            vec![c; LANES]
                        } else {
                            (0..LANES).map(|_| t.wrap(next())).collect()
                        }
                    })
                    .collect();
                let slices: Vec<&[i128]> = args.iter().map(|a| a.as_slice()).collect();
                let mut want = vec![0i128; LANES];
                sem_slice_fn(*sem, tys, *result)(&slices, &mut want);
                let mut got = vec![0i128; LANES];
                splat(&slices, &mut got);
                assert_eq!(got, want, "{sem:?} splat at operand {k}");
            }
        }
        assert!(captured >= 20, "expected broad splat coverage, got {captured}");
    }

    #[test]
    fn shr_rnd_sat_narrow() {
        let t16 = V::new(S::I16, 2);
        let t8 = V::new(S::I8, 2);
        let out = eval_sem(MachSem::ShrRndSatNarrow, &[v(t16, &[1000, 255]), v(t16, &[2, 2])], t8)
            .unwrap();
        // round(1000 / 4) = 250 -> saturates to 127; round(255/4) = 64.
        assert_eq!(out.lanes(), &[127, 64]);
    }
}
