//! Executable semantics of machine instructions.
//!
//! Every instruction in a target table carries a [`MachSem`] describing
//! what it computes. Semantics are defined *in terms of the reference
//! interpreter's lane arithmetic* (`fpir::interp`), so a lowered machine
//! program can be executed and differentially tested against the source
//! expression — that replaces the paper's "run it on the real device /
//! Hexagon simulator" correctness story.
//!
//! A few instructions deliberately have semantics that differ from the
//! FPIR op they are used to implement — e.g. x86's `vpackuswb` and HVX's
//! `vsat` reinterpret their input bits as *signed* before saturating
//! ([`MachSem::PackSatSignedTo`]). Pitchfork may only select them under a
//! bounds predicate; if a rule gets the predicate wrong, differential
//! testing catches the disagreement.

use fpir::expr::{BinOp, CmpOp, FpirOp};
use fpir::interp::{bin_op_lane, cmp_op_lane, fpir_op_lane, Value};
use fpir::types::{ScalarType, VectorType};

/// What a machine instruction computes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MachSem {
    /// A lane-wise primitive binary op at the operand type.
    Bin(BinOp),
    /// A comparison producing 0/1 lanes of the operand type.
    Cmp(CmpOp),
    /// `select(mask, a, b)` — non-zero mask lanes take `a`.
    Select,
    /// Wrapping conversion to a *wider* result element type (zero/sign
    /// extension chosen by the source signedness — `vpmovzx`, `uxtl`,
    /// `vzxt`).
    ExtendTo,
    /// Wrapping conversion to a *narrower* result element type (`xtn`,
    /// `vpacke`, x86's shuffle-based pack).
    TruncTo,
    /// Bit reinterpretation (free register alias).
    Reinterpret,
    /// Exactly the FPIR instruction's semantics at the operand types.
    Fpir(FpirOp),
    /// Saturating cast to the result element type.
    SatCastTo,
    /// Reinterpret the input as the *signed* type of its width, then
    /// saturating-cast to the result element type (x86 `vpackuswb`,
    /// HVX `vsat`).
    PackSatSignedTo,
    /// High half of the widened product: `(widen(x) * widen(y)) >> bits`.
    MulHigh,
    /// Non-widening multiply-accumulate: `acc + a * b` (wrapping).
    MulAcc,
    /// Widening multiply-accumulate: `acc + widen(a) * widen(b)` where
    /// `acc` has double the operand width (ARM `umlal`, HVX `vmpy.acc`).
    WideningMulAcc,
    /// Paired widening multiply-add:
    /// `widen(a) * widen(b) + widen(c) * widen(d)` (x86 `vpmaddwd`,
    /// HVX `vdmpy`).
    MulPairsAdd,
    /// Multiply-by-constants-and-add: `widen(a) * c0 + widen(b) * c1`
    /// (HVX `vmpa`); `c0`/`c1` are broadcast-constant operands.
    Mpa,
    /// Accumulating [`MachSem::Mpa`]: `acc + widen(a) * c0 + widen(b) * c1`.
    MpaAcc,
    /// Four-way widening dot product with accumulation:
    /// `acc + Σ_{i<4} widen(a_i) * widen(b_i)` where `acc` has 4× the
    /// operand width (ARM `udot`, HVX `vrmpy`).
    DotAcc4,
    /// Fused "shift right, round, saturating narrow":
    /// `saturating_cast<result>(rounding_shr(x, c))` (HVX `vasr` with the
    /// `:rnd:sat` modifiers; ARM `sqrshrn`-family).
    ShrRndSatNarrow,
    /// Fused "shift right then truncating narrow": `narrow(x >> c)` (ARM
    /// `shrn`).
    ShrNarrow,
    /// Saturating rounding doubling multiply-high:
    /// `rounding_mul_shr(x, y, bits - 1)` (ARM `sqrdmulh`).
    QRDMulH,
    /// Broadcast a scalar constant held in the operand.
    Splat,
}

impl MachSem {
    /// Operand count.
    pub fn arity(self) -> usize {
        match self {
            MachSem::ExtendTo
            | MachSem::TruncTo
            | MachSem::Reinterpret
            | MachSem::SatCastTo
            | MachSem::PackSatSignedTo
            | MachSem::Splat => 1,
            MachSem::Bin(_)
            | MachSem::Cmp(_)
            | MachSem::MulHigh
            | MachSem::ShrRndSatNarrow
            | MachSem::ShrNarrow
            | MachSem::QRDMulH => 2,
            MachSem::Select | MachSem::MulAcc | MachSem::WideningMulAcc => 3,
            MachSem::Fpir(op) => op.arity(),
            MachSem::MulPairsAdd | MachSem::Mpa => 4,
            MachSem::MpaAcc => 5,
            MachSem::DotAcc4 => 9,
        }
    }
}

/// Execute one instruction.
///
/// `result_ty` is the type the surrounding expression/program assigned to
/// the destination; semantics that imply their own result type validate it.
///
/// # Errors
///
/// Returns a message on arity mismatch, lane-count mismatch, or a result
/// type inconsistent with the semantics.
pub fn eval_sem(sem: MachSem, args: &[Value], result_ty: VectorType) -> Result<Value, String> {
    if args.len() != sem.arity() {
        return Err(format!("{sem:?} takes {} operands, got {}", sem.arity(), args.len()));
    }
    let lanes = result_ty.lanes as usize;
    for a in args {
        if a.ty().lanes as usize != lanes {
            return Err(format!("operand lanes {} != result lanes {lanes}", a.ty().lanes));
        }
    }
    let elem0 = args.first().map(|a| a.ty().elem);
    let per_lane = |f: &dyn Fn(usize) -> Result<i128, String>| -> Result<Value, String> {
        let mut out = Vec::with_capacity(lanes);
        for i in 0..lanes {
            out.push(f(i)?);
        }
        Ok(Value::new(result_ty, out))
    };

    match sem {
        MachSem::Bin(op) => {
            let t = elem0.expect("arity >= 1");
            per_lane(&|i| Ok(bin_op_lane(op, args[0].lane(i), args[1].lane(i), t)))
        }
        MachSem::Cmp(op) => {
            let t = elem0.expect("arity >= 1");
            per_lane(&|i| Ok(cmp_op_lane(op, args[0].lane(i), args[1].lane(i), t)))
        }
        MachSem::Select => {
            per_lane(&|i| Ok(if args[0].lane(i) != 0 { args[1].lane(i) } else { args[2].lane(i) }))
        }
        MachSem::ExtendTo | MachSem::TruncTo | MachSem::Reinterpret | MachSem::Splat => {
            per_lane(&|i| Ok(result_ty.elem.wrap(args[0].lane(i))))
        }
        MachSem::SatCastTo => per_lane(&|i| Ok(result_ty.elem.saturate(args[0].lane(i)))),
        MachSem::PackSatSignedTo => {
            let signed = elem0.expect("arity 1").with_signed();
            per_lane(&|i| Ok(result_ty.elem.saturate(signed.wrap(args[0].lane(i)))))
        }
        MachSem::Fpir(op) => {
            let tys: Vec<ScalarType> = args.iter().map(|a| a.ty().elem).collect();
            per_lane(&|i| {
                let xs: Vec<i128> = args.iter().map(|a| a.lane(i)).collect();
                Ok(fpir_op_lane(op, &xs, &tys, result_ty.elem))
            })
        }
        MachSem::MulHigh => {
            let t = elem0.expect("arity 2");
            let bits = t.bits();
            per_lane(&|i| Ok(result_ty.elem.wrap((args[0].lane(i) * args[1].lane(i)) >> bits)))
        }
        MachSem::MulAcc => per_lane(&|i| {
            Ok(result_ty.elem.wrap(args[0].lane(i) + args[1].lane(i) * args[2].lane(i)))
        }),
        MachSem::WideningMulAcc => {
            let (aw, ow) = (args[0].ty().elem.bits(), args[1].ty().elem.bits());
            if aw != ow * 2 {
                return Err(format!(
                    "widening mul-acc accumulator must be 2x the operand width ({aw} vs {ow})"
                ));
            }
            per_lane(&|i| {
                Ok(result_ty.elem.wrap(args[0].lane(i) + args[1].lane(i) * args[2].lane(i)))
            })
        }
        MachSem::MulPairsAdd => per_lane(&|i| {
            Ok(result_ty
                .elem
                .wrap(args[0].lane(i) * args[1].lane(i) + args[2].lane(i) * args[3].lane(i)))
        }),
        MachSem::Mpa => per_lane(&|i| {
            Ok(result_ty
                .elem
                .wrap(args[0].lane(i) * args[2].lane(i) + args[1].lane(i) * args[3].lane(i)))
        }),
        MachSem::MpaAcc => per_lane(&|i| {
            Ok(result_ty.elem.wrap(
                args[0].lane(i)
                    + args[1].lane(i) * args[3].lane(i)
                    + args[2].lane(i) * args[4].lane(i),
            ))
        }),
        MachSem::DotAcc4 => {
            let aw = args[0].ty().elem.bits();
            let ow = args[1].ty().elem.bits();
            if aw != ow * 4 {
                return Err(format!(
                    "dot-product accumulator must be 4x the operand width ({aw} vs {ow})"
                ));
            }
            per_lane(&|i| {
                let mut acc = args[0].lane(i);
                for k in 0..4 {
                    acc += args[1 + k].lane(i) * args[5 + k].lane(i);
                }
                Ok(result_ty.elem.wrap(acc))
            })
        }
        MachSem::ShrRndSatNarrow => {
            let t = elem0.expect("arity 2");
            let tys = [t, args[1].ty().elem];
            per_lane(&|i| {
                let shifted =
                    fpir_op_lane(FpirOp::RoundingShr, &[args[0].lane(i), args[1].lane(i)], &tys, t);
                Ok(result_ty.elem.saturate(shifted))
            })
        }
        MachSem::ShrNarrow => {
            let t = elem0.expect("arity 2");
            per_lane(&|i| {
                let shifted = bin_op_lane(BinOp::Shr, args[0].lane(i), args[1].lane(i), t);
                Ok(result_ty.elem.wrap(shifted))
            })
        }
        MachSem::QRDMulH => {
            let t = elem0.expect("arity 2");
            let tys = [t, t, t];
            per_lane(&|i| {
                Ok(fpir_op_lane(
                    FpirOp::RoundingMulShr,
                    &[args[0].lane(i), args[1].lane(i), t.bits() as i128 - 1],
                    &tys,
                    result_ty.elem,
                ))
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpir::types::{ScalarType as S, VectorType as V};

    fn v(t: V, xs: &[i128]) -> Value {
        Value::new(t, xs.to_vec())
    }

    #[test]
    fn pack_sat_signed_reinterprets() {
        // vpackuswb-style: u16 50000 is i16 -15536, which saturates to 0.
        let t16 = V::new(S::U16, 2);
        let t8 = V::new(S::U8, 2);
        let out = eval_sem(MachSem::PackSatSignedTo, &[v(t16, &[50000, 300])], t8).unwrap();
        assert_eq!(out.lanes(), &[0, 255]);
        // A plain saturating cast would give 255 for both.
        let out = eval_sem(MachSem::SatCastTo, &[v(t16, &[50000, 300])], t8).unwrap();
        assert_eq!(out.lanes(), &[255, 255]);
    }

    #[test]
    fn widening_mul_acc() {
        let t16 = V::new(S::U16, 2);
        let t8 = V::new(S::U8, 2);
        let out = eval_sem(
            MachSem::WideningMulAcc,
            &[v(t16, &[100, 65535]), v(t8, &[10, 2]), v(t8, &[10, 1])],
            t16,
        )
        .unwrap();
        assert_eq!(out.lanes(), &[200, 1]); // 65535 + 2 wraps.
    }

    #[test]
    fn dot_acc4_accumulates() {
        let t32 = V::new(S::U32, 1);
        let t8 = V::new(S::U8, 1);
        let args: Vec<Value> = std::iter::once(v(t32, &[5]))
            .chain((0..4).map(|i| v(t8, &[i + 1])))
            .chain((0..4).map(|_| v(t8, &[10])))
            .collect();
        let out = eval_sem(MachSem::DotAcc4, &args, t32).unwrap();
        assert_eq!(out.lanes(), &[5 + 10 * (1 + 2 + 3 + 4)]);
    }

    #[test]
    fn dot_acc4_validates_widths() {
        let t16 = V::new(S::U16, 1);
        let t8 = V::new(S::U8, 1);
        let args: Vec<Value> =
            std::iter::once(v(t16, &[5])).chain((0..8).map(|_| v(t8, &[1]))).collect();
        assert!(eval_sem(MachSem::DotAcc4, &args, t16).is_err());
    }

    #[test]
    fn mul_high_matches_shifted_product() {
        let t = V::new(S::I16, 1);
        let out = eval_sem(MachSem::MulHigh, &[v(t, &[30000]), v(t, &[30000])], t).unwrap();
        assert_eq!(out.lanes(), &[(30000 * 30000) >> 16]);
    }

    #[test]
    fn arity_is_checked() {
        let t = V::new(S::U8, 1);
        assert!(eval_sem(MachSem::Select, &[v(t, &[1])], t).is_err());
    }

    #[test]
    fn shr_rnd_sat_narrow() {
        let t16 = V::new(S::I16, 2);
        let t8 = V::new(S::I8, 2);
        let out = eval_sem(MachSem::ShrRndSatNarrow, &[v(t16, &[1000, 255]), v(t16, &[2, 2])], t8)
            .unwrap();
        // round(1000 / 4) = 250 -> saturates to 127; round(255/4) = 64.
        assert_eq!(out.lanes(), &[127, 64]);
    }
}
