//! Executable semantics of machine instructions.
//!
//! Every instruction in a target table carries a [`MachSem`] describing
//! what it computes. Semantics are defined *in terms of the reference
//! interpreter's lane arithmetic* (`fpir::interp`), so a lowered machine
//! program can be executed and differentially tested against the source
//! expression — that replaces the paper's "run it on the real device /
//! Hexagon simulator" correctness story.
//!
//! A few instructions deliberately have semantics that differ from the
//! FPIR op they are used to implement — e.g. x86's `vpackuswb` and HVX's
//! `vsat` reinterpret their input bits as *signed* before saturating
//! ([`MachSem::PackSatSignedTo`]). Pitchfork may only select them under a
//! bounds predicate; if a rule gets the predicate wrong, differential
//! testing catches the disagreement.

use fpir::expr::{BinOp, CmpOp, FpirOp};
use fpir::interp::{bin_op_lane, cmp_op_lane, fpir_op_lane, Value};
use fpir::types::{ScalarType, VectorType};

/// What a machine instruction computes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MachSem {
    /// A lane-wise primitive binary op at the operand type.
    Bin(BinOp),
    /// A comparison producing 0/1 lanes of the operand type.
    Cmp(CmpOp),
    /// `select(mask, a, b)` — non-zero mask lanes take `a`.
    Select,
    /// Wrapping conversion to a *wider* result element type (zero/sign
    /// extension chosen by the source signedness — `vpmovzx`, `uxtl`,
    /// `vzxt`).
    ExtendTo,
    /// Wrapping conversion to a *narrower* result element type (`xtn`,
    /// `vpacke`, x86's shuffle-based pack).
    TruncTo,
    /// Bit reinterpretation (free register alias).
    Reinterpret,
    /// Exactly the FPIR instruction's semantics at the operand types.
    Fpir(FpirOp),
    /// Saturating cast to the result element type.
    SatCastTo,
    /// Reinterpret the input as the *signed* type of its width, then
    /// saturating-cast to the result element type (x86 `vpackuswb`,
    /// HVX `vsat`).
    PackSatSignedTo,
    /// High half of the widened product: `(widen(x) * widen(y)) >> bits`.
    MulHigh,
    /// Non-widening multiply-accumulate: `acc + a * b` (wrapping).
    MulAcc,
    /// Widening multiply-accumulate: `acc + widen(a) * widen(b)` where
    /// `acc` has double the operand width (ARM `umlal`, HVX `vmpy.acc`).
    WideningMulAcc,
    /// Paired widening multiply-add:
    /// `widen(a) * widen(b) + widen(c) * widen(d)` (x86 `vpmaddwd`,
    /// HVX `vdmpy`).
    MulPairsAdd,
    /// Multiply-by-constants-and-add: `widen(a) * c0 + widen(b) * c1`
    /// (HVX `vmpa`); `c0`/`c1` are broadcast-constant operands.
    Mpa,
    /// Accumulating [`MachSem::Mpa`]: `acc + widen(a) * c0 + widen(b) * c1`.
    MpaAcc,
    /// Four-way widening dot product with accumulation:
    /// `acc + Σ_{i<4} widen(a_i) * widen(b_i)` where `acc` has 4× the
    /// operand width (ARM `udot`, HVX `vrmpy`).
    DotAcc4,
    /// Fused "shift right, round, saturating narrow":
    /// `saturating_cast<result>(rounding_shr(x, c))` (HVX `vasr` with the
    /// `:rnd:sat` modifiers; ARM `sqrshrn`-family).
    ShrRndSatNarrow,
    /// Fused "shift right then truncating narrow": `narrow(x >> c)` (ARM
    /// `shrn`).
    ShrNarrow,
    /// Saturating rounding doubling multiply-high:
    /// `rounding_mul_shr(x, y, bits - 1)` (ARM `sqrdmulh`).
    QRDMulH,
    /// Broadcast a scalar constant held in the operand.
    Splat,
}

impl MachSem {
    /// Operand count.
    pub fn arity(self) -> usize {
        match self {
            MachSem::ExtendTo
            | MachSem::TruncTo
            | MachSem::Reinterpret
            | MachSem::SatCastTo
            | MachSem::PackSatSignedTo
            | MachSem::Splat => 1,
            MachSem::Bin(_)
            | MachSem::Cmp(_)
            | MachSem::MulHigh
            | MachSem::ShrRndSatNarrow
            | MachSem::ShrNarrow
            | MachSem::QRDMulH => 2,
            MachSem::Select | MachSem::MulAcc | MachSem::WideningMulAcc => 3,
            MachSem::Fpir(op) => op.arity(),
            MachSem::MulPairsAdd | MachSem::Mpa => 4,
            MachSem::MpaAcc => 5,
            MachSem::DotAcc4 => 9,
        }
    }
}

/// Execute one instruction.
///
/// `result_ty` is the type the surrounding expression/program assigned to
/// the destination; semantics that imply their own result type validate it.
///
/// # Errors
///
/// Returns a message on arity mismatch, lane-count mismatch, or a result
/// type inconsistent with the semantics.
pub fn eval_sem(sem: MachSem, args: &[Value], result_ty: VectorType) -> Result<Value, String> {
    let refs: Vec<&Value> = args.iter().collect();
    let mut out = Vec::with_capacity(result_ty.lanes as usize);
    eval_sem_into(sem, &refs, result_ty, &mut out)?;
    Ok(Value::new(result_ty, out))
}

/// Execute one instruction, writing the result lanes into `out`.
///
/// This is the allocation-free core of [`eval_sem`]: operands are read
/// through references and the result is produced into a caller-supplied
/// buffer (cleared first), so a hot loop — the linked execution engine in
/// `fpir-sim` — can recycle lane buffers across instructions instead of
/// allocating a fresh `Value` per step. [`eval_sem`] is a thin wrapper,
/// so the two entry points can never disagree on semantics.
///
/// # Errors
///
/// As [`eval_sem`].
pub fn eval_sem_into(
    sem: MachSem,
    args: &[&Value],
    result_ty: VectorType,
    out: &mut Vec<i128>,
) -> Result<(), String> {
    if args.len() != sem.arity() {
        return Err(format!("{sem:?} takes {} operands, got {}", sem.arity(), args.len()));
    }
    let lanes = result_ty.lanes as usize;
    for a in args {
        if a.ty().lanes as usize != lanes {
            return Err(format!("operand lanes {} != result lanes {lanes}", a.ty().lanes));
        }
    }
    let elem0 = args.first().map(|a| a.ty().elem);
    out.clear();
    out.reserve(lanes);
    // Hot path: every arm iterates the operand lane *slices* directly
    // (zips are bounds-check-free; `extend` over an exact-size iterator
    // writes without per-element capacity checks), because this core runs
    // once per instruction per image strip in the linked engine.
    match sem {
        MachSem::Bin(op) => {
            let t = elem0.expect("arity >= 1");
            let (a, b) = (args[0].lanes(), args[1].lanes());
            // Dispatch on the op once per instruction, not once per lane:
            // each arm hands the *literal* op to the single-source lane
            // helper, whose internal match then folds away under inlining.
            macro_rules! bin_lanes {
                ($($v:ident),*) => {
                    match op {
                        $(BinOp::$v => out
                            .extend(a.iter().zip(b).map(|(&x, &y)| bin_op_lane(BinOp::$v, x, y, t))),)*
                    }
                };
            }
            bin_lanes!(Add, Sub, Mul, Div, Mod, Min, Max, Shl, Shr, And, Or, Xor);
            Ok(())
        }
        MachSem::Cmp(op) => {
            let t = elem0.expect("arity >= 1");
            let (a, b) = (args[0].lanes(), args[1].lanes());
            macro_rules! cmp_lanes {
                ($($v:ident),*) => {
                    match op {
                        $(CmpOp::$v => out
                            .extend(a.iter().zip(b).map(|(&x, &y)| cmp_op_lane(CmpOp::$v, x, y, t))),)*
                    }
                };
            }
            cmp_lanes!(Eq, Ne, Lt, Le, Gt, Ge);
            Ok(())
        }
        MachSem::Select => {
            let (m, a, b) = (args[0].lanes(), args[1].lanes(), args[2].lanes());
            out.extend(m.iter().zip(a).zip(b).map(|((&m, &x), &y)| if m != 0 { x } else { y }));
            Ok(())
        }
        MachSem::ExtendTo | MachSem::TruncTo | MachSem::Reinterpret | MachSem::Splat => {
            out.extend(args[0].lanes().iter().map(|&x| result_ty.elem.wrap(x)));
            Ok(())
        }
        MachSem::SatCastTo => {
            out.extend(args[0].lanes().iter().map(|&x| result_ty.elem.saturate(x)));
            Ok(())
        }
        MachSem::PackSatSignedTo => {
            let signed = elem0.expect("arity 1").with_signed();
            out.extend(args[0].lanes().iter().map(|&x| result_ty.elem.saturate(signed.wrap(x))));
            Ok(())
        }
        MachSem::Fpir(op) => {
            // Specialized by arity: fixed-size lane tuples on the stack
            // for the overwhelmingly common 1/2/3-operand instructions.
            match args {
                [a] => {
                    let tys = [a.ty().elem];
                    out.extend(
                        a.lanes().iter().map(|&x| fpir_op_lane(op, &[x], &tys, result_ty.elem)),
                    );
                }
                [a, b] => {
                    let tys = [a.ty().elem, b.ty().elem];
                    // As for `Bin` above: pick the op once, outside the
                    // lane loop, passing a literal to the lane helper so
                    // its match folds. The wildcard arm covers the ops
                    // that never reach here with two operands.
                    macro_rules! lanes2 {
                        ($v:expr) => {
                            out.extend(
                                a.lanes().iter().zip(b.lanes()).map(|(&x, &y)| {
                                    fpir_op_lane($v, &[x, y], &tys, result_ty.elem)
                                }),
                            )
                        };
                    }
                    match op {
                        FpirOp::WideningAdd => lanes2!(FpirOp::WideningAdd),
                        FpirOp::WideningSub => lanes2!(FpirOp::WideningSub),
                        FpirOp::WideningMul => lanes2!(FpirOp::WideningMul),
                        FpirOp::ExtendingAdd => lanes2!(FpirOp::ExtendingAdd),
                        FpirOp::ExtendingSub => lanes2!(FpirOp::ExtendingSub),
                        FpirOp::ExtendingMul => lanes2!(FpirOp::ExtendingMul),
                        FpirOp::SaturatingAdd => lanes2!(FpirOp::SaturatingAdd),
                        FpirOp::SaturatingSub => lanes2!(FpirOp::SaturatingSub),
                        FpirOp::HalvingAdd => lanes2!(FpirOp::HalvingAdd),
                        FpirOp::HalvingSub => lanes2!(FpirOp::HalvingSub),
                        FpirOp::RoundingHalvingAdd => lanes2!(FpirOp::RoundingHalvingAdd),
                        FpirOp::Absd => lanes2!(FpirOp::Absd),
                        _ => lanes2!(op),
                    }
                }
                [a, b, c] => {
                    let tys = [a.ty().elem, b.ty().elem, c.ty().elem];
                    macro_rules! lanes3 {
                        ($v:expr) => {
                            out.extend(a.lanes().iter().zip(b.lanes()).zip(c.lanes()).map(
                                |((&x, &y), &z)| fpir_op_lane($v, &[x, y, z], &tys, result_ty.elem),
                            ))
                        };
                    }
                    match op {
                        FpirOp::MulShr => lanes3!(FpirOp::MulShr),
                        FpirOp::RoundingMulShr => lanes3!(FpirOp::RoundingMulShr),
                        _ => lanes3!(op),
                    }
                }
                _ => {
                    let tys: Vec<ScalarType> = args.iter().map(|a| a.ty().elem).collect();
                    let mut xs: Vec<i128> = vec![0; args.len()];
                    out.extend((0..lanes).map(|i| {
                        for (x, a) in xs.iter_mut().zip(args) {
                            *x = a.lane(i);
                        }
                        fpir_op_lane(op, &xs, &tys, result_ty.elem)
                    }));
                }
            }
            Ok(())
        }
        MachSem::MulHigh => {
            let t = elem0.expect("arity 2");
            let bits = t.bits();
            let (a, b) = (args[0].lanes(), args[1].lanes());
            out.extend(a.iter().zip(b).map(|(&x, &y)| result_ty.elem.wrap((x * y) >> bits)));
            Ok(())
        }
        MachSem::MulAcc => {
            let (acc, a, b) = (args[0].lanes(), args[1].lanes(), args[2].lanes());
            out.extend(
                acc.iter().zip(a).zip(b).map(|((&c, &x), &y)| result_ty.elem.wrap(c + x * y)),
            );
            Ok(())
        }
        MachSem::WideningMulAcc => {
            let (aw, ow) = (args[0].ty().elem.bits(), args[1].ty().elem.bits());
            if aw != ow * 2 {
                return Err(format!(
                    "widening mul-acc accumulator must be 2x the operand width ({aw} vs {ow})"
                ));
            }
            let (acc, a, b) = (args[0].lanes(), args[1].lanes(), args[2].lanes());
            out.extend(
                acc.iter().zip(a).zip(b).map(|((&c, &x), &y)| result_ty.elem.wrap(c + x * y)),
            );
            Ok(())
        }
        MachSem::MulPairsAdd => {
            let (a, b, c, d) = (args[0].lanes(), args[1].lanes(), args[2].lanes(), args[3].lanes());
            out.extend((0..lanes).map(|i| result_ty.elem.wrap(a[i] * b[i] + c[i] * d[i])));
            Ok(())
        }
        MachSem::Mpa => {
            let (a, b, c0, c1) =
                (args[0].lanes(), args[1].lanes(), args[2].lanes(), args[3].lanes());
            out.extend((0..lanes).map(|i| result_ty.elem.wrap(a[i] * c0[i] + b[i] * c1[i])));
            Ok(())
        }
        MachSem::MpaAcc => {
            let (acc, a, b, c0, c1) = (
                args[0].lanes(),
                args[1].lanes(),
                args[2].lanes(),
                args[3].lanes(),
                args[4].lanes(),
            );
            out.extend(
                (0..lanes).map(|i| result_ty.elem.wrap(acc[i] + a[i] * c0[i] + b[i] * c1[i])),
            );
            Ok(())
        }
        MachSem::DotAcc4 => {
            let aw = args[0].ty().elem.bits();
            let ow = args[1].ty().elem.bits();
            if aw != ow * 4 {
                return Err(format!(
                    "dot-product accumulator must be 4x the operand width ({aw} vs {ow})"
                ));
            }
            out.extend((0..lanes).map(|i| {
                let mut acc = args[0].lane(i);
                for k in 0..4 {
                    acc += args[1 + k].lane(i) * args[5 + k].lane(i);
                }
                result_ty.elem.wrap(acc)
            }));
            Ok(())
        }
        MachSem::ShrRndSatNarrow => {
            let t = elem0.expect("arity 2");
            let tys = [t, args[1].ty().elem];
            let (a, b) = (args[0].lanes(), args[1].lanes());
            out.extend(a.iter().zip(b).map(|(&x, &y)| {
                let shifted = fpir_op_lane(FpirOp::RoundingShr, &[x, y], &tys, t);
                result_ty.elem.saturate(shifted)
            }));
            Ok(())
        }
        MachSem::ShrNarrow => {
            let t = elem0.expect("arity 2");
            let (a, b) = (args[0].lanes(), args[1].lanes());
            out.extend(
                a.iter()
                    .zip(b)
                    .map(|(&x, &y)| result_ty.elem.wrap(bin_op_lane(BinOp::Shr, x, y, t))),
            );
            Ok(())
        }
        MachSem::QRDMulH => {
            let t = elem0.expect("arity 2");
            let tys = [t, t, t];
            let (a, b) = (args[0].lanes(), args[1].lanes());
            out.extend(a.iter().zip(b).map(|(&x, &y)| {
                fpir_op_lane(
                    FpirOp::RoundingMulShr,
                    &[x, y, t.bits() as i128 - 1],
                    &tys,
                    result_ty.elem,
                )
            }));
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpir::types::{ScalarType as S, VectorType as V};

    fn v(t: V, xs: &[i128]) -> Value {
        Value::new(t, xs.to_vec())
    }

    #[test]
    fn pack_sat_signed_reinterprets() {
        // vpackuswb-style: u16 50000 is i16 -15536, which saturates to 0.
        let t16 = V::new(S::U16, 2);
        let t8 = V::new(S::U8, 2);
        let out = eval_sem(MachSem::PackSatSignedTo, &[v(t16, &[50000, 300])], t8).unwrap();
        assert_eq!(out.lanes(), &[0, 255]);
        // A plain saturating cast would give 255 for both.
        let out = eval_sem(MachSem::SatCastTo, &[v(t16, &[50000, 300])], t8).unwrap();
        assert_eq!(out.lanes(), &[255, 255]);
    }

    #[test]
    fn widening_mul_acc() {
        let t16 = V::new(S::U16, 2);
        let t8 = V::new(S::U8, 2);
        let out = eval_sem(
            MachSem::WideningMulAcc,
            &[v(t16, &[100, 65535]), v(t8, &[10, 2]), v(t8, &[10, 1])],
            t16,
        )
        .unwrap();
        assert_eq!(out.lanes(), &[200, 1]); // 65535 + 2 wraps.
    }

    #[test]
    fn dot_acc4_accumulates() {
        let t32 = V::new(S::U32, 1);
        let t8 = V::new(S::U8, 1);
        let args: Vec<Value> = std::iter::once(v(t32, &[5]))
            .chain((0..4).map(|i| v(t8, &[i + 1])))
            .chain((0..4).map(|_| v(t8, &[10])))
            .collect();
        let out = eval_sem(MachSem::DotAcc4, &args, t32).unwrap();
        assert_eq!(out.lanes(), &[5 + 10 * (1 + 2 + 3 + 4)]);
    }

    #[test]
    fn dot_acc4_validates_widths() {
        let t16 = V::new(S::U16, 1);
        let t8 = V::new(S::U8, 1);
        let args: Vec<Value> =
            std::iter::once(v(t16, &[5])).chain((0..8).map(|_| v(t8, &[1]))).collect();
        assert!(eval_sem(MachSem::DotAcc4, &args, t16).is_err());
    }

    #[test]
    fn mul_high_matches_shifted_product() {
        let t = V::new(S::I16, 1);
        let out = eval_sem(MachSem::MulHigh, &[v(t, &[30000]), v(t, &[30000])], t).unwrap();
        assert_eq!(out.lanes(), &[(30000 * 30000) >> 16]);
    }

    #[test]
    fn arity_is_checked() {
        let t = V::new(S::U8, 1);
        assert!(eval_sem(MachSem::Select, &[v(t, &[1])], t).is_err());
    }

    #[test]
    fn shr_rnd_sat_narrow() {
        let t16 = V::new(S::I16, 2);
        let t8 = V::new(S::I8, 2);
        let out = eval_sem(MachSem::ShrRndSatNarrow, &[v(t16, &[1000, 255]), v(t16, &[2, 2])], t8)
            .unwrap();
        // round(1000 / 4) = 250 -> saturates to 127; round(255/4) = 64.
        assert_eq!(out.lanes(), &[127, 64]);
    }
}
