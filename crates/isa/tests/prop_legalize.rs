//! Properties of legalization and of the baseline compilers that use it.

use fpir::interp::{eval, eval_with};
use fpir::rand_expr::{gen_expr, random_env, GenConfig};
use fpir::types::ScalarType;
use fpir_isa::{legalize, target, MachEvaluator, TargetCost};
use fpir_trs::cost::CostModel;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const TYPES: [ScalarType; 6] = [
    ScalarType::U8,
    ScalarType::U16,
    ScalarType::U32,
    ScalarType::I8,
    ScalarType::I16,
    ScalarType::I32,
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Legalization produces machine-only trees that compute the same
    /// function, on every target that accepts the widths.
    #[test]
    fn legalization_is_correct(seed in any::<u64>(), ti in 0usize..TYPES.len()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let cfg = GenConfig { lanes: 8, ..GenConfig::default() };
        let e = gen_expr(&mut rng, &cfg, TYPES[ti]);
        let evaluator = MachEvaluator;
        for isa in fpir::machine::ALL_ISAS {
            let Ok(m) = legalize(&e, target(isa)) else { continue };
            prop_assert!(!m.contains_fpir());
            prop_assert_eq!(m.ty(), e.ty());
            for _ in 0..3 {
                let env = random_env(&mut rng, &e);
                prop_assert_eq!(
                    eval(&e, &env).unwrap(),
                    eval_with(&m, &env, Some(&evaluator)).unwrap(),
                    "{} diverged on {}", isa, e
                );
            }
        }
    }

    /// Legalization is idempotent: a machine-only tree legalizes to itself.
    #[test]
    fn legalization_is_idempotent(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let cfg = GenConfig { lanes: 8, ..GenConfig::default() };
        let e = gen_expr(&mut rng, &cfg, ScalarType::I16);
        for isa in fpir::machine::ALL_ISAS {
            let Ok(m) = legalize(&e, target(isa)) else { continue };
            prop_assert_eq!(legalize(&m, target(isa)).unwrap(), m);
        }
    }

    /// Legalized trees carry zero unlowered penalty under the target cost
    /// model, and narrower inputs never cost more than their widened
    /// versions.
    #[test]
    fn target_costs_are_penalty_free_after_legalize(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let cfg = GenConfig { lanes: 8, ..GenConfig::default() };
        let e = gen_expr(&mut rng, &cfg, ScalarType::U8);
        for isa in fpir::machine::ALL_ISAS {
            let Ok(m) = legalize(&e, target(isa)) else { continue };
            let cost = TargetCost::new(isa).cost(&m).width_sum;
            prop_assert!(cost < fpir_isa::cost::UNLOWERED_PENALTY,
                "{}: cost {} implies an unlowered node in {}", isa, cost, m);
        }
    }

    /// HVX rejects exactly the expressions that require 64-bit lanes.
    #[test]
    fn hvx_width_limit_is_precise(seed in any::<u64>(), ti in 0usize..TYPES.len()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let cfg = GenConfig { lanes: 8, ..GenConfig::default() };
        let e = gen_expr(&mut rng, &cfg, TYPES[ti]);
        let needs_wide = {
            let mut any64 = false;
            // The expression's own types are <= 32 bits; widening can
            // introduce 64-bit intermediates only through i32/u32 lanes.
            e.visit(&mut |n| {
                if n.elem().bits() > 32 {
                    any64 = true;
                }
            });
            any64
        };
        if !needs_wide {
            // Legalization may still fail through expansion widths or
            // genuinely unimplementable ops (general vector division);
            // anything else is a bug.
            if let Err(err) = legalize(&e, target(fpir::Isa::HexagonHvx)) {
                prop_assert!(
                    err.what.contains("64")
                        || err.what.contains("division")
                        || err.what.contains("remainder"),
                    "unexpected legalization failure: {}",
                    err
                );
            }
        }
    }
}
