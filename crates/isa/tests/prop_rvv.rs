//! Differential tests for the RVV backend's instruction semantics.
//!
//! Every row of the RVV table carries a [`MachSem`]; this suite checks
//! each one against an *FPIR expression* with the same meaning, run
//! through the reference interpreter (`fpir::interp::eval`). That is
//! the same oracle the compiler's end-to-end differential tests use, so
//! a table row whose semantics drift from the FPIR op its lowering
//! rules assume cannot slip in unnoticed.
//!
//! Two RVV-specific angles get extra weight:
//!
//! * **saturation boundaries** — lane values are biased toward
//!   `MIN`/`MAX`/0/±1 so the fixed-point rows (`vsmul`'s Q-format
//!   `MIN × MIN` overflow, `vnclip`'s clip edges, `vsadd`/`vssub`)
//!   exercise their saturating paths, not just the interior;
//! * **vector-length agnosticism** — lane counts sweep odd sizes
//!   (1, 3, 7, 31) a fixed-width target never produces, since RVV's
//!   scalable registers make every lane count legal.

use fpir::expr::{BinOp, Expr, RcExpr};
use fpir::interp::{eval, Env, Value};
use fpir::types::{ScalarType, VectorType};
use fpir::{FpirOp, Isa};
use fpir_isa::{eval_sem, target, InstDef, MachSem, SignReq};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Odd, non-power-of-two lane counts: legal on a scalable target only.
const LANES: [u32; 4] = [1, 3, 7, 31];

fn elem_of(bits: u32, signed: bool) -> ScalarType {
    match (bits, signed) {
        (8, false) => ScalarType::U8,
        (16, false) => ScalarType::U16,
        (32, false) => ScalarType::U32,
        (64, false) => ScalarType::U64,
        (8, true) => ScalarType::I8,
        (16, true) => ScalarType::I16,
        (32, true) => ScalarType::I32,
        (64, true) => ScalarType::I64,
        _ => unreachable!("no {bits}-bit lane type"),
    }
}

/// The signednesses a row accepts for its first operand.
fn signs(req: SignReq) -> &'static [bool] {
    match req {
        SignReq::Any => &[false, true],
        SignReq::Signed => &[true],
        SignReq::Unsigned => &[false],
    }
}

/// A lane value biased toward the saturation-relevant boundary of `t`.
fn boundary_lane(rng: &mut StdRng, t: ScalarType) -> i128 {
    let (lo, hi) = (t.min_value(), t.max_value());
    match rng.gen_range(0..8u32) {
        0 => lo,
        1 => hi,
        2 => 0,
        3 => 1,
        4 => lo + 1,
        5 => hi - 1,
        6 if t.is_signed() => -1,
        _ => rng.gen_range(lo..=hi),
    }
}

fn boundary_value(rng: &mut StdRng, ty: VectorType) -> Value {
    Value::new(ty, (0..ty.lanes).map(|_| boundary_lane(rng, ty.elem)).collect())
}

/// A shift-amount operand: lanes in `[0, bits)` of the shifted type.
fn shift_value(rng: &mut StdRng, ty: VectorType) -> Value {
    Value::new(ty, (0..ty.lanes).map(|_| rng.gen_range(0..ty.elem.bits()) as i128).collect())
}

/// A 0/1 mask operand (for `vmerge`).
fn mask_value(rng: &mut StdRng, ty: VectorType) -> Value {
    Value::new(ty, (0..ty.lanes).map(|_| rng.gen_range(0..2u32) as i128).collect())
}

fn var(name: &str, ty: VectorType) -> RcExpr {
    Expr::var(name, ty)
}

/// The FPIR reference for one RVV table row: the expression it should
/// agree with, the operand values (in the row's operand order), and the
/// result type `eval_sem` is asked for. Returns one or more scenarios —
/// narrowing rows are checked against both the same-sign and the
/// signed-to-unsigned narrow, mirroring the shipped `vnclip` rules.
struct Scenario {
    expr: RcExpr,
    env: Env,
    args: Vec<Value>,
    result_ty: VectorType,
}

fn scenarios(def: &InstDef, elem: ScalarType, lanes: u32, rng: &mut StdRng) -> Vec<Scenario> {
    let ty = VectorType::new(elem, lanes);
    let x = boundary_value(rng, ty);
    let y = boundary_value(rng, ty);
    let two = |expr: RcExpr, a: Value, b: Value, result_ty: VectorType| Scenario {
        expr,
        env: Env::new().bind("x", a.clone()).bind("y", b.clone()),
        args: vec![a, b],
        result_ty,
    };
    match def.sem {
        MachSem::Bin(op) => {
            let shifty = matches!(op, BinOp::Shl | BinOp::Shr);
            let y = if shifty { shift_value(rng, ty) } else { y };
            let expr = Expr::bin(op, var("x", ty), var("y", ty)).unwrap();
            vec![two(expr, x, y, ty)]
        }
        MachSem::Cmp(op) => {
            let expr = Expr::cmp(op, var("x", ty), var("y", ty)).unwrap();
            vec![two(expr, x, y, ty)]
        }
        MachSem::Select => {
            let m = mask_value(rng, ty);
            let expr = Expr::select(var("m", ty), var("x", ty), var("y", ty)).unwrap();
            vec![Scenario {
                expr,
                env: Env::new().bind("m", m.clone()).bind("x", x.clone()).bind("y", y.clone()),
                args: vec![m, x, y],
                result_ty: ty,
            }]
        }
        MachSem::ExtendTo => {
            let wide = ty.widen().expect("extend rows stop below 64 bits");
            let expr = Expr::cast(wide.elem, var("x", ty));
            vec![Scenario {
                expr,
                env: Env::new().bind("x", x.clone()),
                args: vec![x],
                result_ty: wide,
            }]
        }
        MachSem::TruncTo => {
            let narrow = ty.narrow().expect("narrow rows start at 16 bits");
            let expr = Expr::cast(narrow.elem, var("x", ty));
            vec![Scenario {
                expr,
                env: Env::new().bind("x", x.clone()),
                args: vec![x],
                result_ty: narrow,
            }]
        }
        MachSem::Reinterpret => {
            let flipped = if elem.is_signed() { elem.with_unsigned() } else { elem.with_signed() };
            let expr = Expr::reinterpret(flipped, var("x", ty)).unwrap();
            vec![Scenario {
                expr,
                env: Env::new().bind("x", x.clone()),
                args: vec![x],
                result_ty: VectorType::new(flipped, lanes),
            }]
        }
        MachSem::Fpir(op) => {
            match op.arity() {
                1 => {
                    let expr = Expr::fpir(op, vec![var("x", ty)]).unwrap();
                    let result_ty = expr.ty();
                    vec![Scenario {
                        expr,
                        env: Env::new().bind("x", x.clone()),
                        args: vec![x],
                        result_ty,
                    }]
                }
                2 => {
                    // `vwadd.wv` takes (wide, narrow); shifts take a
                    // bounded shift operand; the rest are same-type.
                    let y = match op {
                        FpirOp::ExtendingAdd | FpirOp::ExtendingSub | FpirOp::ExtendingMul => {
                            boundary_value(rng, ty.narrow().expect("extending rows are wide"))
                        }
                        FpirOp::RoundingShr | FpirOp::RoundingShl | FpirOp::SaturatingShl => {
                            shift_value(rng, ty)
                        }
                        _ => y,
                    };
                    let expr = Expr::fpir(op, vec![var("x", ty), var("y", y.ty())]).unwrap();
                    let result_ty = expr.ty();
                    vec![two(expr, x, y, result_ty)]
                }
                n => unreachable!("no {n}-ary FPIR row in the RVV table"),
            }
        }
        MachSem::MulAcc => {
            let acc = boundary_value(rng, ty);
            let expr = Expr::bin(
                BinOp::Add,
                var("acc", ty),
                Expr::bin(BinOp::Mul, var("x", ty), var("y", ty)).unwrap(),
            )
            .unwrap();
            vec![Scenario {
                expr,
                env: Env::new().bind("acc", acc.clone()).bind("x", x.clone()).bind("y", y.clone()),
                args: vec![acc, x, y],
                result_ty: ty,
            }]
        }
        MachSem::WideningMulAcc => {
            // First operand (the accumulator) is at the wide type; the
            // multiplicands are one width down.
            let narrow = ty.narrow().expect("vwmacc rows are wide");
            let acc = boundary_value(rng, ty);
            let (a, b) = (boundary_value(rng, narrow), boundary_value(rng, narrow));
            let expr = Expr::bin(
                BinOp::Add,
                var("acc", ty),
                Expr::fpir(FpirOp::WideningMul, vec![var("x", narrow), var("y", narrow)]).unwrap(),
            )
            .unwrap();
            vec![Scenario {
                expr,
                env: Env::new().bind("acc", acc.clone()).bind("x", a.clone()).bind("y", b.clone()),
                args: vec![acc, a, b],
                result_ty: ty,
            }]
        }
        MachSem::MulHigh => {
            // `vmulh` ≡ `mul_shr(x, y, bits)` — the shipped rvv-vmulh
            // rule's exact claim.
            let c = Expr::constant(elem.bits() as i128, ty).unwrap();
            let expr = Expr::fpir(FpirOp::MulShr, vec![var("x", ty), var("y", ty), c]).unwrap();
            vec![two(expr, x, y, ty)]
        }
        MachSem::QRDMulH => {
            // `vsmul` ≡ `rounding_mul_shr(x, y, bits - 1)` — the shipped
            // rvv-vsmul rule's exact claim, including MIN×MIN saturation.
            let c = Expr::constant(elem.bits() as i128 - 1, ty).unwrap();
            let expr =
                Expr::fpir(FpirOp::RoundingMulShr, vec![var("x", ty), var("y", ty), c]).unwrap();
            vec![two(expr, x, y, ty)]
        }
        MachSem::ShrNarrow => {
            // `vnsrl` ≡ truncating narrow of a plain shift.
            let narrow = ty.narrow().expect("vnsrl rows are wide");
            let s = shift_value(rng, ty);
            let expr =
                Expr::cast(narrow.elem, Expr::bin(BinOp::Shr, var("x", ty), var("s", ty)).unwrap());
            vec![Scenario {
                expr,
                env: Env::new().bind("x", x.clone()).bind("s", s.clone()),
                args: vec![x, s],
                result_ty: narrow,
            }]
        }
        MachSem::ShrRndSatNarrow => {
            // `vnclip` ≡ saturating_cast(rounding_shr(x, s)), to the
            // same-sign narrow and — for signed inputs — the unsigned
            // narrow (`vnclipu` as the shipped s2u rules use it).
            let narrow = ty.narrow().expect("vnclip rows are wide");
            let s = shift_value(rng, ty);
            let mut narrows = vec![narrow.elem];
            if elem.is_signed() {
                narrows.push(narrow.elem.with_unsigned());
            }
            narrows
                .into_iter()
                .map(|to| {
                    let expr = Expr::fpir(
                        FpirOp::SaturatingCast(to),
                        vec![Expr::fpir(FpirOp::RoundingShr, vec![var("x", ty), var("s", ty)])
                            .unwrap()],
                    )
                    .unwrap();
                    Scenario {
                        expr,
                        env: Env::new().bind("x", x.clone()).bind("s", s.clone()),
                        args: vec![x.clone(), s.clone()],
                        result_ty: VectorType::new(to, lanes),
                    }
                })
                .collect()
        }
        MachSem::Splat => {
            let c = boundary_lane(rng, elem);
            let expr = Expr::constant(c, ty).unwrap();
            vec![Scenario { expr, env: Env::new(), args: vec![Value::splat(c, ty)], result_ty: ty }]
        }
        other => unreachable!("the RVV table has no {other:?} row"),
    }
}

/// Run every row × legal width × legal signedness at one lane count.
fn check_all_rows(seed: u64, lanes: u32) {
    let mut rng = StdRng::seed_from_u64(seed);
    for def in target(Isa::Rvv).defs() {
        for &bits in def.widths {
            for &signed in signs(def.sign) {
                let elem = elem_of(bits, signed);
                for sc in scenarios(def, elem, lanes, &mut rng) {
                    let want = eval(&sc.expr, &sc.env).unwrap_or_else(|e| {
                        panic!("{}({}): reference eval failed: {e}", def.op, elem.name())
                    });
                    let got = eval_sem(def.sem, &sc.args, sc.result_ty).unwrap_or_else(|e| {
                        panic!("{}({}): eval_sem failed: {e}", def.op, elem.name())
                    });
                    assert_eq!(
                        want,
                        got,
                        "{} ({}) diverged from the FPIR interpreter at {}x{lanes} on {:?}",
                        def.op,
                        def.desc,
                        elem.name(),
                        sc.args,
                    );
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every RVV table row agrees with its FPIR reference expression on
    /// boundary-biased inputs, across the scalable lane counts.
    #[test]
    fn rvv_sems_match_fpir_interpreter(seed in any::<u64>(), li in 0usize..LANES.len()) {
        check_all_rows(seed, LANES[li]);
    }
}

/// Deterministic pins for the headline fixed-point saturation cases,
/// independent of proptest's sampling.
#[test]
fn vsmul_saturates_min_times_min() {
    for (elem, lanes) in [(ScalarType::I8, 3), (ScalarType::I16, 7), (ScalarType::I32, 1)] {
        let ty = VectorType::new(elem, lanes);
        let min = Value::splat(elem.min_value(), ty);
        let got = eval_sem(MachSem::QRDMulH, &[min.clone(), min], ty).unwrap();
        // Q-format MIN×MIN would be +2^(bits-1), one past MAX: must clamp.
        assert!(got.lanes().iter().all(|&v| v == elem.max_value()), "{got:?}");
    }
}

#[test]
fn vnclip_clips_to_the_narrow_range() {
    // i16 MAX >> 0, narrowed to i8: saturates to i8::MAX; to u8: u8::MAX.
    let ty = VectorType::new(ScalarType::I16, 3);
    let x = Value::splat(i16::MAX as i128, ty);
    let s = Value::splat(0, ty);
    let signed = eval_sem(
        MachSem::ShrRndSatNarrow,
        &[x.clone(), s.clone()],
        VectorType::new(ScalarType::I8, 3),
    )
    .unwrap();
    assert!(signed.lanes().iter().all(|&v| v == i8::MAX as i128), "{signed:?}");
    let unsigned =
        eval_sem(MachSem::ShrRndSatNarrow, &[x, s], VectorType::new(ScalarType::U8, 3)).unwrap();
    assert!(unsigned.lanes().iter().all(|&v| v == u8::MAX as i128), "{unsigned:?}");
    // A negative input clipped to unsigned pins at zero.
    let neg = Value::splat(-5, ty);
    let z = eval_sem(
        MachSem::ShrRndSatNarrow,
        &[neg, Value::splat(0, ty)],
        VectorType::new(ScalarType::U8, 3),
    )
    .unwrap();
    assert!(z.lanes().iter().all(|&v| v == 0), "{z:?}");
}

/// The table's width lists keep the raw-`i128`-product rows (`vmulh`,
/// `vsmul`) off 64-bit lanes, where the widened product would not fit.
#[test]
fn wide_product_rows_stop_at_32_bits() {
    for def in target(Isa::Rvv).defs() {
        if matches!(def.sem, MachSem::MulHigh | MachSem::QRDMulH) {
            assert!(!def.widths.contains(&64), "{} must not offer 64-bit lanes", def.op);
        }
    }
}
