//! Post-link optimization: linked-level cleanup and superinstruction
//! fusion.
//!
//! [`Executable::link`] (PR 4) already resolves names, semantics,
//! constants, and registers once — but its hot loop still pays one
//! dispatch, one full lane traversal, and one intermediate register
//! materialization *per instruction*, even for chains like
//! `mul → shr → add` that the cycle model prices as a single fused idiom
//! (`vmpa`/`vdmpy`-style). [`optimize`] rewrites a linked executable so
//! those chains run as **superinstructions**: one lane walk per chain,
//! intermediates in stack scalars, a single register write at the root.
//!
//! The pipeline, in order:
//!
//! 1. **SSA reconstruction** — the linked code is walked back into a
//!    def-use graph (physical registers → defining nodes).
//! 2. **Copy propagation** — single-operand wrap/saturate instructions
//!    whose operand already has the result's exact [`VectorType`]
//!    (`Reinterpret`, `ExtendTo`, `TruncTo`, `SatCastTo`, `Splat` at
//!    their own type) are identities on canonical lanes — the `Value`
//!    invariant — and are bypassed.
//! 3. **Constant folding** — instructions whose operands are all splat
//!    constants are evaluated once at fuse time through the *same*
//!    [`fpir_isa::eval_sem`] the engine would call, and interned into
//!    the constant pool. A lane-wise function of splats is a splat, so
//!    the pool's splat invariant is preserved.
//! 4. **Dead-write elimination** — nodes unreachable from the output
//!    are dropped. This is observationally safe because every lane
//!    helper is a *total* function (`x / 0 == 0`, shifts wrap) and the
//!    static verifier proves a linked artifact's shapes, so a verified
//!    executable cannot raise [`crate::vm::ExecError::Sem`] at run
//!    time: removing an instruction can never remove an error.
//! 5. **Fusion** — a peephole over def-use chains absorbs single-use
//!    producers into their unique consumer (arith chains,
//!    widening-mul/acc ladders, splat-feeding ops) as long as lane
//!    counts match and the kernel stays within [`MAX_STEPS`] steps /
//!    [`MAX_OPERANDS`] external operands. Splat-constant operands are
//!    baked into the kernel as immediates. Unfusable instructions fall
//!    through to the existing whole-vector dispatch unchanged.
//! 6. **Register re-allocation** — the surviving instructions are run
//!    back through the linker's linear scan, so `peak_regs` reflects
//!    the shorter lifetimes (in practice it only shrinks; exec-bench
//!    records before/after).
//!
//! **Why bit-identity holds.** Every fused step evaluates through
//! [`fpir_isa::sem_lane`], whose arms call the same lane helpers as the
//! whole-vector [`fpir_isa::eval_sem_into`] arms — the two are the same
//! arithmetic by shared code, pinned by a test in `fpir-isa`. Shape
//! errors cannot diverge either: operand types are static after
//! linking (input bindings are type-checked before dispatch), so the
//! verifier's fused-shape audit proves at fuse time everything
//! `eval_sem_into` would check per invocation. Binding errors are
//! untouched because the input slot table is preserved verbatim —
//! unbound/mistyped inputs blame the same load, position, and register
//! either way.

use crate::exec::{
    Executable, FPass, FSrc, FStep, FusedKernel, Kernel, LInst, Operand, OutLoc, MAX_OPERANDS,
    MAX_STEPS,
};
use crate::program::Reg;
use fpir::interp::Value;
use fpir::types::VectorType;
use fpir::MachOp;
use fpir_isa::{eval_sem, MachSem};

/// Engine selection for linking, mirroring the selection engine's
/// FAST/REFERENCE `EngineConfig`: [`ExecConfig::FAST`] runs the
/// post-link pipeline ([`optimize`]), [`ExecConfig::REFERENCE`] keeps
/// the plain PR 4 link. Outputs are bit-identical; only speed differs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecConfig {
    /// Run the post-link cleanup + superinstruction fusion pipeline.
    pub fuse: bool,
}

impl ExecConfig {
    /// Fused engine: the default for every production consumer.
    pub const FAST: ExecConfig = ExecConfig { fuse: true };
    /// Plain linked engine (PR 4), kept as the differential baseline.
    pub const REFERENCE: ExecConfig = ExecConfig { fuse: false };
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig::FAST
    }
}

/// Where a def-use node's operand comes from, pre-regalloc.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Src {
    Node(usize),
    In(u16),
    Const(u16),
}

/// One reconstructed SSA node (a linked instruction with def-use edges
/// instead of physical registers).
struct Node {
    op: MachOp,
    sem: MachSem,
    ty: VectorType,
    args: Vec<Src>,
    pos: u32,
    reg: Reg,
}

/// Run the post-link optimization pipeline (see the [module
/// docs](self)). Idempotent: an already-fused executable is returned
/// unchanged.
pub(crate) fn optimize(exe: Executable) -> Executable {
    if exe.code.iter().any(|i| matches!(i.kernel, Kernel::Fused(_))) {
        return exe;
    }
    let Executable { isa, inputs, mut consts, code, phys_regs, output, zero } = exe;

    // ---- 1. SSA reconstruction ------------------------------------
    let mut cur: Vec<Option<usize>> = vec![None; phys_regs];
    let mut nodes: Vec<Node> = Vec::with_capacity(code.len());
    for inst in &code {
        let sem = match inst.kernel {
            Kernel::Op(s) => s,
            Kernel::Fused(_) => unreachable!("checked above"),
        };
        let args = inst
            .args
            .iter()
            .map(|&a| match a {
                Operand::Reg(r) => {
                    Src::Node(cur[r as usize].expect("linked code defines registers before use"))
                }
                Operand::In(s) => Src::In(s),
                Operand::Const(c) => Src::Const(c),
            })
            .collect();
        nodes.push(Node { op: inst.op, sem, ty: inst.ty, args, pos: inst.pos, reg: inst.reg });
        if !inst.dst_dead {
            cur[inst.dst as usize] = Some(nodes.len() - 1);
        }
    }
    let mut out_src = match output {
        OutLoc::Reg(r) => Src::Node(cur[r as usize].expect("the output register is defined")),
        OutLoc::In(s) => Src::In(s),
        OutLoc::Const(c) => Src::Const(c),
    };

    // ---- 2+3. copy propagation and constant folding ---------------
    // One in-order pass: operands resolve through earlier replacements,
    // so cast-of-cast chains collapse and a cast of a constant folds.
    let mut rep: Vec<Option<Src>> = vec![None; nodes.len()];
    fn resolve(rep: &[Option<Src>], mut s: Src) -> Src {
        while let Src::Node(j) = s {
            match rep[j] {
                Some(r) => s = r,
                None => break,
            }
        }
        s
    }
    for i in 0..nodes.len() {
        for k in 0..nodes[i].args.len() {
            nodes[i].args[k] = resolve(&rep, nodes[i].args[k]);
        }
        let src_ty = |s: Src| match s {
            Src::Node(j) => nodes[j].ty,
            Src::In(k) => inputs[k as usize].ty,
            Src::Const(c) => consts[c as usize].ty(),
        };
        // Identity copies: a same-type wrap or saturate of a canonical
        // value is the value (the `Value` lane invariant).
        let copyish = matches!(
            nodes[i].sem,
            MachSem::ExtendTo
                | MachSem::TruncTo
                | MachSem::Reinterpret
                | MachSem::SatCastTo
                | MachSem::Splat
        );
        if copyish && nodes[i].args.len() == 1 && src_ty(nodes[i].args[0]) == nodes[i].ty {
            rep[i] = Some(nodes[i].args[0]);
            continue;
        }
        // Fold all-constant operands through the engine's own evaluator.
        if !nodes[i].args.is_empty() && nodes[i].args.iter().all(|a| matches!(a, Src::Const(_))) {
            let vals: Vec<Value> = nodes[i]
                .args
                .iter()
                .map(|a| match a {
                    Src::Const(c) => consts[*c as usize].clone(),
                    _ => unreachable!(),
                })
                .collect();
            if let Ok(v) = eval_sem(nodes[i].sem, &vals, nodes[i].ty) {
                // Lane-wise semantics on splats always yield a splat;
                // checked anyway so a non-splat can never enter the pool.
                if v.lanes().iter().all(|&x| x == v.lane(0)) {
                    rep[i] = Some(Src::Const(intern_const(&mut consts, v)));
                }
            }
        }
    }
    out_src = resolve(&rep, out_src);

    // ---- 4. dead-write elimination (reachability) -----------------
    let mut live = vec![false; nodes.len()];
    if let Src::Node(root) = out_src {
        let mut stack = vec![root];
        while let Some(j) = stack.pop() {
            if live[j] {
                continue;
            }
            live[j] = true;
            for &a in &nodes[j].args {
                if let Src::Node(k) = a {
                    stack.push(k);
                }
            }
        }
    }

    // ---- 5. fusion grouping ---------------------------------------
    // A producer is absorbable into a group when *every* live consumer
    // of its value is already inside the group — single-use chains and
    // multi-use diamonds alike (an intermediate's scratchpad row can be
    // read by any number of later steps). The program's output node is
    // never absorbed: its value must land in a register.
    let out_node = match out_src {
        Src::Node(r) => Some(r),
        _ => None,
    };
    let mut consumers: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];
    for i in 0..nodes.len() {
        if !live[i] {
            continue;
        }
        for &a in &nodes[i].args {
            if let Src::Node(j) = a {
                if !consumers[j].contains(&i) {
                    consumers[j].push(i);
                }
            }
        }
    }

    // groups[i]: the steps (node ids, ascending = evaluation order, i
    // last) node i would contribute if emitted; absorbed nodes are
    // never emitted standalone.
    let mut groups: Vec<Vec<usize>> = Vec::with_capacity(nodes.len());
    let mut absorbed = vec![false; nodes.len()];
    for i in 0..nodes.len() {
        let mut g: Vec<usize> = vec![i];
        if live[i] {
            // Fixed point: each round may close another consumer of a
            // shared value, making its producer absorbable in the next.
            loop {
                let mut grew = false;
                for j in (0..i).rev() {
                    if absorbed[j]
                        || !live[j]
                        || g.contains(&j)
                        || out_node == Some(j)
                        || nodes[j].ty.lanes != nodes[i].ty.lanes
                        || !consumers[j].iter().all(|c| g.contains(c))
                    {
                        continue;
                    }
                    // Tentatively absorb j's whole group; keep it only
                    // if the fused kernel stays within the step and
                    // external-operand budgets.
                    let mut cand = g.clone();
                    cand.extend(groups[j].iter().copied());
                    cand.sort_unstable();
                    cand.dedup();
                    if cand.len() <= MAX_STEPS && external_srcs(&cand, &nodes).len() <= MAX_OPERANDS
                    {
                        for &m in &groups[j] {
                            absorbed[m] = true;
                        }
                        g = cand;
                        grew = true;
                    }
                }
                if !grew {
                    break;
                }
            }
        }
        // Ascending node ids are dependency order (args always refer to
        // earlier nodes), with the root `i` last.
        g.sort_unstable();
        groups.push(g);
    }

    // ---- 6. emission + linear-scan register re-allocation ---------
    let roots: Vec<usize> = (0..nodes.len()).filter(|&i| live[i] && !absorbed[i]).collect();
    // Last use of each root, in emission order; the output is used
    // "after the end" — the same discipline as the linker.
    let mut last_use = vec![usize::MAX; nodes.len()];
    for (t, &r) in roots.iter().enumerate() {
        for s in external_srcs(&groups[r], &nodes) {
            if let Src::Node(j) = s {
                last_use[j] = t;
            }
        }
    }
    if let Src::Node(root) = out_src {
        last_use[root] = roots.len();
    }

    let mut phys_of: Vec<Option<u16>> = vec![None; nodes.len()];
    let mut free: Vec<u16> = Vec::new();
    let mut next_phys: u16 = 0;
    let mut new_code: Vec<LInst> = Vec::with_capacity(roots.len());
    for (t, &r) in roots.iter().enumerate() {
        let g = &groups[r];
        let ext = external_srcs(g, &nodes);
        let (kernel, args): (Kernel, Box<[Operand]>) = if g.len() == 1 {
            // Single instruction: unchanged whole-vector dispatch,
            // constants kept in the pool.
            let args = nodes[r].args.iter().map(|&a| operand_of(a, &phys_of)).collect();
            (Kernel::Op(nodes[r].sem), args)
        } else {
            // Fused chain: internal edges become scratchpad temps,
            // everything else (registers, inputs, pool constants) an
            // external operand.
            let steps = g
                .iter()
                .map(|&m| {
                    let n = &nodes[m];
                    let mut srcs = Vec::with_capacity(n.args.len());
                    let mut tys = Vec::with_capacity(n.args.len());
                    for &a in &n.args {
                        match a {
                            Src::Node(j) if g.contains(&j) => {
                                let local = g.iter().position(|&x| x == j).unwrap();
                                srcs.push(FSrc::Tmp(local as u16));
                                tys.push(nodes[j].ty.elem);
                            }
                            other => {
                                let k = ext.iter().position(|&x| x == other).unwrap();
                                srcs.push(FSrc::Arg(k as u16));
                                tys.push(match other {
                                    Src::Node(j) => nodes[j].ty.elem,
                                    Src::In(s) => inputs[s as usize].ty.elem,
                                    Src::Const(c) => consts[c as usize].ty().elem,
                                });
                            }
                        }
                    }
                    let eval = fpir_isa::sem_slice_fn(n.sem, &tys, n.ty.elem);
                    FStep {
                        op: n.op,
                        sem: n.sem,
                        ty: n.ty,
                        srcs: srcs.into_boxed_slice(),
                        tys: tys.into_boxed_slice(),
                        eval,
                        pos: n.pos,
                        reg: n.reg,
                    }
                })
                .collect::<Vec<_>>()
                .into_boxed_slice();
            // External operands that are pool constants are splats by
            // the pool's interning invariant; capture their scalar so
            // compiled passes can keep it in a register instead of
            // streaming a constant row.
            let arg_splat: Vec<Option<i128>> = ext
                .iter()
                .map(|&s| match s {
                    Src::Const(c) => {
                        let v = &consts[c as usize];
                        let c0 = v.lane(0);
                        v.lanes().iter().all(|&x| x == c0).then_some(c0)
                    }
                    _ => None,
                })
                .collect();
            let passes = build_passes(&steps, &arg_splat);
            let args = ext.iter().map(|&a| operand_of(a, &phys_of)).collect();
            (Kernel::Fused(Box::new(FusedKernel { steps, passes })), args)
        };
        // Allocate the destination BEFORE freeing dying operands — the
        // engine reclaims the destination's buffer before reading
        // operands, so the two must never share a register.
        let dst = free.pop().unwrap_or_else(|| {
            let d = next_phys;
            next_phys += 1;
            d
        });
        phys_of[r] = Some(dst);
        for s in ext {
            if let Src::Node(j) = s {
                if last_use[j] == t {
                    if let Some(ph) = phys_of[j].take() {
                        free.push(ph);
                    }
                }
            }
        }
        new_code.push(LInst {
            op: nodes[r].op,
            kernel,
            ty: nodes[r].ty,
            dst,
            args,
            pos: nodes[r].pos,
            reg: nodes[r].reg,
            dst_dead: false,
        });
    }

    let new_output = match out_src {
        Src::Node(r) => OutLoc::Reg(phys_of[r].expect("the output register stays live")),
        Src::In(s) => OutLoc::In(s),
        Src::Const(c) => OutLoc::Const(c),
    };

    // Compact the constant pool down to referenced entries (folding may
    // have appended, baking may have orphaned).
    let mut used = vec![false; consts.len()];
    for inst in &new_code {
        for a in inst.args.iter() {
            if let Operand::Const(c) = a {
                used[*c as usize] = true;
            }
        }
    }
    if let OutLoc::Const(c) = new_output {
        used[c as usize] = true;
    }
    let mut remap = vec![0u16; consts.len()];
    let mut new_consts = Vec::new();
    for (c, v) in consts.into_iter().enumerate() {
        if used[c] {
            remap[c] = new_consts.len() as u16;
            new_consts.push(v);
        }
    }
    for inst in &mut new_code {
        for a in inst.args.iter_mut() {
            if let Operand::Const(c) = a {
                *c = remap[*c as usize];
            }
        }
    }
    let new_output = match new_output {
        OutLoc::Const(c) => OutLoc::Const(remap[c as usize]),
        other => other,
    };

    let fused = Executable {
        isa,
        inputs,
        consts: new_consts,
        code: new_code,
        phys_regs: next_phys as usize,
        output: new_output,
        zero,
    };
    // Debug builds audit every artifact leaving the fuser, exactly as
    // the linker audits its own output: a fuser bug is an internal
    // invariant violation, never a user-visible difference.
    #[cfg(debug_assertions)]
    if let Err(v) = crate::verify::verify_executable(&fused) {
        panic!("fusion produced an unverifiable executable: {v}\n{fused}");
    }
    fused
}

/// Derive a fused kernel's execution schedule from its audited step
/// list: one compiled strip loop per step, except that a step whose
/// operand is a *single-use* lane-wise producer absorbs that producer
/// into the same loop ([`fpir_isa::sem_slice_fn_pair`]) — the
/// intermediate then lives in a register for the duration of a lane
/// instead of round-tripping through a scratch row. Pair merging is one
/// level deep (a merged pass cannot itself be absorbed), greedy in step
/// order, and falls back to the step's own compiled kernel whenever the
/// composer declines the pair. Unmerged passes with a splat-constant
/// operand get the constant baked in as a captured scalar instead
/// ([`fpir_isa::sem_slice_fn_splat`]).
///
/// Whether absorbing `p`'s loop into `c`'s pays off. Fusing a pair saves a
/// scratch-row round trip and a dispatch, but the wider merged loop body
/// also optimizes worse than two tight two-operand loops; for cheap
/// lane-wise ops (add, min/max, logic) the second effect dominates and the
/// merged loop measures *slower*. Only multiply-class producers — where
/// the op cost dwarfs the loop-shape penalty — are worth merging (and even
/// then `build_passes` skips the pair when either side holds a
/// splat-constant operand, which is worth more as a captured scalar).
fn pair_profitable(p: fpir_isa::MachSem, c: fpir_isa::MachSem) -> bool {
    use fpir::expr::BinOp;
    use fpir_isa::MachSem;
    let mul = |s: MachSem| matches!(s, MachSem::Bin(BinOp::Mul) | MachSem::Fpir(_));
    mul(p) || mul(c)
}

fn build_passes(steps: &[FStep], arg_splat: &[Option<i128>]) -> Box<[FPass]> {
    let n = steps.len();
    let mut uses = vec![0usize; n];
    for step in steps {
        for src in step.srcs.iter() {
            if let FSrc::Tmp(t) = *src {
                uses[t as usize] += 1;
            }
        }
    }
    // Consumer j absorbs producer t at operand k.
    let mut absorbs: Vec<Option<(usize, usize, fpir_isa::SemSliceFn)>> = Vec::new();
    absorbs.resize_with(n, || None);
    let mut absorbed = vec![false; n];
    for j in 0..n {
        for (k, src) in steps[j].srcs.iter().enumerate() {
            let FSrc::Tmp(t) = *src else { continue };
            let t = t as usize;
            // The producer must be single-use, not already merged either
            // way, the pair must be profitable, and it must compose into
            // one lane-wise loop.
            if uses[t] != 1 || absorbed[t] || absorbs[t].is_some() {
                continue;
            }
            if !pair_profitable(steps[t].sem, steps[j].sem) {
                continue;
            }
            // A splat-constant operand on either side is worth more as
            // a captured scalar (the merged loop would stream the
            // constant row and lose its register): leave both steps to
            // the splat-capture path below.
            let has_splat = |s: &FStep| {
                s.srcs.iter().any(|&x| matches!(x, FSrc::Arg(a) if arg_splat[a as usize].is_some()))
            };
            if has_splat(&steps[t]) || has_splat(&steps[j]) {
                continue;
            }
            let pair = fpir_isa::sem_slice_fn_pair(
                steps[t].sem,
                &steps[t].tys,
                steps[t].ty.elem,
                steps[j].sem,
                &steps[j].tys,
                steps[j].ty.elem,
                k,
            );
            if let Some(eval) = pair {
                absorbs[j] = Some((t, k, eval));
                absorbed[t] = true;
                break;
            }
        }
    }
    let mut passes = Vec::with_capacity(n);
    for (j, step) in steps.iter().enumerate() {
        if absorbed[j] {
            continue;
        }
        passes.push(match absorbs[j].take() {
            Some((t, k, eval)) => {
                let srcs = steps[t]
                    .srcs
                    .iter()
                    .chain(step.srcs.iter().enumerate().filter(|&(i, _)| i != k).map(|(_, s)| s))
                    .copied()
                    .collect();
                FPass { last: j as u16, absorbed: Some(t as u16), srcs, eval }
            }
            None => {
                // A splat-constant operand becomes a captured scalar:
                // the pass stages the same audited sources (the
                // verifier checks them verbatim against the step), but
                // the compiled loop never reads the constant row.
                let mut eval = step.eval.clone();
                for (k, s) in step.srcs.iter().enumerate() {
                    let FSrc::Arg(a) = *s else { continue };
                    let Some(c) = arg_splat[a as usize] else { continue };
                    if let Some(e) =
                        fpir_isa::sem_slice_fn_splat(step.sem, &step.tys, step.ty.elem, k, c)
                    {
                        eval = e;
                        break;
                    }
                }
                FPass { last: j as u16, absorbed: None, srcs: step.srcs.clone(), eval }
            }
        });
    }
    passes.into_boxed_slice()
}

/// The distinct external sources a fused group reads: everything that is
/// not an internal edge (inside the group) — registers, input slots, and
/// pool constants alike — in first-use order.
fn external_srcs(group: &[usize], nodes: &[Node]) -> Vec<Src> {
    let mut ext: Vec<Src> = Vec::new();
    for &m in group {
        for &a in &nodes[m].args {
            match a {
                Src::Node(j) if group.contains(&j) => {}
                other => {
                    if !ext.contains(&other) {
                        ext.push(other);
                    }
                }
            }
        }
    }
    ext
}

fn operand_of(s: Src, phys_of: &[Option<u16>]) -> Operand {
    match s {
        Src::Node(j) => Operand::Reg(phys_of[j].expect("external operands are defined before use")),
        Src::In(k) => Operand::In(k),
        Src::Const(c) => Operand::Const(c),
    }
}

/// Intern a splat value into the pool, deduplicating by type and lane
/// value — the same discipline as the linker's pool construction.
fn intern_const(consts: &mut Vec<Value>, v: Value) -> u16 {
    match consts.iter().position(|c| c.ty() == v.ty() && c.lane(0) == v.lane(0)) {
        Some(c) => c as u16,
        None => {
            consts.push(v);
            (consts.len() - 1) as u16
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{emit, Program};
    use crate::vm::execute;
    use fpir::build;
    use fpir::interp::Env;
    use fpir::types::{ScalarType as S, VectorType as V};
    use fpir::{Isa, RcExpr};
    use fpir_isa::{legalize, target};

    fn both(e: &RcExpr, isa: Isa) -> (Program, Executable, Executable) {
        let t = target(isa);
        let p = emit(&legalize(e, t).unwrap(), t).unwrap();
        let plain = Executable::link_with(&p, t, &ExecConfig::REFERENCE).unwrap();
        let fused = Executable::link_with(&p, t, &ExecConfig::FAST).unwrap();
        (p, plain, fused)
    }

    /// A sharpening-filter-style chain: widening arithmetic, a constant,
    /// and a saturating narrow — the shape the fuser exists for.
    fn chain_expr(t: V) -> RcExpr {
        build::saturating_cast(
            S::U8,
            build::widening_add(
                build::rounding_halving_add(build::var("a", t), build::var("b", t)),
                build::constant(3, t),
            ),
        )
    }

    #[test]
    fn fused_matches_unfused_and_reference_everywhere() {
        let t = V::new(S::U8, 16);
        let exprs = [
            chain_expr(t),
            build::rounding_halving_add(build::var("a", t), build::var("b", t)),
            build::var("a", t),
            build::constant(7, t),
            build::absd(
                build::add(build::var("a", t), build::constant(1, t)),
                build::mul(build::var("b", t), build::constant(2, t)),
            ),
        ];
        let mut state: i128 = 99;
        for e in &exprs {
            for isa in fpir::machine::ALL_ISAS {
                let (p, plain, fused) = both(e, isa);
                let mk = |seed: i128| {
                    Value::new(t, (0..16).map(|i| (seed * 31 + i * 7) % 256).collect())
                };
                state += 1;
                let env = Env::new().bind("a", mk(state)).bind("b", mk(state + 5));
                let want = execute(&p, &env, target(isa)).unwrap();
                let mut cp = plain.new_ctx();
                let mut cf = fused.new_ctx();
                assert_eq!(plain.run(&mut cp, &env).unwrap(), want, "{isa} plain");
                assert_eq!(fused.run(&mut cf, &env).unwrap(), want, "{isa} fused");
            }
        }
    }

    #[test]
    fn chains_collapse_into_superinstructions() {
        let t = V::new(S::U8, 16);
        for isa in fpir::machine::ALL_ISAS {
            let (_, plain, fused) = both(&chain_expr(t), isa);
            assert!(
                fused.op_count() < plain.op_count(),
                "{isa}: fused {} dispatches vs plain {}\n{fused}",
                fused.op_count(),
                plain.op_count()
            );
            assert!(fused.fused_count() >= 1, "{isa}:\n{fused}");
        }
    }

    #[test]
    fn peak_regs_only_shrinks() {
        let t = V::new(S::U8, 16);
        let exprs = [
            chain_expr(t),
            build::add(
                build::mul(build::var("a", t), build::var("b", t)),
                build::mul(build::var("c", t), build::var("d", t)),
            ),
        ];
        for e in &exprs {
            for isa in fpir::machine::ALL_ISAS {
                let (_, plain, fused) = both(e, isa);
                assert!(
                    fused.peak_regs() <= plain.peak_regs(),
                    "{isa}: {} regs after fusion vs {}",
                    fused.peak_regs(),
                    plain.peak_regs()
                );
            }
        }
    }

    #[test]
    fn all_constant_programs_fold_to_the_pool() {
        let t = V::new(S::U8, 16);
        let e = build::add(build::constant(3, t), build::constant(4, t));
        let (_, plain, fused) = both(&e, Isa::ArmNeon);
        assert!(plain.op_count() >= 1);
        assert_eq!(fused.op_count(), 0, "constants fold away:\n{fused}");
        let env = Env::new();
        let mut ctx = fused.new_ctx();
        assert_eq!(fused.run(&mut ctx, &env).unwrap(), Value::splat(7, t));
    }

    #[test]
    fn optimize_is_idempotent() {
        let t = V::new(S::U8, 16);
        let (_, _, fused) = both(&chain_expr(t), Isa::HexagonHvx);
        let again = optimize(fused.clone());
        assert_eq!(again.render(), fused.render());
    }

    #[test]
    fn fused_binding_errors_are_identical() {
        let t = V::new(S::U8, 16);
        let (p, plain, fused) = both(&chain_expr(t), Isa::ArmNeon);
        // Unbound input, then a mistyped binding: the fused engine must
        // blame the same load (name, position, register) as the plain
        // engine and the reference VM.
        let envs = [
            Env::new().bind("a", Value::splat(1, t)),
            Env::new().bind("a", Value::splat(1, t)).bind("b", Value::splat(1, V::new(S::U16, 16))),
        ];
        for env in &envs {
            let want = execute(&p, env, target(Isa::ArmNeon)).unwrap_err();
            let mut cp = plain.new_ctx();
            let mut cf = fused.new_ctx();
            let ep = plain.run(&mut cp, env).unwrap_err();
            let ef = fused.run(&mut cf, env).unwrap_err();
            assert_eq!(format!("{want:?}"), format!("{ep:?}"));
            assert_eq!(format!("{want:?}"), format!("{ef:?}"));
        }
    }

    #[test]
    fn fused_steady_state_runs_are_allocation_free() {
        // The fused hot path must preserve PR 4's zero-allocation
        // guarantee: intermediates live in stack scalars, the result in
        // a recycled buffer.
        let t = V::new(S::U8, 64);
        let e = chain_expr(t);
        let (_, _, fused) = both(&e, Isa::ArmNeon);
        let env = Env::new().bind("a", Value::splat(7, t)).bind("b", Value::splat(9, t));
        let mut ctx = fused.new_ctx();
        let out = fused.run(&mut ctx, &env).unwrap();
        ctx.recycle(out);
        let primed = ctx.buffer_allocs();
        for _ in 0..100 {
            let out = fused.run(&mut ctx, &env).unwrap();
            ctx.recycle(out);
        }
        assert_eq!(
            ctx.buffer_allocs(),
            primed,
            "steady-state fused invocations must not allocate lane buffers"
        );
        assert_eq!(ctx.invocations(), 101);
    }
}
