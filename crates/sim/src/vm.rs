//! The vector virtual machine.
//!
//! Executes linear machine programs on concrete inputs through the
//! instruction tables' semantics. This is the stand-in for running on an
//! M1 / Xeon or Qualcomm's cycle-accurate Hexagon simulator: correctness
//! comes from [`execute`] agreeing with the reference interpreter
//! (see [`crate::difftest`]), and relative performance from
//! [`crate::program::cycle_cost`].

use crate::program::{PKind, Program};
use fpir::interp::{Env, Value};
use fpir_isa::{eval_sem, Target};
use std::fmt;

/// Execution failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecError {
    /// What went wrong.
    pub what: String,
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "execution failed: {}", self.what)
    }
}

impl std::error::Error for ExecError {}

/// Run a program on bound inputs, returning the output vector.
///
/// # Errors
///
/// Fails on unbound inputs, type-mismatched bindings, or instructions
/// whose operands violate their semantics.
pub fn execute(p: &Program, env: &Env, target: &Target) -> Result<Value, ExecError> {
    if p.isa != target.isa {
        return Err(ExecError { what: format!("program is for {}, not {}", p.isa, target.isa) });
    }
    let mut regs: Vec<Value> = Vec::with_capacity(p.insts().len());
    for inst in p.insts() {
        let value = match &inst.kind {
            PKind::Load { name } => {
                let v = env
                    .get(name)
                    .ok_or_else(|| ExecError { what: format!("unbound input `{name}`") })?;
                if v.ty() != inst.ty {
                    return Err(ExecError {
                        what: format!(
                            "input `{name}` bound as {} but loaded as {}",
                            v.ty(),
                            inst.ty
                        ),
                    });
                }
                v.clone()
            }
            PKind::Splat { value } => Value::splat(*value, inst.ty),
            PKind::Op { op, args } => {
                let def = target
                    .def(*op)
                    .ok_or_else(|| ExecError { what: format!("unknown opcode {op}") })?;
                let operands: Vec<Value> = args.iter().map(|&r| regs[r].clone()).collect();
                eval_sem(def.sem, &operands, inst.ty).map_err(|what| ExecError { what })?
            }
        };
        regs.push(value);
    }
    Ok(regs[p.output()].clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::emit;
    use fpir::build;
    use fpir::types::{ScalarType as S, VectorType as V};
    use fpir::Isa;
    use fpir_isa::{legalize, target};

    #[test]
    fn executes_a_lowered_average() {
        let t = V::new(S::U8, 4);
        let e = build::rounding_halving_add(build::var("a", t), build::var("b", t));
        let tgt = target(Isa::HexagonHvx);
        let p = emit(&legalize(&e, tgt).unwrap(), tgt).unwrap();
        let env = Env::new()
            .bind("a", Value::new(t, vec![3, 255, 0, 10]))
            .bind("b", Value::new(t, vec![4, 255, 1, 20]));
        let out = execute(&p, &env, tgt).unwrap();
        assert_eq!(out.lanes(), &[4, 255, 1, 15]);
    }

    #[test]
    fn unbound_input_fails() {
        let t = V::new(S::U8, 4);
        let e = build::add(build::var("a", t), build::var("b", t));
        let tgt = target(Isa::ArmNeon);
        let p = emit(&legalize(&e, tgt).unwrap(), tgt).unwrap();
        let env = Env::new().bind("a", Value::splat(1, t));
        assert!(execute(&p, &env, tgt).is_err());
    }

    #[test]
    fn mistyped_input_fails() {
        let t = V::new(S::U8, 4);
        let e = build::add(build::var("a", t), build::var("b", t));
        let tgt = target(Isa::ArmNeon);
        let p = emit(&legalize(&e, tgt).unwrap(), tgt).unwrap();
        let env =
            Env::new().bind("a", Value::splat(1, t)).bind("b", Value::splat(1, V::new(S::U16, 4)));
        assert!(execute(&p, &env, tgt).is_err());
    }
}
