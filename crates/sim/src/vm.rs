//! The vector virtual machine.
//!
//! Executes linear machine programs on concrete inputs through the
//! instruction tables' semantics. This is the stand-in for running on an
//! M1 / Xeon or Qualcomm's cycle-accurate Hexagon simulator: correctness
//! comes from [`execute`] agreeing with the reference interpreter
//! (see [`crate::difftest`]), and relative performance from
//! [`crate::program::cycle_cost`].

use crate::program::{PKind, Program, Reg};
use fpir::interp::{Env, Value};
use fpir::types::VectorType;
use fpir::{Isa, MachOp};
use fpir_isa::{eval_sem, Target};
use std::fmt;

/// Execution failure. Every variant that concerns one instruction carries
/// the instruction's position in the program (`pos`, 0-based) and its
/// destination register (`reg`), so a failing run can be pinned to a line
/// of [`Program::render`] output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// The program was compiled for a different ISA than the target (or
    /// executable) it was run against.
    IsaMismatch {
        /// ISA the program was compiled for.
        program: Isa,
        /// ISA it was executed on.
        target: Isa,
    },
    /// A `Load` instruction's input name had no binding.
    UnboundInput {
        /// The missing input name.
        name: String,
        /// Position of the load in the program.
        pos: usize,
        /// Destination register of the load.
        reg: Reg,
    },
    /// A binding's type differed from the load's declared type.
    InputTypeMismatch {
        /// Input name.
        name: String,
        /// Position of the load in the program.
        pos: usize,
        /// Destination register of the load.
        reg: Reg,
        /// Type the program loads the input as.
        declared: VectorType,
        /// Type of the value actually bound.
        bound: VectorType,
    },
    /// An opcode not present in the target's instruction table.
    UnknownOp {
        /// The unknown opcode.
        op: MachOp,
        /// Position of the instruction.
        pos: usize,
        /// Destination register.
        reg: Reg,
    },
    /// The instruction's semantics rejected its operands.
    Sem {
        /// The opcode that failed.
        op: MachOp,
        /// Position of the instruction.
        pos: usize,
        /// Destination register.
        reg: Reg,
        /// The semantic error.
        what: String,
    },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "execution failed: ")?;
        match self {
            ExecError::IsaMismatch { program, target } => {
                write!(f, "program is for {program}, not {target}")
            }
            ExecError::UnboundInput { name, pos, reg } => {
                write!(f, "unbound input `{name}` (load at #{pos} into v{reg})")
            }
            ExecError::InputTypeMismatch { name, pos, reg, declared, bound } => {
                write!(
                    f,
                    "input `{name}` bound as {bound} but loaded as {declared} \
                     (load at #{pos} into v{reg})"
                )
            }
            ExecError::UnknownOp { op, pos, reg } => {
                write!(f, "unknown opcode {op} (at #{pos} into v{reg})")
            }
            ExecError::Sem { op, pos, reg, what } => {
                write!(f, "{op} at #{pos} into v{reg}: {what}")
            }
        }
    }
}

impl std::error::Error for ExecError {}

/// Run a program on bound inputs, returning the output vector.
///
/// This is the REFERENCE execution engine: a direct, tree-of-clones
/// interpretation of the program against the instruction tables. The
/// linked engine ([`crate::exec::Executable`]) is differentially gated
/// against it.
///
/// # Errors
///
/// Fails on unbound inputs, type-mismatched bindings, or instructions
/// whose operands violate their semantics.
pub fn execute(p: &Program, env: &Env, target: &Target) -> Result<Value, ExecError> {
    if p.isa != target.isa {
        return Err(ExecError::IsaMismatch { program: p.isa, target: target.isa });
    }
    let mut regs: Vec<Value> = Vec::with_capacity(p.insts().len());
    for (pos, inst) in p.insts().iter().enumerate() {
        let value = match &inst.kind {
            PKind::Load { name } => {
                let v = env.get(name).ok_or_else(|| ExecError::UnboundInput {
                    name: name.clone(),
                    pos,
                    reg: inst.dst,
                })?;
                if v.ty() != inst.ty {
                    return Err(ExecError::InputTypeMismatch {
                        name: name.clone(),
                        pos,
                        reg: inst.dst,
                        declared: inst.ty,
                        bound: v.ty(),
                    });
                }
                v.clone()
            }
            PKind::Splat { value } => Value::splat(*value, inst.ty),
            PKind::Op { op, args } => {
                let def =
                    target.def(*op).ok_or(ExecError::UnknownOp { op: *op, pos, reg: inst.dst })?;
                let operands: Vec<Value> = args.iter().map(|&r| regs[r].clone()).collect();
                eval_sem(def.sem, &operands, inst.ty).map_err(|what| ExecError::Sem {
                    op: *op,
                    pos,
                    reg: inst.dst,
                    what,
                })?
            }
        };
        regs.push(value);
    }
    Ok(regs[p.output()].clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::emit;
    use fpir::build;
    use fpir::types::{ScalarType as S, VectorType as V};
    use fpir::Isa;
    use fpir_isa::{legalize, target};

    #[test]
    fn executes_a_lowered_average() {
        let t = V::new(S::U8, 4);
        let e = build::rounding_halving_add(build::var("a", t), build::var("b", t));
        let tgt = target(Isa::HexagonHvx);
        let p = emit(&legalize(&e, tgt).unwrap(), tgt).unwrap();
        let env = Env::new()
            .bind("a", Value::new(t, vec![3, 255, 0, 10]))
            .bind("b", Value::new(t, vec![4, 255, 1, 20]));
        let out = execute(&p, &env, tgt).unwrap();
        assert_eq!(out.lanes(), &[4, 255, 1, 15]);
    }

    #[test]
    fn unbound_input_fails() {
        let t = V::new(S::U8, 4);
        let e = build::add(build::var("a", t), build::var("b", t));
        let tgt = target(Isa::ArmNeon);
        let p = emit(&legalize(&e, tgt).unwrap(), tgt).unwrap();
        let env = Env::new().bind("a", Value::splat(1, t));
        assert!(execute(&p, &env, tgt).is_err());
    }

    #[test]
    fn mistyped_input_fails() {
        let t = V::new(S::U8, 4);
        let e = build::add(build::var("a", t), build::var("b", t));
        let tgt = target(Isa::ArmNeon);
        let p = emit(&legalize(&e, tgt).unwrap(), tgt).unwrap();
        let env =
            Env::new().bind("a", Value::splat(1, t)).bind("b", Value::splat(1, V::new(S::U16, 4)));
        assert!(execute(&p, &env, tgt).is_err());
    }
}
