//! Differential testing: a compiled program must agree with the source
//! expression's reference semantics on concrete inputs.
//!
//! Every instruction-selection pipeline in the workspace (Pitchfork, the
//! LLVM-like baseline, the Rake-like searcher) is validated through this
//! harness. It plays the role that running on real hardware played for
//! the paper's authors.
//!
//! The harness checks **all three execution engines** on every round:
//! the REFERENCE VM ([`crate::vm::execute`]) against the source
//! expression's semantics, the plain linked engine
//! ([`crate::exec::Executable`]) against the reference VM, and the
//! fused linked engine ([`crate::fuse`]) against both — all must return
//! identical `Result`s. Both the plain and the fused artifact pass the
//! static verifier ([`crate::verify`]) before anything runs, in every
//! build profile.

use crate::exec::Executable;
use crate::program::Program;
use crate::vm::execute;
use fpir::expr::RcExpr;
use fpir::interp::{eval, Env};
use fpir::rand_expr::random_env;
use fpir_isa::Target;
use rand::Rng;
use std::fmt;

/// A semantic disagreement between an expression and a compiled program.
#[derive(Debug, Clone)]
pub struct Counterexample {
    /// The environment that exposed the bug.
    pub env: Env,
    /// What differed.
    pub detail: String,
}

impl fmt::Display for Counterexample {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "counterexample: {}", self.detail)
    }
}

/// Check `program` against `source` on `rounds` boundary-biased random
/// environments.
///
/// # Errors
///
/// Returns the first disagreement found.
pub fn check_program(
    source: &RcExpr,
    program: &Program,
    target: &Target,
    rng: &mut impl Rng,
    rounds: usize,
) -> Result<(), Counterexample> {
    let exe = Executable::link(program, target).map_err(|e| Counterexample {
        env: Env::new(),
        detail: format!("linking failed: {e}\n{program}"),
    })?;
    let fused = crate::fuse::optimize(exe.clone());
    // Static artifact audit before anything runs — on BOTH links: a
    // malformed link or fusion is a counterexample in its own right,
    // caught here even in release builds (the in-link gate is
    // debug-only).
    for (name, artifact) in [("linked", &exe), ("fused", &fused)] {
        crate::verify::verify_executable(artifact).map_err(|v| Counterexample {
            env: Env::new(),
            detail: format!("{name} artifact verification failed: {v}\n{program}"),
        })?;
    }
    let mut ctx = exe.new_ctx();
    let mut fctx = fused.new_ctx();
    for _ in 0..rounds {
        let env = random_env(rng, source);
        let want = eval(source, &env).map_err(|e| Counterexample {
            env: env.clone(),
            detail: format!("reference evaluation failed: {e}"),
        })?;
        let reference = execute(program, &env, target);
        let fast = exe.run(&mut ctx, &env);
        if reference != fast {
            return Err(Counterexample {
                env,
                detail: format!(
                    "engines disagree: reference {reference:?} vs linked {fast:?}\n{program}"
                ),
            });
        }
        let fused_out = fused.run(&mut fctx, &env);
        if reference != fused_out {
            return Err(Counterexample {
                env,
                detail: format!(
                    "engines disagree: reference {reference:?} vs fused {fused_out:?}\n{program}\n{fused}"
                ),
            });
        }
        let got = reference.map_err(|e| Counterexample {
            env: env.clone(),
            detail: format!("program execution failed: {e}\n{program}"),
        })?;
        if let Ok(f) = fused_out {
            fctx.recycle(f);
        }
        if let Ok(fast_out) = fast {
            ctx.recycle(fast_out);
        }
        if want != got {
            // Locate the first differing lane for the report.
            let lane =
                (0..want.ty().lanes as usize).find(|&i| want.lane(i) != got.lane(i)).unwrap_or(0);
            return Err(Counterexample {
                env,
                detail: format!(
                    "lane {lane}: expected {}, got {} for {source}\n{program}",
                    want.lane(lane),
                    got.lane(lane),
                ),
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::emit;
    use fpir::build;
    use fpir::types::{ScalarType as S, VectorType as V};
    use fpir::Isa;
    use fpir_isa::{legalize, target};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn correct_programs_pass() {
        let t = V::new(S::U8, 16);
        let e = build::saturating_cast(
            S::U8,
            build::widening_add(build::var("a", t), build::var("b", t)),
        );
        let mut rng = StdRng::seed_from_u64(1);
        for isa in fpir::machine::ALL_ISAS {
            let tgt = target(isa);
            let p = emit(&legalize(&e, tgt).unwrap(), tgt).unwrap();
            check_program(&e, &p, tgt, &mut rng, 50).unwrap();
        }
    }

    #[test]
    fn wrong_programs_are_caught() {
        // Compile a + b but compare against a - b: must produce a
        // counterexample quickly.
        let t = V::new(S::U8, 16);
        let tgt = target(Isa::ArmNeon);
        let compiled =
            emit(&legalize(&build::add(build::var("a", t), build::var("b", t)), tgt).unwrap(), tgt)
                .unwrap();
        let source = build::sub(build::var("a", t), build::var("b", t));
        let mut rng = StdRng::seed_from_u64(2);
        assert!(check_program(&source, &compiled, tgt, &mut rng, 50).is_err());
    }
}
