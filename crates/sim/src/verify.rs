//! Static verification of linked [`Executable`]s — an independent audit
//! of what [`Executable::link`] produced, without running anything.
//!
//! The linked engine trades the reference VM's per-step checks for raw
//! speed: operands are raw indices, dispatch is direct, and the hot loop
//! `expect`s invariants the linker is supposed to have established. A
//! linker bug therefore shows up as a panic deep in the hot loop (or,
//! worse, as silently wrong lanes when a recycled register is read). The
//! verifier re-derives those invariants from the artifact alone:
//!
//! * **`def-before-use`** — every physical-register read is dominated by
//!   a live (non-recycled) write in program order, and every input-slot
//!   read happens after the slot's load position; the final output
//!   location is defined;
//! * **`dst-aliasing`** — no instruction's destination register is also
//!   one of its own register operands (the engine reclaims the
//!   destination's buffer *before* reading operands);
//! * **`operand-index`** — register / input-slot / constant-pool indices
//!   are in range, including the output location;
//! * **`slot-order`** — input slots are in strictly increasing first-load
//!   program order and instruction positions strictly increase, so blame
//!   reports (`pos`, `reg`) point at real, ordered program points;
//! * **`const-pool`** — every pool entry is a genuine splat (all lanes
//!   equal), matching what linking is allowed to materialize;
//! * **`sem-table`** — each instruction's resolved [`MachSem`] agrees
//!   with what the ISA's table currently maps its opcode to;
//! * **`sem-signature`** — operand count matches the semantics' arity,
//!   every operand has the result's lane count, and the widening
//!   accumulator shapes hold (`WideningMulAcc` 2×, `DotAcc4` 4×), so
//!   [`fpir_isa::eval_sem_into`] cannot reject the instruction at run
//!   time.
//!
//! [`Executable::link`] runs this in debug builds on everything it
//! produces, [`crate::difftest`] runs it on every artifact it tests, and
//! `pitchforkd` audits every artifact entering its cache — so a linker
//! regression is caught at the artifact boundary, with a named check and
//! a program position, not as a scrambled image three layers up.

use crate::exec::{Executable, Operand, OutLoc};
use fpir_isa::MachSem;
use std::fmt;

/// Which artifact invariant a violation broke. [`ArtifactCheck::name`]
/// is the stable identifier fixtures and reports key on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArtifactCheck {
    /// A register or input slot read before it is written/loaded.
    DefBeforeUse,
    /// An instruction's destination aliases one of its own operands.
    DstAliasing,
    /// A register, input-slot, or constant-pool index out of range.
    OperandIndex,
    /// Input slots or instruction positions out of program order.
    SlotOrder,
    /// A constant-pool entry that is not a splat.
    ConstPool,
    /// An instruction's semantics disagree with the ISA table.
    SemTable,
    /// Operand shape the semantics would reject at run time.
    SemSignature,
}

impl ArtifactCheck {
    /// Stable check name (used in reports and fixture assertions).
    pub fn name(self) -> &'static str {
        match self {
            ArtifactCheck::DefBeforeUse => "def-before-use",
            ArtifactCheck::DstAliasing => "dst-aliasing",
            ArtifactCheck::OperandIndex => "operand-index",
            ArtifactCheck::SlotOrder => "slot-order",
            ArtifactCheck::ConstPool => "const-pool",
            ArtifactCheck::SemTable => "sem-table",
            ArtifactCheck::SemSignature => "sem-signature",
        }
    }
}

impl fmt::Display for ArtifactCheck {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A broken artifact invariant.
#[derive(Debug, Clone)]
pub struct ArtifactError {
    /// Which invariant.
    pub check: ArtifactCheck,
    /// Source-program position of the offending instruction, when the
    /// violation is instruction-specific.
    pub pos: Option<usize>,
    /// Human-readable description.
    pub detail: String,
}

impl fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "artifact check `{}` failed", self.check)?;
        if let Some(p) = self.pos {
            write!(f, " at #{p}")?;
        }
        write!(f, ": {}", self.detail)
    }
}

fn err(check: ArtifactCheck, pos: Option<usize>, detail: String) -> ArtifactError {
    ArtifactError { check, pos, detail }
}

/// Verify every artifact invariant of a linked executable.
///
/// Pure and read-only: no instruction is executed, so the cost is linear
/// in the artifact size and safe to run on untrusted/corrupted artifacts.
///
/// # Errors
///
/// The first violation in check-then-program order.
pub fn verify_executable(exe: &Executable) -> Result<(), ArtifactError> {
    use ArtifactCheck as C;

    // Constant pool: splats only (that is all linking materializes, and
    // the cycle model prices them as loop-invariant and free).
    for (i, c) in exe.consts.iter().enumerate() {
        let lanes = c.lanes();
        if lanes.is_empty() || lanes.iter().any(|&x| x != lanes[0]) {
            return Err(err(C::ConstPool, None, format!("constant c{i} is not a splat: {c:?}")));
        }
    }

    // Slot/blame order: inputs in strictly increasing first-load
    // position, no duplicate names, instructions in strictly increasing
    // program position.
    for w in exe.inputs.windows(2) {
        if w[1].pos <= w[0].pos {
            return Err(err(
                C::SlotOrder,
                Some(w[1].pos),
                format!(
                    "input slots out of first-load order: `{}` at #{} after `{}` at #{}",
                    w[1].name, w[1].pos, w[0].name, w[0].pos
                ),
            ));
        }
    }
    for (i, s) in exe.inputs.iter().enumerate() {
        if exe.inputs[..i].iter().any(|t| t.name == s.name) {
            return Err(err(
                C::SlotOrder,
                Some(s.pos),
                format!("input `{}` has two slots", s.name),
            ));
        }
    }
    for w in exe.code.windows(2) {
        if w[1].pos <= w[0].pos {
            return Err(err(
                C::SlotOrder,
                Some(w[1].pos as usize),
                format!("instruction positions out of order: #{} after #{}", w[1].pos, w[0].pos),
            ));
        }
    }

    // Per-instruction checks, simulating definedness in program order.
    // `defined[r]` is the type of the live value in physical register
    // `r`, or `None` when it was never written or its last write was
    // immediately recycled (`dst_dead`) — exactly the states in which
    // the engine's `regs[r].as_ref().expect(..)` would panic.
    let table = fpir_isa::target(exe.isa);
    let mut defined = vec![None; exe.phys_regs];
    for inst in &exe.code {
        let pos = inst.pos as usize;

        if (inst.dst as usize) >= exe.phys_regs {
            return Err(err(
                C::OperandIndex,
                Some(pos),
                format!("destination r{} outside the register file of {}", inst.dst, exe.phys_regs),
            ));
        }
        let mut operand_tys = Vec::with_capacity(inst.args.len());
        for a in inst.args.iter() {
            let ty = match *a {
                Operand::Reg(r) => {
                    if (r as usize) >= exe.phys_regs {
                        return Err(err(
                            C::OperandIndex,
                            Some(pos),
                            format!("operand r{r} outside the register file of {}", exe.phys_regs),
                        ));
                    }
                    if r == inst.dst {
                        return Err(err(
                            C::DstAliasing,
                            Some(pos),
                            format!(
                                "{} reads r{r} while also writing it; the engine reclaims the \
                                 destination before reading operands",
                                inst.op
                            ),
                        ));
                    }
                    match defined[r as usize] {
                        Some(ty) => ty,
                        None => {
                            return Err(err(
                                C::DefBeforeUse,
                                Some(pos),
                                format!("r{r} read by {} before any live write", inst.op),
                            ));
                        }
                    }
                }
                Operand::In(s) => {
                    let slot = exe.inputs.get(s as usize).ok_or_else(|| {
                        err(
                            C::OperandIndex,
                            Some(pos),
                            format!("input slot s{s} out of range ({} slots)", exe.inputs.len()),
                        )
                    })?;
                    if slot.pos >= pos {
                        return Err(err(
                            C::DefBeforeUse,
                            Some(pos),
                            format!(
                                "slot s{s} (`{}`) loads at #{}, after its use",
                                slot.name, slot.pos
                            ),
                        ));
                    }
                    slot.ty
                }
                Operand::Const(c) => exe
                    .consts
                    .get(c as usize)
                    .ok_or_else(|| {
                        err(
                            C::OperandIndex,
                            Some(pos),
                            format!("constant c{c} out of range ({} entries)", exe.consts.len()),
                        )
                    })?
                    .ty(),
            };
            operand_tys.push(ty);
        }

        // The semantics the table resolves the opcode to today must be
        // the semantics baked into the instruction at link time.
        match table.def(inst.op) {
            Some(def) if def.sem == inst.sem => {}
            Some(def) => {
                return Err(err(
                    C::SemTable,
                    Some(pos),
                    format!(
                        "{} linked as {:?} but the {} table says {:?}",
                        inst.op, inst.sem, exe.isa, def.sem
                    ),
                ));
            }
            None => {
                return Err(err(
                    C::SemTable,
                    Some(pos),
                    format!("{} is not in the {} table", inst.op, exe.isa),
                ));
            }
        }

        // Shape checks mirroring everything `eval_sem_into` rejects, so
        // a verified artifact cannot fail at dispatch time.
        if inst.args.len() != inst.sem.arity() {
            return Err(err(
                C::SemSignature,
                Some(pos),
                format!(
                    "{:?} takes {} operands, instruction has {}",
                    inst.sem,
                    inst.sem.arity(),
                    inst.args.len()
                ),
            ));
        }
        for (k, ty) in operand_tys.iter().enumerate() {
            if ty.lanes != inst.ty.lanes {
                return Err(err(
                    C::SemSignature,
                    Some(pos),
                    format!(
                        "operand {k} has {} lanes, result type {} has {}",
                        ty.lanes, inst.ty, inst.ty.lanes
                    ),
                ));
            }
        }
        match inst.sem {
            MachSem::WideningMulAcc => {
                let (aw, ow) = (operand_tys[0].elem.bits(), operand_tys[1].elem.bits());
                if aw != ow * 2 {
                    return Err(err(
                        C::SemSignature,
                        Some(pos),
                        format!("widening mul-acc accumulator is {aw}-bit over {ow}-bit operands"),
                    ));
                }
            }
            MachSem::DotAcc4 => {
                let (aw, ow) = (operand_tys[0].elem.bits(), operand_tys[1].elem.bits());
                if aw != ow * 4 {
                    return Err(err(
                        C::SemSignature,
                        Some(pos),
                        format!("dot-product accumulator is {aw}-bit over {ow}-bit operands"),
                    ));
                }
            }
            _ => {}
        }

        defined[inst.dst as usize] = if inst.dst_dead { None } else { Some(inst.ty) };
    }

    // The output location must be defined at the end of the program.
    match exe.output {
        OutLoc::Reg(r) => {
            if (r as usize) >= exe.phys_regs {
                return Err(err(
                    C::OperandIndex,
                    None,
                    format!("output r{r} outside the register file of {}", exe.phys_regs),
                ));
            }
            if defined[r as usize].is_none() {
                return Err(err(
                    C::DefBeforeUse,
                    None,
                    format!("output register r{r} holds no live value at the end of the program"),
                ));
            }
        }
        OutLoc::In(s) => {
            if (s as usize) >= exe.inputs.len() {
                return Err(err(
                    C::OperandIndex,
                    None,
                    format!("output slot s{s} out of range ({} slots)", exe.inputs.len()),
                ));
            }
        }
        OutLoc::Const(c) => {
            if (c as usize) >= exe.consts.len() {
                return Err(err(
                    C::OperandIndex,
                    None,
                    format!("output constant c{c} out of range ({} entries)", exe.consts.len()),
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{Operand, OutLoc};
    use crate::program::emit;
    use fpir::build;
    use fpir::interp::Value;
    use fpir::types::{ScalarType as S, VectorType as V};
    use fpir::Isa;
    use fpir_isa::{legalize, target};

    fn linked(e: &fpir::RcExpr, isa: Isa) -> Executable {
        let t = target(isa);
        let p = emit(&legalize(e, t).unwrap(), t).unwrap();
        Executable::link(&p, t).unwrap()
    }

    fn sample() -> Executable {
        let t = V::new(S::U8, 16);
        let e = build::saturating_cast(
            S::U8,
            build::widening_add(
                build::rounding_halving_add(build::var("a", t), build::var("b", t)),
                build::constant(3, t),
            ),
        );
        linked(&e, Isa::ArmNeon)
    }

    #[test]
    fn linked_workload_style_artifacts_verify_clean() {
        let t = V::new(S::U8, 16);
        let exprs = [
            build::rounding_halving_add(build::var("a", t), build::var("b", t)),
            build::saturating_cast(
                S::U8,
                build::widening_add(build::var("a", t), build::var("b", t)),
            ),
            build::var("a", t),
            build::constant(7, t),
        ];
        for e in &exprs {
            for isa in fpir::machine::ALL_ISAS {
                let exe = linked(e, isa);
                verify_executable(&exe).unwrap_or_else(|v| panic!("{isa}: {v}\n{exe}"));
            }
        }
    }

    // One hand-corrupted executable per artifact check, each flagged by
    // the check's stable name: the planted-defect suite for the verifier
    // itself.

    fn assert_flags(exe: &Executable, name: &str) {
        let e = verify_executable(exe).expect_err("corruption must be flagged");
        assert_eq!(e.check.name(), name, "{e}");
        // The rendered report names the check too.
        assert!(e.to_string().contains(name), "{e}");
    }

    #[test]
    fn corrupt_register_read_fails_def_before_use() {
        let mut exe = sample();
        // Point the first instruction's first register operand (if any)
        // at a register nothing has written yet; otherwise retarget an
        // input operand to a fresh register.
        let grow = exe.phys_regs as u16;
        exe.phys_regs += 1;
        let inst = &mut exe.code[0];
        inst.args[0] = Operand::Reg(grow);
        assert_flags(&exe, "def-before-use");
    }

    #[test]
    fn corrupt_dead_destination_fails_def_before_use() {
        let mut exe = sample();
        // Mark an intermediate destination dead: the engine recycles the
        // value immediately, so the later consumer reads a vacant slot.
        // Pick a write whose register is read again before being
        // rewritten, so the corruption is observable.
        let victim = (0..exe.code.len())
            .find(|&i| {
                let r = exe.code[i].dst;
                exe.code[i + 1..]
                    .iter()
                    .take_while(|j| j.dst != r)
                    .any(|j| j.args.contains(&Operand::Reg(r)))
            })
            .expect("some intermediate value is consumed");
        exe.code[victim].dst_dead = true;
        assert_flags(&exe, "def-before-use");
    }

    #[test]
    fn corrupt_self_referential_destination_fails_dst_aliasing() {
        let mut exe = sample();
        let pos = exe
            .code
            .iter()
            .position(|i| i.args.iter().any(|a| matches!(a, Operand::Reg(_))))
            .expect("some instruction reads a register");
        let inst = &mut exe.code[pos];
        let Operand::Reg(r) = *inst.args.iter().find(|a| matches!(a, Operand::Reg(_))).unwrap()
        else {
            unreachable!()
        };
        inst.dst = r;
        assert_flags(&exe, "dst-aliasing");
    }

    #[test]
    fn corrupt_constant_index_fails_operand_index() {
        let mut exe = sample();
        let pos = exe
            .code
            .iter()
            .position(|i| i.args.iter().any(|a| matches!(a, Operand::Const(_))))
            .expect("some instruction reads the pool");
        let inst = &mut exe.code[pos];
        let k = inst.args.iter().position(|a| matches!(a, Operand::Const(_))).unwrap();
        inst.args[k] = Operand::Const(u16::MAX);
        assert_flags(&exe, "operand-index");
    }

    #[test]
    fn corrupt_slot_positions_fail_slot_order() {
        let mut exe = sample();
        assert!(exe.inputs.len() >= 2, "need two input slots");
        exe.inputs.swap(0, 1);
        // Swapping breaks first-load order but leaves indices valid.
        assert_flags(&exe, "slot-order");
    }

    #[test]
    fn corrupt_pool_entry_fails_const_pool() {
        let mut exe = sample();
        assert!(!exe.consts.is_empty(), "sample has a splat constant");
        let ty = exe.consts[0].ty();
        let mut lanes: Vec<i128> = exe.consts[0].lanes().to_vec();
        lanes[0] = lanes[0].wrapping_add(1) & 0x7f;
        exe.consts[0] = Value::new(ty, lanes);
        assert_flags(&exe, "const-pool");
    }

    #[test]
    fn corrupt_semantics_fail_sem_table() {
        let mut exe = sample();
        // Claim the first instruction computes something other than what
        // the table says its opcode means.
        let sem = exe.code[0].sem;
        exe.code[0].sem = if sem == fpir_isa::MachSem::Select {
            fpir_isa::MachSem::SatCastTo
        } else {
            fpir_isa::MachSem::Select
        };
        assert_flags(&exe, "sem-table");
    }

    #[test]
    fn corrupt_operand_count_fails_sem_signature() {
        let mut exe = sample();
        let inst = &mut exe.code[0];
        // Duplicate the first operand: sem-table still matches (the
        // opcode and sem are untouched) but the arity no longer does.
        let mut args = inst.args.to_vec();
        args.push(args[0]);
        inst.args = args.into_boxed_slice();
        assert_flags(&exe, "sem-signature");
    }

    #[test]
    fn corrupt_lane_count_fails_sem_signature() {
        let mut exe = sample();
        // Halve the result lane count of the first instruction; its
        // operands keep the full vector width.
        let ty = exe.code[0].ty;
        exe.code[0].ty = V::new(ty.elem, ty.lanes / 2);
        assert_flags(&exe, "sem-signature");
    }

    #[test]
    fn corrupt_output_register_is_flagged() {
        let mut exe = sample();
        exe.output = OutLoc::Reg(u16::MAX);
        assert_flags(&exe, "operand-index");
    }

    #[test]
    fn verifier_rejects_instructions_reordered_by_position() {
        let mut exe = sample();
        assert!(exe.code.len() >= 2);
        let p0 = exe.code[0].pos;
        exe.code[0].pos = exe.code[1].pos;
        exe.code[1].pos = p0;
        assert_flags(&exe, "slot-order");
    }
}
