//! Static verification of linked [`Executable`]s — an independent audit
//! of what [`Executable::link`] produced, without running anything.
//!
//! The linked engine trades the reference VM's per-step checks for raw
//! speed: operands are raw indices, dispatch is direct, and the hot loop
//! `expect`s invariants the linker is supposed to have established. A
//! linker bug therefore shows up as a panic deep in the hot loop (or,
//! worse, as silently wrong lanes when a recycled register is read). The
//! verifier re-derives those invariants from the artifact alone:
//!
//! * **`def-before-use`** — every physical-register read is dominated by
//!   a live (non-recycled) write in program order, and every input-slot
//!   read happens after the slot's load position; the final output
//!   location is defined;
//! * **`dst-aliasing`** — no instruction's destination register is also
//!   one of its own register operands (the engine reclaims the
//!   destination's buffer *before* reading operands);
//! * **`operand-index`** — register / input-slot / constant-pool indices
//!   are in range, including the output location;
//! * **`slot-order`** — input slots are in strictly increasing first-load
//!   program order and instruction positions strictly increase, so blame
//!   reports (`pos`, `reg`) point at real, ordered program points;
//! * **`const-pool`** — every pool entry is a genuine splat (all lanes
//!   equal), matching what linking is allowed to materialize;
//! * **`sem-table`** — each instruction's resolved [`MachSem`] agrees
//!   with what the ISA's table currently maps its opcode to;
//! * **`sem-signature`** — operand count matches the semantics' arity,
//!   every operand has the result's lane count, and the widening
//!   accumulator shapes hold (`WideningMulAcc` 2×, `DotAcc4` 4×), so
//!   [`fpir_isa::eval_sem_into`] cannot reject the instruction at run
//!   time;
//! * **`fused-shape`** — a fused superinstruction's audit trail holds
//!   together: each absorbed step's operand count matches its
//!   semantics' arity, temp references point at *earlier* steps,
//!   external-operand indices are in range with element types matching
//!   the recorded per-step types, baked immediates are canonical at
//!   their recorded type, every step has the kernel's lane count, the
//!   widening shapes hold per step, step positions strictly increase,
//!   every external operand is read, and the final step is the
//!   instruction's own op/type/position — so the lane walk through
//!   [`fpir_isa::sem_lane`] is exactly the per-instruction dispatch it
//!   replaced. (Each step's opcode→semantics agreement is reported
//!   under `sem-table`, same as unfused instructions.)
//!
//! [`Executable::link`] runs this in debug builds on everything it
//! produces, [`crate::difftest`] runs it on every artifact it tests, and
//! `pitchforkd` audits every artifact entering its cache — so a linker
//! regression is caught at the artifact boundary, with a named check and
//! a program position, not as a scrambled image three layers up.

use crate::exec::{
    Executable, FSrc, FusedKernel, Kernel, LInst, Operand, OutLoc, MAX_OPERANDS, MAX_STEPS,
};
use fpir::types::VectorType;
use fpir_isa::{MachSem, Target};
use std::fmt;

/// Which artifact invariant a violation broke. [`ArtifactCheck::name`]
/// is the stable identifier fixtures and reports key on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArtifactCheck {
    /// A register or input slot read before it is written/loaded.
    DefBeforeUse,
    /// An instruction's destination aliases one of its own operands.
    DstAliasing,
    /// A register, input-slot, or constant-pool index out of range.
    OperandIndex,
    /// Input slots or instruction positions out of program order.
    SlotOrder,
    /// A constant-pool entry that is not a splat.
    ConstPool,
    /// An instruction's semantics disagree with the ISA table.
    SemTable,
    /// Operand shape the semantics would reject at run time.
    SemSignature,
    /// A fused superinstruction whose step chain is malformed.
    FusedShape,
}

impl ArtifactCheck {
    /// Stable check name (used in reports and fixture assertions).
    pub fn name(self) -> &'static str {
        match self {
            ArtifactCheck::DefBeforeUse => "def-before-use",
            ArtifactCheck::DstAliasing => "dst-aliasing",
            ArtifactCheck::OperandIndex => "operand-index",
            ArtifactCheck::SlotOrder => "slot-order",
            ArtifactCheck::ConstPool => "const-pool",
            ArtifactCheck::SemTable => "sem-table",
            ArtifactCheck::SemSignature => "sem-signature",
            ArtifactCheck::FusedShape => "fused-shape",
        }
    }
}

impl fmt::Display for ArtifactCheck {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A broken artifact invariant.
#[derive(Debug, Clone)]
pub struct ArtifactError {
    /// Which invariant.
    pub check: ArtifactCheck,
    /// Source-program position of the offending instruction, when the
    /// violation is instruction-specific.
    pub pos: Option<usize>,
    /// Human-readable description.
    pub detail: String,
}

impl fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "artifact check `{}` failed", self.check)?;
        if let Some(p) = self.pos {
            write!(f, " at #{p}")?;
        }
        write!(f, ": {}", self.detail)
    }
}

fn err(check: ArtifactCheck, pos: Option<usize>, detail: String) -> ArtifactError {
    ArtifactError { check, pos, detail }
}

/// Verify every artifact invariant of a linked executable.
///
/// Pure and read-only: no instruction is executed, so the cost is linear
/// in the artifact size and safe to run on untrusted/corrupted artifacts.
///
/// # Errors
///
/// The first violation in check-then-program order.
pub fn verify_executable(exe: &Executable) -> Result<(), ArtifactError> {
    use ArtifactCheck as C;

    // Constant pool: splats only (that is all linking materializes, and
    // the cycle model prices them as loop-invariant and free).
    for (i, c) in exe.consts.iter().enumerate() {
        let lanes = c.lanes();
        if lanes.is_empty() || lanes.iter().any(|&x| x != lanes[0]) {
            return Err(err(C::ConstPool, None, format!("constant c{i} is not a splat: {c:?}")));
        }
    }

    // Slot/blame order: inputs in strictly increasing first-load
    // position, no duplicate names, instructions in strictly increasing
    // program position.
    for w in exe.inputs.windows(2) {
        if w[1].pos <= w[0].pos {
            return Err(err(
                C::SlotOrder,
                Some(w[1].pos),
                format!(
                    "input slots out of first-load order: `{}` at #{} after `{}` at #{}",
                    w[1].name, w[1].pos, w[0].name, w[0].pos
                ),
            ));
        }
    }
    for (i, s) in exe.inputs.iter().enumerate() {
        if exe.inputs[..i].iter().any(|t| t.name == s.name) {
            return Err(err(
                C::SlotOrder,
                Some(s.pos),
                format!("input `{}` has two slots", s.name),
            ));
        }
    }
    for w in exe.code.windows(2) {
        if w[1].pos <= w[0].pos {
            return Err(err(
                C::SlotOrder,
                Some(w[1].pos as usize),
                format!("instruction positions out of order: #{} after #{}", w[1].pos, w[0].pos),
            ));
        }
    }

    // Per-instruction checks, simulating definedness in program order.
    // `defined[r]` is the type of the live value in physical register
    // `r`, or `None` when it was never written or its last write was
    // immediately recycled (`dst_dead`) — exactly the states in which
    // the engine's `regs[r].as_ref().expect(..)` would panic.
    let table = fpir_isa::target(exe.isa);
    let mut defined = vec![None; exe.phys_regs];
    for inst in &exe.code {
        let pos = inst.pos as usize;

        if (inst.dst as usize) >= exe.phys_regs {
            return Err(err(
                C::OperandIndex,
                Some(pos),
                format!("destination r{} outside the register file of {}", inst.dst, exe.phys_regs),
            ));
        }
        let mut operand_tys = Vec::with_capacity(inst.args.len());
        for a in inst.args.iter() {
            let ty = match *a {
                Operand::Reg(r) => {
                    if (r as usize) >= exe.phys_regs {
                        return Err(err(
                            C::OperandIndex,
                            Some(pos),
                            format!("operand r{r} outside the register file of {}", exe.phys_regs),
                        ));
                    }
                    if r == inst.dst {
                        return Err(err(
                            C::DstAliasing,
                            Some(pos),
                            format!(
                                "{} reads r{r} while also writing it; the engine reclaims the \
                                 destination before reading operands",
                                inst.op
                            ),
                        ));
                    }
                    match defined[r as usize] {
                        Some(ty) => ty,
                        None => {
                            return Err(err(
                                C::DefBeforeUse,
                                Some(pos),
                                format!("r{r} read by {} before any live write", inst.op),
                            ));
                        }
                    }
                }
                Operand::In(s) => {
                    let slot = exe.inputs.get(s as usize).ok_or_else(|| {
                        err(
                            C::OperandIndex,
                            Some(pos),
                            format!("input slot s{s} out of range ({} slots)", exe.inputs.len()),
                        )
                    })?;
                    if slot.pos >= pos {
                        return Err(err(
                            C::DefBeforeUse,
                            Some(pos),
                            format!(
                                "slot s{s} (`{}`) loads at #{}, after its use",
                                slot.name, slot.pos
                            ),
                        ));
                    }
                    slot.ty
                }
                Operand::Const(c) => exe
                    .consts
                    .get(c as usize)
                    .ok_or_else(|| {
                        err(
                            C::OperandIndex,
                            Some(pos),
                            format!("constant c{c} out of range ({} entries)", exe.consts.len()),
                        )
                    })?
                    .ty(),
            };
            operand_tys.push(ty);
        }

        // Every operand — of a plain instruction or a fused kernel —
        // must have the result's lane count: both engines walk exactly
        // `inst.ty.lanes` lanes of every external source.
        for (k, ty) in operand_tys.iter().enumerate() {
            if ty.lanes != inst.ty.lanes {
                return Err(err(
                    C::SemSignature,
                    Some(pos),
                    format!(
                        "operand {k} has {} lanes, result type {} has {}",
                        ty.lanes, inst.ty, inst.ty.lanes
                    ),
                ));
            }
        }

        match &inst.kernel {
            Kernel::Op(sem) => {
                verify_op_shape(exe, inst, *sem, &operand_tys, table)?;
            }
            Kernel::Fused(f) => {
                verify_fused_shape(exe, inst, f, &operand_tys, table)?;
            }
        }

        defined[inst.dst as usize] = if inst.dst_dead { None } else { Some(inst.ty) };
    }

    // The output location must be defined at the end of the program.
    match exe.output {
        OutLoc::Reg(r) => {
            if (r as usize) >= exe.phys_regs {
                return Err(err(
                    C::OperandIndex,
                    None,
                    format!("output r{r} outside the register file of {}", exe.phys_regs),
                ));
            }
            if defined[r as usize].is_none() {
                return Err(err(
                    C::DefBeforeUse,
                    None,
                    format!("output register r{r} holds no live value at the end of the program"),
                ));
            }
        }
        OutLoc::In(s) => {
            if (s as usize) >= exe.inputs.len() {
                return Err(err(
                    C::OperandIndex,
                    None,
                    format!("output slot s{s} out of range ({} slots)", exe.inputs.len()),
                ));
            }
        }
        OutLoc::Const(c) => {
            if (c as usize) >= exe.consts.len() {
                return Err(err(
                    C::OperandIndex,
                    None,
                    format!("output constant c{c} out of range ({} entries)", exe.consts.len()),
                ));
            }
        }
    }
    Ok(())
}

/// The table-agreement and shape checks for a plain (unfused)
/// instruction — everything [`fpir_isa::eval_sem_into`] would reject at
/// dispatch time, proven statically.
fn verify_op_shape(
    exe: &Executable,
    inst: &LInst,
    sem: MachSem,
    operand_tys: &[VectorType],
    table: &Target,
) -> Result<(), ArtifactError> {
    use ArtifactCheck as C;
    let pos = inst.pos as usize;

    // The semantics the table resolves the opcode to today must be the
    // semantics baked into the instruction at link time.
    match table.def(inst.op) {
        Some(def) if def.sem == sem => {}
        Some(def) => {
            return Err(err(
                C::SemTable,
                Some(pos),
                format!(
                    "{} linked as {:?} but the {} table says {:?}",
                    inst.op, sem, exe.isa, def.sem
                ),
            ));
        }
        None => {
            return Err(err(
                C::SemTable,
                Some(pos),
                format!("{} is not in the {} table", inst.op, exe.isa),
            ));
        }
    }

    if inst.args.len() != sem.arity() {
        return Err(err(
            C::SemSignature,
            Some(pos),
            format!("{sem:?} takes {} operands, instruction has {}", sem.arity(), inst.args.len()),
        ));
    }
    verify_widening_widths(
        sem,
        &[operand_tys[0].elem, operand_tys[1.min(operand_tys.len() - 1)].elem],
    )
    .map_err(|detail| err(C::SemSignature, Some(pos), detail))
}

/// The widening-accumulator width constraints shared by plain and fused
/// shape checks; `elems[0]`/`elems[1]` are the first two operand element
/// types.
fn verify_widening_widths(sem: MachSem, elems: &[fpir::types::ScalarType]) -> Result<(), String> {
    match sem {
        MachSem::WideningMulAcc => {
            let (aw, ow) = (elems[0].bits(), elems[1].bits());
            if aw != ow * 2 {
                return Err(format!(
                    "widening mul-acc accumulator is {aw}-bit over {ow}-bit operands"
                ));
            }
        }
        MachSem::DotAcc4 => {
            let (aw, ow) = (elems[0].bits(), elems[1].bits());
            if aw != ow * 4 {
                return Err(format!("dot-product accumulator is {aw}-bit over {ow}-bit operands"));
            }
        }
        _ => {}
    }
    Ok(())
}

/// The `fused-shape` audit: a fused superinstruction carries the
/// original chain (op, sem, type, position, register per step), and this
/// check re-proves everything the fuser relied on — so the single lane
/// walk through [`fpir_isa::sem_lane`] is exactly the sequence of
/// per-instruction dispatches it replaced.
fn verify_fused_shape(
    exe: &Executable,
    inst: &LInst,
    f: &FusedKernel,
    operand_tys: &[VectorType],
    table: &Target,
) -> Result<(), ArtifactError> {
    use ArtifactCheck as C;
    let pos = inst.pos as usize;
    let fail = |detail: String| err(C::FusedShape, Some(pos), detail);

    if f.steps.is_empty() || f.steps.len() > MAX_STEPS {
        return Err(fail(format!(
            "fused kernel has {} steps (1..={MAX_STEPS} allowed)",
            f.steps.len()
        )));
    }
    if f.steps.len() < 2 {
        return Err(fail("a fused kernel must absorb at least two instructions".into()));
    }
    if inst.args.len() > MAX_OPERANDS {
        return Err(fail(format!(
            "fused kernel reads {} external operands ({MAX_OPERANDS} allowed)",
            inst.args.len()
        )));
    }
    let mut arg_read = vec![false; inst.args.len()];
    for (j, step) in f.steps.iter().enumerate() {
        // Step opcode→semantics agreement is the sem-table check, the
        // same audit unfused instructions get.
        match table.def(step.op) {
            Some(def) if def.sem == step.sem => {}
            Some(def) => {
                return Err(err(
                    C::SemTable,
                    Some(step.pos as usize),
                    format!(
                        "fused step {} linked as {:?} but the {} table says {:?}",
                        step.op, step.sem, exe.isa, def.sem
                    ),
                ));
            }
            None => {
                return Err(err(
                    C::SemTable,
                    Some(step.pos as usize),
                    format!("fused step {} is not in the {} table", step.op, exe.isa),
                ));
            }
        }
        if step.srcs.len() != step.sem.arity() {
            return Err(fail(format!(
                "step {j} ({:?}) takes {} operands, has {}",
                step.sem,
                step.sem.arity(),
                step.srcs.len()
            )));
        }
        if step.tys.len() != step.srcs.len() {
            return Err(fail(format!(
                "step {j} has {} recorded operand types for {} sources",
                step.tys.len(),
                step.srcs.len()
            )));
        }
        if step.ty.lanes != inst.ty.lanes {
            return Err(fail(format!(
                "step {j} has {} lanes, the kernel walks {}",
                step.ty.lanes, inst.ty.lanes
            )));
        }
        for (k, (&src, &ty)) in step.srcs.iter().zip(step.tys.iter()).enumerate() {
            match src {
                FSrc::Arg(a) => {
                    let a = a as usize;
                    if a >= inst.args.len() {
                        return Err(fail(format!(
                            "step {j} source {k} reads external operand {a} of {}",
                            inst.args.len()
                        )));
                    }
                    arg_read[a] = true;
                    if operand_tys[a].elem != ty {
                        return Err(fail(format!(
                            "step {j} source {k} records type {ty} for operand {a} of type {}",
                            operand_tys[a].elem
                        )));
                    }
                }
                FSrc::Tmp(t) => {
                    let t = t as usize;
                    if t >= j {
                        return Err(fail(format!(
                            "step {j} source {k} reads temp {t}, defined at or after it"
                        )));
                    }
                    if f.steps[t].ty.elem != ty {
                        return Err(fail(format!(
                            "step {j} source {k} records type {ty} for temp {t} of type {}",
                            f.steps[t].ty.elem
                        )));
                    }
                }
            }
        }
        verify_widening_widths(step.sem, &[step.tys[0], step.tys[1.min(step.tys.len() - 1)]])
            .map_err(|detail| fail(format!("step {j}: {detail}")))?;
        if j > 0 && step.pos <= f.steps[j - 1].pos {
            return Err(fail(format!(
                "step positions out of order: #{} after #{}",
                step.pos,
                f.steps[j - 1].pos
            )));
        }
    }
    let last = f.steps.last().expect("non-empty");
    if last.op != inst.op || last.ty != inst.ty || last.pos != inst.pos || last.reg != inst.reg {
        return Err(fail(format!(
            "the final step ({} {} #{}) is not the instruction's own root ({} {} #{})",
            last.op, last.ty, last.pos, inst.op, inst.ty, inst.pos
        )));
    }
    if let Some(a) = arg_read.iter().position(|&r| !r) {
        return Err(fail(format!("external operand {a} is never read by any step")));
    }

    // The execution schedule must complete every audited step exactly
    // once, in order, with each pass's sources derived verbatim from the
    // step(s) it covers. (The compiled closures themselves are derived
    // data pinned by tests in `fpir-isa`; this audits the wiring.)
    let mut completed_by = vec![None::<usize>; f.steps.len()];
    let mut prev_last = None::<u16>;
    for (p, pass) in f.passes.iter().enumerate() {
        let j = pass.last as usize;
        if j >= f.steps.len() {
            return Err(fail(format!("pass {p} completes step {j} of {}", f.steps.len())));
        }
        if prev_last.is_some_and(|prev| pass.last <= prev) {
            return Err(fail(format!("pass {p} completes step {j} out of order")));
        }
        prev_last = Some(pass.last);
        completed_by[j] = Some(p);
        match pass.absorbed {
            None => {
                if pass.srcs != f.steps[j].srcs {
                    return Err(fail(format!("pass {p} sources disagree with step {j}")));
                }
            }
            Some(t) => {
                let t = t as usize;
                if t >= j {
                    return Err(fail(format!(
                        "pass {p} absorbs step {t}, not before the step it completes ({j})"
                    )));
                }
                if completed_by[t].is_some() {
                    return Err(fail(format!("pass {p} absorbs step {t}, already completed")));
                }
                completed_by[t] = Some(p);
                // The absorbed step must be the consumer's operand at
                // exactly one position, and the pass's sources must be
                // the producer's followed by the consumer's others.
                let want: Vec<FSrc> = {
                    let mut dropped = false;
                    f.steps[t]
                        .srcs
                        .iter()
                        .copied()
                        .chain(f.steps[j].srcs.iter().copied().filter(|&s| {
                            let hit = !dropped && s == FSrc::Tmp(t as u16);
                            dropped |= hit;
                            !hit
                        }))
                        .collect()
                };
                if pass.srcs.as_ref() != want.as_slice() {
                    return Err(fail(format!(
                        "pass {p} sources disagree with steps {t}+{j} merged"
                    )));
                }
            }
        }
    }
    if let Some(j) = completed_by.iter().position(|c| c.is_none()) {
        return Err(fail(format!("step {j} is completed by no pass")));
    }
    // A pass may only read scratch rows that some earlier pass wrote:
    // absorbed steps never materialize theirs.
    for (p, pass) in f.passes.iter().enumerate() {
        for &src in pass.srcs.iter() {
            if let FSrc::Tmp(t) = src {
                let t = t as usize;
                let materialized = f.passes[..p].iter().any(|q| q.last as usize == t);
                if !materialized {
                    return Err(fail(format!("pass {p} reads temp {t}, which no pass wrote")));
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{Kernel, Operand, OutLoc};
    use crate::fuse::ExecConfig;
    use crate::program::emit;
    use fpir::build;
    use fpir::interp::Value;
    use fpir::types::{ScalarType as S, VectorType as V};
    use fpir::Isa;
    use fpir_isa::{legalize, target};

    fn linked(e: &fpir::RcExpr, isa: Isa) -> Executable {
        let t = target(isa);
        let p = emit(&legalize(e, t).unwrap(), t).unwrap();
        Executable::link(&p, t).unwrap()
    }

    fn sample() -> Executable {
        let t = V::new(S::U8, 16);
        let e = build::saturating_cast(
            S::U8,
            build::widening_add(
                build::rounding_halving_add(build::var("a", t), build::var("b", t)),
                build::constant(3, t),
            ),
        );
        linked(&e, Isa::ArmNeon)
    }

    #[test]
    fn linked_workload_style_artifacts_verify_clean() {
        let t = V::new(S::U8, 16);
        let exprs = [
            build::rounding_halving_add(build::var("a", t), build::var("b", t)),
            build::saturating_cast(
                S::U8,
                build::widening_add(build::var("a", t), build::var("b", t)),
            ),
            build::var("a", t),
            build::constant(7, t),
        ];
        for e in &exprs {
            for isa in fpir::machine::ALL_ISAS {
                let exe = linked(e, isa);
                verify_executable(&exe).unwrap_or_else(|v| panic!("{isa}: {v}\n{exe}"));
            }
        }
    }

    // One hand-corrupted executable per artifact check, each flagged by
    // the check's stable name: the planted-defect suite for the verifier
    // itself.

    fn assert_flags(exe: &Executable, name: &str) {
        let e = verify_executable(exe).expect_err("corruption must be flagged");
        assert_eq!(e.check.name(), name, "{e}");
        // The rendered report names the check too.
        assert!(e.to_string().contains(name), "{e}");
    }

    #[test]
    fn corrupt_register_read_fails_def_before_use() {
        let mut exe = sample();
        // Point the first instruction's first register operand (if any)
        // at a register nothing has written yet; otherwise retarget an
        // input operand to a fresh register.
        let grow = exe.phys_regs as u16;
        exe.phys_regs += 1;
        let inst = &mut exe.code[0];
        inst.args[0] = Operand::Reg(grow);
        assert_flags(&exe, "def-before-use");
    }

    #[test]
    fn corrupt_dead_destination_fails_def_before_use() {
        let mut exe = sample();
        // Mark an intermediate destination dead: the engine recycles the
        // value immediately, so the later consumer reads a vacant slot.
        // Pick a write whose register is read again before being
        // rewritten, so the corruption is observable.
        let victim = (0..exe.code.len())
            .find(|&i| {
                let r = exe.code[i].dst;
                exe.code[i + 1..]
                    .iter()
                    .take_while(|j| j.dst != r)
                    .any(|j| j.args.contains(&Operand::Reg(r)))
            })
            .expect("some intermediate value is consumed");
        exe.code[victim].dst_dead = true;
        assert_flags(&exe, "def-before-use");
    }

    #[test]
    fn corrupt_self_referential_destination_fails_dst_aliasing() {
        let mut exe = sample();
        let pos = exe
            .code
            .iter()
            .position(|i| i.args.iter().any(|a| matches!(a, Operand::Reg(_))))
            .expect("some instruction reads a register");
        let inst = &mut exe.code[pos];
        let Operand::Reg(r) = *inst.args.iter().find(|a| matches!(a, Operand::Reg(_))).unwrap()
        else {
            unreachable!()
        };
        inst.dst = r;
        assert_flags(&exe, "dst-aliasing");
    }

    #[test]
    fn corrupt_constant_index_fails_operand_index() {
        let mut exe = sample();
        let pos = exe
            .code
            .iter()
            .position(|i| i.args.iter().any(|a| matches!(a, Operand::Const(_))))
            .expect("some instruction reads the pool");
        let inst = &mut exe.code[pos];
        let k = inst.args.iter().position(|a| matches!(a, Operand::Const(_))).unwrap();
        inst.args[k] = Operand::Const(u16::MAX);
        assert_flags(&exe, "operand-index");
    }

    #[test]
    fn corrupt_slot_positions_fail_slot_order() {
        let mut exe = sample();
        assert!(exe.inputs.len() >= 2, "need two input slots");
        exe.inputs.swap(0, 1);
        // Swapping breaks first-load order but leaves indices valid.
        assert_flags(&exe, "slot-order");
    }

    #[test]
    fn corrupt_pool_entry_fails_const_pool() {
        let mut exe = sample();
        assert!(!exe.consts.is_empty(), "sample has a splat constant");
        let ty = exe.consts[0].ty();
        let mut lanes: Vec<i128> = exe.consts[0].lanes().to_vec();
        lanes[0] = lanes[0].wrapping_add(1) & 0x7f;
        exe.consts[0] = Value::new(ty, lanes);
        assert_flags(&exe, "const-pool");
    }

    #[test]
    fn corrupt_semantics_fail_sem_table() {
        let mut exe = sample();
        // Claim the first instruction computes something other than what
        // the table says its opcode means.
        let Kernel::Op(sem) = exe.code[0].kernel else { panic!("plain links are unfused") };
        exe.code[0].kernel = Kernel::Op(if sem == fpir_isa::MachSem::Select {
            fpir_isa::MachSem::SatCastTo
        } else {
            fpir_isa::MachSem::Select
        });
        assert_flags(&exe, "sem-table");
    }

    #[test]
    fn corrupt_operand_count_fails_sem_signature() {
        let mut exe = sample();
        let inst = &mut exe.code[0];
        // Duplicate the first operand: sem-table still matches (the
        // opcode and sem are untouched) but the arity no longer does.
        let mut args = inst.args.to_vec();
        args.push(args[0]);
        inst.args = args.into_boxed_slice();
        assert_flags(&exe, "sem-signature");
    }

    #[test]
    fn corrupt_lane_count_fails_sem_signature() {
        let mut exe = sample();
        // Halve the result lane count of the first instruction; its
        // operands keep the full vector width.
        let ty = exe.code[0].ty;
        exe.code[0].ty = V::new(ty.elem, ty.lanes / 2);
        assert_flags(&exe, "sem-signature");
    }

    #[test]
    fn corrupt_output_register_is_flagged() {
        let mut exe = sample();
        exe.output = OutLoc::Reg(u16::MAX);
        assert_flags(&exe, "operand-index");
    }

    // Fused-artifact fixtures: a fused sample must verify clean, and
    // hand-corrupting the step chain must be flagged by `fused-shape`
    // (or `sem-table` for a step whose opcode no longer means its sem).

    fn fused_sample() -> Executable {
        let t = V::new(S::U8, 16);
        let e = build::saturating_cast(
            S::U8,
            build::widening_add(
                build::rounding_halving_add(build::var("a", t), build::var("b", t)),
                build::constant(3, t),
            ),
        );
        let tgt = target(Isa::ArmNeon);
        let p = emit(&legalize(&e, tgt).unwrap(), tgt).unwrap();
        let exe = Executable::link_with(&p, tgt, &ExecConfig::FAST).unwrap();
        assert!(exe.fused_count() >= 1, "the sample chain must fuse:\n{exe}");
        exe
    }

    fn first_fused(exe: &mut Executable) -> &mut crate::exec::FusedKernel {
        let inst = exe
            .code
            .iter_mut()
            .find(|i| matches!(i.kernel, Kernel::Fused(_)))
            .expect("a fused instruction");
        match &mut inst.kernel {
            Kernel::Fused(f) => f.as_mut(),
            Kernel::Op(_) => unreachable!(),
        }
    }

    #[test]
    fn fused_sample_verifies_clean() {
        let exe = fused_sample();
        verify_executable(&exe).unwrap_or_else(|v| panic!("{v}\n{exe}"));
    }

    #[test]
    fn corrupt_fused_temp_order_fails_fused_shape() {
        let mut exe = fused_sample();
        let f = first_fused(&mut exe);
        // Point some step's temp reference at itself (a temp defined at
        // or after its use can never have been computed).
        let j = f
            .steps
            .iter()
            .position(|s| s.srcs.iter().any(|x| matches!(x, crate::exec::FSrc::Tmp(_))))
            .expect("a step reads a temp");
        let k =
            f.steps[j].srcs.iter().position(|x| matches!(x, crate::exec::FSrc::Tmp(_))).unwrap();
        f.steps[j].srcs[k] = crate::exec::FSrc::Tmp(j as u16);
        assert_flags(&exe, "fused-shape");
    }

    #[test]
    fn corrupt_fused_step_sem_fails_sem_table() {
        let mut exe = fused_sample();
        let f = first_fused(&mut exe);
        f.steps[0].sem = if f.steps[0].sem == fpir_isa::MachSem::Select {
            fpir_isa::MachSem::SatCastTo
        } else {
            fpir_isa::MachSem::Select
        };
        assert_flags(&exe, "sem-table");
    }

    #[test]
    fn corrupt_fused_root_mismatch_fails_fused_shape() {
        let mut exe = fused_sample();
        let f = first_fused(&mut exe);
        // Drop the final step: the kernel no longer ends in the
        // instruction's own root.
        let steps = f.steps.to_vec();
        f.steps = steps[..steps.len() - 1].to_vec().into_boxed_slice();
        assert_flags(&exe, "fused-shape");
    }

    #[test]
    fn corrupt_fused_operand_type_fails_fused_shape() {
        let mut exe = fused_sample();
        let f = first_fused(&mut exe);
        // Mis-record an external operand's element type: the step's
        // claimed type must match the linked operand it reads.
        let (j, k) = f
            .steps
            .iter()
            .enumerate()
            .find_map(|(j, s)| {
                s.srcs.iter().position(|x| matches!(x, crate::exec::FSrc::Arg(_))).map(|k| (j, k))
            })
            .expect("a step reads an external operand");
        let old = f.steps[j].tys[k];
        f.steps[j].tys[k] = if old == S::I64 { S::U8 } else { S::I64 };
        assert_flags(&exe, "fused-shape");
    }

    #[test]
    fn verifier_rejects_instructions_reordered_by_position() {
        let mut exe = sample();
        assert!(exe.code.len() >= 2);
        let p0 = exe.code[0].pos;
        exe.code[0].pos = exe.code[1].pos;
        exe.code[1].pos = p0;
        assert_flags(&exe, "slot-order");
    }
}
