//! The linked execution engine: compile a [`Program`] once into an
//! [`Executable`], run it many times.
//!
//! [`crate::vm::execute`] is the REFERENCE engine: per step it looks the
//! opcode up in the [`Target`] table, resolves input names through a
//! string-keyed environment, materializes splat constants, and clones
//! every operand `Value` out of the register vector. That is faithful and
//! simple, but an end-to-end experiment executes the same program tens of
//! thousands of times (once per vector strip of an image), repaying the
//! same resolution work on every invocation.
//!
//! Linking performs all of it once:
//!
//! * **input slots** — distinct `Load` names become dense slot indices;
//!   an invocation binds a slice of values positionally instead of
//!   hashing strings (and re-checks only the types, O(inputs));
//! * **direct dispatch** — each instruction carries its [`MachSem`]
//!   resolved from the table at link time; the hot loop never touches the
//!   [`Target`] again;
//! * **shared constants** — splats are materialized once into a constant
//!   pool owned by the executable and shared by every invocation (the
//!   cycle model already treats them as loop-invariant and free);
//! * **liveness + register recycling** — a linear-scan over last uses
//!   maps virtual registers onto a small physical register file. A dead
//!   register's lane buffer is reclaimed and refilled by a later
//!   instruction ([`fpir_isa::eval_sem_into`] writes into a recycled
//!   buffer), so the per-instruction loop performs **zero heap
//!   allocation** in steady state — operands are read by reference, and
//!   the result is taken out of the register file by move, never cloned.
//!
//! The linked engine is differentially gated against the reference
//! engine everywhere [`crate::difftest`] runs: on every environment the
//! two must return the same `Result` — same output value, or the same
//! [`ExecError`].

use crate::program::{PKind, Program, Reg};
use crate::vm::ExecError;
use fpir::interp::{Env, Value};
use fpir::types::{ScalarType, VectorType};
use fpir::{Isa, MachOp};
use fpir_isa::{eval_sem_into, MachSem, Target};
use std::fmt;
use std::fmt::Write as _;

/// The widest instruction in any table is `DotAcc4` (9 operands); the
/// operand staging array is stack-allocated at this fixed width. Fused
/// superinstructions dedup their external operands into the same array,
/// so the fuser also caps external sources at this width.
pub(crate) const MAX_OPERANDS: usize = 32;

/// Upper bound on the number of absorbed steps in one fused
/// superinstruction; the per-lane scratchpad is stack-allocated at this
/// width.
pub(crate) const MAX_STEPS: usize = 32;

/// Where a linked operand reads from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Operand {
    /// A physical register (defined by an earlier linked instruction).
    Reg(u16),
    /// An input slot bound at invocation time.
    In(u16),
    /// An entry of the link-time constant pool.
    Const(u16),
}

/// Where a fused step's operand lanes come from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum FSrc {
    /// An external operand's lane slice (`LInst::args[k]` — a register,
    /// input slot, or pool constant resolved by the engine).
    Arg(u16),
    /// The scratchpad row written by an earlier step in the same kernel.
    Tmp(u16),
}

/// One absorbed instruction inside a fused superinstruction. The
/// original opcode, program position, and virtual register ride along so
/// the verifier can audit the chain and runtime errors blame the exact
/// source instruction, byte-identically to the unfused engine.
#[derive(Clone)]
pub(crate) struct FStep {
    /// Original opcode of the absorbed instruction.
    pub(crate) op: MachOp,
    /// Its semantics — the audited source of truth for `eval`.
    pub(crate) sem: MachSem,
    /// Its result type (`ty.elem` feeds the lane evaluator; all steps
    /// share the kernel's lane count).
    pub(crate) ty: VectorType,
    /// Scalar sources, one per operand.
    pub(crate) srcs: Box<[FSrc]>,
    /// Element type of each source, precomputed at fuse time.
    pub(crate) tys: Box<[ScalarType]>,
    /// The compiled whole-strip evaluator: `sem` specialized once at
    /// fuse time over `tys`/`ty.elem` ([`fpir_isa::sem_slice_fn`]), so
    /// executing the step is one call into a monomorphic vector loop —
    /// no dispatch, shape checks, or operand-type reads remain at run
    /// time. Derived data: always built from the three fields above,
    /// never stored independently.
    pub(crate) eval: fpir_isa::SemSliceFn,
    /// Position of the absorbed instruction in the source program.
    pub(crate) pos: u32,
    /// Its destination virtual register in the source program.
    pub(crate) reg: Reg,
}

impl fmt::Debug for FStep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // `eval` is an opaque compiled closure; the debug form shows the
        // audited fields it was derived from.
        f.debug_struct("FStep")
            .field("op", &self.op)
            .field("sem", &self.sem)
            .field("ty", &self.ty)
            .field("srcs", &self.srcs)
            .field("tys", &self.tys)
            .field("pos", &self.pos)
            .field("reg", &self.reg)
            .finish()
    }
}

/// One compiled strip loop of a fused kernel's execution schedule. A
/// pass completes exactly one step (`last`), and may additionally absorb
/// that step's single-use lane-wise producer into the same loop
/// ([`fpir_isa::sem_slice_fn_pair`]) so the intermediate lives in a
/// register for the duration of a lane instead of a scratch row.
#[derive(Clone)]
pub(crate) struct FPass {
    /// Index of the step this pass completes; its result lands in the
    /// step's scratch row (or the destination buffer for the root).
    pub(crate) last: u16,
    /// Step absorbed into this loop as the operand-`k` producer, if any.
    /// An absorbed step's scratch row is never written.
    pub(crate) absorbed: Option<u16>,
    /// Operand sources in the compiled closure's expected order: the
    /// absorbed producer's sources first, then the completing step's
    /// sources with the absorbed operand removed.
    pub(crate) srcs: Box<[FSrc]>,
    /// The compiled strip loop. Derived data: for a plain pass this is
    /// the step's own `eval`; for a merged pass it is built from the two
    /// steps' audited `sem`/`tys`/`ty` fields at fuse time.
    pub(crate) eval: fpir_isa::SemSliceFn,
}

impl fmt::Debug for FPass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FPass")
            .field("last", &self.last)
            .field("absorbed", &self.absorbed)
            .field("srcs", &self.srcs)
            .finish()
    }
}

/// A fused superinstruction: a single-use producer→consumer chain
/// collapsed into one engine dispatch. `steps` is the audited record of
/// the absorbed instructions, in evaluation order; `passes` is the
/// execution schedule derived from it — one compiled strip loop per
/// step, except that lane-wise producer→consumer pairs share a single
/// loop. Intermediates live in a context-owned scratchpad (or a register,
/// for paired steps) and never touch the register file — only the root's
/// result is materialized into the destination register.
#[derive(Debug, Clone)]
pub(crate) struct FusedKernel {
    /// Steps in evaluation order; the last step is the chain's root and
    /// matches the owning [`LInst`]'s `op`/`ty`/`pos`/`reg`.
    pub(crate) steps: Box<[FStep]>,
    /// Execution schedule: completes every step exactly once, in order.
    pub(crate) passes: Box<[FPass]>,
}

impl FusedKernel {
    /// Number of original instructions this kernel absorbs.
    pub(crate) fn len(&self) -> usize {
        self.steps.len()
    }
}

/// How a linked instruction computes its result.
#[derive(Debug, Clone)]
pub(crate) enum Kernel {
    /// One table instruction, dispatched whole-vector through
    /// [`fpir_isa::eval_sem_into`] — the PR 4 path.
    Op(MachSem),
    /// A fused chain of compiled step kernels
    /// ([`fpir_isa::sem_slice_fn`]) run back-to-back over the strip.
    Fused(Box<FusedKernel>),
}

/// One linked instruction: semantics resolved, operands resolved,
/// destination a physical register.
#[derive(Debug, Clone)]
pub(crate) struct LInst {
    /// Opcode (kept for error reports and rendering; for a fused kernel,
    /// the chain root's opcode).
    pub(crate) op: MachOp,
    /// Direct-dispatch kernel, resolved from the table at link time and
    /// possibly fused post-link.
    pub(crate) kernel: Kernel,
    /// Result type.
    pub(crate) ty: VectorType,
    /// Destination physical register.
    pub(crate) dst: u16,
    /// Resolved operands.
    pub(crate) args: Box<[Operand]>,
    /// Position of the instruction in the source program.
    pub(crate) pos: u32,
    /// Destination virtual register in the source program.
    pub(crate) reg: Reg,
    /// True when the result has no consumer (the value is computed for
    /// its error semantics and its buffer reclaimed immediately).
    pub(crate) dst_dead: bool,
}

/// One input slot: a distinct `Load` name with its declared type and the
/// position/register of its (first) load, for error reports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InputSlot {
    /// Input name.
    pub name: String,
    /// Declared (loaded-as) type.
    pub ty: VectorType,
    /// Position of the load in the source program.
    pub pos: usize,
    /// Destination virtual register of the load.
    pub reg: Reg,
}

/// Where the executable's result lives after the last instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum OutLoc {
    /// A physical register (moved out, not cloned).
    Reg(u16),
    /// An input slot (the program is a plain load).
    In(u16),
    /// A constant-pool entry.
    Const(u16),
}

/// A [`Program`] linked for repeated execution. See the [module
/// docs](self) for what linking resolves.
///
/// # Thread safety
///
/// An `Executable` is **immutable after [`Executable::link`]** and is
/// `Send + Sync` by construction, so one linked artifact can be shared
/// by reference (or `Arc`) across any number of worker threads — the
/// tiled runner and the `pitchfork-service` cache both rely on this.
/// The audit, pinned by a compile-time assertion in the tests:
///
/// * `code` ([`LInst`]) holds only plain data — [`MachOp`], a `Copy`
///   [`MachSem`] (an enum of opcodes and constants, no function
///   pointers or interior mutability), a [`VectorType`], and index
///   operands;
/// * the **splat constant pool** (`consts`, [`Value`]) is materialized
///   once at link time and only ever read afterwards — every execution
///   path takes `&self.consts[..]`, so concurrent invocations share the
///   pool without copies or locks;
/// * `inputs` and `zero` are owned, never-mutated `String`/`Value` data.
///
/// All *mutable* execution state lives in the per-thread [`ExecCtx`]
/// (which is `Send` but deliberately not shared): the register file and
/// the recycled buffer pool. Sharing the `Executable` is free; sharing a
/// context would be a data race, which the `&mut ExecCtx` receiver on
/// [`Executable::run`] rules out at compile time.
#[derive(Debug, Clone)]
pub struct Executable {
    pub(crate) isa: Isa,
    pub(crate) inputs: Vec<InputSlot>,
    pub(crate) consts: Vec<Value>,
    pub(crate) code: Vec<LInst>,
    pub(crate) phys_regs: usize,
    pub(crate) output: OutLoc,
    /// Placeholder the operand staging array is initialized with.
    pub(crate) zero: Value,
}

/// Reusable per-thread execution state: the physical register file and a
/// pool of recycled lane buffers. Steady-state invocations allocate
/// nothing — [`ExecCtx::buffer_allocs`] stops growing after warm-up (the
/// regression tests pin this).
#[derive(Debug, Default)]
pub struct ExecCtx {
    regs: Vec<Option<Value>>,
    spare: Vec<Vec<i128>>,
    /// Fused-kernel scratchpad: `MAX_STEPS` rows of strip-width lanes,
    /// grown on first use and reused by every fused dispatch thereafter
    /// (steady-state fused runs allocate nothing, like unfused ones).
    scratch: Vec<i128>,
    buffer_allocs: u64,
    invocations: u64,
}

impl ExecCtx {
    /// A fresh, empty context.
    pub fn new() -> ExecCtx {
        ExecCtx::default()
    }

    /// How many lane buffers this context has had to allocate, total. In
    /// steady state (with outputs recycled back) this counter is flat
    /// across invocations.
    pub fn buffer_allocs(&self) -> u64 {
        self.buffer_allocs
    }

    /// How many invocations have run through this context.
    pub fn invocations(&self) -> u64 {
        self.invocations
    }

    /// Hand a no-longer-needed [`Value`] back for buffer reuse (e.g. the
    /// output of [`Executable::run`] after its lanes were consumed).
    pub fn recycle(&mut self, v: Value) {
        self.spare.push(v.into_lanes());
    }

    /// Take a recycled lane buffer (empty, capacity preserved) or a
    /// fresh one; pair with [`Value::new`] to build inputs without
    /// allocating in steady state.
    pub fn take_buffer(&mut self) -> Vec<i128> {
        match self.spare.pop() {
            Some(mut b) => {
                b.clear();
                b
            }
            None => {
                self.buffer_allocs += 1;
                Vec::new()
            }
        }
    }
}

impl Executable {
    /// Link a program against its target: resolve names to slots,
    /// opcodes to semantics, splats to a constant pool, and virtual
    /// registers to a recycled physical register file.
    ///
    /// # Errors
    ///
    /// Fails on an ISA mismatch, an opcode missing from the table, or an
    /// input loaded at two different types.
    pub fn link(p: &Program, target: &Target) -> Result<Executable, ExecError> {
        if p.isa != target.isa {
            return Err(ExecError::IsaMismatch { program: p.isa, target: target.isa });
        }
        let insts = p.insts();
        let n = insts.len();

        // Liveness: last use of each virtual register (by position); the
        // output is used "after the end".
        const NEVER: usize = usize::MAX;
        let mut last_use = vec![NEVER; n];
        for (i, inst) in insts.iter().enumerate() {
            if let PKind::Op { args, .. } = &inst.kind {
                for &r in args {
                    last_use[r] = i;
                }
            }
        }
        last_use[p.output()] = n;

        /// What each virtual register resolved to.
        #[derive(Clone, Copy)]
        enum Def {
            In(u16),
            Const(u16),
            Op,
        }
        let mut defs: Vec<Def> = Vec::with_capacity(n);
        let mut inputs: Vec<InputSlot> = Vec::new();
        let mut consts: Vec<Value> = Vec::new();
        let mut code: Vec<LInst> = Vec::new();
        // Linear-scan register allocation state.
        let mut phys_of: Vec<Option<u16>> = vec![None; n];
        let mut free: Vec<u16> = Vec::new();
        let mut next_phys: u16 = 0;

        for (i, inst) in insts.iter().enumerate() {
            match &inst.kind {
                PKind::Load { name } => {
                    let slot = match inputs.iter().position(|s| s.name == *name) {
                        Some(s) => {
                            if inputs[s].ty != inst.ty {
                                // Two loads of one name at different types
                                // can never both succeed; reject at link
                                // time with the second load's position.
                                return Err(ExecError::InputTypeMismatch {
                                    name: name.clone(),
                                    pos: i,
                                    reg: inst.dst,
                                    declared: inst.ty,
                                    bound: inputs[s].ty,
                                });
                            }
                            s
                        }
                        None => {
                            inputs.push(InputSlot {
                                name: name.clone(),
                                ty: inst.ty,
                                pos: i,
                                reg: inst.dst,
                            });
                            inputs.len() - 1
                        }
                    };
                    defs.push(Def::In(slot as u16));
                }
                PKind::Splat { value } => {
                    let idx = match consts
                        .iter()
                        .position(|c| c.ty() == inst.ty && c.lane(0) == *value)
                    {
                        Some(c) => c,
                        None => {
                            consts.push(Value::splat(*value, inst.ty));
                            consts.len() - 1
                        }
                    };
                    defs.push(Def::Const(idx as u16));
                }
                PKind::Op { op, args } => {
                    let def = target.def(*op).ok_or(ExecError::UnknownOp {
                        op: *op,
                        pos: i,
                        reg: inst.dst,
                    })?;
                    assert!(
                        args.len() <= MAX_OPERANDS,
                        "{op} has {} operands; the staging array holds {MAX_OPERANDS}",
                        args.len()
                    );
                    let resolved: Box<[Operand]> = args
                        .iter()
                        .map(|&r| match defs[r] {
                            Def::In(s) => Operand::In(s),
                            Def::Const(c) => Operand::Const(c),
                            Def::Op => Operand::Reg(
                                phys_of[r].expect("programs define registers before use"),
                            ),
                        })
                        .collect();
                    // Allocate the destination BEFORE freeing operands
                    // dying here: the engine reclaims the destination's
                    // old value before reading operands, so the two must
                    // never share a physical register.
                    let dst = free.pop().unwrap_or_else(|| {
                        let d = next_phys;
                        next_phys += 1;
                        d
                    });
                    phys_of[i] = Some(dst);
                    for &r in args {
                        if last_use[r] == i && matches!(defs[r], Def::Op) {
                            // `take` makes a register appearing twice in
                            // one operand list free exactly once.
                            if let Some(ph) = phys_of[r].take() {
                                free.push(ph);
                            }
                        }
                    }
                    let dst_dead = last_use[i] == NEVER;
                    if dst_dead {
                        phys_of[i] = None;
                        free.push(dst);
                    }
                    code.push(LInst {
                        op: *op,
                        kernel: Kernel::Op(def.sem),
                        ty: inst.ty,
                        dst,
                        args: resolved,
                        pos: i as u32,
                        reg: inst.dst,
                        dst_dead,
                    });
                    defs.push(Def::Op);
                }
            }
        }

        let out = p.output();
        let output = match defs[out] {
            Def::In(s) => OutLoc::In(s),
            Def::Const(c) => OutLoc::Const(c),
            Def::Op => OutLoc::Reg(phys_of[out].expect("the output register stays live")),
        };
        let exe = Executable {
            isa: target.isa,
            inputs,
            consts,
            code,
            phys_regs: next_phys as usize,
            output,
            zero: Value::splat(0, VectorType::new(ScalarType::U8, 1)),
        };
        // Debug builds audit every artifact leaving the linker against
        // the static verifier: a linker bug is an internal invariant
        // violation (panic), never a user-visible ExecError.
        #[cfg(debug_assertions)]
        if let Err(v) = crate::verify::verify_executable(&exe) {
            panic!("link produced an unverifiable executable: {v}\n{exe}");
        }
        Ok(exe)
    }

    /// Link and then, per `cfg`, run the post-link optimization pipeline
    /// ([`crate::fuse`]): copy propagation, constant folding, dead-write
    /// elimination, and superinstruction fusion, with the register file
    /// re-allocated afterwards. [`crate::fuse::ExecConfig::REFERENCE`]
    /// returns the plain link unchanged; [`crate::fuse::ExecConfig::FAST`]
    /// fuses. The two are bit-identical on every environment — gated by
    /// difftest, the fused proptests, and every benchmark.
    ///
    /// # Errors
    ///
    /// As [`Executable::link`]; the post-link pipeline itself cannot
    /// fail.
    pub fn link_with(
        p: &Program,
        target: &Target,
        cfg: &crate::fuse::ExecConfig,
    ) -> Result<Executable, ExecError> {
        let exe = Executable::link(p, target)?;
        Ok(if cfg.fuse { crate::fuse::optimize(exe) } else { exe })
    }

    /// The ISA this executable was linked for.
    pub fn isa(&self) -> Isa {
        self.isa
    }

    /// The input slots, in first-load order. `slots[i]` of
    /// [`Executable::run_slots`] binds `inputs()[i]`.
    pub fn inputs(&self) -> &[InputSlot] {
        &self.inputs
    }

    /// Number of linked instructions — one per dispatch in the hot loop,
    /// so for a fused executable this is the per-invocation dispatch
    /// count, not the original op count (see
    /// [`Executable::step_count`]).
    pub fn op_count(&self) -> usize {
        self.code.len()
    }

    /// Number of fused superinstructions (kernels absorbing ≥ 2 original
    /// instructions). Zero for an unfused link.
    pub fn fused_count(&self) -> usize {
        self.code.iter().filter(|i| matches!(i.kernel, Kernel::Fused(_))).count()
    }

    /// Total original instructions represented, counting every step
    /// absorbed into fused kernels. For an unfused link this equals
    /// [`Executable::op_count`].
    pub fn step_count(&self) -> usize {
        self.code
            .iter()
            .map(|i| match &i.kernel {
                Kernel::Op(_) => 1,
                Kernel::Fused(f) => f.len(),
            })
            .sum()
    }

    /// Size of the shared constant pool.
    pub fn const_count(&self) -> usize {
        self.consts.len()
    }

    /// Peak size of the physical register file: how many registers a
    /// context allocates, and the figure reported next to `cycle_cost`
    /// in the Figure 3 listings.
    pub fn peak_regs(&self) -> usize {
        self.phys_regs
    }

    /// A fresh execution context shaped for this executable.
    pub fn new_ctx(&self) -> ExecCtx {
        let mut ctx = ExecCtx::new();
        ctx.regs.resize_with(self.phys_regs, || None);
        ctx
    }

    /// Run on an environment (input names resolved to slots here; prefer
    /// [`Executable::run_slots`] in hot loops that can pre-resolve).
    ///
    /// # Errors
    ///
    /// Exactly as [`crate::vm::execute`]: unbound inputs, mistyped
    /// bindings, or semantics-rejected operands.
    pub fn run(&self, ctx: &mut ExecCtx, env: &Env) -> Result<Value, ExecError> {
        let mut ins: Vec<&Value> = Vec::with_capacity(self.inputs.len());
        for slot in &self.inputs {
            let v = env.get(&slot.name).ok_or_else(|| ExecError::UnboundInput {
                name: slot.name.clone(),
                pos: slot.pos,
                reg: slot.reg,
            })?;
            if v.ty() != slot.ty {
                return Err(ExecError::InputTypeMismatch {
                    name: slot.name.clone(),
                    pos: slot.pos,
                    reg: slot.reg,
                    declared: slot.ty,
                    bound: v.ty(),
                });
            }
            ins.push(v);
        }
        self.run_resolved(ctx, ins.as_slice())
    }

    /// Run on positionally-bound inputs: `slots[i]` binds
    /// [`Executable::inputs`]`[i]`. Only types are re-checked.
    ///
    /// # Errors
    ///
    /// Mistyped or missing slot values, or semantics-rejected operands.
    pub fn run_slots(&self, ctx: &mut ExecCtx, slots: &[Value]) -> Result<Value, ExecError> {
        if slots.len() != self.inputs.len() {
            let missing = &self.inputs[slots.len().min(self.inputs.len().saturating_sub(1))];
            return Err(ExecError::UnboundInput {
                name: missing.name.clone(),
                pos: missing.pos,
                reg: missing.reg,
            });
        }
        for (v, slot) in slots.iter().zip(&self.inputs) {
            if v.ty() != slot.ty {
                return Err(ExecError::InputTypeMismatch {
                    name: slot.name.clone(),
                    pos: slot.pos,
                    reg: slot.reg,
                    declared: slot.ty,
                    bound: v.ty(),
                });
            }
        }
        self.run_resolved(ctx, slots)
    }

    /// The hot loop: direct dispatch over resolved operands, recycled
    /// register file, zero steady-state allocation.
    fn run_resolved<I: Ins + ?Sized>(
        &self,
        ctx: &mut ExecCtx,
        ins: &I,
    ) -> Result<Value, ExecError> {
        if ctx.regs.len() < self.phys_regs {
            ctx.regs.resize_with(self.phys_regs, || None);
        }
        ctx.invocations += 1;
        let ExecCtx { regs, spare, scratch, buffer_allocs, .. } = ctx;
        for inst in &self.code {
            // Reclaim the destination's previous (dead by liveness)
            // value; the allocator guarantees the destination never
            // aliases an operand of this instruction.
            if let Some(old) = regs[inst.dst as usize].take() {
                spare.push(old.into_lanes());
            }
            let mut buf = match spare.pop() {
                Some(b) => b,
                None => {
                    *buffer_allocs += 1;
                    Vec::new()
                }
            };
            {
                let mut refs: [&Value; MAX_OPERANDS] = [&self.zero; MAX_OPERANDS];
                for (k, a) in inst.args.iter().enumerate() {
                    refs[k] = match *a {
                        Operand::Reg(r) => regs[r as usize]
                            .as_ref()
                            .expect("linked instructions define registers before use"),
                        Operand::In(s) => ins.slot(s as usize),
                        Operand::Const(c) => &self.consts[c as usize],
                    };
                }
                match &inst.kernel {
                    Kernel::Op(sem) => {
                        eval_sem_into(*sem, &refs[..inst.args.len()], inst.ty, &mut buf).map_err(
                            |what| ExecError::Sem {
                                op: inst.op,
                                pos: inst.pos as usize,
                                reg: inst.reg,
                                what,
                            },
                        )?;
                    }
                    Kernel::Fused(f) => {
                        // A fused kernel's shapes (arity, lane counts,
                        // widening widths) were all proven static at fuse
                        // time — external operand types are fixed by the
                        // link and re-checked at binding — so the chain
                        // runs with no per-step validation: each absorbed
                        // step is one call into its compiled vector
                        // kernel, intermediates staying in the context
                        // scratchpad. The verifier's fused-shape check
                        // audits this.
                        let lanes = inst.ty.lanes as usize;
                        let mut lanes_of: [&[i128]; MAX_OPERANDS] = [&[]; MAX_OPERANDS];
                        for (k, r) in refs[..inst.args.len()].iter().enumerate() {
                            lanes_of[k] = r.lanes();
                        }
                        if scratch.len() < f.steps.len() * lanes {
                            // First fused dispatch at this width; the
                            // scratchpad is retained for every later run.
                            scratch.resize(MAX_STEPS * lanes, 0);
                        }
                        let root = f.steps.len() - 1;
                        // Size the destination without zeroing it: the
                        // root pass overwrites every lane (operand and
                        // scratch slices are exactly `lanes` long, and
                        // every compiled kernel writes its full output
                        // slice), so recycled contents never leak.
                        buf.resize(lanes, 0);
                        for pass in f.passes.iter() {
                            let j = pass.last as usize;
                            let (lo, hi) = scratch.split_at_mut(j * lanes);
                            // The chain root writes the destination
                            // buffer directly; earlier passes fill their
                            // completed step's scratchpad row.
                            let dst: &mut [i128] =
                                if j == root { &mut buf[..] } else { &mut hi[..lanes] };
                            macro_rules! src {
                                ($k:expr) => {
                                    match pass.srcs[$k] {
                                        FSrc::Arg(a) => lanes_of[a as usize],
                                        FSrc::Tmp(t) => {
                                            let t = t as usize;
                                            &lo[t * lanes..(t + 1) * lanes]
                                        }
                                    }
                                };
                            }
                            // Stage exactly the pass's operands: almost
                            // every pass reads 1–4 sources, and the
                            // fixed-size array keeps the staging cost off
                            // the `MAX_OPERANDS`-wide worst case.
                            match pass.srcs.len() {
                                1 => (pass.eval)(&[src!(0)], dst),
                                2 => (pass.eval)(&[src!(0), src!(1)], dst),
                                3 => (pass.eval)(&[src!(0), src!(1), src!(2)], dst),
                                4 => (pass.eval)(&[src!(0), src!(1), src!(2), src!(3)], dst),
                                _ => {
                                    let mut xs: [&[i128]; MAX_OPERANDS] = [&[]; MAX_OPERANDS];
                                    for (x, k) in xs.iter_mut().zip(0..pass.srcs.len()) {
                                        *x = src!(k);
                                    }
                                    (pass.eval)(&xs[..pass.srcs.len()], dst);
                                }
                            }
                        }
                    }
                }
            }
            // Semantics wrap/saturate into the result type, so the lanes
            // satisfy the `Value` invariant by construction.
            let v = Value::trusted(inst.ty, buf);
            if inst.dst_dead {
                spare.push(v.into_lanes());
            } else {
                regs[inst.dst as usize] = Some(v);
            }
        }
        match self.output {
            // The result leaves the register file by move, not clone.
            OutLoc::Reg(r) => {
                Ok(regs[r as usize].take().expect("the output register was just written"))
            }
            OutLoc::In(s) => Ok(ins.slot(s as usize).clone()),
            OutLoc::Const(c) => Ok(self.consts[c as usize].clone()),
        }
    }

    /// An assembly-like listing of the linked form: input slots (`sN`),
    /// constant pool (`cN`), instructions over physical registers (`rN`)
    /// and the returned location. Deterministic: a pure function of the
    /// linked structure.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "; linked for {}: {} inputs, {} consts, {} ops, peak {} regs",
            self.isa,
            self.inputs.len(),
            self.consts.len(),
            self.code.len(),
            self.phys_regs
        );
        for (i, s) in self.inputs.iter().enumerate() {
            let _ = writeln!(out, "in        s{i}.{}, [{}]", s.ty, s.name);
        }
        for (i, c) in self.consts.iter().enumerate() {
            let _ = writeln!(out, "const     c{i}.{}, #{}", c.ty(), c.lane(0));
        }
        for inst in &self.code {
            let srcs = inst.args.iter().map(|a| operand_name(*a)).collect::<Vec<_>>().join(", ");
            match &inst.kernel {
                Kernel::Op(_) => {
                    let _ =
                        writeln!(out, "{:<9} r{}.{}, {}", inst.op.name, inst.dst, inst.ty, srcs);
                }
                Kernel::Fused(f) => {
                    // A fused superinstruction lists its absorbed chain
                    // in evaluation order, root last.
                    let chain = f.steps.iter().map(|s| s.op.name).collect::<Vec<_>>().join("+");
                    let _ = writeln!(out, "{:<9} r{}.{}, {}", chain, inst.dst, inst.ty, srcs);
                }
            }
        }
        let ret = match self.output {
            OutLoc::Reg(r) => format!("r{r}"),
            OutLoc::In(s) => format!("s{s}"),
            OutLoc::Const(c) => format!("c{c}"),
        };
        let _ = writeln!(out, "ret       {ret}");
        out
    }
}

/// Positional input access for the hot loop, implemented for owned and
/// reference slices so [`Executable::run`] and [`Executable::run_slots`]
/// share one monomorphized code path without a per-invocation allocation.
trait Ins {
    fn slot(&self, i: usize) -> &Value;
}

impl Ins for [Value] {
    fn slot(&self, i: usize) -> &Value {
        &self[i]
    }
}

impl Ins for [&Value] {
    fn slot(&self, i: usize) -> &Value {
        self[i]
    }
}

fn operand_name(a: Operand) -> String {
    match a {
        Operand::Reg(r) => format!("r{r}"),
        Operand::In(s) => format!("s{s}"),
        Operand::Const(c) => format!("c{c}"),
    }
}

impl fmt::Display for Executable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::emit;
    use crate::vm::execute;
    use fpir::build;
    use fpir::types::{ScalarType as S, VectorType as V};
    use fpir::RcExpr;
    use fpir_isa::{legalize, target};

    fn link_expr(e: &RcExpr, isa: Isa) -> (Program, Executable) {
        let t = target(isa);
        let p = emit(&legalize(e, t).unwrap(), t).unwrap();
        let exe = Executable::link(&p, t).unwrap();
        (p, exe)
    }

    #[test]
    fn linked_matches_reference_on_an_average() {
        let t = V::new(S::U8, 4);
        let e = build::rounding_halving_add(build::var("a", t), build::var("b", t));
        let (p, exe) = link_expr(&e, Isa::HexagonHvx);
        let env = Env::new()
            .bind("a", Value::new(t, vec![3, 255, 0, 10]))
            .bind("b", Value::new(t, vec![4, 255, 1, 20]));
        let mut ctx = exe.new_ctx();
        let fast = exe.run(&mut ctx, &env).unwrap();
        let reference = execute(&p, &env, target(Isa::HexagonHvx)).unwrap();
        assert_eq!(fast, reference);
        assert_eq!(fast.lanes(), &[4, 255, 1, 15]);
    }

    #[test]
    fn register_file_is_smaller_than_virtual() {
        // A long chain of ops keeps at most a couple of values live.
        let t = V::new(S::U8, 4);
        let mut e = build::add(build::var("a", t), build::var("b", t));
        for _ in 0..10 {
            e = build::add(e, build::var("a", t));
        }
        let (p, exe) = link_expr(&e, Isa::ArmNeon);
        assert!(
            exe.peak_regs() < p.insts().len(),
            "peak {} vs {} virtual registers",
            exe.peak_regs(),
            p.insts().len()
        );
        assert!(exe.peak_regs() <= 2, "a chain needs two registers, got {}", exe.peak_regs());
    }

    #[test]
    fn constants_are_pooled_and_shared() {
        let t = V::new(S::U8, 4);
        let c = build::constant(3, t);
        let e = build::add(
            build::add(build::var("a", t), c.clone()),
            build::add(build::var("b", t), c),
        );
        let (_, exe) = link_expr(&e, Isa::ArmNeon);
        assert_eq!(exe.const_count(), 1);
    }

    #[test]
    fn plain_load_output_works() {
        // A program that is just `load a` — the output is an input slot.
        let t = V::new(S::U8, 4);
        let e = build::var("a", t);
        let (p, exe) = link_expr(&e, Isa::ArmNeon);
        assert_eq!(p.op_count(), 0);
        let env = Env::new().bind("a", Value::new(t, vec![1, 2, 3, 4]));
        let mut ctx = exe.new_ctx();
        assert_eq!(exe.run(&mut ctx, &env).unwrap().lanes(), &[1, 2, 3, 4]);
    }

    #[test]
    fn unbound_input_reports_name_position_register() {
        let t = V::new(S::U8, 4);
        let e = build::add(build::var("a", t), build::var("b", t));
        let (_, exe) = link_expr(&e, Isa::ArmNeon);
        let env = Env::new().bind("a", Value::splat(1, t));
        let mut ctx = exe.new_ctx();
        let err = exe.run(&mut ctx, &env).unwrap_err();
        match &err {
            ExecError::UnboundInput { name, pos, reg } => {
                assert_eq!(name, "b");
                assert_eq!(*pos, 1);
                assert_eq!(*reg, 1);
            }
            other => panic!("wrong error {other:?}"),
        }
        let msg = err.to_string();
        assert!(msg.contains("`b`") && msg.contains("#1") && msg.contains("v1"), "{msg}");
    }

    #[test]
    fn mistyped_input_reports_both_types() {
        let t = V::new(S::U8, 4);
        let e = build::add(build::var("a", t), build::var("b", t));
        let (_, exe) = link_expr(&e, Isa::ArmNeon);
        let env =
            Env::new().bind("a", Value::splat(1, t)).bind("b", Value::splat(1, V::new(S::U16, 4)));
        let mut ctx = exe.new_ctx();
        let err = exe.run(&mut ctx, &env).unwrap_err();
        match &err {
            ExecError::InputTypeMismatch { name, declared, bound, .. } => {
                assert_eq!(name, "b");
                assert_eq!(*declared, t);
                assert_eq!(*bound, V::new(S::U16, 4));
            }
            other => panic!("wrong error {other:?}"),
        }
    }

    #[test]
    fn linking_for_the_wrong_target_fails() {
        let t = V::new(S::U8, 4);
        let e = build::add(build::var("a", t), build::var("b", t));
        let tgt = target(Isa::ArmNeon);
        let p = emit(&legalize(&e, tgt).unwrap(), tgt).unwrap();
        let err = Executable::link(&p, target(Isa::X86Avx2)).unwrap_err();
        assert!(matches!(
            err,
            ExecError::IsaMismatch { program: Isa::ArmNeon, target: Isa::X86Avx2 }
        ));
    }

    #[test]
    fn steady_state_runs_are_allocation_free() {
        // After the first invocation the context's buffer pool is primed;
        // recycling the returned output keeps further runs at zero
        // allocations — the `Load` hot path no longer clones inputs.
        let t = V::new(S::U8, 64);
        let e = build::saturating_cast(
            S::U8,
            build::widening_add(
                build::rounding_halving_add(build::var("a", t), build::var("b", t)),
                build::var("b", t),
            ),
        );
        let (_, exe) = link_expr(&e, Isa::ArmNeon);
        let env = Env::new().bind("a", Value::splat(7, t)).bind("b", Value::splat(9, t));
        let mut ctx = exe.new_ctx();
        let out = exe.run(&mut ctx, &env).unwrap();
        ctx.recycle(out);
        let primed = ctx.buffer_allocs();
        for _ in 0..100 {
            let out = exe.run(&mut ctx, &env).unwrap();
            ctx.recycle(out);
        }
        assert_eq!(
            ctx.buffer_allocs(),
            primed,
            "steady-state invocations must not allocate lane buffers"
        );
        assert_eq!(ctx.invocations(), 101);
    }

    #[test]
    fn run_slots_binds_positionally() {
        let t = V::new(S::U8, 4);
        let e = build::sub(build::var("x", t), build::var("y", t));
        let (_, exe) = link_expr(&e, Isa::X86Avx2);
        let names: Vec<&str> = exe.inputs().iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, ["x", "y"], "slots are in first-load order");
        let mut ctx = exe.new_ctx();
        let slots = vec![Value::splat(9, t), Value::splat(3, t)];
        let out = exe.run_slots(&mut ctx, &slots).unwrap();
        assert_eq!(out.lanes(), &[6, 6, 6, 6]);
        // Too few slots is an unbound-input error.
        assert!(matches!(
            exe.run_slots(&mut ctx, &slots[..1]).unwrap_err(),
            ExecError::UnboundInput { .. }
        ));
    }

    /// Compile-time pin of the thread-safety audit (see the
    /// [`Executable`] docs): a cached executable — constant pool
    /// included — must stay shareable by reference across service
    /// workers, and a context must stay movable into one. If a future
    /// change smuggles in `Rc`, `Cell`, or a raw pointer, this stops
    /// compiling rather than racing at run time.
    #[test]
    fn executable_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        fn assert_send<T: Send>() {}
        assert_send_sync::<Executable>();
        assert_send_sync::<Program>();
        assert_send_sync::<Value>();
        assert_send_sync::<InputSlot>();
        assert_send_sync::<ExecError>();
        // Per-thread mutable state: movable to a worker, not shared.
        assert_send::<ExecCtx>();

        // And exercise the claim: two threads sharing one executable by
        // reference, each with its own context, agree with a sequential
        // run.
        let t = V::new(S::U8, 8);
        let e = build::rounding_halving_add(
            build::add(build::var("a", t), build::constant(3, t)),
            build::var("b", t),
        );
        let (_, exe) = link_expr(&e, Isa::ArmNeon);
        let env = Env::new().bind("a", Value::splat(10, t)).bind("b", Value::splat(20, t));
        let mut ctx = exe.new_ctx();
        let want = exe.run(&mut ctx, &env).unwrap();
        std::thread::scope(|s| {
            for _ in 0..2 {
                s.spawn(|| {
                    let mut ctx = exe.new_ctx();
                    for _ in 0..16 {
                        assert_eq!(exe.run(&mut ctx, &env).unwrap(), want);
                    }
                });
            }
        });
    }

    #[test]
    fn render_is_deterministic_and_lists_the_link() {
        let t = V::new(S::U8, 16);
        let e = build::add(build::var("a", t), build::constant(3, t));
        let (p, exe) = link_expr(&e, Isa::ArmNeon);
        let r1 = exe.render();
        let r2 = exe.render();
        assert_eq!(r1, r2);
        // Re-linking yields the identical listing (link is deterministic).
        let exe2 = Executable::link(&p, target(Isa::ArmNeon)).unwrap();
        assert_eq!(exe2.render(), r1);
        assert!(r1.contains("peak"), "{r1}");
        assert!(r1.contains("[a]"), "{r1}");
        assert!(r1.contains("#3"), "{r1}");
        assert!(r1.contains("ret"), "{r1}");
    }
}
