//! Linear machine programs.
//!
//! A fully-lowered expression (machine nodes over `Var`/`Const` leaves) is
//! *emitted* into a linear, register-based program with common
//! subexpression elimination — the form the cycle model prices and the VM
//! executes. [`Program::render`] prints the assembly-like listings used by
//! the Figure 3 report.

use fpir::expr::{ExprKind, RcExpr};
use fpir::types::VectorType;
use fpir::{Isa, MachOp};
use fpir_isa::{MachSem, Target};
use std::collections::HashMap;
use std::fmt;

/// A virtual register id.
pub type Reg = usize;

/// One program instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PInst {
    /// Destination register.
    pub dst: Reg,
    /// Result type.
    pub ty: VectorType,
    /// What executes.
    pub kind: PKind,
}

/// Instruction payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PKind {
    /// Stream an input vector from memory.
    Load {
        /// Input name.
        name: String,
    },
    /// Broadcast a constant (loop-invariant; free in the cycle model).
    Splat {
        /// The constant.
        value: i128,
    },
    /// A machine operation.
    Op {
        /// Opcode.
        op: MachOp,
        /// Source registers.
        args: Vec<Reg>,
    },
}

/// A linear machine program for one target.
#[derive(Debug, Clone)]
pub struct Program {
    /// The target ISA.
    pub isa: Isa,
    insts: Vec<PInst>,
    output: Reg,
}

impl Program {
    /// The instructions, in execution order.
    pub fn insts(&self) -> &[PInst] {
        &self.insts
    }

    /// The register holding the result.
    pub fn output(&self) -> Reg {
        self.output
    }

    /// Count of `Op` instructions (loads and splats excluded).
    pub fn op_count(&self) -> usize {
        self.insts.iter().filter(|i| matches!(i.kind, PKind::Op { .. })).count()
    }

    /// An assembly-like listing (Intel order: `instr dst, operands`).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for inst in &self.insts {
            let line = match &inst.kind {
                PKind::Load { name } => format!("load      v{}.{}, [{}]", inst.dst, inst.ty, name),
                PKind::Splat { value } => {
                    format!("splat     v{}.{}, #{}", inst.dst, inst.ty, value)
                }
                PKind::Op { op, args } => {
                    let srcs = args.iter().map(|r| format!("v{r}")).collect::<Vec<_>>().join(", ");
                    format!("{:<9} v{}.{}, {}", op.name, inst.dst, inst.ty, srcs)
                }
            };
            out.push_str(&line);
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// Emission failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EmitError {
    /// What was wrong.
    pub what: String,
}

impl fmt::Display for EmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cannot emit: {}", self.what)
    }
}

impl std::error::Error for EmitError {}

/// Emit a fully-lowered expression into a linear program with CSE.
///
/// # Errors
///
/// Fails if the expression still contains non-machine interior nodes
/// (run `fpir_isa::legalize` first) or an instruction violates its
/// table definition.
pub fn emit(expr: &RcExpr, target: &Target) -> Result<Program, EmitError> {
    let mut e = Emitter { target, insts: Vec::new(), cse: HashMap::new() };
    let output = e.emit(expr)?;
    Ok(Program { isa: target.isa, insts: e.insts, output })
}

struct Emitter<'t> {
    target: &'t Target,
    insts: Vec<PInst>,
    cse: HashMap<RcExpr, Reg>,
}

impl Emitter<'_> {
    fn emit(&mut self, expr: &RcExpr) -> Result<Reg, EmitError> {
        if let Some(&r) = self.cse.get(expr) {
            return Ok(r);
        }
        let kind = match expr.kind() {
            ExprKind::Var(name) => PKind::Load { name: name.clone() },
            ExprKind::Const(v) => PKind::Splat { value: *v },
            ExprKind::Mach(op, args) => {
                let def = self
                    .target
                    .def(*op)
                    .ok_or_else(|| EmitError { what: format!("unknown opcode {op}") })?;
                if args.len() != def.sem.arity() {
                    return Err(EmitError {
                        what: format!(
                            "{op} takes {} operands, got {}",
                            def.sem.arity(),
                            args.len()
                        ),
                    });
                }
                for &i in def.needs_const {
                    if args[i].as_const().is_none() {
                        return Err(EmitError {
                            what: format!("{op} operand {i} must be an immediate"),
                        });
                    }
                }
                let regs = args.iter().map(|a| self.emit(a)).collect::<Result<Vec<_>, _>>()?;
                PKind::Op { op: *op, args: regs }
            }
            other => return Err(EmitError { what: format!("unlowered node {other:?} in {expr}") }),
        };
        let dst = self.insts.len();
        self.insts.push(PInst { dst, ty: expr.ty(), kind });
        self.cse.insert(expr.clone(), dst);
        Ok(dst)
    }
}

/// The cycle model: cost units for one evaluation of the program over its
/// logical vectors.
///
/// * `Op` costs its table cost × the native registers it touches (the
///   widest of its result and operands);
/// * `Load` costs [`LOAD_COST`] per native register streamed;
/// * `Splat` is loop-invariant and free;
/// * zero-cost aliases (reinterprets) are free.
pub fn cycle_cost(p: &Program, target: &Target) -> u64 {
    assert_eq!(p.isa, target.isa, "program/target mismatch");
    let mut total = 0u64;
    for inst in &p.insts {
        match &inst.kind {
            PKind::Load { .. } => total += LOAD_COST * target.reg_factor(inst.ty),
            PKind::Splat { .. } => {}
            PKind::Op { op, args } => {
                let def = target.def(*op).expect("emitted ops are known");
                let rf = args
                    .iter()
                    .map(|&r| target.reg_factor(p.insts[r].ty))
                    .chain(std::iter::once(target.reg_factor(inst.ty)))
                    .max()
                    .unwrap_or(1);
                total += def.cost as u64 * rf;
            }
        }
    }
    total
}

/// Cost units charged per native register of streamed input.
pub const LOAD_COST: u64 = 2;

/// True when the op is one of the data-movement instructions the Rake
/// baseline's swizzle optimizer targets (extensions, truncations and
/// packs — everything that shuffles lanes rather than computing).
pub fn is_swizzle(op: MachOp, target: &Target) -> bool {
    target.def(op).is_some_and(|d| {
        matches!(d.sem, MachSem::ExtendTo | MachSem::TruncTo | MachSem::PackSatSignedTo)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpir::build;
    use fpir::types::{ScalarType as S, VectorType as V};
    use fpir_isa::{legalize, target};

    fn lower(e: &RcExpr, isa: Isa) -> Program {
        let t = target(isa);
        let m = legalize(e, t).unwrap();
        emit(&m, t).unwrap()
    }

    #[test]
    fn cse_shares_subexpressions() {
        let t = V::new(S::U8, 16);
        let (a, b) = (build::var("a", t), build::var("b", t));
        let sum = build::widening_add(a, b);
        let e = build::add(sum.clone(), sum);
        let p = lower(&e, Isa::ArmNeon);
        // loads a, b; one uaddl; one add = 4 instructions.
        assert_eq!(p.insts().len(), 4);
        assert_eq!(p.op_count(), 2);
    }

    #[test]
    fn unlowered_nodes_are_rejected() {
        let t = V::new(S::U8, 16);
        let e = build::add(build::var("a", t), build::var("b", t));
        assert!(emit(&e, target(Isa::ArmNeon)).is_err());
    }

    #[test]
    fn cycle_cost_charges_register_factors() {
        let isa = Isa::ArmNeon;
        let t8 = V::new(S::U8, 16);
        let t16 = V::new(S::U16, 16);
        let narrow = lower(&build::add(build::var("a", t8), build::var("b", t8)), isa);
        let wide = lower(&build::add(build::var("a", t16), build::var("b", t16)), isa);
        let (cn, cw) = (cycle_cost(&narrow, target(isa)), cycle_cost(&wide, target(isa)));
        assert_eq!(cw, 2 * cn, "u16x16 spans two Neon registers");
    }

    #[test]
    fn splats_are_free() {
        let t = V::new(S::U8, 16);
        let e = build::add(build::var("a", t), build::constant(3, t));
        let p = lower(&e, Isa::ArmNeon);
        let with_const = cycle_cost(&p, target(Isa::ArmNeon));
        let e = build::add(build::var("a", t), build::var("b", t));
        let p = lower(&e, Isa::ArmNeon);
        let with_var = cycle_cost(&p, target(Isa::ArmNeon));
        assert!(with_const < with_var);
    }

    #[test]
    fn render_is_readable() {
        let t = V::new(S::U8, 16);
        let e = build::widening_add(build::var("a", t), build::var("b", t));
        let p = lower(&e, Isa::ArmNeon);
        let listing = p.render();
        assert!(listing.contains("uaddl"), "{listing}");
        assert!(listing.contains("load"), "{listing}");
    }
}
