//! # fpir-sim — the vector VM and cycle model
//!
//! The stand-in for the paper's hardware: lowered expressions are emitted
//! into linear register programs ([`program`]), executed on concrete
//! vectors ([`vm`]), priced by a throughput cycle model
//! ([`program::cycle_cost`]), and differentially tested against the
//! reference interpreter ([`difftest`]).
//!
//! The cycle model is deliberately simple — per-instruction cost units ×
//! native registers touched, streamed loads charged, loop-invariant
//! splats free, no issue-width modelling — because the evaluation targets
//! *relative* performance (speedup ratios), where a consistent constant
//! factor cancels.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod difftest;
pub mod exec;
pub mod fuse;
pub mod program;
pub mod verify;
pub mod vm;

pub use difftest::{check_program, Counterexample};
pub use exec::{ExecCtx, Executable, InputSlot};
pub use fuse::ExecConfig;
pub use program::{cycle_cost, emit, EmitError, PInst, PKind, Program, LOAD_COST};
pub use verify::{verify_executable, ArtifactCheck, ArtifactError};
pub use vm::{execute, ExecError};
