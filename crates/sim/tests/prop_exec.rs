//! Differential properties of the three execution engines.
//!
//! The linked engine ([`fpir_sim::Executable`]) and the fused engine
//! ([`fpir_sim::ExecConfig::FAST`]) must be observationally identical to
//! the reference VM ([`fpir_sim::execute`]): the *same `Result`* on
//! every program and environment — equal values on success and equal
//! [`fpir_sim::ExecError`]s on failure, including which input a broken
//! environment is blamed on.

use fpir::interp::Value;
use fpir::rand_expr::{gen_expr, random_env, GenConfig};
use fpir::types::ScalarType;
use fpir_isa::{legalize, target};
use fpir_sim::{emit, execute, ExecConfig, Executable};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const TYPES: [ScalarType; 6] = [
    ScalarType::U8,
    ScalarType::U16,
    ScalarType::U32,
    ScalarType::I8,
    ScalarType::I16,
    ScalarType::I32,
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// On random programs and random well-formed environments, the linked
    /// engine and the reference VM return the same `Result`. One context
    /// is reused across all rounds, so this also exercises the recycled
    /// register file with varying live values.
    #[test]
    fn engines_agree_on_random_programs(seed in any::<u64>(), ti in 0usize..TYPES.len()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let cfg = GenConfig { lanes: 8, ..GenConfig::default() };
        let e = gen_expr(&mut rng, &cfg, TYPES[ti]);
        for isa in fpir::machine::ALL_ISAS {
            let t = target(isa);
            let Ok(m) = legalize(&e, t) else { continue };
            let p = emit(&m, t).unwrap();
            let exe = Executable::link(&p, t).unwrap();
            let fused = Executable::link_with(&p, t, &ExecConfig::FAST).unwrap();
            let mut ctx = exe.new_ctx();
            let mut fctx = fused.new_ctx();
            for _ in 0..3 {
                let env = random_env(&mut rng, &e);
                let reference = execute(&p, &env, t);
                let fast = exe.run(&mut ctx, &env);
                let fout = fused.run(&mut fctx, &env);
                prop_assert_eq!(&fast, &reference, "{} diverged on {}", isa, e);
                prop_assert_eq!(&fout, &reference, "{} fused diverged on {}", isa, e);
                if let Ok(v) = fast {
                    ctx.recycle(v);
                }
                if let Ok(v) = fout {
                    fctx.recycle(v);
                }
            }
        }
    }

    /// The engines also agree on *broken* environments: with a binding
    /// missing or bound at the wrong type, both fail with the identical
    /// error — same variant, same input name, same program position and
    /// register — or, if the program never loads that input, both still
    /// succeed with equal values.
    #[test]
    fn engines_agree_on_broken_environments(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let cfg = GenConfig { lanes: 8, ..GenConfig::default() };
        let e = gen_expr(&mut rng, &cfg, ScalarType::I16);
        let vars = e.free_vars();
        if vars.is_empty() {
            return Ok(());
        }
        let broken = rng.gen_range(0..vars.len());
        for isa in fpir::machine::ALL_ISAS {
            let t = target(isa);
            let Ok(m) = legalize(&e, t) else { continue };
            let p = emit(&m, t).unwrap();
            let exe = Executable::link(&p, t).unwrap();
            let fused = Executable::link_with(&p, t, &ExecConfig::FAST).unwrap();
            let mut ctx = exe.new_ctx();
            let mut fctx = fused.new_ctx();

            // Missing binding.
            let env: fpir::interp::Env = vars
                .iter()
                .filter(|(n, _)| *n != vars[broken].0)
                .map(|(n, ty)| (n.clone(), Value::splat(0, *ty)))
                .collect();
            prop_assert_eq!(exe.run(&mut ctx, &env), execute(&p, &env, t), "{isa}: missing");
            prop_assert_eq!(
                fused.run(&mut fctx, &env),
                execute(&p, &env, t),
                "{isa}: missing (fused)"
            );

            // Mistyped binding: same lane count, different element type.
            let env: fpir::interp::Env = vars
                .iter()
                .enumerate()
                .map(|(i, (n, ty))| {
                    let elem = match (i == broken, ty.elem) {
                        (true, ScalarType::U8) => ScalarType::U16,
                        (true, _) => ScalarType::U8,
                        (false, e) => e,
                    };
                    (n.clone(), Value::splat(0, fpir::types::VectorType { elem, lanes: ty.lanes }))
                })
                .collect();
            prop_assert_eq!(exe.run(&mut ctx, &env), execute(&p, &env, t), "{isa}: mistyped");
            prop_assert_eq!(
                fused.run(&mut fctx, &env),
                execute(&p, &env, t),
                "{isa}: mistyped (fused)"
            );
        }
    }
}
