//! The corpus-wide synthesis driver: the loop the `synthesize` binary
//! used to carry inline, factored out so it can be fanned out over a
//! worker pool and benchmarked.
//!
//! Parallelism lives at the **corpus-entry** level: each entry runs the
//! full lift-synthesize → generalize → verify chain sequentially, and the
//! pool maps over entries. Entries are independent (the enumerator's
//! sample environments depend only on the entry's own variables, from a
//! fixed seed), and [`fpir_pool::Pool::map`] preserves input order, so
//! the rule list — names, predicates, costs — is identical for any
//! worker count. Rule names are `synth-{i}` with `i` the entry's *corpus
//! index*, not a counter over successes, so dropping or reordering work
//! can never silently renumber rules.

use crate::corpus::MAX_LHS_NODES;
use crate::generalize::generalize_pair;
use crate::lift_synth::{
    retarget_lanes, synthesize_lift_jobs, synthesize_lift_reference, SynthBudget,
};
use crate::verify::VerifyOptions;
use fpir::expr::RcExpr;
use fpir_pool::Pool;
use fpir_trs::rule::{Rule, RuleClass};

/// Which lift enumerator the pipeline runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LiftEngine {
    /// The signature-incremental enumerator (production).
    Fast,
    /// The pre-optimization whole-tree enumerator (differential baseline).
    Reference,
}

/// Corpus-wide synthesis configuration.
#[derive(Debug, Clone, Copy)]
pub struct PipelineConfig {
    /// Per-entry enumeration budget.
    pub budget: SynthBudget,
    /// Verification effort for generalization.
    pub verify: VerifyOptions,
    /// Process at most this many corpus entries.
    pub cap: usize,
    /// Which enumerator to run.
    pub engine: LiftEngine,
}

impl Default for PipelineConfig {
    fn default() -> PipelineConfig {
        PipelineConfig {
            budget: SynthBudget::default(),
            verify: VerifyOptions {
                samples: 10,
                lanes: 64,
                exhaustive_8bit: false,
                exhaustive_points: 512,
            },
            cap: 120,
            engine: LiftEngine::Fast,
        }
    }
}

/// A lifting rule synthesized from one corpus entry.
#[derive(Debug, Clone)]
pub struct SynthesizedRule {
    /// The entry's index in the corpus (also the rule-name suffix).
    pub index: usize,
    /// The concrete left-hand side (at the canonical 64-lane width).
    pub lhs: RcExpr,
    /// The synthesized FPIR right-hand side.
    pub rhs: RcExpr,
    /// The generalized, verified rule.
    pub rule: Rule,
    /// Benchmarks the entry was harvested from.
    pub sources: Vec<String>,
}

/// Run lift synthesis + generalization over a corpus, fanning entries out
/// over `pool`. Returns the verified rules in corpus order — identical
/// for any worker count.
pub fn synthesize_corpus_rules(
    corpus: &[(RcExpr, Vec<String>)],
    cfg: &PipelineConfig,
    pool: &Pool,
) -> Vec<SynthesizedRule> {
    let n = cfg.cap.min(corpus.len());
    let indexed: Vec<usize> = (0..n).collect();
    pool.map(&indexed, |&i| {
        let (sub, sources) = &corpus[i];
        if sub.contains_fpir() {
            return None; // already fixed-point
        }
        // Inner synthesis stays sequential: the outer map is the fan-out.
        let rhs = match cfg.engine {
            LiftEngine::Fast => synthesize_lift_jobs(sub, &cfg.budget, &Pool::sequential())?,
            LiftEngine::Reference => synthesize_lift_reference(sub, &cfg.budget)?,
        };
        let lhs = retarget_lanes(sub, 64);
        let rule = generalize_pair(&format!("synth-{i}"), RuleClass::Lift, &lhs, &rhs, &cfg.verify)
            .ok()?;
        Some(SynthesizedRule { index: i, lhs, rhs, rule, sources: sources.clone() })
    })
    .into_iter()
    .flatten()
    .collect()
}

/// Harvest the corpus for [`synthesize_corpus_rules`] from named
/// benchmark expressions (a thin convenience over
/// [`crate::corpus::build_corpus`] at the paper's node limit).
pub fn harvest_corpus<'a>(
    named_exprs: impl IntoIterator<Item = (&'a str, &'a RcExpr)>,
) -> Vec<(RcExpr, Vec<String>)> {
    crate::corpus::build_corpus(named_exprs, MAX_LHS_NODES)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpir::build::*;
    use fpir::types::{ScalarType as S, VectorType as V};

    fn tiny_corpus() -> Vec<(RcExpr, Vec<String>)> {
        let t = V::new(S::U8, 64);
        let w = V::new(S::U16, 64);
        let avg = {
            let (a, b) = (var("a", t), var("b", t));
            let sum = add(widen(a), widen(b));
            cast(S::U8, shr(add(sum.clone(), splat(1, &sum)), splat(1, &sum)))
        };
        let shl6 = shl(cast(S::I16, var("x", t)), constant(6, V::new(S::I16, 64)));
        let mul4 = mul(widen(var("x", t)), constant(4, w));
        let plain = add(var("a", t), var("b", t));
        [avg, shl6, mul4, plain].into_iter().map(|e| (e, vec!["test".to_string()])).collect()
    }

    fn small_cfg(engine: LiftEngine) -> PipelineConfig {
        PipelineConfig {
            budget: SynthBudget { max_nodes: 3, sample_envs: 4, lanes: 16, max_bank: 96 },
            verify: VerifyOptions {
                samples: 4,
                lanes: 16,
                exhaustive_8bit: false,
                exhaustive_points: 0,
            },
            cap: 16,
            engine,
        }
    }

    #[test]
    fn pipeline_finds_rules_and_names_by_corpus_index() {
        let corpus = tiny_corpus();
        let rules = synthesize_corpus_rules(&corpus, &small_cfg(LiftEngine::Fast), &Pool::new(1));
        assert!(!rules.is_empty());
        for r in &rules {
            assert_eq!(r.rule.name, format!("synth-{}", r.index));
        }
        // The bare add (last entry) must not produce a rule.
        assert!(rules.iter().all(|r| r.index != corpus.len() - 1));
    }

    #[test]
    fn pipeline_is_worker_count_invariant() {
        let corpus = tiny_corpus();
        let render = |rules: &[SynthesizedRule]| -> Vec<String> {
            rules
                .iter()
                .map(|r| format!("{}|{}|{}|{}", r.index, r.lhs, r.rhs, r.rule.pred))
                .collect()
        };
        let seq = synthesize_corpus_rules(&corpus, &small_cfg(LiftEngine::Fast), &Pool::new(1));
        let par = synthesize_corpus_rules(&corpus, &small_cfg(LiftEngine::Fast), &Pool::new(4));
        assert_eq!(render(&par), render(&seq));
        let refr =
            synthesize_corpus_rules(&corpus, &small_cfg(LiftEngine::Reference), &Pool::new(1));
        assert_eq!(render(&refr), render(&seq));
    }
}
